// Figures 4d/4e — two-path join, thread scaling (Jokes- and Words-like).
//
// Series: MMJoin vs Non-MMJoin at 1..4 threads. The paper's curves fall
// near-linearly with cores; on a single-core container both stay flat
// (EXPERIMENTS.md) while still exercising the parallel code paths.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/join_project.h"

using namespace jpmm;
using benchutil::CachedPreset;

namespace {

void BM_TwoPathParallel(benchmark::State& state, DatasetPreset preset,
                        Strategy strategy, int threads) {
  const auto& ds = CachedPreset(preset);
  size_t out_size = 0;
  for (auto _ : state) {
    JoinProjectOptions opts;
    opts.strategy = strategy;
    opts.threads = threads;
    out_size = JoinProject::TwoPath(*ds.idx, *ds.idx, opts).size();
    benchmark::DoNotOptimize(out_size);
  }
  state.counters["threads"] = threads;
  state.counters["out"] = static_cast<double>(out_size);
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::WarmCalibration();
  for (DatasetPreset p : {DatasetPreset::kJokes, DatasetPreset::kWords}) {
    const char* fig =
        p == DatasetPreset::kJokes ? "Fig4d" : "Fig4e";
    for (Strategy s : {Strategy::kMmJoin, Strategy::kNonMmJoin}) {
      for (int threads : benchutil::ThreadSweep()) {
        const std::string name = std::string(fig) + "/" + PresetName(p) + "/" +
                                 StrategyName(s) + "/threads:" +
                                 std::to_string(threads);
        benchmark::RegisterBenchmark(name.c_str(), BM_TwoPathParallel, p, s, threads)
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
      }
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
