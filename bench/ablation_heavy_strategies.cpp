// Design-choice ablation (DESIGN.md §2): heavy-part strategies.
//
// The all-heavy witness class can be evaluated three ways:
//   float-GEMM       : Algorithm 1's dense product (what MMJoin ships)
//   bitset-popcount  : boolean AND/popcount product over packed rows
//   pairwise-gallop  : per-(heavy x, heavy z) sorted-list intersection
//                      (Non-MM's strategy)
// This bench isolates the three kernels on the heavy part of a dense
// community graph, at equal thresholds.
//
// A second family of rows ablates the density-adaptive grid
// (core/density_partition.h) against the uniform row-block plan:
//   *Skew rows    clustered-zipf instance — disjoint communities whose
//                 density decays zipf-style, so the degree remap clusters
//                 the communities into bands, prunes the provably-empty
//                 cross blocks, and runs each diagonal block on its own
//                 density's kernel. Off (kOff) vs Grid (kForce) is the
//                 headline speedup; Auto shows kAuto engaging on its own.
//   *Uniform rows flat degrees — the remap buys nothing, Auto must
//                 decline the grid and stay within noise of Off (the
//                 no-regression guard); GridUniform (kForce) measures the
//                 pure overhead of a grid nobody asked for.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/density_partition.h"
#include "core/mm_join.h"
#include "core/nonmm_join.h"
#include "datagen/generators.h"
#include "matrix/bool_matrix.h"
#include "matrix/cost_model.h"
#include "storage/index.h"

using namespace jpmm;

namespace {

struct HeavyFixture {
  BinaryRelation rel;
  std::unique_ptr<IndexedRelation> idx;

  explicit HeavyFixture(BinaryRelation r) : rel(std::move(r)) {
    idx = std::make_unique<IndexedRelation>(rel);
  }
};

const HeavyFixture& Fixture() {
  static HeavyFixture f(CommunityGraph(6, 160, 0.5, 17));
  return f;
}

constexpr Thresholds kThresholds{16, 16};

void BM_HeavyFloatGemm(benchmark::State& state) {
  const auto& f = Fixture();
  for (auto _ : state) {
    MmJoinOptions opts;
    opts.thresholds = kThresholds;
    auto res = MmJoinTwoPath(*f.idx, *f.idx, opts);
    benchmark::DoNotOptimize(res.pairs.data());
    state.counters["out"] = static_cast<double>(res.pairs.size());
  }
}

void BM_HeavyPairwiseGallop(benchmark::State& state) {
  const auto& f = Fixture();
  for (auto _ : state) {
    NonMmJoinOptions opts;
    opts.thresholds = kThresholds;
    auto res = NonMmJoinTwoPath(*f.idx, *f.idx, opts);
    benchmark::DoNotOptimize(res.pairs.data());
    state.counters["out"] = static_cast<double>(res.pairs.size());
  }
}

void BM_HeavyBitsetPopcount(benchmark::State& state) {
  const auto& f = Fixture();
  const TwoPathPartition part(*f.idx, *f.idx, kThresholds);
  const auto& hx = part.heavy_x();
  const auto& hy = part.heavy_y();
  const auto& hz = part.heavy_z();
  for (auto _ : state) {
    BoolMatrix m1(hx.size(), hy.size());
    for (size_t i = 0; i < hx.size(); ++i) {
      for (Value b : f.idx->YsOf(hx[i])) {
        const Value id = part.HeavyYId(b);
        if (id != kInvalidValue) m1.Set(i, id);
      }
    }
    BoolMatrix m2t(hz.size(), hy.size());
    for (size_t j = 0; j < hz.size(); ++j) {
      for (Value b : f.idx->YsOf(hz[j])) {
        const Value id = part.HeavyYId(b);
        if (id != kInvalidValue) m2t.Set(j, id);
      }
    }
    BoolMatrix prod = BoolProduct(m1, m2t, 1);
    benchmark::DoNotOptimize(prod.RowWords(0));
    state.counters["heavy_pairs"] =
        static_cast<double>(hx.size() * hz.size());
  }
  // Modeled kernel time from the measured word rate — the calibration ->
  // cost-model path a strategy chooser would consult.
  state.counters["modeled_ms"] =
      BoolProductSeconds(hx.size(), hy.size(), hz.size(),
                         BoolKernelRates::Default().bool_words_per_sec) *
      1e3;
}

// ---- density-adaptive partitioning ablation ------------------------------

// Clustered-zipf instance: disjoint communities over disjoint y-domains
// whose per-community degree decays zipf-style (400, 250, 150, 80). The
// degree sort clusters each community into its own band, every cross-
// community block has a zero witness bound (pruned), and the diagonal
// blocks span densities from ~0.66 down to ~0.13 — exactly the internal
// skew a single global kernel choice cannot serve.
const HeavyFixture& ClusteredZipfFixture() {
  static HeavyFixture f([] {
    constexpr uint32_t kXsPer = 600, kYsPer = 600;
    constexpr uint32_t kDeg[4] = {400, 250, 150, 80};
    BinaryRelation rel;
    Rng rng(19);
    for (uint32_t c = 0; c < 4; ++c) {
      for (uint32_t i = 0; i < kXsPer; ++i) {
        const Value x = c * kXsPer + i;
        for (uint32_t k = 0; k < kDeg[c]; ++k) {
          rel.Add(x, c * kYsPer +
                         static_cast<Value>(rng.NextBounded(kYsPer)));
        }
      }
    }
    rel.Finalize();
    return rel;
  }());
  return f;
}

// Uniform instance: flat degrees, so the remap buys nothing and the grid
// must cost within noise of the uniform plan (the no-regression guard).
const HeavyFixture& UniformFixture() {
  static HeavyFixture f(UniformBipartite(1200, 500, 60000, 23));
  return f;
}

void RunPartitionRow(benchmark::State& state, const HeavyFixture& f,
                     PartitionMode mode) {
  for (auto _ : state) {
    MmJoinOptions opts;
    opts.thresholds = kThresholds;
    opts.partition = mode;
    auto res = MmJoinTwoPath(*f.idx, *f.idx, opts);
    benchmark::DoNotOptimize(res.pairs.data());
    state.counters["out"] = static_cast<double>(res.pairs.size());
    state.counters["grid_pruned"] =
        static_cast<double>(res.partition_blocks_pruned);
    state.counters["grid_scheduled"] =
        static_cast<double>(res.partition_blocks_scheduled);
  }
}

void BM_HeavyPartitionOffSkew(benchmark::State& state) {
  RunPartitionRow(state, ClusteredZipfFixture(), PartitionMode::kOff);
}

void BM_HeavyPartitionGridSkew(benchmark::State& state) {
  RunPartitionRow(state, ClusteredZipfFixture(), PartitionMode::kForce);
}

void BM_HeavyPartitionAutoSkew(benchmark::State& state) {
  RunPartitionRow(state, ClusteredZipfFixture(), PartitionMode::kAuto);
}

void BM_HeavyPartitionOffUniform(benchmark::State& state) {
  RunPartitionRow(state, UniformFixture(), PartitionMode::kOff);
}

void BM_HeavyPartitionAutoUniform(benchmark::State& state) {
  RunPartitionRow(state, UniformFixture(), PartitionMode::kAuto);
}

void BM_HeavyPartitionGridUniform(benchmark::State& state) {
  RunPartitionRow(state, UniformFixture(), PartitionMode::kForce);
}

}  // namespace

BENCHMARK(BM_HeavyFloatGemm)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HeavyBitsetPopcount)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HeavyPairwiseGallop)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HeavyPartitionOffSkew)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HeavyPartitionGridSkew)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HeavyPartitionAutoSkew)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HeavyPartitionOffUniform)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HeavyPartitionAutoUniform)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HeavyPartitionGridUniform)->Unit(benchmark::kMillisecond);

JPMM_BENCH_MAIN();
