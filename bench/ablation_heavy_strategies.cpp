// Design-choice ablation (DESIGN.md §2): heavy-part strategies.
//
// The all-heavy witness class can be evaluated three ways:
//   float-GEMM       : Algorithm 1's dense product (what MMJoin ships)
//   bitset-popcount  : boolean AND/popcount product over packed rows
//   pairwise-gallop  : per-(heavy x, heavy z) sorted-list intersection
//                      (Non-MM's strategy)
// This bench isolates the three kernels on the heavy part of a dense
// community graph, at equal thresholds.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/mm_join.h"
#include "core/nonmm_join.h"
#include "core/partition.h"
#include "datagen/generators.h"
#include "matrix/bool_matrix.h"
#include "matrix/cost_model.h"
#include "storage/index.h"

using namespace jpmm;

namespace {

struct HeavyFixture {
  BinaryRelation rel;
  std::unique_ptr<IndexedRelation> idx;

  HeavyFixture() {
    rel = CommunityGraph(6, 160, 0.5, 17);
    idx = std::make_unique<IndexedRelation>(rel);
  }
};

const HeavyFixture& Fixture() {
  static HeavyFixture f;
  return f;
}

constexpr Thresholds kThresholds{16, 16};

void BM_HeavyFloatGemm(benchmark::State& state) {
  const auto& f = Fixture();
  for (auto _ : state) {
    MmJoinOptions opts;
    opts.thresholds = kThresholds;
    auto res = MmJoinTwoPath(*f.idx, *f.idx, opts);
    benchmark::DoNotOptimize(res.pairs.data());
    state.counters["out"] = static_cast<double>(res.pairs.size());
  }
}

void BM_HeavyPairwiseGallop(benchmark::State& state) {
  const auto& f = Fixture();
  for (auto _ : state) {
    NonMmJoinOptions opts;
    opts.thresholds = kThresholds;
    auto res = NonMmJoinTwoPath(*f.idx, *f.idx, opts);
    benchmark::DoNotOptimize(res.pairs.data());
    state.counters["out"] = static_cast<double>(res.pairs.size());
  }
}

void BM_HeavyBitsetPopcount(benchmark::State& state) {
  const auto& f = Fixture();
  const TwoPathPartition part(*f.idx, *f.idx, kThresholds);
  const auto& hx = part.heavy_x();
  const auto& hy = part.heavy_y();
  const auto& hz = part.heavy_z();
  for (auto _ : state) {
    BoolMatrix m1(hx.size(), hy.size());
    for (size_t i = 0; i < hx.size(); ++i) {
      for (Value b : f.idx->YsOf(hx[i])) {
        const Value id = part.HeavyYId(b);
        if (id != kInvalidValue) m1.Set(i, id);
      }
    }
    BoolMatrix m2t(hz.size(), hy.size());
    for (size_t j = 0; j < hz.size(); ++j) {
      for (Value b : f.idx->YsOf(hz[j])) {
        const Value id = part.HeavyYId(b);
        if (id != kInvalidValue) m2t.Set(j, id);
      }
    }
    BoolMatrix prod = BoolProduct(m1, m2t, 1);
    benchmark::DoNotOptimize(prod.RowWords(0));
    state.counters["heavy_pairs"] =
        static_cast<double>(hx.size() * hz.size());
  }
  // Modeled kernel time from the measured word rate — the calibration ->
  // cost-model path a strategy chooser would consult.
  state.counters["modeled_ms"] =
      BoolProductSeconds(hx.size(), hy.size(), hz.size(),
                         BoolKernelRates::Default().bool_words_per_sec) *
      1e3;
}

}  // namespace

BENCHMARK(BM_HeavyFloatGemm)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HeavyBitsetPopcount)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HeavyPairwiseGallop)->Unit(benchmark::kMillisecond);

JPMM_BENCH_MAIN();
