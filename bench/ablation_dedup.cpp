// Design-choice ablation (DESIGN.md §2, §6 of the paper): light-part
// deduplication strategies.
//
//   stamp-array : epoch-stamped dense vector (the §6 idiom, O(1) clear)
//   sort-local  : append all witnesses, sort, aggregate
// plus the full-join + hash-set dedup a DBMS would use, for reference. The
// paper picks "the best of the two strategies depending on the number of
// elements ... and the domain size"; this bench shows the trade-off.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/mm_join.h"
#include "join/hash_join.h"

using namespace jpmm;
using benchutil::CachedPreset;

namespace {

void BM_Dedup(benchmark::State& state, DatasetPreset preset, DedupImpl impl) {
  const auto& ds = CachedPreset(preset);
  for (auto _ : state) {
    MmJoinOptions opts;
    opts.thresholds = {16, 16};
    opts.dedup = impl;
    auto res = MmJoinTwoPath(*ds.idx, *ds.idx, opts);
    benchmark::DoNotOptimize(res.pairs.data());
    state.counters["out"] = static_cast<double>(res.pairs.size());
  }
}

void BM_HashSetDedup(benchmark::State& state, DatasetPreset preset) {
  const auto& ds = CachedPreset(preset);
  for (auto _ : state) {
    auto res = HashJoinProject(*ds.idx, *ds.idx, DedupMode::kHashSet);
    benchmark::DoNotOptimize(res.data());
    state.counters["out"] = static_cast<double>(res.size());
  }
}

}  // namespace

int main(int argc, char** argv) {
  for (DatasetPreset p : {DatasetPreset::kJokes, DatasetPreset::kWords}) {
    const std::string stamp = std::string("Dedup/") + PresetName(p) +
                              "/stamp-array";
    benchmark::RegisterBenchmark(stamp.c_str(), BM_Dedup, p,
                                 DedupImpl::kStampArray)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    const std::string sortl = std::string("Dedup/") + PresetName(p) +
                              "/sort-local";
    benchmark::RegisterBenchmark(sortl.c_str(), BM_Dedup, p,
                                 DedupImpl::kSortLocal)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    const std::string hashs = std::string("Dedup/") + PresetName(p) +
                              "/hash-set";
    benchmark::RegisterBenchmark(hashs.c_str(), BM_HashSetDedup, p)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
