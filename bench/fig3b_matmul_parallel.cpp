// Figure 3b — matrix construction + multiplication vs core count.
//
// The paper shows near-linear speedup of Eigen's product at 20000^2 as
// cores grow; here the same experiment runs against jpmm's kernel at a
// laptop-scale dimension, reporting construction and multiplication
// separately like the figure's stacked bars. (On a single-core container
// the curve is flat — see EXPERIMENTS.md.)

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "matrix/dense_matrix.h"
#include "matrix/matmul.h"

using namespace jpmm;

namespace {

constexpr size_t kDim = 1024;

void BM_ConstructAndMultiply(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  double construct_sec = 0.0, multiply_sec = 0.0;
  for (auto _ : state) {
    WallTimer tc;
    Matrix a(kDim, kDim), b(kDim, kDim);
    Rng rng(7);
    for (size_t i = 0; i < kDim; ++i) {
      for (size_t j = 0; j < kDim; ++j) {
        if (rng.NextBool(0.5)) a.Set(i, j, 1.0f);
        if (rng.NextBool(0.5)) b.Set(i, j, 1.0f);
      }
    }
    construct_sec += tc.Seconds();
    WallTimer tm;
    Matrix c = Multiply(a, b, threads);
    multiply_sec += tm.Seconds();
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["threads"] = threads;
  state.counters["construct_s"] =
      construct_sec / static_cast<double>(state.iterations());
  state.counters["multiply_s"] =
      multiply_sec / static_cast<double>(state.iterations());
}

}  // namespace

BENCHMARK(BM_ConstructAndMultiply)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Arg(4)
    ->Arg(5)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

BENCHMARK_MAIN();
