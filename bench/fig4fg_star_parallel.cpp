// Figures 4f/4g — star query, thread scaling (Jokes- and Words-like).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/join_project.h"

using namespace jpmm;
using benchutil::CachedPreset;

namespace {

// Per-preset sampling, matching fig4b (Words' hubs make the star output
// near-cubic).
double StarScale(DatasetPreset p) {
  return p == DatasetPreset::kWords ? 0.05 : 0.2;
}

void BM_StarParallel(benchmark::State& state, DatasetPreset preset,
                     Strategy strategy, int threads) {
  const auto& ds = CachedPreset(preset, StarScale(preset));
  std::vector<const IndexedRelation*> rels = {ds.idx.get(), ds.idx.get(),
                                              ds.idx.get()};
  size_t out_size = 0;
  for (auto _ : state) {
    JoinProjectOptions opts;
    opts.strategy = strategy;
    opts.threads = threads;
    out_size = JoinProject::Star(rels, opts).tuples.size();
    benchmark::DoNotOptimize(out_size);
  }
  state.counters["threads"] = threads;
  state.counters["out"] = static_cast<double>(out_size);
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::WarmCalibration();
  for (DatasetPreset p : {DatasetPreset::kJokes, DatasetPreset::kWords}) {
    const char* fig = p == DatasetPreset::kJokes ? "Fig4f" : "Fig4g";
    for (Strategy s : {Strategy::kMmJoin, Strategy::kNonMmJoin}) {
      for (int threads : benchutil::ThreadSweep()) {
        const std::string name = std::string(fig) + "/" + PresetName(p) + "/" +
                                 StrategyName(s) + "/threads:" +
                                 std::to_string(threads);
        benchmark::RegisterBenchmark(name.c_str(), BM_StarParallel, p, s, threads)
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
      }
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
