// Figures 6b/6c/6d — BSI average delay vs batch size (Jokes-, Words-,
// Image-like) at B = 1000 queries/second.
//
// Each configuration times one batched evaluation, then reports the §3.3
// service metrics (avg delay = fill/2 + t(C), machines = ceil(t(C)·B/C)).
// Paper shape: on the dense families MMJoin reaches a target delay with
// far fewer machines; on Words the optimizer falls back to the
// combinatorial plan and the two curves track each other.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "bsi/bsi.h"
#include "bsi/latency_sim.h"
#include "bsi/workload.h"
#include "common/timer.h"

using namespace jpmm;
using benchutil::CachedPreset;

namespace {

constexpr double kArrivalRate = 1000.0;  // B

void BM_BsiDelay(benchmark::State& state, DatasetPreset preset, bool mm,
                 size_t batch_size) {
  // BSI stresses batch joins over large families: use a denser instance
  // than the default presets (the paper's Jokes/Words/Image are 10^8-tuple
  // datasets).
  const auto& ds = CachedPreset(preset, 4.0);
  auto batch =
      SampleBsiWorkload(*ds.fam, *ds.fam, batch_size, 97 + batch_size);
  double batch_seconds = 0.0;
  for (auto _ : state) {
    WallTimer t;
    auto answers = mm ? BsiAnswerBatchMm(*ds.fam, *ds.fam, batch)
                      : BsiAnswerBatchNonMm(*ds.fam, *ds.fam, batch);
    batch_seconds = t.Seconds();
    benchmark::DoNotOptimize(answers.data());
  }
  const auto est = EstimateBsiLatency(kArrivalRate, batch_size, batch_seconds);
  state.counters["batch"] = static_cast<double>(batch_size);
  state.counters["avg_delay_s"] = est.avg_delay_seconds;
  state.counters["machines"] = est.machines;
  state.counters["batch_s"] = est.batch_seconds;
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::WarmCalibration();
  const std::pair<DatasetPreset, const char*> figs[] = {
      {DatasetPreset::kJokes, "Fig6b"},
      {DatasetPreset::kWords, "Fig6c"},
      {DatasetPreset::kImage, "Fig6d"},
  };
  for (const auto& [preset, fig] : figs) {
    for (bool mm : {true, false}) {
      for (size_t batch : {500ul, 900ul, 1300ul, 1700ul}) {
        const std::string name = std::string(fig) + "/" + PresetName(preset) +
                                 (mm ? "/MMJoin" : "/NonMMJoin") + "/batch:" +
                                 std::to_string(batch);
        benchmark::RegisterBenchmark(name.c_str(), BM_BsiDelay, preset, mm, batch)
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
      }
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
