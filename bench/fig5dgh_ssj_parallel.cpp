// Figures 5d/5g/5h — unordered SSJ at c = 2, thread scaling (DBLP-, Jokes-,
// Image-like).
//
// Paper shape: MMJoin and SizeAware++ scale (matrix row partitioning is
// coordination-free); SizeAware's light phase is inherently sequential so
// its curve flattens.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "ssj/mm_ssj.h"
#include "ssj/size_aware.h"
#include "ssj/size_aware_pp.h"

using namespace jpmm;
using benchutil::CachedPreset;

namespace {

enum class SsjEngine { kMm, kSizeAwarePP, kSizeAware };

const char* SsjEngineName(SsjEngine e) {
  switch (e) {
    case SsjEngine::kMm:
      return "MMJoin";
    case SsjEngine::kSizeAwarePP:
      return "SizeAware++";
    case SsjEngine::kSizeAware:
      return "SizeAware";
  }
  return "?";
}

void BM_SsjParallel(benchmark::State& state, DatasetPreset preset,
                    SsjEngine engine, int threads) {
  const double extra = preset == DatasetPreset::kDblp ? 0.25 : 1.0;
  const auto& ds = CachedPreset(preset, extra);
  SsjOptions opts;
  opts.c = 2;
  opts.threads = threads;
  size_t out_size = 0;
  for (auto _ : state) {
    switch (engine) {
      case SsjEngine::kMm:
        out_size = MmSsj(*ds.fam, opts).size();
        break;
      case SsjEngine::kSizeAwarePP:
        out_size = SizeAwarePlusPlus(*ds.fam, opts).size();
        break;
      case SsjEngine::kSizeAware:
        out_size = SizeAwareJoin(*ds.fam, opts).size();
        break;
    }
    benchmark::DoNotOptimize(out_size);
  }
  state.counters["threads"] = threads;
  state.counters["out"] = static_cast<double>(out_size);
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::WarmCalibration();
  const std::pair<DatasetPreset, const char*> figs[] = {
      {DatasetPreset::kDblp, "Fig5d"},
      {DatasetPreset::kJokes, "Fig5g"},
      {DatasetPreset::kImage, "Fig5h"},
  };
  for (const auto& [preset, fig] : figs) {
    for (SsjEngine e :
         {SsjEngine::kMm, SsjEngine::kSizeAwarePP, SsjEngine::kSizeAware}) {
      for (int threads : benchutil::ThreadSweep()) {
        const std::string name = std::string(fig) + "/" + PresetName(preset) +
                                 "/" + SsjEngineName(e) + "/threads:" +
                                 std::to_string(threads);
        benchmark::RegisterBenchmark(name.c_str(), BM_SsjParallel, preset, e, threads)
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
      }
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
