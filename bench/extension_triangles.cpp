// Extension bench (§9 future work): triangle counting, MM (AYZ split) vs
// the combinatorial node iterator, on community graphs of growing size.
//
// The dense-community regime is where trace(A_H^3) beats pair enumeration;
// on sparse graphs the light path does all the work and the two converge.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "core/triangle.h"
#include "datagen/generators.h"
#include "storage/index.h"

using namespace jpmm;

namespace {

const IndexedRelation& Graph(int communities, int size) {
  static std::map<std::pair<int, int>, std::unique_ptr<IndexedRelation>> cache;
  auto key = std::make_pair(communities, size);
  auto it = cache.find(key);
  if (it == cache.end()) {
    BinaryRelation g = CommunityGraph(communities, size, 0.6, 11);
    it = cache.emplace(key, std::make_unique<IndexedRelation>(g)).first;
  }
  return *it->second;
}

void BM_TrianglesMm(benchmark::State& state) {
  const auto& g = Graph(4, static_cast<int>(state.range(0)));
  uint64_t count = 0;
  for (auto _ : state) {
    count = CountTrianglesMm(g).triangles;
    benchmark::DoNotOptimize(count);
  }
  state.counters["triangles"] = static_cast<double>(count);
}

void BM_TrianglesNodeIterator(benchmark::State& state) {
  const auto& g = Graph(4, static_cast<int>(state.range(0)));
  uint64_t count = 0;
  for (auto _ : state) {
    count = CountTrianglesNodeIterator(g);
    benchmark::DoNotOptimize(count);
  }
  state.counters["triangles"] = static_cast<double>(count);
}

}  // namespace

BENCHMARK(BM_TrianglesMm)
    ->Arg(100)
    ->Arg(200)
    ->Arg(400)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_TrianglesNodeIterator)
    ->Arg(100)
    ->Arg(200)
    ->Arg(400)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

BENCHMARK_MAIN();
