// Figure 4a — two-path join-project across the six datasets, single core.
//
// Series: MMJoin (Algorithm 1 + optimizer), Non-MMJoin (Lemma 2
// combinatorial), and the simulated engines — Postgres-like (hash join +
// sort dedup), MySQL-like (sort-merge + sort dedup), System-X-like (hash
// join + preallocated hash dedup), EmptyHeaded-like (per-x k-way sorted
// unions). Expected shape (paper §7.2): full-join engines slowest by 1-2
// orders of magnitude on the dense datasets; MMJoin fastest everywhere
// except the sparse DBLP/RoadNet where the optimizer picks the plain WCOJ
// plan; EmptyHeaded-like competitive on the densest inputs.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/join_project.h"
#include "join/dbms_baselines.h"

using namespace jpmm;
using benchutil::CachedPreset;

namespace {

enum class Engine {
  kMmJoin,
  kNonMm,
  kPostgres,
  kMySql,
  kSystemX,
  kEmptyHeaded,
};

const char* EngineName(Engine e) {
  switch (e) {
    case Engine::kMmJoin:
      return "MMJoin";
    case Engine::kNonMm:
      return "NonMMJoin";
    case Engine::kPostgres:
      return "PostgresLike";
    case Engine::kMySql:
      return "MySQLLike";
    case Engine::kSystemX:
      return "SystemXLike";
    case Engine::kEmptyHeaded:
      return "EmptyHeadedLike";
  }
  return "?";
}

void BM_TwoPath(benchmark::State& state, DatasetPreset preset, Engine engine) {
  const auto& ds = CachedPreset(preset);
  size_t out_size = 0;
  for (auto _ : state) {
    switch (engine) {
      case Engine::kMmJoin: {
        JoinProjectOptions opts;
        opts.strategy = Strategy::kAuto;
        out_size = JoinProject::TwoPath(*ds.idx, *ds.idx, opts).size();
        break;
      }
      case Engine::kNonMm: {
        JoinProjectOptions opts;
        opts.strategy = Strategy::kNonMmJoin;
        out_size = JoinProject::TwoPath(*ds.idx, *ds.idx, opts).size();
        break;
      }
      case Engine::kPostgres:
        out_size = PostgresLikeJoinProject(*ds.idx, *ds.idx).size();
        break;
      case Engine::kMySql:
        out_size = MySqlLikeJoinProject(ds.rel, ds.rel).size();
        break;
      case Engine::kSystemX:
        out_size = SystemXLikeJoinProject(*ds.idx, *ds.idx).size();
        break;
      case Engine::kEmptyHeaded:
        out_size = EmptyHeadedLikeJoinProject(*ds.idx, *ds.idx).size();
        break;
    }
    benchmark::DoNotOptimize(out_size);
  }
  state.counters["out"] = static_cast<double>(out_size);
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::WarmCalibration();
  for (DatasetPreset p : AllPresets()) {
    for (Engine e : {Engine::kMmJoin, Engine::kNonMm, Engine::kPostgres,
                     Engine::kMySql, Engine::kSystemX, Engine::kEmptyHeaded}) {
      const std::string name =
          std::string("Fig4a/") + PresetName(p) + "/" + EngineName(e);
      benchmark::RegisterBenchmark(name.c_str(), BM_TwoPath, p, e)
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
