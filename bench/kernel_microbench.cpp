// Kernel microbenchmark — blocked vs seed kernels, dense and boolean.
//
// Measures the matrix-layer rewrite in isolation:
//   dense : packed-panel blocked GEMM (Multiply) vs the seed ikj-saxpy
//           kernel (MultiplyScalarReference) vs the naive triple loop;
//   parallel dense : shared-packed-B-slab MultiplyParallel vs the
//           replicated-packing path (every worker re-packs B) across
//           thread counts — the pool-era parallel regression guard;
//   bool  : tiled BoolProduct / CountProduct vs the unblocked all-pairs
//           row-intersection references;
//   sparse: CSR x dense saxpy and CSR x CSR stamp kernels across a density
//           sweep {1e-4 .. 0.25} at n in {1024, 4096}, against the dense
//           blocked GEMM on the same operands; BM_SparseCrossover emits the
//           measured dense/sparse crossover density into the bench JSON;
//   transpose : 64x64 word-block bit transpose vs the seed per-bit scatter.
//   metrics overhead : the same instrumented join executed with metrics on
//           vs JPMM_METRICS=off in one process; the overhead_pct counter is
//           the observability acceptance row (CI asserts < 2%).
// Every timed kernel is verified against its reference once at setup, so a
// reported speedup can never come from computing something different.
//
// The "gflops" / "gwords" counters make the speedups comparable across
// rows; set JPMM_BENCH_JSON=<path> for machine-readable output. Run:
//   ./build/bench_kernel_microbench --benchmark_filter=Dense

#include <benchmark/benchmark.h>

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstring>
#include <functional>
#include <span>
#include <vector>

#include "bench/bench_util.h"
#include "common/check.h"
#include "common/cpu_features.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "core/query_engine.h"
#include "core/result_sink.h"
#include "datagen/presets.h"
#include "matrix/bool_matrix.h"
#include "matrix/calibration.h"
#include "matrix/cost_model.h"
#include "matrix/dense_matrix.h"
#include "matrix/matmul.h"
#include "matrix/random.h"
#include "matrix/sparse_matrix.h"

using namespace jpmm;

namespace {

constexpr double kDensity = 0.5;       // fig-3a operand density
constexpr double kBoolDensity = 0.3;   // dense enough that tiling governs

Matrix RandomDense(size_t dim, uint64_t seed) {
  return RandomDenseMatrix(dim, dim, kDensity, seed);
}

BoolMatrix RandomBool(size_t dim, uint64_t seed) {
  return RandomBoolMatrix(dim, dim, kBoolDensity, seed);
}

void AddGflops(benchmark::State& state, size_t dim) {
  state.counters["dim"] = static_cast<double>(dim);
  state.counters["gflops"] = benchmark::Counter(
      2.0 * static_cast<double>(dim) * dim * dim * 1e-9,
      benchmark::Counter::kIsIterationInvariantRate);
}

void AddGwords(benchmark::State& state, size_t dim) {
  state.counters["dim"] = static_cast<double>(dim);
  state.counters["gwords"] = benchmark::Counter(
      BoolProductWordOps(dim, dim, dim) * 1e-9,
      benchmark::Counter::kIsIterationInvariantRate);
}

// ---- Dense ---------------------------------------------------------------

void BM_DenseBlocked(benchmark::State& state) {
  const auto dim = static_cast<size_t>(state.range(0));
  Matrix a = RandomDense(dim, 1);
  Matrix b = RandomDense(dim, 2);
  JPMM_CHECK_MSG(Multiply(a, b, 1) == MultiplyScalarReference(a, b),
                 "blocked kernel diverged from the seed kernel");
  Matrix c;
  for (auto _ : state) {
    Multiply(a, b, &c, /*threads=*/1);
    benchmark::DoNotOptimize(c.data());
  }
  AddGflops(state, dim);
}

void BM_DenseScalarSeed(benchmark::State& state) {
  const auto dim = static_cast<size_t>(state.range(0));
  Matrix a = RandomDense(dim, 1);
  Matrix b = RandomDense(dim, 2);
  for (auto _ : state) {
    Matrix c = MultiplyScalarReference(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  AddGflops(state, dim);
}

void BM_DenseNaive(benchmark::State& state) {
  const auto dim = static_cast<size_t>(state.range(0));
  Matrix a = RandomDense(dim, 1);
  Matrix b = RandomDense(dim, 2);
  for (auto _ : state) {
    Matrix c = MultiplyNaive(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  AddGflops(state, dim);
}

// ---- Per-ISA GEMM rows ----------------------------------------------------
//
// BM_DenseBlocked under each forced dispatch level, same operands. The
// acceptance bar: the explicit AVX-512 (or AVX2) micro-kernel meets or
// beats the auto-vectorized portable kernel at n in {1024, 2048}. Levels
// the host lacks skip with an error note instead of reporting a bogus
// portable time under a SIMD label.
void GemmIsaBody(benchmark::State& state, KernelIsa isa) {
  if (!IsaSupported(isa)) {
    state.SkipWithError("isa unsupported on this host");
    return;
  }
  ScopedIsaOverride force(isa);
  const auto dim = static_cast<size_t>(state.range(0));
  Matrix a = RandomDense(dim, 1);
  Matrix b = RandomDense(dim, 2);
  JPMM_CHECK_MSG(Multiply(a, b, 1) == MultiplyScalarReference(a, b),
                 "forced-isa kernel diverged from the seed kernel");
  Matrix c;
  for (auto _ : state) {
    Multiply(a, b, &c, /*threads=*/1);
    benchmark::DoNotOptimize(c.data());
  }
  AddGflops(state, dim);
  state.counters["isa"] = static_cast<double>(isa);
}

void BM_GemmIsaPortable(benchmark::State& state) {
  GemmIsaBody(state, KernelIsa::kPortable);
}
void BM_GemmIsaAvx2(benchmark::State& state) {
  GemmIsaBody(state, KernelIsa::kAvx2);
}
void BM_GemmIsaAvx512(benchmark::State& state) {
  GemmIsaBody(state, KernelIsa::kAvx512);
}

// ---- Parallel dense: shared packed-B slab vs replicated packing ----------
//
// The parallel mode: both benchmarks partition output rows across the same
// persistent pool; the only difference is that the shared-slab path packs
// B's panels once (in parallel) and every worker reads the one slab, while
// the replicated path has every worker re-pack the full B for its own row
// range. The gap is the redundant packing traffic — it widens with thread
// count. Run with --benchmark_filter=Parallel.

void BM_DenseParallelSharedSlab(benchmark::State& state) {
  const auto dim = static_cast<size_t>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  Matrix a = RandomDense(dim, 1);
  Matrix b = RandomDense(dim, 2);
  {
    Matrix got;
    MultiplyParallel(a, b, &got, threads);
    JPMM_CHECK_MSG(got == Multiply(a, b, 1),
                   "shared-slab parallel product diverged from sequential");
  }
  Matrix c;
  for (auto _ : state) {
    MultiplyParallel(a, b, &c, threads);
    benchmark::DoNotOptimize(c.data());
  }
  AddGflops(state, dim);
  state.counters["threads"] = threads;
}

void BM_DenseParallelReplicatedPack(benchmark::State& state) {
  const auto dim = static_cast<size_t>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  Matrix a = RandomDense(dim, 1);
  Matrix b = RandomDense(dim, 2);
  {
    Matrix got;
    MultiplyReplicatedPacking(a, b, &got, threads);
    JPMM_CHECK_MSG(got == Multiply(a, b, 1),
                   "replicated-packing parallel product diverged");
  }
  Matrix c;
  for (auto _ : state) {
    MultiplyReplicatedPacking(a, b, &c, threads);
    benchmark::DoNotOptimize(c.data());
  }
  AddGflops(state, dim);
  state.counters["threads"] = threads;
}

// ---- Boolean -------------------------------------------------------------

void BM_BoolBlocked(benchmark::State& state) {
  const auto dim = static_cast<size_t>(state.range(0));
  BoolMatrix a = RandomBool(dim, 3);
  BoolMatrix bt = RandomBool(dim, 4);
  {
    const BoolMatrix got = BoolProduct(a, bt, 1);
    const BoolMatrix want = BoolProductNaive(a, bt);
    for (size_t i = 0; i < dim; ++i) {
      JPMM_CHECK_MSG(std::memcmp(got.RowWords(i), want.RowWords(i),
                                 got.words_per_row() * 8) == 0,
                     "blocked BoolProduct diverged from the reference");
    }
  }
  for (auto _ : state) {
    BoolMatrix c = BoolProduct(a, bt, 1);
    benchmark::DoNotOptimize(c.RowWords(0));
  }
  AddGwords(state, dim);
}

void BM_BoolUnblocked(benchmark::State& state) {
  const auto dim = static_cast<size_t>(state.range(0));
  BoolMatrix a = RandomBool(dim, 3);
  BoolMatrix bt = RandomBool(dim, 4);
  for (auto _ : state) {
    BoolMatrix c = BoolProductNaive(a, bt);
    benchmark::DoNotOptimize(c.RowWords(0));
  }
  AddGwords(state, dim);
}

void BM_CountBlocked(benchmark::State& state) {
  const auto dim = static_cast<size_t>(state.range(0));
  BoolMatrix a = RandomBool(dim, 5);
  BoolMatrix bt = RandomBool(dim, 6);
  JPMM_CHECK_MSG(CountProduct(a, bt, 1) == CountProductNaive(a, bt),
                 "blocked CountProduct diverged from the reference");
  for (auto _ : state) {
    std::vector<uint32_t> c = CountProduct(a, bt, 1);
    benchmark::DoNotOptimize(c.data());
  }
  AddGwords(state, dim);
}

void BM_CountUnblocked(benchmark::State& state) {
  const auto dim = static_cast<size_t>(state.range(0));
  BoolMatrix a = RandomBool(dim, 5);
  BoolMatrix bt = RandomBool(dim, 6);
  for (auto _ : state) {
    std::vector<uint32_t> c = CountProductNaive(a, bt);
    benchmark::DoNotOptimize(c.data());
  }
  AddGwords(state, dim);
}

// ---- Sparse (CSR) kernels ------------------------------------------------
//
// Density arrives as parts-per-million in the second benchmark argument
// (google benchmark args are integers). Operands are built once per row
// via the shared generators, so the CSR and dense kernels see identical
// matrices. Verification oracle: CsrProductReference, the unblocked
// double-accumulator saxpy (itself checked against MultiplyNaive at 256 on
// first use) — full-product verification would be O(n^3) at n = 4096, so
// rows are verified up to a bounded op budget from row 0.

double PpmToDensity(int64_t ppm) { return static_cast<double>(ppm) * 1e-6; }

// Verify a prefix of rows of `got` against the reference, capped at roughly
// `max_ops` accumulate operations so high-density 4096 rows stay tractable.
void VerifySparsePrefix(const CsrMatrix& a, const Matrix& b,
                        const std::function<void(size_t, size_t,
                                                 std::span<float>)>& got_rows,
                        double max_ops = 2e9) {
  {
    // Tie the reference itself to the ground-truth naive kernel once.
    static bool reference_checked = [] {
      const Matrix ad = RandomDenseMatrix(256, 192, 0.05, 71);
      const Matrix bd = RandomDenseMatrix(192, 128, 0.05, 72);
      JPMM_CHECK_MSG(
          CsrProductReference(CsrMatrix::FromDense(ad), bd) ==
              MultiplyNaive(ad, bd),
          "CsrProductReference diverged from the naive dense kernel");
      return true;
    }();
    (void)reference_checked;
  }
  const size_t w = b.cols();
  size_t vrows = 0;
  double ops = 0.0;
  while (vrows < a.rows() && ops < max_ops) {
    ops += static_cast<double>(a.Row(vrows).size() + 1) * w;
    ++vrows;
  }
  if (vrows == 0) return;
  std::vector<float> out(vrows * w);
  got_rows(0, vrows, out);
  // Reference over the verified prefix only — a full-matrix reference at
  // dim 4096 / density 0.25 would cost the very O(nnz * w) the cap bounds.
  CsrMatrix prefix(a.cols());
  for (size_t i = 0; i < vrows; ++i) {
    for (uint32_t c : a.Row(i)) prefix.PushCol(c);
    prefix.FinishRow();
  }
  const Matrix want = CsrProductReference(prefix, b);
  for (size_t i = 0; i < vrows; ++i) {
    JPMM_CHECK_MSG(std::memcmp(out.data() + i * w, want.Row(i).data(),
                               w * sizeof(float)) == 0,
                   "sparse kernel diverged from the saxpy reference");
  }
}

void AddSparseCounters(benchmark::State& state, size_t dim, uint64_t nnz,
                       double ops) {
  state.counters["dim"] = static_cast<double>(dim);
  state.counters["nnz"] = static_cast<double>(nnz);
  state.counters["density"] =
      static_cast<double>(nnz) / (static_cast<double>(dim) * dim);
  state.counters["gnnzops"] = benchmark::Counter(
      ops * 1e-9, benchmark::Counter::kIsIterationInvariantRate);
}

void BM_SparseCsrDense(benchmark::State& state) {
  const auto dim = static_cast<size_t>(state.range(0));
  const double density = PpmToDensity(state.range(1));
  const Matrix b = RandomDenseMatrix(dim, dim, density, 11);
  const CsrMatrix a =
      CsrMatrix::FromDense(RandomDenseMatrix(dim, dim, density, 12));
  VerifySparsePrefix(a, b, [&](size_t r0, size_t r1, std::span<float> out) {
    CsrDenseRowRange(a, b, r0, r1, out);
  });
  for (auto _ : state) {
    Matrix c = CsrDenseProduct(a, b, 1);
    benchmark::DoNotOptimize(c.data());
  }
  AddSparseCounters(state, dim, a.nnz(), SparseProductOps(a.nnz(), dim, dim));
}

void BM_SparseCsrCsr(benchmark::State& state) {
  const auto dim = static_cast<size_t>(state.range(0));
  const double density = PpmToDensity(state.range(1));
  const Matrix bd = RandomDenseMatrix(dim, dim, density, 11);
  const CsrMatrix a =
      CsrMatrix::FromDense(RandomDenseMatrix(dim, dim, density, 12));
  const CsrMatrix b = CsrMatrix::FromDense(bd);
  {
    CsrScratch scratch;
    VerifySparsePrefix(a, bd,
                       [&](size_t r0, size_t r1, std::span<float> out) {
                         SparseRowBlock blk;
                         CsrCsrRowRange(a, b, r0, r1, &scratch, &blk);
                         for (size_t i = r0; i < r1; ++i) {
                           const auto cols = blk.RowCols(i - r0);
                           const auto counts = blk.RowCounts(i - r0);
                           float* row = out.data() + (i - r0) * dim;
                           std::fill(row, row + dim, 0.0f);
                           for (size_t e = 0; e < cols.size(); ++e) {
                             row[cols[e]] = static_cast<float>(counts[e]);
                           }
                         }
                       });
  }
  for (auto _ : state) {
    Matrix c = CsrCsrProduct(a, b, 1);
    benchmark::DoNotOptimize(c.data());
  }
  AddSparseCounters(state, dim, a.nnz(),
                    CsrCsrExpandOps(a, b, 0, a.rows()));
}

// Dense blocked GEMM on the same sparse operands — the baseline the
// acceptance criterion compares against (its runtime is density-blind).
void BM_SparseDenseGemm(benchmark::State& state) {
  const auto dim = static_cast<size_t>(state.range(0));
  const double density = PpmToDensity(state.range(1));
  const Matrix b = RandomDenseMatrix(dim, dim, density, 11);
  const Matrix a = RandomDenseMatrix(dim, dim, density, 12);
  for (auto _ : state) {
    Matrix c = Multiply(a, b, 1);
    benchmark::DoNotOptimize(c.data());
  }
  AddGflops(state, dim);
  state.counters["density"] = density;
}

// Measures SparseKernelRates and bisects the density where the modeled
// dense GEMM time equals the modeled CSR x dense time at this dim — the
// machine's dense/sparse crossover, emitted into the bench JSON for
// trajectory tracking.
void BM_SparseCrossover(benchmark::State& state) {
  const auto dim = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    const SparseKernelRates rates = SparseKernelRates::Measure(
        static_cast<uint32_t>(std::min<uint64_t>(dim, 1024)));
    benchmark::DoNotOptimize(&rates);
    auto csr_minus_dense = [&](double d) {
      const auto nnz =
          static_cast<uint64_t>(d * static_cast<double>(dim) * dim);
      const double dense_sec = 2.0 * static_cast<double>(dim) * dim * dim /
                               rates.dense_flops_per_sec;
      const double csr_sec = SparseProductSeconds(
          SparseProductOps(nnz, dim, dim), rates.CsrDenseRate(d));
      return csr_sec - dense_sec;
    };
    double lo = 1e-6, hi = 1.0;
    if (csr_minus_dense(hi) < 0.0) {
      state.counters["crossover_density"] = 1.0;  // CSR wins everywhere
    } else {
      for (int it = 0; it < 64; ++it) {
        const double mid = std::sqrt(lo * hi);  // bisect in log space
        (csr_minus_dense(mid) < 0.0 ? lo : hi) = mid;
      }
      state.counters["crossover_density"] = hi;
    }
    state.counters["dense_gflops"] = rates.dense_flops_per_sec * 1e-9;
  }
}

// ---- Transpose -----------------------------------------------------------

// The seed implementation: per set bit, one random write.
BoolMatrix TransposeScatter(const BoolMatrix& m) {
  BoolMatrix t(m.cols(), m.rows());
  for (size_t i = 0; i < m.rows(); ++i) {
    const uint64_t* row = m.RowWords(i);
    for (size_t wi = 0; wi < m.words_per_row(); ++wi) {
      uint64_t w = row[wi];
      while (w != 0) {
        const int bit = std::countr_zero(w);
        t.Set((wi << 6) + static_cast<size_t>(bit), i);
        w &= w - 1;
      }
    }
  }
  return t;
}

void BM_TransposeBlocked(benchmark::State& state) {
  const auto dim = static_cast<size_t>(state.range(0));
  BoolMatrix m = RandomBool(dim, 7);
  {
    const BoolMatrix got = m.Transposed();
    const BoolMatrix want = TransposeScatter(m);
    for (size_t i = 0; i < got.rows(); ++i) {
      JPMM_CHECK_MSG(std::memcmp(got.RowWords(i), want.RowWords(i),
                                 got.words_per_row() * 8) == 0,
                     "block transpose diverged from the scatter reference");
    }
  }
  for (auto _ : state) {
    BoolMatrix t = m.Transposed();
    benchmark::DoNotOptimize(t.RowWords(0));
  }
  state.counters["dim"] = static_cast<double>(dim);
}

void BM_TransposeScatter(benchmark::State& state) {
  const auto dim = static_cast<size_t>(state.range(0));
  BoolMatrix m = RandomBool(dim, 7);
  for (auto _ : state) {
    BoolMatrix t = TransposeScatter(m);
    benchmark::DoNotOptimize(t.RowWords(0));
  }
  state.counters["dim"] = static_cast<double>(dim);
}

// ---- Instrumentation overhead --------------------------------------------

// The observability acceptance row: the same prepared two-path join
// executed with the metrics registry enabled vs disabled
// (SetMetricsEnabled, the runtime form of JPMM_METRICS=off), alternating
// within every iteration so clock drift and cache warmth cancel. Emits
//
//   overhead_pct = (time_on / time_off - 1) * 100
//
// which CI's bench smoke asserts stays under 2. Tracing stays off on both
// sides — no TraceRecorder is attached — so the row isolates the always-on
// counter/histogram cost, which is what production pays.
void BM_MetricsOverhead(benchmark::State& state) {
  static QueryEngine* engine = [] {
    auto* e = new QueryEngine();
    e->AddRelation("R", MakePreset(DatasetPreset::kJokes,
                                   0.2 * ScaleFromEnv(), 42));
    return e;
  }();
  static PreparedQuery* query = [] {
    QuerySpec spec;
    spec.kind = QueryKind::kTwoPath;
    spec.relations = {"R"};
    auto* q = new PreparedQuery();
    JPMM_CHECK(engine->Prepare(spec, q).ok());
    CountOnlySink warm;  // warm the plan cache outside the timed region
    JPMM_CHECK(engine->Execute(*q, warm, {}).ok());
    return q;
  }();
  using clock = std::chrono::steady_clock;
  double on_s = 0.0, off_s = 0.0;
  for (auto _ : state) {
    SetMetricsEnabled(true);
    auto t0 = clock::now();
    CountOnlySink a;
    JPMM_CHECK(engine->Execute(*query, a, {}).ok());
    on_s += std::chrono::duration<double>(clock::now() - t0).count();

    SetMetricsEnabled(false);
    t0 = clock::now();
    CountOnlySink b;
    JPMM_CHECK(engine->Execute(*query, b, {}).ok());
    off_s += std::chrono::duration<double>(clock::now() - t0).count();
    benchmark::DoNotOptimize(a.count() + b.count());
  }
  SetMetricsEnabled(true);  // leave the process instrumented
  state.counters["overhead_pct"] =
      off_s > 0.0 ? (on_s / off_s - 1.0) * 100.0 : 0.0;
}

// ---- Calibration feed-through --------------------------------------------

// Sanity row: the measured boolean word rate (what the cost model consumes)
// against the modeled word-op count, demonstrating the calibration ->
// cost-model path the optimizer uses.
void BM_BoolRateCalibration(benchmark::State& state) {
  for (auto _ : state) {
    BoolKernelRates rates = BoolKernelRates::Measure(512);
    benchmark::DoNotOptimize(rates);
    state.counters["bool_gwords_per_s"] = rates.bool_words_per_sec * 1e-9;
    state.counters["count_gwords_per_s"] = rates.count_words_per_sec * 1e-9;
    state.counters["est_1024_ms"] =
        BoolProductSeconds(1024, 1024, 1024, rates.count_words_per_sec) * 1e3;
  }
}

}  // namespace

BENCHMARK(BM_DenseBlocked)
    ->Arg(512)
    ->Arg(1024)
    ->Arg(1536)
    ->Arg(2048)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DenseScalarSeed)
    ->Arg(512)
    ->Arg(1024)
    ->Arg(1536)
    ->Arg(2048)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DenseNaive)->Arg(512)->Unit(benchmark::kMillisecond);

BENCHMARK(BM_GemmIsaPortable)
    ->Arg(1024)
    ->Arg(2048)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GemmIsaAvx2)
    ->Arg(1024)
    ->Arg(2048)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GemmIsaAvx512)
    ->Arg(1024)
    ->Arg(2048)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_DenseParallelSharedSlab)
    ->Args({2048, 1})
    ->Args({2048, 2})
    ->Args({2048, 4})
    ->Args({2048, 8})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(BM_DenseParallelReplicatedPack)
    ->Args({2048, 1})
    ->Args({2048, 2})
    ->Args({2048, 4})
    ->Args({2048, 8})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

BENCHMARK(BM_BoolBlocked)
    ->Arg(1024)
    ->Arg(2048)
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BoolUnblocked)
    ->Arg(1024)
    ->Arg(2048)
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CountBlocked)
    ->Arg(1024)
    ->Arg(2048)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CountUnblocked)
    ->Arg(1024)
    ->Arg(2048)
    ->Unit(benchmark::kMillisecond);

// Density sweep {1e-4, 1e-3, 1e-2, 0.1, 0.25} (ppm) at n in {1024, 4096}.
#define JPMM_SPARSE_SWEEP(bench)                                          \
  BENCHMARK(bench)                                                        \
      ->Args({1024, 100})                                                 \
      ->Args({1024, 1000})                                                \
      ->Args({1024, 10000})                                               \
      ->Args({1024, 100000})                                              \
      ->Args({1024, 250000})                                              \
      ->Args({4096, 100})                                                 \
      ->Args({4096, 1000})                                                \
      ->Args({4096, 10000})                                               \
      ->Args({4096, 100000})                                              \
      ->Args({4096, 250000})                                              \
      ->Unit(benchmark::kMillisecond)
JPMM_SPARSE_SWEEP(BM_SparseCsrDense);
JPMM_SPARSE_SWEEP(BM_SparseCsrCsr);
#undef JPMM_SPARSE_SWEEP
BENCHMARK(BM_SparseDenseGemm)
    ->Args({1024, 1000})
    ->Args({4096, 1000})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SparseCrossover)->Arg(1024)->Unit(benchmark::kMillisecond);

BENCHMARK(BM_TransposeBlocked)->Arg(4096)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TransposeScatter)->Arg(4096)->Unit(benchmark::kMillisecond);

BENCHMARK(BM_MetricsOverhead)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(2.0)
    ->UseRealTime();

BENCHMARK(BM_BoolRateCalibration)->Unit(benchmark::kMillisecond);

JPMM_BENCH_MAIN();
