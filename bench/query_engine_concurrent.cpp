// Concurrent multi-client QueryEngine throughput — the serving-mode
// acceptance row.
//
// One shared engine + one shared PreparedQuery, hammered by 1 / 4 / 16
// simulated clients (google benchmark's ->Threads fan-out; every benchmark
// thread is one client running Execute with its own sink, threads=1 per
// execution so clients, not intra-query workers, carry the parallelism):
//
//   SharedEngineExecute      CountOnlySink full evaluation per request
//   SharedEngineLimit10      LimitSink(10) — the early-exit request mix
//   SharedEnginePage         PageSink(100, 25) — pagination requests
//   SharedEngineMixedPrepare each iteration Prepares a fresh PreparedQuery
//                            then Executes it (the catalog read path)
//
// The criterion: aggregate items/sec at 4 clients >= 2x the 1-client row
// (hardware permitting — on a single-core container the curve is flat and
// the row still guards against lock regressions: a serialized engine would
// scale *below* 1x).

// Each row additionally reports its per-request latency distribution
// (client_p50_ms / client_p99_ms / client_lat_le_* bucket counters) via
// the shared Histogram type, so bench_compare.py can diff tail latency,
// not just throughput.

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench/bench_util.h"
#include "core/query_engine.h"
#include "core/result_sink.h"
#include "datagen/presets.h"

using namespace jpmm;

namespace {

// Times one client's requests into the shared histogram type. One
// standalone (ungated) instance per benchmark thread; ReportLatency sums
// the buckets across threads and averages the percentiles.
struct LatencyProbe {
  Histogram hist{DefaultLatencyBoundsMs()};
  std::chrono::steady_clock::time_point t0;

  void Start() { t0 = std::chrono::steady_clock::now(); }
  void Stop() {
    hist.Record(std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count());
  }
  void Report(benchmark::State& state) {
    benchutil::ReportLatency(state, hist.Snapshot());
  }
};

// Shared across all benchmark threads: the serving topology under test is
// many clients -> one engine -> one catalog.
QueryEngine& SharedEngine() {
  static QueryEngine* engine = [] {
    auto* e = new QueryEngine();
    e->AddRelation("R", MakePreset(DatasetPreset::kJokes,
                                   0.4 * ScaleFromEnv(), 42));
    return e;
  }();
  return *engine;
}

PreparedQuery& SharedQuery() {
  static PreparedQuery* query = [] {
    QuerySpec spec;
    spec.kind = QueryKind::kTwoPath;
    spec.relations = {"R"};
    auto* q = new PreparedQuery();
    QueryStatus st = SharedEngine().Prepare(spec, q);
    if (!st.ok()) {
      std::fprintf(stderr, "prepare failed: %s\n", st.message().c_str());
      std::abort();
    }
    // Warm the plan cache so the timed loop measures the serving path, not
    // the one-time optimizer run.
    CountOnlySink warm;
    SharedEngine().Execute(*q, warm, {});
    return q;
  }();
  return *query;
}

void BM_SharedEngineExecute(benchmark::State& state) {
  PreparedQuery& q = SharedQuery();
  LatencyProbe lat;
  for (auto _ : state) {
    CountOnlySink sink;
    lat.Start();
    QueryStatus st = SharedEngine().Execute(q, sink, {});
    lat.Stop();
    if (!st.ok()) state.SkipWithError(st.message().c_str());
    benchmark::DoNotOptimize(sink.count());
  }
  lat.Report(state);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SharedEngineExecute)
    ->Threads(1)
    ->Threads(4)
    ->Threads(16)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_SharedEngineLimit10(benchmark::State& state) {
  PreparedQuery& q = SharedQuery();
  LatencyProbe lat;
  for (auto _ : state) {
    LimitSink sink(10);
    lat.Start();
    QueryStatus st = SharedEngine().Execute(q, sink, {});
    lat.Stop();
    if (!st.ok()) state.SkipWithError(st.message().c_str());
    benchmark::DoNotOptimize(sink.size());
  }
  lat.Report(state);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SharedEngineLimit10)
    ->Threads(1)
    ->Threads(4)
    ->Threads(16)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_SharedEnginePage(benchmark::State& state) {
  PreparedQuery& q = SharedQuery();
  LatencyProbe lat;
  for (auto _ : state) {
    PageSink sink(100, 25);
    lat.Start();
    QueryStatus st = SharedEngine().Execute(q, sink, {});
    lat.Stop();
    if (!st.ok()) state.SkipWithError(st.message().c_str());
    benchmark::DoNotOptimize(sink.size());
  }
  lat.Report(state);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SharedEnginePage)
    ->Threads(1)
    ->Threads(4)
    ->Threads(16)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_SharedEngineMixedPrepare(benchmark::State& state) {
  SharedQuery();  // ensure the engine + catalog exist before timing
  QuerySpec spec;
  spec.kind = QueryKind::kTwoPath;
  spec.relations = {"R"};
  LatencyProbe lat;
  for (auto _ : state) {
    lat.Start();
    PreparedQuery q;
    QueryStatus st = SharedEngine().Prepare(spec, &q);
    if (!st.ok()) state.SkipWithError(st.message().c_str());
    LimitSink sink(10);
    st = SharedEngine().Execute(q, sink, {});
    lat.Stop();
    if (!st.ok()) state.SkipWithError(st.message().c_str());
    benchmark::DoNotOptimize(sink.size());
  }
  lat.Report(state);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SharedEngineMixedPrepare)
    ->Threads(1)
    ->Threads(4)
    ->Threads(16)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

JPMM_BENCH_MAIN();
