// Multi-query batching drill — the coalescing acceptance row.
//
// N identical clients (1 / 16 / 64) repeatedly execute ONE shared
// PreparedQuery against the same QueryService, the dashboard / replicated-
// poller workload the batching subsystem exists for. Three service
// configurations run the same offered load:
//
//   ServiceUnbatched   every request is its own engine execution (the
//                      pre-batching baseline)
//   ServiceBatched     requests coalescing within the batch window share
//                      one leader execution whose results fan out
//   ServiceCached      batching plus the versioned result cache; repeat
//                      requests replay without executing at all
//
// Unlike query_service_overload.cpp this bench spawns its client threads
// INSIDE each iteration rather than via benchmark's ->Threads() fan-out:
// one iteration = every client issuing kRequestsPerClient requests against
// a fresh service, so the leader-execution count per iteration is an exact
// PreparedQuery::executions() delta, not a racy mid-run snapshot.
//
// Reported counters (per google-benchmark JSON, tracked by bench_compare):
//   ok / wrong           completed requests and oracle mismatches (wrong
//                        must be 0: coalescing may share work, never
//                        corrupt it)
//   leader_execs         engine executions actually run for the iteration's
//                        ok requests — the work-sharing numerator
//   share_factor         ok / leader_execs, >= 1; 1.0 when unbatched
//   client_p50_ms/p99_ms per-request latency percentiles via the shared
//                        Histogram type (batching trades p50 — the window
//                        wait — for aggregate throughput)
//
// The acceptance row is ServiceBatched/64: aggregate q/s (items_per_second)
// at least 8x ServiceUnbatched/64, with leader_execs a small fraction of ok.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "core/query_engine.h"
#include "core/query_service.h"
#include "core/result_sink.h"
#include "datagen/presets.h"

using namespace jpmm;

namespace {

constexpr int kRequestsPerClient = 4;

QueryEngine& SharedEngine() {
  static QueryEngine* engine = [] {
    auto* e = new QueryEngine();
    // Scaled so one execution costs tens of milliseconds: batching's win is
    // proportional to execution cost, and a trivial query would measure the
    // fixed per-request bookkeeping instead of the work sharing.
    e->AddRelation("R", MakePreset(DatasetPreset::kJokes,
                                   2.0 * ScaleFromEnv(), 7));
    return e;
  }();
  return *engine;
}

PreparedQuery& SharedQuery() {
  static PreparedQuery* query = [] {
    QuerySpec spec;
    spec.kind = QueryKind::kTwoPath;
    spec.relations = {"R"};
    auto* q = new PreparedQuery();
    QueryStatus st = SharedEngine().Prepare(spec, q);
    if (!st.ok()) {
      std::fprintf(stderr, "prepare failed: %s\n", st.message().c_str());
      std::abort();
    }
    CountOnlySink warm;
    SharedEngine().Execute(*q, warm, {});
    return q;
  }();
  return *query;
}

// The single-client answer every completed request must match.
uint64_t OracleCount() {
  static const uint64_t count = [] {
    CountOnlySink sink;
    QueryStatus st = SharedEngine().Execute(SharedQuery(), sink, {});
    if (!st.ok()) std::abort();
    return sink.count();
  }();
  return count;
}

enum class Mode { kUnbatched, kBatched, kCached };

QueryServiceOptions OptionsFor(Mode mode, int clients) {
  QueryServiceOptions opt;
  // Provisioned so admission never sheds: this bench measures coalescing,
  // not overload (query_service_overload.cpp owns that row).
  opt.max_inflight = 4;
  opt.queue_depth = static_cast<size_t>(clients) * kRequestsPerClient + 1;
  opt.max_queued_per_class = opt.queue_depth;
  if (mode != Mode::kUnbatched) {
    opt.enable_batching = true;
    opt.batch_window_ms = 4;
  }
  if (mode == Mode::kCached) {
    opt.enable_result_cache = true;
  }
  return opt;
}

struct Tally {
  int64_t ok = 0;
  int64_t wrong = 0;
  int64_t leader_execs = 0;
  Histogram latency_ms{DefaultLatencyBoundsMs()};
};

void RunClients(Mode mode, int clients, Tally& t) {
  QueryService service(&SharedEngine(), OptionsFor(mode, clients));
  PreparedQuery& q = SharedQuery();
  const uint64_t oracle = OracleCount();
  const uint64_t execs_before = q.executions();
  std::vector<int64_t> ok(static_cast<size_t>(clients), 0);
  std::vector<int64_t> wrong(static_cast<size_t>(clients), 0);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      ServiceRequest req;
      req.exec.threads = 1;
      for (int i = 0; i < kRequestsPerClient; ++i) {
        CountOnlySink sink;
        const auto t0 = std::chrono::steady_clock::now();
        QueryStatus st = service.Execute(q, sink, req);
        const auto t1 = std::chrono::steady_clock::now();
        t.latency_ms.Record(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
        if (st.ok()) {
          ++ok[static_cast<size_t>(c)];
          if (sink.count() != oracle) ++wrong[static_cast<size_t>(c)];
        } else {
          ++wrong[static_cast<size_t>(c)];
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int c = 0; c < clients; ++c) {
    t.ok += ok[static_cast<size_t>(c)];
    t.wrong += wrong[static_cast<size_t>(c)];
  }
  t.leader_execs += static_cast<int64_t>(q.executions() - execs_before);
}

void Report(benchmark::State& state, const Tally& t) {
  using benchmark::Counter;
  state.counters["ok"] = Counter(static_cast<double>(t.ok));
  state.counters["wrong"] = Counter(static_cast<double>(t.wrong));
  state.counters["leader_execs"] = Counter(static_cast<double>(t.leader_execs));
  state.counters["share_factor"] =
      Counter(t.leader_execs > 0
                  ? static_cast<double>(t.ok) /
                        static_cast<double>(t.leader_execs)
                  : static_cast<double>(t.ok));
  benchutil::ReportLatency(state, t.latency_ms.Snapshot());
  state.SetItemsProcessed(t.ok);
}

void RunMode(benchmark::State& state, Mode mode) {
  const int clients = static_cast<int>(state.range(0));
  OracleCount();  // warm engine + oracle outside the timed region
  Tally t;
  for (auto _ : state) {
    RunClients(mode, clients, t);
  }
  Report(state, t);
}

void BM_ServiceUnbatched(benchmark::State& state) {
  RunMode(state, Mode::kUnbatched);
}
BENCHMARK(BM_ServiceUnbatched)
    ->Arg(1)
    ->Arg(16)
    ->Arg(64)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_ServiceBatched(benchmark::State& state) {
  RunMode(state, Mode::kBatched);
}
BENCHMARK(BM_ServiceBatched)
    ->Arg(1)
    ->Arg(16)
    ->Arg(64)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_ServiceCached(benchmark::State& state) {
  RunMode(state, Mode::kCached);
}
BENCHMARK(BM_ServiceCached)
    ->Arg(1)
    ->Arg(16)
    ->Arg(64)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

JPMM_BENCH_MAIN();
