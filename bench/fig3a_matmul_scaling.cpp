// Figure 3a — matrix multiplication running time vs dimension, single core.
//
// The paper plots Eigen+MKL square-product times for dimensions up to
// 10000; the same sweep over jpmm's kernel shows the near-cubic growth the
// §5 cost table extrapolates from. Dimensions are scaled down to keep the
// single-core run short (JPMM_SCALE raises them).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "matrix/dense_matrix.h"
#include "matrix/matmul.h"
#include "matrix/random.h"

using namespace jpmm;

namespace {

Matrix RandomDense(size_t dim, uint64_t seed) {
  return RandomDenseMatrix(dim, dim, 0.5, seed);
}

void BM_SquareMatMul(benchmark::State& state) {
  const auto dim = static_cast<size_t>(state.range(0));
  Matrix a = RandomDense(dim, 1);
  Matrix b = RandomDense(dim, 2);
  Matrix c;
  for (auto _ : state) {
    Multiply(a, b, &c, /*threads=*/1);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["dim"] = static_cast<double>(dim);
  state.counters["gflops"] = benchmark::Counter(
      2.0 * static_cast<double>(dim) * dim * dim * 1e-9,
      benchmark::Counter::kIsIterationInvariantRate);
}

}  // namespace

BENCHMARK(BM_SquareMatMul)
    ->Arg(256)
    ->Arg(512)
    ->Arg(768)
    ->Arg(1024)
    ->Arg(1536)
    ->Arg(2048)
    ->Unit(benchmark::kMillisecond);

JPMM_BENCH_MAIN();
