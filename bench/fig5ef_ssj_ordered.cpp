// Figures 5e/5f — ordered SSJ vs overlap threshold c (DBLP-, Jokes-like).
//
// Ordered output = pairs sorted by overlap descending. MMJoin and
// SizeAware++ get overlaps for free from witness counting; SizeAware pays
// an extra intersection per output pair (§7.3).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "ssj/mm_ssj.h"
#include "ssj/size_aware.h"
#include "ssj/size_aware_pp.h"

using namespace jpmm;
using benchutil::CachedPreset;

namespace {

enum class SsjEngine { kMm, kSizeAwarePP, kSizeAware };

const char* SsjEngineName(SsjEngine e) {
  switch (e) {
    case SsjEngine::kMm:
      return "MMJoin";
    case SsjEngine::kSizeAwarePP:
      return "SizeAware++";
    case SsjEngine::kSizeAware:
      return "SizeAware";
  }
  return "?";
}

void BM_SsjOrdered(benchmark::State& state, DatasetPreset preset,
                   SsjEngine engine, uint32_t c) {
  const double extra = preset == DatasetPreset::kDblp ? 0.25 : 1.0;
  const auto& ds = CachedPreset(preset, extra);
  SsjOptions opts;
  opts.c = c;
  opts.ordered = true;
  size_t out_size = 0;
  for (auto _ : state) {
    switch (engine) {
      case SsjEngine::kMm:
        out_size = MmSsj(*ds.fam, opts).size();
        break;
      case SsjEngine::kSizeAwarePP:
        out_size = SizeAwarePlusPlus(*ds.fam, opts).size();
        break;
      case SsjEngine::kSizeAware:
        out_size = SizeAwareJoin(*ds.fam, opts).size();
        break;
    }
    benchmark::DoNotOptimize(out_size);
  }
  state.counters["c"] = c;
  state.counters["out"] = static_cast<double>(out_size);
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::WarmCalibration();
  const std::pair<DatasetPreset, const char*> figs[] = {
      {DatasetPreset::kDblp, "Fig5e"},
      {DatasetPreset::kJokes, "Fig5f"},
  };
  for (const auto& [preset, fig] : figs) {
    for (SsjEngine e :
         {SsjEngine::kMm, SsjEngine::kSizeAwarePP, SsjEngine::kSizeAware}) {
      for (uint32_t c : {2u, 3u, 4u, 5u, 6u}) {
        const std::string name = std::string(fig) + "/" + PresetName(preset) +
                                 "/" + SsjEngineName(e) + "/c:" +
                                 std::to_string(c);
        benchmark::RegisterBenchmark(name.c_str(), BM_SsjOrdered, preset, e, c)
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
      }
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
