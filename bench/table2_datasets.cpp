// Table 2 — dataset characteristics.
//
// Prints, for each synthetic preset, the columns the paper reports: |R|,
// number of sets, |dom|, avg/min/max set size — plus the full-join size and
// duplication factor that drive every other experiment. The "benchmark"
// timings here are generation times; the table itself goes to stdout.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "storage/stats.h"

using namespace jpmm;
using benchutil::CachedPreset;

namespace {

void BM_GenerateAndDescribe(benchmark::State& state, DatasetPreset preset) {
  for (auto _ : state) {
    const auto& ds = CachedPreset(preset);
    benchmark::DoNotOptimize(ds.rel.size());
  }
  const auto& ds = CachedPreset(preset);
  const SetFamilyStats st = ds.fam->Stats();
  TwoPathStats tp(*ds.idx, *ds.idx);
  state.counters["tuples"] = static_cast<double>(st.num_tuples);
  state.counters["sets"] = static_cast<double>(st.num_sets);
  state.counters["dom"] = static_cast<double>(st.dom_size);
  state.counters["avg_size"] = st.avg_set_size;
  state.counters["min_size"] = static_cast<double>(st.min_set_size);
  state.counters["max_size"] = static_cast<double>(st.max_set_size);
  state.counters["join_size"] = static_cast<double>(tp.full_join_size());
  state.counters["join_per_tuple"] =
      static_cast<double>(tp.full_join_size()) /
      static_cast<double>(st.num_tuples);
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("Table 2: dataset characteristics (scale=%.2f)\n",
              ScaleFromEnv());
  for (DatasetPreset p : AllPresets()) {
    benchmark::RegisterBenchmark((std::string("Table2/") + PresetName(p)).c_str(),
                                 BM_GenerateAndDescribe, p)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
