// Figure 4b — three-relation star query, single core.
//
// Q*3(x, z, p) = R(x,y), R(z,y), R(p,y) over a sample of each dataset
// (the paper samples so the result fits in memory; we scale the presets
// down instead). Series: MMJoin (§3.2) vs the combinatorial Non-MM star.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/join_project.h"

using namespace jpmm;
using benchutil::CachedPreset;

namespace {

// Star outputs are k-dimensional: sample harder than the 2-path bench
// (the paper does the same: "we take the largest sample of each relation so
// that the result can fit in main memory"). Words gets the hardest cut —
// its hub elements make the 3-star output near-cubic.
double StarScale(DatasetPreset p) {
  return p == DatasetPreset::kWords ? 0.05 : 0.2;
}

void BM_Star(benchmark::State& state, DatasetPreset preset, Strategy strategy) {
  const auto& ds = CachedPreset(preset, StarScale(preset));
  std::vector<const IndexedRelation*> rels = {ds.idx.get(), ds.idx.get(),
                                              ds.idx.get()};
  size_t out_size = 0;
  for (auto _ : state) {
    JoinProjectOptions opts;
    opts.strategy = strategy;
    auto res = JoinProject::Star(rels, opts);
    out_size = res.tuples.size();
    benchmark::DoNotOptimize(out_size);
  }
  state.counters["out"] = static_cast<double>(out_size);
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::WarmCalibration();
  for (DatasetPreset p : AllPresets()) {
    const std::string mm = std::string("Fig4b/") + PresetName(p) + "/MMJoin";
    benchmark::RegisterBenchmark(mm.c_str(), BM_Star, p, Strategy::kMmJoin)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    const std::string nonmm =
        std::string("Fig4b/") + PresetName(p) + "/NonMMJoin";
    benchmark::RegisterBenchmark(nonmm.c_str(), BM_Star, p,
                                 Strategy::kNonMmJoin)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
