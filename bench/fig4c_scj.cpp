// Figure 4c — set containment join across the six datasets, single core.
//
// Series: MM-SCJ, PIEJoin, PRETTI, LIMIT+. Paper shape (§7.4): join-project
// evaluation fastest on the dense families (verification-free), trie
// methods competitive on the sparse ones (DBLP/RoadNet).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "scj/limit_plus.h"
#include "scj/mm_scj.h"
#include "scj/piejoin.h"
#include "scj/pretti.h"

using namespace jpmm;
using benchutil::CachedPreset;

namespace {

enum class ScjEngine { kMm, kPie, kPretti, kLimit };

const char* ScjEngineName(ScjEngine e) {
  switch (e) {
    case ScjEngine::kMm:
      return "MMJoin";
    case ScjEngine::kPie:
      return "PIEJoin";
    case ScjEngine::kPretti:
      return "PRETTI";
    case ScjEngine::kLimit:
      return "LIMIT+";
  }
  return "?";
}

void BM_Scj(benchmark::State& state, DatasetPreset preset, ScjEngine engine) {
  const auto& ds = CachedPreset(preset);
  size_t out_size = 0;
  for (auto _ : state) {
    switch (engine) {
      case ScjEngine::kMm:
        out_size = MmScj(*ds.fam).size();
        break;
      case ScjEngine::kPie:
        out_size = PieJoin(*ds.fam).size();
        break;
      case ScjEngine::kPretti:
        out_size = PrettiJoin(*ds.fam).size();
        break;
      case ScjEngine::kLimit:
        out_size = LimitPlusJoin(*ds.fam).size();
        break;
    }
    benchmark::DoNotOptimize(out_size);
  }
  state.counters["out"] = static_cast<double>(out_size);
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::WarmCalibration();
  for (DatasetPreset p : AllPresets()) {
    for (ScjEngine e : {ScjEngine::kMm, ScjEngine::kPie, ScjEngine::kPretti,
                        ScjEngine::kLimit}) {
      const std::string name =
          std::string("Fig4c/") + PresetName(p) + "/" + ScjEngineName(e);
      benchmark::RegisterBenchmark(name.c_str(), BM_Scj, p, e)
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
