// Figure 8 — impact of the SizeAware++ optimizations on the Words-like
// dataset (c = 2).
//
// Configurations accumulate like the paper's bars:
//   NO-OP  : plain SizeAware (no optimization)
//   Light  : + two-path join on the light sets
//   Heavy  : + two-path join on the heavy sets
//   Prefix : + prefix-tree materialization for the light expansion
// Reported as a counter "pct_of_noop" — the figure's y-axis (100% = NO-OP).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "ssj/size_aware.h"
#include "ssj/size_aware_pp.h"

using namespace jpmm;
using benchutil::CachedPreset;

namespace {

double g_noop_seconds = 0.0;

SsjOptions ConfigFor(int level) {
  SsjOptions opts;
  opts.c = 2;
  opts.use_mm_light = level >= 1;
  opts.use_mm_heavy = level >= 2;
  opts.use_prefix = level >= 3;
  return opts;
}

void BM_Ablation(benchmark::State& state, int level) {
  const auto& ds = CachedPreset(DatasetPreset::kWords);
  const SsjOptions opts = ConfigFor(level);
  double seconds = 0.0;
  size_t out_size = 0;
  for (auto _ : state) {
    WallTimer t;
    out_size = level == 0 ? SizeAwareJoin(*ds.fam, opts).size()
                          : SizeAwarePlusPlus(*ds.fam, opts).size();
    seconds = t.Seconds();
    benchmark::DoNotOptimize(out_size);
  }
  if (level == 0) g_noop_seconds = seconds;
  state.counters["out"] = static_cast<double>(out_size);
  if (g_noop_seconds > 0.0) {
    state.counters["pct_of_noop"] = 100.0 * seconds / g_noop_seconds;
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::WarmCalibration();
  const char* names[] = {"NO-OP", "Light", "Heavy", "Prefix"};
  for (int level = 0; level < 4; ++level) {
    benchmark::RegisterBenchmark((std::string("Fig8/Words/") + names[level]).c_str(),
                                 BM_Ablation, level)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
