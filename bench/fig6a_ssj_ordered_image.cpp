// Figure 6a — ordered SSJ vs overlap threshold c on the Image-like dataset
// (the densest family; the regime where SizeAware's per-pair overlap
// computation hurts the most).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "ssj/mm_ssj.h"
#include "ssj/size_aware.h"
#include "ssj/size_aware_pp.h"

using namespace jpmm;
using benchutil::CachedPreset;

namespace {

void BM_OrderedImage(benchmark::State& state, int engine, uint32_t c) {
  const auto& ds = CachedPreset(DatasetPreset::kImage);
  SsjOptions opts;
  opts.c = c;
  opts.ordered = true;
  size_t out_size = 0;
  for (auto _ : state) {
    switch (engine) {
      case 0:
        out_size = MmSsj(*ds.fam, opts).size();
        break;
      case 1:
        out_size = SizeAwarePlusPlus(*ds.fam, opts).size();
        break;
      default:
        out_size = SizeAwareJoin(*ds.fam, opts).size();
        break;
    }
    benchmark::DoNotOptimize(out_size);
  }
  state.counters["c"] = c;
  state.counters["out"] = static_cast<double>(out_size);
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::WarmCalibration();
  const char* names[] = {"MMJoin", "SizeAware++", "SizeAware"};
  for (int engine : {0, 1, 2}) {
    for (uint32_t c : {2u, 3u, 4u, 5u, 6u}) {
      const std::string name = std::string("Fig6a/Image/") + names[engine] +
                               "/c:" + std::to_string(c);
      benchmark::RegisterBenchmark(name.c_str(), BM_OrderedImage, engine, c)
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
