// QueryService overload drill — the robustness acceptance row.
//
// 64 and 256 simulated clients (google benchmark's ->Threads fan-out, one
// client per benchmark thread) hammer one QueryService whose admission
// capacity — max_inflight execution slots plus the bounded FIFO queue — is
// provisioned at HALF the client count, i.e. the service runs at 2x
// capacity the whole time. The service must shed the excess with
// structured kOverloaded instead of queueing unboundedly or deadlocking.
//
//   ServiceOverloadDirect  every client calls Execute once per iteration
//                          and takes kOverloaded at face value
//   ServiceOverloadRetry   clients wrap Execute in RetryWithBackoff, so
//                          sheds convert into eventual completions at the
//                          cost of backoff latency
//
// Reported counters (per google-benchmark JSON, tracked by bench_compare):
//   ok / shed            total completions and sheds across all clients
//   shed_rate            average per-client shed fraction
//   client_p50_ms/p99_ms average per-client latency percentiles — the p99
//                        bound under 2x overload is the acceptance metric
//   client_lat_le_*      latency histogram buckets (shared Histogram type,
//                        summed across clients) so bench_compare.py can
//                        diff the whole distribution
//
// Every completed execution is checked against the unloaded oracle count:
// overload may shed work, it must never corrupt it.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>

#include "bench/bench_util.h"
#include "core/query_engine.h"
#include "core/query_service.h"
#include "core/result_sink.h"
#include "datagen/presets.h"

using namespace jpmm;

namespace {

QueryEngine& SharedEngine() {
  static QueryEngine* engine = [] {
    auto* e = new QueryEngine();
    e->AddRelation("R", MakePreset(DatasetPreset::kJokes,
                                   0.25 * ScaleFromEnv(), 42));
    return e;
  }();
  return *engine;
}

PreparedQuery& SharedQuery() {
  static PreparedQuery* query = [] {
    QuerySpec spec;
    spec.kind = QueryKind::kTwoPath;
    spec.relations = {"R"};
    auto* q = new PreparedQuery();
    QueryStatus st = SharedEngine().Prepare(spec, q);
    if (!st.ok()) {
      std::fprintf(stderr, "prepare failed: %s\n", st.message().c_str());
      std::abort();
    }
    CountOnlySink warm;
    SharedEngine().Execute(*q, warm, {});
    return q;
  }();
  return *query;
}

// The unloaded single-client answer every completed execution must match.
uint64_t OracleCount() {
  static const uint64_t count = [] {
    CountOnlySink sink;
    QueryStatus st = SharedEngine().Execute(SharedQuery(), sink, {});
    if (!st.ok()) std::abort();
    return sink.count();
  }();
  return count;
}

// One service per client count, provisioned at half the offered load:
// capacity = max_inflight slots + queue_depth waiters = clients / 2.
QueryService& ServiceFor(int clients) {
  static std::mutex mu;
  static std::map<int, QueryService*> services;
  std::lock_guard<std::mutex> lk(mu);
  auto it = services.find(clients);
  if (it == services.end()) {
    QueryServiceOptions opt;
    opt.max_inflight = std::max(1, clients / 4);
    opt.queue_depth = static_cast<size_t>(std::max(1, clients / 4));
    opt.max_queued_per_class = opt.queue_depth;
    it = services.emplace(clients, new QueryService(&SharedEngine(), opt))
             .first;
  }
  return *it->second;
}

// Per-client tally. Latencies go through the shared sharded Histogram (one
// standalone, ungated instance per client) instead of a sort-the-vector
// percentile: same type the service exports, so bench rows and production
// metrics bucket identically.
struct ClientTally {
  int64_t ok = 0;
  int64_t shed = 0;
  int64_t wrong = 0;
  Histogram latency_ms{DefaultLatencyBoundsMs()};
};

void Report(benchmark::State& state, ClientTally& t) {
  using benchmark::Counter;
  state.counters["ok"] = Counter(static_cast<double>(t.ok));
  state.counters["shed"] = Counter(static_cast<double>(t.shed));
  state.counters["wrong"] = Counter(static_cast<double>(t.wrong));
  const double n = static_cast<double>(t.ok + t.shed);
  state.counters["shed_rate"] =
      Counter(n > 0 ? static_cast<double>(t.shed) / n : 0.0,
              Counter::kAvgThreads);
  benchutil::ReportLatency(state, t.latency_ms.Snapshot());
  state.SetItemsProcessed(t.ok);
}

void BM_ServiceOverloadDirect(benchmark::State& state) {
  QueryService& service = ServiceFor(state.threads());
  PreparedQuery& q = SharedQuery();
  const uint64_t oracle = OracleCount();
  ClientTally t;
  ServiceRequest req;
  req.query_class =
      state.thread_index() % 2 == 0 ? QueryClass::kInteractive
                                    : QueryClass::kBatch;
  req.exec.threads = 1;
  for (auto _ : state) {
    CountOnlySink sink;
    const auto t0 = std::chrono::steady_clock::now();
    QueryStatus st = service.Execute(q, sink, req);
    const auto t1 = std::chrono::steady_clock::now();
    t.latency_ms.Record(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
    if (st.ok()) {
      ++t.ok;
      if (sink.count() != oracle) ++t.wrong;
    } else if (st.code() == StatusCode::kOverloaded) {
      ++t.shed;
    } else {
      state.SkipWithError(st.message().c_str());
      break;
    }
  }
  Report(state, t);
}
BENCHMARK(BM_ServiceOverloadDirect)
    ->Threads(64)
    ->Threads(256)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_ServiceOverloadRetry(benchmark::State& state) {
  QueryService& service = ServiceFor(state.threads());
  PreparedQuery& q = SharedQuery();
  const uint64_t oracle = OracleCount();
  ClientTally t;
  ServiceRequest req;
  req.exec.threads = 1;
  RetryOptions retry;
  retry.max_attempts = 5;
  retry.base_ms = 2;
  retry.max_ms = 50;
  retry.seed = 1000 + static_cast<uint64_t>(state.thread_index());
  for (auto _ : state) {
    uint64_t got = 0;
    const auto t0 = std::chrono::steady_clock::now();
    QueryStatus st = RetryWithBackoff(
        [&] {
          CountOnlySink sink;
          QueryStatus s = service.Execute(q, sink, req);
          if (s.ok()) got = sink.count();
          return s;
        },
        retry);
    const auto t1 = std::chrono::steady_clock::now();
    t.latency_ms.Record(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
    if (st.ok()) {
      ++t.ok;
      if (got != oracle) ++t.wrong;
    } else if (st.code() == StatusCode::kOverloaded) {
      ++t.shed;  // retries exhausted while still overloaded
    } else {
      state.SkipWithError(st.message().c_str());
      break;
    }
  }
  Report(state, t);
}
BENCHMARK(BM_ServiceOverloadRetry)
    ->Threads(64)
    ->Threads(256)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

JPMM_BENCH_MAIN();
