// QueryEngine sink microbench — the output-sensitivity acceptance row.
//
// Same prepared query (plan cached before timing starts), different
// consumers on an output-heavy input:
//
//   FullMaterialize   VectorSink, every pair materialized
//   CountOnly         CountOnlySink, no storage
//   Limit10           LimitSink(10) — done() fires in the first light
//                     chunks, the remaining chunks and every heavy product
//                     block are skipped
//   TopK10            TopKByCountSink(10) over the counted query
//
// The limit row is the criterion: limit-10 latency must sit far below
// (>= 5x) full materialization, because early exit skips the work, not
// just the storage.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/query_engine.h"
#include "core/result_sink.h"
#include "datagen/presets.h"

using namespace jpmm;

namespace {

// One engine + prepared query per (counted) flavor, shared across
// benchmark runs so every timed iteration is a plan-cache hit — the
// numbers compare sink behavior, not optimizer time.
QueryEngine& SharedEngine() {
  static QueryEngine* engine = [] {
    auto* e = new QueryEngine();
    e->catalog().Put("R", MakePreset(DatasetPreset::kJokes,
                                     0.6 * ScaleFromEnv(), 42));
    return e;
  }();
  return *engine;
}

PreparedQuery& SharedQuery(bool counted) {
  static PreparedQuery* plain = nullptr;
  static PreparedQuery* with_counts = nullptr;
  PreparedQuery*& slot = counted ? with_counts : plain;
  if (slot == nullptr) {
    QuerySpec spec;
    spec.kind = QueryKind::kTwoPath;
    spec.relations = {"R"};
    spec.count_witnesses = counted;
    slot = new PreparedQuery();
    QueryStatus st = SharedEngine().Prepare(spec, slot);
    if (!st.ok()) {
      std::fprintf(stderr, "prepare failed: %s\n", st.message().c_str());
      std::abort();
    }
    // Warm the plan cache so the timed loop measures execution only.
    CountOnlySink warm;
    SharedEngine().Execute(*slot, warm, {});
  }
  return *slot;
}

void BM_TwoPathFullMaterialize(benchmark::State& state) {
  PreparedQuery& q = SharedQuery(false);
  size_t n = 0;
  for (auto _ : state) {
    VectorSink sink;
    QueryStatus st = SharedEngine().Execute(q, sink, {});
    if (!st.ok()) state.SkipWithError(st.message().c_str());
    n = sink.size();
    benchmark::DoNotOptimize(n);
  }
  state.counters["pairs"] = static_cast<double>(n);
}
BENCHMARK(BM_TwoPathFullMaterialize)->Unit(benchmark::kMillisecond);

void BM_TwoPathCountOnly(benchmark::State& state) {
  PreparedQuery& q = SharedQuery(false);
  uint64_t n = 0;
  for (auto _ : state) {
    CountOnlySink sink;
    QueryStatus st = SharedEngine().Execute(q, sink, {});
    if (!st.ok()) state.SkipWithError(st.message().c_str());
    n = sink.count();
    benchmark::DoNotOptimize(n);
  }
  state.counters["pairs"] = static_cast<double>(n);
}
BENCHMARK(BM_TwoPathCountOnly)->Unit(benchmark::kMillisecond);

void BM_TwoPathLimit10(benchmark::State& state) {
  PreparedQuery& q = SharedQuery(false);
  ExecStats stats;
  for (auto _ : state) {
    LimitSink sink(10);
    QueryStatus st = SharedEngine().Execute(q, sink, {}, &stats);
    if (!st.ok()) state.SkipWithError(st.message().c_str());
    benchmark::DoNotOptimize(sink.size());
  }
  state.counters["blocks_skipped"] =
      static_cast<double>(stats.heavy_blocks_skipped);
  state.counters["blocks_total"] =
      static_cast<double>(stats.heavy_blocks_total);
}
BENCHMARK(BM_TwoPathLimit10)->Unit(benchmark::kMillisecond);

void BM_TwoPathTopK10(benchmark::State& state) {
  PreparedQuery& q = SharedQuery(true);
  for (auto _ : state) {
    TopKByCountSink sink(10);
    QueryStatus st = SharedEngine().Execute(q, sink, {});
    if (!st.ok()) state.SkipWithError(st.message().c_str());
    benchmark::DoNotOptimize(sink.top().size());
  }
}
BENCHMARK(BM_TwoPathTopK10)->Unit(benchmark::kMillisecond);

}  // namespace

JPMM_BENCH_MAIN();
