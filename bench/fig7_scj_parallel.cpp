// Figures 7a-7d — parallel SCJ: MM-SCJ vs PIEJoin, thread scaling, on the
// four dense datasets (Jokes, Words, Protein, Image).
//
// Paper shape: MM-SCJ scales smoothly (row-partitioned matrix work);
// PIEJoin's static partitioning is skew-sensitive and scales worse.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "scj/mm_scj.h"
#include "scj/piejoin.h"

using namespace jpmm;
using benchutil::CachedPreset;

namespace {

void BM_ScjParallel(benchmark::State& state, DatasetPreset preset, bool mm,
                    int threads) {
  const auto& ds = CachedPreset(preset);
  ScjOptions opts;
  opts.threads = threads;
  size_t out_size = 0;
  for (auto _ : state) {
    out_size = mm ? MmScj(*ds.fam, opts).size() : PieJoin(*ds.fam, opts).size();
    benchmark::DoNotOptimize(out_size);
  }
  state.counters["threads"] = threads;
  state.counters["out"] = static_cast<double>(out_size);
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::WarmCalibration();
  const std::pair<DatasetPreset, const char*> figs[] = {
      {DatasetPreset::kJokes, "Fig7a"},
      {DatasetPreset::kWords, "Fig7b"},
      {DatasetPreset::kProtein, "Fig7c"},
      {DatasetPreset::kImage, "Fig7d"},
  };
  for (const auto& [preset, fig] : figs) {
    for (bool mm : {true, false}) {
      for (int threads : benchutil::ThreadSweep()) {
        const std::string name = std::string(fig) + "/" + PresetName(preset) +
                                 (mm ? "/MMJoin" : "/PIEJoin") +
                                 "/threads:" + std::to_string(threads);
        benchmark::RegisterBenchmark(name.c_str(), BM_ScjParallel, preset, mm, threads)
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
      }
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
