// Shared benchmark plumbing: preset caching, registration helpers, JSON
// output.
//
// Every bench binary regenerates one table or figure of the paper; its
// stdout rows (one benchmark per configuration) are the figure's series.
// JPMM_SCALE rescales all datasets (default 1.0 = laptop scale).
//
// Machine-readable output: binaries whose main is JPMM_BENCH_MAIN() mirror
// their results to a JSON file when JPMM_BENCH_JSON=<path> is set, e.g.
//   JPMM_BENCH_JSON=kernels.json ./bench_kernel_microbench
// which is google benchmark's JSON schema — the source for BENCH_*.json
// trajectory tracking.

#ifndef JPMM_BENCH_BENCH_UTIL_H_
#define JPMM_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "datagen/presets.h"
#include "matrix/calibration.h"
#include "storage/index.h"
#include "storage/set_family.h"

namespace jpmm::benchutil {

/// Initializes and runs google benchmark, adding
/// --benchmark_out=<JPMM_BENCH_JSON> --benchmark_out_format=json when the
/// environment variable is set (explicit command-line flags still win:
/// google benchmark takes the last occurrence).
inline int RunBenchmarks(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag;
  std::string fmt_flag;
  const char* json_path = std::getenv("JPMM_BENCH_JSON");
  if (json_path != nullptr && *json_path != '\0') {
    out_flag = std::string("--benchmark_out=") + json_path;
    fmt_flag = "--benchmark_out_format=json";
    // Insert before user flags so explicit flags override.
    args.insert(args.begin() + 1, fmt_flag.data());
    args.insert(args.begin() + 1, out_flag.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

/// One generated dataset with its index and set-family view.
struct Dataset {
  BinaryRelation rel;
  std::unique_ptr<IndexedRelation> idx;
  std::unique_ptr<SetFamily> fam;

  explicit Dataset(BinaryRelation r) : rel(std::move(r)) {
    idx = std::make_unique<IndexedRelation>(rel);
    fam = std::make_unique<SetFamily>(*idx);
  }
};

/// Returns a process-cached dataset for (preset, extra_scale * JPMM_SCALE).
inline const Dataset& CachedPreset(DatasetPreset p, double extra_scale = 1.0) {
  static std::map<std::pair<int, long>, std::unique_ptr<Dataset>> cache;
  const double scale = ScaleFromEnv() * extra_scale;
  const auto key = std::make_pair(static_cast<int>(p),
                                  std::lround(scale * 1000.0));
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, std::make_unique<Dataset>(MakePreset(p, scale)))
             .first;
  }
  return *it->second;
}

/// Emits one latency HistogramSnapshot (milliseconds) into the benchmark's
/// counters, flattened into BENCH_*.json:
///
///   <prefix>_p50_ms / <prefix>_p99_ms   percentile estimates, averaged
///                                       across benchmark threads
///   <prefix>_lat_count                  total recorded samples (summed)
///   <prefix>_lat_le_<bound>             non-empty bucket counts (summed),
///                                       Prometheus `le` semantics; the
///                                       overflow bucket is _le_inf
///
/// tools/bench_compare.py reconstructs and diffs the full latency
/// distribution from the _lat_le_* keys, not just the midpoint.
inline void ReportLatency(benchmark::State& state, const HistogramSnapshot& s,
                          const std::string& prefix = "client") {
  using benchmark::Counter;
  state.counters[prefix + "_p50_ms"] =
      Counter(s.Percentile(50.0), Counter::kAvgThreads);
  state.counters[prefix + "_p99_ms"] =
      Counter(s.Percentile(99.0), Counter::kAvgThreads);
  state.counters[prefix + "_lat_count"] =
      Counter(static_cast<double>(s.count));
  for (size_t i = 0; i < s.counts.size(); ++i) {
    if (s.counts[i] == 0) continue;
    char key[80];
    if (i < s.bounds.size()) {
      std::snprintf(key, sizeof(key), "%s_lat_le_%g", prefix.c_str(),
                    s.bounds[i]);
    } else {
      std::snprintf(key, sizeof(key), "%s_lat_le_inf", prefix.c_str());
    }
    state.counters[key] = Counter(static_cast<double>(s.counts[i]));
  }
}

/// Warm the matrix-multiplication calibration singleton so its one-time
/// measurement cost never lands inside a timed region.
inline void WarmCalibration() { MatMulCalibration::Default(); }

/// Thread counts swept by the "parallel" figures. The container this repo
/// ships in may expose a single hardware thread; the sweep still exercises
/// the parallel code paths (EXPERIMENTS.md discusses the flat curves).
inline const std::vector<int>& ThreadSweep() {
  static const std::vector<int> kThreads = {1, 2, 4, 8};
  return kThreads;
}

}  // namespace jpmm::benchutil

/// Drop-in replacement for BENCHMARK_MAIN() with JPMM_BENCH_JSON support.
#define JPMM_BENCH_MAIN()                                \
  int main(int argc, char** argv) {                      \
    return jpmm::benchutil::RunBenchmarks(argc, argv);   \
  }                                                      \
  int main(int, char**)

#endif  // JPMM_BENCH_BENCH_UTIL_H_
