// Shared benchmark plumbing: preset caching, registration helpers.
//
// Every bench binary regenerates one table or figure of the paper; its
// stdout rows (one benchmark per configuration) are the figure's series.
// JPMM_SCALE rescales all datasets (default 1.0 = laptop scale).

#ifndef JPMM_BENCH_BENCH_UTIL_H_
#define JPMM_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cmath>
#include <map>
#include <memory>
#include <string>

#include "datagen/presets.h"
#include "matrix/calibration.h"
#include "storage/index.h"
#include "storage/set_family.h"

namespace jpmm::benchutil {

/// One generated dataset with its index and set-family view.
struct Dataset {
  BinaryRelation rel;
  std::unique_ptr<IndexedRelation> idx;
  std::unique_ptr<SetFamily> fam;

  explicit Dataset(BinaryRelation r) : rel(std::move(r)) {
    idx = std::make_unique<IndexedRelation>(rel);
    fam = std::make_unique<SetFamily>(*idx);
  }
};

/// Returns a process-cached dataset for (preset, extra_scale * JPMM_SCALE).
inline const Dataset& CachedPreset(DatasetPreset p, double extra_scale = 1.0) {
  static std::map<std::pair<int, long>, std::unique_ptr<Dataset>> cache;
  const double scale = ScaleFromEnv() * extra_scale;
  const auto key = std::make_pair(static_cast<int>(p),
                                  std::lround(scale * 1000.0));
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, std::make_unique<Dataset>(MakePreset(p, scale)))
             .first;
  }
  return *it->second;
}

/// Warm the matrix-multiplication calibration singleton so its one-time
/// measurement cost never lands inside a timed region.
inline void WarmCalibration() { MatMulCalibration::Default(); }

/// Thread counts swept by the "parallel" figures. The container this repo
/// ships in may expose a single hardware thread; the sweep still exercises
/// the parallel code paths (EXPERIMENTS.md discusses the flat curves).
inline const std::vector<int>& ThreadSweep() {
  static const std::vector<int> kThreads = {1, 2, 4};
  return kThreads;
}

}  // namespace jpmm::benchutil

#endif  // JPMM_BENCH_BENCH_UTIL_H_
