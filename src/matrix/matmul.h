// Blocked, register-tiled, multithreaded dense matrix multiplication.
//
// This is jpmm's substitute for the paper's Eigen + Intel MKL SGEMM: a
// packed-panel classical O(uvw) kernel with three-level (MC/KC/NC) cache
// blocking and an 8x32 register-accumulator micro-kernel that compiles to
// broadcast + FMA under -O3 -march=native. B panels are packed once per
// (column panel, inner slice) and reused across every row block, so the
// block-streamed join path pays the packing cost only once per panel.
// Parallelism partitions output rows across workers — the
// "coordination-free" scheme of §6: each worker owns a row block and never
// synchronizes with the others. See docs/kernels.md for the design and the
// tuning procedure.
//
// Numerical note: every per-element accumulation still runs in ascending-k
// order, but partial sums are formed per KC slice, so results are
// bit-identical to the naive triple loop only when all intermediate values
// are exactly representable — which holds for jpmm's 0/1 adjacency matrices
// (witness counts are small integers, exact in float up to 2^24).

#ifndef JPMM_MATRIX_MATMUL_H_
#define JPMM_MATRIX_MATMUL_H_

#include <cstddef>
#include <span>

#include "matrix/dense_matrix.h"

namespace jpmm {

/// C = A * B. A is u x v, B is v x w, C is resized to u x w.
/// threads <= 1 runs single-threaded.
void Multiply(const Matrix& a, const Matrix& b, Matrix* c, int threads = 1);

/// Convenience wrapper returning the product.
Matrix Multiply(const Matrix& a, const Matrix& b, int threads = 1);

/// Computes rows [row_begin, row_end) of A * B into `out`, which must have
/// (row_end - row_begin) * b.cols() elements. Single-threaded; this is the
/// bounded-memory building block the join uses to stream the heavy-part
/// product block by block instead of materializing all of M.
void MultiplyRowRange(const Matrix& a, const Matrix& b, size_t row_begin,
                      size_t row_end, std::span<float> out);

/// The pre-blocking seed kernel (ikj saxpy with an inner-dimension tile),
/// single-threaded. Kept as the baseline the kernel microbenchmark measures
/// the blocked kernel against; not used by any query path.
Matrix MultiplyScalarReference(const Matrix& a, const Matrix& b);

/// Naive triple loop, for oracle tests only.
Matrix MultiplyNaive(const Matrix& a, const Matrix& b);

}  // namespace jpmm

#endif  // JPMM_MATRIX_MATMUL_H_
