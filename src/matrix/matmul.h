// Blocked, multithreaded dense matrix multiplication.
//
// This is jpmm's substitute for the paper's Eigen + Intel MKL SGEMM: a
// cache-tiled classical O(uvw) kernel whose inner loop vectorizes to FMA
// under -O3 -march=native. Parallelism partitions output rows across
// workers — the "coordination-free" scheme of §6: each worker owns a row
// block and never synchronizes with the others.

#ifndef JPMM_MATRIX_MATMUL_H_
#define JPMM_MATRIX_MATMUL_H_

#include <cstddef>
#include <span>

#include "matrix/dense_matrix.h"

namespace jpmm {

/// C = A * B. A is u x v, B is v x w, C is resized to u x w.
/// threads <= 1 runs single-threaded.
void Multiply(const Matrix& a, const Matrix& b, Matrix* c, int threads = 1);

/// Convenience wrapper returning the product.
Matrix Multiply(const Matrix& a, const Matrix& b, int threads = 1);

/// Computes rows [row_begin, row_end) of A * B into `out`, which must have
/// (row_end - row_begin) * b.cols() elements. Single-threaded; this is the
/// bounded-memory building block the join uses to stream the heavy-part
/// product block by block instead of materializing all of M.
void MultiplyRowRange(const Matrix& a, const Matrix& b, size_t row_begin,
                      size_t row_end, std::span<float> out);

/// Naive triple loop, for oracle tests only.
Matrix MultiplyNaive(const Matrix& a, const Matrix& b);

}  // namespace jpmm

#endif  // JPMM_MATRIX_MATMUL_H_
