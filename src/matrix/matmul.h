// Blocked, register-tiled, multithreaded dense matrix multiplication.
//
// This is jpmm's substitute for the paper's Eigen + Intel MKL SGEMM: a
// packed-panel classical O(uvw) kernel with three-level (MC/KC/NC) cache
// blocking and an 8x32 register-accumulator micro-kernel that compiles to
// broadcast + FMA under -O3 -march=native. B panels are packed once per
// (column panel, inner slice) and reused across every row block, so the
// block-streamed join path pays the packing cost only once per panel.
// Parallelism partitions output rows across workers — the
// "coordination-free" scheme of §6: each worker owns a row block and never
// synchronizes with the others. The packed-B slab is built once (packing
// itself parallelized) and shared read-only by every worker (PackedB /
// MultiplyParallel), instead of each worker re-packing the same panels.
// See docs/kernels.md for the design and the tuning procedure.
//
// Numerical note: every per-element accumulation still runs in ascending-k
// order, but partial sums are formed per KC slice, so results are
// bit-identical to the naive triple loop only when all intermediate values
// are exactly representable — which holds for jpmm's 0/1 adjacency matrices
// (witness counts are small integers, exact in float up to 2^24).

#ifndef JPMM_MATRIX_MATMUL_H_
#define JPMM_MATRIX_MATMUL_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/aligned_buffer.h"
#include "matrix/dense_matrix.h"

namespace jpmm {

/// B pre-packed into the kernel's (NC x KC) panel layout, all panels at
/// once. Build it once, then any number of workers can stream row ranges
/// against it concurrently (the slab is read-only after construction) —
/// this removes the per-worker, per-call B re-packing of the legacy path.
/// Memory: about one padded copy of B (see PackedBBytes).
class PackedB {
 public:
  PackedB() = default;
  /// Packs every panel of b; the packing itself fans out over `threads`
  /// (each kNR-column sub-panel is an independent task).
  explicit PackedB(const Matrix& b, int threads = 1);

  size_t rows() const { return rows_; }      // inner dimension v
  size_t cols() const { return cols_; }      // output columns w
  bool empty() const { return rows_ == 0 || cols_ == 0; }
  size_t size_bytes() const { return data_.size() * sizeof(float); }

  /// Packed panel for the (column panel jc_idx, inner slice pc_idx) pair,
  /// laid out exactly as the kernel's per-call packing buffer.
  const float* Panel(size_t jc_idx, size_t pc_idx) const {
    return data_.data() + offsets_[jc_idx * num_pc_ + pc_idx];
  }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  size_t num_pc_ = 0;             // inner-dimension slice count
  std::vector<size_t> offsets_;   // panel offsets, jc-major
  // 64-byte base + kNR-float-multiple panel offsets = every panel row is
  // 64-byte aligned, which the AVX-512 micro-kernel's aligned loads assume.
  AlignedVector<float> data_;
};

/// Bytes a PackedB of a v x w matrix occupies (columns padded to the
/// register-tile width). Exposed so memory caps (MmJoinOptions::
/// max_matrix_bytes) can account for the slab before building it.
uint64_t PackedBBytes(uint64_t v, uint64_t w);

/// C = A * B. A is u x v, B is v x w, C is resized to u x w.
/// threads <= 1 runs single-threaded; threads > 1 uses the shared-slab
/// parallel path (MultiplyParallel). Bit-identical across thread counts.
void Multiply(const Matrix& a, const Matrix& b, Matrix* c, int threads = 1);

/// Convenience wrapper returning the product.
Matrix Multiply(const Matrix& a, const Matrix& b, int threads = 1);

/// C = A * B where B's panels are packed once (in parallel) and shared
/// read-only by all row-partitioned workers. This is what Multiply runs for
/// threads > 1; exposed separately so benchmarks can compare it against the
/// replicated-packing path.
void MultiplyParallel(const Matrix& a, const Matrix& b, Matrix* c,
                      int threads);

/// The pre-shared-slab parallel path: output rows are partitioned across
/// workers and EVERY worker independently re-packs the same B panels.
/// Kept as the baseline bench_kernel_microbench measures MultiplyParallel
/// against; not used by any query path.
void MultiplyReplicatedPacking(const Matrix& a, const Matrix& b, Matrix* c,
                               int threads);

/// Computes rows [row_begin, row_end) of A * B into `out`, which must have
/// (row_end - row_begin) * b.cols() elements. Single-threaded; this is the
/// bounded-memory building block the join uses to stream the heavy-part
/// product block by block instead of materializing all of M.
void MultiplyRowRange(const Matrix& a, const Matrix& b, size_t row_begin,
                      size_t row_end, std::span<float> out);

/// Same, against a pre-packed B. Safe to call concurrently from many
/// workers on one shared PackedB — this is how the join paths stream blocks
/// without re-packing B once per worker per block.
void MultiplyRowRange(const Matrix& a, const PackedB& b, size_t row_begin,
                      size_t row_end, std::span<float> out);

/// The pre-blocking seed kernel (ikj saxpy with an inner-dimension tile),
/// single-threaded. Kept as the baseline the kernel microbenchmark measures
/// the blocked kernel against; not used by any query path.
Matrix MultiplyScalarReference(const Matrix& a, const Matrix& b);

/// Naive triple loop, for oracle tests only.
Matrix MultiplyNaive(const Matrix& a, const Matrix& b);

}  // namespace jpmm

#endif  // JPMM_MATRIX_MATMUL_H_
