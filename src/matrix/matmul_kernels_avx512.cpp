// AVX-512 8x32 GEMM micro-kernel. Compiled with per-file -mavx512* flags
// (CMakeLists.txt) so it exists in every binary; selected at runtime only
// when CPUID reports the host can run it.

#include "matrix/matmul_kernels.h"

#if defined(__AVX512F__) && defined(__AVX512DQ__) && defined(__AVX512VL__)

#include <immintrin.h>

namespace jpmm {
namespace internal {
namespace {

// The 8x32 accumulator is 16 zmm registers (8 rows x 2 vectors of 16
// floats); two B vectors and one broadcast leave 13 of the 32 zmm free.
// Per-element accumulation order matches MicroKernelPortable exactly:
// ascending k, one fused multiply-add per k (exact for the small-integer
// operands the system guarantees).
void MicroKernelAvx512Impl(const float* ap, const float* bp, size_t kc,
                           float* c, size_t ldc, size_t rows, size_t cols) {
  __m512 acc0[kMR];
  __m512 acc1[kMR];
  for (size_t r = 0; r < kMR; ++r) {
    acc0[r] = _mm512_setzero_ps();
    acc1[r] = _mm512_setzero_ps();
  }
  for (size_t k = 0; k < kc; ++k) {
    const float* arow = ap + k * kMR;
    // Packed B rows are 64-byte aligned by contract (matmul_kernels.h):
    // aligned loads double as a hard assertion of the packing layout.
    const __m512 b0 = _mm512_load_ps(bp + k * kNR);
    const __m512 b1 = _mm512_load_ps(bp + k * kNR + 16);
    for (size_t r = 0; r < kMR; ++r) {
      const __m512 av = _mm512_set1_ps(arow[r]);
      acc0[r] = _mm512_fmadd_ps(av, b0, acc0[r]);
      acc1[r] = _mm512_fmadd_ps(av, b1, acc1[r]);
    }
  }
  if (rows == kMR && cols == kNR) {
    for (size_t r = 0; r < kMR; ++r) {
      float* crow = c + r * ldc;
      _mm512_storeu_ps(crow,
                       _mm512_add_ps(_mm512_loadu_ps(crow), acc0[r]));
      _mm512_storeu_ps(crow + 16,
                       _mm512_add_ps(_mm512_loadu_ps(crow + 16), acc1[r]));
    }
    return;
  }
  // Edge tile: masked write-back bounded by rows/cols, like the portable
  // kernel's scalar loop. cols < 32 always here.
  const uint32_t cmask = cols >= kNR ? 0xFFFFFFFFu : ((1u << cols) - 1);
  const __mmask16 m0 = static_cast<__mmask16>(cmask & 0xFFFF);
  const __mmask16 m1 = static_cast<__mmask16>(cmask >> 16);
  for (size_t r = 0; r < rows; ++r) {
    float* crow = c + r * ldc;
    if (m0) {
      const __m512 cur = _mm512_maskz_loadu_ps(m0, crow);
      _mm512_mask_storeu_ps(crow, m0, _mm512_add_ps(cur, acc0[r]));
    }
    if (m1) {
      const __m512 cur = _mm512_maskz_loadu_ps(m1, crow + 16);
      _mm512_mask_storeu_ps(crow + 16, m1, _mm512_add_ps(cur, acc1[r]));
    }
  }
}

}  // namespace

MicroKernelFn Avx512MicroKernel() { return &MicroKernelAvx512Impl; }

}  // namespace internal
}  // namespace jpmm

#else  // toolchain cannot emit AVX-512: dispatch falls through to AVX2

namespace jpmm {
namespace internal {
MicroKernelFn Avx512MicroKernel() { return nullptr; }
}  // namespace internal
}  // namespace jpmm

#endif
