// AVX2+FMA GEMM micro-kernel over the same 8x32 packed tile. Compiled with
// per-file -mavx2 -mfma flags (CMakeLists.txt); selected at runtime on
// AVX2-only hosts or under a forced --isa avx2.

#include "matrix/matmul_kernels.h"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

namespace jpmm {
namespace internal {
namespace {

// With 16 ymm registers the full 8x32 accumulator (16 vectors of 8) cannot
// stay resident alongside the B operands, so the tile is computed as two
// sequential 8x16 column halves — each half's 8x2 ymm accumulator block
// fits, and every output element still sees its k-products in ascending
// order (the halves split columns, not the k loop).
void MicroKernelAvx2Impl(const float* ap, const float* bp, size_t kc,
                         float* c, size_t ldc, size_t rows, size_t cols) {
  for (size_t half = 0; half < 2; ++half) {
    const size_t j0 = half * 16;
    if (j0 >= cols) break;
    const float* bph = bp + j0;
    __m256 acc0[kMR];
    __m256 acc1[kMR];
    for (size_t r = 0; r < kMR; ++r) {
      acc0[r] = _mm256_setzero_ps();
      acc1[r] = _mm256_setzero_ps();
    }
    for (size_t k = 0; k < kc; ++k) {
      const float* arow = ap + k * kMR;
      // 32-byte aligned: packed rows are 64-byte aligned and j0 is a
      // 16-float (64-byte) multiple.
      const __m256 b0 = _mm256_load_ps(bph + k * kNR);
      const __m256 b1 = _mm256_load_ps(bph + k * kNR + 8);
      for (size_t r = 0; r < kMR; ++r) {
        const __m256 av = _mm256_set1_ps(arow[r]);
        acc0[r] = _mm256_fmadd_ps(av, b0, acc0[r]);
        acc1[r] = _mm256_fmadd_ps(av, b1, acc1[r]);
      }
    }
    const size_t hcols = cols - j0 >= 16 ? 16 : cols - j0;
    if (rows == kMR && hcols == 16) {
      for (size_t r = 0; r < kMR; ++r) {
        float* crow = c + r * ldc + j0;
        _mm256_storeu_ps(crow,
                         _mm256_add_ps(_mm256_loadu_ps(crow), acc0[r]));
        _mm256_storeu_ps(crow + 8,
                         _mm256_add_ps(_mm256_loadu_ps(crow + 8), acc1[r]));
      }
      continue;
    }
    // Edge tile: spill the half accumulator and write back bounded.
    alignas(32) float tmp[kMR * 16];
    for (size_t r = 0; r < kMR; ++r) {
      _mm256_store_ps(tmp + r * 16, acc0[r]);
      _mm256_store_ps(tmp + r * 16 + 8, acc1[r]);
    }
    for (size_t r = 0; r < rows; ++r) {
      float* crow = c + r * ldc + j0;
      for (size_t j = 0; j < hcols; ++j) crow[j] += tmp[r * 16 + j];
    }
  }
}

}  // namespace

MicroKernelFn Avx2MicroKernel() { return &MicroKernelAvx2Impl; }

}  // namespace internal
}  // namespace jpmm

#else  // toolchain cannot emit AVX2: dispatch falls through to portable

namespace jpmm {
namespace internal {
MicroKernelFn Avx2MicroKernel() { return nullptr; }
}  // namespace internal
}  // namespace jpmm

#endif
