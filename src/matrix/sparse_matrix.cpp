#include "matrix/sparse_matrix.h"

#include <algorithm>
#include <cstring>

#include "common/cpu_features.h"
#include "common/failpoint.h"
#include "common/thread_pool.h"
#include "matrix/sparse_kernels.h"

namespace jpmm {

namespace internal {

void ExpandRowPortable(const uint32_t* js, size_t n, StampCounter* counter,
                       AlignedVector<uint32_t>* touched) {
  for (size_t p = 0; p < n; ++p) {
    const uint32_t j = js[p];
    if (counter->Add(j, 1) == 0) touched->push_back(j);
  }
}

ExpandRowFn SelectExpandRow(KernelIsa isa) {
  if (isa == KernelIsa::kAvx512) {
    if (ExpandRowFn fn = Avx512ExpandRow()) return fn;
  }
  // No AVX2 variant: without conflict detection the gather/scatter update
  // is not expressible, so kAvx2 shares the portable expansion.
  return &ExpandRowPortable;
}

}  // namespace internal

CsrMatrix CsrMatrix::FromRows(
    size_t rows, size_t cols, int threads,
    const std::function<void(size_t, std::vector<uint32_t>*)>& fill) {
  JPMM_FAIL_POINT("csr.build");
  CsrMatrix m(cols);
  m.offsets_.assign(rows + 1, 0);
  threads = std::max(1, threads);

  // Pass 1: per-row entry counts into offsets_[i + 1].
  ParallelForDynamic(threads, rows, /*grain=*/64,
                     [&](size_t i0, size_t i1, int) {
                       std::vector<uint32_t> scratch;
                       for (size_t i = i0; i < i1; ++i) {
                         scratch.clear();
                         fill(i, &scratch);
                         m.offsets_[i + 1] = scratch.size();
                       }
                     });
  for (size_t i = 0; i < rows; ++i) m.offsets_[i + 1] += m.offsets_[i];
  m.cols_idx_.resize(m.offsets_[rows]);

  // Pass 2: write each row into its slice (disjoint, race-free).
  ParallelForDynamic(threads, rows, /*grain=*/64,
                     [&](size_t i0, size_t i1, int) {
                       std::vector<uint32_t> scratch;
                       for (size_t i = i0; i < i1; ++i) {
                         scratch.clear();
                         fill(i, &scratch);
                         JPMM_CHECK(scratch.size() ==
                                    m.offsets_[i + 1] - m.offsets_[i]);
                         std::copy(scratch.begin(), scratch.end(),
                                   m.cols_idx_.begin() +
                                       static_cast<ptrdiff_t>(m.offsets_[i]));
                       }
                     });
  return m;
}

CsrMatrix CsrMatrix::FromEntries(
    size_t rows, size_t cols,
    std::span<const std::pair<Value, Value>> entries, bool swapped) {
  JPMM_FAIL_POINT("csr.build");
  CsrMatrix m(cols);
  m.offsets_.assign(rows + 1, 0);
  for (const auto& [a, b] : entries) {
    const Value r = swapped ? b : a;
    JPMM_DCHECK(r < rows);
    ++m.offsets_[r + 1];
  }
  for (size_t i = 0; i < rows; ++i) m.offsets_[i + 1] += m.offsets_[i];
  m.cols_idx_.resize(m.offsets_[rows]);
  std::vector<uint64_t> cursor(m.offsets_.begin(), m.offsets_.end() - 1);
  for (const auto& [a, b] : entries) {
    const Value r = swapped ? b : a;
    const Value c = swapped ? a : b;
    JPMM_DCHECK(c < cols);
    m.cols_idx_[cursor[r]++] = c;
  }
  return m;
}

CsrMatrix CsrMatrix::FromDense(const Matrix& d) {
  CsrMatrix m(d.cols());
  m.ReserveRows(d.rows());
  for (size_t i = 0; i < d.rows(); ++i) {
    const auto row = d.Row(i);
    for (size_t j = 0; j < row.size(); ++j) {
      if (row[j] > 0.5f) m.PushCol(static_cast<uint32_t>(j));
    }
    m.FinishRow();
  }
  return m;
}

Matrix CsrMatrix::ToDense(int threads) const {
  Matrix d(rows(), cols_);
  ParallelFor(std::max(1, threads), rows(), [&](size_t i0, size_t i1, int) {
    for (size_t i = i0; i < i1; ++i) {
      auto out = d.MutableRow(i);
      for (uint32_t c : Row(i)) out[c] = 1.0f;
    }
  });
  return d;
}

uint64_t CsrBytes(uint64_t rows, uint64_t nnz) {
  return nnz * sizeof(uint32_t) + (rows + 1) * sizeof(uint64_t);
}

void CsrDenseRowRange(const CsrMatrix& a, const Matrix& b, size_t r0,
                      size_t r1, std::span<float> out) {
  JPMM_CHECK(a.cols() == b.rows());
  JPMM_CHECK(r0 <= r1 && r1 <= a.rows());
  const size_t w = b.cols();
  JPMM_CHECK(out.size() >= (r1 - r0) * w);
  std::fill(out.begin(), out.begin() + static_cast<ptrdiff_t>((r1 - r0) * w),
            0.0f);
  for (size_t i = r0; i < r1; ++i) {
    float* acc = out.data() + (i - r0) * w;
    for (uint32_t k : a.Row(i)) {
      const float* brow = b.data() + static_cast<size_t>(k) * w;
      for (size_t j = 0; j < w; ++j) acc[j] += brow[j];
    }
  }
}

Matrix CsrDenseProduct(const CsrMatrix& a, const Matrix& b, int threads) {
  Matrix c(a.rows(), b.cols());
  const size_t w = b.cols();
  // Dynamic bands: per-row cost is the (skewed) row nnz, not a constant.
  ParallelForDynamic(std::max(1, threads), a.rows(), /*grain=*/32,
                     [&](size_t i0, size_t i1, int) {
                       CsrDenseRowRange(a, b, i0, i1,
                                        {c.mutable_data() + i0 * w,
                                         (i1 - i0) * w});
                     });
  return c;
}

void CsrCsrRowRange(const CsrMatrix& a, const CsrMatrix& b, size_t r0,
                    size_t r1, CsrScratch* scratch, SparseRowBlock* out) {
  JPMM_CHECK(a.cols() == b.rows());
  JPMM_CHECK(r0 <= r1 && r1 <= a.rows());
  if (scratch->counter.universe() < b.cols()) {
    scratch->counter.ResizeUniverse(b.cols());
  }
  out->Clear();
  out->offsets.push_back(0);
  // ISA is read once per row range, not per expansion call.
  const internal::ExpandRowFn expand =
      internal::SelectExpandRow(ActiveIsa());
  for (size_t i = r0; i < r1; ++i) {
    scratch->counter.NewEpoch();
    scratch->touched.clear();
    for (uint32_t k : a.Row(i)) {
      const auto brow = b.Row(k);
      expand(brow.data(), brow.size(), &scratch->counter, &scratch->touched);
    }
    // Ascending columns: the sort-merge emit path and the triangle trace
    // intersection both rely on it.
    std::sort(scratch->touched.begin(), scratch->touched.end());
    for (uint32_t j : scratch->touched) {
      out->cols.push_back(j);
      out->counts.push_back(scratch->counter.Get(j));
    }
    out->offsets.push_back(out->cols.size());
  }
}

Matrix CsrCsrProduct(const CsrMatrix& a, const CsrMatrix& b, int threads) {
  Matrix c(a.rows(), b.cols());
  threads = std::max(1, threads);
  std::vector<CsrScratch> scratch(static_cast<size_t>(threads));
  std::vector<SparseRowBlock> blocks(static_cast<size_t>(threads));
  ParallelForDynamic(threads, a.rows(), /*grain=*/32,
                     [&](size_t i0, size_t i1, int w) {
                       auto& sc = scratch[static_cast<size_t>(w)];
                       auto& blk = blocks[static_cast<size_t>(w)];
                       CsrCsrRowRange(a, b, i0, i1, &sc, &blk);
                       for (size_t i = i0; i < i1; ++i) {
                         const auto cols = blk.RowCols(i - i0);
                         const auto counts = blk.RowCounts(i - i0);
                         auto out = c.MutableRow(i);
                         for (size_t e = 0; e < cols.size(); ++e) {
                           out[cols[e]] = static_cast<float>(counts[e]);
                         }
                       }
                     });
  return c;
}

double CsrCsrExpandOps(const CsrMatrix& a, const CsrMatrix& b, size_t r0,
                       size_t r1) {
  JPMM_CHECK(a.cols() == b.rows());
  double ops = 0.0;
  for (size_t i = r0; i < r1; ++i) {
    for (uint32_t k : a.Row(i)) ops += static_cast<double>(b.Row(k).size());
  }
  return ops;
}

Matrix CsrProductReference(const CsrMatrix& a, const Matrix& b) {
  JPMM_CHECK(a.cols() == b.rows());
  Matrix c(a.rows(), b.cols());
  const size_t w = b.cols();
  std::vector<double> acc(w);
  for (size_t i = 0; i < a.rows(); ++i) {
    std::fill(acc.begin(), acc.end(), 0.0);
    for (uint32_t k : a.Row(i)) {
      const float* brow = b.data() + static_cast<size_t>(k) * w;
      for (size_t j = 0; j < w; ++j) acc[j] += brow[j];
    }
    auto out = c.MutableRow(i);
    for (size_t j = 0; j < w; ++j) out[j] = static_cast<float>(acc[j]);
  }
  return c;
}

}  // namespace jpmm
