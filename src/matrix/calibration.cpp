#include "matrix/calibration.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <memory>
#include <mutex>

#include "common/check.h"
#include "common/cpu_features.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "matrix/bool_matrix.h"
#include "matrix/cost_model.h"
#include "matrix/dense_matrix.h"
#include "matrix/matmul.h"
#include "matrix/random.h"
#include "matrix/sparse_matrix.h"

namespace jpmm {

SystemConstants SystemConstants::Measure() {
  SystemConstants c;
  constexpr size_t kN = 1 << 20;

  {  // sequential access
    std::vector<uint32_t> v(kN, 1);
    WallTimer t;
    uint64_t acc = 0;
    for (size_t i = 0; i < kN; ++i) acc += v[i];
    double sec = t.Seconds();
    if (acc == 0) sec += 1e-12;  // keep acc alive
    c.ts = std::max(sec / kN, 1e-11);
  }
  {  // random access + insert
    std::vector<uint32_t> v(kN, 0);
    Rng rng(7);
    WallTimer t;
    for (size_t i = 0; i < kN / 4; ++i) {
      v[rng.NextBounded(kN)] += 1;
    }
    c.ti = std::max(t.Seconds() / (kN / 4), 1e-11);
  }
  {  // allocation of small blocks
    constexpr size_t kAllocs = 1 << 16;
    std::vector<std::unique_ptr<uint8_t[]>> blocks;
    blocks.reserve(kAllocs);
    WallTimer t;
    for (size_t i = 0; i < kAllocs; ++i) {
      blocks.emplace_back(new uint8_t[32]);
    }
    c.tm = std::max(t.Seconds() / kAllocs, 1e-11);
  }
  return c;
}

BoolKernelRates BoolKernelRates::Measure(uint32_t dim, double density) {
  JPMM_CHECK(dim > 0 && density > 0.0 && density <= 1.0);
  BoolKernelRates rates;
  const BoolMatrix a = RandomBoolMatrix(dim, dim, density, 5 + dim);
  const BoolMatrix bt = RandomBoolMatrix(dim, dim, density, 9 + dim);
  const double word_ops = static_cast<double>(dim) * dim * ((dim + 63) / 64);
  {
    WallTimer t;
    const BoolMatrix c = BoolProduct(a, bt, 1);
    rates.bool_words_per_sec = word_ops / std::max(t.Seconds(), 1e-9);
  }
  {
    WallTimer t;
    const std::vector<uint32_t> c = CountProduct(a, bt, 1);
    rates.count_words_per_sec = word_ops / std::max(t.Seconds(), 1e-9);
  }
  return rates;
}

namespace {

// Times fn() repeatedly until the accumulated wall clock passes min_sec
// (tiny sparse products at low density finish in microseconds; a single
// sample would be all noise). Returns seconds per call.
template <typename Fn>
double TimePerCall(const Fn& fn, double min_sec = 5e-3, int max_reps = 256) {
  WallTimer t;
  int reps = 0;
  do {
    fn();
    ++reps;
  } while (t.Seconds() < min_sec && reps < max_reps);
  return std::max(t.Seconds(), 1e-9) / reps;
}

double InterpolateRate(const std::vector<SparseKernelRates::Anchor>& anchors,
                       double density,
                       double SparseKernelRates::Anchor::*field) {
  JPMM_CHECK(!anchors.empty());
  density = std::clamp(density, 1e-12, 1.0);
  if (density <= anchors.front().density) return anchors.front().*field;
  if (density >= anchors.back().density) return anchors.back().*field;
  for (size_t i = 1; i < anchors.size(); ++i) {
    if (density <= anchors[i].density) {
      const auto& lo = anchors[i - 1];
      const auto& hi = anchors[i];
      const double t = (std::log(density) - std::log(lo.density)) /
                       (std::log(hi.density) - std::log(lo.density));
      return lo.*field + t * (hi.*field - lo.*field);
    }
  }
  return anchors.back().*field;
}

}  // namespace

SparseKernelRates SparseKernelRates::Measure(
    uint32_t dim, const std::vector<double>& densities) {
  JPMM_CHECK(dim > 0 && !densities.empty());
  JPMM_CHECK(std::is_sorted(densities.begin(), densities.end()));
  SparseKernelRates rates;
  for (double d : densities) {
    JPMM_CHECK(d > 0.0 && d <= 1.0);
    const Matrix bd = RandomDenseMatrix(dim, dim, d, 31 + dim);
    const CsrMatrix a =
        CsrMatrix::FromDense(RandomDenseMatrix(dim, dim, d, 37 + dim));
    const CsrMatrix bcsr = CsrMatrix::FromDense(bd);
    Anchor anchor;
    anchor.density = d;
    {
      const double ops = SparseProductOps(a.nnz(), dim, dim);
      const double sec = TimePerCall([&] {
        Matrix c = CsrDenseProduct(a, bd, 1);
        (void)c;
      });
      anchor.csr_dense_ops_per_sec = std::max(ops, 1.0) / sec;
    }
    {
      const double ops = CsrCsrExpandOps(a, bcsr, 0, a.rows());
      const double sec = TimePerCall([&] {
        Matrix c = CsrCsrProduct(a, bcsr, 1);
        (void)c;
      });
      anchor.csr_csr_ops_per_sec = std::max(ops, 1.0) / sec;
    }
    rates.anchors.push_back(anchor);
  }
  {
    // Dense anchor for the dispatch: one blocked product at a modest dim
    // (cheap, but big enough to see the sustained packed-panel rate).
    const uint32_t p = std::min<uint32_t>(dim, 512);
    const Matrix a = RandomDenseMatrix(p, p, 0.5, 41 + p);
    const Matrix b = RandomDenseMatrix(p, p, 0.5, 43 + p);
    Matrix c;
    const double sec = TimePerCall([&] { Multiply(a, b, &c, 1); });
    rates.dense_flops_per_sec =
        2.0 * std::pow(static_cast<double>(p), 3.0) / sec;
  }
  return rates;
}

SparseKernelRates SparseKernelRates::FromRates(double csr_dense_ops_per_sec,
                                               double csr_csr_ops_per_sec,
                                               double dense_flops_per_sec) {
  JPMM_CHECK(csr_dense_ops_per_sec > 0 && csr_csr_ops_per_sec > 0 &&
             dense_flops_per_sec > 0);
  SparseKernelRates rates;
  rates.anchors.push_back(
      Anchor{1e-4, csr_dense_ops_per_sec, csr_csr_ops_per_sec});
  rates.anchors.push_back(
      Anchor{1.0, csr_dense_ops_per_sec, csr_csr_ops_per_sec});
  rates.dense_flops_per_sec = dense_flops_per_sec;
  return rates;
}

const SparseKernelRates& SparseKernelRates::Default() {
  // Keyed by the active dispatch level: a JPMM_ISA override (or a test's
  // ScopedIsaOverride) must re-measure rather than reuse rates measured
  // under a different instruction set. Measurement happens under the lock,
  // once per level; returned references stay valid for the process.
  static std::mutex mu;
  static std::array<std::unique_ptr<SparseKernelRates>, 3> per_isa;
  const auto key = static_cast<size_t>(ActiveIsa());
  std::lock_guard<std::mutex> lock(mu);
  if (!per_isa[key]) {
    per_isa[key] = std::make_unique<SparseKernelRates>(Measure(1024));
  }
  return *per_isa[key];
}

double SparseKernelRates::CsrDenseRate(double density) const {
  return InterpolateRate(anchors, density, &Anchor::csr_dense_ops_per_sec);
}

double SparseKernelRates::CsrCsrRate(double density) const {
  return InterpolateRate(anchors, density, &Anchor::csr_csr_ops_per_sec);
}

const BoolKernelRates& BoolKernelRates::Default() {
  // Per-ISA cache; see SparseKernelRates::Default().
  static std::mutex mu;
  static std::array<std::unique_ptr<BoolKernelRates>, 3> per_isa;
  const auto key = static_cast<size_t>(ActiveIsa());
  std::lock_guard<std::mutex> lock(mu);
  if (!per_isa[key]) {
    per_isa[key] = std::make_unique<BoolKernelRates>(Measure(512));
  }
  return *per_isa[key];
}

MatMulCalibration MatMulCalibration::Measure(
    const std::vector<uint32_t>& dims, const std::vector<int>& cores) {
  JPMM_CHECK(!dims.empty() && !cores.empty());
  JPMM_CHECK(std::is_sorted(dims.begin(), dims.end()));
  // EstimateSeconds' speedup interpolation brackets core counts by order.
  JPMM_CHECK(std::is_sorted(cores.begin(), cores.end()));
  MatMulCalibration cal;
  cal.cores_ = cores;
  cal.entries_.resize(cores.size());
  for (size_t ci = 0; ci < cores.size(); ++ci) {
    for (uint32_t p : dims) {
      Matrix a = RandomDenseMatrix(p, p, 0.5, 11 + p);
      Matrix b = RandomDenseMatrix(p, p, 0.5, 23 + p);
      Matrix c;
      WallTimer t;
      Multiply(a, b, &c, cores[ci]);
      cal.entries_[ci].push_back(Entry{p, std::max(t.Seconds(), 1e-9)});
    }
  }
  return cal;
}

MatMulCalibration MatMulCalibration::FromFlopsRate(
    double flops_per_second, const std::vector<int>& cores) {
  JPMM_CHECK(flops_per_second > 0 && !cores.empty());
  JPMM_CHECK(std::is_sorted(cores.begin(), cores.end()));
  MatMulCalibration cal;
  cal.cores_ = cores;
  cal.entries_.resize(cores.size());
  for (size_t ci = 0; ci < cores.size(); ++ci) {
    for (uint32_t p : {256u, 512u, 1024u, 2048u}) {
      const double ops = 2.0 * std::pow(static_cast<double>(p), 3.0);
      cal.entries_[ci].push_back(
          Entry{p, ops / (flops_per_second * cores[ci])});
    }
  }
  return cal;
}

double MatMulCalibration::EstimateForCore(double effective_dim,
                                          size_t core_idx) const {
  const auto& table = entries_[core_idx];
  // Log-log linear interpolation between the two bracketing grid points;
  // cubic extrapolation beyond the ends (classical kernel growth).
  if (effective_dim <= table.front().dim) {
    const auto& e = table.front();
    return e.seconds * std::pow(effective_dim / e.dim, 3.0);
  }
  if (effective_dim >= table.back().dim) {
    const auto& e = table.back();
    return e.seconds * std::pow(effective_dim / e.dim, 3.0);
  }
  for (size_t i = 1; i < table.size(); ++i) {
    if (effective_dim <= table[i].dim) {
      const auto& lo = table[i - 1];
      const auto& hi = table[i];
      const double t = (std::log(effective_dim) - std::log(lo.dim)) /
                       (std::log(static_cast<double>(hi.dim)) - std::log(lo.dim));
      return std::exp(std::log(lo.seconds) +
                      t * (std::log(hi.seconds) - std::log(lo.seconds)));
    }
  }
  return table.back().seconds;
}

double MatMulCalibration::EstimateSeconds(uint64_t u, uint64_t v, uint64_t w,
                                          int co) const {
  if (u == 0 || v == 0 || w == 0) return 0.0;
  co = std::max(1, co);
  const double effective_dim =
      std::cbrt(static_cast<double>(u) * static_cast<double>(v) *
                static_cast<double>(w));

  // Per-anchor estimates at this problem size, then interpolate the
  // MEASURED speedup curve across core counts. The old model assumed
  // perfect linear scaling beyond the grid; real speedup flattens with
  // memory-bandwidth pressure, so extrapolation now continues the marginal
  // per-core efficiency of the last measured segment instead.
  const size_t nc = cores_.size();
  std::vector<double> secs(nc);
  for (size_t ci = 0; ci < nc; ++ci) {
    secs[ci] = std::max(EstimateForCore(effective_dim, ci), 1e-12);
  }
  const double base = secs.front();       // seconds at the smallest anchor
  const int c0 = cores_.front();

  if (co <= c0) {
    // Below the grid: scale linearly down from the smallest anchor (only
    // reachable with grids that omit 1 core).
    return base * static_cast<double>(c0) / static_cast<double>(co);
  }
  // speedup(c) relative to the smallest anchor; s(c0) = 1 by construction.
  auto speedup_at = [&](size_t ci) { return base / secs[ci]; };
  for (size_t ci = 1; ci < nc; ++ci) {
    if (co <= cores_[ci]) {
      // Piecewise-linear speedup between the bracketing anchors.
      const double s_lo = speedup_at(ci - 1);
      const double s_hi = speedup_at(ci);
      const double f = static_cast<double>(co - cores_[ci - 1]) /
                       static_cast<double>(cores_[ci] - cores_[ci - 1]);
      const double s = s_lo + f * (s_hi - s_lo);
      return base / std::max(s, 1e-9);
    }
  }
  // Beyond the grid. With >= 2 anchors, continue the last segment's
  // marginal efficiency (clamped non-negative: extra cores never help less
  // than nothing). With a single anchor there is no measured efficiency —
  // fall back to the linear assumption, as before.
  double s_last = speedup_at(nc - 1);
  double marginal;
  if (nc >= 2) {
    marginal = (s_last - speedup_at(nc - 2)) /
               static_cast<double>(cores_[nc - 1] - cores_[nc - 2]);
    marginal = std::max(0.0, marginal);
  } else {
    marginal = s_last / static_cast<double>(cores_[nc - 1]);
  }
  const double s = s_last + marginal * static_cast<double>(co - cores_[nc - 1]);
  return base / std::max(s, 1e-9);
}

double MatMulCalibration::single_core_flops() const {
  size_t one = 0;
  for (size_t ci = 0; ci < cores_.size(); ++ci) {
    if (cores_[ci] == 1) one = ci;
  }
  const Entry& e = entries_[one].back();
  return 2.0 * std::pow(static_cast<double>(e.dim), 3.0) / e.seconds;
}

const MatMulCalibration& MatMulCalibration::Default() {
  // Per-ISA cache; see SparseKernelRates::Default(). Before the kernels
  // dispatched on KernelIsa this was a single call_once singleton, which
  // silently served avx512-measured rates to a portable-forced run.
  static std::mutex mu;
  static std::array<std::unique_ptr<MatMulCalibration>, 3> per_isa;
  const auto key = static_cast<size_t>(ActiveIsa());
  std::lock_guard<std::mutex> lock(mu);
  if (!per_isa[key]) {
    // Anchor the parallel efficiency with real measurements at 2 cores and
    // the full machine (the shared-slab MultiplyParallel path), so
    // EstimateSeconds stops assuming linear scaling it can't deliver. On a
    // single-core host the grid collapses to {1} and behavior is unchanged.
    std::vector<int> cores{1};
    const int hw = HardwareThreads();
    if (hw >= 2) cores.push_back(2);
    if (hw > 2) cores.push_back(hw);
    per_isa[key] = std::make_unique<MatMulCalibration>(
        Measure({128, 256, 512, 1024}, cores));
  }
  return *per_isa[key];
}

}  // namespace jpmm
