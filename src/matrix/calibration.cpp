#include "matrix/calibration.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <mutex>

#include "common/check.h"
#include "common/rng.h"
#include "common/timer.h"
#include "matrix/bool_matrix.h"
#include "matrix/dense_matrix.h"
#include "matrix/matmul.h"
#include "matrix/random.h"

namespace jpmm {

SystemConstants SystemConstants::Measure() {
  SystemConstants c;
  constexpr size_t kN = 1 << 20;

  {  // sequential access
    std::vector<uint32_t> v(kN, 1);
    WallTimer t;
    uint64_t acc = 0;
    for (size_t i = 0; i < kN; ++i) acc += v[i];
    double sec = t.Seconds();
    if (acc == 0) sec += 1e-12;  // keep acc alive
    c.ts = std::max(sec / kN, 1e-11);
  }
  {  // random access + insert
    std::vector<uint32_t> v(kN, 0);
    Rng rng(7);
    WallTimer t;
    for (size_t i = 0; i < kN / 4; ++i) {
      v[rng.NextBounded(kN)] += 1;
    }
    c.ti = std::max(t.Seconds() / (kN / 4), 1e-11);
  }
  {  // allocation of small blocks
    constexpr size_t kAllocs = 1 << 16;
    std::vector<std::unique_ptr<uint8_t[]>> blocks;
    blocks.reserve(kAllocs);
    WallTimer t;
    for (size_t i = 0; i < kAllocs; ++i) {
      blocks.emplace_back(new uint8_t[32]);
    }
    c.tm = std::max(t.Seconds() / kAllocs, 1e-11);
  }
  return c;
}

BoolKernelRates BoolKernelRates::Measure(uint32_t dim, double density) {
  JPMM_CHECK(dim > 0 && density > 0.0 && density <= 1.0);
  BoolKernelRates rates;
  const BoolMatrix a = RandomBoolMatrix(dim, dim, density, 5 + dim);
  const BoolMatrix bt = RandomBoolMatrix(dim, dim, density, 9 + dim);
  const double word_ops = static_cast<double>(dim) * dim * ((dim + 63) / 64);
  {
    WallTimer t;
    const BoolMatrix c = BoolProduct(a, bt, 1);
    rates.bool_words_per_sec = word_ops / std::max(t.Seconds(), 1e-9);
  }
  {
    WallTimer t;
    const std::vector<uint32_t> c = CountProduct(a, bt, 1);
    rates.count_words_per_sec = word_ops / std::max(t.Seconds(), 1e-9);
  }
  return rates;
}

const BoolKernelRates& BoolKernelRates::Default() {
  static std::once_flag flag;
  static std::unique_ptr<BoolKernelRates> instance;
  std::call_once(flag, [] {
    instance = std::make_unique<BoolKernelRates>(Measure(512));
  });
  return *instance;
}

MatMulCalibration MatMulCalibration::Measure(
    const std::vector<uint32_t>& dims, const std::vector<int>& cores) {
  JPMM_CHECK(!dims.empty() && !cores.empty());
  JPMM_CHECK(std::is_sorted(dims.begin(), dims.end()));
  MatMulCalibration cal;
  cal.cores_ = cores;
  cal.entries_.resize(cores.size());
  for (size_t ci = 0; ci < cores.size(); ++ci) {
    for (uint32_t p : dims) {
      Matrix a = RandomDenseMatrix(p, p, 0.5, 11 + p);
      Matrix b = RandomDenseMatrix(p, p, 0.5, 23 + p);
      Matrix c;
      WallTimer t;
      Multiply(a, b, &c, cores[ci]);
      cal.entries_[ci].push_back(Entry{p, std::max(t.Seconds(), 1e-9)});
    }
  }
  return cal;
}

MatMulCalibration MatMulCalibration::FromFlopsRate(
    double flops_per_second, const std::vector<int>& cores) {
  JPMM_CHECK(flops_per_second > 0 && !cores.empty());
  MatMulCalibration cal;
  cal.cores_ = cores;
  cal.entries_.resize(cores.size());
  for (size_t ci = 0; ci < cores.size(); ++ci) {
    for (uint32_t p : {256u, 512u, 1024u, 2048u}) {
      const double ops = 2.0 * std::pow(static_cast<double>(p), 3.0);
      cal.entries_[ci].push_back(
          Entry{p, ops / (flops_per_second * cores[ci])});
    }
  }
  return cal;
}

double MatMulCalibration::EstimateForCore(double effective_dim,
                                          size_t core_idx) const {
  const auto& table = entries_[core_idx];
  // Log-log linear interpolation between the two bracketing grid points;
  // cubic extrapolation beyond the ends (classical kernel growth).
  if (effective_dim <= table.front().dim) {
    const auto& e = table.front();
    return e.seconds * std::pow(effective_dim / e.dim, 3.0);
  }
  if (effective_dim >= table.back().dim) {
    const auto& e = table.back();
    return e.seconds * std::pow(effective_dim / e.dim, 3.0);
  }
  for (size_t i = 1; i < table.size(); ++i) {
    if (effective_dim <= table[i].dim) {
      const auto& lo = table[i - 1];
      const auto& hi = table[i];
      const double t = (std::log(effective_dim) - std::log(lo.dim)) /
                       (std::log(static_cast<double>(hi.dim)) - std::log(lo.dim));
      return std::exp(std::log(lo.seconds) +
                      t * (std::log(hi.seconds) - std::log(lo.seconds)));
    }
  }
  return table.back().seconds;
}

double MatMulCalibration::EstimateSeconds(uint64_t u, uint64_t v, uint64_t w,
                                          int co) const {
  if (u == 0 || v == 0 || w == 0) return 0.0;
  const double effective_dim =
      std::cbrt(static_cast<double>(u) * static_cast<double>(v) *
                static_cast<double>(w));
  // Nearest calibrated core count at or below co (extrapolate linearly in
  // core count beyond the grid: the kernel scales near-linearly, Fig 3b).
  size_t best = 0;
  for (size_t ci = 0; ci < cores_.size(); ++ci) {
    if (cores_[ci] <= co) best = ci;
  }
  double est = EstimateForCore(effective_dim, best);
  if (cores_[best] < co) {
    est *= static_cast<double>(cores_[best]) / static_cast<double>(co);
  }
  return est;
}

double MatMulCalibration::single_core_flops() const {
  size_t one = 0;
  for (size_t ci = 0; ci < cores_.size(); ++ci) {
    if (cores_[ci] == 1) one = ci;
  }
  const Entry& e = entries_[one].back();
  return 2.0 * std::pow(static_cast<double>(e.dim), 3.0) / e.seconds;
}

const MatMulCalibration& MatMulCalibration::Default() {
  static std::once_flag flag;
  static std::unique_ptr<MatMulCalibration> instance;
  std::call_once(flag, [] {
    instance = std::make_unique<MatMulCalibration>(
        Measure({128, 256, 512, 1024}, {1}));
  });
  return *instance;
}

}  // namespace jpmm
