#include "matrix/matmul.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/aligned_buffer.h"
#include "common/check.h"
#include "common/cpu_features.h"
#include "common/failpoint.h"
#include "common/thread_pool.h"
#include "matrix/matmul_kernels.h"

namespace jpmm {
namespace {

// ---- Blocking parameters -------------------------------------------------
//
// Classic three-level GEMM blocking (Goto/BLIS structure):
//   NC splits C's columns into panels whose packed B slab (KC x NC floats,
//      4 MiB) stays resident in last-level cache across every row block of
//      the panel;
//   KC is the inner-dimension slice; one packed A panel (MC x KC, 256 KiB)
//      plus the B stripe a micro-kernel touches (KC x NR, 64 KiB) stay in
//      L2 across the register-tile sweep;
//   MC rows of A are packed once and reused across the whole NC-wide panel;
//   MR x NR is the register tile: the accumulator lives in vector registers
//      (8 x 32 floats = 16 AVX-512 zmm). NR spanning two full vectors is
//      what keeps both the hand-intrinsics micro-kernels and the
//      auto-vectorized portable one on the fast side of the 20x tile-shape
//      cliff — see docs/kernels.md for the measured sweep and how to
//      re-tune.
//
// The constants live in matrix/matmul_kernels.h, shared with the per-ISA
// micro-kernel TUs; the micro-kernel itself is selected per call on
// ActiveIsa() (common/cpu_features.h).
using internal::kKC;
using internal::kMC;
using internal::kMR;
using internal::kNC;
using internal::kNR;
using internal::MicroKernelFn;

// Packs A[ic..ic+mc) x [pc..pc+kc) into kMR-row panels: panel p (rows
// p*kMR..) holds ap[p*kMR*kc + k*kMR + r] = A[ic + p*kMR + r][pc + k].
// Rows past mc are zero-filled so the micro-kernel never branches on the
// row edge; the padding contributes 0 to every product.
void PackA(const Matrix& a, size_t ic, size_t mc, size_t pc, size_t kc,
           float* ap) {
  const size_t v = a.cols();
  for (size_t p0 = 0; p0 < mc; p0 += kMR) {
    const size_t rows = std::min(kMR, mc - p0);
    float* panel = ap + p0 * kc;
    for (size_t r = 0; r < rows; ++r) {
      const float* src = a.data() + (ic + p0 + r) * v + pc;
      for (size_t k = 0; k < kc; ++k) panel[k * kMR + r] = src[k];
    }
    for (size_t r = rows; r < kMR; ++r) {
      for (size_t k = 0; k < kc; ++k) panel[k * kMR + r] = 0.0f;
    }
  }
}

// Packs the single kNR-column sub-panel starting at B column j of the
// [pc, pc+kc) inner slice: dst[k * kNR + c] = B[pc + k][j + c], zero-padded
// past the matrix edge. The unit of parallel packing.
void PackBSub(const Matrix& b, size_t pc, size_t kc, size_t j, float* dst) {
  const size_t w = b.cols();
  const size_t cols = std::min(kNR, w - j);
  for (size_t k = 0; k < kc; ++k) {
    const float* src = b.data() + (pc + k) * w + j;
    float* row = dst + k * kNR;
    size_t c = 0;
    for (; c < cols; ++c) row[c] = src[c];
    for (; c < kNR; ++c) row[c] = 0.0f;
  }
}

// Packs B[pc..pc+kc) x [jc..jc+nc) into kNR-column panels: panel q holds
// bp[q*kNR*kc + k*kNR + c] = B[pc + k][jc + q*kNR + c], zero-padded past nc.
void PackB(const Matrix& b, size_t pc, size_t kc, size_t jc, size_t nc,
           float* bp) {
  for (size_t j0 = 0; j0 < nc; j0 += kNR) {
    PackBSub(b, pc, kc, jc + j0, bp + j0 * kc);
  }
}

// Per-thread packing scratch, sized for the largest panels. thread_local so
// repeated block-streamed calls (mm_join's row blocks) reuse the
// allocation — and, now that ParallelFor runs on the persistent pool, the
// scratch survives across queries instead of dying with per-call threads.
// 64-byte slabs: the B scratch is read by the aligned vector loads of the
// intrinsic micro-kernels.
struct PackScratch {
  AlignedVector<float> a = AlignedVector<float>(kMC * kKC);
  AlignedVector<float> b = AlignedVector<float>(kKC * kNC);
};

PackScratch& Scratch() {
  static thread_local PackScratch scratch;
  return scratch;
}

// Sweeps the register tiles of one packed (jc-panel, pc-slice) pair over
// row range [r0, r1): packs A per MC block, consumes an already-packed B
// panel (shared or thread-local — the kernel cannot tell). `mk` is the
// ISA-selected micro-kernel, chosen once per row-range call.
void SweepPanel(const Matrix& a, const float* bp, size_t r0, size_t r1,
                size_t pc, size_t kc, size_t jc, size_t nc, float* out,
                size_t ldc, MicroKernelFn mk) {
  PackScratch& scratch = Scratch();
  float* ap = scratch.a.data();
  for (size_t ic = r0; ic < r1; ic += kMC) {
    const size_t mc = std::min(kMC, r1 - ic);
    PackA(a, ic, mc, pc, kc, ap);
    for (size_t jr = 0; jr < nc; jr += kNR) {
      const size_t cols = std::min(kNR, nc - jr);
      for (size_t ir = 0; ir < mc; ir += kMR) {
        const size_t rows = std::min(kMR, mc - ir);
        mk(ap + ir * kc, bp + jr * kc, kc,
           out + (ic - r0 + ir) * ldc + jc + jr, ldc, rows, cols);
      }
    }
  }
}

// out[(i - r0) * ldc + j] += (A * B)(i, j) for rows [r0, r1). B panels are
// packed once per (jc, pc) into thread-local scratch and reused across
// every MC row block in the range; A panels are packed per row block.
void KernelRowRange(const Matrix& a, const Matrix& b, size_t r0, size_t r1,
                    float* out, size_t ldc) {
  const size_t v = a.cols();
  const size_t w = b.cols();
  const MicroKernelFn mk = internal::SelectMicroKernel(ActiveIsa());
  float* bp = Scratch().b.data();
  for (size_t jc = 0; jc < w; jc += kNC) {
    const size_t nc = std::min(kNC, w - jc);
    for (size_t pc = 0; pc < v; pc += kKC) {
      const size_t kc = std::min(kKC, v - pc);
      PackB(b, pc, kc, jc, nc, bp);
      SweepPanel(a, bp, r0, r1, pc, kc, jc, nc, out, ldc, mk);
    }
  }
}

// Same sweep against a shared PackedB: no packing of B at all — every
// worker reads the one slab read-only.
void KernelRowRangePacked(const Matrix& a, const PackedB& b, size_t r0,
                          size_t r1, float* out, size_t ldc) {
  const size_t v = a.cols();
  const size_t w = b.cols();
  const MicroKernelFn mk = internal::SelectMicroKernel(ActiveIsa());
  size_t jc_idx = 0;
  for (size_t jc = 0; jc < w; jc += kNC, ++jc_idx) {
    const size_t nc = std::min(kNC, w - jc);
    size_t pc_idx = 0;
    for (size_t pc = 0; pc < v; pc += kKC, ++pc_idx) {
      const size_t kc = std::min(kKC, v - pc);
      SweepPanel(a, b.Panel(jc_idx, pc_idx), r0, r1, pc, kc, jc, nc, out,
                 ldc, mk);
    }
  }
}

// The seed kernel: ikj saxpy with an inner-dimension tile. Kept as the
// microbenchmark baseline the blocked kernel is measured against.
void ScalarKernelRowRange(const Matrix& a, const Matrix& b, size_t r0,
                          size_t r1, float* out) {
  constexpr size_t kKTile = 256;
  const size_t v = a.cols();
  const size_t w = b.cols();
  for (size_t k0 = 0; k0 < v; k0 += kKTile) {
    const size_t k1 = std::min(v, k0 + kKTile);
    for (size_t i = r0; i < r1; ++i) {
      const float* arow = a.data() + i * v;
      float* crow = out + (i - r0) * w;
      for (size_t k = k0; k < k1; ++k) {
        const float aik = arow[k];
        if (aik == 0.0f) continue;
        const float* brow = b.data() + k * w;
        for (size_t j = 0; j < w; ++j) crow[j] += aik * brow[j];
      }
    }
  }
}

}  // namespace

namespace internal {

// C[0..rows) x [0..cols) += Ap panel * Bp panel over kc inner steps. The
// kMR x kNR accumulator is a local array the compiler keeps in vector
// registers; rows/cols only bound the final write-back, so edge tiles pay
// nothing in the hot loop. This is the reference implementation every
// intrinsic variant must match element-for-element.
void MicroKernelPortable(const float* ap, const float* bp, size_t kc,
                         float* c, size_t ldc, size_t rows, size_t cols) {
  float acc[kMR * kNR] = {};
  for (size_t k = 0; k < kc; ++k) {
    const float* arow = ap + k * kMR;
    const float* brow = bp + k * kNR;
    for (size_t r = 0; r < kMR; ++r) {
      const float av = arow[r];
      for (size_t j = 0; j < kNR; ++j) acc[r * kNR + j] += av * brow[j];
    }
  }
  for (size_t r = 0; r < rows; ++r) {
    float* crow = c + r * ldc;
    const float* arow = acc + r * kNR;
    for (size_t j = 0; j < cols; ++j) crow[j] += arow[j];
  }
}

MicroKernelFn SelectMicroKernel(KernelIsa isa) {
  if (isa == KernelIsa::kAvx512) {
    if (MicroKernelFn fn = Avx512MicroKernel()) return fn;
    isa = KernelIsa::kAvx2;
  }
  if (isa == KernelIsa::kAvx2) {
    if (MicroKernelFn fn = Avx2MicroKernel()) return fn;
  }
  return &MicroKernelPortable;
}

}  // namespace internal

PackedB::PackedB(const Matrix& b, int threads) {
  JPMM_FAIL_POINT("matmul.pack");
  rows_ = b.rows();
  cols_ = b.cols();
  if (empty()) return;
  const size_t v = rows_;
  const size_t w = cols_;
  num_pc_ = (v + kKC - 1) / kKC;
  const size_t num_jc = (w + kNC - 1) / kNC;
  offsets_.resize(num_jc * num_pc_);

  // One task per kNR-column sub-panel: fine enough grain that the packing
  // itself saturates the pool even when the panel count is small.
  struct Sub {
    size_t dst, pc, kc, col;
  };
  std::vector<Sub> subs;
  size_t total = 0;
  size_t jc_idx = 0;
  for (size_t jc = 0; jc < w; jc += kNC, ++jc_idx) {
    const size_t nc = std::min(kNC, w - jc);
    const size_t ncp = (nc + kNR - 1) / kNR * kNR;
    size_t pc_idx = 0;
    for (size_t pc = 0; pc < v; pc += kKC, ++pc_idx) {
      const size_t kc = std::min(kKC, v - pc);
      offsets_[jc_idx * num_pc_ + pc_idx] = total;
      for (size_t j0 = 0; j0 < nc; j0 += kNR) {
        subs.push_back(Sub{total + j0 * kc, pc, kc, jc + j0});
      }
      total += ncp * kc;
    }
  }
  data_.resize(total);
  ParallelForDynamic(threads, subs.size(), /*grain=*/8,
                     [&](size_t s0, size_t s1, int) {
                       for (size_t s = s0; s < s1; ++s) {
                         const Sub& sub = subs[s];
                         PackBSub(b, sub.pc, sub.kc, sub.col,
                                  data_.data() + sub.dst);
                       }
                     });
}

uint64_t PackedBBytes(uint64_t v, uint64_t w) {
  // Per NC-wide column panel the padded width is a kNR multiple; every
  // inner slice stores that many columns, so the slab is v * padded_w
  // floats.
  uint64_t padded_w = 0;
  for (uint64_t jc = 0; jc < w; jc += kNC) {
    const uint64_t nc = std::min<uint64_t>(kNC, w - jc);
    padded_w += (nc + kNR - 1) / kNR * kNR;
  }
  return 4 * v * padded_w;
}

void MultiplyRowRange(const Matrix& a, const Matrix& b, size_t row_begin,
                      size_t row_end, std::span<float> out) {
  JPMM_CHECK(a.cols() == b.rows());
  JPMM_CHECK(row_begin <= row_end && row_end <= a.rows());
  JPMM_CHECK(out.size() >= (row_end - row_begin) * b.cols());
  std::memset(out.data(), 0, (row_end - row_begin) * b.cols() * sizeof(float));
  KernelRowRange(a, b, row_begin, row_end, out.data(), b.cols());
}

void MultiplyRowRange(const Matrix& a, const PackedB& b, size_t row_begin,
                      size_t row_end, std::span<float> out) {
  JPMM_CHECK(a.cols() == b.rows());
  JPMM_CHECK(row_begin <= row_end && row_end <= a.rows());
  JPMM_CHECK(out.size() >= (row_end - row_begin) * b.cols());
  std::memset(out.data(), 0, (row_end - row_begin) * b.cols() * sizeof(float));
  KernelRowRangePacked(a, b, row_begin, row_end, out.data(), b.cols());
}

void Multiply(const Matrix& a, const Matrix& b, Matrix* c, int threads) {
  JPMM_CHECK_MSG(a.cols() == b.rows(), "dimension mismatch");
  if (threads > 1) {
    MultiplyParallel(a, b, c, threads);
    return;
  }
  *c = Matrix(a.rows(), b.cols());
  if (a.rows() == 0 || b.cols() == 0) return;
  KernelRowRange(a, b, 0, a.rows(), c->mutable_data(), b.cols());
}

Matrix Multiply(const Matrix& a, const Matrix& b, int threads) {
  Matrix c;
  Multiply(a, b, &c, threads);
  return c;
}

void MultiplyParallel(const Matrix& a, const Matrix& b, Matrix* c,
                      int threads) {
  JPMM_CHECK_MSG(a.cols() == b.rows(), "dimension mismatch");
  *c = Matrix(a.rows(), b.cols());
  if (a.rows() == 0 || b.cols() == 0) return;
  const PackedB packed(b, threads);
  float* cdata = c->mutable_data();
  const size_t w = b.cols();
  // Static row partitioning: per-row arithmetic is identical to the
  // single-threaded kernel (same jc/pc/k order), so results are
  // bit-identical at any thread count.
  ParallelFor(threads, a.rows(), [&](size_t r0, size_t r1, int) {
    KernelRowRangePacked(a, packed, r0, r1, cdata + r0 * w, w);
  });
}

void MultiplyReplicatedPacking(const Matrix& a, const Matrix& b, Matrix* c,
                               int threads) {
  JPMM_CHECK_MSG(a.cols() == b.rows(), "dimension mismatch");
  *c = Matrix(a.rows(), b.cols());
  if (a.rows() == 0 || b.cols() == 0) return;
  float* cdata = c->mutable_data();
  const size_t w = b.cols();
  ParallelFor(threads, a.rows(), [&](size_t r0, size_t r1, int) {
    KernelRowRange(a, b, r0, r1, cdata + r0 * w, w);
  });
}

Matrix MultiplyScalarReference(const Matrix& a, const Matrix& b) {
  JPMM_CHECK(a.cols() == b.rows());
  Matrix c(a.rows(), b.cols());
  if (a.rows() == 0 || b.cols() == 0) return c;
  ScalarKernelRowRange(a, b, 0, a.rows(), c.mutable_data());
  return c;
}

Matrix MultiplyNaive(const Matrix& a, const Matrix& b) {
  JPMM_CHECK(a.cols() == b.rows());
  Matrix c(a.rows(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < b.cols(); ++j) {
      float acc = 0.0f;
      for (size_t k = 0; k < a.cols(); ++k) acc += a.At(i, k) * b.At(k, j);
      c.Set(i, j, acc);
    }
  }
  return c;
}

}  // namespace jpmm
