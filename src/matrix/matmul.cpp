#include "matrix/matmul.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"
#include "common/thread_pool.h"

namespace jpmm {
namespace {

// Inner-dimension tile: B rows touched per pass fit in L1/L2 alongside the
// output row block.
constexpr size_t kKTile = 256;

// Computes out[i][*] += A(row i) * B for rows [r0, r1) with the ikj order:
// the j-loop is a contiguous saxpy over B's row and C's row, which the
// compiler turns into FMA vector code.
void KernelRowRange(const Matrix& a, const Matrix& b, size_t r0, size_t r1,
                    float* out) {
  const size_t v = a.cols();
  const size_t w = b.cols();
  for (size_t k0 = 0; k0 < v; k0 += kKTile) {
    const size_t k1 = std::min(v, k0 + kKTile);
    for (size_t i = r0; i < r1; ++i) {
      const float* arow = a.data() + i * v;
      float* crow = out + (i - r0) * w;
      for (size_t k = k0; k < k1; ++k) {
        const float aik = arow[k];
        if (aik == 0.0f) continue;  // adjacency matrices are sparse-ish
        const float* brow = b.data() + k * w;
        for (size_t j = 0; j < w; ++j) crow[j] += aik * brow[j];
      }
    }
  }
}

}  // namespace

void MultiplyRowRange(const Matrix& a, const Matrix& b, size_t row_begin,
                      size_t row_end, std::span<float> out) {
  JPMM_CHECK(a.cols() == b.rows());
  JPMM_CHECK(row_begin <= row_end && row_end <= a.rows());
  JPMM_CHECK(out.size() >= (row_end - row_begin) * b.cols());
  std::memset(out.data(), 0, (row_end - row_begin) * b.cols() * sizeof(float));
  KernelRowRange(a, b, row_begin, row_end, out.data());
}

void Multiply(const Matrix& a, const Matrix& b, Matrix* c, int threads) {
  JPMM_CHECK_MSG(a.cols() == b.rows(), "dimension mismatch");
  *c = Matrix(a.rows(), b.cols());
  if (a.rows() == 0 || b.cols() == 0) return;
  float* cdata = c->mutable_data();
  const size_t w = b.cols();
  ParallelFor(threads, a.rows(), [&](size_t r0, size_t r1, int) {
    KernelRowRange(a, b, r0, r1, cdata + r0 * w);
  });
}

Matrix Multiply(const Matrix& a, const Matrix& b, int threads) {
  Matrix c;
  Multiply(a, b, &c, threads);
  return c;
}

Matrix MultiplyNaive(const Matrix& a, const Matrix& b) {
  JPMM_CHECK(a.cols() == b.rows());
  Matrix c(a.rows(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < b.cols(); ++j) {
      float acc = 0.0f;
      for (size_t k = 0; k < a.cols(); ++k) acc += a.At(i, k) * b.At(k, j);
      c.Set(i, j, acc);
    }
  }
  return c;
}

}  // namespace jpmm
