// Bit-packed boolean matrix with AND/popcount products.
//
// Alternative heavy-part representation: the boolean semiring product
// (does any witness exist?) and the counting product (how many witnesses?)
// computed 64 columns at a time. Used by the heavy-strategy ablation bench
// and by the boolean-set-intersection fast path.
//
// The products are tiled (row-block x row-block x word-block) so the
// operand slices a tile touches stay L1-resident, and results are written
// 64 output bits at a time; Transposed() moves whole 64x64 bit blocks
// through an in-register delta-swap transpose instead of scattering single
// bits. The unblocked all-pairs row-intersection survives as
// BoolProductNaive / CountProductNaive, the oracle the tests and the kernel
// microbenchmark compare against.

#ifndef JPMM_MATRIX_BOOL_MATRIX_H_
#define JPMM_MATRIX_BOOL_MATRIX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/aligned_buffer.h"
#include "common/check.h"

namespace jpmm {

/// rows x cols bit matrix, rows packed into 64-bit words.
class BoolMatrix {
 public:
  BoolMatrix() = default;
  BoolMatrix(size_t rows, size_t cols)
      : rows_(rows),
        cols_(cols),
        words_per_row_((cols + 63) / 64),
        data_(rows * words_per_row_, 0) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t words_per_row() const { return words_per_row_; }

  void Set(size_t i, size_t j) {
    JPMM_DCHECK(i < rows_ && j < cols_);
    data_[i * words_per_row_ + (j >> 6)] |= (uint64_t{1} << (j & 63));
  }
  bool Test(size_t i, size_t j) const {
    JPMM_DCHECK(i < rows_ && j < cols_);
    return (data_[i * words_per_row_ + (j >> 6)] >> (j & 63)) & 1;
  }

  const uint64_t* RowWords(size_t i) const {
    JPMM_DCHECK(i < rows_);
    return data_.data() + i * words_per_row_;
  }
  uint64_t* MutableRowWords(size_t i) {
    JPMM_DCHECK(i < rows_);
    return data_.data() + i * words_per_row_;
  }

  /// Returns the transpose (cols x rows).
  BoolMatrix Transposed() const;

  /// True iff rows a (of this) and b (of other) share a set bit.
  /// Both matrices must have the same column count.
  bool RowsIntersect(size_t a, const BoolMatrix& other, size_t b) const;

  /// |row a AND row b of other|.
  uint32_t RowAndCount(size_t a, const BoolMatrix& other, size_t b) const;

  size_t SizeBytes() const { return data_.size() * sizeof(uint64_t); }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  size_t words_per_row_ = 0;
  // 64-byte-aligned base; rows themselves are unpadded, so the SIMD word
  // kernels still use unaligned loads (matrix/bool_kernels.h).
  AlignedVector<uint64_t> data_;
};

/// Boolean product over the OR/AND semiring: result[i][j] = 1 iff row i of a
/// intersects row j of bt (bt is B transposed: both row sets range over the
/// shared inner dimension). threads partitions a's rows.
BoolMatrix BoolProduct(const BoolMatrix& a, const BoolMatrix& bt,
                       int threads = 1);

/// Counting product: result[i * bt.rows() + j] = |row_i(a) AND row_j(bt)|.
std::vector<uint32_t> CountProduct(const BoolMatrix& a, const BoolMatrix& bt,
                                   int threads = 1);

/// Unblocked all-pairs references (the pre-blocking kernels), for oracle
/// tests and the kernel microbenchmark. Single-threaded.
BoolMatrix BoolProductNaive(const BoolMatrix& a, const BoolMatrix& bt);
std::vector<uint32_t> CountProductNaive(const BoolMatrix& a,
                                        const BoolMatrix& bt);

}  // namespace jpmm

#endif  // JPMM_MATRIX_BOOL_MATRIX_H_
