// Internal contract between the tiled boolean products (bool_matrix.cpp)
// and the per-ISA word-kernel TUs.
//
// The tile loops (blocking, early exit, write-back) stay ISA-agnostic; the
// two word-level primitives they call per row pair are the dispatch points:
//
//   AndPopcountFn  sum over wn words of popcount(ra[w] & rb[w])
//                  (CountProduct's inner loop — AVX-512 VPOPCNTDQ target)
//   AnyAndFn       does any of the wn word pairs intersect?
//                  (BoolProduct's witness probe)
//
// Both are pure reductions over integers, so any evaluation order is
// exact; byte-identical output across levels is automatic. wn is at most
// kWB (32) words per call. The unblocked naive oracles
// (BoolProductNaive / CountProductNaive via RowsIntersect / RowAndCount)
// deliberately do NOT dispatch — they stay scalar so differential tests
// compare against an independent implementation.

#ifndef JPMM_MATRIX_BOOL_KERNELS_H_
#define JPMM_MATRIX_BOOL_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "common/cpu_features.h"

namespace jpmm {
namespace internal {

using AndPopcountFn = uint32_t (*)(const uint64_t* ra, const uint64_t* rb,
                                   size_t wn);
using AnyAndFn = bool (*)(const uint64_t* ra, const uint64_t* rb, size_t wn);

uint32_t AndPopcountPortable(const uint64_t* ra, const uint64_t* rb,
                             size_t wn);
bool AnyAndPortable(const uint64_t* ra, const uint64_t* rb, size_t wn);

/// nullptr when the TU was compiled without AVX-512 support. The popcount
/// variant additionally requires the host to report VPOPCNTDQ at runtime
/// (checked by the selector, not here).
AndPopcountFn Avx512AndPopcount();
AnyAndFn Avx512AnyAnd();

/// Selectors: best available primitive for `isa`, falling back to portable.
AndPopcountFn SelectAndPopcount(KernelIsa isa);
AnyAndFn SelectAnyAnd(KernelIsa isa);

}  // namespace internal
}  // namespace jpmm

#endif  // JPMM_MATRIX_BOOL_KERNELS_H_
