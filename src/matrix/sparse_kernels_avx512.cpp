// AVX-512 stamp expansion for the CSR x CSR counting product: 16 columns
// per step with conflict-detected gather/scatter into the StampCounter and
// a compress-store of fresh columns into the touched list. Compiled with
// per-file -mavx512* flags (CMakeLists.txt).

#include "matrix/sparse_kernels.h"

#if defined(__AVX512F__) && defined(__AVX512CD__)

#include <immintrin.h>

#include <bit>

namespace jpmm {
namespace internal {
namespace {

void ExpandRowAvx512Impl(const uint32_t* js, size_t n, StampCounter* counter,
                         AlignedVector<uint32_t>* touched) {
  uint32_t* stamps = counter->raw_stamps();
  uint32_t* counts = counter->raw_counts();
  const __m512i epoch =
      _mm512_set1_epi32(static_cast<int>(counter->epoch()));
  const __m512i one = _mm512_set1_epi32(1);
  for (size_t p = 0; p < n; p += 16) {
    const size_t rem = n - p;
    const __mmask16 lanes =
        rem >= 16 ? static_cast<__mmask16>(0xFFFF)
                  : static_cast<__mmask16>((1u << rem) - 1);
    // Dead tail lanes load as 0; they sit ABOVE every live lane, so they
    // cannot appear as an "earlier duplicate" in a live lane's conflict set.
    const __m512i idx = _mm512_maskz_loadu_epi32(lanes, js + p);
    const __m512i conf = _mm512_conflict_epi32(idx);
    const __mmask16 dup =
        _mm512_test_epi32_mask(conf, conf) & lanes;  // earlier lane == mine
    const __mmask16 mfirst = lanes & ~dup;  // distinct values: scatter-safe

    const __m512i st = _mm512_mask_i32gather_epi32(_mm512_setzero_si512(),
                                                   mfirst, idx, stamps, 4);
    const __mmask16 fresh = _mm512_mask_cmpneq_epi32_mask(mfirst, st, epoch);
    const __mmask16 present = mfirst & ~fresh;
    // Counts gather only for already-live lanes; fresh lanes start from the
    // zero src, so the shared +1 yields their correct first count.
    const __m512i ct = _mm512_mask_i32gather_epi32(_mm512_setzero_si512(),
                                                   present, idx, counts, 4);
    const __m512i newct = _mm512_add_epi32(ct, one);
    _mm512_mask_i32scatter_epi32(stamps, mfirst, idx, epoch, 4);
    _mm512_mask_i32scatter_epi32(counts, mfirst, idx, newct, 4);

    if (fresh != 0) {
      // resize BEFORE taking data(): it may reallocate.
      const size_t base = touched->size();
      touched->resize(base + std::popcount(static_cast<unsigned>(fresh)));
      _mm512_mask_compressstoreu_epi32(touched->data() + base, fresh, idx);
    }

    // Duplicate lanes replay scalar AFTER the scatter: their column's first
    // occurrence in this block already stamped it, so they only bump the
    // (now up-to-date) count and are never fresh.
    unsigned rest = dup;
    while (rest != 0) {
      const int lane = std::countr_zero(rest);
      rest &= rest - 1;
      counts[js[p + static_cast<size_t>(lane)]] += 1;
    }
  }
}

}  // namespace

ExpandRowFn Avx512ExpandRow() { return &ExpandRowAvx512Impl; }

}  // namespace internal
}  // namespace jpmm

#else  // toolchain cannot emit AVX-512 F+CD: portable path only

namespace jpmm {
namespace internal {
ExpandRowFn Avx512ExpandRow() { return nullptr; }
}  // namespace internal
}  // namespace jpmm

#endif
