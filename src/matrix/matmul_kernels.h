// Internal contract between the blocked GEMM driver (matmul.cpp) and the
// per-ISA micro-kernel translation units.
//
// The driver owns packing and cache blocking; the micro-kernel is the only
// ISA-specific piece. Each variant lives in its own TU compiled with
// per-file -m flags (CMakeLists.txt), so one binary carries portable, AVX2,
// and AVX-512 code paths and dispatches at runtime on ActiveIsa(). A TU
// whose target ISA the compiler cannot emit returns nullptr from its
// accessor and the dispatch falls through to the next lower level.
//
// Micro-kernel contract (every variant MUST obey all of it — the
// differential fuzzer enforces byte-identical outputs across levels):
//   - computes C[0..rows) x [0..cols) += Ap * Bp over kc inner steps;
//   - ap is a kMR-row packed panel: ap[k * kMR + r] = A element (r, k);
//   - bp is a kNR-column packed panel: bp[k * kNR + c] = B element (k, c),
//     64-byte aligned with every k-row 64-byte aligned (kNR floats = 128
//     bytes; the packing buffers are AlignedVector slabs) — vector loads
//     of bp may be aligned loads;
//   - each accumulator element (r, c) is accumulated in ascending-k order,
//     one product per k (FMA or mul+add both allowed: operands are small
//     integers, exact in float, so contraction cannot change the value);
//   - rows/cols only bound the write-back; the hot loop always runs the
//     full kMR x kNR tile (the packing zero-pads).

#ifndef JPMM_MATRIX_MATMUL_KERNELS_H_
#define JPMM_MATRIX_MATMUL_KERNELS_H_

#include <cstddef>

#include "common/cpu_features.h"

namespace jpmm {
namespace internal {

// Blocking parameters shared by the driver and every micro-kernel. See
// matmul.cpp for the cache-level rationale and docs/kernels.md for the
// measured tile-shape sweep.
inline constexpr size_t kMR = 8;
inline constexpr size_t kNR = 32;
inline constexpr size_t kMC = 128;
inline constexpr size_t kKC = 512;
inline constexpr size_t kNC = 2048;

static_assert(kMC % kMR == 0, "A panels must divide evenly into row tiles");
static_assert(kNC % kNR == 0, "B panels must divide evenly into column tiles");

using MicroKernelFn = void (*)(const float* ap, const float* bp, size_t kc,
                               float* c, size_t ldc, size_t rows, size_t cols);

/// The auto-vectorized C++ tile (always available; compiled with the
/// build's global flags, so it IS the old kernel when JPMM_NATIVE is on).
void MicroKernelPortable(const float* ap, const float* bp, size_t kc,
                         float* c, size_t ldc, size_t rows, size_t cols);

/// Hand-intrinsics variants, or nullptr when their TU was compiled without
/// ISA support (non-x86 target or a compiler lacking the -m flags).
MicroKernelFn Avx2MicroKernel();
MicroKernelFn Avx512MicroKernel();

/// Best micro-kernel for `isa`, falling through to lower levels when a
/// variant is unavailable. Never returns nullptr.
MicroKernelFn SelectMicroKernel(KernelIsa isa);

}  // namespace internal
}  // namespace jpmm

#endif  // JPMM_MATRIX_MATMUL_KERNELS_H_
