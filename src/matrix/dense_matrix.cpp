#include "matrix/dense_matrix.h"

namespace jpmm {

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  // Tile to keep both access patterns cache-resident.
  constexpr size_t kTile = 32;
  for (size_t i0 = 0; i0 < rows_; i0 += kTile) {
    const size_t i1 = std::min(rows_, i0 + kTile);
    for (size_t j0 = 0; j0 < cols_; j0 += kTile) {
      const size_t j1 = std::min(cols_, j0 + kTile);
      for (size_t i = i0; i < i1; ++i) {
        for (size_t j = j0; j < j1; ++j) {
          t.data_[j * rows_ + i] = data_[i * cols_ + j];
        }
      }
    }
  }
  return t;
}

}  // namespace jpmm
