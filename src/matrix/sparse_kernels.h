// Internal contract between the CSR x CSR counting product
// (sparse_matrix.cpp) and its per-ISA stamp-expansion TUs.
//
// The hot inner operation of CsrCsrRowRange is expanding one B row's column
// list into the epoch-stamped counter:
//
//   for j in row: if (counter.Add(j, 1) == 0) touched.push_back(j)
//
// ExpandRowFn is that operation as a dispatchable primitive. The AVX-512
// variant processes 16 columns per step: _mm512_conflict_epi32 splits each
// block into first-occurrence lanes (safe to gather/scatter the stamp and
// count arrays in parallel) and duplicate lanes (replayed scalar AFTER the
// vector scatter so they observe the updated counts). Fresh columns are
// appended to `touched` with a masked compress-store.
//
// Exactness: counts are integer adds (commutative, exact in any order) and
// the fresh-column SET is order-independent; CsrCsrRowRange sorts `touched`
// before emitting, so every level produces byte-identical SparseRowBlocks.

#ifndef JPMM_MATRIX_SPARSE_KERNELS_H_
#define JPMM_MATRIX_SPARSE_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "common/aligned_buffer.h"
#include "common/cpu_features.h"
#include "common/stamp_set.h"

namespace jpmm {
namespace internal {

/// Adds 1 to counter[js[p]] for p in [0, n), appending each column that was
/// fresh this epoch to *touched (append-only; existing contents are kept).
/// The counter's universe must already cover every index in js.
using ExpandRowFn = void (*)(const uint32_t* js, size_t n,
                             StampCounter* counter,
                             AlignedVector<uint32_t>* touched);

void ExpandRowPortable(const uint32_t* js, size_t n, StampCounter* counter,
                       AlignedVector<uint32_t>* touched);

/// nullptr when the TU was compiled without AVX-512 support (the impl needs
/// F + CD; both are part of the kAvx512 dispatch contract).
ExpandRowFn Avx512ExpandRow();

/// Best available expansion primitive for `isa`, falling back to portable.
ExpandRowFn SelectExpandRow(KernelIsa isa);

}  // namespace internal
}  // namespace jpmm

#endif  // JPMM_MATRIX_SPARSE_KERNELS_H_
