// CSR boolean sparse matrix + density-calibrated sparse products.
//
// The heavy parts MMJoin materializes are 0/1 adjacency matrices whose
// density (heavy pairs / |heavy_x|*|heavy_y|) on skewed real data is often
// 1e-3 or lower; a dense kernel then spends O(U*V*W) multiplying zeros.
// CsrMatrix stores only the set cells (row offsets + column indices) and is
// built directly from the heavy adjacency lists, skipping the dense
// materialization pass entirely. Three kernel families operate on it:
//
//   CsrDenseRowRange / CsrDenseProduct  - CSR x dense counting product:
//       each CSR row is a saxpy of dense-B rows into a float accumulator
//       row, O(nnz(A) * W) instead of O(U * V * W).
//   CsrCsrRowRange / CsrCsrProduct      - CSR x CSR counting product with
//       an epoch-stamped accumulator, O(sum over A entries of the matching
//       B-row nnz) — the ultra-sparse regime where even reading dense B
//       rows would dominate.
//   *Product(threads)                   - row-band parallel variants on the
//       process-wide pool (ParallelForDynamic: nnz skew per band makes
//       static chunks unbalanced).
//
// Counts accumulate either in float cells (CsrDense*, exact below 2^24,
// same bound as the dense path) or uint32 stamp counters (CsrCsr*, always
// exact). Per-block kernel choice between dense GEMM and these kernels
// lives in core/heavy_dispatch.h, fed by the measured SparseKernelRates
// (matrix/calibration.h).

#ifndef JPMM_MATRIX_SPARSE_MATRIX_H_
#define JPMM_MATRIX_SPARSE_MATRIX_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "common/aligned_buffer.h"
#include "common/check.h"
#include "common/stamp_set.h"
#include "common/types.h"
#include "matrix/dense_matrix.h"

namespace jpmm {

/// rows x cols 0/1 matrix in compressed-sparse-row form: per-row spans of
/// column indices. Rows are appended in order (PushCol/FinishRow) or built
/// in parallel via FromRows / FromEntries.
class CsrMatrix {
 public:
  CsrMatrix() { offsets_.push_back(0); }
  explicit CsrMatrix(size_t cols) : cols_(cols) { offsets_.push_back(0); }

  size_t rows() const { return offsets_.size() - 1; }
  size_t cols() const { return cols_; }
  uint64_t nnz() const { return cols_idx_.size(); }

  /// nnz / (rows * cols); 0 for degenerate shapes.
  double Density() const {
    const double cells = static_cast<double>(rows()) * cols_;
    return cells > 0.0 ? static_cast<double>(nnz()) / cells : 0.0;
  }

  /// Column indices of row i, in insertion order (ascending when the source
  /// adjacency lists are sorted, as IndexedRelation's are).
  std::span<const uint32_t> Row(size_t i) const {
    JPMM_DCHECK(i + 1 < offsets_.size());
    return {cols_idx_.data() + offsets_[i],
            static_cast<size_t>(offsets_[i + 1] - offsets_[i])};
  }

  /// nnz of rows [r0, r1) — per-block density for the kernel dispatch.
  uint64_t RowRangeNnz(size_t r0, size_t r1) const {
    JPMM_DCHECK(r0 <= r1 && r1 + 1 <= offsets_.size());
    return offsets_[r1] - offsets_[r0];
  }

  /// Sequential construction: append columns of the current row, then seal
  /// it. Rows are implicitly numbered by FinishRow() call order.
  void PushCol(uint32_t col) {
    JPMM_DCHECK(col < cols_);
    cols_idx_.push_back(col);
  }
  void FinishRow() { offsets_.push_back(cols_idx_.size()); }
  void ReserveNnz(size_t n) { cols_idx_.reserve(n); }
  void ReserveRows(size_t n) { offsets_.reserve(n + 1); }

  /// Parallel two-pass construction. fill(i, out) appends row i's column
  /// indices to out (out arrives empty); it is called twice per row (count
  /// pass + write pass), so it must be deterministic and cheap.
  static CsrMatrix FromRows(
      size_t rows, size_t cols, int threads,
      const std::function<void(size_t, std::vector<uint32_t>*)>& fill);

  /// From (a, b) pairs in arbitrary order via a stable counting sort.
  /// Entry (a, b) lands at (row a, col b), or (row b, col a) when swapped —
  /// the star join uses swapped=true to build the transposed operand from
  /// the same entry list.
  static CsrMatrix FromEntries(
      size_t rows, size_t cols,
      std::span<const std::pair<Value, Value>> entries, bool swapped = false);

  /// CSR view of a dense 0/1 matrix (cells > 0.5f are set). Tests and the
  /// microbenchmark use it so sparse and dense kernels see one operand.
  static CsrMatrix FromDense(const Matrix& m);

  /// Dense 0/1 materialization (row scatter, parallel over rows). This is
  /// how the joins build their dense operands when a product block prefers
  /// the dense GEMM: CSR first, densify only if some block needs it.
  Matrix ToDense(int threads = 1) const;

  /// Payload + index bytes (memory-cap accounting).
  size_t SizeBytes() const {
    return cols_idx_.size() * sizeof(uint32_t) +
           offsets_.size() * sizeof(uint64_t);
  }

 private:
  size_t cols_ = 0;
  // 64-byte-aligned so the SIMD row-expansion and gather kernels get
  // cache-line-aligned bases (common/aligned_buffer.h).
  AlignedVector<uint64_t> offsets_;    // size rows + 1
  AlignedVector<uint32_t> cols_idx_;   // nnz column indices
};

/// Bytes a CsrMatrix with the given shape and nnz occupies — exposed so the
/// memory-cap loops can account for the sparse representation before
/// building it (the mm_join fix: sparse inputs must not be charged dense
/// U*V bytes).
uint64_t CsrBytes(uint64_t rows, uint64_t nnz);

/// Per-worker scratch of the CSR x CSR kernel: an epoch-stamped counter
/// over B's column space plus the touched-column list. Reused across
/// blocks; ResizeUniverse happens lazily inside the kernel.
struct CsrScratch {
  StampCounter counter;
  AlignedVector<uint32_t> touched;
};

/// Sparse output rows of one product block: row r0 + i owns
/// cols/counts[offsets[i], offsets[i+1]), columns ascending. The joins emit
/// straight from this — no O(W) dense scan per output row in the
/// ultra-sparse regime.
struct SparseRowBlock {
  std::vector<size_t> offsets;   // size (#rows) + 1
  std::vector<uint32_t> cols;
  std::vector<uint32_t> counts;

  void Clear() {
    offsets.clear();
    cols.clear();
    counts.clear();
  }
  size_t num_rows() const { return offsets.empty() ? 0 : offsets.size() - 1; }
  std::span<const uint32_t> RowCols(size_t i) const {
    return {cols.data() + offsets[i], offsets[i + 1] - offsets[i]};
  }
  std::span<const uint32_t> RowCounts(size_t i) const {
    return {counts.data() + offsets[i], offsets[i + 1] - offsets[i]};
  }
};

/// Rows [r0, r1) of A * B (counting product) into out, which must hold
/// (r1 - r0) * b.cols() floats: zero the slice, then saxpy one dense B row
/// per A entry. Safe to call concurrently on disjoint output slices.
void CsrDenseRowRange(const CsrMatrix& a, const Matrix& b, size_t r0,
                      size_t r1, std::span<float> out);

/// Full A * B with row bands claimed off the shared pool (threads <= 1 runs
/// inline). Bit-identical across thread counts.
Matrix CsrDenseProduct(const CsrMatrix& a, const Matrix& b, int threads = 1);

/// Rows [r0, r1) of A * B with both operands CSR: expand each A entry's
/// B row into the stamp counter, then emit the touched columns in ascending
/// order into out. Counts are exact uint32.
void CsrCsrRowRange(const CsrMatrix& a, const CsrMatrix& b, size_t r0,
                    size_t r1, CsrScratch* scratch, SparseRowBlock* out);

/// Full CSR x CSR counting product, densified (tests / benches / rate
/// calibration). Row-band parallel like CsrDenseProduct.
Matrix CsrCsrProduct(const CsrMatrix& a, const CsrMatrix& b, int threads = 1);

/// Exact stamp-update count of CsrCsrRowRange over rows [r0, r1): the sum,
/// over A entries in the range, of the matching B row's nnz. O(block nnz)
/// to compute — the dispatch and the rate calibration both use it.
double CsrCsrExpandOps(const CsrMatrix& a, const CsrMatrix& b, size_t r0,
                       size_t r1);

/// Unblocked reference: per-row saxpy into double accumulators (an
/// implementation independent of the float kernels — exact for 0/1
/// operands). The oracle for the sparse property tests and the
/// microbenchmark setup verification.
Matrix CsrProductReference(const CsrMatrix& a, const Matrix& b);

}  // namespace jpmm

#endif  // JPMM_MATRIX_SPARSE_MATRIX_H_
