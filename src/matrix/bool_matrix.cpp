#include "matrix/bool_matrix.h"

#include <bit>

#include "common/thread_pool.h"

namespace jpmm {

BoolMatrix BoolMatrix::Transposed() const {
  BoolMatrix t(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    const uint64_t* row = RowWords(i);
    for (size_t wi = 0; wi < words_per_row_; ++wi) {
      uint64_t w = row[wi];
      while (w != 0) {
        const int bit = std::countr_zero(w);
        t.Set((wi << 6) + static_cast<size_t>(bit), i);
        w &= w - 1;
      }
    }
  }
  return t;
}

bool BoolMatrix::RowsIntersect(size_t a, const BoolMatrix& other,
                               size_t b) const {
  JPMM_DCHECK(cols_ == other.cols_);
  const uint64_t* ra = RowWords(a);
  const uint64_t* rb = other.RowWords(b);
  for (size_t i = 0; i < words_per_row_; ++i) {
    if (ra[i] & rb[i]) return true;
  }
  return false;
}

uint32_t BoolMatrix::RowAndCount(size_t a, const BoolMatrix& other,
                                 size_t b) const {
  JPMM_DCHECK(cols_ == other.cols_);
  const uint64_t* ra = RowWords(a);
  const uint64_t* rb = other.RowWords(b);
  uint32_t c = 0;
  for (size_t i = 0; i < words_per_row_; ++i) {
    c += static_cast<uint32_t>(std::popcount(ra[i] & rb[i]));
  }
  return c;
}

BoolMatrix BoolProduct(const BoolMatrix& a, const BoolMatrix& bt,
                       int threads) {
  JPMM_CHECK(a.cols() == bt.cols());
  BoolMatrix c(a.rows(), bt.rows());
  ParallelFor(threads, a.rows(), [&](size_t r0, size_t r1, int) {
    for (size_t i = r0; i < r1; ++i) {
      for (size_t j = 0; j < bt.rows(); ++j) {
        if (a.RowsIntersect(i, bt, j)) c.Set(i, j);
      }
    }
  });
  return c;
}

std::vector<uint32_t> CountProduct(const BoolMatrix& a, const BoolMatrix& bt,
                                   int threads) {
  JPMM_CHECK(a.cols() == bt.cols());
  std::vector<uint32_t> c(a.rows() * bt.rows(), 0);
  ParallelFor(threads, a.rows(), [&](size_t r0, size_t r1, int) {
    for (size_t i = r0; i < r1; ++i) {
      uint32_t* crow = c.data() + i * bt.rows();
      for (size_t j = 0; j < bt.rows(); ++j) {
        crow[j] = a.RowAndCount(i, bt, j);
      }
    }
  });
  return c;
}

}  // namespace jpmm
