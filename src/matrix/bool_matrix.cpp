#include "matrix/bool_matrix.h"

#include <algorithm>
#include <bit>

#include "common/cpu_features.h"
#include "common/thread_pool.h"
#include "matrix/bool_kernels.h"

namespace jpmm {

namespace internal {

uint32_t AndPopcountPortable(const uint64_t* ra, const uint64_t* rb,
                             size_t wn) {
  uint32_t s = 0;
  for (size_t w = 0; w < wn; ++w) {
    s += static_cast<uint32_t>(std::popcount(ra[w] & rb[w]));
  }
  return s;
}

bool AnyAndPortable(const uint64_t* ra, const uint64_t* rb, size_t wn) {
  for (size_t w = 0; w < wn; ++w) {
    if (ra[w] & rb[w]) return true;
  }
  return false;
}

AndPopcountFn SelectAndPopcount(KernelIsa isa) {
  // The vector popcount needs VPOPCNTDQ on top of the kAvx512 baseline — a
  // separate runtime bit (Skylake-SP has AVX-512 but not VPOPCNTDQ).
  if (isa == KernelIsa::kAvx512 && HasAvx512Vpopcntdq()) {
    if (AndPopcountFn fn = Avx512AndPopcount()) return fn;
  }
  return &AndPopcountPortable;
}

AnyAndFn SelectAnyAnd(KernelIsa isa) {
  if (isa == KernelIsa::kAvx512) {
    if (AnyAndFn fn = Avx512AnyAnd()) return fn;
  }
  return &AnyAndPortable;
}

}  // namespace internal

namespace {

// ---- Blocking parameters -------------------------------------------------
//
// Product tiles span kIB rows of a, 64 rows of bt (one output word), and
// kWB-word slices of the shared inner dimension, so the operand slices
// ((kIB + 64) rows x kWB x 8 bytes = 32 KiB) stay L1-resident while every
// row pair in the tile is intersected. 64 bt rows per tile lets results be
// written (and early-exit state tracked) as single 64-bit words instead of
// per-bit Set() calls.
constexpr size_t kIB = 64;
constexpr size_t kWB = 32;

// In-register transpose of a 64x64 bit block held as 64 row words with the
// LSB-first column convention (bit c of word r = element (r, c)). Classic
// Hacker's Delight delta-swap ladder, mirrored for LSB-first.
void Transpose64(uint64_t* m) {
  uint64_t mask = 0x00000000FFFFFFFFull;
  for (int j = 32; j != 0; j >>= 1, mask ^= mask << j) {
    for (int k = 0; k < 64; k = (k + j + 1) & ~j) {
      const uint64_t t = ((m[k] >> j) ^ m[k + j]) & mask;
      m[k] ^= t << j;
      m[k + j] ^= t;
    }
  }
}

}  // namespace

BoolMatrix BoolMatrix::Transposed() const {
  BoolMatrix t(cols_, rows_);
  const size_t row_blocks = (rows_ + 63) / 64;
  for (size_t rb = 0; rb < row_blocks; ++rb) {
    const size_t r0 = rb << 6;
    const size_t rcount = std::min<size_t>(64, rows_ - r0);
    for (size_t cb = 0; cb < words_per_row_; ++cb) {
      uint64_t block[64];
      uint64_t any = 0;
      for (size_t r = 0; r < rcount; ++r) {
        block[r] = data_[(r0 + r) * words_per_row_ + cb];
        any |= block[r];
      }
      if (any == 0) continue;  // destination words already zero
      for (size_t r = rcount; r < 64; ++r) block[r] = 0;
      Transpose64(block);
      const size_t ccount = std::min<size_t>(64, cols_ - (cb << 6));
      for (size_t c = 0; c < ccount; ++c) {
        t.data_[((cb << 6) + c) * t.words_per_row_ + rb] = block[c];
      }
    }
  }
  return t;
}

bool BoolMatrix::RowsIntersect(size_t a, const BoolMatrix& other,
                               size_t b) const {
  JPMM_DCHECK(cols_ == other.cols_);
  const uint64_t* ra = RowWords(a);
  const uint64_t* rb = other.RowWords(b);
  for (size_t i = 0; i < words_per_row_; ++i) {
    if (ra[i] & rb[i]) return true;
  }
  return false;
}

uint32_t BoolMatrix::RowAndCount(size_t a, const BoolMatrix& other,
                                 size_t b) const {
  JPMM_DCHECK(cols_ == other.cols_);
  const uint64_t* ra = RowWords(a);
  const uint64_t* rb = other.RowWords(b);
  uint32_t c = 0;
  for (size_t i = 0; i < words_per_row_; ++i) {
    c += static_cast<uint32_t>(std::popcount(ra[i] & rb[i]));
  }
  return c;
}

BoolMatrix BoolProduct(const BoolMatrix& a, const BoolMatrix& bt,
                       int threads) {
  JPMM_CHECK(a.cols() == bt.cols());
  BoolMatrix c(a.rows(), bt.rows());
  const size_t words = a.words_per_row();
  const size_t nb = bt.rows();
  // ISA is read once per product call; the workers share the selection.
  const internal::AnyAndFn anyand = internal::SelectAnyAnd(ActiveIsa());
  // Dynamic row-band claiming: the early exit makes witness-dense bands far
  // cheaper than sparse ones, so static chunks would load-imbalance.
  ParallelForDynamic(threads, a.rows(), /*grain=*/kIB,
                     [&](size_t rr0, size_t rr1, int) {
    for (size_t i0 = rr0; i0 < rr1; i0 += kIB) {
      const size_t i1 = std::min(rr1, i0 + kIB);
      for (size_t j0 = 0; j0 < nb; j0 += 64) {
        const size_t jn = std::min<size_t>(64, nb - j0);
        const uint64_t full =
            jn == 64 ? ~uint64_t{0} : (uint64_t{1} << jn) - 1;
        uint64_t out[kIB] = {};
        for (size_t w0 = 0; w0 < words; w0 += kWB) {
          const size_t wn = std::min(kWB, words - w0);
          bool tile_done = true;
          for (size_t i = i0; i < i1; ++i) {
            uint64_t got = out[i - i0];
            if (got == full) continue;
            const uint64_t* ra = a.RowWords(i) + w0;
            uint64_t pending = full & ~got;
            while (pending != 0) {
              const int jj = std::countr_zero(pending);
              pending &= pending - 1;
              const uint64_t* rb = bt.RowWords(j0 + jj) + w0;
              if (anyand(ra, rb, wn)) got |= uint64_t{1} << jj;
            }
            out[i - i0] = got;
            tile_done &= got == full;
          }
          if (tile_done) break;  // every pair in the tile has a witness
        }
        for (size_t i = i0; i < i1; ++i) {
          c.MutableRowWords(i)[j0 >> 6] = out[i - i0];
        }
      }
    }
  });
  return c;
}

std::vector<uint32_t> CountProduct(const BoolMatrix& a, const BoolMatrix& bt,
                                   int threads) {
  JPMM_CHECK(a.cols() == bt.cols());
  std::vector<uint32_t> c(a.rows() * bt.rows(), 0);
  const size_t words = a.words_per_row();
  const size_t nb = bt.rows();
  const internal::AndPopcountFn andpop =
      internal::SelectAndPopcount(ActiveIsa());
  ParallelFor(threads, a.rows(), [&](size_t rr0, size_t rr1, int) {
    for (size_t i0 = rr0; i0 < rr1; i0 += kIB) {
      const size_t i1 = std::min(rr1, i0 + kIB);
      for (size_t j0 = 0; j0 < nb; j0 += 64) {
        const size_t jn = std::min<size_t>(64, nb - j0);
        // The 64 x 64 x 4-byte output tile stays L1-resident across the
        // word-slice passes; counts accumulate in place.
        for (size_t w0 = 0; w0 < words; w0 += kWB) {
          const size_t wn = std::min(kWB, words - w0);
          for (size_t i = i0; i < i1; ++i) {
            const uint64_t* ra = a.RowWords(i) + w0;
            uint32_t* crow = c.data() + i * nb + j0;
            for (size_t jj = 0; jj < jn; ++jj) {
              const uint64_t* rb = bt.RowWords(j0 + jj) + w0;
              crow[jj] += andpop(ra, rb, wn);
            }
          }
        }
      }
    }
  });
  return c;
}

BoolMatrix BoolProductNaive(const BoolMatrix& a, const BoolMatrix& bt) {
  JPMM_CHECK(a.cols() == bt.cols());
  BoolMatrix c(a.rows(), bt.rows());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < bt.rows(); ++j) {
      if (a.RowsIntersect(i, bt, j)) c.Set(i, j);
    }
  }
  return c;
}

std::vector<uint32_t> CountProductNaive(const BoolMatrix& a,
                                        const BoolMatrix& bt) {
  JPMM_CHECK(a.cols() == bt.cols());
  std::vector<uint32_t> c(a.rows() * bt.rows(), 0);
  for (size_t i = 0; i < a.rows(); ++i) {
    uint32_t* crow = c.data() + i * bt.rows();
    for (size_t j = 0; j < bt.rows(); ++j) {
      crow[j] = a.RowAndCount(i, bt, j);
    }
  }
  return c;
}

}  // namespace jpmm
