// Random matrix generators shared by calibration, benchmarks, and tests.
//
// One definition so the operands calibration measures, the microbenchmark
// times, and the property tests verify are the same distribution.

#ifndef JPMM_MATRIX_RANDOM_H_
#define JPMM_MATRIX_RANDOM_H_

#include <cstddef>
#include <cstdint>

#include "common/rng.h"
#include "matrix/bool_matrix.h"
#include "matrix/dense_matrix.h"

namespace jpmm {

/// rows x cols matrix with each entry 1.0f with probability density, else 0.
inline Matrix RandomDenseMatrix(size_t rows, size_t cols, double density,
                                uint64_t seed) {
  Matrix m(rows, cols);
  Rng rng(seed);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) {
      if (rng.NextBool(density)) m.Set(i, j, 1.0f);
    }
  }
  return m;
}

/// rows x cols bit matrix with each bit set with probability density.
inline BoolMatrix RandomBoolMatrix(size_t rows, size_t cols, double density,
                                   uint64_t seed) {
  BoolMatrix m(rows, cols);
  Rng rng(seed);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) {
      if (rng.NextBool(density)) m.Set(i, j);
    }
  }
  return m;
}

}  // namespace jpmm

#endif  // JPMM_MATRIX_RANDOM_H_
