// Analytical matrix-multiplication cost model (Lemma 1).
//
// M(U, V, W) = O(U*V*W * beta^(omega-3)) with beta = min(U, V, W): a
// rectangular product decomposes into (UVW / beta^3) square beta-products,
// each O(beta^omega). With the classical kernel omega = 3 and the formula
// degenerates to U*V*W operations; the omega knob exists so tests and the
// theory-facing helpers can reason about fast-MM regimes (omega = 2.373, 2).

#ifndef JPMM_MATRIX_COST_MODEL_H_
#define JPMM_MATRIX_COST_MODEL_H_

#include <cstdint>

namespace jpmm {

/// Exponent of our actual kernel (classical multiplication).
inline constexpr double kClassicalOmega = 3.0;
/// Best published exponent the paper cites (Le Gall & Urrutia).
inline constexpr double kBestKnownOmega = 2.373;

/// Lemma 1 operation count for a U x V times V x W product.
double RectangularMmOps(uint64_t u, uint64_t v, uint64_t w,
                        double omega = kClassicalOmega);

/// Cost of materializing the two rectangular operands as dense arrays
/// (the constant C of §3.1): max(U*V, V*W) cell visits.
double MatrixBuildOps(uint64_t u, uint64_t v, uint64_t w);

/// Word operations of the tiled boolean / counting product over packed
/// rows: U*W row pairs, each intersecting ceil(V / 64) words. An upper
/// bound for BoolProduct (early exit) and exact for CountProduct.
double BoolProductWordOps(uint64_t u, uint64_t v, uint64_t w);

/// Seconds for a boolean-semiring U x V times V x W product at a measured
/// word rate (BoolKernelRates in calibration.h).
double BoolProductSeconds(uint64_t u, uint64_t v, uint64_t w,
                          double words_per_sec);

/// Float-accumulate operations of the CSR x dense saxpy kernel producing a
/// U x W product from a CSR operand with nnz set cells: U*W output-zeroing
/// stores plus one add per (A entry, output column) pair. Compare against
/// RectangularMmOps' U*V*W to see the zero-skip: the sparse count scales
/// with density, the dense one does not.
double SparseProductOps(uint64_t nnz, uint64_t u, uint64_t w);

/// Seconds for a sparse product at a measured nnz-op rate
/// (SparseKernelRates in calibration.h). ops is SparseProductOps for the
/// CSR x dense kernel or the exact expansion count (CsrCsrExpandOps) for
/// the CSR x CSR kernel.
double SparseProductSeconds(double ops, double ops_per_sec);

/// Lemma 3 runtime shape, for shape-checking tests:
/// |D| + |D|^(2/3) * |OUT|^(1/3) * max(|D|, |OUT|)^(1/3)   (omega = 2).
double Lemma3Runtime(double n, double out);

/// Lemma 2 (combinatorial) runtime shape: |D| * |OUT|^(1 - 1/k).
double Lemma2Runtime(double n, double out, int k);

}  // namespace jpmm

#endif  // JPMM_MATRIX_COST_MODEL_H_
