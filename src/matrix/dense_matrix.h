// Row-major dense float matrix.
//
// The paper stores adjacency matrices "as floating point matrices everywhere
// rather than double precision or integer matrices for better performance"
// (§6); witness counts are small integers, exactly representable in float up
// to 2^24, far above any per-pair witness count at our scales.

#ifndef JPMM_MATRIX_DENSE_MATRIX_H_
#define JPMM_MATRIX_DENSE_MATRIX_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/check.h"

namespace jpmm {

/// Dense rows x cols float matrix, zero-initialized.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  float At(size_t i, size_t j) const {
    JPMM_DCHECK(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }
  void Set(size_t i, size_t j, float v) {
    JPMM_DCHECK(i < rows_ && j < cols_);
    data_[i * cols_ + j] = v;
  }

  /// Row i as a span.
  std::span<const float> Row(size_t i) const {
    JPMM_DCHECK(i < rows_);
    return {data_.data() + i * cols_, cols_};
  }
  std::span<float> MutableRow(size_t i) {
    JPMM_DCHECK(i < rows_);
    return {data_.data() + i * cols_, cols_};
  }

  const float* data() const { return data_.data(); }
  float* mutable_data() { return data_.data(); }

  /// Bytes of payload (for memory accounting).
  size_t SizeBytes() const { return data_.size() * sizeof(float); }

  /// Returns the transpose.
  Matrix Transposed() const;

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<float> data_;
};

}  // namespace jpmm

#endif  // JPMM_MATRIX_DENSE_MATRIX_H_
