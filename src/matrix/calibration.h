// Runtime calibration of matrix-multiplication cost — §5, Table 1.
//
// The optimizer needs M̂(u, v, w, co): an estimate of the wall-clock seconds
// to multiply u x v by v x w matrices with co cores. Following the paper, we
// measure square products M̂(p, p, p, co) for a grid of p and extrapolate an
// arbitrary (u, v, w) through its effective dimension (u*v*w)^(1/3), which is
// exact for a classical kernel with predictable cubic growth. The same
// module measures the Table-1 system constants:
//   Ts - seconds per sequential std::vector element access
//   TI - seconds per random access + insert
//   Tm - seconds per 32-byte allocation

#ifndef JPMM_MATRIX_CALIBRATION_H_
#define JPMM_MATRIX_CALIBRATION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace jpmm {

/// Table-1 system constants (seconds per operation).
struct SystemConstants {
  double ts = 1e-9;   // sequential access
  double ti = 8e-9;   // random access + insert
  double tm = 15e-9;  // 32-byte allocation

  /// Micro-measures the constants on this machine.
  static SystemConstants Measure();
};

/// Measured throughput of the tiled boolean kernels, in 64-bit word
/// operations per second (one operation = AND, or AND + popcount, of one
/// word pair), relative to the full BoolProductWordOps word count.
/// The default density is low enough that the boolean product's early exit
/// almost never fires, so bool_words_per_sec reflects sustained full-row
/// scans — on denser inputs the kernel exits early and runs faster than
/// modeled, making BoolProductSeconds a conservative (upper-bound) time
/// estimate at any density. The counting product has no early exit, so its
/// rate is density-independent. cost_model.h turns both into time
/// estimates via BoolProductWordOps.
struct BoolKernelRates {
  double bool_words_per_sec = 1e9;
  double count_words_per_sec = 1e9;

  /// Times the blocked kernels on dim x dim random operands.
  static BoolKernelRates Measure(uint32_t dim = 1024, double density = 0.02);

  /// Process-wide instance, measured once per active KernelIsa on first use
  /// under that level (a JPMM_ISA override re-measures; see
  /// common/cpu_features.h).
  static const BoolKernelRates& Default();
};

/// Measured throughput of the sparse heavy-part kernels
/// (matrix/sparse_matrix.h), in nnz-operations per second, at a small grid
/// of anchor densities. One nnz-op is one float accumulate of the
/// CSR x dense saxpy (relative to SparseProductOps) or one stamp-counter
/// update of the CSR x CSR expansion (relative to CsrCsrExpandOps). The
/// rate is density-dependent — at low density the saxpy is latency-bound on
/// short rows, at high density it streams — so rates are anchored at 2-3
/// densities and queried by log-density interpolation. dense_flops_per_sec
/// is a small blocked-GEMM anchor measured alongside, so the per-block
/// dense-vs-CSR dispatch (core/heavy_dispatch.h) compares kernels measured
/// on the same machine in the same process.
struct SparseKernelRates {
  struct Anchor {
    double density;
    double csr_dense_ops_per_sec;
    double csr_csr_ops_per_sec;
  };
  std::vector<Anchor> anchors;       // ascending density
  double dense_flops_per_sec = 1e9;  // blocked Multiply anchor

  /// Times the sparse kernels on dim x dim operands at each density, and
  /// the dense kernel once (min(dim, 512) cubed).
  static SparseKernelRates Measure(
      uint32_t dim = 1024, const std::vector<double>& densities = {1e-3, 1e-2,
                                                                   1e-1});

  /// Synthetic instance (deterministic tests): constant rates at all
  /// densities.
  static SparseKernelRates FromRates(double csr_dense_ops_per_sec,
                                     double csr_csr_ops_per_sec,
                                     double dense_flops_per_sec);

  /// Process-wide instance, measured once per active KernelIsa on first
  /// use under that level.
  static const SparseKernelRates& Default();

  /// Rates at an arbitrary density: log-density linear interpolation
  /// between the bracketing anchors, clamped at the grid ends.
  double CsrDenseRate(double density) const;
  double CsrCsrRate(double density) const;
};

/// Calibrated matrix-multiplication timing table.
class MatMulCalibration {
 public:
  /// Measures square p x p products for each p in dims and each core count
  /// in cores. dims must be ascending.
  static MatMulCalibration Measure(const std::vector<uint32_t>& dims,
                                   const std::vector<int>& cores);

  /// Builds a synthetic table from a flops rate (tests / deterministic runs):
  /// time(p, co) = p^3 / (rate * co).
  static MatMulCalibration FromFlopsRate(double flops_per_second,
                                         const std::vector<int>& cores);

  /// Estimated seconds for a u x v times v x w product on co cores.
  /// Includes nothing but the multiplication itself. Core counts between
  /// calibrated anchors interpolate the measured speedup curve; counts
  /// beyond the grid extrapolate with the marginal per-core efficiency of
  /// the last measured segment (a single-anchor grid falls back to the old
  /// linear-scaling assumption).
  double EstimateSeconds(uint64_t u, uint64_t v, uint64_t w, int co) const;

  /// Process-wide instance, measured once per active KernelIsa on first
  /// use under that level. The dim grid tops
  /// out at 1024: the blocked kernel's throughput keeps climbing past the
  /// small dims as packing amortizes, so the largest anchor (which cubic
  /// extrapolation grows from) must see the sustained rate, not the
  /// panel-setup-dominated one. The core grid anchors {1, 2, hardware}
  /// (deduplicated) so heavy-cost estimates reflect measured parallel
  /// efficiency of the shared-slab path, not assumed linear scaling.
  static const MatMulCalibration& Default();

  /// Measured effective flops rate at the largest calibrated dim, 1 core.
  double single_core_flops() const;

 private:
  struct Entry {
    uint32_t dim;
    double seconds;
  };
  // entries_[c] = timings for cores_[c], ascending dim.
  std::vector<int> cores_;
  std::vector<std::vector<Entry>> entries_;

  double EstimateForCore(double effective_dim, size_t core_idx) const;
};

}  // namespace jpmm

#endif  // JPMM_MATRIX_CALIBRATION_H_
