#include "matrix/cost_model.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace jpmm {

double RectangularMmOps(uint64_t u, uint64_t v, uint64_t w, double omega) {
  if (u == 0 || v == 0 || w == 0) return 0.0;
  const double beta = static_cast<double>(std::min({u, v, w}));
  return static_cast<double>(u) * static_cast<double>(v) *
         static_cast<double>(w) * std::pow(beta, omega - 3.0);
}

double MatrixBuildOps(uint64_t u, uint64_t v, uint64_t w) {
  return std::max(static_cast<double>(u) * static_cast<double>(v),
                  static_cast<double>(v) * static_cast<double>(w));
}

double BoolProductWordOps(uint64_t u, uint64_t v, uint64_t w) {
  if (u == 0 || v == 0 || w == 0) return 0.0;
  return static_cast<double>(u) * static_cast<double>(w) *
         static_cast<double>((v + 63) / 64);
}

double BoolProductSeconds(uint64_t u, uint64_t v, uint64_t w,
                          double words_per_sec) {
  JPMM_CHECK(words_per_sec > 0.0);
  return BoolProductWordOps(u, v, w) / words_per_sec;
}

double SparseProductOps(uint64_t nnz, uint64_t u, uint64_t w) {
  if (w == 0) return 0.0;
  return (static_cast<double>(u) + static_cast<double>(nnz)) *
         static_cast<double>(w);
}

double SparseProductSeconds(double ops, double ops_per_sec) {
  JPMM_CHECK(ops_per_sec > 0.0);
  return std::max(0.0, ops) / ops_per_sec;
}

double Lemma3Runtime(double n, double out) {
  JPMM_CHECK(n >= 0 && out >= 0);
  return n + std::pow(n, 2.0 / 3.0) * std::pow(out, 1.0 / 3.0) *
                 std::pow(std::max(n, out), 1.0 / 3.0);
}

double Lemma2Runtime(double n, double out, int k) {
  JPMM_CHECK(k >= 2);
  return n * std::pow(out, 1.0 - 1.0 / static_cast<double>(k));
}

}  // namespace jpmm
