// AVX-512 word kernels for the boolean products: VPOPCNTDQ counting and a
// test-mask witness probe, 8 words (512 bits) per step. Compiled with
// per-file -mavx512* flags (CMakeLists.txt).

#include "matrix/bool_kernels.h"

#if defined(__AVX512F__) && defined(__AVX512VPOPCNTDQ__)

#include <immintrin.h>

#include <bit>

namespace jpmm {
namespace internal {
namespace {

// Row words are NOT guaranteed 64-byte aligned (words_per_row is not padded
// to 8), so loads are unaligned; the reduction is integer arithmetic —
// exact in any order.
uint32_t AndPopcountAvx512Impl(const uint64_t* ra, const uint64_t* rb,
                               size_t wn) {
  __m512i acc = _mm512_setzero_si512();
  size_t w = 0;
  for (; w + 8 <= wn; w += 8) {
    const __m512i x = _mm512_and_si512(_mm512_loadu_si512(ra + w),
                                       _mm512_loadu_si512(rb + w));
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(x));
  }
  if (w < wn) {
    const __mmask8 tail = static_cast<__mmask8>((1u << (wn - w)) - 1);
    const __m512i x =
        _mm512_and_si512(_mm512_maskz_loadu_epi64(tail, ra + w),
                         _mm512_maskz_loadu_epi64(tail, rb + w));
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(x));
  }
  return static_cast<uint32_t>(_mm512_reduce_add_epi64(acc));
}

bool AnyAndAvx512Impl(const uint64_t* ra, const uint64_t* rb, size_t wn) {
  size_t w = 0;
  for (; w + 8 <= wn; w += 8) {
    if (_mm512_test_epi64_mask(_mm512_loadu_si512(ra + w),
                               _mm512_loadu_si512(rb + w)) != 0) {
      return true;
    }
  }
  if (w < wn) {
    const __mmask8 tail = static_cast<__mmask8>((1u << (wn - w)) - 1);
    if (_mm512_test_epi64_mask(_mm512_maskz_loadu_epi64(tail, ra + w),
                               _mm512_maskz_loadu_epi64(tail, rb + w)) != 0) {
      return true;
    }
  }
  return false;
}

}  // namespace

AndPopcountFn Avx512AndPopcount() { return &AndPopcountAvx512Impl; }
AnyAndFn Avx512AnyAnd() { return &AnyAndAvx512Impl; }

}  // namespace internal
}  // namespace jpmm

#else  // toolchain cannot emit AVX-512 VPOPCNTDQ: portable path only

namespace jpmm {
namespace internal {
AndPopcountFn Avx512AndPopcount() { return nullptr; }
AnyAndFn Avx512AnyAnd() { return nullptr; }
}  // namespace internal
}  // namespace jpmm

#endif
