// Set containment join (SCJ) — common definitions (Section 4, "SCJ").
//
// Input: one family of sets. Output: all ordered pairs (sub, super) with
// sub != super, elements(sub) SUBSETOF elements(super). Equal sets contain
// each other, so both ordered pairs appear.

#ifndef JPMM_SCJ_SCJ_H_
#define JPMM_SCJ_SCJ_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "storage/set_family.h"

namespace jpmm {

struct ContainmentPair {
  Value sub = 0;
  Value super = 0;

  friend bool operator==(const ContainmentPair& a, const ContainmentPair& b) {
    return a.sub == b.sub && a.super == b.super;
  }
  friend bool operator<(const ContainmentPair& a, const ContainmentPair& b) {
    return a.sub != b.sub ? a.sub < b.sub : a.super < b.super;
  }
};

using ScjResult = std::vector<ContainmentPair>;

struct ScjOptions {
  int threads = 1;
  /// LIMIT+ candidate-generation limit (the paper uses 2).
  uint32_t limit = 2;
};

/// Sorts a containment result canonically.
void CanonicalizeScj(ScjResult* result);

}  // namespace jpmm

#endif  // JPMM_SCJ_SCJ_H_
