// MMJoin-based set containment join.
//
// Containment is a filter over the counted join-project: r SUBSETOF s iff
// the witness count |r INTERSECT s| equals |r| (§4, "SCJ"). The heavy
// lifting — and the parallelism — comes entirely from Algorithm 1; no
// per-pair merge verification is needed, which is exactly where the
// trie-based algorithms spend their time on dense data.

#ifndef JPMM_SCJ_MM_SCJ_H_
#define JPMM_SCJ_MM_SCJ_H_

#include "core/join_project.h"
#include "scj/scj.h"

namespace jpmm {

/// Runs SCJ through the counted join-project. `strategy` as in MmSsj.
ScjResult MmScj(const SetFamily& fam, const ScjOptions& options = {},
                Strategy strategy = Strategy::kAuto);

}  // namespace jpmm

#endif  // JPMM_SCJ_MM_SCJ_H_
