#include "scj/piejoin.h"

#include <algorithm>

#include "common/thread_pool.h"
#include "join/intersection.h"

namespace jpmm {

ScjResult PieJoin(const SetFamily& fam, const ScjOptions& options) {
  const int threads = std::max(1, options.threads);

  // Infrequent-first order, as in PRETTI/PIEJoin.
  std::vector<uint32_t> rank(fam.num_element_ids());
  std::vector<Value> rank_to_elem(fam.num_element_ids());
  {
    std::vector<Value> order(fam.num_element_ids());
    for (Value e = 0; e < fam.num_element_ids(); ++e) order[e] = e;
    std::sort(order.begin(), order.end(), [&](Value a, Value b) {
      const uint32_t la = fam.ListSize(a), lb = fam.ListSize(b);
      return la != lb ? la < lb : a < b;
    });
    for (uint32_t i = 0; i < order.size(); ++i) {
      rank[order[i]] = i;
      rank_to_elem[i] = order[i];
    }
  }

  struct SeqSet {
    std::vector<uint32_t> seq;
    Value id;
  };
  std::vector<SeqSet> sets;
  for (Value s = 0; s < fam.num_set_ids(); ++s) {
    if (fam.SetSize(s) == 0) continue;
    SeqSet e;
    e.id = s;
    for (Value el : fam.Elements(s)) e.seq.push_back(rank[el]);
    std::sort(e.seq.begin(), e.seq.end());
    sets.push_back(std::move(e));
  }
  std::sort(sets.begin(), sets.end(),
            [](const SeqSet& a, const SeqSet& b) { return a.seq < b.seq; });

  // Static partitioning by leading-element rank: the heuristic partitioner
  // whose skew-sensitivity §7.4 observes. Partition p handles sets whose
  // first rank falls in its range; within a partition, prefix walks reuse
  // intersections exactly like PRETTI.
  const uint32_t num_elems = std::max<Value>(1, fam.num_element_ids());
  const uint32_t span = (num_elems + threads - 1) / threads;

  std::vector<ScjResult> partial(static_cast<size_t>(threads));
  ParallelFor(threads, static_cast<size_t>(threads),
              [&](size_t p0, size_t p1, int) {
    for (size_t p = p0; p < p1; ++p) {
      const uint32_t lo = static_cast<uint32_t>(p) * span;
      const uint32_t hi = lo + span;
      ScjResult& out = partial[p];

      std::vector<std::vector<Value>> memo;
      std::vector<uint32_t> memo_seq;
      std::vector<Value> scratch;
      for (const SeqSet& st : sets) {
        if (st.seq[0] < lo || st.seq[0] >= hi) continue;
        uint32_t lcp = 0;
        while (lcp < memo_seq.size() && lcp < st.seq.size() &&
               memo_seq[lcp] == st.seq[lcp]) {
          ++lcp;
        }
        memo.resize(lcp);
        memo_seq.resize(lcp);
        for (uint32_t d = lcp; d < st.seq.size(); ++d) {
          const auto list = fam.InvertedList(rank_to_elem[st.seq[d]]);
          scratch.clear();
          if (d == 0) {
            scratch.assign(list.begin(), list.end());
          } else {
            IntersectSorted(memo[d - 1], list, &scratch);
          }
          if (scratch.empty()) break;
          memo.push_back(scratch);
          memo_seq.push_back(st.seq[d]);
        }
        if (memo.size() == st.seq.size()) {
          for (Value s : memo.back()) {
            if (s != st.id) out.push_back(ContainmentPair{st.id, s});
          }
        }
      }
    }
  });

  ScjResult out;
  for (auto& p : partial) out.insert(out.end(), p.begin(), p.end());
  CanonicalizeScj(&out);
  return out;
}

}  // namespace jpmm
