#include "scj/pretti.h"

#include <algorithm>

#include "join/intersection.h"

namespace jpmm {

void CanonicalizeScj(ScjResult* result) {
  std::sort(result->begin(), result->end());
}

ScjResult PrettiJoin(const SetFamily& fam, const ScjOptions& /*options*/) {
  // Infrequent-first global element order (ascending inverted-list length):
  // rare elements prune candidate lists fastest.
  std::vector<uint32_t> rank(fam.num_element_ids());
  {
    std::vector<Value> order(fam.num_element_ids());
    for (Value e = 0; e < fam.num_element_ids(); ++e) order[e] = e;
    std::sort(order.begin(), order.end(), [&](Value a, Value b) {
      const uint32_t la = fam.ListSize(a), lb = fam.ListSize(b);
      return la != lb ? la < lb : a < b;
    });
    for (uint32_t i = 0; i < order.size(); ++i) rank[order[i]] = i;
  }
  std::vector<Value> rank_to_elem(fam.num_element_ids());
  for (Value e = 0; e < fam.num_element_ids(); ++e) rank_to_elem[rank[e]] = e;

  struct SeqSet {
    std::vector<uint32_t> seq;
    Value id;
  };
  std::vector<SeqSet> sets;
  for (Value s = 0; s < fam.num_set_ids(); ++s) {
    if (fam.SetSize(s) == 0) continue;
    SeqSet e;
    e.id = s;
    for (Value el : fam.Elements(s)) e.seq.push_back(rank[el]);
    std::sort(e.seq.begin(), e.seq.end());
    sets.push_back(std::move(e));
  }
  std::sort(sets.begin(), sets.end(),
            [](const SeqSet& a, const SeqSet& b) { return a.seq < b.seq; });

  // DFS over the implicit prefix tree: a stack of running intersections,
  // reused across sets sharing a prefix.
  std::vector<std::vector<Value>> memo;     // memo[d] = candidates at depth d+1
  std::vector<uint32_t> memo_seq;
  std::vector<Value> scratch;
  ScjResult out;

  for (const SeqSet& st : sets) {
    uint32_t lcp = 0;
    while (lcp < memo_seq.size() && lcp < st.seq.size() &&
           memo_seq[lcp] == st.seq[lcp]) {
      ++lcp;
    }
    memo.resize(lcp);
    memo_seq.resize(lcp);

    for (uint32_t d = lcp; d < st.seq.size(); ++d) {
      const auto list = fam.InvertedList(rank_to_elem[st.seq[d]]);
      scratch.clear();
      if (d == 0) {
        scratch.assign(list.begin(), list.end());
      } else {
        IntersectSorted(memo[d - 1], list, &scratch);
      }
      if (scratch.empty()) break;  // no superset can exist below this node
      memo.push_back(scratch);
      memo_seq.push_back(st.seq[d]);
    }

    if (memo.size() == st.seq.size() && !st.seq.empty()) {
      for (Value s : memo.back()) {
        if (s != st.id) out.push_back(ContainmentPair{st.id, s});
      }
    }
  }
  CanonicalizeScj(&out);
  return out;
}

}  // namespace jpmm
