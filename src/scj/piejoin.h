// PIEJoin — parallel trie-based set containment join (Kunkel et al.),
// simplified reproduction.
//
// The original performs a simultaneous pre/post-order traversal of tries
// built over both collections, parallelized by partitioning top-level trie
// branches. This reproduction keeps the two defining properties the paper's
// comparison relies on — progressive inverted-list intersection along
// infrequent-first prefixes, and coordination-free parallelism over
// partitions of the probe side — while replacing the trie-vs-trie recursion
// with per-partition prefix walks (DESIGN.md §3 records the simplification).
// Its sensitivity to the partitioning heuristic (§7.4: "PIEJoin does not
// scale as well ... sensitive to data distribution and choice of
// partitions") is preserved: partitions are ranges of first-element ranks,
// so skewed leading elements produce unbalanced work.

#ifndef JPMM_SCJ_PIEJOIN_H_
#define JPMM_SCJ_PIEJOIN_H_

#include "scj/scj.h"

namespace jpmm {

/// Runs the simplified PIEJoin with options.threads partitions.
ScjResult PieJoin(const SetFamily& fam, const ScjOptions& options = {});

}  // namespace jpmm

#endif  // JPMM_SCJ_PIEJOIN_H_
