#include "scj/limit_plus.h"

#include <algorithm>

#include "common/check.h"
#include "common/thread_pool.h"
#include "join/intersection.h"

namespace jpmm {

ScjResult LimitPlusJoin(const SetFamily& fam, const ScjOptions& options) {
  JPMM_CHECK(options.limit >= 1);
  const int threads = std::max(1, options.threads);

  std::vector<ScjResult> partial(static_cast<size_t>(threads));
  ParallelFor(threads, fam.num_set_ids(), [&](size_t s0, size_t s1, int w) {
    ScjResult& out = partial[static_cast<size_t>(w)];
    std::vector<Value> rare;      // the `limit` rarest elements of r
    std::vector<Value> cand, next;
    for (size_t s = s0; s < s1; ++s) {
      const auto r = static_cast<Value>(s);
      const uint32_t size = fam.SetSize(r);
      if (size == 0) continue;
      const auto elems = fam.Elements(r);

      // Pick the `limit` elements with the shortest inverted lists.
      rare.assign(elems.begin(), elems.end());
      const size_t keep = std::min<size_t>(options.limit, rare.size());
      std::partial_sort(rare.begin(), rare.begin() + keep, rare.end(),
                        [&](Value a, Value b) {
                          const uint32_t la = fam.ListSize(a);
                          const uint32_t lb = fam.ListSize(b);
                          return la != lb ? la < lb : a < b;
                        });

      // Candidates = intersection of their inverted lists.
      cand.assign(fam.InvertedList(rare[0]).begin(),
                  fam.InvertedList(rare[0]).end());
      for (size_t i = 1; i < keep && !cand.empty(); ++i) {
        next.clear();
        IntersectSorted(cand, fam.InvertedList(rare[i]), &next);
        cand.swap(next);
      }

      // Verification: merge-based subset test (the step §4 calls out as the
      // bottleneck when sets are large).
      for (Value super : cand) {
        if (super == r || fam.SetSize(super) < size) continue;
        if (IsSubsetSorted(elems, fam.Elements(super))) {
          out.push_back(ContainmentPair{r, super});
        }
      }
    }
  });

  ScjResult out;
  for (auto& p : partial) out.insert(out.end(), p.begin(), p.end());
  CanonicalizeScj(&out);
  return out;
}

}  // namespace jpmm
