#include "scj/mm_scj.h"

namespace jpmm {

ScjResult MmScj(const SetFamily& fam, const ScjOptions& options,
                Strategy strategy) {
  JoinProjectOptions jo;
  jo.strategy = strategy;
  jo.threads = options.threads;
  jo.count_witnesses = true;
  auto res = JoinProject::TwoPath(fam.relation(), fam.relation(), jo);

  ScjResult out;
  for (const CountedPair& p : res.counted) {
    if (p.x == p.z) continue;
    if (p.count == fam.SetSize(p.x)) {
      out.push_back(ContainmentPair{p.x, p.z});
    }
  }
  CanonicalizeScj(&out);
  return out;
}

}  // namespace jpmm
