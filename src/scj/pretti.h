// PRETTI — prefix-tree set containment join (Jampani & Pudi).
//
// Sets are rewritten in infrequent-first element order (ascending inverted-
// list length) and inserted into a prefix tree. A DFS maintains the running
// intersection of the inverted lists along the path: at a node ending set r,
// every set in the current intersection contains all of r's elements, i.e.
// is a superset of r. Shared prefixes share their (expensive) intersections,
// which is the algorithm's whole advantage.

#ifndef JPMM_SCJ_PRETTI_H_
#define JPMM_SCJ_PRETTI_H_

#include "scj/scj.h"

namespace jpmm {

/// Runs PRETTI. Single-threaded (the classic formulation).
ScjResult PrettiJoin(const SetFamily& fam, const ScjOptions& options = {});

}  // namespace jpmm

#endif  // JPMM_SCJ_PRETTI_H_
