// LIMIT+ — limit-based set containment join (Bouros et al., "Set containment
// join revisited").
//
// Candidate generation only indexes the `limit` least-frequent elements of
// each probe set: any superset of r must appear in the inverted list of
// every element of r, so intersecting the `limit` rarest lists gives a small
// candidate pool. Candidates are then verified with a merge-based subset
// test. The paper benchmarks limit = 2.

#ifndef JPMM_SCJ_LIMIT_PLUS_H_
#define JPMM_SCJ_LIMIT_PLUS_H_

#include "scj/scj.h"

namespace jpmm {

/// Runs LIMIT+ with options.limit rarest-element candidate generation.
ScjResult LimitPlusJoin(const SetFamily& fam, const ScjOptions& options = {});

}  // namespace jpmm

#endif  // JPMM_SCJ_LIMIT_PLUS_H_
