#include "join/star_wcoj.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/check.h"
#include "common/thread_pool.h"

namespace jpmm {

void TupleBuffer::Add(std::span<const Value> tuple) {
  JPMM_DCHECK(tuple.size() == arity_);
  flat_.insert(flat_.end(), tuple.begin(), tuple.end());
}

void TupleBuffer::SortUnique() {
  const size_t n = size();
  if (n <= 1) return;
  const uint32_t k = arity_;
  const Value* data = flat_.data();

  // Fast paths: pack tuples into machine words (lexicographic order is
  // preserved when values are packed high-to-low), sort, unpack. Tuple
  // buffers routinely hold tens of millions of entries, so the indirected
  // comparison sort below is reserved for arity > 4.
  if (k == 1) {
    std::sort(flat_.begin(), flat_.end());
    flat_.erase(std::unique(flat_.begin(), flat_.end()), flat_.end());
    return;
  }
  if (k == 2) {
    std::vector<uint64_t> packed(n);
    for (size_t i = 0; i < n; ++i) {
      packed[i] = (static_cast<uint64_t>(data[2 * i]) << 32) | data[2 * i + 1];
    }
    std::sort(packed.begin(), packed.end());
    packed.erase(std::unique(packed.begin(), packed.end()), packed.end());
    flat_.resize(packed.size() * 2);
    for (size_t i = 0; i < packed.size(); ++i) {
      flat_[2 * i] = static_cast<Value>(packed[i] >> 32);
      flat_[2 * i + 1] = static_cast<Value>(packed[i]);
    }
    return;
  }
  if (k <= 4) {
    using U128 = unsigned __int128;
    std::vector<U128> packed(n);
    for (size_t i = 0; i < n; ++i) {
      U128 key = 0;
      for (uint32_t d = 0; d < k; ++d) {
        key = (key << 32) | data[i * k + d];
      }
      packed[i] = key;
    }
    std::sort(packed.begin(), packed.end());
    packed.erase(std::unique(packed.begin(), packed.end()), packed.end());
    flat_.resize(packed.size() * k);
    for (size_t i = 0; i < packed.size(); ++i) {
      U128 key = packed[i];
      for (uint32_t d = k; d > 0; --d) {
        flat_[i * k + d - 1] = static_cast<Value>(key & 0xffffffffu);
        key >>= 32;
      }
    }
    return;
  }

  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return std::lexicographical_compare(data + a * k, data + (a + 1) * k,
                                        data + b * k, data + (b + 1) * k);
  });
  std::vector<Value> sorted;
  sorted.reserve(flat_.size());
  for (size_t i = 0; i < n; ++i) {
    const Value* t = data + order[i] * k;
    if (!sorted.empty() &&
        std::equal(t, t + k, sorted.data() + sorted.size() - k)) {
      continue;
    }
    sorted.insert(sorted.end(), t, t + k);
  }
  flat_ = std::move(sorted);
}

void TupleBuffer::Append(const TupleBuffer& other) {
  JPMM_CHECK(arity_ == other.arity_);
  flat_.insert(flat_.end(), other.flat_.begin(), other.flat_.end());
}

namespace {

// Enumerates the per-y cartesian products for y in [y0, y1) into out.
void EnumerateRange(const std::vector<const IndexedRelation*>& rels,
                    const StarTupleFilter& filter,
                    const std::function<bool(Value)>& y_filter, Value y0,
                    Value y1, TupleBuffer* out) {
  const auto k = static_cast<uint32_t>(rels.size());
  std::vector<std::vector<Value>> lists(k);
  std::vector<Value> tuple(k);
  for (Value b = y0; b < y1; ++b) {
    if (y_filter != nullptr && !y_filter(b)) continue;
    bool empty = false;
    for (uint32_t i = 0; i < k; ++i) {
      lists[i].clear();
      for (Value a : rels[i]->XsOf(b)) {
        if (filter == nullptr || filter(i, a, b)) lists[i].push_back(a);
      }
      if (lists[i].empty()) {
        empty = true;
        break;
      }
    }
    if (empty) continue;

    // Odometer over the k lists: emits the cartesian product.
    std::vector<size_t> pos(k, 0);
    for (uint32_t i = 0; i < k; ++i) tuple[i] = lists[i][0];
    for (;;) {
      out->Add(tuple);
      uint32_t dim = k;
      bool done = false;
      while (dim > 0) {
        --dim;
        if (++pos[dim] < lists[dim].size()) {
          tuple[dim] = lists[dim][pos[dim]];
          break;
        }
        pos[dim] = 0;
        tuple[dim] = lists[dim][0];
        if (dim == 0) {
          done = true;
          break;
        }
      }
      if (done) break;
    }
  }
}

}  // namespace

TupleBuffer StarJoinProjectWcoj(
    const std::vector<const IndexedRelation*>& rels,
    const StarTupleFilter& filter,
    const std::function<bool(Value)>& y_filter, int threads) {
  JPMM_CHECK(!rels.empty());
  const auto k = static_cast<uint32_t>(rels.size());

  Value ny = std::numeric_limits<Value>::max();
  for (const auto* rel : rels) ny = std::min(ny, rel->num_y());
  if (ny == std::numeric_limits<Value>::max()) ny = 0;

  threads = std::max(1, threads);
  if (threads == 1 || ny == 0) {
    TupleBuffer out(k);
    EnumerateRange(rels, filter, y_filter, 0, ny, &out);
    out.SortUnique();
    return out;
  }

  std::vector<TupleBuffer> partial(static_cast<size_t>(threads),
                                   TupleBuffer(k));
  ParallelFor(threads, ny, [&](size_t y0, size_t y1, int w) {
    EnumerateRange(rels, filter, y_filter, static_cast<Value>(y0),
                   static_cast<Value>(y1), &partial[static_cast<size_t>(w)]);
  });
  TupleBuffer out(k);
  for (const auto& p : partial) out.Append(p);
  out.SortUnique();
  return out;
}

uint64_t FullStarJoinSize(const std::vector<const IndexedRelation*>& rels) {
  JPMM_CHECK(!rels.empty());
  Value ny = std::numeric_limits<Value>::max();
  for (const auto* rel : rels) ny = std::min(ny, rel->num_y());
  uint64_t total = 0;
  for (Value b = 0; b < ny; ++b) {
    uint64_t prod = 1;
    for (const auto* rel : rels) {
      prod *= rel->DegY(b);
      if (prod == 0) break;
    }
    total += prod;
  }
  return total;
}

}  // namespace jpmm
