// Full-join-then-deduplicate evaluation of the 2-path query.
//
// This is the strategy the paper's DBMS baselines execute (§7.2): compute
// R(x,y) JOIN S(z,y) completely — |OUT_join| pairs, possibly orders of
// magnitude more than the projected output — then eliminate duplicates. The
// dedup flavour is what distinguishes the simulated engines.

#ifndef JPMM_JOIN_HASH_JOIN_H_
#define JPMM_JOIN_HASH_JOIN_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.h"
#include "storage/index.h"

namespace jpmm {

/// How the full join result is deduplicated.
enum class DedupMode {
  kSortUnique,        // materialize all pairs, sort, unique (filesort-style)
  kHashSet,           // streaming dedup through a growing hash set
  kPreallocatedHash,  // hash set reserved to the full-join size upfront
};

/// Enumerates the full join via the y-direction index (hash-join equivalent:
/// R probes S's y index) and calls fn once per (x, z, y) triple.
void EnumerateFullTwoPathJoin(
    const IndexedRelation& r, const IndexedRelation& s,
    const std::function<void(Value x, Value z, Value y)>& fn);

/// |R JOIN S| before projection.
uint64_t FullTwoPathJoinSize(const IndexedRelation& r,
                             const IndexedRelation& s);

/// pi_{x,z}(R JOIN S) through full-join materialization + dedup.
std::vector<OutPair> HashJoinProject(const IndexedRelation& r,
                                     const IndexedRelation& s, DedupMode mode);

}  // namespace jpmm

#endif  // JPMM_JOIN_HASH_JOIN_H_
