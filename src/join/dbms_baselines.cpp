#include "join/dbms_baselines.h"

#include "join/hash_join.h"
#include "join/intersection.h"
#include "join/sort_merge_join.h"

namespace jpmm {

std::vector<OutPair> PostgresLikeJoinProject(const IndexedRelation& r,
                                             const IndexedRelation& s) {
  return HashJoinProject(r, s, DedupMode::kSortUnique);
}

std::vector<OutPair> MySqlLikeJoinProject(const BinaryRelation& r,
                                          const BinaryRelation& s) {
  return SortMergeJoinProject(r, s);
}

std::vector<OutPair> SystemXLikeJoinProject(const IndexedRelation& r,
                                            const IndexedRelation& s) {
  return HashJoinProject(r, s, DedupMode::kPreallocatedHash);
}

std::vector<OutPair> EmptyHeadedLikeJoinProject(const IndexedRelation& r,
                                                const IndexedRelation& s) {
  std::vector<OutPair> out;
  std::vector<std::span<const Value>> lists;
  std::vector<Value> zs;
  for (Value a = 0; a < r.num_x(); ++a) {
    const auto ys = r.YsOf(a);
    if (ys.empty()) continue;
    lists.clear();
    for (Value b : ys) {
      const auto zl = s.XsOf(b);
      if (!zl.empty()) lists.push_back(zl);
    }
    if (lists.empty()) continue;
    zs.clear();
    KWayUnion(lists, &zs);
    for (Value c : zs) out.push_back(OutPair{a, c});
  }
  return out;
}

}  // namespace jpmm
