// Sort-merge evaluation of the 2-path join (MySQL-like baseline).

#ifndef JPMM_JOIN_SORT_MERGE_JOIN_H_
#define JPMM_JOIN_SORT_MERGE_JOIN_H_

#include <vector>

#include "common/types.h"
#include "storage/relation.h"

namespace jpmm {

/// pi_{x,z}(R(x,y) JOIN S(z,y)) by sorting both inputs on y, merging the
/// runs (emitting the cross product per matching y group), then sorting the
/// materialized pair list to deduplicate.
std::vector<OutPair> SortMergeJoinProject(const BinaryRelation& r,
                                          const BinaryRelation& s);

}  // namespace jpmm

#endif  // JPMM_JOIN_SORT_MERGE_JOIN_H_
