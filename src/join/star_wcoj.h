// Worst-case optimal evaluation of star joins.
//
// For the star query Q(x1..xk) = R1(x1,y), ..., Rk(xk,y) a worst-case
// optimal plan keys every relation on the shared variable y and, per y
// value, emits the cartesian product of the adjacency lists (Prop. 1 / the
// generic-join instantiation for stars). Projection of y then needs a global
// tuple dedup, which TupleBuffer provides.

#ifndef JPMM_JOIN_STAR_WCOJ_H_
#define JPMM_JOIN_STAR_WCOJ_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/types.h"
#include "storage/index.h"

namespace jpmm {

/// Flat buffer of fixed-arity tuples with sort/unique dedup.
class TupleBuffer {
 public:
  explicit TupleBuffer(uint32_t arity) : arity_(arity) {}

  uint32_t arity() const { return arity_; }
  size_t size() const { return flat_.size() / arity_; }
  bool empty() const { return flat_.empty(); }

  /// Appends one tuple (must have exactly arity values).
  void Add(std::span<const Value> tuple);

  /// Tuple i as a span.
  std::span<const Value> Get(size_t i) const {
    return {flat_.data() + i * arity_, arity_};
  }

  /// Sorts tuples lexicographically and removes duplicates.
  void SortUnique();

  /// Appends every tuple of other.
  void Append(const TupleBuffer& other);

  const std::vector<Value>& flat() const { return flat_; }

 private:
  uint32_t arity_;
  std::vector<Value> flat_;
};

/// Per-relation filter applied during enumeration: tuple (a, b) of relation
/// i participates iff filter(i, a, b). Null filter = no restriction.
using StarTupleFilter = std::function<bool(size_t rel, Value a, Value b)>;

/// Evaluates pi_{x1..xk}(R1 JOIN ... JOIN Rk) over the shared variable y.
/// The result is sorted and duplicate-free. `filter`, if set, restricts each
/// relation's tuples (used by the light/heavy decomposition steps).
/// `y_filter`, if set, restricts which y values are expanded. `threads`
/// partitions the y domain across workers (coordination-free; results are
/// merged and dedup'd at the end).
TupleBuffer StarJoinProjectWcoj(
    const std::vector<const IndexedRelation*>& rels,
    const StarTupleFilter& filter = nullptr,
    const std::function<bool(Value y)>& y_filter = nullptr, int threads = 1);

/// Size of the full star join (before projection).
uint64_t FullStarJoinSize(const std::vector<const IndexedRelation*>& rels);

}  // namespace jpmm

#endif  // JPMM_JOIN_STAR_WCOJ_H_
