// Sorted-set intersection and union kernels.
//
// These are the primitives of the combinatorial (Non-MM) heavy-part
// verification, the EmptyHeaded-like baseline engine, and SCJ verification.
// Merge intersection is O(|a| + |b|); galloping is O(|a| log(|b|/|a|)) and
// wins when the lists are lopsided, which is exactly the heavy-value regime.

#ifndef JPMM_JOIN_INTERSECTION_H_
#define JPMM_JOIN_INTERSECTION_H_

#include <span>
#include <vector>

#include "common/types.h"

namespace jpmm {

/// Appends a INTERSECT b to out; returns the intersection size.
size_t IntersectSorted(std::span<const Value> a, std::span<const Value> b,
                       std::vector<Value>* out);

/// |a INTERSECT b| without materializing.
size_t IntersectCount(std::span<const Value> a, std::span<const Value> b);

/// True iff the sorted lists share an element (early exit, galloping on the
/// longer list when sizes are lopsided).
bool IntersectsSorted(std::span<const Value> a, std::span<const Value> b);

/// True iff sorted `sub` is a subset of sorted `super`.
bool IsSubsetSorted(std::span<const Value> sub, std::span<const Value> super);

/// K-way union with duplicate elimination: heap-based multiway merge of the
/// sorted input lists into `out` (sorted, unique). Returns out->size().
size_t KWayUnion(const std::vector<std::span<const Value>>& lists,
                 std::vector<Value>* out);

}  // namespace jpmm

#endif  // JPMM_JOIN_INTERSECTION_H_
