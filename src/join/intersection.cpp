#include "join/intersection.h"

#include <algorithm>
#include <queue>

namespace jpmm {
namespace {

// Galloping lower_bound: doubles the step from `start` then binary searches.
size_t GallopTo(std::span<const Value> v, size_t start, Value target) {
  size_t step = 1;
  size_t lo = start;
  size_t hi = start;
  while (hi < v.size() && v[hi] < target) {
    lo = hi;
    hi += step;
    step <<= 1;
  }
  hi = std::min(hi, v.size());
  return static_cast<size_t>(
      std::lower_bound(v.begin() + lo, v.begin() + hi, target) - v.begin());
}

}  // namespace

size_t IntersectSorted(std::span<const Value> a, std::span<const Value> b,
                       std::vector<Value>* out) {
  const size_t before = out->size();
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      out->push_back(a[i]);
      ++i;
      ++j;
    }
  }
  return out->size() - before;
}

size_t IntersectCount(std::span<const Value> a, std::span<const Value> b) {
  if (a.size() > b.size()) std::swap(a, b);
  // Gallop when lopsided (>32x), merge otherwise.
  if (b.size() > 32 * a.size()) {
    size_t count = 0;
    size_t j = 0;
    for (Value v : a) {
      j = GallopTo(b, j, v);
      if (j == b.size()) break;
      if (b[j] == v) {
        ++count;
        ++j;
      }
    }
    return count;
  }
  size_t count = 0, i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

bool IntersectsSorted(std::span<const Value> a, std::span<const Value> b) {
  if (a.empty() || b.empty()) return false;
  if (a.size() > b.size()) std::swap(a, b);
  if (b.size() > 32 * a.size()) {
    size_t j = 0;
    for (Value v : a) {
      j = GallopTo(b, j, v);
      if (j == b.size()) return false;
      if (b[j] == v) return true;
    }
    return false;
  }
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      return true;
    }
  }
  return false;
}

bool IsSubsetSorted(std::span<const Value> sub, std::span<const Value> super) {
  if (sub.size() > super.size()) return false;
  size_t j = 0;
  for (Value v : sub) {
    j = GallopTo(super, j, v);
    if (j == super.size() || super[j] != v) return false;
    ++j;
  }
  return true;
}

size_t KWayUnion(const std::vector<std::span<const Value>>& lists,
                 std::vector<Value>* out) {
  const size_t before = out->size();
  // (value, list index, position) min-heap.
  struct Head {
    Value v;
    uint32_t list;
    uint32_t pos;
    bool operator>(const Head& o) const { return v > o.v; }
  };
  std::priority_queue<Head, std::vector<Head>, std::greater<Head>> heap;
  for (uint32_t l = 0; l < lists.size(); ++l) {
    if (!lists[l].empty()) heap.push(Head{lists[l][0], l, 0});
  }
  while (!heap.empty()) {
    const Head h = heap.top();
    heap.pop();
    if (out->size() == before || out->back() != h.v) out->push_back(h.v);
    if (h.pos + 1 < lists[h.list].size()) {
      heap.push(Head{lists[h.list][h.pos + 1], h.list, h.pos + 1});
    }
  }
  return out->size() - before;
}

}  // namespace jpmm
