// Simulated DBMS comparison points for Figure 4a.
//
// The paper benchmarks against PostgreSQL, MySQL, a commercial "System X"
// and EmptyHeaded. Those engines are not available offline; what the paper's
// analysis attributes their cost to is reproduced faithfully instead
// (DESIGN.md §3 records the substitution):
//   - PostgresLike : hash join materializing the full join, sort-unique dedup
//   - MySqlLike    : sort-merge join (explicit sort phase), sort-unique dedup
//   - SystemXLike  : hash join + hash dedup preallocated to the join size
//                    ("marginally better than MySQL and Postgres", §7.2)
//   - EmptyHeadedLike : set-intersection engine — per x value, a k-way
//                    sorted union of the matching S adjacency lists (no
//                    giant intermediate materialization; strong on dense
//                    inputs, like the real system)

#ifndef JPMM_JOIN_DBMS_BASELINES_H_
#define JPMM_JOIN_DBMS_BASELINES_H_

#include <vector>

#include "common/types.h"
#include "storage/index.h"
#include "storage/relation.h"

namespace jpmm {

std::vector<OutPair> PostgresLikeJoinProject(const IndexedRelation& r,
                                             const IndexedRelation& s);

std::vector<OutPair> MySqlLikeJoinProject(const BinaryRelation& r,
                                          const BinaryRelation& s);

std::vector<OutPair> SystemXLikeJoinProject(const IndexedRelation& r,
                                            const IndexedRelation& s);

std::vector<OutPair> EmptyHeadedLikeJoinProject(const IndexedRelation& r,
                                                const IndexedRelation& s);

}  // namespace jpmm

#endif  // JPMM_JOIN_DBMS_BASELINES_H_
