#include "join/hash_join.h"

#include <algorithm>
#include <unordered_set>

#include "common/hash.h"

namespace jpmm {

void EnumerateFullTwoPathJoin(
    const IndexedRelation& r, const IndexedRelation& s,
    const std::function<void(Value, Value, Value)>& fn) {
  const Value ny = std::min(r.num_y(), s.num_y());
  for (Value b = 0; b < ny; ++b) {
    const auto xs = r.XsOf(b);
    const auto zs = s.XsOf(b);
    if (xs.empty() || zs.empty()) continue;
    for (Value a : xs) {
      for (Value c : zs) fn(a, c, b);
    }
  }
}

uint64_t FullTwoPathJoinSize(const IndexedRelation& r,
                             const IndexedRelation& s) {
  uint64_t total = 0;
  const Value ny = std::min(r.num_y(), s.num_y());
  for (Value b = 0; b < ny; ++b) {
    total += static_cast<uint64_t>(r.DegY(b)) * s.DegY(b);
  }
  return total;
}

std::vector<OutPair> HashJoinProject(const IndexedRelation& r,
                                     const IndexedRelation& s,
                                     DedupMode mode) {
  std::vector<OutPair> out;
  switch (mode) {
    case DedupMode::kSortUnique: {
      // Materialize the entire join result, then sort + unique: this is the
      // expensive path the paper attributes to the DBMS baselines.
      std::vector<uint64_t> all;
      all.reserve(FullTwoPathJoinSize(r, s));
      EnumerateFullTwoPathJoin(r, s, [&](Value a, Value c, Value) {
        all.push_back(PackPair(a, c));
      });
      std::sort(all.begin(), all.end());
      all.erase(std::unique(all.begin(), all.end()), all.end());
      out.reserve(all.size());
      for (uint64_t key : all) out.push_back(UnpackPair(key));
      return out;
    }
    case DedupMode::kHashSet: {
      std::unordered_set<uint64_t, PairKeyHash> seen;
      EnumerateFullTwoPathJoin(r, s, [&](Value a, Value c, Value) {
        if (seen.insert(PackPair(a, c)).second) out.push_back(OutPair{a, c});
      });
      std::sort(out.begin(), out.end());
      return out;
    }
    case DedupMode::kPreallocatedHash: {
      std::unordered_set<uint64_t, PairKeyHash> seen;
      // Reserving to the full join size avoids every rehash — the System-X
      // style "give it all the memory" configuration. Cap the reservation so
      // adversarial joins cannot exhaust memory.
      const uint64_t join_size = FullTwoPathJoinSize(r, s);
      seen.reserve(static_cast<size_t>(
          std::min<uint64_t>(join_size, uint64_t{1} << 27)));
      EnumerateFullTwoPathJoin(r, s, [&](Value a, Value c, Value) {
        if (seen.insert(PackPair(a, c)).second) out.push_back(OutPair{a, c});
      });
      std::sort(out.begin(), out.end());
      return out;
    }
  }
  return out;
}

}  // namespace jpmm
