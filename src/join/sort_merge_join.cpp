#include "join/sort_merge_join.h"

#include <algorithm>

#include "common/check.h"
#include "common/hash.h"

namespace jpmm {

std::vector<OutPair> SortMergeJoinProject(const BinaryRelation& r,
                                          const BinaryRelation& s) {
  JPMM_CHECK(r.finalized() && s.finalized());
  // Sort copies by (y, x): the explicit sort phase a sort-merge engine pays
  // even when an index exists.
  std::vector<Tuple> rs(r.tuples());
  std::vector<Tuple> ss(s.tuples());
  auto by_y = [](const Tuple& a, const Tuple& b) {
    return a.y != b.y ? a.y < b.y : a.x < b.x;
  };
  std::sort(rs.begin(), rs.end(), by_y);
  std::sort(ss.begin(), ss.end(), by_y);

  std::vector<uint64_t> all;
  size_t i = 0, j = 0;
  while (i < rs.size() && j < ss.size()) {
    if (rs[i].y < ss[j].y) {
      ++i;
    } else if (ss[j].y < rs[i].y) {
      ++j;
    } else {
      const Value y = rs[i].y;
      size_t i_end = i, j_end = j;
      while (i_end < rs.size() && rs[i_end].y == y) ++i_end;
      while (j_end < ss.size() && ss[j_end].y == y) ++j_end;
      for (size_t ii = i; ii < i_end; ++ii) {
        for (size_t jj = j; jj < j_end; ++jj) {
          all.push_back(PackPair(rs[ii].x, ss[jj].x));
        }
      }
      i = i_end;
      j = j_end;
    }
  }
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  std::vector<OutPair> out;
  out.reserve(all.size());
  for (uint64_t key : all) out.push_back(UnpackPair(key));
  return out;
}

}  // namespace jpmm
