#include "core/query_batcher.h"

#include <chrono>
#include <condition_variable>
#include <thread>
#include <utility>

#include "common/hash.h"
#include "common/metrics.h"

namespace jpmm {

namespace {

struct BatchMetrics {
  Counter& groups;
  Counter& leader_executions;
  Counter& follower_joins;
  Counter& detaches;
  Counter& promotions;
  Counter& fanout_results;
  Histogram& window_wait_ms;
  Histogram& group_size;

  static BatchMetrics& Get() {
    static BatchMetrics m = [] {
      MetricsRegistry& reg = MetricsRegistry::Global();
      return BatchMetrics{
          reg.GetCounter("jpmm_batch_groups_total"),
          reg.GetCounter("jpmm_batch_leader_executions_total"),
          reg.GetCounter("jpmm_batch_follower_joins_total"),
          reg.GetCounter("jpmm_batch_detaches_total"),
          reg.GetCounter("jpmm_batch_leader_promotions_total"),
          reg.GetCounter("jpmm_batch_fanout_results_total"),
          reg.GetHistogram("jpmm_batch_window_wait_ms",
                           DefaultLatencyBoundsMs()),
          reg.GetHistogram("jpmm_batch_group_size",
                           ExponentialBounds(1.0, 2.0, 8)),
      };
    }();
    return m;
  }
};

struct CacheMetrics {
  Counter& hits;
  Counter& misses;
  Counter& insertions;
  Counter& evictions;
  Counter& invalidations;
  Gauge& bytes;

  static CacheMetrics& Get() {
    static CacheMetrics m = [] {
      MetricsRegistry& reg = MetricsRegistry::Global();
      return CacheMetrics{
          reg.GetCounter("jpmm_cache_hits_total"),
          reg.GetCounter("jpmm_cache_misses_total"),
          reg.GetCounter("jpmm_cache_insertions_total"),
          reg.GetCounter("jpmm_cache_evictions_total"),
          reg.GetCounter("jpmm_cache_invalidations_total"),
          reg.GetGauge("jpmm_cache_bytes"),
      };
    }();
    return m;
  }
};

bool TokenFired(const CancelToken* token) {
  return token != nullptr && token->Fired();
}

}  // namespace

size_t BatchKeyHash::operator()(const BatchKey& k) const {
  size_t h = static_cast<size_t>(k.catalog_version);
  HashCombine(&h, k.spec_fingerprint);
  return h;
}

// ---- QueryBatcher ---------------------------------------------------------

struct QueryBatcher::Group {
  // State machine (all transitions under mu):
  //   kOpen ──window elapses──────────────▶ kRunning ──run returns──▶ kDone
  //     │                                      ▲
  //     └─leader token fires, live followers──▶ kNeedLeader ─claim──┘
  //     └─leader token fires, none live───────▶ kAbandoned
  //         (also: last live follower detaches in kNeedLeader)
  enum class State : uint8_t { kOpen, kRunning, kNeedLeader, kDone, kAbandoned };

  struct Member {
    ResultSink* sink;
    bool active;  // false once this member detached (token fired pre-close)
  };

  std::mutex mu;
  std::condition_variable cv;
  State state = State::kOpen;
  std::vector<Member> members;  // [0] is the opening leader
  // Published by whoever runs, read by every follower after kDone.
  QueryStatus status;
  ExecStats stats;          // trace_spans cleared before publish
  uint32_t group_size = 1;  // client sinks served by the shared pass
};

QueryBatcher::QueryBatcher(Options options) : options_(options) {}

QueryBatcher::Result QueryBatcher::Execute(const BatchKey& key,
                                           ResultSink* sink, ResultSink* tap,
                                           const CancelToken* token,
                                           const RunFn& run, ExecStats* stats,
                                           TraceRecorder* trace,
                                           int32_t trace_parent) {
  std::shared_ptr<Group> g;
  size_t my_index = 0;
  bool opened_group = false;
  {
    std::unique_lock<std::mutex> map_lock(mu_);
    auto it = open_.find(key);
    if (it != open_.end()) {
      // Invariant: a group reachable through open_ is still kOpen — the
      // leader erases the map entry (under mu_) before any transition
      // (under the group mutex), and a joiner holding both locks blocks
      // both steps. Checked anyway so a future reordering fails safe.
      std::lock_guard<std::mutex> gl(it->second->mu);
      if (it->second->state == Group::State::kOpen) {
        g = it->second;
        my_index = g->members.size();
        g->members.push_back({sink, true});
      }
    }
    if (g == nullptr) {
      g = std::make_shared<Group>();
      g->members.push_back({sink, true});
      open_[key] = g;
      opened_group = true;
    }
  }

  const bool metrics = MetricsEnabled();

  if (opened_group) {
    // Leader: hold the batch window so concurrent identical requests can
    // join, polling the token so a deadline never burns the whole window.
    TraceRecorder::SpanId wait_span =
        TraceBegin(trace, "batch-wait", trace_parent);
    const auto t0 = std::chrono::steady_clock::now();
    const auto close_at = t0 + std::chrono::milliseconds(options_.window_ms);
    while (!TokenFired(token)) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= close_at) break;
      const auto remaining = close_at - now;
      std::this_thread::sleep_for(
          std::min<std::chrono::steady_clock::duration>(
              remaining, std::chrono::microseconds(500)));
    }
    if (metrics) {
      BatchMetrics::Get().window_wait_ms.Record(
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - t0)
              .count());
    }

    // Close the group: unpublish from the map first so late arrivals open
    // a fresh group instead of joining a closing one.
    {
      std::lock_guard<std::mutex> map_lock(mu_);
      auto it = open_.find(key);
      if (it != open_.end() && it->second == g) open_.erase(it);
    }

    std::vector<ResultSink*> targets;
    {
      std::unique_lock<std::mutex> gl(g->mu);
      if (TokenFired(token)) {
        // The opener's deadline fired during the window. Hand leadership
        // to a live follower rather than stranding the group.
        g->members[0].active = false;
        bool any_live = false;
        for (const Group::Member& m : g->members) any_live |= m.active;
        g->state =
            any_live ? Group::State::kNeedLeader : Group::State::kAbandoned;
        const uint32_t seen = static_cast<uint32_t>(g->members.size());
        g->cv.notify_all();
        gl.unlock();
        TraceEnd(trace, wait_span, "detached");
        if (metrics) BatchMetrics::Get().detaches.Add();
        return {Role::kDetached, QueryStatus::Ok(), seen};
      }
      g->state = Group::State::kRunning;
      for (const Group::Member& m : g->members)
        if (m.active) targets.push_back(m.sink);
      g->group_size = static_cast<uint32_t>(targets.size());
      // Wake followers so they move from the 1ms token-poll cadence to the
      // long kRunning wait (they can no longer detach anyway).
      g->cv.notify_all();
    }
    TraceEnd(trace, wait_span,
             "leader group=" + std::to_string(targets.size()));
    return RunAsLeader(g, targets, tap, run, stats);
  }

  // Follower: wait for delivery — or for a leadership handoff.
  if (metrics) BatchMetrics::Get().follower_joins.Add();
  TraceRecorder::SpanId wait_span =
      TraceBegin(trace, "batch-wait", trace_parent);
  std::unique_lock<std::mutex> gl(g->mu);
  for (;;) {
    switch (g->state) {
      case Group::State::kDone: {
        *stats = g->stats;  // trace_spans already cleared by the publisher
        stats->batched = true;
        stats->batch_leader = false;
        stats->batch_follower = true;
        stats->batch_group_size = g->group_size;
        Result r{Role::kFollower, g->status, g->group_size};
        gl.unlock();
        TraceEnd(trace, wait_span, "delivered");
        return r;
      }
      case Group::State::kAbandoned: {
        gl.unlock();
        TraceEnd(trace, wait_span, "abandoned");
        if (metrics) BatchMetrics::Get().detaches.Add();
        return {Role::kDetached, QueryStatus::Ok(), 1};
      }
      case Group::State::kNeedLeader: {
        if (TokenFired(token)) {
          g->members[my_index].active = false;
          bool any_live = false;
          for (const Group::Member& m : g->members) any_live |= m.active;
          if (!any_live) g->state = Group::State::kAbandoned;
          g->cv.notify_all();
          gl.unlock();
          TraceEnd(trace, wait_span, "detached");
          if (metrics) BatchMetrics::Get().detaches.Add();
          return {Role::kDetached, QueryStatus::Ok(), 1};
        }
        // Claim leadership: run the pass ourselves for every live member.
        std::vector<ResultSink*> targets;
        g->state = Group::State::kRunning;
        for (const Group::Member& m : g->members)
          if (m.active) targets.push_back(m.sink);
        g->group_size = static_cast<uint32_t>(targets.size());
        g->cv.notify_all();
        gl.unlock();
        TraceEnd(trace, wait_span,
                 "promoted group=" + std::to_string(targets.size()));
        if (metrics) BatchMetrics::Get().promotions.Add();
        return RunAsLeader(g, targets, tap, run, stats);
      }
      case Group::State::kOpen: {
        if (TokenFired(token)) {
          // Safe to detach only while the group is still open: the leader
          // has not snapshotted sinks yet, so ours is cleanly excluded.
          g->members[my_index].active = false;
          gl.unlock();
          TraceEnd(trace, wait_span, "detached");
          if (metrics) BatchMetrics::Get().detaches.Add();
          return {Role::kDetached, QueryStatus::Ok(), 1};
        }
        break;
      }
      case Group::State::kRunning:
        // Too late to detach (the fan-out may hold our sink); delivery of
        // the full result set makes the wait benign even if our token
        // fires — the service maps the outcome afterwards.
        break;
    }
    // Wait cadence matters on small machines: while the group is kOpen the
    // token must be live-polled (detach is still legal), but once it is
    // kRunning the ONLY useful wake-up is the leader's publish — a pack of
    // followers polling every 1ms would starve the leader's execution on a
    // one-core box. The state transitions all notify, so the long wait is a
    // backstop, not the delivery mechanism.
    g->cv.wait_for(gl, g->state == Group::State::kOpen
                           ? std::chrono::milliseconds(1)
                           : std::chrono::milliseconds(50));
  }
}

QueryBatcher::Result QueryBatcher::RunAsLeader(
    const std::shared_ptr<Group>& g, const std::vector<ResultSink*>& targets,
    ResultSink* tap, const RunFn& run, ExecStats* stats) {
  groups_run_.fetch_add(1, std::memory_order_relaxed);
  const bool metrics = MetricsEnabled();
  if (metrics) {
    BatchMetrics::Get().groups.Add();
    BatchMetrics::Get().leader_executions.Add();
    BatchMetrics::Get().group_size.Record(
        static_cast<double>(targets.size()));
  }

  const uint32_t n = static_cast<uint32_t>(targets.size());
  QueryStatus st;
  if (n == 1 && tap == nullptr) {
    // Degraded to solo: every other member detached during the window (or
    // none joined). No fan-out layer, no batch flags — indistinguishable
    // from an unbatched execution, as documented.
    st = run(*targets[0], stats);
  } else {
    FanoutSink fan;
    for (ResultSink* t : targets) fan.AddTarget(t);
    if (tap != nullptr) fan.AddTap(tap);
    st = run(fan, stats);
    if (metrics)
      BatchMetrics::Get().fanout_results.Add(fan.results_forwarded());
    if (n > 1) {
      stats->batched = true;
      stats->batch_leader = true;
      stats->batch_follower = false;
      stats->batch_group_size = n;
    }
  }

  {
    std::lock_guard<std::mutex> gl(g->mu);
    g->status = st;
    g->stats = *stats;
    g->stats.trace_spans.clear();  // follower copies must not alias the
                                   // leader's recorder-relative span tree
    g->state = Group::State::kDone;
    g->cv.notify_all();
  }
  return {Role::kLeader, st, n};
}

// ---- ResultCache ----------------------------------------------------------

ResultCache::ResultCache(Options options) : options_(options) {}

bool ResultCache::Replay(const BatchKey& key, ResultSink& sink,
                         ExecStats* stats, TraceRecorder* trace,
                         int32_t trace_parent) {
  const bool metrics = MetricsEnabled();
  std::shared_ptr<const Entry> e;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      e = it->second.entry;
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    }
  }
  if (e == nullptr ||
      (!e->tuple_data.empty() && !sink.supports_tuples())) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (metrics) CacheMetrics::Get().misses.Add();
    return false;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  if (metrics) CacheMetrics::Get().hits.Add();

  const auto t0 = std::chrono::steady_clock::now();
  TraceRecorder::SpanId span = TraceBegin(trace, "fanout-emit", trace_parent);
  *stats = e->stats;  // entry stats were stored with trace_spans cleared
  stats->result_cache_hit = true;

  if (e->deliver_payload) {
    // Replay through the normal sink contract: the caller's limit/page/
    // top-k semantics apply exactly as they would against live execution,
    // including chunk-granular early exit via done().
    constexpr size_t kChunk = 4096;
    sink.Open(1);
    ResultSink::Shard& sh = sink.shard(0);
    for (size_t i = 0; i < e->pairs.size() && !sink.done(); i += kChunk) {
      const size_t n = std::min(kChunk, e->pairs.size() - i);
      sh.OnPairs(std::span<const OutPair>(e->pairs.data() + i, n));
    }
    for (size_t i = 0; i < e->counted.size() && !sink.done(); i += kChunk) {
      const size_t n = std::min(kChunk, e->counted.size() - i);
      sh.OnCountedPairs(std::span<const CountedPair>(e->counted.data() + i, n));
    }
    if (e->tuple_arity > 0) {
      const size_t stride = e->tuple_arity;
      size_t emitted = 0;
      for (size_t i = 0; i + stride <= e->tuple_data.size(); i += stride) {
        sh.OnTuple(std::span<const Value>(e->tuple_data.data() + i, stride));
        if (++emitted % 1024 == 0 && sink.done()) break;
      }
    }
    sink.Finish();
  }
  TraceEnd(trace, span, "cache-replay");
  stats->seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  return true;
}

void ResultCache::Insert(const BatchKey& key, Entry entry) {
  entry.stats.trace_spans.clear();
  entry.bytes = entry.pairs.size() * sizeof(OutPair) +
                entry.counted.size() * sizeof(CountedPair) +
                entry.tuple_data.size() * sizeof(Value) +
                256;  // fixed overhead: stats + map/list bookkeeping
  if (entry.bytes > options_.max_entry_bytes) return;

  const bool metrics = MetricsEnabled();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    bytes_ -= it->second.entry->bytes;
    lru_.erase(it->second.lru_it);
    map_.erase(it);
  }
  lru_.push_front(key);
  bytes_ += entry.bytes;
  map_[key] = Slot{std::make_shared<const Entry>(std::move(entry)),
                   lru_.begin()};
  EvictToFitLocked();
  if (metrics) {
    CacheMetrics::Get().insertions.Add();
    CacheMetrics::Get().bytes.Set(static_cast<int64_t>(bytes_));
  }
}

void ResultCache::InvalidateStale(uint64_t current_version) {
  const bool metrics = MetricsEnabled();
  std::lock_guard<std::mutex> lock(mu_);
  if (current_version == last_seen_version_) return;
  last_seen_version_ = current_version;
  uint64_t dropped = 0;
  for (auto it = map_.begin(); it != map_.end();) {
    if (it->first.catalog_version != current_version) {
      bytes_ -= it->second.entry->bytes;
      lru_.erase(it->second.lru_it);
      it = map_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  if (metrics && dropped > 0) {
    CacheMetrics::Get().invalidations.Add(dropped);
    CacheMetrics::Get().bytes.Set(static_cast<int64_t>(bytes_));
  }
}

void ResultCache::EvictToFitLocked() {
  const bool metrics = MetricsEnabled();
  while (bytes_ > options_.max_bytes && !lru_.empty()) {
    const BatchKey victim = lru_.back();
    auto it = map_.find(victim);
    bytes_ -= it->second.entry->bytes;
    lru_.pop_back();
    map_.erase(it);
    if (metrics) CacheMetrics::Get().evictions.Add();
  }
}

uint64_t ResultCache::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

size_t ResultCache::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

}  // namespace jpmm
