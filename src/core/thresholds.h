// Degree thresholds (Delta_1, Delta_2) parameterizing Algorithm 1 and the
// star-join algorithm of Section 3.2.

#ifndef JPMM_CORE_THRESHOLDS_H_
#define JPMM_CORE_THRESHOLDS_H_

#include <cstdint>
#include <string>

namespace jpmm {

/// Delta_1 bounds the join-variable (y) degree; Delta_2 bounds the head
/// variable (x_i) degree. Values are "light" at or below the threshold and
/// "heavy" above it.
struct Thresholds {
  uint64_t delta1 = 1;
  uint64_t delta2 = 1;

  std::string ToString() const {
    return "d1=" + std::to_string(delta1) + " d2=" + std::to_string(delta2);
  }
};

}  // namespace jpmm

#endif  // JPMM_CORE_THRESHOLDS_H_
