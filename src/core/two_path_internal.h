// Internal machinery shared by the MM and combinatorial (Non-MM) two-path
// joins: the witness-class decomposition of Algorithm 1's light part.
//
// For an output pair (a, c), every witness b falls in exactly one class:
//   class L1: (a,b) in R-           (a light, or b light)
//   class L2: (a,b) in R+, (c,b) in S-   => b heavy, c light
//   class H : (a,b) in R+, (c,b) in S+   => a, b, c all heavy
// AccumulateLight() visits classes L1 and L2 for one head value a; class H
// is the caller's heavy strategy (matrix product or pairwise intersection).
// Because the classes partition witnesses, summing contributions gives exact
// witness counts with no cross-part dedup.

#ifndef JPMM_CORE_TWO_PATH_INTERNAL_H_
#define JPMM_CORE_TWO_PATH_INTERNAL_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/stamp_set.h"
#include "common/types.h"
#include "core/density_partition.h"
#include "storage/index.h"

namespace jpmm::internal {

/// Precomputed light-part context for one (R, S, thresholds) triple.
struct TwoPathContext {
  TwoPathContext(const IndexedRelation& r_in, const IndexedRelation& s_in,
                 Thresholds t);

  const IndexedRelation& r;
  const IndexedRelation& s;
  TwoPathPartition part;

  // CSR over y values: for each b with deg_S(b) > Delta1 and deg_R(b) > 0,
  // the light-z neighbours {c in S[b] : deg_S(c) <= Delta2} (class L2).
  // lightz_offsets is indexed by b directly (size ny + 1; zero-width spans
  // for light or absent b).
  std::vector<uint64_t> lightz_offsets;
  std::vector<Value> lightz_values;

  std::span<const Value> LightZOf(Value b) const {
    return {lightz_values.data() + lightz_offsets[b],
            static_cast<size_t>(lightz_offsets[b + 1] - lightz_offsets[b])};
  }

  /// Adds the class L1 + L2 witness counts of head value a into counter.
  /// First-touched z values are appended to touched. counter must span the
  /// z domain and be in a fresh epoch.
  void AccumulateLight(Value a, StampCounter* counter,
                       std::vector<Value>* touched) const;

  /// Same accumulation, but appending one entry per witness into out
  /// (sort-based dedup path; §6's "alternative approach").
  void AccumulateLightToVector(Value a, std::vector<Value>* out) const;

  /// Number of class L1+L2 witnesses of head value a (cost instrumentation).
  uint64_t LightWitnessCount(Value a) const;
};

}  // namespace jpmm::internal

#endif  // JPMM_CORE_TWO_PATH_INTERNAL_H_
