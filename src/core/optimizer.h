// Algorithm 3 — the cost-based optimizer choosing degree thresholds.
//
// The optimizer estimates, for candidate (Delta1, Delta2):
//   t_light = TI * ( sum(y, D1) + sum(x, D2) + sum(z, D2) ) + Tm * stamp setup
//   t_heavy = Mhat(u, v, w, cores) + Ts * (u*v + v*w)  [build] + Ts * u*w [scan]
// with u/v/w = heavy x/y/z counts from count(w, delta) indexes, and Mhat from
// the calibrated matrix-multiplication table (§5). Candidates follow line 9
// of Algorithm 3: Delta2 = N * Delta1 / |OUT_est|, with Delta1 swept over a
// geometric grid.
//
// Documented deviation (DESIGN.md §2.3): because one cost probe is O(log N),
// the default sweeps the full grid and takes the argmin instead of stopping
// at the first cost increase; the paper's stopping rule is available via
// OptimizerOptions::stop_at_first_increase.

#ifndef JPMM_CORE_OPTIMIZER_H_
#define JPMM_CORE_OPTIMIZER_H_

#include <cstdint>
#include <string>

#include "core/heavy_dispatch.h"
#include "core/thresholds.h"
#include "matrix/calibration.h"
#include "storage/index.h"
#include "storage/stats.h"

namespace jpmm {

struct OptimizerOptions {
  int threads = 1;
  /// Geometric grid ratio for the Delta1 sweep (paper: 1 - epsilon with
  /// epsilon = 0.95; we default to a finer 0.5 grid).
  double grid_ratio = 0.5;
  /// Stop the sweep at the first cost increase (the paper's rule).
  bool stop_at_first_increase = false;
  /// "If |OUT_join| <= cutoff * N, use a plain worst-case-optimal join"
  /// (Algorithm 3 line 2 with cutoff 20).
  double full_join_cutoff = 20.0;
  /// nullptr => MatMulCalibration::Default().
  const MatMulCalibration* calibration = nullptr;
  /// Measured on first use when not supplied.
  const SystemConstants* constants = nullptr;
  /// Measured sparse-kernel rates for the dense-vs-CSR heavy estimate;
  /// nullptr => SparseKernelRates::Default().
  const SparseKernelRates* sparse_rates = nullptr;
};

/// The optimizer's decision for one 2-path instance.
struct PlanChoice {
  /// True: skip the decomposition, run plain WCOJ + dedup (output close to
  /// the full join, Algorithm 3 line 2-3).
  bool use_full_wcoj = false;
  Thresholds thresholds;
  uint64_t estimated_output = 0;
  uint64_t full_join_size = 0;
  double est_light_seconds = 0.0;
  double est_heavy_seconds = 0.0;
  /// Heavy-part kernel the cost model expects to win at the chosen
  /// thresholds (execution re-decides per product block from exact nnz;
  /// this is the plan-level prediction) and the estimated operand density
  /// it was derived from.
  ProductKernel heavy_kernel = ProductKernel::kDenseGemm;
  double est_heavy_density = 0.0;
  /// True when the density-adaptive decomposition (degree-remapped row x
  /// column bands with per-band kernels, core/density_partition.h) priced
  /// cheaper than every single-kernel heavy estimate at the chosen
  /// thresholds, with the predicted band count. Execution re-decides from
  /// exact nnz (PartitionMode::kAuto); this is the plan-level prediction
  /// jpmm_cli --explain surfaces.
  bool density_adaptive = false;
  uint64_t partition_bands = 0;

  std::string ToString() const;
};

/// Chooses the MMJoin plan for pi_{x,z}(R JOIN S).
PlanChoice ChooseTwoPathPlan(const IndexedRelation& r,
                             const IndexedRelation& s,
                             const TwoPathStats& stats,
                             const OptimizerOptions& opts = {});

/// Thresholds for the combinatorial Non-MM join (Lemma 2): the balanced
/// choice Delta1 = Delta2 = max(1, N / sqrt(|OUT_est|)).
Thresholds ChooseNonMmThresholds(const IndexedRelation& r,
                                 const IndexedRelation& s,
                                 const TwoPathStats& stats);

}  // namespace jpmm

#endif  // JPMM_CORE_OPTIMIZER_H_
