#include "core/sketch_estimator.h"

#include <cmath>
#include <unordered_map>

#include "common/hash.h"
#include "common/hyperloglog.h"

namespace jpmm {

uint64_t EstimateTwoPathOutputSketch(const IndexedRelation& r,
                                     const IndexedRelation& s,
                                     const SketchEstimatorOptions& options) {
  // Precompute sketches for high-degree y values of S.
  std::unordered_map<Value, HyperLogLog> presketch;
  const Value ny = std::max(r.num_y(), s.num_y());
  for (Value b = 0; b < ny; ++b) {
    if (s.DegY(b) > options.presketch_degree && r.DegY(b) > 0) {
      HyperLogLog hll(options.precision);
      for (Value c : s.XsOf(b)) hll.Add(Mix64(c));
      presketch.emplace(b, std::move(hll));
    }
  }

  double total = 0.0;
  HyperLogLog acc(options.precision);
  for (Value a = 0; a < r.num_x(); ++a) {
    const auto ys = r.YsOf(a);
    if (ys.empty()) continue;
    // Tiny unions are exact-ish and cheaper without the sketch: a single
    // light y contributes exactly its degree.
    if (ys.size() == 1) {
      auto it = presketch.find(ys[0]);
      if (it == presketch.end()) {
        total += s.DegY(ys[0]);
        continue;
      }
    }
    acc.Reset();
    bool nonempty = false;
    for (Value b : ys) {
      auto it = presketch.find(b);
      if (it != presketch.end()) {
        acc.Merge(it->second);
        nonempty = true;
      } else {
        for (Value c : s.XsOf(b)) {
          acc.Add(Mix64(c));
          nonempty = true;
        }
      }
    }
    if (nonempty) total += acc.Estimate();
  }
  return static_cast<uint64_t>(std::llround(total));
}

}  // namespace jpmm
