#include "core/optimizer.h"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <sstream>

#include "core/estimator.h"

namespace jpmm {
namespace {

const SystemConstants& DefaultConstants() {
  static std::once_flag flag;
  static SystemConstants constants;
  std::call_once(flag, [] { constants = SystemConstants::Measure(); });
  return constants;
}

struct CostBreakdown {
  double light = 0.0;
  double heavy = 0.0;
  double total() const { return light + heavy; }
};

CostBreakdown EvaluateCost(const TwoPathStats& stats, Thresholds t,
                           const OptimizerOptions& opts,
                           const MatMulCalibration& cal,
                           const SystemConstants& consts, uint64_t num_z_dom) {
  CostBreakdown cost;
  const double light_ops = stats.SumYAtMost(t.delta1) +
                           stats.SumXAtMost(t.delta2) +
                           stats.SumZAtMost(t.delta2);
  cost.light = consts.ti * light_ops + consts.tm * 2.0 *
                                           static_cast<double>(num_z_dom) /
                                           (1 << 10);
  // The stamp arrays are allocated once per worker, not per x value; the
  // amortized term above is tiny and only breaks ties toward smaller setups.

  const uint64_t u = stats.distinct_x() - stats.CountXAtMost(t.delta2);
  const uint64_t v = stats.distinct_y() - stats.CountYAtMost(t.delta1);
  const uint64_t w = stats.distinct_z() - stats.CountZAtMost(t.delta2);
  if (u > 0 && v > 0 && w > 0) {
    const double build = consts.ts * (static_cast<double>(u) * v +
                                      static_cast<double>(v) * w);
    const double scan = consts.ts * static_cast<double>(u) * w;
    cost.heavy = cal.EstimateSeconds(u, v, w, opts.threads) + build + scan;
  }
  return cost;
}

}  // namespace

std::string PlanChoice::ToString() const {
  std::ostringstream os;
  if (use_full_wcoj) {
    os << "plan=wcoj-full join=" << full_join_size;
  } else {
    os << "plan=mmjoin " << thresholds.ToString()
       << " est_out=" << estimated_output << " join=" << full_join_size
       << " est_light=" << est_light_seconds
       << " est_heavy=" << est_heavy_seconds;
  }
  return os.str();
}

PlanChoice ChooseTwoPathPlan(const IndexedRelation& r,
                             const IndexedRelation& s,
                             const TwoPathStats& stats,
                             const OptimizerOptions& opts) {
  const MatMulCalibration& cal =
      opts.calibration != nullptr ? *opts.calibration
                                  : MatMulCalibration::Default();
  const SystemConstants& consts =
      opts.constants != nullptr ? *opts.constants : DefaultConstants();

  PlanChoice plan;
  const OutputEstimate est = EstimateTwoPathOutput(r, s, stats);
  plan.estimated_output = est.estimate;
  plan.full_join_size = est.full_join_size;

  const uint64_t n = std::max(r.num_tuples(), s.num_tuples());
  // Algorithm 3 line 2: duplication factor too small to pay for the
  // decomposition — evaluate the join directly.
  if (static_cast<double>(est.full_join_size) <=
      opts.full_join_cutoff * static_cast<double>(n)) {
    plan.use_full_wcoj = true;
    plan.thresholds = Thresholds{n, n};  // everything light
    return plan;
  }

  const double ratio = std::clamp(opts.grid_ratio, 0.01, 0.95);
  double best_cost = -1.0;
  CostBreakdown best_breakdown;
  Thresholds best{1, 1};
  double prev_cost = -1.0;
  for (double d1 = static_cast<double>(n); d1 >= 1.0; d1 *= ratio) {
    Thresholds t;
    t.delta1 = static_cast<uint64_t>(d1);
    // Algorithm 3 line 9: Delta2 = N * Delta1 / |OUT|.
    const double d2 = static_cast<double>(n) * d1 /
                      std::max<double>(1.0, static_cast<double>(est.estimate));
    t.delta2 = static_cast<uint64_t>(
        std::clamp(d2, 1.0, static_cast<double>(n)));
    const CostBreakdown cost =
        EvaluateCost(stats, t, opts, cal, consts, s.num_x());
    if (best_cost < 0 || cost.total() < best_cost) {
      best_cost = cost.total();
      best_breakdown = cost;
      best = t;
    }
    if (opts.stop_at_first_increase && prev_cost >= 0 &&
        cost.total() > prev_cost) {
      break;
    }
    prev_cost = cost.total();
    if (t.delta1 == 1) break;
  }

  plan.thresholds = best;
  plan.est_light_seconds = best_breakdown.light;
  plan.est_heavy_seconds = best_breakdown.heavy;
  return plan;
}

Thresholds ChooseNonMmThresholds(const IndexedRelation& r,
                                 const IndexedRelation& s,
                                 const TwoPathStats& stats) {
  const OutputEstimate est = EstimateTwoPathOutput(r, s, stats);
  const double n =
      static_cast<double>(std::max(r.num_tuples(), s.num_tuples()));
  const double delta =
      n / std::sqrt(std::max(1.0, static_cast<double>(est.estimate)));
  const auto d = static_cast<uint64_t>(std::clamp(delta, 1.0, n));
  return Thresholds{d, d};
}

}  // namespace jpmm
