#include "core/optimizer.h"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <sstream>

#include "core/estimator.h"
#include "matrix/cost_model.h"

namespace jpmm {
namespace {

const SystemConstants& DefaultConstants() {
  static std::once_flag flag;
  static SystemConstants constants;
  std::call_once(flag, [] { constants = SystemConstants::Measure(); });
  return constants;
}

struct CostBreakdown {
  double light = 0.0;
  double heavy = 0.0;
  ProductKernel heavy_kernel = ProductKernel::kDenseGemm;
  double heavy_density = 0.0;
  bool density_adaptive = false;
  uint64_t partition_bands = 0;
  double total() const { return light + heavy; }
};

CostBreakdown EvaluateCost(const TwoPathStats& stats, Thresholds t,
                           const OptimizerOptions& opts,
                           const MatMulCalibration& cal,
                           const SystemConstants& consts, uint64_t num_z_dom) {
  CostBreakdown cost;
  const double light_ops = stats.SumYAtMost(t.delta1) +
                           stats.SumXAtMost(t.delta2) +
                           stats.SumZAtMost(t.delta2);
  cost.light = consts.ti * light_ops + consts.tm * 2.0 *
                                           static_cast<double>(num_z_dom) /
                                           (1 << 10);
  // The stamp arrays are allocated once per worker, not per x value; the
  // amortized term above is tiny and only breaks ties toward smaller setups.

  const uint64_t u = stats.distinct_x() - stats.CountXAtMost(t.delta2);
  const uint64_t v = stats.distinct_y() - stats.CountYAtMost(t.delta1);
  const uint64_t w = stats.distinct_z() - stats.CountZAtMost(t.delta2);
  if (u > 0 && v > 0 && w > 0) {
    // Resolved lazily so fully-light plans never pay the one-time sparse
    // calibration (same contract as PlanProductBlocks).
    const SparseKernelRates& srates = opts.sparse_rates != nullptr
                                          ? *opts.sparse_rates
                                          : SparseKernelRates::Default();
    const int co = std::max(1, opts.threads);
    const double cells = static_cast<double>(u) * static_cast<double>(v);
    // nnz upper bounds from the degree CDFs: every M1 cell is an R-tuple
    // with a heavy x (and heavy y — not queryable, so this over-estimates
    // density and under-sells the sparse kernels: a conservative tilt).
    const double nnz1 = std::min(
        cells, static_cast<double>(stats.num_tuples_r()) -
                   stats.SumDegXAtMost(t.delta2));
    const double nnz2 = std::min(
        static_cast<double>(v) * static_cast<double>(w),
        static_cast<double>(stats.num_tuples_s()) -
            stats.SumDegZAtMost(t.delta2));
    const double density = std::clamp(nnz1 / std::max(1.0, cells), 0.0, 1.0);
    cost.heavy_density = density;

    const double scan = consts.ts * static_cast<double>(u) * w;
    // Dense GEMM: calibrated multiply + dense operand builds + scan.
    const double dense_build = consts.ts * (static_cast<double>(u) * v +
                                            static_cast<double>(v) * w);
    const double dense_sec =
        cal.EstimateSeconds(u, v, w, co) + dense_build + scan;
    // CSR x dense: CSR builds are O(nnz); M2 is still dense. Row bands
    // parallelize coordination-free, so divide the kernel time by cores.
    const double csr_build = consts.ts * (nnz1 + nnz2);
    const double csr_dense_sec =
        csr_build + consts.ts * static_cast<double>(v) * w +
        SparseProductSeconds(
            SparseProductOps(static_cast<uint64_t>(nnz1), u, w),
            srates.CsrDenseRate(density)) /
            co +
        scan;
    // CSR x CSR: expansion bound nnz1 * avg M2 row nnz; sparse emit (no
    // dense output scan).
    const double expand = nnz1 * (nnz2 / static_cast<double>(v));
    const double csr_csr_sec =
        csr_build +
        SparseProductSeconds(expand, srates.CsrCsrRate(density)) / co;

    cost.heavy = dense_sec;
    cost.heavy_kernel = ProductKernel::kDenseGemm;
    if (csr_dense_sec < cost.heavy) {
      cost.heavy = csr_dense_sec;
      cost.heavy_kernel = ProductKernel::kCsrDense;
    }
    if (csr_csr_sec < cost.heavy) {
      cost.heavy = csr_csr_sec;
      cost.heavy_kernel = ProductKernel::kCsrCsr;
    }

    // Density-adaptive alternative (core/density_partition.h): the degree
    // remap splits the product into B x B bands whose per-band nnz the
    // degree CDFs bound without touching the tuples (HeavyXBandNnz /
    // HeavyZBandNnz). Skew concentrates nnz in the leading bands; trailing
    // bands go ultra-sparse and win on CSR x CSR, so the sum of per-cell
    // minima can beat every whole-matrix kernel choice. CSR builds plus
    // the remap passes are charged up front; execution re-decides from
    // exact nnz under PartitionMode::kAuto.
    for (uint64_t bc : {2ull, 4ull, 8ull}) {
      if (u < bc || w < bc) break;
      const size_t bands = static_cast<size_t>(bc);
      const std::vector<double> row_nnz = stats.HeavyXBandNnz(t.delta2, bands);
      const std::vector<double> col_nnz = stats.HeavyZBandNnz(t.delta2, bands);
      const double remap = consts.ts * 2.0 * (nnz1 + nnz2);
      double total = csr_build + remap;
      for (size_t i = 0; i < bands; ++i) {
        const uint64_t ui = (u + bc - 1) / bc;
        const double cell_nnz = std::min(
            row_nnz[i], static_cast<double>(ui) * static_cast<double>(v));
        const double cell_density = std::clamp(
            cell_nnz / std::max(1.0, static_cast<double>(ui) *
                                         static_cast<double>(v)),
            0.0, 1.0);
        for (size_t j = 0; j < bands; ++j) {
          const uint64_t wj = (w + bc - 1) / bc;
          const double cell_scan =
              consts.ts * static_cast<double>(ui) * static_cast<double>(wj);
          const double d_cell =
              cal.EstimateSeconds(ui, v, wj, co) +
              consts.ts * (static_cast<double>(ui) * v +
                           static_cast<double>(v) * wj) +
              cell_scan;
          const double sd_cell =
              consts.ts * static_cast<double>(v) * wj +
              SparseProductSeconds(
                  SparseProductOps(static_cast<uint64_t>(cell_nnz), ui, wj),
                  srates.CsrDenseRate(cell_density)) /
                  co +
              cell_scan;
          const double cc_cell =
              SparseProductSeconds(
                  row_nnz[i] * (col_nnz[j] / static_cast<double>(v)),
                  srates.CsrCsrRate(cell_density)) /
              co;
          total += std::min({d_cell, sd_cell, cc_cell});
        }
      }
      if (total < cost.heavy) {
        cost.heavy = total;
        cost.density_adaptive = true;
        cost.partition_bands = bc;
      }
    }
  }
  return cost;
}

}  // namespace

std::string PlanChoice::ToString() const {
  std::ostringstream os;
  if (use_full_wcoj) {
    os << "plan=wcoj-full join=" << full_join_size;
  } else {
    os << "plan=mmjoin " << thresholds.ToString()
       << " est_out=" << estimated_output << " join=" << full_join_size
       << " est_light=" << est_light_seconds
       << " est_heavy=" << est_heavy_seconds
       << " heavy_kernel=" << ProductKernelName(heavy_kernel)
       << " est_density=" << est_heavy_density;
    if (density_adaptive) {
      os << " partition=density-adaptive bands=" << partition_bands;
    }
  }
  return os.str();
}

PlanChoice ChooseTwoPathPlan(const IndexedRelation& r,
                             const IndexedRelation& s,
                             const TwoPathStats& stats,
                             const OptimizerOptions& opts) {
  const MatMulCalibration& cal =
      opts.calibration != nullptr ? *opts.calibration
                                  : MatMulCalibration::Default();
  const SystemConstants& consts =
      opts.constants != nullptr ? *opts.constants : DefaultConstants();

  PlanChoice plan;
  const OutputEstimate est = EstimateTwoPathOutput(r, s, stats);
  plan.estimated_output = est.estimate;
  plan.full_join_size = est.full_join_size;

  const uint64_t n = std::max(r.num_tuples(), s.num_tuples());
  // Algorithm 3 line 2: duplication factor too small to pay for the
  // decomposition — evaluate the join directly.
  if (static_cast<double>(est.full_join_size) <=
      opts.full_join_cutoff * static_cast<double>(n)) {
    plan.use_full_wcoj = true;
    plan.thresholds = Thresholds{n, n};  // everything light
    return plan;
  }

  const double ratio = std::clamp(opts.grid_ratio, 0.01, 0.95);
  double best_cost = -1.0;
  CostBreakdown best_breakdown;
  Thresholds best{1, 1};
  double prev_cost = -1.0;
  for (double d1 = static_cast<double>(n); d1 >= 1.0; d1 *= ratio) {
    Thresholds t;
    t.delta1 = static_cast<uint64_t>(d1);
    // Algorithm 3 line 9: Delta2 = N * Delta1 / |OUT|.
    const double d2 = static_cast<double>(n) * d1 /
                      std::max<double>(1.0, static_cast<double>(est.estimate));
    t.delta2 = static_cast<uint64_t>(
        std::clamp(d2, 1.0, static_cast<double>(n)));
    const CostBreakdown cost =
        EvaluateCost(stats, t, opts, cal, consts, s.num_x());
    if (best_cost < 0 || cost.total() < best_cost) {
      best_cost = cost.total();
      best_breakdown = cost;
      best = t;
    }
    if (opts.stop_at_first_increase && prev_cost >= 0 &&
        cost.total() > prev_cost) {
      break;
    }
    prev_cost = cost.total();
    if (t.delta1 == 1) break;
  }

  plan.thresholds = best;
  plan.est_light_seconds = best_breakdown.light;
  plan.est_heavy_seconds = best_breakdown.heavy;
  plan.heavy_kernel = best_breakdown.heavy_kernel;
  plan.est_heavy_density = best_breakdown.heavy_density;
  plan.density_adaptive = best_breakdown.density_adaptive;
  plan.partition_bands = best_breakdown.partition_bands;
  return plan;
}

Thresholds ChooseNonMmThresholds(const IndexedRelation& r,
                                 const IndexedRelation& s,
                                 const TwoPathStats& stats) {
  const OutputEstimate est = EstimateTwoPathOutput(r, s, stats);
  const double n =
      static_cast<double>(std::max(r.num_tuples(), s.num_tuples()));
  const double delta =
      n / std::sqrt(std::max(1.0, static_cast<double>(est.estimate)));
  const auto d = static_cast<uint64_t>(std::clamp(delta, 1.0, n));
  return Thresholds{d, d};
}

}  // namespace jpmm
