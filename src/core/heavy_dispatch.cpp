#include "core/heavy_dispatch.h"

#include <algorithm>

#include "common/check.h"
#include "common/metrics.h"
#include "matrix/cost_model.h"

namespace jpmm {

const char* ProductKernelName(ProductKernel k) {
  switch (k) {
    case ProductKernel::kDenseGemm:
      return "dense";
    case ProductKernel::kCsrDense:
      return "csr-dense";
    case ProductKernel::kCsrCsr:
      return "csr-csr";
  }
  return "?";
}

const char* BlockSpanName(ProductKernel k) {
  switch (k) {
    case ProductKernel::kDenseGemm:
      return "block:dense";
    case ProductKernel::kCsrDense:
      return "block:csr-dense";
    case ProductKernel::kCsrCsr:
      return "block:csr-csr";
  }
  return "block:?";
}

const char* HeavyPathModeName(HeavyPathMode m) {
  switch (m) {
    case HeavyPathMode::kAuto:
      return "auto";
    case HeavyPathMode::kForceDense:
      return "force-dense";
    case HeavyPathMode::kForceCsrDense:
      return "force-csr-dense";
    case HeavyPathMode::kForceCsrCsr:
      return "force-csr-csr";
  }
  return "?";
}

ProductKernel ChooseProductKernel(uint64_t rows, uint64_t v, uint64_t w,
                                  uint64_t block_nnz, double expand_ops,
                                  const SparseKernelRates& rates,
                                  bool allow_dense, bool allow_csr_dense) {
  const double cells =
      static_cast<double>(rows) * static_cast<double>(std::max<uint64_t>(1, v));
  const double density = static_cast<double>(block_nnz) / std::max(1.0, cells);
  const double sd_rate = rates.CsrDenseRate(density);
  const double cc_rate = rates.CsrCsrRate(density);

  // The float-row paths (dense, csr-dense) pay an O(rows * W) output scan
  // at emit time; the CSR x CSR path emits straight from its sparse rows.
  // The scan streams like the saxpy, so it is priced at the saxpy rate.
  const double scan = static_cast<double>(rows) * static_cast<double>(w);
  const double dense_sec = 2.0 * static_cast<double>(rows) *
                               static_cast<double>(v) *
                               static_cast<double>(w) /
                               rates.dense_flops_per_sec +
                           SparseProductSeconds(scan, sd_rate);
  const double csr_dense_sec =
      SparseProductSeconds(SparseProductOps(block_nnz, rows, w) + scan,
                           sd_rate);
  const double csr_csr_sec = SparseProductSeconds(expand_ops, cc_rate);

  ProductKernel best = ProductKernel::kCsrCsr;
  double best_sec = csr_csr_sec;
  if (allow_csr_dense && csr_dense_sec < best_sec) {
    best = ProductKernel::kCsrDense;
    best_sec = csr_dense_sec;
  }
  if (allow_dense && dense_sec < best_sec) {
    best = ProductKernel::kDenseGemm;
  }
  return best;
}

std::vector<BlockKernelChoice> PlanProductBlocks(
    const CsrMatrix& a, const CsrMatrix& b, size_t row_block,
    HeavyPathMode mode, const SparseKernelRates* rates, bool allow_dense,
    bool allow_csr_dense, HeavyKernelCounts* counts) {
  JPMM_CHECK(row_block >= 1);
  // Forced modes never price kernels, so the measurement is skipped there.
  if (rates == nullptr && mode == HeavyPathMode::kAuto) {
    rates = &SparseKernelRates::Default();
  }
  const size_t rows = a.rows();
  const size_t num_blocks = (rows + row_block - 1) / row_block;
  static Counter& blocks_planned = MetricsRegistry::Global().GetCounter(
      "jpmm_dispatch_blocks_planned_total");
  blocks_planned.Add(num_blocks);
  std::vector<BlockKernelChoice> choices;
  choices.reserve(num_blocks);
  for (size_t blk = 0; blk < num_blocks; ++blk) {
    BlockKernelChoice c;
    c.row_begin = static_cast<uint32_t>(blk * row_block);
    c.row_end = static_cast<uint32_t>(
        std::min(rows, static_cast<size_t>(c.row_begin) + row_block));
    c.col_begin = 0;
    c.col_end = static_cast<uint32_t>(b.cols());
    c.nnz = a.RowRangeNnz(c.row_begin, c.row_end);
    const double cells = static_cast<double>(c.row_end - c.row_begin) *
                         static_cast<double>(a.cols());
    c.density = cells > 0.0 ? static_cast<double>(c.nnz) / cells : 0.0;
    switch (mode) {
      case HeavyPathMode::kForceDense:
        c.kernel = ProductKernel::kDenseGemm;
        break;
      case HeavyPathMode::kForceCsrDense:
        c.kernel = ProductKernel::kCsrDense;
        break;
      case HeavyPathMode::kForceCsrCsr:
        c.kernel = ProductKernel::kCsrCsr;
        break;
      case HeavyPathMode::kAuto:
        c.kernel = ChooseProductKernel(
            c.row_end - c.row_begin, a.cols(), b.cols(), c.nnz,
            CsrCsrExpandOps(a, b, c.row_begin, c.row_end), *rates, allow_dense,
            allow_csr_dense);
        break;
    }
    if (counts != nullptr) {
      switch (c.kernel) {
        case ProductKernel::kDenseGemm:
          ++counts->dense;
          break;
        case ProductKernel::kCsrDense:
          ++counts->csr_dense;
          break;
        case ProductKernel::kCsrCsr:
          ++counts->csr_csr;
          break;
      }
    }
    choices.push_back(c);
  }
  return choices;
}

}  // namespace jpmm
