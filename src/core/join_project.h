// JoinProject — the library's public facade.
//
// One call point for pi_{x,z}(R(x,y) JOIN S(z,y)) with strategy selection:
//   kAuto        cost-based optimizer (Algorithm 3): WCOJ when the join is
//                small, MMJoin with optimized thresholds otherwise
//   kMmJoin      Algorithm 1 with optimizer-chosen thresholds
//   kNonMmJoin   combinatorial output-sensitive join (Lemma 2)
//   kWcojFull    full join + stamp dedup (Prop. 1 baseline)
//
// Example:
//   BinaryRelation r = ...; r.Finalize();
//   auto result = JoinProject::TwoPath(r, r, {.strategy = Strategy::kAuto});
//   for (OutPair p : result.pairs) ...

#ifndef JPMM_CORE_JOIN_PROJECT_H_
#define JPMM_CORE_JOIN_PROJECT_H_

#include <string>
#include <vector>

#include "common/types.h"
#include "core/mm_join.h"
#include "core/nonmm_join.h"
#include "core/optimizer.h"
#include "core/result_sink.h"
#include "core/star_join.h"
#include "storage/relation.h"

namespace jpmm {

enum class Strategy {
  kAuto,
  kMmJoin,
  kNonMmJoin,
  kWcojFull,
};

const char* StrategyName(Strategy s);

struct JoinProjectOptions {
  Strategy strategy = Strategy::kAuto;
  int threads = 1;
  /// Produce witness counts (CountedPair). Required when min_count > 1.
  bool count_witnesses = false;
  /// Keep only pairs with >= min_count witnesses (SSJ overlap threshold).
  uint32_t min_count = 1;
  /// Explicit thresholds; {0,0} (default) lets the optimizer choose.
  Thresholds thresholds{0, 0};
  /// Sort the output by (x, z) before returning (oracle-friendly).
  bool sorted = false;
  /// Heavy-part kernel override (kAuto = per-block density dispatch).
  HeavyPathMode heavy_path = HeavyPathMode::kAuto;
  /// Density-adaptive heavy-product decomposition
  /// (core/density_partition.h): kAuto engages the degree-remapped grid
  /// when it prices cheaper than the uniform row-block plan, kOff never,
  /// kForce whenever a heavy product exists. Outputs are identical in
  /// every mode.
  PartitionMode partition = PartitionMode::kAuto;
  /// Optional cross-execution grid memo threaded down to MmJoinOptions /
  /// StarJoinOptions (see DensityGridCache); a PreparedQuery's PlanState
  /// owns one per heavy product. Null = always rebuild.
  DensityGridCache* grid_cache = nullptr;
  /// Heavy-part memory cap (see MmJoinOptions::max_matrix_bytes).
  uint64_t max_matrix_bytes = uint64_t{3} << 30;
  OptimizerOptions optimizer;
  /// Push-based result delivery (core/result_sink.h). When set, results
  /// stream into the sink, the output vectors stay empty, `sorted` is
  /// ignored (delivery order is unspecified; the caller owns ordering),
  /// and the sink's done() signal short-circuits the remaining light
  /// chunks / heavy product blocks (skip counts land in the output).
  ResultSink* sink = nullptr;
  /// Cancellation token (deadline | explicit cancel) polled like the
  /// sink's done(); a fired token truncates the run and sets
  /// JoinProjectOutput::interrupted. See MmJoinOptions::cancel.
  const CancelToken* cancel = nullptr;
  /// Optional per-query stage tracing (core/trace.h): stage spans are
  /// recorded into the caller's recorder under `trace_parent`, at every
  /// strategy. Null = zero cost.
  TraceRecorder* trace = nullptr;
  int32_t trace_parent = -1;  // TraceRecorder::kNoParent
};

struct JoinProjectOutput {
  std::vector<OutPair> pairs;
  std::vector<CountedPair> counted;
  PlanChoice plan;
  Strategy executed = Strategy::kMmJoin;
  double seconds = 0.0;

  /// Heavy-part execution record (MMJoin strategy only): measured operand
  /// nnz/density and the per-block kernel decisions — what jpmm_cli
  /// --explain prints.
  uint64_t m1_nnz = 0;
  uint64_t m2_nnz = 0;
  double heavy_density = 0.0;
  HeavyKernelCounts kernel_counts;
  std::vector<BlockKernelChoice> block_choices;

  /// Density-adaptive partitioning record (see MmJoinResult).
  bool partition_used = false;
  uint64_t partition_row_bands = 0;
  uint64_t partition_col_bands = 0;
  uint64_t partition_blocks_scheduled = 0;
  uint64_t partition_blocks_pruned = 0;
  std::string partition_signature = "off";
  bool partition_cache_hit = false;

  /// Early-exit record (sink-driven runs; see MmJoinResult).
  uint64_t heavy_blocks_total = 0;
  uint64_t heavy_blocks_executed = 0;
  uint64_t heavy_blocks_skipped = 0;
  uint64_t light_chunks_total = 0;
  uint64_t light_chunks_executed = 0;
  uint64_t light_chunks_skipped = 0;

  /// True iff a fired CancelToken truncated the run (see MmJoinResult).
  bool interrupted = false;

  size_t size() const { return pairs.empty() ? counted.size() : pairs.size(); }
};

/// Up-front validation of a JoinProjectOptions instance: returns an empty
/// string when valid, otherwise a human-readable description of the first
/// problem (min_count > 1 without count_witnesses, non-positive threads,
/// ...). The low-level entry points still JPMM_CHECK the same invariants;
/// validating first turns an abort into a structured error (the
/// QueryEngine path does this for every query).
std::string ValidateJoinProjectOptions(const JoinProjectOptions& opts);

/// Facade for the 2-path query.
class JoinProject {
 public:
  /// pi_{x,z}(R(x,y) JOIN S(z,y)). Both relations must be finalized; pass
  /// the same object twice for a self join.
  static JoinProjectOutput TwoPath(const BinaryRelation& r,
                                   const BinaryRelation& s,
                                   const JoinProjectOptions& opts = {});

  /// Pre-indexed variant (reuses caller-owned indexes).
  static JoinProjectOutput TwoPath(const IndexedRelation& r,
                                   const IndexedRelation& s,
                                   const JoinProjectOptions& opts = {});

  /// Executes with an already-chosen plan (PreparedQuery reuse): skips the
  /// stats build and the optimizer sweep entirely. `plan` must come from
  /// ChooseTwoPathPlan over the same (r, s); opts.strategy == kAuto
  /// resolves through plan.use_full_wcoj as usual.
  static JoinProjectOutput TwoPathWithPlan(const IndexedRelation& r,
                                           const IndexedRelation& s,
                                           const PlanChoice& plan,
                                           const JoinProjectOptions& opts);

  /// Star query Q*_k over k >= 2 relations. Uses MmStarJoin (kAuto/kMmJoin),
  /// NonMmStarJoin, or plain WCOJ per opts.strategy. Count/min_count options
  /// are not supported for stars.
  static StarJoinResult Star(const std::vector<const IndexedRelation*>& rels,
                             const JoinProjectOptions& opts = {});
};

/// Full-join + stamp-set dedup reference evaluation (Prop. 1). `sink`,
/// when non-null, receives the results instead of the output vectors and
/// can stop the scan early via done() (the skipped x-domain chunks are
/// recorded in light_chunks_skipped).
JoinProjectOutput WcojFullJoinProject(const IndexedRelation& r,
                                      const IndexedRelation& s,
                                      bool count_witnesses, uint32_t min_count,
                                      int threads, ResultSink* sink = nullptr,
                                      const CancelToken* cancel = nullptr);

}  // namespace jpmm

#endif  // JPMM_CORE_JOIN_PROJECT_H_
