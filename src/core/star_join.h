// Star join-project with matrix multiplication — Section 3.2.
//
//   Q*_k(x1..xk) = R1(x1,y), R2(x2,y), ..., Rk(xk,y)
//
// Partition per relation i:
//   R-i : tuples whose xi is light (deg <= Delta2)
//   R<>i: tuples whose y is light (deg <= Delta1) in every OTHER relation
//   R+i : the rest
// Steps:
//   (1) for each j, WCOJ-join with R-j substituted, project     (light xi)
//   (2) for each j, WCOJ-join with R<>j substituted, project    (light y)
//   (3) group x1..xk into ceil(k/2) / floor(k/2), build rectangular 0/1
//       matrices V (heavy ceil-group combos x heavy y) and W (heavy
//       floor-group combos x heavy y), compute V * W^T, emit nonzeros.
// A y value is "heavy" for step (3) iff it is heavy in at least two
// relations — any witness not of that form is covered by step (2). Rows are
// registered lazily (only observed heavy combos), which is equivalent to the
// paper's dense (N/Delta2)^ceil(k/2) indexing but exponentially cheaper in
// memory on real data.

#ifndef JPMM_CORE_STAR_JOIN_H_
#define JPMM_CORE_STAR_JOIN_H_

#include <string>
#include <vector>

#include "core/density_partition.h"
#include "core/heavy_dispatch.h"
#include "core/thresholds.h"
#include "join/star_wcoj.h"
#include "storage/index.h"

namespace jpmm {

class CancelToken;
class ResultSink;
class TraceRecorder;

struct StarJoinOptions {
  Thresholds thresholds;
  int threads = 1;
  /// Cap on the heavy-part bytes. Thresholds double until the combo
  /// registration fits; the dense V/W representations are additionally
  /// gated off (falling back to the CSR kernels) when they alone would
  /// exceed the cap.
  uint64_t max_matrix_bytes = uint64_t{3} << 30;
  /// Rows per product block (memory = row_block * |W rows| floats / worker).
  /// 256 rows = two MC panels of the blocked kernel, amortizing the per-call
  /// B-panel packing (see core/mm_join.h).
  size_t row_block = 256;
  /// Heavy-part kernel selection, as in MmJoinOptions: per-block
  /// density-aware dispatch under kAuto, pinned kernel under the force
  /// modes.
  HeavyPathMode heavy_path = HeavyPathMode::kAuto;
  /// nullptr uses SparseKernelRates::Default().
  const SparseKernelRates* sparse_rates = nullptr;
  /// Density-adaptive decomposition of the V * W^T product, as in
  /// MmJoinOptions::partition: kAuto engages the degree-remapped grid when
  /// it prices cheaper than the uniform row-block plan and fits the cap,
  /// kForce whenever a heavy product exists, kOff never. Tuples are
  /// identical either way (the remap is inverted at emit time).
  PartitionMode partition = PartitionMode::kAuto;
  /// Optional cross-execution grid memo, as in MmJoinOptions::grid_cache.
  DensityGridCache* grid_cache = nullptr;
  /// Push-based tuple delivery (core/result_sink.h, OnTuple). The star
  /// decomposition needs a global tuple dedup, so delivery is incremental
  /// only for sinks with may_finish_early(): new (never-seen) tuples are
  /// streamed after every light step / heavy product block, and done()
  /// skips the remaining steps and blocks. Other sinks receive the final
  /// sorted duplicate-free tuples after evaluation. result.tuples is
  /// filled either way.
  ResultSink* sink = nullptr;
  /// Cancellation token polled between light decomposition steps and at
  /// heavy product-block granularity; a fired token truncates the run and
  /// sets StarJoinResult::interrupted. See MmJoinOptions::cancel.
  const CancelToken* cancel = nullptr;
  /// Optional per-query stage tracing under `trace_parent`; null = zero
  /// cost. See MmJoinOptions::trace.
  TraceRecorder* trace = nullptr;
  int32_t trace_parent = -1;  // TraceRecorder::kNoParent
};

struct StarJoinResult {
  TupleBuffer tuples;  // sorted, duplicate-free
  Thresholds adjusted_thresholds;
  uint64_t v_rows = 0;  // heavy combos, first group
  uint64_t w_rows = 0;  // heavy combos, second group
  uint64_t heavy_y = 0; // shared inner dimension
  uint64_t v_nnz = 0;   // set cells of V (heavy combo incidences)
  uint64_t w_nnz = 0;   // set cells of W
  double heavy_density = 0.0;      // v_nnz / (v_rows * heavy_y)
  HeavyKernelCounts kernel_counts; // product blocks per kernel
  double light_seconds = 0.0;
  double heavy_seconds = 0.0;

  // --- density-adaptive partitioning (core/density_partition.h) ---
  bool partition_used = false;
  uint64_t partition_row_bands = 0;
  uint64_t partition_col_bands = 0;
  uint64_t partition_blocks_scheduled = 0;
  uint64_t partition_blocks_pruned = 0;
  /// "off", "uniform", or DensityGrid::Signature() — see MmJoinResult.
  std::string partition_signature = "off";
  /// Grid reused from StarJoinOptions::grid_cache — see MmJoinResult.
  bool partition_cache_hit = false;

  // --- early-exit instrumentation (sink-driven runs) ---
  uint64_t light_steps_total = 0;      // planned light decomposition steps
  uint64_t light_steps_executed = 0;   // light steps actually run
  uint64_t light_steps_skipped = 0;    // light decomposition steps skipped
  uint64_t heavy_blocks_total = 0;
  uint64_t heavy_blocks_executed = 0;
  uint64_t heavy_blocks_skipped = 0;

  /// True iff a fired CancelToken truncated the run (see MmJoinResult).
  bool interrupted = false;

  StarJoinResult() : tuples(1) {}
};

/// MMJoin for the star query (steps 1-3 above).
StarJoinResult MmStarJoin(const std::vector<const IndexedRelation*>& rels,
                          const StarJoinOptions& options);

/// Combinatorial comparator: steps 1-2 as above, step 3 replaced by pairwise
/// sorted-intersection of the heavy combos' witness lists (the Lemma-2
/// strategy lifted to stars).
StarJoinResult NonMmStarJoin(const std::vector<const IndexedRelation*>& rels,
                             const StarJoinOptions& options);

/// Baseline: plain WCOJ over all tuples + dedup (Prop. 1).
TupleBuffer WcojStarJoin(const std::vector<const IndexedRelation*>& rels,
                         int threads = 1);

/// Cost-based threshold selection for the star decomposition: sweeps a
/// geometric Delta grid (Delta1 = Delta2, cf. Example 4's coupling) and
/// balances the exact light-step enumeration cost against bounds on the
/// grouped-matrix build/multiply cost. O(k * |D| * log(maxdeg)).
Thresholds ChooseStarThresholds(
    const std::vector<const IndexedRelation*>& rels);

}  // namespace jpmm

#endif  // JPMM_CORE_STAR_JOIN_H_
