// Algorithm 1 — MMJoin: output-sensitive two-path join-project.
//
//   pi_{x,z}( R(x,y) JOIN S(z,y) )
//
// Light values (degree at or below the thresholds) are evaluated with
// worst-case-optimal index expansion; heavy values are materialized as two
// rectangular 0/1 matrices M1 (heavy-x by heavy-y) and M2 (heavy-y by
// heavy-z) whose product counts the all-heavy witnesses of every output
// pair. The product is computed in row blocks so memory stays bounded by
// the operands plus one block, and row blocks parallelize with no
// coordination (§6).
//
// The counting variant returns exact witness counts — the intersection
// sizes SSJ thresholds on and ordered SSJ sorts by — because the witness
// classes visited by the light part and the matrix product partition the
// witness set (see two_path_internal.h).
//
// Exactness bound: heavy witness counts accumulate in float matrix cells
// and are read back with an integer cast, both exact only for values below
// 2^24. A cell's count is at most the inner dimension |heavy y|, so
// MmJoinTwoPath checks |heavy y| < 2^24 at plan build time and aborts
// rather than silently truncating counts. (In practice the
// max_matrix_bytes cap forces thresholds up long before the bound binds.)

#ifndef JPMM_CORE_MM_JOIN_H_
#define JPMM_CORE_MM_JOIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "core/density_partition.h"
#include "core/heavy_dispatch.h"
#include "core/thresholds.h"
#include "storage/index.h"

namespace jpmm {

class CancelToken;
class ResultSink;
class TraceRecorder;

/// Smallest positive integer a float matrix cell (and the `v + 0.5f`
/// integer read-back) can NOT represent exactly: 2^24. Witness counts are
/// exact strictly below this, so MmJoinTwoPath and MmStarJoin check their
/// heavy inner dimension (the per-cell count maximum) against it whenever a
/// float-accumulating kernel (dense GEMM or CSR x dense) runs. The CSR x
/// CSR kernel counts in uint32 stamp counters and is exempt.
inline constexpr uint64_t kMaxExactFloatCount = uint64_t{1} << 24;

/// Deduplication implementation for the light part (§6 discusses both).
enum class DedupImpl {
  kStampArray,  // epoch-stamped dense array, O(1) clear between x values
  kSortLocal,   // append witnesses, sort, aggregate (wins on huge sparse z)
};

struct MmJoinOptions {
  Thresholds thresholds;
  int threads = 1;
  /// Produce CountedPair witness counts instead of plain pairs.
  bool count_witnesses = false;
  /// Emit only pairs with >= min_count witnesses (requires counting when
  /// min_count > 1). SSJ sets this to the overlap threshold c.
  uint32_t min_count = 1;
  /// Rows per matrix block (memory = row_block * |heavy_z| floats per
  /// worker). Each block is one MultiplyRowRange call against the shared
  /// packed-B slab (B is packed once per query, not per block); 256 rows =
  /// two MC panels of the blocked kernel.
  size_t row_block = 256;
  DedupImpl dedup = DedupImpl::kStampArray;
  /// Heavy-part kernel selection. kAuto picks per product block between the
  /// dense blocked GEMM and the CSR kernels from the block's measured
  /// density (core/heavy_dispatch.h); the force modes pin one kernel
  /// everywhere (equivalence tests diff their sorted outputs).
  HeavyPathMode heavy_path = HeavyPathMode::kAuto;
  /// Measured sparse-kernel rates for the dispatch; nullptr uses
  /// SparseKernelRates::Default() (measured once per process, and only when
  /// a heavy part actually exists under kAuto).
  const SparseKernelRates* sparse_rates = nullptr;
  /// Density-adaptive heavy-part decomposition (core/density_partition.h):
  /// degree-remapped row/column bands with per-block kernels and pruned
  /// provably-empty blocks. kAuto engages the grid when its priced cost
  /// beats the uniform row-block plan and the band slices fit the memory
  /// cap; kForce engages it whenever a heavy product exists (fuzzer /
  /// equivalence tests); kOff always runs the uniform plan. Outputs are
  /// byte-identical either way — the remap is inverted at emit time.
  PartitionMode partition = PartitionMode::kAuto;
  /// Optional cross-execution grid memo owned by the caller's plan state
  /// (see DensityGridCache). On a key match the degree-remap rebuild is
  /// skipped; the hit is recorded in MmJoinResult::partition_cache_hit and
  /// the "degree-remap" trace span's detail. Null = always rebuild.
  DensityGridCache* grid_cache = nullptr;
  /// Push-based result delivery (core/result_sink.h). When set, results
  /// stream into the sink (min_count filtering still applies first) and
  /// MmJoinResult::pairs / counted stay empty; the sink's done() signal is
  /// polled at light-chunk / product-block granularity and skips the
  /// remaining work (skip counts land in the result). When null, results
  /// materialize into the result vectors as before.
  ResultSink* sink = nullptr;
  /// Hard cap on the heavy-part working set. What counts depends on the
  /// representation the chosen kernels need: the CSR index arrays are
  /// always counted; dense M1/M2, the shared packed-B slab, and the
  /// per-worker row-block float buffers (threads * row_block * |heavy_z|)
  /// only when dense or CSR x dense blocks may run; the per-worker stamp
  /// scratch when CSR x CSR may run. Under kAuto the dense representations
  /// are *gated off* when they alone would blow the cap — the query
  /// degrades to the CSR kernels — and thresholds double only when even
  /// the CSR floor does not fit (recorded in adjusted_thresholds). This is
  /// what stops sparse inputs from having their thresholds over-forced by
  /// dense U*V accounting.
  uint64_t max_matrix_bytes = uint64_t{3} << 30;
  /// Optional cancellation token (deadline | explicit cancel), polled at
  /// the same light-chunk / product-block granularity as the sink's done()
  /// signal. A fired token skips the remaining work (skips counted like
  /// sink-driven early exit) and sets MmJoinResult::interrupted; partial
  /// results already delivered stay valid.
  const CancelToken* cancel = nullptr;
  /// Optional per-query stage tracing (core/trace.h). Stage spans
  /// (threshold-fit, light-pass + chunks, heavy: csr-build / degree-remap /
  /// pack / per-block kernels, sink-finish) are recorded under
  /// `trace_parent`. Null = zero cost. Every opened span is closed on every
  /// exit path, including cancel / sink-done early exits.
  TraceRecorder* trace = nullptr;
  int32_t trace_parent = -1;  // TraceRecorder::kNoParent
};

struct MmJoinResult {
  /// Filled when !count_witnesses. Order unspecified.
  std::vector<OutPair> pairs;
  /// Filled when count_witnesses. Order unspecified.
  std::vector<CountedPair> counted;

  // --- instrumentation ---
  Thresholds adjusted_thresholds;  // after any memory-cap adjustment
  uint64_t heavy_rows = 0;         // |heavy x|
  uint64_t heavy_inner = 0;        // |heavy y|
  uint64_t heavy_cols = 0;         // |heavy z|
  uint64_t m1_nnz = 0;             // set cells of the heavy-x adjacency
  uint64_t m2_nnz = 0;             // set cells of the heavy-z adjacency
  double heavy_density = 0.0;      // m1_nnz / (heavy_rows * heavy_inner)
  HeavyKernelCounts kernel_counts; // product blocks per kernel
  std::vector<BlockKernelChoice> block_choices;  // per-block dispatch record
  double light_seconds = 0.0;
  double heavy_seconds = 0.0;      // matrix build + multiply + scan

  // --- density-adaptive partitioning (core/density_partition.h) ---
  bool partition_used = false;         // grid engaged on the heavy product
  uint64_t partition_row_bands = 0;    // grid shape actually executed
  uint64_t partition_col_bands = 0;
  uint64_t partition_blocks_scheduled = 0;  // grid cells with work
  uint64_t partition_blocks_pruned = 0;     // cells with a zero nnz bound
  /// Stable fingerprint of the executed decomposition ("off", "uniform", or
  /// DensityGrid::Signature()). Identical across re-executions of one plan
  /// against an unchanged catalog, at every thread count.
  std::string partition_signature = "off";
  /// True iff the grid came from MmJoinOptions::grid_cache instead of a
  /// fresh BuildDensityGrid (identical grid either way — the cache key
  /// covers every input the build reads).
  bool partition_cache_hit = false;

  // --- early-exit instrumentation (sink-driven runs) ---
  uint64_t heavy_blocks_total = 0;     // planned product blocks (or heavy
                                       // chunks for the combinatorial path)
  uint64_t heavy_blocks_executed = 0;  // blocks actually run
  uint64_t heavy_blocks_skipped = 0;   // blocks skipped after sink done()
  uint64_t light_chunks_total = 0;     // planned light-part chunks
  uint64_t light_chunks_executed = 0;  // light-part chunks actually run
  uint64_t light_chunks_skipped = 0;   // light-part chunks skipped

  /// True iff a fired CancelToken (not sink done()) cut the run short:
  /// some planned work was skipped because the token fired. A token that
  /// fires after the last chunk completes does NOT mark the run
  /// interrupted — the output is complete.
  bool interrupted = false;

  size_t size() const { return pairs.empty() ? counted.size() : pairs.size(); }
};

/// Runs Algorithm 1 with explicit thresholds. Use the cost-based optimizer
/// (core/optimizer.h) or the JoinProject facade to choose thresholds.
MmJoinResult MmJoinTwoPath(const IndexedRelation& r, const IndexedRelation& s,
                           const MmJoinOptions& options);

}  // namespace jpmm

#endif  // JPMM_CORE_MM_JOIN_H_
