#include "core/query_service.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>

#include "common/rng.h"
#include "common/timer.h"
#include "core/trace.h"

namespace jpmm {
namespace {

constexpr auto kNoDeadline = std::chrono::steady_clock::time_point::min();

// Process-wide service metrics, incremented alongside the per-service
// atomics (the atomics stay: stats() is per-service, the registry is
// process-wide and exportable).
struct ServiceMetrics {
  Counter& admitted = MetricsRegistry::Global().GetCounter(
      "jpmm_service_admitted_total");
  Counter& completed = MetricsRegistry::Global().GetCounter(
      "jpmm_service_completed_total");
  Counter& shed =
      MetricsRegistry::Global().GetCounter("jpmm_service_shed_total");
  Counter& queue_timeouts = MetricsRegistry::Global().GetCounter(
      "jpmm_service_queue_timeouts_total");
  Counter& deadline_exceeded = MetricsRegistry::Global().GetCounter(
      "jpmm_service_deadline_exceeded_total");
  Counter& cancelled = MetricsRegistry::Global().GetCounter(
      "jpmm_service_cancelled_total");
  Counter& degraded = MetricsRegistry::Global().GetCounter(
      "jpmm_service_degraded_total");
  Counter& internal_errors = MetricsRegistry::Global().GetCounter(
      "jpmm_service_internal_errors_total");
  Counter& retries = MetricsRegistry::Global().GetCounter(
      "jpmm_service_retries_total");
  Gauge& inflight =
      MetricsRegistry::Global().GetGauge("jpmm_service_inflight");
  Gauge& queued = MetricsRegistry::Global().GetGauge("jpmm_service_queued");
  Histogram& queue_wait_ms = MetricsRegistry::Global().GetHistogram(
      "jpmm_service_queue_wait_ms", DefaultLatencyBoundsMs());
  static ServiceMetrics& Get() {
    static ServiceMetrics m;
    return m;
  }
};

// Queue-wait poll slice: a token can fire from sources that do not notify
// the service's condition variable (explicit RequestCancel, a chained
// parent), so waiters re-check it at least this often.
constexpr std::chrono::milliseconds kQueuePollSlice{5};

QueryStatus TokenStatus(const CancelToken* token, const char* where) {
  if (token != nullptr && token->reason() == CancelToken::Reason::kDeadline) {
    return QueryStatus::DeadlineExceeded(std::string("deadline expired ") +
                                         where);
  }
  return QueryStatus::Cancelled(std::string("cancelled ") + where);
}

}  // namespace

const char* QueryClassName(QueryClass c) {
  switch (c) {
    case QueryClass::kInteractive:
      return "interactive";
    case QueryClass::kBatch:
      return "batch";
  }
  return "?";
}

QueryService::QueryService(QueryEngine* engine, QueryServiceOptions options)
    : engine_(engine), options_(options) {
  if (options_.enable_batching) {
    QueryBatcher::Options bo;
    bo.window_ms = std::max<int64_t>(0, options_.batch_window_ms);
    batcher_ = std::make_unique<QueryBatcher>(bo);
  }
  if (options_.enable_result_cache) {
    ResultCache::Options co;
    co.max_bytes = options_.result_cache_bytes;
    co.max_entry_bytes = options_.result_cache_max_entry_bytes;
    cache_ = std::make_unique<ResultCache>(co);
  }
}

QueryStatus QueryService::Admit(const ServiceRequest& req,
                                const CancelToken* token,
                                size_t* waiters_at_admit) {
  const size_t cls = static_cast<size_t>(req.query_class) & 1;
  const size_t class_cap =
      std::min(options_.max_queued_per_class, options_.queue_depth);
  std::unique_lock<std::mutex> lk(mu_);

  // Fast path: nobody waiting and a slot is free — FIFO order is trivially
  // preserved, skip the ticket machinery.
  if (queue_.empty() && inflight_ < options_.max_inflight) {
    ++inflight_;
    ServiceMetrics::Get().inflight.Add();
    *waiters_at_admit = 0;
    return QueryStatus::Ok();
  }

  if (queue_.size() >= options_.queue_depth ||
      queued_per_class_[cls] >= class_cap) {
    const uint64_t depth = queue_.size();
    lk.unlock();
    shed_.fetch_add(1, std::memory_order_release);
    ServiceMetrics::Get().shed.Add();
    // Hint scales with the backlog: a deeper queue needs a longer backoff
    // before a retry has any chance of finding a slot.
    const int64_t retry_after = static_cast<int64_t>(5 * (depth + 1));
    return QueryStatus::Overloaded(
        "admission queue full (" + std::to_string(depth) + " waiting, cap " +
            std::to_string(options_.queue_depth) + ", class " +
            QueryClassName(req.query_class) + " cap " +
            std::to_string(class_cap) + ") — retry after backoff",
        depth, retry_after);
  }

  const uint64_t ticket = next_ticket_++;
  queue_.push_back(ticket);
  ++queued_per_class_[cls];
  ServiceMetrics::Get().queued.Add();
  uint64_t depth = queue_.size();
  uint64_t prev = max_queue_depth_.load(std::memory_order_relaxed);
  while (depth > prev && !max_queue_depth_.compare_exchange_weak(
                             prev, depth, std::memory_order_relaxed)) {
  }

  const auto my_turn = [&] {
    return !queue_.empty() && queue_.front() == ticket &&
           inflight_ < options_.max_inflight;
  };
  while (!my_turn()) {
    if (token != nullptr && token->Fired()) {
      // Abandon the ticket so the requests behind it keep their FIFO slot.
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (*it == ticket) {
          queue_.erase(it);
          break;
        }
      }
      --queued_per_class_[cls];
      lk.unlock();
      cv_.notify_all();  // our departure may make the new head admittable
      queue_timeouts_.fetch_add(1, std::memory_order_release);
      ServiceMetrics::Get().queued.Sub();
      ServiceMetrics::Get().queue_timeouts.Add();
      return TokenStatus(token,
                         "while queued for admission (nothing executed)");
    }
    if (token == nullptr) {
      cv_.wait(lk);
    } else {
      auto wake = std::chrono::steady_clock::now() + kQueuePollSlice;
      const auto dl = token->deadline();
      if (dl != kNoDeadline) wake = std::min(wake, dl);
      cv_.wait_until(lk, wake);
    }
  }
  queue_.pop_front();
  --queued_per_class_[cls];
  *waiters_at_admit = queue_.size();
  ++inflight_;
  ServiceMetrics::Get().queued.Sub();
  ServiceMetrics::Get().inflight.Add();
  lk.unlock();
  // More than one slot can free at once; the new head may be admittable
  // right now.
  cv_.notify_all();
  return QueryStatus::Ok();
}

void QueryService::ReleaseSlot() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    --inflight_;
  }
  ServiceMetrics::Get().inflight.Sub();
  cv_.notify_all();
}

QueryStatus QueryService::Execute(PreparedQuery& query, ResultSink& sink,
                                  const ServiceRequest& req, ExecStats* stats) {
  ExecStats local_stats;
  ExecStats* out = stats != nullptr ? stats : &local_stats;
  *out = ExecStats{};

  // Compose the effective token: the deadline_ms convenience chains on top
  // of the caller's token (either alone works too). The deadline clock
  // starts here, so queue wait counts against it.
  CancelToken deadline_token;
  const CancelToken* token = req.exec.cancel;
  if (req.deadline_ms > 0) {
    deadline_token.SetDeadlineAfter(req.deadline_ms);
    if (token != nullptr) deadline_token.Chain(token);
    token = &deadline_token;
  }

  // Root span of this request's stage tree. The engine's "execute" span
  // nests under it, so a service-level trace shows queue wait alongside
  // the execution stages.
  TraceRecorder::Scope request_scope(req.exec.trace, "request",
                                     req.exec.trace_parent);
  const TraceRecorder::SpanId request_id = request_scope.id();

  // Every exit path — shed, queued-deadline, cache hit, batch delivery,
  // completion — closes the root and hands the (fully closed) span tree
  // back through ExecStats.
  auto finish_trace = [&] {
    request_scope.Close();
    if (req.exec.trace != nullptr) out->trace_spans = req.exec.trace->spans();
  };

  const BatchKey key{query.prepared_version(), query.spec_fingerprint()};

  // ---- Result cache probe -----------------------------------------------
  // Before paying for admission: a hit replays the complete cached payload
  // into the caller's sink (its limit/page semantics apply as usual) and
  // never executes. Version-keyed probes cannot return stale data; the
  // sweep below just releases memory held by entries from older catalog
  // versions.
  if (cache_ != nullptr && !(token != nullptr && token->Fired())) {
    TraceRecorder::SpanId probe_span =
        TraceBegin(req.exec.trace, "cache-probe", request_id);
    cache_->InvalidateStale(engine_->catalog().version());
    const bool hit =
        cache_->Replay(key, sink, out, req.exec.trace, probe_span);
    TraceEnd(req.exec.trace, probe_span, hit ? "hit" : "miss");
    if (hit) {
      admitted_.fetch_add(1, std::memory_order_relaxed);
      ServiceMetrics::Get().admitted.Add();
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      completed_.fetch_add(1, std::memory_order_release);
      ServiceMetrics::Get().completed.Add();
      finish_trace();
      return QueryStatus::Ok();
    }
  }

  // ---- Batching ---------------------------------------------------------
  // A star query into a pair-only sink fails validation in the engine; keep
  // such requests out of groups so one incapable sink cannot fail a whole
  // group (FanoutSink::supports_tuples is the conjunction over members).
  const bool batchable = batcher_ != nullptr &&
                         (query.spec().kind != QueryKind::kStar ||
                          sink.supports_tuples());
  // The cache tap records the complete post-filter stream of a leader/solo
  // run for insertion (bounded; an overflow just skips the insert).
  std::unique_ptr<RecordingSink> tap;
  if (cache_ != nullptr) {
    tap = std::make_unique<RecordingSink>(options_.result_cache_max_entry_bytes);
  }

  QueryStatus st;
  if (batchable) {
    const QueryBatcher::RunFn run = [&](ResultSink& run_sink,
                                        ExecStats* run_stats) {
      return RunAdmitted(query, run_sink, req, token, request_id, run_stats);
    };
    const QueryBatcher::Result r = batcher_->Execute(
        key, &sink, tap.get(), token, run, out, req.exec.trace, request_id);
    if (r.role == QueryBatcher::Role::kFollower) {
      batch_followers_.fetch_add(1, std::memory_order_relaxed);
      CountFollowerOutcome(r.status);
      finish_trace();
      return r.status;
    }
    if (r.role == QueryBatcher::Role::kDetached) {
      queue_timeouts_.fetch_add(1, std::memory_order_release);
      ServiceMetrics::Get().queue_timeouts.Add();
      finish_trace();
      return TokenStatus(token,
                         "while waiting in the batch window (nothing "
                         "executed)");
    }
    if (r.group_size > 1) {
      batch_leaders_.fetch_add(1, std::memory_order_relaxed);
    }
    st = r.status;
  } else if (tap != nullptr) {
    FanoutSink fan;
    fan.AddTarget(&sink);
    fan.AddTap(tap.get());
    st = RunAdmitted(query, fan, req, token, request_id, out);
  } else {
    st = RunAdmitted(query, sink, req, token, request_id, out);
  }
  MaybeCacheResult(key, query.spec().kind, tap.get(), st, *out);
  finish_trace();
  return st;
}

QueryStatus QueryService::RunAdmitted(PreparedQuery& query, ResultSink& sink,
                                      const ServiceRequest& req,
                                      const CancelToken* token,
                                      int32_t request_id, ExecStats* out) {
  size_t waiters_at_admit = 0;
  WallTimer queue_timer;
  QueryStatus admit;
  {
    TraceRecorder::Scope wait_scope(req.exec.trace, "queue-wait", request_id);
    admit = Admit(req, token, &waiters_at_admit);
  }
  if (MetricsEnabled()) {
    ServiceMetrics::Get().queue_wait_ms.Record(queue_timer.Seconds() * 1e3);
  }
  if (!admit.ok()) return admit;
  struct SlotGuard {
    QueryService* s;
    ~SlotGuard() { s->ReleaseSlot(); }
  } guard{this};
  admitted_.fetch_add(1, std::memory_order_relaxed);
  ServiceMetrics::Get().admitted.Add();

  // The token may have fired between the admission wake-up and here; bail
  // before doing any work so the "nothing executed" contract holds.
  if (token != nullptr && token->Fired()) {
    if (token->reason() == CancelToken::Reason::kDeadline) {
      deadline_exceeded_.fetch_add(1, std::memory_order_release);
      ServiceMetrics::Get().deadline_exceeded.Add();
    } else {
      cancelled_.fetch_add(1, std::memory_order_release);
      ServiceMetrics::Get().cancelled.Add();
    }
    return TokenStatus(token, "before execution started (nothing executed)");
  }

  // ---- Graceful degradation ---------------------------------------------
  // Budget split: every in-flight query gets an even share of the heavy-
  // part memory budget. When the share falls below the MM floor, or the
  // admission queue is backed up, an MM-family query re-plans onto the
  // combinatorial strategy instead of thrashing (or being shed).
  ExecOptions eo = req.exec;
  eo.cancel = token;
  int inflight_now;
  {
    std::lock_guard<std::mutex> lk(mu_);
    inflight_now = inflight_;
  }
  const uint64_t share =
      options_.memory_budget_bytes / static_cast<uint64_t>(std::max(
                                         1, inflight_now));
  eo.max_matrix_bytes = std::min(eo.max_matrix_bytes, share);

  const QuerySpec& spec = query.spec();
  const Strategy effective = eo.strategy_override.value_or(spec.strategy);
  const bool mm_family =
      spec.kind == QueryKind::kTriangle
          ? eo.heavy_path != HeavyPathMode::kForceCsrCsr
          : (effective == Strategy::kAuto || effective == Strategy::kMmJoin);
  DegradeReason degrade = DegradeReason::kNone;
  if (mm_family) {
    if (options_.degrade_queue_threshold > 0 &&
        waiters_at_admit >= options_.degrade_queue_threshold) {
      degrade = DegradeReason::kAdmissionPressure;
    } else if (share < options_.min_mm_bytes) {
      degrade = DegradeReason::kMemoryCap;
    }
  }
  if (degrade != DegradeReason::kNone) {
    if (spec.kind == QueryKind::kTriangle) {
      eo.heavy_path = HeavyPathMode::kForceCsrCsr;
    } else {
      eo.strategy_override = Strategy::kNonMmJoin;
    }
    degraded_.fetch_add(1, std::memory_order_release);
    ServiceMetrics::Get().degraded.Add();
  }
  // Nest the engine's stage tree under this request's root span.
  eo.trace = req.exec.trace;
  eo.trace_parent = request_id;

  QueryStatus st;
  try {
    st = engine_->Execute(query, sink, eo, out);
  } catch (const std::exception& e) {
    internal_errors_.fetch_add(1, std::memory_order_release);
    ServiceMetrics::Get().internal_errors.Add();
    return QueryStatus::Internal(std::string("execution failed: ") + e.what());
  }
  // Execute resets *out, so the degradation record lands afterwards. (The
  // caller closes the request root span and re-copies the span tree, so
  // the returned tree is fully closed — the AllClosed invariant.)
  out->degraded = degrade != DegradeReason::kNone;
  out->degrade_reason = degrade;
  if (!st.ok()) return st;
  if (out->interrupted) {
    if (out->interrupt_reason == InterruptReason::kDeadline) {
      deadline_exceeded_.fetch_add(1, std::memory_order_release);
      ServiceMetrics::Get().deadline_exceeded.Add();
      return QueryStatus::DeadlineExceeded(
          "deadline fired mid-execution; delivered results are an exact "
          "prefix of the full answer (see ExecStats skip counters)");
    }
    cancelled_.fetch_add(1, std::memory_order_release);
    ServiceMetrics::Get().cancelled.Add();
    return QueryStatus::Cancelled(
        "cancelled mid-execution; delivered results are an exact prefix of "
        "the full answer (see ExecStats skip counters)");
  }
  completed_.fetch_add(1, std::memory_order_release);
  ServiceMetrics::Get().completed.Add();
  return QueryStatus::Ok();
}

void QueryService::CountFollowerOutcome(const QueryStatus& st) {
  // A follower shares its leader's execution but is still one served
  // request; mirror the per-request counters so stats() stays meaningful
  // under batching. Ordering matches the leader path — admitted (relaxed)
  // strictly before the outcome (release) — so the documented snapshot
  // invariant holds for followers too. A shed group (leader hit a full
  // queue) counts only shed: nothing was admitted for anyone.
  if (st.code() == StatusCode::kOverloaded) {
    shed_.fetch_add(1, std::memory_order_release);
    ServiceMetrics::Get().shed.Add();
    return;
  }
  admitted_.fetch_add(1, std::memory_order_relaxed);
  ServiceMetrics::Get().admitted.Add();
  switch (st.code()) {
    case StatusCode::kOk:
      completed_.fetch_add(1, std::memory_order_release);
      ServiceMetrics::Get().completed.Add();
      break;
    case StatusCode::kDeadlineExceeded:
      deadline_exceeded_.fetch_add(1, std::memory_order_release);
      ServiceMetrics::Get().deadline_exceeded.Add();
      break;
    case StatusCode::kCancelled:
      cancelled_.fetch_add(1, std::memory_order_release);
      ServiceMetrics::Get().cancelled.Add();
      break;
    case StatusCode::kInternal:
      internal_errors_.fetch_add(1, std::memory_order_release);
      ServiceMetrics::Get().internal_errors.Add();
      break;
    default:
      // Validation errors surface per-request without an outcome counter,
      // exactly as on the unbatched path.
      break;
  }
}

void QueryService::MaybeCacheResult(const BatchKey& key, QueryKind kind,
                                    RecordingSink* tap, const QueryStatus& st,
                                    const ExecStats& stats) {
  if (cache_ == nullptr || tap == nullptr) return;
  // Only COMPLETE runs are cacheable: nothing truncated the execution
  // (deadline/cancel), no work was short-circuited by an early-exiting
  // sink (a limit-driven run records only a prefix), and the tap captured
  // the whole stream.
  if (!st.ok() || stats.interrupted || stats.heavy_blocks_skipped != 0 ||
      stats.light_chunks_skipped != 0 || stats.light_steps_skipped != 0 ||
      tap->overflowed()) {
    return;
  }
  ResultCache::Entry entry;
  entry.pairs = std::move(tap->pairs());
  entry.counted = std::move(tap->counted());
  entry.tuple_data = std::move(tap->tuple_data());
  entry.tuple_arity = tap->tuple_arity();
  // Triangle queries deliver through stats (triangle_count), not the sink;
  // a replayed hit likewise only copies stats.
  entry.deliver_payload = kind != QueryKind::kTriangle;
  entry.stats = stats;
  cache_->Insert(key, std::move(entry));
}

QueryStatus QueryService::Run(const QuerySpec& spec, ResultSink& sink,
                              const ServiceRequest& req, ExecStats* stats) {
  PreparedQuery q;
  QueryStatus st;
  try {
    st = engine_->Prepare(spec, &q);
  } catch (const std::exception& e) {
    internal_errors_.fetch_add(1, std::memory_order_relaxed);
    return QueryStatus::Internal(std::string("prepare failed: ") + e.what());
  }
  if (!st.ok()) return st;
  return Execute(q, sink, req, stats);
}

std::string ServiceStats::ToString() const {
  std::string s;
  s.reserve(160);
  auto field = [&s](const char* name, uint64_t v) {
    if (!s.empty()) s += ' ';
    s += name;
    s += '=';
    s += std::to_string(v);
  };
  field("admitted", admitted);
  field("completed", completed);
  field("shed", shed);
  field("queue_timeouts", queue_timeouts);
  field("deadline_exceeded", deadline_exceeded);
  field("cancelled", cancelled);
  field("degraded", degraded);
  field("internal_errors", internal_errors);
  field("max_queue_depth", max_queue_depth);
  field("batch_leaders", batch_leaders);
  field("batch_followers", batch_followers);
  field("cache_hits", cache_hits);
  return s;
}

ServiceStats QueryService::stats() const {
  // One acquire pass over the outcome counters FIRST: each outcome
  // increment is a release that happened after its request's admitted_
  // increment, so reading outcomes before admitted_ guarantees
  //   admitted >= completed + deadline_exceeded + cancelled +
  //   internal_errors
  // in every snapshot (see the ServiceStats doc comment).
  ServiceStats s;
  s.completed = completed_.load(std::memory_order_acquire);
  s.shed = shed_.load(std::memory_order_acquire);
  s.queue_timeouts = queue_timeouts_.load(std::memory_order_acquire);
  s.deadline_exceeded = deadline_exceeded_.load(std::memory_order_acquire);
  s.cancelled = cancelled_.load(std::memory_order_acquire);
  s.degraded = degraded_.load(std::memory_order_acquire);
  s.internal_errors = internal_errors_.load(std::memory_order_acquire);
  s.admitted = admitted_.load(std::memory_order_acquire);
  s.max_queue_depth = max_queue_depth_.load(std::memory_order_relaxed);
  s.batch_leaders = batch_leaders_.load(std::memory_order_relaxed);
  s.batch_followers = batch_followers_.load(std::memory_order_relaxed);
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  return s;
}

MetricsSnapshot QueryService::MetricsSnapshot() const {
  return MetricsRegistry::Global().Snapshot();
}

int QueryService::inflight() const {
  std::lock_guard<std::mutex> lk(mu_);
  return inflight_;
}

size_t QueryService::queued() const {
  std::lock_guard<std::mutex> lk(mu_);
  return queue_.size();
}

QueryStatus RetryWithBackoff(const std::function<QueryStatus()>& attempt,
                             const RetryOptions& options,
                             const CancelToken* cancel) {
  Rng rng(options.seed != 0 ? options.seed : 1);
  const int attempts = std::max(1, options.max_attempts);
  double backoff = static_cast<double>(std::max<int64_t>(1, options.base_ms));
  QueryStatus st = QueryStatus::Ok();
  for (int a = 0; a < attempts; ++a) {
    if (cancel != nullptr && cancel->Fired()) {
      return TokenStatus(cancel, "before the retry attempt");
    }
    if (a > 0) ServiceMetrics::Get().retries.Add();
    st = attempt();
    if (st.code() != StatusCode::kOverloaded) return st;
    if (a + 1 >= attempts) break;
    // Jittered exponential backoff, floored at the service's retry-after
    // hint: uniform in [b/2, b].
    int64_t b = std::max<int64_t>(static_cast<int64_t>(backoff),
                                  st.retry_after_ms());
    b = std::min(std::max<int64_t>(1, b), std::max<int64_t>(1, options.max_ms));
    const int64_t lo = b / 2;
    const int64_t sleep_ms =
        lo + static_cast<int64_t>(rng.NextBounded(
                 static_cast<uint64_t>(b - lo + 1)));
    const auto wake = std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(sleep_ms);
    while (std::chrono::steady_clock::now() < wake) {
      if (cancel != nullptr && cancel->Fired()) {
        return TokenStatus(cancel, "while backing off between retries");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    backoff = std::min(static_cast<double>(options.max_ms),
                       backoff * std::max(1.0, options.multiplier));
  }
  return st;
}

}  // namespace jpmm
