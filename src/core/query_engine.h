// QueryEngine — the service-facing facade over the whole library.
//
// One engine object owns a Catalog of named relations and evaluates
// QuerySpecs (two-path | star | triangle | scj | ssj) against it:
//
//   QueryEngine engine;
//   engine.AddRelation("follows", std::move(rel));
//
//   QuerySpec spec;
//   spec.kind = QueryKind::kTwoPath;
//   spec.relations = {"follows"};
//
//   PreparedQuery q;
//   QueryStatus st = engine.Prepare(spec, &q);     // structured errors
//   if (!st.ok()) { ...; }
//
//   LimitSink sink(10);                            // or PageSink, ...
//   ExecStats stats;
//   st = engine.Execute(q, sink, {.threads = 8}, &stats);
//
// Prepare resolves and caches the operand indexes and degree statistics;
// the first Execute runs the cost-based optimizer and caches the
// PlanChoice inside the PreparedQuery, so repeated executions skip
// optimization entirely (stats.plan_cache_hit says which happened).
// Results are pushed into a ResultSink — limit / page / count-only /
// top-k / ordered consumers never pay for full materialization, and the
// sink's done() signal short-circuits the remaining light buckets and
// heavy product blocks (the skip counts land in ExecStats).
//
// Errors (unknown relation names, invalid option combinations) come back
// as QueryStatus values instead of aborting — the abort-on-misuse checks
// remain only on the low-level algorithm entry points.
//
// ---- Thread-safety contract (the multi-client serving mode) -------------
//
// One engine may be hit by many client threads at once:
//
//   - Catalog writers (AddRelation / DropRelation / catalog().Put) and
//     readers (Prepare / Execute) may run concurrently. The catalog is
//     reader-writer locked and entries are copy-on-write snapshots.
//   - A PreparedQuery SNAPSHOTS its relations at Prepare time: replacing
//     or dropping a catalog name mid-flight never tears an in-flight
//     Execute — it keeps evaluating against the data it was prepared on.
//     Re-Prepare to pick up replaced data.
//   - Execute on one shared PreparedQuery is safe from any number of
//     threads. The first executions racing to plan are single-flight: one
//     thread runs the optimizer (and reports plan_cache_hit = false), the
//     others block briefly and reuse the winner's plan.
//   - Each concurrent Execute needs its own ResultSink and ExecStats;
//     sinks are per-call state, not engine state.
//   - Moving a PreparedQuery or the engine while other threads use it is
//     a caller bug (as for any C++ object).

#ifndef JPMM_CORE_QUERY_ENGINE_H_
#define JPMM_CORE_QUERY_ENGINE_H_

#include <atomic>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/cancel_token.h"
#include "core/join_project.h"
#include "core/result_sink.h"
#include "core/trace.h"
#include "core/triangle.h"
#include "storage/catalog.h"
#include "storage/set_family.h"
#include "storage/stats.h"

namespace jpmm {

/// Machine-readable outcome classes for QueryStatus. kOk is success;
/// kOverloaded / kDeadlineExceeded / kCancelled are the service-layer
/// robustness outcomes (retryable or caller-initiated, not bugs); the rest
/// are caller or internal errors.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,   // bad spec / option combination
  kNotFound,          // unknown relation name
  kOverloaded,        // admission queue full; retry after a backoff
  kDeadlineExceeded,  // the per-query deadline fired mid-execution
  kCancelled,         // the caller's CancelToken fired mid-execution
  kInternal,          // unexpected execution failure (e.g. injected fault)
};

const char* StatusCodeName(StatusCode c);

/// Structured success-or-error result of an engine call. Carries a code
/// for dispatch plus a human-readable message; kOverloaded additionally
/// carries the observed queue depth and a retry-after hint for backoff.
class QueryStatus {
 public:
  static QueryStatus Ok() { return QueryStatus(); }
  /// Back-compat error factory: an invalid-argument failure.
  static QueryStatus Error(std::string message) {
    return Make(StatusCode::kInvalidArgument, std::move(message));
  }
  static QueryStatus InvalidArgument(std::string message) {
    return Make(StatusCode::kInvalidArgument, std::move(message));
  }
  static QueryStatus NotFound(std::string message) {
    return Make(StatusCode::kNotFound, std::move(message));
  }
  static QueryStatus Overloaded(std::string message, uint64_t queue_depth,
                                int64_t retry_after_ms) {
    QueryStatus s = Make(StatusCode::kOverloaded, std::move(message));
    s.queue_depth_ = queue_depth;
    s.retry_after_ms_ = retry_after_ms;
    return s;
  }
  static QueryStatus DeadlineExceeded(std::string message) {
    return Make(StatusCode::kDeadlineExceeded, std::move(message));
  }
  static QueryStatus Cancelled(std::string message) {
    return Make(StatusCode::kCancelled, std::move(message));
  }
  static QueryStatus Internal(std::string message) {
    return Make(StatusCode::kInternal, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }
  /// kOverloaded only: admission queue depth at rejection time.
  uint64_t queue_depth() const { return queue_depth_; }
  /// kOverloaded only: suggested wait before retrying, in milliseconds.
  int64_t retry_after_ms() const { return retry_after_ms_; }

 private:
  static QueryStatus Make(StatusCode code, std::string message) {
    QueryStatus s;
    s.code_ = code;
    s.message_ = std::move(message);
    return s;
  }

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
  uint64_t queue_depth_ = 0;
  int64_t retry_after_ms_ = 0;
};

enum class QueryKind {
  kTwoPath,   // pi_{x,z}(R(x,y) JOIN S(z,y))
  kStar,      // pi_{x1..xk}(R1(x1,y) JOIN ... JOIN Rk(xk,y))
  kTriangle,  // triangle count of a symmetric edge relation
  kScj,       // set containment join over one set family
  kSsj,       // set similarity join over one set family
};

const char* QueryKindName(QueryKind k);

/// A declarative query over named catalog relations.
struct QuerySpec {
  QueryKind kind = QueryKind::kTwoPath;
  /// Catalog names. kTwoPath: one (self join) or two; kStar: 2..8 (repeat
  /// a name for the self star); kTriangle/kScj/kSsj: exactly one.
  std::vector<std::string> relations;
  /// Evaluation strategy; kAuto defers to the cost-based optimizer.
  Strategy strategy = Strategy::kAuto;
  /// Two-path: deliver CountedPair witness counts instead of plain pairs.
  bool count_witnesses = false;
  /// Two-path: keep only pairs with >= min_count witnesses (requires
  /// count_witnesses when > 1).
  uint32_t min_count = 1;
  /// SSJ: overlap threshold c >= 1.
  uint32_t ssj_c = 2;
  /// SSJ: deliver overlaps via OnCountedPair (otherwise OnPair).
  bool ssj_ordered = false;
};

/// Per-execution knobs (everything about HOW, nothing about WHAT).
struct ExecOptions {
  int threads = 1;
  /// Explicit thresholds; {0, 0} lets the cached plan decide.
  Thresholds thresholds{0, 0};
  /// Heavy-part kernel override (kAuto = per-block density dispatch).
  HeavyPathMode heavy_path = HeavyPathMode::kAuto;
  /// Density-adaptive heavy-product decomposition (degree-remapped block
  /// grid, core/density_partition.h): kAuto engages it when it prices
  /// cheaper than the uniform row-block plan, kOff never, kForce whenever
  /// a heavy product exists. Outputs are identical in every mode; the
  /// decision lands in ExecStats::partition_*.
  PartitionMode partition = PartitionMode::kAuto;
  /// Heavy-part memory cap (see MmJoinOptions::max_matrix_bytes).
  uint64_t max_matrix_bytes = uint64_t{3} << 30;
  /// Optional cancellation token (deadline | explicit cancel), polled by
  /// every strategy at light-chunk / product-block granularity. A fired
  /// token truncates the run: Execute still returns Ok (the partial
  /// results already delivered are exact), with stats->interrupted set and
  /// the reason recorded. The QueryService layer maps interruption onto
  /// kDeadlineExceeded / kCancelled statuses.
  const CancelToken* cancel = nullptr;
  /// When set, overrides the spec's strategy for this execution only —
  /// the degradation hook (QueryService re-plans an MM query onto
  /// kNonMmJoin under memory/admission pressure without touching the
  /// shared PreparedQuery).
  std::optional<Strategy> strategy_override;
  /// Optional per-query stage tracing (core/trace.h): Execute opens an
  /// "execute" root span under `trace_parent` and records the stage tree
  /// (plan → light-pass chunks → heavy per-block kernels → sink finish)
  /// into the recorder; a copy of the spans also lands in
  /// ExecStats::trace_spans. Null (the default) costs nothing. The
  /// recorder is per-execution state, like the sink — do not share one
  /// recorder across concurrent Execute calls you want to tell apart.
  TraceRecorder* trace = nullptr;
  int32_t trace_parent = -1;  // TraceRecorder::kNoParent
};

/// Why an execution was cut short (ExecStats::interrupt_reason).
enum class InterruptReason : uint8_t {
  kNone = 0,
  kCancelled,  // explicit CancelToken::RequestCancel (or watched sink)
  kDeadline,   // the token's deadline fired
};

/// Why an execution was re-planned onto a cheaper strategy
/// (ExecStats::degrade_reason).
enum class DegradeReason : uint8_t {
  kNone = 0,
  kMemoryCap,          // per-query memory share below the MM floor
  kAdmissionPressure,  // admission queue backed up past the threshold
};

const char* InterruptReasonName(InterruptReason r);
const char* DegradeReasonName(DegradeReason r);

/// Execution record: what ran, what the plan was, and what early exit
/// saved. Counters that do not apply to a query kind stay zero.
struct ExecStats {
  Strategy executed = Strategy::kMmJoin;
  PlanChoice plan;              // two-path family only
  bool plan_cache_hit = false;  // true: optimization was skipped
  double seconds = 0.0;

  // Early-exit record (sink done() / cancel-token short-circuit). The
  // light counters are chunk-granular for the pair strategies and
  // step-granular for stars (executed + skipped == total either way).
  uint64_t heavy_blocks_total = 0;
  uint64_t heavy_blocks_executed = 0;
  uint64_t heavy_blocks_skipped = 0;
  uint64_t light_chunks_total = 0;
  uint64_t light_chunks_executed = 0;
  uint64_t light_chunks_skipped = 0;
  uint64_t light_steps_skipped = 0;  // star decomposition steps (== the
                                     // chunk counters above for kStar)

  /// True iff a fired CancelToken truncated this execution (every strategy,
  /// unifying the old triangle-only `triangle_cancelled`). The results
  /// delivered before the interruption are exact; the run is partial.
  /// A token that fires after the last chunk completes does not set this.
  bool interrupted = false;
  InterruptReason interrupt_reason = InterruptReason::kNone;

  /// True iff the service layer re-planned this execution onto a cheaper
  /// strategy instead of rejecting it (graceful degradation); `executed`
  /// holds the strategy that actually ran.
  bool degraded = false;
  DegradeReason degrade_reason = DegradeReason::kNone;

  // Heavy-part record (MM strategies), as in JoinProjectOutput.
  uint64_t m1_nnz = 0;
  uint64_t m2_nnz = 0;
  double heavy_density = 0.0;
  HeavyKernelCounts kernel_counts;
  std::vector<BlockKernelChoice> block_choices;

  /// Density-adaptive partitioning record (see MmJoinResult): whether the
  /// degree-remapped block grid ran the heavy product, its shape, and the
  /// scheduled/pruned block split. `partition_signature` is a compact
  /// "RxC/sK/pJ" fingerprint ("off"/"uniform" when the grid did not run);
  /// it is deterministic for a given operand pair + options, so repeated
  /// executions of one PreparedQuery report the same signature.
  bool partition_used = false;
  uint64_t partition_row_bands = 0;
  uint64_t partition_col_bands = 0;
  uint64_t partition_blocks_scheduled = 0;
  uint64_t partition_blocks_pruned = 0;
  std::string partition_signature = "off";

  /// True iff the density-grid remap was reused from the PreparedQuery's
  /// plan state instead of rebuilt (partition runs only; the grid is
  /// identical either way — see DensityGridCache).
  bool partition_cache_hit = false;

  /// --- Multi-query batching / result cache (QueryService layer; the
  /// engine itself never sets these) -----------------------------------
  /// True iff this request shared one execution with concurrent identical
  /// requests: the leader ran the single pass into a FanoutSink, followers
  /// received the same stream in their own sinks.
  bool batched = false;
  bool batch_leader = false;    // this request ran the shared pass
  bool batch_follower = false;  // this request received the fan-out
  uint32_t batch_group_size = 0;  // client sinks served by the shared pass
  /// True iff the result was replayed from the service's versioned result
  /// cache without executing; the counters above describe the cached run,
  /// `seconds` the replay.
  bool result_cache_hit = false;

  /// kTriangle only: the (possibly partial, see `interrupted`) triangle
  /// count — triangle queries deliver through stats, not pairs.
  uint64_t triangle_count = 0;

  /// Copy of the span tree recorded during this execution, when
  /// ExecOptions::trace was set (empty otherwise) — embedders get the
  /// trace without holding the recorder. Indices are recorder-relative:
  /// TraceSpan::parent refers to positions in the recorder's full vector,
  /// which equals this vector when the recorder was fresh for this call.
  std::vector<TraceSpan> trace_spans;
};

/// A resolved, reusable query: operand indexes and degree statistics are
/// cached at Prepare time, the optimizer's PlanChoice after the first
/// Execute. Snapshot semantics: a PreparedQuery pins the catalog entries
/// it was prepared on — a later Put/Drop of those names does not affect
/// it; re-Prepare to query replaced data. Execute may be called on one
/// PreparedQuery from many threads concurrently (the plan cache is
/// single-flight); move/destruction must still be externally quiesced.
class PreparedQuery {
 public:
  PreparedQuery();
  ~PreparedQuery();
  PreparedQuery(PreparedQuery&&) noexcept;
  PreparedQuery& operator=(PreparedQuery&&) noexcept;

  const QuerySpec& spec() const { return spec_; }
  /// True once a plan has been cached (after the first Execute).
  bool has_plan() const;
  /// A copy of the cached plan, taken under the plan-cache lock (a
  /// reference would outlive the lock and race concurrent re-planning).
  /// Meaningful only when has_plan(); ExecStats::plan is the
  /// per-execution record.
  PlanChoice plan() const;
  /// Executions served by this prepared query so far.
  uint64_t executions() const;

  /// Catalog::version() at Prepare time — identifies the consistent
  /// multi-relation cut this query's snapshots came from (SnapshotAll).
  /// The batching / result-cache coalescing key is (prepared_version,
  /// spec_fingerprint).
  uint64_t prepared_version() const { return prepared_version_; }
  /// Stable hash of every WHAT-field of the spec (kind, relation names,
  /// strategy, count_witnesses, min_count, ssj knobs). Execution knobs are
  /// deliberately excluded: the result SET is invariant across strategies,
  /// kernels, and thread counts (the differential fuzzer's core property),
  /// so requests differing only in HOW coalesce safely.
  uint64_t spec_fingerprint() const { return fingerprint_; }

 private:
  friend class QueryEngine;

  // Mutable per-query cache, shared by concurrent Execute calls. Lives
  // behind a unique_ptr so PreparedQuery stays movable.
  struct PlanState {
    mutable std::shared_mutex mu;
    bool plan_valid = false;
    PlanChoice plan;
    int plan_threads = 0;  // plan is re-derived when threads change
    bool nonmm_thresholds_valid = false;
    Thresholds nonmm_thresholds{0, 0};
    bool star_thresholds_valid = false;
    Thresholds star_thresholds{0, 0};
    std::atomic<uint64_t> executions{0};
    /// Cross-execution density-grid memos (core/density_partition.h): the
    /// operand snapshots are immutable, so the remap/grid from one
    /// execution is valid for every later one with the same adjusted
    /// thresholds + gates. One slot per heavy-product shape.
    DensityGridCache two_path_grid;
    DensityGridCache star_grid;
  };

  QuerySpec spec_;
  uint64_t prepared_version_ = 0;
  uint64_t fingerprint_ = 0;
  /// Catalog snapshots: shared ownership keeps the relations alive and
  /// immutable for this query's lifetime (see Catalog::IndexSnapshot).
  std::vector<std::shared_ptr<const IndexedRelation>> rels_;
  std::unique_ptr<TwoPathStats> stats_;  // two-path family
  std::unique_ptr<SetFamily> family_;    // scj / ssj view
  std::unique_ptr<PlanState> state_;
};

/// The facade. Owns the catalog; queries snapshot from it (see
/// PreparedQuery). Safe for concurrent multi-client use — see the
/// thread-safety contract in the file header.
class QueryEngine {
 public:
  QueryEngine() = default;
  explicit QueryEngine(Catalog catalog) : catalog_(std::move(catalog)) {}

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }

  /// Registers (or replaces) a relation; finalizes it if needed. In-flight
  /// queries on a replaced name keep their snapshot. Never fails (the
  /// status is for signature symmetry with DropRelation).
  QueryStatus AddRelation(const std::string& name, BinaryRelation rel);

  /// Unregisters a relation. Errors if the name is unknown. In-flight
  /// queries keep their snapshot; new Prepares see the drop.
  QueryStatus DropRelation(const std::string& name);

  /// Validates the spec (unknown relation names, bad option combinations
  /// come back as errors), resolves + snapshots indexes and operand stats.
  QueryStatus Prepare(const QuerySpec& spec, PreparedQuery* out);

  /// Executes a prepared query, streaming results into `sink`. The first
  /// execution runs the optimizer and caches the plan; later executions
  /// reuse it (stats->plan_cache_hit). `stats` may be null. Safe to call
  /// concurrently on one shared PreparedQuery (each call needs its own
  /// sink and stats).
  QueryStatus Execute(PreparedQuery& query, ResultSink& sink,
                      const ExecOptions& opts = {},
                      ExecStats* stats = nullptr);

  /// Prepare + Execute in one shot (no plan reuse across calls).
  QueryStatus Run(const QuerySpec& spec, ResultSink& sink,
                  const ExecOptions& opts = {}, ExecStats* stats = nullptr);

 private:
  Catalog catalog_;
};

}  // namespace jpmm

#endif  // JPMM_CORE_QUERY_ENGINE_H_
