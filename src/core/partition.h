// Degree-based partitioning for the 2-path query (Algorithm 1, step 1-2).
//
//   R- = { (a,b) in R : deg_R(a) <= Delta2  or  deg_S(b) <= Delta1 }
//   S- = { (c,b) in S : deg_S(c) <= Delta2  or  deg_S(b) <= Delta1 }
//   R+ = R \ R-,  S+ = S \ S-
//
// Note the y-lightness test is against S in both relations, exactly as in
// §3.1 (for the paper's self-join experiments the test is symmetric).
// Heavy values get dense ids: rows (heavy x), inner dimension (heavy y) and
// columns (heavy z) of the rectangular matrices M1, M2. Heavy ids are only
// assigned to values that can actually produce a heavy output (e.g. a heavy
// x with no heavy y neighbour gets no row), keeping the matrices tight.

#ifndef JPMM_CORE_PARTITION_H_
#define JPMM_CORE_PARTITION_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "core/thresholds.h"
#include "storage/index.h"
#include "storage/relation.h"

namespace jpmm {

/// Lightness oracles + heavy-value id maps for one (R, S, Thresholds) triple.
class TwoPathPartition {
 public:
  TwoPathPartition(const IndexedRelation& r, const IndexedRelation& s,
                   Thresholds t);

  const Thresholds& thresholds() const { return t_; }

  /// deg_R(a) <= Delta2.
  bool XLight(Value a) const { return r_->DegX(a) <= t_.delta2; }
  /// deg_S(c) <= Delta2.
  bool ZLight(Value c) const { return s_->DegX(c) <= t_.delta2; }
  /// deg_S(b) <= Delta1 — Algorithm 1's join-variable lightness test.
  bool YLight(Value b) const { return s_->DegY(b) <= t_.delta1; }

  /// Heavy x values that own a matrix row (ascending).
  const std::vector<Value>& heavy_x() const { return heavy_x_; }
  /// Heavy y values that own a matrix inner index (ascending).
  const std::vector<Value>& heavy_y() const { return heavy_y_; }
  /// Heavy z values that own a matrix column (ascending).
  const std::vector<Value>& heavy_z() const { return heavy_z_; }

  /// Row id of a, or kInvalidValue when a has no row.
  Value HeavyXId(Value a) const {
    return a < heavy_x_id_.size() ? heavy_x_id_[a] : kInvalidValue;
  }
  Value HeavyYId(Value b) const {
    return b < heavy_y_id_.size() ? heavy_y_id_[b] : kInvalidValue;
  }
  Value HeavyZId(Value c) const {
    return c < heavy_z_id_.size() ? heavy_z_id_[c] : kInvalidValue;
  }

  /// Materialized subrelations (diagnostics / partition-invariant tests; the
  /// join itself never materializes them).
  BinaryRelation RMinus() const;
  BinaryRelation RPlus() const;
  BinaryRelation SMinus() const;
  BinaryRelation SPlus() const;

 private:
  const IndexedRelation* r_;
  const IndexedRelation* s_;
  Thresholds t_;
  std::vector<Value> heavy_x_, heavy_y_, heavy_z_;
  std::vector<Value> heavy_x_id_, heavy_y_id_, heavy_z_id_;
};

}  // namespace jpmm

#endif  // JPMM_CORE_PARTITION_H_
