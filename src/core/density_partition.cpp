#include "core/density_partition.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"
#include "common/metrics.h"
#include "matrix/cost_model.h"

namespace jpmm {

TwoPathPartition::TwoPathPartition(const IndexedRelation& r,
                                   const IndexedRelation& s, Thresholds t)
    : r_(&r), s_(&s), t_(t) {
  // Candidate heavy y: deg_S(b) > Delta1 and b present in R (otherwise no
  // R+ tuple references it).
  const Value ny = std::max(r.num_y(), s.num_y());
  std::vector<uint8_t> y_candidate(ny, 0);
  for (Value b = 0; b < ny; ++b) {
    y_candidate[b] = (s.DegY(b) > t.delta1 && r.DegY(b) > 0) ? 1 : 0;
  }

  // Heavy x = heavy-degree x values adjacent to >= 1 candidate heavy y.
  heavy_x_id_.assign(r.num_x(), kInvalidValue);
  for (Value a = 0; a < r.num_x(); ++a) {
    if (r.DegX(a) <= t.delta2) continue;
    for (Value b : r.YsOf(a)) {
      if (y_candidate[b]) {
        heavy_x_id_[a] = static_cast<Value>(heavy_x_.size());
        heavy_x_.push_back(a);
        break;
      }
    }
  }

  // Heavy z = heavy-degree z values adjacent to >= 1 candidate heavy y.
  heavy_z_id_.assign(s.num_x(), kInvalidValue);
  for (Value c = 0; c < s.num_x(); ++c) {
    if (s.DegX(c) <= t.delta2) continue;
    for (Value b : s.YsOf(c)) {
      if (b < ny && y_candidate[b]) {
        heavy_z_id_[c] = static_cast<Value>(heavy_z_.size());
        heavy_z_.push_back(c);
        break;
      }
    }
  }

  // Keep a candidate y only if it touches >= 1 heavy x in R and >= 1 heavy z
  // in S; all-zero matrix columns/rows would otherwise inflate the product.
  heavy_y_id_.assign(ny, kInvalidValue);
  for (Value b = 0; b < ny; ++b) {
    if (!y_candidate[b]) continue;
    bool has_heavy_x = false;
    for (Value a : r.XsOf(b)) {
      if (heavy_x_id_[a] != kInvalidValue) {
        has_heavy_x = true;
        break;
      }
    }
    if (!has_heavy_x) continue;
    bool has_heavy_z = false;
    for (Value c : s.XsOf(b)) {
      if (heavy_z_id_[c] != kInvalidValue) {
        has_heavy_z = true;
        break;
      }
    }
    if (!has_heavy_z) continue;
    heavy_y_id_[b] = static_cast<Value>(heavy_y_.size());
    heavy_y_.push_back(b);
  }
}

BinaryRelation TwoPathPartition::RMinus() const {
  BinaryRelation out;
  for (Value a = 0; a < r_->num_x(); ++a) {
    for (Value b : r_->YsOf(a)) {
      if (XLight(a) || YLight(b)) out.Add(a, b);
    }
  }
  out.Finalize();
  return out;
}

BinaryRelation TwoPathPartition::RPlus() const {
  BinaryRelation out;
  for (Value a = 0; a < r_->num_x(); ++a) {
    for (Value b : r_->YsOf(a)) {
      if (!XLight(a) && !YLight(b)) out.Add(a, b);
    }
  }
  out.Finalize();
  return out;
}

BinaryRelation TwoPathPartition::SMinus() const {
  BinaryRelation out;
  for (Value c = 0; c < s_->num_x(); ++c) {
    for (Value b : s_->YsOf(c)) {
      if (ZLight(c) || YLight(b)) out.Add(c, b);
    }
  }
  out.Finalize();
  return out;
}

BinaryRelation TwoPathPartition::SPlus() const {
  BinaryRelation out;
  for (Value c = 0; c < s_->num_x(); ++c) {
    for (Value b : s_->YsOf(c)) {
      if (!ZLight(c) && !YLight(b)) out.Add(c, b);
    }
  }
  out.Finalize();
  return out;
}

const char* PartitionModeName(PartitionMode m) {
  switch (m) {
    case PartitionMode::kAuto:
      return "auto";
    case PartitionMode::kOff:
      return "off";
    case PartitionMode::kForce:
      return "force";
  }
  return "?";
}

namespace {

// Priced seconds of one rows x v by v x w block on the given kernel —
// the same formulas ChooseProductKernel compares (heavy_dispatch.cpp),
// reused here so grid shapes and the uniform baseline are priced on one
// scale.
double BlockSeconds(uint64_t rows, uint64_t v, uint64_t w, uint64_t block_nnz,
                    double expand_ops, const SparseKernelRates& rates,
                    ProductKernel kernel) {
  const double cells =
      static_cast<double>(rows) * static_cast<double>(std::max<uint64_t>(1, v));
  const double density = static_cast<double>(block_nnz) / std::max(1.0, cells);
  const double sd_rate = rates.CsrDenseRate(density);
  const double scan = static_cast<double>(rows) * static_cast<double>(w);
  switch (kernel) {
    case ProductKernel::kDenseGemm:
      return 2.0 * static_cast<double>(rows) * static_cast<double>(v) *
                 static_cast<double>(w) / rates.dense_flops_per_sec +
             SparseProductSeconds(scan, sd_rate);
    case ProductKernel::kCsrDense:
      return SparseProductSeconds(SparseProductOps(block_nnz, rows, w) + scan,
                                  sd_rate);
    case ProductKernel::kCsrCsr:
      return SparseProductSeconds(expand_ops, rates.CsrCsrRate(density));
  }
  return 0.0;
}

ProductKernel PickKernel(uint64_t rows, uint64_t v, uint64_t w,
                         uint64_t block_nnz, double expand_ops,
                         const SparseKernelRates& rates, HeavyPathMode mode,
                         bool allow_dense, bool allow_csr_dense) {
  switch (mode) {
    case HeavyPathMode::kForceDense:
      return ProductKernel::kDenseGemm;
    case HeavyPathMode::kForceCsrDense:
      return ProductKernel::kCsrDense;
    case HeavyPathMode::kForceCsrCsr:
      return ProductKernel::kCsrCsr;
    case HeavyPathMode::kAuto:
      break;
  }
  return ChooseProductKernel(rows, v, w, block_nnz, expand_ops, rates,
                             allow_dense, allow_csr_dense);
}

// Equal-weight band boundaries over `weights`, at most `bands` bands, every
// band non-empty. Returns boundary indices (size #bands + 1, first 0, last
// weights.size()).
std::vector<size_t> EquiWeightBands(const std::vector<uint64_t>& weights,
                                    size_t bands) {
  const size_t n = weights.size();
  bands = std::max<size_t>(1, std::min(bands, n));
  uint64_t total = 0;
  for (uint64_t w : weights) total += w;
  std::vector<size_t> bounds;
  bounds.push_back(0);
  uint64_t cum = 0;
  size_t i = 0;
  for (size_t band = 0; band + 1 < bands; ++band) {
    // Leave at least one element per remaining band.
    const size_t max_end = n - (bands - band - 1);
    const uint64_t target = (total * (band + 1) + bands - 1) / bands;
    while (i < max_end && (cum < target || i <= bounds.back())) {
      cum += weights[i];
      ++i;
    }
    if (i <= bounds.back()) i = bounds.back() + 1;
    bounds.push_back(i);
  }
  while (i < n) {
    cum += weights[i];
    ++i;
  }
  bounds.push_back(n);
  return bounds;
}

}  // namespace

std::string DensityGrid::Signature() const {
  return std::to_string(num_row_bands()) + "x" +
         std::to_string(num_col_bands()) + "/s" +
         std::to_string(blocks.size()) + "/p" + std::to_string(pruned_blocks);
}

DensityGrid BuildDensityGrid(const CsrMatrix& a, const CsrMatrix& b,
                             const DensityGridOptions& opts) {
  JPMM_CHECK(a.cols() == b.rows());
  static Counter& grids_built =
      MetricsRegistry::Global().GetCounter("jpmm_partition_grids_built_total");
  grids_built.Add();
  DensityGrid g;
  const size_t rows = a.rows();
  const size_t inner = a.cols();
  const size_t cols = b.cols();
  const size_t rb = std::max<size_t>(1, opts.row_block);
  const SparseKernelRates* rates = opts.rates;
  if (rates == nullptr) rates = &SparseKernelRates::Default();

  g.row_perm.resize(rows);
  std::iota(g.row_perm.begin(), g.row_perm.end(), 0u);
  g.col_perm.resize(cols);
  std::iota(g.col_perm.begin(), g.col_perm.end(), 0u);
  g.row_bands = {0, static_cast<uint32_t>(rows)};
  g.col_bands = {0, static_cast<uint32_t>(cols)};
  if (rows == 0 || cols == 0 || inner == 0) {
    g.grid_blocks = 0;
    return g;
  }

  // Degree-sorted remaps: rows by descending nnz, output columns by
  // descending incidence count (stable, index tie-break — the remap must be
  // a deterministic bijection).
  std::stable_sort(g.row_perm.begin(), g.row_perm.end(),
                   [&](uint32_t x, uint32_t y) {
                     return a.RowRangeNnz(x, x + 1) > a.RowRangeNnz(y, y + 1);
                   });
  std::vector<uint64_t> col_cnt(cols, 0);
  for (size_t y = 0; y < inner; ++y) {
    for (uint32_t c : b.Row(y)) ++col_cnt[c];
  }
  std::stable_sort(
      g.col_perm.begin(), g.col_perm.end(),
      [&](uint32_t x, uint32_t y) { return col_cnt[x] > col_cnt[y]; });

  // Per-chunk nnz in remapped row order; row bands are unions of chunks so
  // the executing join's work units never straddle a band.
  const size_t chunks = (rows + rb - 1) / rb;
  std::vector<uint64_t> chunk_nnz(chunks, 0);
  for (size_t ci = 0; ci < chunks; ++ci) {
    const size_t r1 = std::min(rows, (ci + 1) * rb);
    for (size_t r = ci * rb; r < r1; ++r) {
      const uint32_t orig = g.row_perm[r];
      chunk_nnz[ci] += a.RowRangeNnz(orig, orig + 1);
    }
  }

  // Uniform baseline: the unpermuted row-block plan, priced per chunk with
  // the same per-block kernel choice PlanProductBlocks would make.
  double uniform = 0.0;
  for (size_t ci = 0; ci < chunks; ++ci) {
    const size_t r0 = ci * rb;
    const size_t r1 = std::min(rows, r0 + rb);
    const uint64_t nnz = a.RowRangeNnz(r0, r1);
    const double expand = CsrCsrExpandOps(a, b, r0, r1);
    const ProductKernel k =
        PickKernel(r1 - r0, inner, cols, nnz, expand, *rates, opts.mode,
                   opts.allow_dense, opts.allow_csr_dense);
    uniform += BlockSeconds(r1 - r0, inner, cols, nnz, expand, *rates, k);
  }
  g.est_uniform_seconds = uniform;

  // Shape search: powers-of-two band counts, equal-nnz splits, exact
  // per-cell witness bounds, priced per scheduled cell. The remap + band
  // slice builds cost a few streaming passes over both operands; price them
  // so a shape only wins when the kernel savings pay for the setup.
  struct Shape {
    std::vector<size_t> row_bounds;  // chunk indices
    std::vector<size_t> col_bounds;  // remapped column offsets
    std::vector<double> expand;      // per grid cell, row-band-major
    std::vector<uint64_t> band_nnz;  // per row band
    size_t nr = 0, nc = 0;
    uint64_t pruned = 0;
    double seconds = 0.0;
  };
  Shape best;
  bool have_best = false;
  std::vector<size_t> col_band_of(cols);
  std::vector<uint32_t> bandcnt;
  for (size_t nc = 1; nc <= std::min(opts.max_col_bands, cols); nc *= 2) {
    // Column bands: equal incidence weight over the remapped columns.
    std::vector<uint64_t> perm_col_cnt(cols);
    for (size_t k = 0; k < cols; ++k) perm_col_cnt[k] = col_cnt[g.col_perm[k]];
    const std::vector<size_t> col_bounds = EquiWeightBands(perm_col_cnt, nc);
    const size_t ncb = col_bounds.size() - 1;
    for (size_t j = 0; j < ncb; ++j) {
      for (size_t k = col_bounds[j]; k < col_bounds[j + 1]; ++k) {
        col_band_of[g.col_perm[k]] = j;
      }
    }
    // Per-inner-value incidence per column band, then per (chunk, band)
    // exact expansion bound: sum over A entries of the matching B row's
    // band-restricted nnz. Zero bound == provably empty cell.
    bandcnt.assign(inner * ncb, 0);
    for (size_t y = 0; y < inner; ++y) {
      uint32_t* row = bandcnt.data() + y * ncb;
      for (uint32_t c : b.Row(y)) ++row[col_band_of[c]];
    }
    std::vector<double> chunk_expand(chunks * ncb, 0.0);
    for (size_t ci = 0; ci < chunks; ++ci) {
      double* cell = chunk_expand.data() + ci * ncb;
      const size_t r1 = std::min(rows, (ci + 1) * rb);
      for (size_t r = ci * rb; r < r1; ++r) {
        for (uint32_t y : a.Row(g.row_perm[r])) {
          const uint32_t* row = bandcnt.data() + static_cast<size_t>(y) * ncb;
          for (size_t j = 0; j < ncb; ++j) cell[j] += row[j];
        }
      }
    }

    for (size_t nr = 1; nr <= std::min(opts.max_row_bands, chunks); nr *= 2) {
      Shape s;
      s.row_bounds = EquiWeightBands(chunk_nnz, nr);
      s.col_bounds = col_bounds;
      s.nr = s.row_bounds.size() - 1;
      s.nc = ncb;
      s.expand.assign(s.nr * s.nc, 0.0);
      s.band_nnz.assign(s.nr, 0);
      double cost = 0.0;
      for (size_t i = 0; i < s.nr; ++i) {
        const size_t c0 = s.row_bounds[i];
        const size_t c1 = s.row_bounds[i + 1];
        const size_t band_rows =
            std::min(rows, c1 * rb) - c0 * rb;
        uint64_t nnz = 0;
        for (size_t ci = c0; ci < c1; ++ci) nnz += chunk_nnz[ci];
        s.band_nnz[i] = nnz;
        for (size_t j = 0; j < s.nc; ++j) {
          double expand = 0.0;
          for (size_t ci = c0; ci < c1; ++ci) {
            expand += chunk_expand[ci * s.nc + j];
          }
          s.expand[i * s.nc + j] = expand;
          if (expand <= 0.0) {
            ++s.pruned;
            continue;
          }
          const uint64_t w = s.col_bounds[j + 1] - s.col_bounds[j];
          const ProductKernel k =
              PickKernel(band_rows, inner, w, nnz, expand, *rates, opts.mode,
                         opts.allow_dense, opts.allow_csr_dense);
          cost += BlockSeconds(band_rows, inner, w, nnz, expand, *rates, k);
        }
      }
      const double overhead_ops =
          2.0 * (static_cast<double>(a.nnz()) + static_cast<double>(b.nnz())) +
          static_cast<double>(rows) + static_cast<double>(cols) +
          static_cast<double>(inner) * static_cast<double>(s.nc);
      s.seconds = cost + SparseProductSeconds(overhead_ops,
                                              rates->CsrDenseRate(1.0));
      if (!have_best || s.seconds < best.seconds) {
        best = std::move(s);
        have_best = true;
      }
    }
  }

  // Materialize the winning shape.
  g.row_bands.clear();
  for (size_t bound : best.row_bounds) {
    g.row_bands.push_back(
        static_cast<uint32_t>(std::min(rows, bound * rb)));
  }
  g.col_bands.assign(best.col_bounds.begin(), best.col_bounds.end());
  g.grid_blocks = static_cast<uint64_t>(best.nr) * best.nc;
  g.pruned_blocks = best.pruned;
  g.est_seconds = best.seconds;
  for (size_t i = 0; i < best.nr; ++i) {
    const uint32_t r0 = g.row_bands[i];
    const uint32_t r1 = g.row_bands[i + 1];
    for (size_t j = 0; j < best.nc; ++j) {
      if (best.expand[i * best.nc + j] <= 0.0) continue;
      BlockKernelChoice c;
      c.row_begin = r0;
      c.row_end = r1;
      c.col_begin = static_cast<uint32_t>(best.col_bounds[j]);
      c.col_end = static_cast<uint32_t>(best.col_bounds[j + 1]);
      c.nnz = best.band_nnz[i];
      const double cells = static_cast<double>(r1 - r0) *
                           static_cast<double>(std::max<size_t>(1, inner));
      c.density = cells > 0.0 ? static_cast<double>(c.nnz) / cells : 0.0;
      c.kernel = PickKernel(r1 - r0, inner, c.col_end - c.col_begin, c.nnz,
                            best.expand[i * best.nc + j], *rates, opts.mode,
                            opts.allow_dense, opts.allow_csr_dense);
      g.blocks.push_back(c);
    }
  }
  // The grid must save enough to pay for the remap with margin, or prune
  // real work; a 1x1 grid with nothing pruned is the uniform plan plus
  // overhead and is never beneficial.
  g.beneficial =
      g.est_seconds < 0.95 * g.est_uniform_seconds &&
      (g.num_row_bands() > 1 || g.num_col_bands() > 1 || g.pruned_blocks > 0);
  return g;
}

}  // namespace jpmm
