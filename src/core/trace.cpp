#include "core/trace.h"

#include <algorithm>
#include <cstdio>
#include <string_view>

#include "common/check.h"

namespace jpmm {

TraceRecorder::TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {}

double TraceRecorder::Now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

TraceRecorder::SpanId TraceRecorder::Begin(const char* name, SpanId parent) {
  const double t = Now();
  std::lock_guard<std::mutex> lock(mu_);
  JPMM_CHECK(parent >= kNoParent &&
             parent < static_cast<SpanId>(spans_.size()));
  TraceSpan span;
  span.name = name;
  span.parent = parent;
  span.begin_s = t;
  spans_.push_back(std::move(span));
  return static_cast<SpanId>(spans_.size() - 1);
}

void TraceRecorder::End(SpanId id) {
  const double t = Now();
  std::lock_guard<std::mutex> lock(mu_);
  JPMM_CHECK(id >= 0 && id < static_cast<SpanId>(spans_.size()));
  spans_[static_cast<size_t>(id)].end_s = t;
}

void TraceRecorder::End(SpanId id, std::string detail) {
  const double t = Now();
  std::lock_guard<std::mutex> lock(mu_);
  JPMM_CHECK(id >= 0 && id < static_cast<SpanId>(spans_.size()));
  spans_[static_cast<size_t>(id)].end_s = t;
  spans_[static_cast<size_t>(id)].detail = std::move(detail);
}

void TraceRecorder::Annotate(SpanId id, std::string detail) {
  std::lock_guard<std::mutex> lock(mu_);
  JPMM_CHECK(id >= 0 && id < static_cast<SpanId>(spans_.size()));
  spans_[static_cast<size_t>(id)].detail = std::move(detail);
}

bool TraceRecorder::AllClosed() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const TraceSpan& s : spans_) {
    if (s.end_s < 0) return false;
  }
  return true;
}

size_t TraceRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

std::vector<TraceSpan> TraceRecorder::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

size_t TraceRecorder::CountNamed(const char* name) const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const TraceSpan& s : spans_) {
    if (std::string_view(s.name) == name) ++n;
  }
  return n;
}

namespace {

// Children of each span, in recording order.
std::vector<std::vector<size_t>> ChildIndex(const std::vector<TraceSpan>& spans) {
  std::vector<std::vector<size_t>> children(spans.size());
  for (size_t i = 0; i < spans.size(); ++i) {
    const int32_t p = spans[i].parent;
    if (p >= 0) children[static_cast<size_t>(p)].push_back(i);
  }
  return children;
}

int32_t FirstRoot(const std::vector<TraceSpan>& spans) {
  for (size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].parent == TraceRecorder::kNoParent) {
      return static_cast<int32_t>(i);
    }
  }
  return -1;
}

struct NameGroup {
  const char* name;
  size_t count = 0;
  double seconds = 0.0;
  size_t first = 0;  // first span index, for detail + recursion
};

// Aggregates sibling spans by name, preserving first-seen order. Repeated
// names (light chunks, heavy blocks) collapse to one "name xN" line.
std::vector<NameGroup> GroupByName(const std::vector<TraceSpan>& spans,
                                   const std::vector<size_t>& sibs) {
  std::vector<NameGroup> groups;
  for (size_t idx : sibs) {
    const TraceSpan& s = spans[idx];
    NameGroup* g = nullptr;
    for (NameGroup& cand : groups) {
      if (std::string_view(cand.name) == s.name) {
        g = &cand;
        break;
      }
    }
    if (g == nullptr) {
      groups.push_back(NameGroup{s.name, 0, 0.0, idx});
      g = &groups.back();
    }
    ++g->count;
    g->seconds += s.Seconds();
  }
  return groups;
}

void RenderNode(const std::vector<TraceSpan>& spans,
                const std::vector<std::vector<size_t>>& children, size_t idx,
                int depth, double root_seconds, std::string* out) {
  const TraceSpan& s = spans[idx];
  char line[256];
  const std::string label(s.name);
  const double ms = s.Seconds() * 1e3;
  const double pct = root_seconds > 0 ? 100.0 * s.Seconds() / root_seconds : 0;
  std::snprintf(line, sizeof(line), "%-*s%-*s %9.3f ms %5.1f%%%s%s%s\n",
                depth * 2, "", std::max(1, 40 - depth * 2), label.c_str(), ms,
                pct, s.detail.empty() ? "" : "  [", s.detail.c_str(),
                s.detail.empty() ? "" : "]");
  *out += line;
  for (const NameGroup& g : GroupByName(spans, children[idx])) {
    if (g.count == 1) {
      RenderNode(spans, children, g.first, depth + 1, root_seconds, out);
    } else {
      const double gms = g.seconds * 1e3;
      const double gpct =
          root_seconds > 0 ? 100.0 * g.seconds / root_seconds : 0;
      std::snprintf(line, sizeof(line), "%-*s%s x%zu", (depth + 1) * 2, "",
                    g.name, g.count);
      std::string label2(line);
      std::snprintf(line, sizeof(line), "%-*s %9.3f ms %5.1f%%\n",
                    std::max<int>(40, static_cast<int>(label2.size())),
                    label2.c_str(), gms, gpct);
      *out += line;
    }
  }
}

}  // namespace

double TraceRecorder::ChildCoverage() const {
  const std::vector<TraceSpan> snap = spans();
  const int32_t root = FirstRoot(snap);
  if (root < 0 || snap[static_cast<size_t>(root)].Seconds() <= 0) return 0.0;
  double covered = 0.0;
  for (const TraceSpan& s : snap) {
    if (s.parent == root) covered += s.Seconds();
  }
  return covered / snap[static_cast<size_t>(root)].Seconds();
}

std::string TraceRecorder::Render() const {
  const std::vector<TraceSpan> snap = spans();
  if (snap.empty()) return "(no spans)\n";
  const std::vector<std::vector<size_t>> children = ChildIndex(snap);
  std::string out;
  for (size_t i = 0; i < snap.size(); ++i) {
    if (snap[i].parent != kNoParent) continue;
    const double root_seconds = snap[i].Seconds();
    RenderNode(snap, children, i, 0, root_seconds, &out);
  }
  return out;
}

}  // namespace jpmm
