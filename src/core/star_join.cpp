#include "core/star_join.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <limits>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/check.h"
#include "common/hash.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/cancel_token.h"
#include "core/mm_join.h"
#include "core/result_sink.h"
#include "core/trace.h"
#include "join/intersection.h"
#include "matrix/dense_matrix.h"
#include "matrix/matmul.h"
#include "matrix/sparse_matrix.h"

namespace jpmm {
namespace {

// Streaming tuple delivery for sink-driven star queries. The star
// decomposition can produce one output tuple from several steps (a tuple
// may have both light and heavy witnesses), so incremental delivery needs
// a global dedup: EmitBatch sort-uniques the batch, streams the tuples
// never seen before into the sink, and folds them into the sorted `seen`
// union. Batches arrive from many workers; the mutex serializes them (the
// per-batch merge is O(|seen| + |batch|), paid only for sinks that can
// finish early — everyone else gets one post-evaluation stream).
struct StarEmitter {
  ResultSink* sink = nullptr;
  bool streaming = false;
  std::mutex mu;
  TupleBuffer seen;

  explicit StarEmitter(uint32_t arity) : seen(arity) {}

  void EmitBatch(TupleBuffer* batch, int worker) {
    if (batch->empty()) return;
    batch->SortUnique();
    const uint32_t k = seen.arity();
    std::lock_guard<std::mutex> lock(mu);
    ResultSink::Shard& shard = sink->shard(worker);
    TupleBuffer merged(k);
    const size_t ns = seen.size();
    const size_t nb = batch->size();
    size_t i = 0, j = 0;
    auto less = [k](std::span<const Value> a, std::span<const Value> b) {
      return std::lexicographical_compare(a.begin(), a.end(), b.begin(),
                                          b.end());
    };
    while (i < ns || j < nb) {
      if (j >= nb) {
        merged.Add(seen.Get(i++));
      } else if (i >= ns) {
        shard.OnTuple(batch->Get(j));
        merged.Add(batch->Get(j++));
      } else if (less(seen.Get(i), batch->Get(j))) {
        merged.Add(seen.Get(i++));
      } else if (less(batch->Get(j), seen.Get(i))) {
        shard.OnTuple(batch->Get(j));
        merged.Add(batch->Get(j++));
      } else {
        merged.Add(seen.Get(i++));
        ++j;  // already delivered
      }
    }
    seen = std::move(merged);
  }
};

// Heavy combos are packed 32 bits per value into one 128-bit key (group
// sizes beyond 4 — star arity beyond 8 — would need the general path; the
// library checks that bound at entry).
using PackedCombo = unsigned __int128;

struct PackedComboHash {
  size_t operator()(PackedCombo v) const {
    return static_cast<size_t>(
        Mix64(static_cast<uint64_t>(v) ^ Mix64(static_cast<uint64_t>(v >> 64))));
  }
};

using RowMap = std::unordered_map<PackedCombo, Value, PackedComboHash>;

PackedCombo PackComboKey(const std::vector<Value>& combo) {
  PackedCombo key = 0;
  for (Value v : combo) key = (key << 32) | v;
  return key;
}

struct StarContext {
  const std::vector<const IndexedRelation*>& rels;
  Thresholds t;
  Value ny = 0;                    // y domain bound (max across relations)
  std::vector<uint8_t> heavy_cnt;  // #relations where deg_y(b) > delta1

  StarContext(const std::vector<const IndexedRelation*>& rels_in,
              Thresholds t_in)
      : rels(rels_in), t(t_in) {
    for (const auto* rel : rels) ny = std::max(ny, rel->num_y());
    heavy_cnt.assign(ny, 0);
    for (const auto* rel : rels) {
      for (Value b = 0; b < rel->num_y(); ++b) {
        if (rel->DegY(b) > t.delta1) ++heavy_cnt[b];
      }
    }
  }

  bool XiLight(size_t i, Value a) const {
    return rels[i]->DegX(a) <= t.delta2;
  }

  // y light in every relation except (possibly) j.
  bool LightAllExcept(size_t j, Value b) const {
    if (heavy_cnt[b] == 0) return true;
    return heavy_cnt[b] == 1 && rels[j]->DegY(b) > t.delta1;
  }
};

// Steps (1) and (2): the combinatorial light part shared by MM and Non-MM.
//
// Two refinements over a literal reading of §3.2, both output-preserving:
//   - Step 2-j enumerates the *full* per-y product wherever y is light in
//     all relations but (possibly) j, so those y values need no step-1
//     coverage at all; step 1-j therefore only expands y values heavy in
//     >= 2 relations. On sparse inputs (no such y) step 1 disappears and
//     the light part degenerates to a single WCOJ pass.
//   - A y light in *every* relation satisfies step 2's condition for every
//     j; it is claimed by j = 0 alone to avoid k identical enumerations.
TupleBuffer LightSteps(const StarContext& ctx, int threads, StarEmitter* em,
                       const CancelToken* cancel, uint64_t* steps_total,
                       uint64_t* steps_executed, uint64_t* steps_skipped,
                       bool* interrupted) {
  const size_t k = ctx.rels.size();
  TupleBuffer out(static_cast<uint32_t>(k));

  bool any_shared_heavy = false;
  for (Value b = 0; b < ctx.ny && !any_shared_heavy; ++b) {
    any_shared_heavy = ctx.heavy_cnt[b] >= 2;
  }
  const uint64_t steps_per_j = any_shared_heavy ? 2 : 1;
  *steps_total = k * steps_per_j;

  auto deliver = [&](TupleBuffer* part) {
    if (em->streaming) {
      em->EmitBatch(part, /*worker=*/0);
    } else {
      out.Append(*part);
    }
  };
  auto cancel_fired = [&]() -> bool {
    if (cancel != nullptr && cancel->Fired()) {
      *interrupted = true;
      return true;
    }
    return false;
  };

  for (size_t j = 0; j < k; ++j) {
    // Cooperative early exit between light steps (a "light bucket" here is
    // one decomposition step): once the sink is satisfied — or the cancel
    // token fires — the remaining steps are skipped and counted.
    if ((em->sink != nullptr && em->sink->done()) || cancel_fired()) {
      *steps_skipped += (k - j) * steps_per_j;
      break;
    }
    if (any_shared_heavy) {
      // Step 1-j: substitute R-j (light xj tuples only), restricted to y
      // values not already fully covered by step 2.
      TupleBuffer part = StarJoinProjectWcoj(
          ctx.rels,
          [&ctx, j](size_t rel, Value a, Value) {
            return rel != j || ctx.XiLight(j, a);
          },
          [&ctx](Value b) { return ctx.heavy_cnt[b] >= 2; }, threads);
      deliver(&part);
      ++*steps_executed;
      // Mid-iteration token poll: a deadline can fire between step 1-j and
      // step 2-j, not just between j iterations.
      if (cancel_fired()) {
        *steps_skipped += (k - j) * steps_per_j - 1;
        break;
      }
    }

    // Step 2-j: substitute R<>j — only y values light in all other
    // relations.
    TupleBuffer part2 = StarJoinProjectWcoj(
        ctx.rels, nullptr,
        [&ctx, j](Value b) {
          if (ctx.heavy_cnt[b] == 0) return j == 0;
          return ctx.LightAllExcept(j, b);
        },
        threads);
    deliver(&part2);
    ++*steps_executed;
  }
  return out;
}

// Approximate bytes the sparse registration of one group holds: the
// incidence list, the flat combo rows, and the hash map (amortized ~48 B
// per combo). This — not the dense rows x cols cell count — is what the
// memory-cap retry loop bounds: the dense representations are gated
// per-block later (falling back to the CSR kernels), so a sparse-but-wide
// heavy part must not force thresholds up.
uint64_t RegistrationBytes(size_t combos, size_t group_size, size_t entries) {
  return static_cast<uint64_t>(entries) * sizeof(std::pair<Value, Value>) +
         static_cast<uint64_t>(combos) * group_size * sizeof(Value) +
         static_cast<uint64_t>(combos) * 48;
}

// Heavy-combo registration for one variable group over the shared columns.
// Returns the number of (row, col) incidences; fills row_map / rows_flat /
// entries. Aborts early (returns false) if the registration working set
// exceeds max_bytes.
bool RegisterGroup(const StarContext& ctx, const std::vector<size_t>& group,
                   const std::vector<Value>& cols, uint64_t max_bytes,
                   RowMap* row_map, std::vector<Value>* rows_flat,
                   std::vector<std::pair<Value, Value>>* entries) {
  const size_t g = group.size();
  std::vector<std::vector<Value>> lists(g);
  std::vector<Value> combo(g);
  for (size_t col = 0; col < cols.size(); ++col) {
    const Value b = cols[col];
    bool empty = false;
    for (size_t i = 0; i < g; ++i) {
      lists[i].clear();
      for (Value a : ctx.rels[group[i]]->XsOf(b)) {
        if (!ctx.XiLight(group[i], a)) lists[i].push_back(a);
      }
      if (lists[i].empty()) {
        empty = true;
        break;
      }
    }
    if (empty) continue;

    std::vector<size_t> pos(g, 0);
    for (size_t i = 0; i < g; ++i) combo[i] = lists[i][0];
    for (;;) {
      auto [it, inserted] = row_map->try_emplace(
          PackComboKey(combo), static_cast<Value>(row_map->size()));
      if (inserted) {
        rows_flat->insert(rows_flat->end(), combo.begin(), combo.end());
      }
      entries->emplace_back(it->second, static_cast<Value>(col));
      // Checked on every incidence, not just combo insertions: the entry
      // list keeps growing even when no new combo appears.
      if (RegistrationBytes(row_map->size(), g, entries->size()) >
          max_bytes) {
        return false;
      }

      size_t dim = g;
      bool done = false;
      while (dim > 0) {
        --dim;
        if (++pos[dim] < lists[dim].size()) {
          combo[dim] = lists[dim][pos[dim]];
          break;
        }
        pos[dim] = 0;
        combo[dim] = lists[dim][0];
        if (dim == 0) {
          done = true;
          break;
        }
      }
      if (done) break;
    }
  }
  return true;
}

// Shared columns of the heavy step: y heavy in >= 2 relations and adjacent
// to at least one heavy x value in every relation.
std::vector<Value> HeavyColumns(const StarContext& ctx) {
  std::vector<Value> cols;
  const size_t k = ctx.rels.size();
  for (Value b = 0; b < ctx.ny; ++b) {
    if (ctx.heavy_cnt[b] < 2) continue;
    bool ok = true;
    for (size_t i = 0; i < k && ok; ++i) {
      bool has_heavy = false;
      for (Value a : ctx.rels[i]->XsOf(b)) {
        if (!ctx.XiLight(i, a)) {
          has_heavy = true;
          break;
        }
      }
      ok = has_heavy;
    }
    if (ok) cols.push_back(b);
  }
  return cols;
}

struct HeavyGroups {
  std::vector<Value> cols;
  RowMap map1, map2;
  std::vector<Value> rows1_flat, rows2_flat;  // stride g1 / g2
  std::vector<std::pair<Value, Value>> entries1, entries2;  // (row, col)
  bool fits = false;
};

HeavyGroups BuildHeavyGroups(const StarContext& ctx, uint64_t max_bytes) {
  const size_t k = ctx.rels.size();
  const size_t g1 = (k + 1) / 2;
  std::vector<size_t> group1, group2;
  for (size_t i = 0; i < g1; ++i) group1.push_back(i);
  for (size_t i = g1; i < k; ++i) group2.push_back(i);

  HeavyGroups hg;
  hg.cols = HeavyColumns(ctx);
  if (hg.cols.empty()) {
    hg.fits = true;
    return hg;
  }
  hg.fits = RegisterGroup(ctx, group1, hg.cols, max_bytes, &hg.map1,
                          &hg.rows1_flat, &hg.entries1) &&
            RegisterGroup(ctx, group2, hg.cols, max_bytes, &hg.map2,
                          &hg.rows2_flat, &hg.entries2);
  return hg;
}

}  // namespace

TupleBuffer WcojStarJoin(const std::vector<const IndexedRelation*>& rels,
                         int threads) {
  return StarJoinProjectWcoj(rels, nullptr, nullptr, threads);
}

Thresholds ChooseStarThresholds(
    const std::vector<const IndexedRelation*>& rels) {
  JPMM_CHECK(rels.size() >= 2);
  const size_t k = rels.size();
  const size_t g1 = (k + 1) / 2;

  Value ny = 0;
  uint32_t max_xdeg = 1;
  for (const auto* rel : rels) {
    ny = std::max(ny, rel->num_y());
    for (Value a = 0; a < rel->num_x(); ++a) {
      max_xdeg = std::max(max_xdeg, rel->DegX(a));
    }
  }

  double best_cost = -1.0;
  Thresholds best{max_xdeg, max_xdeg};
  for (uint64_t delta = 1; delta <= 2ull * max_xdeg; delta *= 2) {
    // Global heavy-x counts per relation (rows1/rows2 upper bound).
    double hx_prod1 = 1.0, hx_prod2 = 1.0;
    for (size_t i = 0; i < k; ++i) {
      uint64_t heavy = 0;
      for (Value a = 0; a < rels[i]->num_x(); ++a) {
        if (rels[i]->DegX(a) > delta) ++heavy;
      }
      if (i < g1) {
        hx_prod1 *= std::max<double>(1.0, static_cast<double>(heavy));
      } else {
        hx_prod2 *= std::max<double>(1.0, static_cast<double>(heavy));
      }
    }

    double light_cost = 0.0;   // exact step-1/2 enumeration volume
    double e1 = 0.0, e2 = 0.0; // registration volumes (matrix build)
    double cols = 0.0;
    std::vector<double> d(k), hd(k);
    for (Value b = 0; b < ny; ++b) {
      int heavy_cnt = 0;
      double prod_all = 1.0;
      bool any_zero = false;
      for (size_t i = 0; i < k; ++i) {
        d[i] = rels[i]->DegY(b);
        if (d[i] == 0.0) {
          any_zero = true;
          break;
        }
        prod_all *= d[i];
        if (d[i] > static_cast<double>(delta)) ++heavy_cnt;
        // Exact heavy-x count in this adjacency list.
        uint64_t heavy = 0;
        for (Value a : rels[i]->XsOf(b)) {
          if (rels[i]->DegX(a) > delta) ++heavy;
        }
        hd[i] = static_cast<double>(heavy);
      }
      if (any_zero) continue;
      if (heavy_cnt <= 1) {
        light_cost += prod_all;  // step 2 enumerates the full product once
      } else {
        // Step 1-j at this b: one light list times the full others.
        for (size_t j = 0; j < k; ++j) {
          light_cost += (d[j] - hd[j]) * prod_all / d[j];
        }
        double heavy_prod1 = 1.0, heavy_prod2 = 1.0;
        for (size_t i = 0; i < k; ++i) {
          if (i < g1) {
            heavy_prod1 *= hd[i];
          } else {
            heavy_prod2 *= hd[i];
          }
        }
        e1 += heavy_prod1;
        e2 += heavy_prod2;
        if (heavy_prod1 > 0 && heavy_prod2 > 0) cols += 1.0;
      }
    }

    const double rows1 = std::min(e1, hx_prod1);
    const double rows2 = std::min(e2, hx_prod2);
    // Relative operation weights: enumeration/registration ~1 per visited
    // tuple, FMA-vectorized matrix flops ~0.01, product scan ~0.5.
    const double cost = light_cost + e1 + e2 +
                        0.01 * rows1 * std::max(1.0, cols) * rows2 +
                        0.5 * rows1 * rows2;
    if (best_cost < 0 || cost < best_cost) {
      best_cost = cost;
      best = Thresholds{delta, delta};
    }
  }
  return best;
}

StarJoinResult MmStarJoin(const std::vector<const IndexedRelation*>& rels,
                          const StarJoinOptions& options) {
  JPMM_CHECK(rels.size() >= 2);
  JPMM_CHECK_MSG(rels.size() <= 8, "combo packing supports k <= 8");
  const size_t k = rels.size();
  const size_t g1 = (k + 1) / 2;
  const size_t g2 = k - g1;
  const int threads = std::max(1, options.threads);

  Thresholds t = options.thresholds;
  t.delta1 = std::max<uint64_t>(1, t.delta1);
  t.delta2 = std::max<uint64_t>(1, t.delta2);


  StarJoinResult result;
  result.tuples = TupleBuffer(static_cast<uint32_t>(k));

  // Retry with doubled thresholds until the heavy part fits: the sparse
  // registration must always fit, and the dense representations must fit
  // whenever a forced mode will unconditionally materialize them (under
  // kAuto they are gated off per block instead — see below).
  TraceRecorder* const trace = options.trace;
  const TraceRecorder::SpanId tparent = options.trace_parent;
  TraceRecorder::Scope fit_scope(trace, "threshold-fit", tparent);
  const size_t row_block = std::max<size_t>(1, options.row_block);
  std::unique_ptr<StarContext> ctx;
  HeavyGroups hg;
  for (;;) {
    ctx = std::make_unique<StarContext>(rels, t);
    hg = BuildHeavyGroups(*ctx, options.max_matrix_bytes);
    bool fits = hg.fits;
    if (fits && (options.heavy_path == HeavyPathMode::kForceDense ||
                 options.heavy_path == HeavyPathMode::kForceCsrDense)) {
      const uint64_t vr = hg.map1.size();
      const uint64_t wr = hg.map2.size();
      const uint64_t cn = hg.cols.size();
      const uint64_t blocks = (vr + row_block - 1) / row_block;
      const uint64_t workers = std::min<uint64_t>(
          static_cast<uint64_t>(threads), std::max<uint64_t>(1, blocks));
      uint64_t needed = CsrBytes(vr, hg.entries1.size()) +
                        CsrBytes(cn, hg.entries2.size()) +
                        4 * cn * wr +                    // dense W^T
                        4 * workers * row_block * wr;    // product buffers
      if (options.heavy_path == HeavyPathMode::kForceDense) {
        needed += 4 * vr * cn + PackedBBytes(cn, wr);
      }
      fits = needed <= options.max_matrix_bytes;
    }
    if (fits) break;
    t.delta1 *= 2;
    t.delta2 *= 2;
  }
  fit_scope.Close();
  result.adjusted_thresholds = t;
  result.v_rows = hg.map1.size();
  result.w_rows = hg.map2.size();
  result.heavy_y = hg.cols.size();

  ResultSink* sink = options.sink;
  if (sink != nullptr) sink->Open(threads);
  StarEmitter em(static_cast<uint32_t>(k));
  em.sink = sink;
  em.streaming = sink != nullptr && sink->may_finish_early();
  std::atomic<uint64_t> blocks_executed{0};
  std::atomic<uint64_t> blocks_skipped{0};
  std::atomic<bool> interrupted{false};
  const CancelToken* cancel = options.cancel;
  auto cancel_fired = [&]() -> bool {
    if (cancel != nullptr && cancel->Fired()) {
      interrupted.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  };

  WallTimer light_timer;
  bool light_interrupted = false;
  TraceRecorder::Scope light_scope(trace, "light-pass", tparent);
  TupleBuffer light = LightSteps(
      *ctx, threads, &em, cancel, &result.light_steps_total,
      &result.light_steps_executed, &result.light_steps_skipped,
      &light_interrupted);
  light_scope.Close();
  if (light_interrupted) interrupted.store(true, std::memory_order_relaxed);
  result.tuples.Append(light);
  result.light_seconds = light_timer.Seconds();

  if (result.v_rows > 0 && result.w_rows > 0 &&
      ((sink != nullptr && sink->done()) || cancel_fired())) {
    // Light steps satisfied the sink: account every planned block as
    // skipped without building the heavy operands at all. ceil(v_rows /
    // row_block) must equal PlanProductBlocks' block count so the total is
    // the same whether the heavy phase ran or not (see the mm_join.cpp
    // audit note).
    result.heavy_blocks_total = (result.v_rows + row_block - 1) / row_block;
    blocks_skipped.store(result.heavy_blocks_total);
  } else if (result.v_rows > 0 && result.w_rows > 0) {
    WallTimer heavy_timer;
    TraceRecorder::Scope heavy_scope(trace, "heavy", tparent);
    const TraceRecorder::SpanId heavy_id = heavy_scope.id();
    // CSR operands first (they are just the registered incidences, row
    // offsets + column ids); dense V / W^T only materialize if the
    // per-block dispatch sends some block to a float kernel.
    const TraceRecorder::SpanId csr_span =
        TraceBegin(trace, "csr-build", heavy_id);
    const size_t cols_n = hg.cols.size();
    const CsrMatrix csr_v =
        CsrMatrix::FromEntries(result.v_rows, cols_n, hg.entries1);
    const CsrMatrix csr_wt = CsrMatrix::FromEntries(
        cols_n, result.w_rows, hg.entries2, /*swapped=*/true);
    TraceEnd(trace, csr_span);
    result.v_nnz = csr_v.nnz();
    result.w_nnz = csr_wt.nnz();
    result.heavy_density = csr_v.Density();

    const uint64_t blocks64 = (result.v_rows + row_block - 1) / row_block;
    const uint64_t block_workers = std::min<uint64_t>(
        static_cast<uint64_t>(threads), std::max<uint64_t>(1, blocks64));
    // Representation gates mirror mm_join's: dense V/W^T + the packed slab
    // + per-worker float buffers must fit the cap, or those kernels are off
    // the table for this query (the CSR floor always runs).
    const uint64_t csr_bytes = csr_v.SizeBytes() + csr_wt.SizeBytes();
    const uint64_t acc = 4 * block_workers * row_block * result.w_rows;
    const uint64_t wt_dense = 4 * cols_n * result.w_rows;
    const uint64_t dense_full = 4 * result.v_rows * cols_n + wt_dense +
                                PackedBBytes(cols_n, result.w_rows) + acc;
    bool allow_dense = true;
    bool allow_csr_dense = true;
    if (options.heavy_path == HeavyPathMode::kAuto) {
      allow_dense = csr_bytes + dense_full <= options.max_matrix_bytes;
      allow_csr_dense =
          csr_bytes + wt_dense + acc <= options.max_matrix_bytes;
    }
    // Work units are ceil(v_rows / row_block) chunks whether the product
    // runs the uniform plan or the density-adaptive grid, so the early-exit
    // accounting (executed + skipped == total) is mode-invariant.
    const size_t num_chunks = static_cast<size_t>(blocks64);
    result.heavy_blocks_total = num_chunks;
    std::vector<TupleBuffer> partial(static_cast<size_t>(threads),
                                     TupleBuffer(static_cast<uint32_t>(k)));
    std::vector<std::vector<float>> bufs(static_cast<size_t>(threads));
    std::vector<CsrScratch> scratch(static_cast<size_t>(threads));
    std::vector<SparseRowBlock> sparse_blocks(static_cast<size_t>(threads));

    // Density-adaptive decomposition (core/density_partition.h), as in
    // mm_join.cpp: kForce engages the grid whenever a heavy product exists,
    // kAuto only when the priced grid beats the uniform plan AND the
    // permuted operands + band slices fit the memory cap.
    DensityGrid grid;
    bool density = false;
    if (options.partition != PartitionMode::kOff) {
      DensityGridOptions go;
      go.row_block = row_block;
      go.mode = options.heavy_path;
      go.rates = options.sparse_rates;
      go.allow_dense = allow_dense;
      go.allow_csr_dense = allow_csr_dense;
      // Cross-execution memo, as in mm_join.cpp: a PreparedQuery re-running
      // against its immutable snapshots rebuilds the identical grid, so the
      // caller's DensityGridCache (keyed on adjusted thresholds + every
      // option the build reads) skips the remap entirely.
      const TraceRecorder::SpanId remap_span =
          TraceBegin(trace, "degree-remap", heavy_id);
      std::shared_ptr<const DensityGrid> memo =
          options.grid_cache == nullptr
              ? nullptr
              : options.grid_cache->Lookup(t, row_block, options.heavy_path,
                                           allow_dense, allow_csr_dense,
                                           options.sparse_rates);
      if (memo != nullptr) {
        grid = *memo;
        result.partition_cache_hit = true;
        if (MetricsEnabled()) {
          static Counter& grid_cache_hits = MetricsRegistry::Global().GetCounter(
              "jpmm_partition_grid_cache_hits_total");
          grid_cache_hits.Add();
        }
      } else {
        grid = BuildDensityGrid(csr_v, csr_wt, go);
        if (options.grid_cache != nullptr) {
          options.grid_cache->Store(t, row_block, options.heavy_path,
                                    allow_dense, allow_csr_dense,
                                    options.sparse_rates,
                                    std::make_shared<DensityGrid>(grid));
        }
      }
      TraceEnd(trace, remap_span,
               result.partition_cache_hit ? "cache-hit" : "cache-miss");
      density =
          options.partition == PartitionMode::kForce || grid.beneficial;
      if (density) {
        bool grid_dense = false;
        bool grid_float = false;
        for (const BlockKernelChoice& blk : grid.blocks) {
          grid_dense |= blk.kernel == ProductKernel::kDenseGemm;
          grid_float |= blk.kernel != ProductKernel::kCsrCsr;
        }
        uint64_t extra =
            CsrBytes(result.v_rows, result.v_nnz) +
            CsrBytes(cols_n, result.w_nnz) +
            8 * static_cast<uint64_t>(grid.num_col_bands()) * (cols_n + 1);
        if (grid_float) extra += wt_dense + acc;
        if (grid_dense) {
          extra += 4 * result.v_rows * cols_n +
                   PackedBBytes(cols_n, result.w_rows);
        }
        if (csr_bytes + extra > options.max_matrix_bytes) density = false;
      }
    }

    if (density) {
      result.partition_used = true;
      result.partition_row_bands = grid.num_row_bands();
      result.partition_col_bands = grid.num_col_bands();
      result.partition_blocks_scheduled = grid.blocks.size();
      result.partition_blocks_pruned = grid.pruned_blocks;
      result.partition_signature = grid.Signature();
      bool any_dense = false;
      bool any_float = false;
      for (const BlockKernelChoice& blk : grid.blocks) {
        switch (blk.kernel) {
          case ProductKernel::kDenseGemm:
            ++result.kernel_counts.dense;
            any_dense = true;
            any_float = true;
            break;
          case ProductKernel::kCsrDense:
            ++result.kernel_counts.csr_dense;
            any_float = true;
            break;
          case ProductKernel::kCsrCsr:
            ++result.kernel_counts.csr_csr;
            break;
        }
      }
      if (any_float) {
        JPMM_CHECK_MSG(cols_n < kMaxExactFloatCount,
                       "heavy inner dimension exceeds exact float count range");
      }

      // Permuted operands: V with its rows in remapped order, W^T sliced
      // into one matrix per column band with band-local column ids (the
      // shared inner dimension is unpermuted), so every existing kernel
      // runs unchanged on the slices.
      const TraceRecorder::SpanId pack_span =
          TraceBegin(trace, "pack", heavy_id);
      const CsrMatrix csr_vr = CsrMatrix::FromRows(
          result.v_rows, cols_n, threads,
          [&](size_t i, std::vector<uint32_t>* out) {
            for (uint32_t c : csr_v.Row(grid.row_perm[i])) out->push_back(c);
          });
      std::vector<uint32_t> inv_col(result.w_rows);
      for (size_t p = 0; p < grid.col_perm.size(); ++p) {
        inv_col[grid.col_perm[p]] = static_cast<uint32_t>(p);
      }
      const size_t ncb = grid.num_col_bands();
      std::vector<std::vector<std::pair<const BlockKernelChoice*, size_t>>>
          band_blocks(grid.num_row_bands());
      std::vector<uint8_t> band_any(ncb, 0);
      std::vector<uint8_t> band_float(ncb, 0);
      std::vector<uint8_t> band_dense(ncb, 0);
      for (const BlockKernelChoice& blk : grid.blocks) {
        size_t bi = 0;
        while (grid.row_bands[bi] != blk.row_begin) ++bi;
        size_t bj = 0;
        while (grid.col_bands[bj] != blk.col_begin) ++bj;
        band_blocks[bi].emplace_back(&blk, bj);
        band_any[bj] = 1;
        if (blk.kernel != ProductKernel::kCsrCsr) band_float[bj] = 1;
        if (blk.kernel == ProductKernel::kDenseGemm) band_dense[bj] = 1;
      }
      std::vector<CsrMatrix> wt_band(ncb);
      std::vector<Matrix> wt_band_dense(ncb);
      std::vector<PackedB> packed_band(ncb);
      for (size_t j = 0; j < ncb; ++j) {
        if (!band_any[j]) continue;
        const uint32_t cb0 = grid.col_bands[j];
        const uint32_t cb1 = grid.col_bands[j + 1];
        wt_band[j] = CsrMatrix::FromRows(
            cols_n, cb1 - cb0, threads,
            [&](size_t y, std::vector<uint32_t>* out) {
              for (uint32_t c : csr_wt.Row(y)) {
                const uint32_t p = inv_col[c];
                if (p >= cb0 && p < cb1) out->push_back(p - cb0);
              }
              std::sort(out->begin(), out->end());
            });
        if (band_float[j]) wt_band_dense[j] = wt_band[j].ToDense(threads);
        if (band_dense[j]) packed_band[j] = PackedB(wt_band_dense[j], threads);
      }
      Matrix vr;
      if (any_dense) vr = csr_vr.ToDense(threads);
      TraceEnd(trace, pack_span);

      // Chunks are the claimed work units; each lies inside exactly one row
      // band (bands snap to row_block multiples) and runs that band's
      // scheduled column-band blocks. Emission applies the inverse remap,
      // so tuples are identical to the uniform plan's.
      ParallelForDynamic(threads, num_chunks, /*grain=*/1, [&](size_t c0,
                                                               size_t c1,
                                                               int w) {
        std::vector<Value> tuple(k);
        TupleBuffer block_out(static_cast<uint32_t>(k));
        TupleBuffer& out =
            em.streaming ? block_out : partial[static_cast<size_t>(w)];
        auto emit = [&](size_t i, size_t j) {
          const Value* left = hg.rows1_flat.data() + i * g1;
          std::copy(left, left + g1, tuple.begin());
          const Value* right = hg.rows2_flat.data() + j * g2;
          std::copy(right, right + g2, tuple.begin() + g1);
          out.Add(tuple);
        };
        for (size_t ci = c0; ci < c1; ++ci) {
          if ((sink != nullptr && sink->done()) || cancel_fired()) {
            blocks_skipped.fetch_add(c1 - ci, std::memory_order_relaxed);
            return;
          }
          blocks_executed.fetch_add(1, std::memory_order_relaxed);
          const size_t r0 = ci * row_block;
          const size_t r1 =
              std::min(static_cast<size_t>(result.v_rows), r0 + row_block);
          const size_t nrows = r1 - r0;
          size_t bi = grid.num_row_bands() - 1;
          while (grid.row_bands[bi] > r0) --bi;
          for (const auto& [blk, j] : band_blocks[bi]) {
            TraceRecorder::Scope block_scope(
                trace, BlockSpanName(blk->kernel), heavy_id);
            const uint32_t cb0 = blk->col_begin;
            const size_t bw = blk->col_end - cb0;
            if (blk->kernel == ProductKernel::kCsrCsr) {
              auto& sblk = sparse_blocks[static_cast<size_t>(w)];
              CsrCsrRowRange(csr_vr, wt_band[j], r0, r1,
                             &scratch[static_cast<size_t>(w)], &sblk);
              for (size_t li = 0; li < nrows; ++li) {
                for (uint32_t col : sblk.RowCols(li)) {
                  emit(grid.row_perm[r0 + li], grid.col_perm[cb0 + col]);
                }
              }
            } else {
              std::vector<float>& buf = bufs[static_cast<size_t>(w)];
              buf.resize(row_block * bw);
              std::span<float> prod(buf.data(), nrows * bw);
              if (blk->kernel == ProductKernel::kDenseGemm) {
                MultiplyRowRange(vr, packed_band[j], r0, r1, prod);
              } else {
                CsrDenseRowRange(csr_vr, wt_band_dense[j], r0, r1, prod);
              }
              for (size_t li = 0; li < nrows; ++li) {
                const float* prow = buf.data() + li * bw;
                for (size_t jj = 0; jj < bw; ++jj) {
                  if (prow[jj] > 0.5f) {
                    emit(grid.row_perm[r0 + li], grid.col_perm[cb0 + jj]);
                  }
                }
              }
            }
          }
          if (em.streaming) {
            em.EmitBatch(&block_out, w);
            block_out = TupleBuffer(static_cast<uint32_t>(k));
          }
        }
      });
    } else {
      result.partition_signature = "uniform";
      const std::vector<BlockKernelChoice> choices = PlanProductBlocks(
          csr_v, csr_wt, row_block, options.heavy_path, options.sparse_rates,
          allow_dense, allow_csr_dense, &result.kernel_counts);
      const bool any_dense = result.kernel_counts.dense > 0;
      const bool any_float = any_dense || result.kernel_counts.csr_dense > 0;
      if (any_float) {
        // Witness counts accumulate in float cells on those paths; a cell's
        // maximum is the shared-column count, which must stay in exact
        // integer float range.
        JPMM_CHECK_MSG(cols_n < kMaxExactFloatCount,
                       "heavy inner dimension exceeds exact float count range");
      }
      const TraceRecorder::SpanId pack_span =
          TraceBegin(trace, "pack", heavy_id);
      Matrix v, wt;
      PackedB packed_wt;
      if (any_dense) v = csr_v.ToDense(threads);
      if (any_float) wt = csr_wt.ToDense(threads);
      if (any_dense) packed_wt = PackedB(wt, threads);
      TraceEnd(trace, pack_span);

      // Workers claim product blocks dynamically (per-block emit cost follows
      // the output distribution).
      ParallelForDynamic(threads, choices.size(), /*grain=*/1, [&](size_t b0,
                                                                   size_t b1,
                                                                   int w) {
        std::vector<Value> tuple(k);
        // Streaming sinks get each block's tuples as one dedup'd batch; the
        // materializing path appends to the per-worker buffer as before.
        TupleBuffer block_out(static_cast<uint32_t>(k));
        TupleBuffer& out =
            em.streaming ? block_out : partial[static_cast<size_t>(w)];
        auto emit = [&](size_t i, size_t j) {
          const Value* left = hg.rows1_flat.data() + i * g1;
          std::copy(left, left + g1, tuple.begin());
          const Value* right = hg.rows2_flat.data() + j * g2;
          std::copy(right, right + g2, tuple.begin() + g1);
          out.Add(tuple);
        };
        for (size_t blk = b0; blk < b1; ++blk) {
          if ((sink != nullptr && sink->done()) || cancel_fired()) {
            blocks_skipped.fetch_add(b1 - blk, std::memory_order_relaxed);
            return;
          }
          blocks_executed.fetch_add(1, std::memory_order_relaxed);
          const BlockKernelChoice& choice = choices[blk];
          TraceRecorder::Scope block_scope(trace, BlockSpanName(choice.kernel),
                                           heavy_id);
          const size_t r0 = choice.row_begin;
          const size_t r1 = choice.row_end;
          if (choice.kernel == ProductKernel::kCsrCsr) {
            auto& sblk = sparse_blocks[static_cast<size_t>(w)];
            CsrCsrRowRange(csr_v, csr_wt, r0, r1,
                           &scratch[static_cast<size_t>(w)], &sblk);
            for (size_t i = r0; i < r1; ++i) {
              for (uint32_t j : sblk.RowCols(i - r0)) emit(i, j);
            }
          } else {
            std::vector<float>& buf = bufs[static_cast<size_t>(w)];
            buf.resize(row_block * result.w_rows);
            if (choice.kernel == ProductKernel::kDenseGemm) {
              MultiplyRowRange(v, packed_wt, r0, r1, buf);
            } else {
              CsrDenseRowRange(csr_v, wt, r0, r1, buf);
            }
            for (size_t i = r0; i < r1; ++i) {
              const float* prow = buf.data() + (i - r0) * result.w_rows;
              for (size_t j = 0; j < result.w_rows; ++j) {
                if (prow[j] > 0.5f) emit(i, j);
              }
            }
          }
          if (em.streaming) {
            em.EmitBatch(&block_out, w);
            block_out = TupleBuffer(static_cast<uint32_t>(k));
          }
        }
      });
    }
    for (const auto& p : partial) result.tuples.Append(p);
    result.heavy_seconds = heavy_timer.Seconds();
  }

  result.heavy_blocks_executed = blocks_executed.load();
  result.heavy_blocks_skipped = blocks_skipped.load();
  result.interrupted = interrupted.load();
  TraceRecorder::Scope finish_scope(trace, "sink-finish", tparent);
  if (em.streaming) {
    // seen is the sorted duplicate-free union of everything delivered.
    result.tuples = std::move(em.seen);
  } else {
    result.tuples.SortUnique();
    if (sink != nullptr) {
      ResultSink::Shard& shard = sink->shard(0);
      for (size_t i = 0; i < result.tuples.size(); ++i) {
        if (sink->done()) break;
        if (cancel_fired()) {
          result.interrupted = true;
          break;
        }
        shard.OnTuple(result.tuples.Get(i));
      }
    }
  }
  if (sink != nullptr) sink->Finish();
  finish_scope.Close();

  if (MetricsEnabled()) {
    MetricsRegistry& reg = MetricsRegistry::Global();
    static Counter& steps_executed =
        reg.GetCounter("jpmm_star_light_steps_executed_total");
    static Counter& steps_skipped =
        reg.GetCounter("jpmm_star_light_steps_skipped_total");
    static Counter& blocks_exec =
        reg.GetCounter("jpmm_join_heavy_blocks_executed_total");
    static Counter& blocks_skip =
        reg.GetCounter("jpmm_join_heavy_blocks_skipped_total");
    static Counter& kernel_dense =
        reg.GetCounter("jpmm_join_kernel_dense_blocks_total");
    static Counter& kernel_csr_dense =
        reg.GetCounter("jpmm_join_kernel_csr_dense_blocks_total");
    static Counter& kernel_csr_csr =
        reg.GetCounter("jpmm_join_kernel_csr_csr_blocks_total");
    static Counter& partition_engaged =
        reg.GetCounter("jpmm_partition_engaged_total");
    static Counter& partition_pruned =
        reg.GetCounter("jpmm_partition_blocks_pruned_total");
    static Histogram& light_ms =
        reg.GetHistogram("jpmm_join_light_pass_ms", DefaultLatencyBoundsMs());
    static Histogram& heavy_ms =
        reg.GetHistogram("jpmm_join_heavy_pass_ms", DefaultLatencyBoundsMs());
    steps_executed.Add(result.light_steps_executed);
    steps_skipped.Add(result.light_steps_skipped);
    blocks_exec.Add(result.heavy_blocks_executed);
    blocks_skip.Add(result.heavy_blocks_skipped);
    kernel_dense.Add(result.kernel_counts.dense);
    kernel_csr_dense.Add(result.kernel_counts.csr_dense);
    kernel_csr_csr.Add(result.kernel_counts.csr_csr);
    if (result.partition_used) partition_engaged.Add();
    partition_pruned.Add(result.partition_blocks_pruned);
    light_ms.Record(result.light_seconds * 1e3);
    if (result.heavy_seconds > 0) heavy_ms.Record(result.heavy_seconds * 1e3);
  }
  return result;
}

StarJoinResult NonMmStarJoin(const std::vector<const IndexedRelation*>& rels,
                             const StarJoinOptions& options) {
  JPMM_CHECK(rels.size() >= 2);
  JPMM_CHECK_MSG(rels.size() <= 8, "combo packing supports k <= 8");
  const size_t k = rels.size();
  const size_t g1 = (k + 1) / 2;
  const size_t g2 = k - g1;
  const int threads = std::max(1, options.threads);

  Thresholds t = options.thresholds;
  t.delta1 = std::max<uint64_t>(1, t.delta1);
  t.delta2 = std::max<uint64_t>(1, t.delta2);

  StarJoinResult result;
  result.tuples = TupleBuffer(static_cast<uint32_t>(k));
  StarContext ctx(rels, t);
  // No dense matrices here, so no byte cap: pass "unlimited".
  HeavyGroups hg =
      BuildHeavyGroups(ctx, std::numeric_limits<uint64_t>::max());
  result.adjusted_thresholds = t;
  result.v_rows = hg.map1.size();
  result.w_rows = hg.map2.size();
  result.heavy_y = hg.cols.size();

  ResultSink* sink = options.sink;
  if (sink != nullptr) sink->Open(threads);
  StarEmitter em(static_cast<uint32_t>(k));
  em.sink = sink;
  em.streaming = sink != nullptr && sink->may_finish_early();
  std::atomic<uint64_t> blocks_executed{0};
  std::atomic<uint64_t> blocks_skipped{0};
  std::atomic<bool> interrupted{false};
  const CancelToken* cancel = options.cancel;
  auto cancel_fired = [&]() -> bool {
    if (cancel != nullptr && cancel->Fired()) {
      interrupted.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  };

  TraceRecorder* const trace = options.trace;
  const TraceRecorder::SpanId tparent = options.trace_parent;
  WallTimer light_timer;
  bool light_interrupted = false;
  TraceRecorder::Scope light_scope(trace, "light-pass", tparent);
  TupleBuffer light = LightSteps(
      ctx, threads, &em, cancel, &result.light_steps_total,
      &result.light_steps_executed, &result.light_steps_skipped,
      &light_interrupted);
  light_scope.Close();
  if (light_interrupted) interrupted.store(true, std::memory_order_relaxed);
  result.tuples.Append(light);
  result.light_seconds = light_timer.Seconds();

  constexpr size_t kComboGrain = 16;
  if (result.v_rows > 0 && result.w_rows > 0 &&
      ((sink != nullptr && sink->done()) || cancel_fired())) {
    result.heavy_blocks_total =
        (result.v_rows + kComboGrain - 1) / kComboGrain;
    blocks_skipped.store(result.heavy_blocks_total);
  } else if (result.v_rows > 0 && result.w_rows > 0) {
    WallTimer heavy_timer;
    TraceRecorder::Scope heavy_scope(trace, "heavy", tparent);
    // Witness (column) lists per heavy combo, ascending because entries are
    // produced in ascending column order.
    std::vector<std::vector<Value>> wit1(result.v_rows), wit2(result.w_rows);
    for (const auto& [row, col] : hg.entries1) wit1[row].push_back(col);
    for (const auto& [row, col] : hg.entries2) wit2[row].push_back(col);

    result.heavy_blocks_total =
        (result.v_rows + kComboGrain - 1) / kComboGrain;
    std::vector<TupleBuffer> partial(static_cast<size_t>(threads),
                                     TupleBuffer(static_cast<uint32_t>(k)));
    // Witness-list lengths vary per combo; dynamic chunks absorb the skew.
    ParallelForDynamic(threads, result.v_rows, kComboGrain,
                       [&](size_t i0, size_t i1, int w) {
      if ((sink != nullptr && sink->done()) || cancel_fired()) {
        blocks_skipped.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      blocks_executed.fetch_add(1, std::memory_order_relaxed);
      std::vector<Value> tuple(k);
      TupleBuffer block_out(static_cast<uint32_t>(k));
      TupleBuffer& out =
          em.streaming ? block_out : partial[static_cast<size_t>(w)];
      for (size_t i = i0; i < i1; ++i) {
        const Value* left = hg.rows1_flat.data() + i * g1;
        for (size_t j = 0; j < result.w_rows; ++j) {
          if (IntersectsSorted(wit1[i], wit2[j])) {
            std::copy(left, left + g1, tuple.begin());
            const Value* right = hg.rows2_flat.data() + j * g2;
            std::copy(right, right + g2, tuple.begin() + g1);
            out.Add(tuple);
          }
        }
      }
      if (em.streaming) em.EmitBatch(&block_out, w);
    });
    for (const auto& p : partial) result.tuples.Append(p);
    result.heavy_seconds = heavy_timer.Seconds();
  }

  result.heavy_blocks_executed = blocks_executed.load();
  result.heavy_blocks_skipped = blocks_skipped.load();
  result.interrupted = interrupted.load();
  TraceRecorder::Scope finish_scope(trace, "sink-finish", tparent);
  if (em.streaming) {
    result.tuples = std::move(em.seen);
  } else {
    result.tuples.SortUnique();
    if (sink != nullptr) {
      ResultSink::Shard& shard = sink->shard(0);
      for (size_t i = 0; i < result.tuples.size(); ++i) {
        if (sink->done()) break;
        if (cancel_fired()) {
          result.interrupted = true;
          break;
        }
        shard.OnTuple(result.tuples.Get(i));
      }
    }
  }
  if (sink != nullptr) sink->Finish();
  return result;
}

}  // namespace jpmm
