// Output-size estimation for the 2-path query (§5, "Estimating output size").
//
// Bounds used by the paper:
//   |dom(x)| <= |OUT| <= min( |dom(x)| * |dom(z)|, |OUT_join| )
//   |OUT_join| <= |D| * sqrt(|OUT|)   =>   |OUT| >= (|OUT_join| / |D|)^2
// The estimate is the geometric mean of the tightest lower and upper bound.

#ifndef JPMM_CORE_ESTIMATOR_H_
#define JPMM_CORE_ESTIMATOR_H_

#include <cstdint>

#include "storage/index.h"
#include "storage/stats.h"

namespace jpmm {

struct OutputEstimate {
  uint64_t lower = 0;
  uint64_t upper = 0;
  uint64_t estimate = 0;        // geometric mean, clamped to [lower, upper]
  uint64_t full_join_size = 0;  // |OUT_join|
};

/// Estimates |pi_{x,z}(R JOIN S)| from precomputed statistics.
OutputEstimate EstimateTwoPathOutput(const IndexedRelation& r,
                                     const IndexedRelation& s,
                                     const TwoPathStats& stats);

}  // namespace jpmm

#endif  // JPMM_CORE_ESTIMATOR_H_
