// QueryBatcher + ResultCache — multi-query coalescing for QueryService.
//
// The paper's premise is that the heavy product pass dominates evaluation;
// under concurrency the biggest remaining multiplicative win is therefore
// not running it N times. Two layers, both keyed by
// (catalog version at Prepare, spec fingerprint):
//
//   - QueryBatcher coalesces IN-FLIGHT identical requests: the first
//     arrival opens a batch group and becomes its leader, holds a short
//     batch window so concurrent identical requests can join, then runs
//     the single execution into a FanoutSink that streams the one result
//     set into every member's sink — each with independent done()/limit/
//     page semantics (a follower finishing early never cancels the shared
//     pass; when every follower detaches the leader degrades to a plain
//     solo run). A leader whose token fires during the window hands
//     leadership to a live follower instead of stranding the group.
//   - ResultCache serves REPEAT requests without executing at all: a
//     bytes-capped LRU of complete result payloads, replayed into the
//     caller's sink. Version-keyed probes make staleness structurally
//     impossible: a Put/Drop bumps Catalog::version(), every later
//     Prepare records the new version, and a probe only matches an entry
//     created at exactly the probing query's prepared_version.
//
// The coalescing key deliberately excludes execution knobs (threads,
// kernels, thresholds, strategy overrides): the result SET is invariant
// across all of them — the differential fuzzer's core guarantee — so
// requests differing only in HOW share one pass safely. The plan is itself
// a deterministic function of (catalog version, spec), so the plan
// signature is folded into the key implicitly.
//
// Thread-safety: both classes are fully internally synchronized; every
// method may be called from any number of request threads.

#ifndef JPMM_CORE_QUERY_BATCHER_H_
#define JPMM_CORE_QUERY_BATCHER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/cancel_token.h"
#include "core/query_engine.h"
#include "core/result_sink.h"
#include "core/trace.h"

namespace jpmm {

/// Coalescing / cache key: the consistent catalog cut a PreparedQuery was
/// prepared on + the WHAT-fields of its spec.
struct BatchKey {
  uint64_t catalog_version = 0;
  uint64_t spec_fingerprint = 0;

  bool operator==(const BatchKey& o) const {
    return catalog_version == o.catalog_version &&
           spec_fingerprint == o.spec_fingerprint;
  }
};

struct BatchKeyHash {
  size_t operator()(const BatchKey& k) const;
};

/// Coalesces concurrent identical requests onto one execution. Owned by
/// QueryService; mechanism only — admission control, degradation, outcome
/// accounting, and the cache live in the service, which passes the whole
/// admitted-execution path in as the `run` callback.
class QueryBatcher {
 public:
  struct Options {
    /// How long a group's leader waits for followers before executing.
    int64_t window_ms = 2;
  };

  /// How this request was served (drives the service's accounting).
  enum class Role : uint8_t {
    kLeader,    // ran the execution (group_size 1 == degraded to solo)
    kFollower,  // received the leader's fan-out (or its terminal status)
    kDetached,  // token fired before the group closed; nothing executed
  };

  struct Result {
    Role role = Role::kLeader;
    QueryStatus status;
    /// Client sinks served by the shared execution (leader included).
    uint32_t group_size = 1;
  };

  /// The admitted-execution path: runs ONE pass into the given sink
  /// (which may be a FanoutSink over many client sinks) and fills stats.
  using RunFn = std::function<QueryStatus(ResultSink&, ExecStats*)>;

  explicit QueryBatcher(Options options);

  /// Serves one request. Exactly one member of each group invokes `run`;
  /// the others wait for delivery ("batch-wait" span either way) and
  /// return with the leader's status + a copy of its stats (batch_*
  /// flags set per role). `tap`, when non-null, is attached to the fan-out
  /// as a non-voting observer IF this request ends up running — the
  /// service's result-cache recorder.
  ///
  /// Lifetime contract: a member's sink/token/tap must stay valid until
  /// Execute returns — trivially true since they live in the caller's
  /// frame. A follower whose token fires after its group closed can no
  /// longer detach (the fan-out may already reference its sink) and is
  /// held until delivery completes; its full results make that benign.
  Result Execute(const BatchKey& key, ResultSink* sink, ResultSink* tap,
                 const CancelToken* token, const RunFn& run, ExecStats* stats,
                 TraceRecorder* trace, int32_t trace_parent);

  /// Groups whose execution actually ran (leaders + promoted followers).
  uint64_t groups_run() const {
    return groups_run_.load(std::memory_order_relaxed);
  }

 private:
  struct Group;

  Result RunAsLeader(const std::shared_ptr<Group>& g,
                     const std::vector<ResultSink*>& targets, ResultSink* tap,
                     const RunFn& run, ExecStats* stats);

  const Options options_;
  std::mutex mu_;  // guards open_ only; per-group state has its own mutex
  std::unordered_map<BatchKey, std::shared_ptr<Group>, BatchKeyHash> open_;
  std::atomic<uint64_t> groups_run_{0};
};

/// Bytes-capped LRU of complete result payloads, keyed by
/// (catalog version, spec fingerprint). Entries are immutable shared_ptrs:
/// a probe copies the pointer under the lock and replays outside it, so a
/// big replay never blocks concurrent probes. Only COMPLETE runs are
/// inserted (no interruption, no skipped work, no recorder overflow) —
/// a cached entry always replays the full result set and the caller's
/// sink applies its own limit/page semantics, exactly as live execution
/// would.
class ResultCache {
 public:
  struct Options {
    uint64_t max_bytes = 64ull << 20;
    /// Results larger than this are never inserted (one entry must not
    /// evict the whole cache).
    uint64_t max_entry_bytes = 8ull << 20;
  };

  explicit ResultCache(Options options);

  struct Entry {
    std::vector<OutPair> pairs;
    std::vector<CountedPair> counted;
    std::vector<Value> tuple_data;
    uint32_t tuple_arity = 0;
    /// kTriangle delivers through stats (triangle_count), not the sink;
    /// replay then copies stats and leaves the sink untouched, matching
    /// live execution.
    bool deliver_payload = true;
    /// The original run's ExecStats (trace_spans cleared). A hit copies
    /// these so the client still sees what the cached run did.
    ExecStats stats;
    uint64_t bytes = 0;
  };

  /// Probes for (version, fingerprint); on a hit replays the payload into
  /// `sink` under a "fanout-emit" span (honouring sink.done() at chunk
  /// granularity) and fills *stats from the entry. Returns false on miss —
  /// including when the entry carries star tuples the sink cannot consume.
  bool Replay(const BatchKey& key, ResultSink& sink, ExecStats* stats,
              TraceRecorder* trace, int32_t trace_parent);

  /// Inserts a complete result. Oversized entries are dropped; the LRU
  /// tail is evicted until the byte cap holds.
  void Insert(const BatchKey& key, Entry entry);

  /// Lazy invalidation sweep: drops every entry whose catalog version
  /// differs from `current_version`. Old-version entries were never
  /// servable to new Prepares (version-keyed probes), so this is purely a
  /// memory release; in-flight old-version queries simply miss and
  /// re-execute. Cheap no-op when the version has not moved since the
  /// last sweep.
  void InvalidateStale(uint64_t current_version);

  uint64_t bytes() const;
  size_t entries() const;
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }

 private:
  struct Slot {
    std::shared_ptr<const Entry> entry;
    std::list<BatchKey>::iterator lru_it;
  };

  void EvictToFitLocked();

  const Options options_;
  mutable std::mutex mu_;
  std::unordered_map<BatchKey, Slot, BatchKeyHash> map_;
  std::list<BatchKey> lru_;  // front = most recent
  uint64_t bytes_ = 0;
  uint64_t last_seen_version_ = 0;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace jpmm

#endif  // JPMM_CORE_QUERY_BATCHER_H_
