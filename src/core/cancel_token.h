// CancelToken — a composable cancellation signal for query execution.
//
// Generalizes the triangle executor's ad-hoc "cancel = sink" pointer into
// one token every strategy polls at light-chunk / product-block
// granularity. A token fires from any of three sources:
//
//   - explicit cancel:   RequestCancel()            -> Reason::kCancelled
//   - deadline:          SetDeadline/SetDeadlineAfter -> Reason::kDeadline
//   - watched sink done: WatchSink(sink)            -> Reason::kCancelled
//
// plus chaining: Chain(parent) makes this token fire whenever the parent
// has fired (copying the parent's reason). Chaining is how the engine
// builds its per-execution token — local sink-watching composed with the
// caller's deadline/cancel token — without mutating the caller's token.
//
// Fired() is const and cheap on the hot path: one relaxed atomic load when
// nothing has fired and no deadline is set. The first observation of a
// fired source latches the reason, so reason() is stable once Fired()
// returns true. All methods are safe to call from any thread.

#ifndef JPMM_CORE_CANCEL_TOKEN_H_
#define JPMM_CORE_CANCEL_TOKEN_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "core/result_sink.h"

namespace jpmm {

class CancelToken {
 public:
  enum class Reason : uint8_t {
    kNone = 0,
    kCancelled = 1,  // explicit RequestCancel() or watched sink done()
    kDeadline = 2,   // deadline passed
  };

  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Fires the token immediately with Reason::kCancelled.
  void RequestCancel() { Latch(Reason::kCancelled); }

  /// Arms a deadline at an absolute steady-clock time point. The token
  /// fires with Reason::kDeadline on the first poll at or after it.
  void SetDeadline(std::chrono::steady_clock::time_point tp) {
    deadline_ns_.store(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            tp.time_since_epoch())
            .count(),
        std::memory_order_release);
  }

  /// Arms a deadline `ms` milliseconds from now. ms <= 0 fires immediately.
  void SetDeadlineAfter(int64_t ms) {
    SetDeadline(std::chrono::steady_clock::now() +
                std::chrono::milliseconds(ms));
  }

  /// Fires (Reason::kCancelled) once `sink->done()` reports true. The sink
  /// must outlive the token's last Fired() call.
  void WatchSink(const ResultSink* sink) {
    sink_.store(sink, std::memory_order_release);
  }

  /// Fires whenever `parent` has fired, copying its reason. The parent
  /// must outlive the token's last Fired() call. Pass nullptr to unchain.
  void Chain(const CancelToken* parent) {
    parent_.store(parent, std::memory_order_release);
  }

  /// True once any source has fired; latches the reason on first
  /// observation. The per-poll cost when nothing fired is one or two
  /// relaxed loads, so executors poll freely at chunk granularity.
  bool Fired() const {
    if (reason_.load(std::memory_order_relaxed) != Reason::kNone) return true;
    if (const CancelToken* p = parent_.load(std::memory_order_acquire)) {
      if (p->Fired()) {
        Latch(p->reason());
        return true;
      }
    }
    int64_t dl = deadline_ns_.load(std::memory_order_acquire);
    if (dl != 0 &&
        std::chrono::steady_clock::now().time_since_epoch().count() >= dl) {
      Latch(Reason::kDeadline);
      return true;
    }
    if (const ResultSink* s = sink_.load(std::memory_order_acquire)) {
      if (s->done()) {
        Latch(Reason::kCancelled);
        return true;
      }
    }
    return false;
  }

  /// The latched reason; kNone until Fired() first returns true.
  Reason reason() const { return reason_.load(std::memory_order_acquire); }

  /// The armed deadline, or time_point::min() when none is set.
  std::chrono::steady_clock::time_point deadline() const {
    int64_t dl = deadline_ns_.load(std::memory_order_acquire);
    if (dl == 0) return std::chrono::steady_clock::time_point::min();
    return std::chrono::steady_clock::time_point(std::chrono::nanoseconds(dl));
  }

 private:
  // First latch wins: a token that fired kDeadline stays kDeadline even if
  // RequestCancel() lands later, so stats report the true stopper.
  void Latch(Reason r) const {
    Reason expected = Reason::kNone;
    reason_.compare_exchange_strong(expected, r, std::memory_order_acq_rel,
                                    std::memory_order_acquire);
  }

  mutable std::atomic<Reason> reason_{Reason::kNone};
  std::atomic<int64_t> deadline_ns_{0};  // 0 = no deadline
  std::atomic<const ResultSink*> sink_{nullptr};
  std::atomic<const CancelToken*> parent_{nullptr};
};

inline const char* CancelReasonName(CancelToken::Reason r) {
  switch (r) {
    case CancelToken::Reason::kNone:
      return "none";
    case CancelToken::Reason::kCancelled:
      return "cancelled";
    case CancelToken::Reason::kDeadline:
      return "deadline";
  }
  return "unknown";
}

}  // namespace jpmm

#endif  // JPMM_CORE_CANCEL_TOKEN_H_
