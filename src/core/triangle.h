// Triangle counting with matrix multiplication — the §9 future-work item.
//
// "AYZ algorithm is applicable to counting cycles in graph using matrix
// multiplication": the classic Alon-Yuster-Zwick split. Vertices of degree
// <= Delta are light; triangles touching a light vertex are enumerated
// combinatorially (pairs within a light vertex's neighbourhood + one edge
// probe), while the all-heavy residue is trace(A_H^3) / 6 over the heavy-
// subgraph adjacency matrix — the same degree-partition + dense-product
// pattern as Algorithm 1, applied to a cyclic query.

#ifndef JPMM_CORE_TRIANGLE_H_
#define JPMM_CORE_TRIANGLE_H_

#include <cstdint>

#include "core/heavy_dispatch.h"
#include "storage/index.h"

namespace jpmm {

class CancelToken;
class TraceRecorder;

struct TriangleCountOptions {
  /// Degree threshold; 0 = pick sqrt(|E|) (the AYZ balance point for
  /// classical multiplication).
  uint64_t delta = 0;
  int threads = 1;
  /// Cap on the heavy adjacency working set. The CSR representation is
  /// always counted; the dense matrix (and packed slab) only when some
  /// product block runs a float kernel — a capped run degrades to the
  /// CSR x CSR trace instead of doubling delta.
  uint64_t max_matrix_bytes = uint64_t{2} << 30;
  /// Heavy-part kernel selection (core/heavy_dispatch.h).
  HeavyPathMode heavy_path = HeavyPathMode::kAuto;
  /// nullptr uses SparseKernelRates::Default().
  const SparseKernelRates* sparse_rates = nullptr;
  /// Cooperative cancellation: the count loops poll cancel->Fired() at
  /// chunk/block granularity and stop early when it fires (deadline,
  /// explicit cancel, or a watched sink's done() — see
  /// core/cancel_token.h). A cancelled run reports a PARTIAL count
  /// (result.cancelled is set) — triangle counting has no per-pair output
  /// to limit, so this exists for callers that abandon a count mid-flight,
  /// not for limit semantics.
  const CancelToken* cancel = nullptr;
  /// Optional per-query stage tracing under `trace_parent`; null = zero
  /// cost. See MmJoinOptions::trace.
  TraceRecorder* trace = nullptr;
  int32_t trace_parent = -1;  // TraceRecorder::kNoParent
};

struct TriangleCountResult {
  uint64_t triangles = 0;
  uint64_t light_triangles = 0;  // found via light-vertex enumeration
  uint64_t heavy_triangles = 0;  // found via trace(A_H^3)/6
  uint64_t heavy_vertices = 0;
  uint64_t delta_used = 0;
  uint64_t heavy_nnz = 0;          // heavy-subgraph edges (directed count)
  double heavy_density = 0.0;      // heavy_nnz / heavy_vertices^2
  HeavyKernelCounts kernel_counts; // trace blocks per kernel
  // Exact cancellation accounting, split by phase (light-enumeration
  // chunks vs heavy trace blocks) so ExecStats can report both precisely.
  uint64_t light_chunks_total = 0;
  uint64_t light_chunks_executed = 0;
  uint64_t light_chunks_skipped = 0;
  uint64_t blocks_skipped = 0;     // heavy trace blocks skipped
  bool cancelled = false;          // counts are partial
};

/// Counts triangles of an undirected graph given as a symmetric edge
/// relation (both (u,v) and (v,u) present; self-loops ignored).
TriangleCountResult CountTrianglesMm(const IndexedRelation& graph,
                                     const TriangleCountOptions& options = {});

/// Combinatorial comparator: node-iterator counting (no matrices).
uint64_t CountTrianglesNodeIterator(const IndexedRelation& graph);

}  // namespace jpmm

#endif  // JPMM_CORE_TRIANGLE_H_
