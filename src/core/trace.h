// Per-query stage tracing: a TraceRecorder collects a tree of timed spans
// (admission/queue-wait → prepare → plan → degree-remap → pack → light-pass
// chunks → per-heavy-block kernel → emit → sink finish) for ONE query
// execution.
//
// Unlike the process-wide MetricsRegistry (cumulative, cross-query), a
// recorder is owned by the caller and passed down by pointer through
// ExecOptions / MmJoinOptions / StarJoinOptions. A null recorder is the
// default and costs nothing: every instrumentation site goes through
// TraceRecorder::Scope or the null-safe free functions, which do no work
// when the recorder is null. With a recorder attached, Begin/End take one
// short mutex hold each — spans are recorded at chunk/block granularity
// (never per output pair), so the lock is off the inner loops.
//
// Invariant (tested): every opened span is closed by the time the query
// returns, on every exit path — cancel, limit short-circuit, deadline,
// memory-cap refusal. Scope is RAII precisely so early returns can't leak
// an open span.

#ifndef JPMM_CORE_TRACE_H_
#define JPMM_CORE_TRACE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace jpmm {

/// One timed stage. `name` must be a string literal (spans are recorded on
/// hot-ish paths; no allocation for the common case). `parent` indexes into
/// the recorder's span vector, -1 for a root. Times are seconds relative to
/// the recorder's construction; end_s < 0 marks a still-open span.
struct TraceSpan {
  const char* name = "";
  int32_t parent = -1;
  double begin_s = 0.0;
  double end_s = -1.0;
  std::string detail;  // optional: "kernel=csr-csr rows=[0,256)"

  double Seconds() const { return end_s < 0 ? 0.0 : end_s - begin_s; }
};

/// Collects the span tree for one query. Thread-safe: light-pass chunks and
/// heavy blocks open spans from pool workers concurrently.
class TraceRecorder {
 public:
  using SpanId = int32_t;
  static constexpr SpanId kNoParent = -1;

  TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  SpanId Begin(const char* name, SpanId parent = kNoParent);
  void End(SpanId id);
  /// End + attach a detail string in one lock hold.
  void End(SpanId id, std::string detail);
  void Annotate(SpanId id, std::string detail);

  /// True when every opened span has been closed (the balance invariant).
  bool AllClosed() const;

  size_t size() const;
  std::vector<TraceSpan> spans() const;

  /// Number of spans named `name` (exact match) — tests cross-check
  /// per-kernel block spans against ExecStats block accounting.
  size_t CountNamed(const char* name) const;

  /// Fraction of the first root span's wall time covered by its direct
  /// children (1.0 = fully attributed). 0 if there is no closed root.
  double ChildCoverage() const;

  /// Pretty tree: one line per distinct child name per parent, sibling
  /// spans with the same name aggregated as "name xN", with milliseconds
  /// and % of the first root's wall time.
  std::string Render() const;

  /// RAII span: closes on scope exit, null-recorder safe. Move-only.
  class Scope {
   public:
    Scope(TraceRecorder* rec, const char* name, SpanId parent = kNoParent)
        : rec_(rec), id_(rec ? rec->Begin(name, parent) : kNoParent) {}
    ~Scope() { Close(); }
    Scope(Scope&& o) noexcept : rec_(o.rec_), id_(o.id_) { o.rec_ = nullptr; }
    Scope& operator=(Scope&&) = delete;
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

    SpanId id() const { return id_; }
    /// Closes early (idempotent), optionally attaching a detail string.
    void Close() {
      if (rec_ != nullptr) rec_->End(id_);
      rec_ = nullptr;
    }
    void Close(std::string detail) {
      if (rec_ != nullptr) rec_->End(id_, std::move(detail));
      rec_ = nullptr;
    }

   private:
    TraceRecorder* rec_;
    SpanId id_;
  };

 private:
  double Now() const;

  mutable std::mutex mu_;
  std::vector<TraceSpan> spans_;
  std::chrono::steady_clock::time_point epoch_;
};

/// Null-safe helpers for call sites where RAII scoping doesn't fit the
/// control flow (e.g. a span closed with a computed detail string).
inline TraceRecorder::SpanId TraceBegin(
    TraceRecorder* rec, const char* name,
    TraceRecorder::SpanId parent = TraceRecorder::kNoParent) {
  return rec == nullptr ? TraceRecorder::kNoParent : rec->Begin(name, parent);
}
inline void TraceEnd(TraceRecorder* rec, TraceRecorder::SpanId id) {
  if (rec != nullptr) rec->End(id);
}
inline void TraceEnd(TraceRecorder* rec, TraceRecorder::SpanId id,
                     std::string detail) {
  if (rec != nullptr) rec->End(id, std::move(detail));
}

}  // namespace jpmm

#endif  // JPMM_CORE_TRACE_H_
