#include "core/mm_join.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "common/check.h"
#include "common/metrics.h"
#include "common/stamp_set.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/cancel_token.h"
#include "core/result_sink.h"
#include "core/trace.h"
#include "core/two_path_internal.h"
#include "matrix/dense_matrix.h"
#include "matrix/matmul.h"
#include "matrix/sparse_matrix.h"

namespace jpmm {
namespace {

// Process-wide join metrics (shared names with star_join.cpp — the registry
// returns the same instruments). Cached once: Get* takes a lock.
struct JoinMetrics {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter& light_executed =
      reg.GetCounter("jpmm_join_light_chunks_executed_total");
  Counter& light_skipped =
      reg.GetCounter("jpmm_join_light_chunks_skipped_total");
  Counter& blocks_executed =
      reg.GetCounter("jpmm_join_heavy_blocks_executed_total");
  Counter& blocks_skipped =
      reg.GetCounter("jpmm_join_heavy_blocks_skipped_total");
  Counter& kernel_dense = reg.GetCounter("jpmm_join_kernel_dense_blocks_total");
  Counter& kernel_csr_dense =
      reg.GetCounter("jpmm_join_kernel_csr_dense_blocks_total");
  Counter& kernel_csr_csr =
      reg.GetCounter("jpmm_join_kernel_csr_csr_blocks_total");
  Counter& operand_bytes = reg.GetCounter("jpmm_join_heavy_operand_bytes_total");
  Counter& partition_engaged =
      reg.GetCounter("jpmm_partition_engaged_total");
  Counter& partition_pruned =
      reg.GetCounter("jpmm_partition_blocks_pruned_total");
  Counter& partition_grid_cache_hits =
      reg.GetCounter("jpmm_partition_grid_cache_hits_total");
  Histogram& light_ms = reg.GetHistogram("jpmm_join_light_pass_ms",
                                         DefaultLatencyBoundsMs());
  Histogram& heavy_ms = reg.GetHistogram("jpmm_join_heavy_pass_ms",
                                         DefaultLatencyBoundsMs());
  static JoinMetrics& Get() {
    static JoinMetrics m;
    return m;
  }
};

// Per-worker scratch + output shard.
struct WorkerState {
  StampCounter counter;
  std::vector<Value> touched;
  std::vector<Value> witness_buf;           // kSortLocal scratch
  std::vector<CountedPair> matrix_entries;  // kSortLocal scratch
  std::vector<float> block;                 // matrix row-block buffer
  CsrScratch csr_scratch;                   // CSR x CSR stamp scratch
  SparseRowBlock sparse_block;              // CSR x CSR block output
  // Density-adaptive gather: per-row (z, count) heavy contributions of the
  // current chunk, collected across its column-band kernels.
  std::vector<std::vector<CountedPair>> row_entries;
  ResultSink::Shard* shard = nullptr;       // this worker's emission handle
};

class TwoPathRunner {
 public:
  TwoPathRunner(const internal::TwoPathContext& ctx, const MmJoinOptions& opts)
      : ctx_(ctx), opts_(opts) {}

  // Emits the output pairs of head value a. matrix_row, when non-null, holds
  // the heavy-witness counts for columns [0, heavy_z.size()).
  void EmitHead(Value a, const float* matrix_row, WorkerState* ws) const {
    if (opts_.dedup == DedupImpl::kStampArray) {
      EmitHeadStamp(a, matrix_row, ws);
    } else {
      EmitHeadSort(a, matrix_row, ws);
    }
  }

  // Sparse-row variant: the heavy-witness counts arrive as parallel
  // (column id, count) spans with ascending columns — the CSR x CSR
  // kernel's output. No O(|heavy z|) scan per head value.
  void EmitHead(Value a, std::span<const uint32_t> cols,
                std::span<const uint32_t> counts, WorkerState* ws) const {
    if (opts_.dedup == DedupImpl::kStampArray) {
      EmitHeadStamp(a, cols, counts, ws);
    } else {
      EmitHeadSort(a, cols, counts, ws);
    }
  }

  // Gathered-entry variant for the density-adaptive path: the heavy
  // contributions of one head value arrive as (z, count) entries collected
  // across several column-band kernels, in no particular z order (each z
  // appears at most once — a column lives in exactly one band).
  void EmitHeadEntries(Value a, std::vector<CountedPair>* entries,
                       WorkerState* ws) const {
    if (opts_.dedup == DedupImpl::kStampArray) {
      ws->counter.NewEpoch();
      ws->touched.clear();
      ctx_.AccumulateLight(a, &ws->counter, &ws->touched);
      for (const CountedPair& e : *entries) {
        if (ws->counter.Add(e.z, e.count) == 0) ws->touched.push_back(e.z);
      }
      EmitRow(a, ws);
    } else {
      ws->witness_buf.clear();
      ctx_.AccumulateLightToVector(a, &ws->witness_buf);
      std::sort(ws->witness_buf.begin(), ws->witness_buf.end());
      // MergeAndEmit requires z-ascending matrix entries; the band gather
      // interleaves bands, so sort here.
      std::sort(entries->begin(), entries->end(),
                [](const CountedPair& l, const CountedPair& r) {
                  return l.z < r.z;
                });
      ws->matrix_entries.assign(entries->begin(), entries->end());
      MergeAndEmit(a, ws);
    }
  }

 private:
  void EmitRow(Value a, WorkerState* ws) const {
    for (Value c : ws->touched) {
      const uint32_t cnt = ws->counter.Get(c);
      if (cnt < opts_.min_count) continue;
      if (opts_.count_witnesses) {
        ws->shard->OnCountedPair(CountedPair{a, c, cnt});
      } else {
        ws->shard->OnPair(OutPair{a, c});
      }
    }
  }

  void EmitHeadStamp(Value a, const float* matrix_row, WorkerState* ws) const {
    ws->counter.NewEpoch();
    ws->touched.clear();
    ctx_.AccumulateLight(a, &ws->counter, &ws->touched);
    if (matrix_row != nullptr) {
      const auto& hz = ctx_.part.heavy_z();
      for (size_t j = 0; j < hz.size(); ++j) {
        const float v = matrix_row[j];
        if (v > 0.5f) {
          const auto cnt = static_cast<uint32_t>(v + 0.5f);
          if (ws->counter.Add(hz[j], cnt) == 0) ws->touched.push_back(hz[j]);
        }
      }
    }
    EmitRow(a, ws);
  }

  void EmitHeadStamp(Value a, std::span<const uint32_t> cols,
                     std::span<const uint32_t> counts, WorkerState* ws) const {
    ws->counter.NewEpoch();
    ws->touched.clear();
    ctx_.AccumulateLight(a, &ws->counter, &ws->touched);
    const auto& hz = ctx_.part.heavy_z();
    for (size_t e = 0; e < cols.size(); ++e) {
      const Value z = hz[cols[e]];
      if (ws->counter.Add(z, counts[e]) == 0) ws->touched.push_back(z);
    }
    EmitRow(a, ws);
  }

  // Merge the sorted light-witness runs with already z-sorted matrix
  // entries, summing counts per z. Shared by both sort-dedup variants.
  void MergeAndEmit(Value a, WorkerState* ws) const {
    size_t i = 0;
    size_t m = 0;
    const size_t n = ws->witness_buf.size();
    const size_t mn = ws->matrix_entries.size();
    auto emit = [&](Value c, uint32_t cnt) {
      if (cnt < opts_.min_count) return;
      if (opts_.count_witnesses) {
        ws->shard->OnCountedPair(CountedPair{a, c, cnt});
      } else {
        ws->shard->OnPair(OutPair{a, c});
      }
    };
    while (i < n || m < mn) {
      Value c;
      if (i < n && (m >= mn || ws->witness_buf[i] <= ws->matrix_entries[m].z)) {
        c = ws->witness_buf[i];
      } else {
        c = ws->matrix_entries[m].z;
      }
      uint32_t cnt = 0;
      while (i < n && ws->witness_buf[i] == c) {
        ++cnt;
        ++i;
      }
      if (m < mn && ws->matrix_entries[m].z == c) {
        cnt += ws->matrix_entries[m].count;
        ++m;
      }
      emit(c, cnt);
    }
  }

  void EmitHeadSort(Value a, const float* matrix_row, WorkerState* ws) const {
    ws->witness_buf.clear();
    ctx_.AccumulateLightToVector(a, &ws->witness_buf);
    std::sort(ws->witness_buf.begin(), ws->witness_buf.end());

    ws->matrix_entries.clear();
    if (matrix_row != nullptr) {
      const auto& hz = ctx_.part.heavy_z();
      for (size_t j = 0; j < hz.size(); ++j) {
        const float v = matrix_row[j];
        if (v > 0.5f) {
          ws->matrix_entries.push_back(
              CountedPair{a, hz[j], static_cast<uint32_t>(v + 0.5f)});
        }
      }
    }
    MergeAndEmit(a, ws);
  }

  void EmitHeadSort(Value a, std::span<const uint32_t> cols,
                    std::span<const uint32_t> counts, WorkerState* ws) const {
    ws->witness_buf.clear();
    ctx_.AccumulateLightToVector(a, &ws->witness_buf);
    std::sort(ws->witness_buf.begin(), ws->witness_buf.end());

    ws->matrix_entries.clear();
    const auto& hz = ctx_.part.heavy_z();
    for (size_t e = 0; e < cols.size(); ++e) {
      // cols ascending => hz[cols[e]] ascending (heavy ids are assigned in
      // ascending value order), which MergeAndEmit requires.
      ws->matrix_entries.push_back(CountedPair{a, hz[cols[e]], counts[e]});
    }
    MergeAndEmit(a, ws);
  }

  const internal::TwoPathContext& ctx_;
  const MmJoinOptions& opts_;
};

// Exact nnz of the two heavy operands under the current partition: one
// adjacency sweep each, no materialization. Drives both the memory-cap
// accounting and the density instrumentation.
void CountHeavyNnz(const IndexedRelation& r, const IndexedRelation& s,
                   const TwoPathPartition& part, int threads, uint64_t* nnz1,
                   uint64_t* nnz2) {
  const auto& hxs = part.heavy_x();
  const auto& hys = part.heavy_y();
  std::vector<uint64_t> partial(static_cast<size_t>(std::max(1, threads)), 0);
  ParallelForDynamic(threads, hxs.size(), /*grain=*/64,
                     [&](size_t i0, size_t i1, int w) {
                       uint64_t local = 0;
                       for (size_t i = i0; i < i1; ++i) {
                         for (Value b : r.YsOf(hxs[i])) {
                           if (part.HeavyYId(b) != kInvalidValue) ++local;
                         }
                       }
                       partial[static_cast<size_t>(w)] += local;
                     });
  *nnz1 = 0;
  for (uint64_t c : partial) *nnz1 += c;
  std::fill(partial.begin(), partial.end(), 0);
  ParallelForDynamic(threads, hys.size(), /*grain=*/64,
                     [&](size_t i0, size_t i1, int w) {
                       uint64_t local = 0;
                       for (size_t i = i0; i < i1; ++i) {
                         for (Value c : s.XsOf(hys[i])) {
                           if (part.HeavyZId(c) != kInvalidValue) ++local;
                         }
                       }
                       partial[static_cast<size_t>(w)] += local;
                     });
  *nnz2 = 0;
  for (uint64_t c : partial) *nnz2 += c;
}

}  // namespace

MmJoinResult MmJoinTwoPath(const IndexedRelation& r, const IndexedRelation& s,
                           const MmJoinOptions& options) {
  MmJoinOptions opts = options;
  JPMM_CHECK(opts.min_count >= 1);
  JPMM_CHECK_MSG(opts.min_count == 1 || opts.count_witnesses,
                 "min_count > 1 requires count_witnesses");
  JPMM_CHECK(opts.row_block >= 1);

  Thresholds t = opts.thresholds;
  t.delta1 = std::max<uint64_t>(1, t.delta1);
  t.delta2 = std::max<uint64_t>(1, t.delta2);
  const int threads = std::max(1, opts.threads);

  // Build the context; double the thresholds until the heavy-part working
  // set fits the memory cap. The footprint depends on the representation
  // the heavy kernels need: the CSR operands are always built (they ARE the
  // heavy adjacency, and the per-block dispatch reads block nnz off them);
  // dense M1/M2 + the packed slab + per-worker float row-block buffers only
  // when dense-GEMM blocks may run; dense M2 + the float buffers for
  // CSR x dense; per-worker stamp scratch for CSR x CSR. Under kAuto the
  // expensive representations are gated off instead of doubling thresholds
  // — the CSR floor is what must fit (the old accounting charged sparse
  // inputs dense U*V bytes and over-forced their thresholds).
  TraceRecorder* const trace = opts.trace;
  const TraceRecorder::SpanId tparent = opts.trace_parent;
  TraceRecorder::Scope fit_scope(trace, "threshold-fit", tparent);
  std::unique_ptr<internal::TwoPathContext> ctx;
  uint64_t m1_nnz = 0;
  uint64_t m2_nnz = 0;
  bool allow_dense = true;
  bool allow_csr_dense = true;
  uint64_t heavy_bytes = 0;  // accepted uniform-plan working set
  for (;;) {
    ctx = std::make_unique<internal::TwoPathContext>(r, s, t);
    const uint64_t hx = ctx->part.heavy_x().size();
    const uint64_t hy = ctx->part.heavy_y().size();
    const uint64_t hz = ctx->part.heavy_z().size();
    if (hy == 0) break;
    CountHeavyNnz(r, s, ctx->part, threads, &m1_nnz, &m2_nnz);
    const uint64_t blocks = (hx + opts.row_block - 1) / opts.row_block;
    const uint64_t block_workers =
        std::min<uint64_t>(static_cast<uint64_t>(threads),
                           std::max<uint64_t>(1, blocks));
    const uint64_t csr = CsrBytes(hx, m1_nnz) + CsrBytes(hy, m2_nnz);
    // StampCounter (8 B/slot) + touched list (4 B/slot) per block worker.
    const uint64_t stamp = 12 * block_workers * hz;
    const uint64_t acc = 4 * block_workers * opts.row_block * hz;
    const uint64_t m2_dense = 4 * hy * hz;
    const uint64_t dense_full =
        4 * hx * hy + m2_dense + PackedBBytes(hy, hz) + acc;
    uint64_t bytes = 0;
    switch (opts.heavy_path) {
      case HeavyPathMode::kForceDense:
        bytes = csr + dense_full;
        allow_dense = true;
        allow_csr_dense = true;
        break;
      case HeavyPathMode::kForceCsrDense:
        bytes = csr + m2_dense + acc;
        allow_dense = false;
        allow_csr_dense = true;
        break;
      case HeavyPathMode::kForceCsrCsr:
        bytes = csr + stamp;
        allow_dense = false;
        allow_csr_dense = false;
        break;
      case HeavyPathMode::kAuto:
        allow_dense = csr + dense_full + stamp <= opts.max_matrix_bytes;
        allow_csr_dense =
            csr + m2_dense + acc + stamp <= opts.max_matrix_bytes;
        bytes = allow_dense ? csr + dense_full + stamp
                : allow_csr_dense ? csr + m2_dense + acc + stamp
                                  : csr + stamp;
        break;
    }
    heavy_bytes = bytes;
    if (bytes <= opts.max_matrix_bytes) break;
    t.delta1 *= 2;
    t.delta2 *= 2;
  }
  fit_scope.Close();

  MmJoinResult result;
  result.adjusted_thresholds = t;
  const auto& part = ctx->part;
  const auto& hxs = part.heavy_x();
  const auto& hys = part.heavy_y();
  const auto& hzs = part.heavy_z();
  result.heavy_rows = hxs.size();
  result.heavy_inner = hys.size();
  result.heavy_cols = hzs.size();
  const bool use_matrix = !hxs.empty() && !hys.empty() && !hzs.empty();
  if (use_matrix) {
    result.m1_nnz = m1_nnz;
    result.m2_nnz = m2_nnz;
    result.heavy_density = static_cast<double>(m1_nnz) /
                           (static_cast<double>(hxs.size()) *
                            static_cast<double>(hys.size()));
  }

  std::vector<WorkerState> workers(static_cast<size_t>(threads));
  const size_t num_z = s.num_x();
  const TwoPathRunner runner(*ctx, opts);

  // When the caller provides no sink, stream into a local VectorSink and
  // move its vectors into the result afterwards — one emission path either
  // way, and the shard-order merge matches the old per-worker merge.
  VectorSink fallback;
  ResultSink* sink = opts.sink != nullptr ? opts.sink : &fallback;
  sink->Open(threads);
  std::atomic<uint64_t> light_executed{0};
  std::atomic<uint64_t> light_skipped{0};
  std::atomic<uint64_t> blocks_executed{0};
  std::atomic<uint64_t> blocks_skipped{0};
  // Latched only when a poll actually skips work: a token that fires after
  // the last chunk completed must not mark a complete run interrupted.
  std::atomic<bool> interrupted{false};
  const CancelToken* cancel = opts.cancel;
  auto cancel_fired = [&]() -> bool {
    if (cancel != nullptr && cancel->Fired()) {
      interrupted.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  };

  // ---- Pass A: head values with no matrix row (light part only).
  // Dynamic chunking: zipf-skewed x degrees make contiguous static chunks
  // wildly unbalanced (one worker can own all the hubs).
  WallTimer light_timer;
  constexpr size_t kHeadGrain = 256;
  const TraceRecorder::SpanId light_span = TraceBegin(trace, "light-pass", tparent);
  ParallelForDynamic(threads, r.num_x(), kHeadGrain,
                     [&](size_t a0, size_t a1, int w) {
                       WorkerState& ws = workers[static_cast<size_t>(w)];
                       if (sink->done() || cancel_fired()) {
                         light_skipped.fetch_add(1, std::memory_order_relaxed);
                         return;
                       }
                       TraceRecorder::Scope chunk_scope(trace, "light-chunk",
                                                        light_span);
                       light_executed.fetch_add(1, std::memory_order_relaxed);
                       if (ws.shard == nullptr) ws.shard = &sink->shard(w);
                       if (ws.counter.universe() < num_z) {
                         ws.counter.ResizeUniverse(num_z);
                       }
                       for (size_t a = a0; a < a1; ++a) {
                         const auto av = static_cast<Value>(a);
                         if (r.DegX(av) == 0) continue;
                         if (use_matrix && part.HeavyXId(av) != kInvalidValue) {
                           continue;
                         }
                         runner.EmitHead(av, nullptr, &ws);
                       }
                     });
  TraceEnd(trace, light_span);
  result.light_seconds = light_timer.Seconds();

  // ---- Pass B: heavy rows, block by block. If the sink was satisfied by
  // the light pass alone, skip the whole heavy phase — operand build,
  // planning, and dense materialization included — and account every
  // would-be block as skipped. This ceil(rows / row_block) must equal the
  // count PlanProductBlocks would have produced, so heavy_blocks_total is
  // identical whether the phase ran or was skipped, at every thread count
  // (guarded by QueryEngine.DoneMidChunkSkipsIdenticalDownstreamBlocks).
  if (use_matrix && (sink->done() || cancel_fired())) {
    result.heavy_blocks_total =
        (hxs.size() + opts.row_block - 1) / opts.row_block;
    blocks_skipped.store(result.heavy_blocks_total);
  } else if (use_matrix) {
    WallTimer heavy_timer;
    TraceRecorder::Scope heavy_scope(trace, "heavy", tparent);
    const TraceRecorder::SpanId heavy_id = heavy_scope.id();
    // CSR operands straight from the heavy adjacency lists — no dense
    // materialization pass. Column ids ascend within each row because the
    // index's adjacency lists are sorted and heavy ids are assigned in
    // ascending value order.
    const TraceRecorder::SpanId csr_span =
        TraceBegin(trace, "csr-build", heavy_id);
    const CsrMatrix csr1 = CsrMatrix::FromRows(
        hxs.size(), hys.size(), threads,
        [&](size_t i, std::vector<uint32_t>* out) {
          for (Value b : r.YsOf(hxs[i])) {
            const Value id = part.HeavyYId(b);
            if (id != kInvalidValue) out->push_back(id);
          }
        });
    const CsrMatrix csr2 = CsrMatrix::FromRows(
        hys.size(), hzs.size(), threads,
        [&](size_t i, std::vector<uint32_t>* out) {
          for (Value c : s.XsOf(hys[i])) {
            const Value id = part.HeavyZId(c);
            if (id != kInvalidValue) out->push_back(id);
          }
        });
    TraceEnd(trace, csr_span);

    const size_t row_block = opts.row_block;
    const size_t num_chunks = (hxs.size() + row_block - 1) / row_block;
    result.heavy_blocks_total = num_chunks;

    // Density-adaptive decomposition (core/density_partition.h): kForce
    // engages the grid whenever a heavy product exists; kAuto only when the
    // priced grid beats the uniform plan AND the permuted operands + band
    // slices fit what remains of the memory cap. Work units stay the same
    // ceil(rows / row_block) chunks as the uniform plan, so the early-exit
    // accounting (executed + skipped == total) is mode-invariant.
    DensityGrid grid;
    bool density = false;
    if (opts.partition != PartitionMode::kOff) {
      DensityGridOptions go;
      go.row_block = row_block;
      go.mode = opts.heavy_path;
      go.rates = opts.sparse_rates;
      go.allow_dense = allow_dense;
      go.allow_csr_dense = allow_csr_dense;
      // Cross-execution memo (satellite of the batching subsystem): one
      // PreparedQuery re-running against its immutable snapshots would
      // rebuild the identical grid, so PlanState hands us a DensityGridCache
      // keyed on everything the build reads — the ADJUSTED thresholds `t`
      // plus the DensityGridOptions fields.
      const TraceRecorder::SpanId remap_span =
          TraceBegin(trace, "degree-remap", heavy_id);
      std::shared_ptr<const DensityGrid> memo =
          opts.grid_cache == nullptr
              ? nullptr
              : opts.grid_cache->Lookup(t, row_block, opts.heavy_path,
                                        allow_dense, allow_csr_dense,
                                        opts.sparse_rates);
      if (memo != nullptr) {
        grid = *memo;
        result.partition_cache_hit = true;
        if (MetricsEnabled()) JoinMetrics::Get().partition_grid_cache_hits.Add();
      } else {
        grid = BuildDensityGrid(csr1, csr2, go);
        if (opts.grid_cache != nullptr) {
          opts.grid_cache->Store(t, row_block, opts.heavy_path, allow_dense,
                                 allow_csr_dense, opts.sparse_rates,
                                 std::make_shared<DensityGrid>(grid));
        }
      }
      TraceEnd(trace, remap_span,
               result.partition_cache_hit ? "cache-hit" : "cache-miss");
      density = opts.partition == PartitionMode::kForce || grid.beneficial;
      if (density) {
        bool grid_dense = false;
        bool grid_float = false;
        for (const BlockKernelChoice& blk : grid.blocks) {
          grid_dense |= blk.kernel == ProductKernel::kDenseGemm;
          grid_float |= blk.kernel != ProductKernel::kCsrCsr;
        }
        // Extra working set of the remapped execution: a permuted copy of
        // M1 (CSR; dense too when some block runs the GEMM) and per-band M2
        // slices (CSR always; the dense + packed band slices are bounded by
        // the full dense forms when float kernels run).
        uint64_t extra =
            CsrBytes(hxs.size(), m1_nnz) + CsrBytes(hys.size(), m2_nnz) +
            8 * static_cast<uint64_t>(grid.num_col_bands()) * (hys.size() + 1);
        if (grid_float) extra += 4 * hys.size() * hzs.size();
        if (grid_dense) {
          extra += 4 * hxs.size() * hys.size() +
                   PackedBBytes(hys.size(), hzs.size());
        }
        if (heavy_bytes + extra > opts.max_matrix_bytes) density = false;
      }
    }

    if (density) {
      result.partition_used = true;
      result.partition_row_bands = grid.num_row_bands();
      result.partition_col_bands = grid.num_col_bands();
      result.partition_blocks_scheduled = grid.blocks.size();
      result.partition_blocks_pruned = grid.pruned_blocks;
      result.partition_signature = grid.Signature();
      result.block_choices = grid.blocks;
      bool any_dense = false;
      bool any_float = false;
      for (const BlockKernelChoice& blk : grid.blocks) {
        switch (blk.kernel) {
          case ProductKernel::kDenseGemm:
            ++result.kernel_counts.dense;
            any_dense = true;
            any_float = true;
            break;
          case ProductKernel::kCsrDense:
            ++result.kernel_counts.csr_dense;
            any_float = true;
            break;
          case ProductKernel::kCsrCsr:
            ++result.kernel_counts.csr_csr;
            break;
        }
      }
      // Same float-exactness bound as the uniform plan (see mm_join.h).
      if (any_float) {
        JPMM_CHECK_MSG(hys.size() < kMaxExactFloatCount,
                       "heavy inner dimension exceeds exact float count range");
      }

      // Permuted operands: M1 with its rows in remapped order, M2 sliced
      // into one matrix per column band with band-local column ids. The
      // inner dimension is shared and unpermuted, so every existing kernel
      // runs unchanged on the slices.
      const TraceRecorder::SpanId pack_span =
          TraceBegin(trace, "pack", heavy_id);
      const CsrMatrix csr1r = CsrMatrix::FromRows(
          hxs.size(), hys.size(), threads,
          [&](size_t i, std::vector<uint32_t>* out) {
            for (uint32_t c : csr1.Row(grid.row_perm[i])) out->push_back(c);
          });
      std::vector<uint32_t> inv_col(hzs.size());
      for (size_t k = 0; k < grid.col_perm.size(); ++k) {
        inv_col[grid.col_perm[k]] = static_cast<uint32_t>(k);
      }
      const size_t ncb = grid.num_col_bands();
      // Scheduled (choice, column-band) pairs per row band, plus which
      // representations each column band actually needs.
      std::vector<std::vector<std::pair<const BlockKernelChoice*, size_t>>>
          band_blocks(grid.num_row_bands());
      std::vector<uint8_t> band_any(ncb, 0);
      std::vector<uint8_t> band_float(ncb, 0);
      std::vector<uint8_t> band_dense(ncb, 0);
      for (const BlockKernelChoice& blk : result.block_choices) {
        size_t bi = 0;
        while (grid.row_bands[bi] != blk.row_begin) ++bi;
        size_t bj = 0;
        while (grid.col_bands[bj] != blk.col_begin) ++bj;
        band_blocks[bi].emplace_back(&blk, bj);
        band_any[bj] = 1;
        if (blk.kernel != ProductKernel::kCsrCsr) band_float[bj] = 1;
        if (blk.kernel == ProductKernel::kDenseGemm) band_dense[bj] = 1;
      }
      std::vector<CsrMatrix> csr2_band(ncb);
      std::vector<Matrix> m2_band(ncb);
      std::vector<PackedB> packed_band(ncb);
      for (size_t j = 0; j < ncb; ++j) {
        if (!band_any[j]) continue;
        const uint32_t cb0 = grid.col_bands[j];
        const uint32_t cb1 = grid.col_bands[j + 1];
        csr2_band[j] = CsrMatrix::FromRows(
            hys.size(), cb1 - cb0, threads,
            [&](size_t y, std::vector<uint32_t>* out) {
              for (uint32_t c : csr2.Row(y)) {
                const uint32_t k = inv_col[c];
                if (k >= cb0 && k < cb1) out->push_back(k - cb0);
              }
            });
        if (band_float[j]) m2_band[j] = csr2_band[j].ToDense(threads);
        if (band_dense[j]) packed_band[j] = PackedB(m2_band[j], threads);
      }
      Matrix m1r;
      if (any_dense) m1r = csr1r.ToDense(threads);
      TraceEnd(trace, pack_span);

      // Chunks are the claimed work units (same accounting as the uniform
      // plan); each lies inside exactly one row band (bands are snapped to
      // row_block multiples) and runs that band's scheduled column-band
      // blocks, gathering (z, count) entries per row. Emission applies the
      // inverse remap, so the output is byte-identical to the uniform plan.
      ParallelForDynamic(
          threads, num_chunks, /*grain=*/1, [&](size_t c0, size_t c1, int w) {
            WorkerState& ws = workers[static_cast<size_t>(w)];
            if (ws.shard == nullptr) ws.shard = &sink->shard(w);
            if (ws.counter.universe() < num_z) ws.counter.ResizeUniverse(num_z);
            for (size_t ci = c0; ci < c1; ++ci) {
              if (sink->done() || cancel_fired()) {
                blocks_skipped.fetch_add(c1 - ci, std::memory_order_relaxed);
                return;
              }
              blocks_executed.fetch_add(1, std::memory_order_relaxed);
              const size_t r0 = ci * row_block;
              const size_t r1 = std::min(hxs.size(), r0 + row_block);
              const size_t nrows = r1 - r0;
              size_t bi = grid.num_row_bands() - 1;
              while (grid.row_bands[bi] > r0) --bi;
              if (ws.row_entries.size() < nrows) ws.row_entries.resize(nrows);
              for (size_t li = 0; li < nrows; ++li) ws.row_entries[li].clear();
              for (const auto& [blk, j] : band_blocks[bi]) {
                TraceRecorder::Scope block_scope(
                    trace, BlockSpanName(blk->kernel), heavy_id);
                const uint32_t cb0 = blk->col_begin;
                const size_t bw = blk->col_end - cb0;
                if (blk->kernel == ProductKernel::kCsrCsr) {
                  CsrCsrRowRange(csr1r, csr2_band[j], r0, r1, &ws.csr_scratch,
                                 &ws.sparse_block);
                  for (size_t li = 0; li < nrows; ++li) {
                    const auto cols = ws.sparse_block.RowCols(li);
                    const auto counts = ws.sparse_block.RowCounts(li);
                    for (size_t e = 0; e < cols.size(); ++e) {
                      ws.row_entries[li].push_back(CountedPair{
                          0, hzs[grid.col_perm[cb0 + cols[e]]], counts[e]});
                    }
                  }
                } else {
                  ws.block.resize(row_block * bw);
                  std::span<float> out(ws.block.data(), nrows * bw);
                  if (blk->kernel == ProductKernel::kDenseGemm) {
                    MultiplyRowRange(m1r, packed_band[j], r0, r1, out);
                  } else {
                    CsrDenseRowRange(csr1r, m2_band[j], r0, r1, out);
                  }
                  for (size_t li = 0; li < nrows; ++li) {
                    const float* prow = ws.block.data() + li * bw;
                    for (size_t jj = 0; jj < bw; ++jj) {
                      const float v = prow[jj];
                      if (v > 0.5f) {
                        ws.row_entries[li].push_back(
                            CountedPair{0, hzs[grid.col_perm[cb0 + jj]],
                                        static_cast<uint32_t>(v + 0.5f)});
                      }
                    }
                  }
                }
              }
              TraceRecorder::Scope emit_scope(trace, "emit-inverse-remap",
                                              heavy_id);
              for (size_t li = 0; li < nrows; ++li) {
                runner.EmitHeadEntries(hxs[grid.row_perm[r0 + li]],
                                       &ws.row_entries[li], &ws);
              }
            }
          });
    } else {
      result.partition_signature = "uniform";
      result.block_choices = PlanProductBlocks(
          csr1, csr2, row_block, opts.heavy_path, opts.sparse_rates,
          allow_dense, allow_csr_dense, &result.kernel_counts);
      const bool any_dense = result.kernel_counts.dense > 0;
      const bool any_float = any_dense || result.kernel_counts.csr_dense > 0;
      // Heavy witness counts on the float paths accumulate in float cells
      // and are read back with an integer cast; both are exact only below
      // 2^24 (see mm_join.h). The per-cell maximum is the inner dimension.
      // The CSR x CSR path counts in uint32 and has no such bound.
      if (any_float) {
        JPMM_CHECK_MSG(hys.size() < kMaxExactFloatCount,
                       "heavy inner dimension exceeds exact float count range");
      }

      // Dense representations only for the blocks that want them.
      const TraceRecorder::SpanId pack_span =
          TraceBegin(trace, "pack", heavy_id);
      Matrix m1, m2;
      PackedB packed_m2;
      if (any_dense) m1 = csr1.ToDense(threads);
      if (any_float) m2 = csr2.ToDense(threads);
      if (any_dense) packed_m2 = PackedB(m2, threads);
      TraceEnd(trace, pack_span);

      // Blocks are claimed dynamically: emit cost per block tracks the
      // output skew, not just the flops.
      const size_t num_blocks = result.block_choices.size();
      ParallelForDynamic(
          threads, num_blocks, /*grain=*/1, [&](size_t b0, size_t b1, int w) {
            WorkerState& ws = workers[static_cast<size_t>(w)];
            if (ws.shard == nullptr) ws.shard = &sink->shard(w);
            if (ws.counter.universe() < num_z) ws.counter.ResizeUniverse(num_z);
            for (size_t blk = b0; blk < b1; ++blk) {
              if (sink->done() || cancel_fired()) {
                blocks_skipped.fetch_add(b1 - blk, std::memory_order_relaxed);
                return;
              }
              blocks_executed.fetch_add(1, std::memory_order_relaxed);
              const BlockKernelChoice& choice = result.block_choices[blk];
              TraceRecorder::Scope block_scope(
                  trace, BlockSpanName(choice.kernel), heavy_id);
              const size_t r0 = choice.row_begin;
              const size_t r1 = choice.row_end;
              if (choice.kernel == ProductKernel::kCsrCsr) {
                CsrCsrRowRange(csr1, csr2, r0, r1, &ws.csr_scratch,
                               &ws.sparse_block);
                for (size_t i = r0; i < r1; ++i) {
                  runner.EmitHead(hxs[i], ws.sparse_block.RowCols(i - r0),
                                  ws.sparse_block.RowCounts(i - r0), &ws);
                }
                continue;
              }
              ws.block.resize(row_block * hzs.size());
              if (choice.kernel == ProductKernel::kDenseGemm) {
                MultiplyRowRange(m1, packed_m2, r0, r1, ws.block);
              } else {
                CsrDenseRowRange(csr1, m2, r0, r1, ws.block);
              }
              for (size_t i = r0; i < r1; ++i) {
                runner.EmitHead(hxs[i],
                                ws.block.data() + (i - r0) * hzs.size(), &ws);
              }
            }
          });
    }
    result.heavy_seconds = heavy_timer.Seconds();
  }

  // ---- Merge point. Dynamic chunk claiming makes the pair ORDER
  // run-dependent (the header documents it as unspecified); the pair SET is
  // deterministic at every thread count. With a caller sink the results
  // already live there; otherwise move the fallback's merged vectors out.
  {
    TraceRecorder::Scope finish_scope(trace, "sink-finish", tparent);
    sink->Finish();
  }
  if (opts.sink == nullptr) {
    result.pairs = std::move(fallback.pairs());
    result.counted = std::move(fallback.counted());
  }
  result.heavy_blocks_executed = blocks_executed.load();
  result.heavy_blocks_skipped = blocks_skipped.load();
  result.light_chunks_total =
      r.num_x() == 0 ? 0 : (r.num_x() + kHeadGrain - 1) / kHeadGrain;
  result.light_chunks_executed = light_executed.load();
  result.light_chunks_skipped = light_skipped.load();
  result.interrupted = interrupted.load();

  if (MetricsEnabled()) {
    JoinMetrics& jm = JoinMetrics::Get();
    jm.light_executed.Add(result.light_chunks_executed);
    jm.light_skipped.Add(result.light_chunks_skipped);
    jm.blocks_executed.Add(result.heavy_blocks_executed);
    jm.blocks_skipped.Add(result.heavy_blocks_skipped);
    jm.kernel_dense.Add(result.kernel_counts.dense);
    jm.kernel_csr_dense.Add(result.kernel_counts.csr_dense);
    jm.kernel_csr_csr.Add(result.kernel_counts.csr_csr);
    jm.operand_bytes.Add(heavy_bytes);
    if (result.partition_used) jm.partition_engaged.Add();
    jm.partition_pruned.Add(result.partition_blocks_pruned);
    jm.light_ms.Record(result.light_seconds * 1e3);
    if (use_matrix) jm.heavy_ms.Record(result.heavy_seconds * 1e3);
  }
  return result;
}

}  // namespace jpmm
