#include "core/mm_join.h"

#include <algorithm>
#include <memory>

#include "common/check.h"
#include "common/stamp_set.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/two_path_internal.h"
#include "matrix/dense_matrix.h"
#include "matrix/matmul.h"

namespace jpmm {
namespace {

// Per-worker scratch + output buffers.
struct WorkerState {
  StampCounter counter;
  std::vector<Value> touched;
  std::vector<Value> witness_buf;           // kSortLocal scratch
  std::vector<CountedPair> matrix_entries;  // kSortLocal scratch
  std::vector<float> block;                 // matrix row-block buffer
  std::vector<OutPair> pairs;
  std::vector<CountedPair> counted;
};

class TwoPathRunner {
 public:
  TwoPathRunner(const internal::TwoPathContext& ctx, const MmJoinOptions& opts)
      : ctx_(ctx), opts_(opts) {}

  // Emits the output pairs of head value a. matrix_row, when non-null, holds
  // the heavy-witness counts for columns [0, heavy_z.size()).
  void EmitHead(Value a, const float* matrix_row, WorkerState* ws) const {
    if (opts_.dedup == DedupImpl::kStampArray) {
      EmitHeadStamp(a, matrix_row, ws);
    } else {
      EmitHeadSort(a, matrix_row, ws);
    }
  }

 private:
  void EmitHeadStamp(Value a, const float* matrix_row, WorkerState* ws) const {
    ws->counter.NewEpoch();
    ws->touched.clear();
    ctx_.AccumulateLight(a, &ws->counter, &ws->touched);
    if (matrix_row != nullptr) {
      const auto& hz = ctx_.part.heavy_z();
      for (size_t j = 0; j < hz.size(); ++j) {
        const float v = matrix_row[j];
        if (v > 0.5f) {
          const auto cnt = static_cast<uint32_t>(v + 0.5f);
          if (ws->counter.Add(hz[j], cnt) == 0) ws->touched.push_back(hz[j]);
        }
      }
    }
    for (Value c : ws->touched) {
      const uint32_t cnt = ws->counter.Get(c);
      if (cnt < opts_.min_count) continue;
      if (opts_.count_witnesses) {
        ws->counted.push_back(CountedPair{a, c, cnt});
      } else {
        ws->pairs.push_back(OutPair{a, c});
      }
    }
  }

  void EmitHeadSort(Value a, const float* matrix_row, WorkerState* ws) const {
    ws->witness_buf.clear();
    ctx_.AccumulateLightToVector(a, &ws->witness_buf);
    std::sort(ws->witness_buf.begin(), ws->witness_buf.end());

    ws->matrix_entries.clear();
    if (matrix_row != nullptr) {
      const auto& hz = ctx_.part.heavy_z();
      for (size_t j = 0; j < hz.size(); ++j) {
        const float v = matrix_row[j];
        if (v > 0.5f) {
          ws->matrix_entries.push_back(
              CountedPair{a, hz[j], static_cast<uint32_t>(v + 0.5f)});
        }
      }
    }

    // Merge the sorted witness runs with the (already z-sorted) matrix
    // entries, summing counts per z.
    size_t i = 0;
    size_t m = 0;
    const size_t n = ws->witness_buf.size();
    const size_t mn = ws->matrix_entries.size();
    auto emit = [&](Value c, uint32_t cnt) {
      if (cnt < opts_.min_count) return;
      if (opts_.count_witnesses) {
        ws->counted.push_back(CountedPair{a, c, cnt});
      } else {
        ws->pairs.push_back(OutPair{a, c});
      }
    };
    while (i < n || m < mn) {
      Value c;
      if (i < n && (m >= mn || ws->witness_buf[i] <= ws->matrix_entries[m].z)) {
        c = ws->witness_buf[i];
      } else {
        c = ws->matrix_entries[m].z;
      }
      uint32_t cnt = 0;
      while (i < n && ws->witness_buf[i] == c) {
        ++cnt;
        ++i;
      }
      if (m < mn && ws->matrix_entries[m].z == c) {
        cnt += ws->matrix_entries[m].count;
        ++m;
      }
      emit(c, cnt);
    }
  }

  const internal::TwoPathContext& ctx_;
  const MmJoinOptions& opts_;
};

}  // namespace

MmJoinResult MmJoinTwoPath(const IndexedRelation& r, const IndexedRelation& s,
                           const MmJoinOptions& options) {
  MmJoinOptions opts = options;
  JPMM_CHECK(opts.min_count >= 1);
  JPMM_CHECK_MSG(opts.min_count == 1 || opts.count_witnesses,
                 "min_count > 1 requires count_witnesses");
  JPMM_CHECK(opts.row_block >= 1);

  Thresholds t = opts.thresholds;
  t.delta1 = std::max<uint64_t>(1, t.delta1);
  t.delta2 = std::max<uint64_t>(1, t.delta2);
  const int threads = std::max(1, opts.threads);

  // Build the context; double the thresholds until the heavy-part working
  // set fits the memory cap (fewer heavy values => smaller matrices). The
  // footprint is the two dense operands PLUS the shared packed-B slab PLUS
  // one row-block product buffer per worker — the buffers alone are
  // threads * row_block * hz floats, which dwarfs the operands when hz is
  // large and threads are many, so they must count against the cap.
  std::unique_ptr<internal::TwoPathContext> ctx;
  for (;;) {
    ctx = std::make_unique<internal::TwoPathContext>(r, s, t);
    const uint64_t hx = ctx->part.heavy_x().size();
    const uint64_t hy = ctx->part.heavy_y().size();
    const uint64_t hz = ctx->part.heavy_z().size();
    if (hy == 0) break;
    const uint64_t blocks = (hx + opts.row_block - 1) / opts.row_block;
    const uint64_t block_workers =
        std::min<uint64_t>(static_cast<uint64_t>(threads),
                           std::max<uint64_t>(1, blocks));
    const uint64_t bytes = 4 * (hx * hy + hy * hz) + PackedBBytes(hy, hz) +
                           4 * block_workers * opts.row_block * hz;
    if (bytes <= opts.max_matrix_bytes) break;
    t.delta1 *= 2;
    t.delta2 *= 2;
  }

  MmJoinResult result;
  result.adjusted_thresholds = t;
  const auto& part = ctx->part;
  const auto& hxs = part.heavy_x();
  const auto& hys = part.heavy_y();
  const auto& hzs = part.heavy_z();
  result.heavy_rows = hxs.size();
  result.heavy_inner = hys.size();
  result.heavy_cols = hzs.size();
  const bool use_matrix = !hxs.empty() && !hys.empty() && !hzs.empty();
  // Heavy witness counts accumulate in float matrix cells and are read back
  // with an integer cast; both are exact only below 2^24 (see mm_join.h).
  // The per-cell maximum is the inner dimension |heavy y|.
  if (use_matrix) {
    JPMM_CHECK_MSG(hys.size() < kMaxExactFloatCount,
                   "heavy inner dimension exceeds exact float count range");
  }

  std::vector<WorkerState> workers(static_cast<size_t>(threads));
  const size_t num_z = s.num_x();
  const TwoPathRunner runner(*ctx, opts);

  // ---- Pass A: head values with no matrix row (light part only).
  // Dynamic chunking: zipf-skewed x degrees make contiguous static chunks
  // wildly unbalanced (one worker can own all the hubs).
  WallTimer light_timer;
  constexpr size_t kHeadGrain = 256;
  ParallelForDynamic(threads, r.num_x(), kHeadGrain,
                     [&](size_t a0, size_t a1, int w) {
                       WorkerState& ws = workers[static_cast<size_t>(w)];
                       if (ws.counter.universe() < num_z) {
                         ws.counter.ResizeUniverse(num_z);
                       }
                       for (size_t a = a0; a < a1; ++a) {
                         const auto av = static_cast<Value>(a);
                         if (r.DegX(av) == 0) continue;
                         if (use_matrix && part.HeavyXId(av) != kInvalidValue) {
                           continue;
                         }
                         runner.EmitHead(av, nullptr, &ws);
                       }
                     });
  result.light_seconds = light_timer.Seconds();

  // ---- Pass B: heavy rows, block by block.
  if (use_matrix) {
    WallTimer heavy_timer;
    Matrix m1(hxs.size(), hys.size());
    Matrix m2(hys.size(), hzs.size());
    ParallelFor(threads, hxs.size(), [&](size_t i0, size_t i1, int) {
      for (size_t i = i0; i < i1; ++i) {
        auto row = m1.MutableRow(i);
        for (Value b : r.YsOf(hxs[i])) {
          const Value id = part.HeavyYId(b);
          if (id != kInvalidValue) row[id] = 1.0f;
        }
      }
    });
    ParallelFor(threads, hys.size(), [&](size_t i0, size_t i1, int) {
      for (size_t i = i0; i < i1; ++i) {
        auto row = m2.MutableRow(i);
        for (Value c : s.XsOf(hys[i])) {
          const Value id = part.HeavyZId(c);
          if (id != kInvalidValue) row[id] = 1.0f;
        }
      }
    });

    // M2's panels are packed once (packing fans out over the pool) and
    // shared read-only by every row-block worker; the legacy path re-packed
    // them once per worker per block. Blocks are claimed dynamically: emit
    // cost per block tracks the output skew, not just the flops.
    const PackedB packed_m2(m2, threads);
    const size_t row_block = opts.row_block;
    const size_t num_blocks = (hxs.size() + row_block - 1) / row_block;
    ParallelForDynamic(
        threads, num_blocks, /*grain=*/1, [&](size_t b0, size_t b1, int w) {
          WorkerState& ws = workers[static_cast<size_t>(w)];
          if (ws.counter.universe() < num_z) ws.counter.ResizeUniverse(num_z);
          ws.block.resize(row_block * hzs.size());
          for (size_t blk = b0; blk < b1; ++blk) {
            const size_t r0 = blk * row_block;
            const size_t r1 = std::min(hxs.size(), r0 + row_block);
            MultiplyRowRange(m1, packed_m2, r0, r1, ws.block);
            for (size_t i = r0; i < r1; ++i) {
              runner.EmitHead(hxs[i], ws.block.data() + (i - r0) * hzs.size(),
                              &ws);
            }
          }
        });
    result.heavy_seconds = heavy_timer.Seconds();
  }

  // ---- Merge worker outputs. Dynamic chunk claiming makes the pair ORDER
  // run-dependent (the header documents it as unspecified); the pair SET is
  // deterministic at every thread count.
  size_t total_pairs = 0, total_counted = 0;
  for (const auto& ws : workers) {
    total_pairs += ws.pairs.size();
    total_counted += ws.counted.size();
  }
  result.pairs.reserve(total_pairs);
  result.counted.reserve(total_counted);
  for (auto& ws : workers) {
    result.pairs.insert(result.pairs.end(), ws.pairs.begin(), ws.pairs.end());
    result.counted.insert(result.counted.end(), ws.counted.begin(),
                          ws.counted.end());
  }
  return result;
}

}  // namespace jpmm
