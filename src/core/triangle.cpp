#include "core/triangle.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/thread_pool.h"
#include "matrix/dense_matrix.h"
#include "matrix/matmul.h"

namespace jpmm {

uint64_t CountTrianglesNodeIterator(const IndexedRelation& graph) {
  uint64_t count = 0;
  for (Value v = 0; v < graph.num_x(); ++v) {
    const auto adj = graph.YsOf(v);
    for (size_t i = 0; i < adj.size(); ++i) {
      if (adj[i] <= v) continue;  // count at the minimum-id vertex
      for (size_t j = i + 1; j < adj.size(); ++j) {
        if (adj[j] <= v) continue;
        if (graph.Contains(adj[i], adj[j])) ++count;
      }
    }
  }
  return count;
}

TriangleCountResult CountTrianglesMm(const IndexedRelation& graph,
                                     const TriangleCountOptions& options) {
  TriangleCountResult result;
  const uint64_t edges = graph.num_tuples();
  uint64_t delta = options.delta != 0
                       ? options.delta
                       : std::max<uint64_t>(
                             1, static_cast<uint64_t>(std::sqrt(
                                    static_cast<double>(edges))));

  // Heavy vertex set under the (possibly memory-degraded) threshold.
  std::vector<Value> heavy;
  std::vector<Value> heavy_id;
  for (;;) {
    heavy.clear();
    heavy_id.assign(graph.num_x(), kInvalidValue);
    for (Value v = 0; v < graph.num_x(); ++v) {
      if (graph.DegX(v) > delta) {
        heavy_id[v] = static_cast<Value>(heavy.size());
        heavy.push_back(v);
      }
    }
    const uint64_t bytes = 4ull * heavy.size() * heavy.size();
    if (heavy.empty() || bytes <= options.max_matrix_bytes) break;
    delta *= 2;
  }
  result.delta_used = delta;
  result.heavy_vertices = heavy.size();
  const int threads = std::max(1, options.threads);

  // Light part: triangles containing >= 1 light vertex, counted at their
  // minimum-id light vertex. A neighbour participates only if it is heavy
  // or has a larger id (so no other light vertex claims the triangle
  // first).
  std::vector<uint64_t> light_partial(static_cast<size_t>(threads), 0);
  // Dynamic chunks: per-vertex cost is quadratic in (skewed) degree.
  // Accumulate (+=) — a dynamic worker handles many chunks.
  ParallelForDynamic(threads, graph.num_x(), /*grain=*/512,
                     [&](size_t v0, size_t v1, int w) {
    uint64_t local = 0;
    std::vector<Value> eligible;
    for (size_t v = v0; v < v1; ++v) {
      const auto vv = static_cast<Value>(v);
      if (graph.DegX(vv) == 0 || graph.DegX(vv) > delta) continue;
      eligible.clear();
      for (Value u : graph.YsOf(vv)) {
        if (u == vv) continue;  // ignore self loops
        if (graph.DegX(u) > delta || u > vv) eligible.push_back(u);
      }
      for (size_t i = 0; i < eligible.size(); ++i) {
        for (size_t j = i + 1; j < eligible.size(); ++j) {
          if (graph.Contains(eligible[i], eligible[j])) ++local;
        }
      }
    }
    light_partial[static_cast<size_t>(w)] += local;
  });
  for (uint64_t c : light_partial) result.light_triangles += c;

  // Heavy part: trace(A_H^3) / 6. A_H is symmetric, so
  // trace(A^3) = sum_{i,j} (A^2)[i][j] * A[i][j], computed in row blocks.
  if (heavy.size() >= 3) {
    Matrix a(heavy.size(), heavy.size());
    for (size_t i = 0; i < heavy.size(); ++i) {
      auto row = a.MutableRow(i);
      for (Value u : graph.YsOf(heavy[i])) {
        if (u == heavy[i]) continue;
        const Value id = heavy_id[u];
        if (id != kInvalidValue) row[id] = 1.0f;
      }
    }
    // A's panels are packed once into a shared slab; workers claim 256-row
    // product blocks (two MC panels) dynamically and accumulate (+=) their
    // trace contributions.
    const PackedB packed_a(a, threads);
    constexpr size_t kRowBlock = 256;
    const size_t num_blocks = (heavy.size() + kRowBlock - 1) / kRowBlock;
    std::vector<double> trace_partial(static_cast<size_t>(threads), 0.0);
    std::vector<std::vector<float>> blocks(static_cast<size_t>(threads));
    ParallelForDynamic(threads, num_blocks, /*grain=*/1,
                       [&](size_t b0, size_t b1, int w) {
      std::vector<float>& block = blocks[static_cast<size_t>(w)];
      block.resize(kRowBlock * heavy.size());
      double local = 0.0;
      for (size_t blk = b0; blk < b1; ++blk) {
        const size_t r0 = blk * kRowBlock;
        const size_t r1 = std::min(heavy.size(), r0 + kRowBlock);
        MultiplyRowRange(a, packed_a, r0, r1, block);
        for (size_t i = r0; i < r1; ++i) {
          const float* a2row = block.data() + (i - r0) * heavy.size();
          const auto arow = a.Row(i);
          for (size_t j = 0; j < heavy.size(); ++j) {
            local += static_cast<double>(a2row[j]) * arow[j];
          }
        }
      }
      trace_partial[static_cast<size_t>(w)] += local;
    });
    double trace = 0.0;
    for (double t : trace_partial) trace += t;
    result.heavy_triangles = static_cast<uint64_t>(trace / 6.0 + 0.5);
  }

  result.triangles = result.light_triangles + result.heavy_triangles;
  return result;
}

}  // namespace jpmm
