#include "core/triangle.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "common/check.h"
#include "common/thread_pool.h"
#include "core/cancel_token.h"
#include "core/trace.h"
#include "matrix/dense_matrix.h"
#include "matrix/matmul.h"
#include "matrix/sparse_matrix.h"

namespace jpmm {
namespace {

// Rows per trace product block: two MC panels of the blocked kernel (see
// core/mm_join.h). Shared by the memory-cap accounting and the heavy loop.
constexpr size_t kTraceRowBlock = 256;

}  // namespace

uint64_t CountTrianglesNodeIterator(const IndexedRelation& graph) {
  uint64_t count = 0;
  for (Value v = 0; v < graph.num_x(); ++v) {
    const auto adj = graph.YsOf(v);
    for (size_t i = 0; i < adj.size(); ++i) {
      if (adj[i] <= v) continue;  // count at the minimum-id vertex
      for (size_t j = i + 1; j < adj.size(); ++j) {
        if (adj[j] <= v) continue;
        if (graph.Contains(adj[i], adj[j])) ++count;
      }
    }
  }
  return count;
}

TriangleCountResult CountTrianglesMm(const IndexedRelation& graph,
                                     const TriangleCountOptions& options) {
  TriangleCountResult result;
  const uint64_t edges = graph.num_tuples();
  uint64_t delta = options.delta != 0
                       ? options.delta
                       : std::max<uint64_t>(
                             1, static_cast<uint64_t>(std::sqrt(
                                    static_cast<double>(edges))));

  // Heavy vertex set under the (possibly memory-degraded) threshold. The
  // CSR adjacency is the memory floor; the dense matrix + packed slab are
  // gated by the cap (a capped run keeps its delta and degrades to the
  // CSR x CSR trace instead of shrinking the heavy set).
  const int threads = std::max(1, options.threads);
  std::vector<Value> heavy;
  std::vector<Value> heavy_id;
  bool allow_dense = true;
  for (;;) {
    heavy.clear();
    heavy_id.assign(graph.num_x(), kInvalidValue);
    uint64_t nnz = 0;
    for (Value v = 0; v < graph.num_x(); ++v) {
      if (graph.DegX(v) > delta) {
        heavy_id[v] = static_cast<Value>(heavy.size());
        heavy.push_back(v);
      }
    }
    // Parallel accumulate: the per-vertex cost is the (skewed) heavy
    // degree, and this runs once per delta-doubling iteration.
    std::vector<uint64_t> nnz_partial(static_cast<size_t>(threads), 0);
    ParallelForDynamic(threads, heavy.size(), /*grain=*/64,
                       [&](size_t i0, size_t i1, int w) {
                         uint64_t local = 0;
                         for (size_t i = i0; i < i1; ++i) {
                           const Value v = heavy[i];
                           for (Value u : graph.YsOf(v)) {
                             if (u != v && heavy_id[u] != kInvalidValue) {
                               ++local;
                             }
                           }
                         }
                         nnz_partial[static_cast<size_t>(w)] += local;
                       });
    for (uint64_t c : nnz_partial) nnz += c;
    const uint64_t h = heavy.size();
    const uint64_t blocks = (h + kTraceRowBlock - 1) / kTraceRowBlock;
    const uint64_t block_workers = std::min<uint64_t>(
        static_cast<uint64_t>(threads), std::max<uint64_t>(1, blocks));
    // Per-worker float product-block buffers, paid by the dense and
    // CSR x dense kernels alike.
    const uint64_t acc = 4ull * block_workers * kTraceRowBlock * h;
    const uint64_t csr_bytes = CsrBytes(h, nnz) + 12ull * block_workers * h;
    const uint64_t dense_bytes =
        4ull * h * h + PackedBBytes(h, h) + acc + csr_bytes;
    switch (options.heavy_path) {
      case HeavyPathMode::kForceCsrCsr:
        allow_dense = false;
        break;
      case HeavyPathMode::kAuto:
        allow_dense = dense_bytes <= options.max_matrix_bytes;
        break;
      default:
        allow_dense = true;
        break;
    }
    const uint64_t bytes = allow_dense ? dense_bytes : csr_bytes;
    if (heavy.empty() || bytes <= options.max_matrix_bytes) break;
    delta *= 2;
  }
  result.delta_used = delta;
  result.heavy_vertices = heavy.size();

  // Light part: triangles containing >= 1 light vertex, counted at their
  // minimum-id light vertex. A neighbour participates only if it is heavy
  // or has a larger id (so no other light vertex claims the triangle
  // first).
  const CancelToken* cancel = options.cancel;
  // Per-phase skip counters: a chunk/block either runs or is counted
  // skipped, never both, so executed + skipped is exact at every thread
  // count (the chunk-claim + done() audit invariant — see
  // QueryEngine.DoneMidChunkSkipsIdenticalDownstreamBlocks).
  std::atomic<uint64_t> light_executed{0};
  std::atomic<uint64_t> light_skipped{0};
  std::atomic<uint64_t> skipped{0};
  std::vector<uint64_t> light_partial(static_cast<size_t>(threads), 0);
  TraceRecorder* const trace_rec = options.trace;
  const TraceRecorder::SpanId tparent = options.trace_parent;
  const TraceRecorder::SpanId light_span =
      TraceBegin(trace_rec, "light-pass", tparent);
  // Dynamic chunks: per-vertex cost is quadratic in (skewed) degree.
  // Accumulate (+=) — a dynamic worker handles many chunks.
  ParallelForDynamic(threads, graph.num_x(), /*grain=*/512,
                     [&](size_t v0, size_t v1, int w) {
    if (cancel != nullptr && cancel->Fired()) {
      light_skipped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    light_executed.fetch_add(1, std::memory_order_relaxed);
    uint64_t local = 0;
    std::vector<Value> eligible;
    for (size_t v = v0; v < v1; ++v) {
      const auto vv = static_cast<Value>(v);
      if (graph.DegX(vv) == 0 || graph.DegX(vv) > delta) continue;
      eligible.clear();
      for (Value u : graph.YsOf(vv)) {
        if (u == vv) continue;  // ignore self loops
        if (graph.DegX(u) > delta || u > vv) eligible.push_back(u);
      }
      for (size_t i = 0; i < eligible.size(); ++i) {
        for (size_t j = i + 1; j < eligible.size(); ++j) {
          if (graph.Contains(eligible[i], eligible[j])) ++local;
        }
      }
    }
    light_partial[static_cast<size_t>(w)] += local;
  });
  TraceEnd(trace_rec, light_span);
  for (uint64_t c : light_partial) result.light_triangles += c;

  // Heavy part: trace(A_H^3) / 6. A_H is symmetric, so
  // trace(A^3) = sum_{i,j} (A^2)[i][j] * A[i][j], computed in row blocks.
  // Per-block dispatch: the A^2 block comes from the dense GEMM, the
  // CSR x dense saxpy, or the CSR x CSR stamp kernel, whichever the block's
  // measured density makes cheapest; the A[i][j] mask is then applied as a
  // dense dot, a CSR-indexed gather, or a sorted-merge intersection
  // respectively.
  if (heavy.size() >= 3) {
    TraceRecorder::Scope heavy_scope(trace_rec, "heavy", tparent);
    const size_t h = heavy.size();
    const CsrMatrix csr_a = CsrMatrix::FromRows(
        h, h, threads, [&](size_t i, std::vector<uint32_t>* out) {
          for (Value u : graph.YsOf(heavy[i])) {
            if (u == heavy[i]) continue;
            const Value id = heavy_id[u];
            if (id != kInvalidValue) out->push_back(id);
          }
        });
    result.heavy_nnz = csr_a.nnz();
    result.heavy_density = csr_a.Density();

    const uint64_t trace_blocks = (h + kTraceRowBlock - 1) / kTraceRowBlock;
    const uint64_t trace_workers = std::min<uint64_t>(
        static_cast<uint64_t>(threads), std::max<uint64_t>(1, trace_blocks));
    const bool allow_csr_dense =
        options.heavy_path != HeavyPathMode::kForceCsrCsr &&
        (allow_dense ||
         4ull * h * h + 4ull * trace_workers * kTraceRowBlock * h +
                 csr_a.SizeBytes() <=
             options.max_matrix_bytes);
    const std::vector<BlockKernelChoice> choices = PlanProductBlocks(
        csr_a, csr_a, kTraceRowBlock, options.heavy_path, options.sparse_rates,
        allow_dense, allow_csr_dense, &result.kernel_counts);
    const bool any_dense = result.kernel_counts.dense > 0;
    const bool any_float = any_dense || result.kernel_counts.csr_dense > 0;

    Matrix a;
    PackedB packed_a;
    if (any_float) a = csr_a.ToDense(threads);
    if (any_dense) packed_a = PackedB(a, threads);

    std::vector<double> trace_partial(static_cast<size_t>(threads), 0.0);
    std::vector<std::vector<float>> blocks(static_cast<size_t>(threads));
    std::vector<CsrScratch> scratch(static_cast<size_t>(threads));
    std::vector<SparseRowBlock> sparse_blocks(static_cast<size_t>(threads));
    ParallelForDynamic(threads, choices.size(), /*grain=*/1,
                       [&](size_t b0, size_t b1, int w) {
      double local = 0.0;
      for (size_t blk = b0; blk < b1; ++blk) {
        if (cancel != nullptr && cancel->Fired()) {
          skipped.fetch_add(b1 - blk, std::memory_order_relaxed);
          break;  // keep the trace contribution of already-run blocks
        }
        const BlockKernelChoice& choice = choices[blk];
        const size_t r0 = choice.row_begin;
        const size_t r1 = choice.row_end;
        if (choice.kernel == ProductKernel::kCsrCsr) {
          auto& sblk = sparse_blocks[static_cast<size_t>(w)];
          CsrCsrRowRange(csr_a, csr_a, r0, r1,
                         &scratch[static_cast<size_t>(w)], &sblk);
          for (size_t i = r0; i < r1; ++i) {
            // Both column lists ascend; merge-intersect A^2 row with A row.
            const auto pcols = sblk.RowCols(i - r0);
            const auto pcounts = sblk.RowCounts(i - r0);
            const auto acols = csr_a.Row(i);
            size_t p = 0, q = 0;
            while (p < pcols.size() && q < acols.size()) {
              if (pcols[p] < acols[q]) {
                ++p;
              } else if (pcols[p] > acols[q]) {
                ++q;
              } else {
                local += static_cast<double>(pcounts[p]);
                ++p;
                ++q;
              }
            }
          }
          continue;
        }
        std::vector<float>& block = blocks[static_cast<size_t>(w)];
        block.resize(kTraceRowBlock * h);
        if (choice.kernel == ProductKernel::kDenseGemm) {
          MultiplyRowRange(a, packed_a, r0, r1, block);
        } else {
          CsrDenseRowRange(csr_a, a, r0, r1, block);
        }
        for (size_t i = r0; i < r1; ++i) {
          const float* a2row = block.data() + (i - r0) * h;
          // Gather through the CSR row: only A's set cells contribute.
          for (uint32_t j : csr_a.Row(i)) {
            local += static_cast<double>(a2row[j]);
          }
        }
      }
      trace_partial[static_cast<size_t>(w)] += local;
    });
    double trace = 0.0;
    for (double t : trace_partial) trace += t;
    result.heavy_triangles = static_cast<uint64_t>(trace / 6.0 + 0.5);
  }

  result.light_chunks_total =
      graph.num_x() == 0 ? 0 : (graph.num_x() + 511) / 512;
  result.light_chunks_executed = light_executed.load();
  result.light_chunks_skipped = light_skipped.load();
  result.blocks_skipped = skipped.load();
  result.cancelled =
      result.light_chunks_skipped > 0 || result.blocks_skipped > 0;
  result.triangles = result.light_triangles + result.heavy_triangles;
  return result;
}

}  // namespace jpmm
