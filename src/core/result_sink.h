// ResultSink — push-based result delivery for every jpmm query family.
//
// The paper's algorithms are output-sensitive, so the API should be too:
// limit, count-only, and top-k consumers must not pay for materializing
// every output pair. A ResultSink inverts the old "return a vector"
// contract into push-based delivery:
//
//   - The executor calls Open(workers) once, then each worker w emits
//     through shard(w) — shards are single-owner, so parallel emission
//     needs no locks — and finally the executor calls Finish() once on the
//     coordinating thread.
//   - done() is a cooperative early-exit signal, polled by the emit loops
//     at bucket/block granularity: once a LimitSink has its k pairs, the
//     remaining light chunks and heavy product blocks are skipped (the
//     skip counts surface through the result structs and
//     `jpmm_cli --explain`).
//   - Delivery order is unspecified (it follows dynamic chunk claiming);
//     the pair SET at a given option set is deterministic for sinks that
//     accept everything. Executors apply min_count filtering BEFORE the
//     sink, so a sink only ever sees qualifying results.
//
// Ships six consumers: VectorSink (materialize-everything back-compat),
// CountOnlySink, LimitSink, PageSink (offset + limit pagination),
// TopKByCountSink, and OrderedBySink (ranked delivery per Deep, Hu &
// Koutris 2022). Custom sinks implement the same contract; see docs/api.md.

#ifndef JPMM_CORE_RESULT_SINK_H_
#define JPMM_CORE_RESULT_SINK_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/types.h"

namespace jpmm {

/// Push-based consumer of query results. See the file header for the
/// threading contract (Open / shard(w) / Finish, plus done() from any
/// thread).
class ResultSink {
 public:
  /// Per-worker emission handle. shard(w) is touched only by worker w
  /// between Open() and Finish(), so implementations need no locking in
  /// the On* methods unless they share state across shards on purpose.
  class Shard {
   public:
    virtual ~Shard() = default;
    /// One plain output pair (count_witnesses off).
    virtual void OnPair(const OutPair& p) = 0;
    /// One counted output pair (count_witnesses on). The count is the
    /// exact witness count and is already >= the query's min_count.
    virtual void OnCountedPair(const CountedPair& p) = 0;
    /// One k-ary star tuple (star queries only; duplicate-free).
    virtual void OnTuple(std::span<const Value> tuple) { (void)tuple; }
    /// Block-granular bulk delivery; default loops the scalar hooks.
    virtual void OnPairs(std::span<const OutPair> ps);
    virtual void OnCountedPairs(std::span<const CountedPair> ps);
  };

  virtual ~ResultSink() = default;

  /// Called once by the executor before any emission. num_shards is the
  /// worker count; shard(w) must be valid for w in [0, num_shards).
  /// Reopening resets the sink for a fresh execution.
  virtual void Open(int num_shards) = 0;

  /// Worker w's emission handle. Valid between Open() and Finish().
  virtual Shard& shard(int w) = 0;

  /// Cooperative early exit: when true, executors skip remaining work at
  /// the next bucket/block boundary. Must be callable from any thread.
  virtual bool done() const { return false; }

  /// True when done() can become true before the query completes (e.g.
  /// LimitSink). Executors whose emission is not naturally streaming
  /// (the star join needs global tuple dedup) only pay the incremental
  /// delivery overhead when this is set.
  virtual bool may_finish_early() const { return false; }

  /// False for sinks whose shards do not consume OnTuple (pair-only
  /// consumers like TopKByCountSink). QueryEngine rejects star queries
  /// into such a sink instead of silently delivering nothing.
  virtual bool supports_tuples() const { return true; }

  /// Called once after all parallel emission finished; merge point.
  virtual void Finish() {}
};

/// Materializes every result — the back-compat sink the old facade is a
/// wrapper over. Shard buffers merge in shard order at Finish(), matching
/// the old per-worker merge exactly.
class VectorSink : public ResultSink {
 public:
  VectorSink();
  ~VectorSink() override;

  void Open(int num_shards) override;
  Shard& shard(int w) override;
  void Finish() override;

  std::vector<OutPair>& pairs() { return pairs_; }
  std::vector<CountedPair>& counted() { return counted_; }
  /// Star tuples, flattened with stride arity(); empty for pair queries.
  const std::vector<Value>& tuple_data() const { return tuple_data_; }
  uint32_t tuple_arity() const { return tuple_arity_; }
  size_t size() const {
    if (!pairs_.empty()) return pairs_.size();
    if (!counted_.empty()) return counted_.size();
    return tuple_arity_ == 0 ? 0 : tuple_data_.size() / tuple_arity_;
  }

 private:
  struct VectorShard;
  std::vector<std::unique_ptr<VectorShard>> shards_;
  std::vector<OutPair> pairs_;
  std::vector<CountedPair> counted_;
  std::vector<Value> tuple_data_;
  uint32_t tuple_arity_ = 0;
};

/// Counts results without storing them.
class CountOnlySink : public ResultSink {
 public:
  CountOnlySink();
  ~CountOnlySink() override;

  void Open(int num_shards) override;
  Shard& shard(int w) override;

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

 private:
  struct CountShard;
  std::vector<std::unique_ptr<CountShard>> shards_;
  std::atomic<uint64_t> count_{0};
};

/// Keeps the first `limit` results to arrive and then reports done().
/// WHICH results are kept follows the (nondeterministic) emission order;
/// the kept count is deterministic: min(limit, |OUT|). Slots are reserved
/// with one atomic fetch_add per result, so across all shards exactly
/// min(limit, emitted) results are stored — no post-hoc truncation.
class LimitSink : public ResultSink {
 public:
  explicit LimitSink(uint64_t limit);
  ~LimitSink() override;

  void Open(int num_shards) override;
  Shard& shard(int w) override;
  bool done() const override {
    return accepted_.load(std::memory_order_relaxed) >= limit_;
  }
  bool may_finish_early() const override { return true; }
  void Finish() override;

  uint64_t limit() const { return limit_; }
  const std::vector<OutPair>& pairs() const { return pairs_; }
  const std::vector<CountedPair>& counted() const { return counted_; }
  const std::vector<Value>& tuple_data() const { return tuple_data_; }
  uint32_t tuple_arity() const { return tuple_arity_; }
  size_t size() const {
    if (!pairs_.empty()) return pairs_.size();
    if (!counted_.empty()) return counted_.size();
    return tuple_arity_ == 0 ? 0 : tuple_data_.size() / tuple_arity_;
  }

 private:
  struct LimitShard;
  const uint64_t limit_;
  std::atomic<uint64_t> accepted_{0};
  std::vector<std::unique_ptr<LimitShard>> shards_;
  std::vector<OutPair> pairs_;
  std::vector<CountedPair> counted_;
  std::vector<Value> tuple_data_;
  uint32_t tuple_arity_ = 0;
};

/// One result page: skips the first `offset` results to arrive, keeps the
/// next `limit`, then reports done() — the early exit fires as soon as the
/// page is full, so deep heavy blocks after the page boundary are skipped.
/// WHICH results fill the page follows the (nondeterministic) emission
/// order; the counts are deterministic:
///   size()    == min(limit, |OUT| - min(offset, |OUT|))
///   skipped() == min(offset, |OUT|)   (exact skip accounting)
/// Slots are reserved with one atomic fetch_add per result, so the skip
/// count and page boundary are exact across any number of shards.
class PageSink : public ResultSink {
 public:
  PageSink(uint64_t offset, uint64_t limit);
  ~PageSink() override;

  void Open(int num_shards) override;
  Shard& shard(int w) override;
  bool done() const override {
    return accepted_.load(std::memory_order_relaxed) >= end_;
  }
  bool may_finish_early() const override { return true; }
  void Finish() override;

  uint64_t offset() const { return offset_; }
  uint64_t limit() const { return end_ - offset_; }
  /// Results skipped to reach the page: exactly min(offset, |OUT|).
  /// Valid after Finish().
  uint64_t skipped() const {
    return std::min(accepted_.load(std::memory_order_relaxed), offset_);
  }
  const std::vector<OutPair>& pairs() const { return pairs_; }
  const std::vector<CountedPair>& counted() const { return counted_; }
  const std::vector<Value>& tuple_data() const { return tuple_data_; }
  uint32_t tuple_arity() const { return tuple_arity_; }
  size_t size() const {
    if (!pairs_.empty()) return pairs_.size();
    if (!counted_.empty()) return counted_.size();
    return tuple_arity_ == 0 ? 0 : tuple_data_.size() / tuple_arity_;
  }

 private:
  struct PageShard;
  const uint64_t offset_;
  const uint64_t end_;  // offset + limit, saturated
  std::atomic<uint64_t> accepted_{0};
  std::vector<std::unique_ptr<PageShard>> shards_;
  std::vector<OutPair> pairs_;
  std::vector<CountedPair> counted_;
  std::vector<Value> tuple_data_;
  uint32_t tuple_arity_ = 0;
};

/// The k highest-witness-count pairs, without a full sort: each shard keeps
/// a size-k min-heap; Finish() merges them. Ordering is count descending,
/// ties broken by (x, z) ascending, so the result is deterministic — equal
/// to sorting the full counted output and taking the first k. Never
/// reports done(): every pair must be seen. Intended for counted pairs;
/// plain pairs rank with implicit weight 1 (k smallest (x, z) pairs).
class TopKByCountSink : public ResultSink {
 public:
  explicit TopKByCountSink(size_t k);
  ~TopKByCountSink() override;

  void Open(int num_shards) override;
  Shard& shard(int w) override;
  bool supports_tuples() const override { return false; }
  void Finish() override;

  size_t k() const { return k_; }
  /// Top-k pairs, count descending (ties (x, z) ascending).
  const std::vector<CountedPair>& top() const { return top_; }

 private:
  struct TopKShard;
  const size_t k_;
  std::vector<std::unique_ptr<TopKShard>> shards_;
  std::vector<CountedPair> top_;
};

/// Ranking for OrderedBySink.
enum class ResultOrder {
  kXzAscending,      // (x, z) lexicographic, the enumeration order
  kCountDescending,  // witness count desc, ties (x, z) asc (== TopK order)
};

const char* ResultOrderName(ResultOrder o);

/// Ranked streaming delivery (ranked enumeration a la Deep, Hu & Koutris
/// 2022): results arrive in an unspecified order, each shard keeps a
/// sorted-on-demand run (bounded to `limit` by a min-heap when a limit is
/// set, so memory is O(shards * limit) instead of O(|OUT|)), and Finish()
/// merges the runs with a bounded cursor-per-shard merge, delivering the
/// output in rank order — to the on_result callback as a stream, and into
/// ranked() materialized. The order is a strict total order, so the result
/// equals sorting the full output and (with a limit) truncating — the
/// full-sort oracle the tests compare against — at every thread count.
/// Never reports done() before the end: every result must be seen to rank.
/// Plain pairs rank with implicit weight 1. Pair-only (no star tuples).
class OrderedBySink : public ResultSink {
 public:
  static constexpr uint64_t kNoLimit = ~uint64_t{0};

  explicit OrderedBySink(ResultOrder order, uint64_t limit = kNoLimit);
  ~OrderedBySink() override;

  void Open(int num_shards) override;
  Shard& shard(int w) override;
  bool supports_tuples() const override { return false; }
  void Finish() override;

  /// Streaming consumer, invoked in rank order during Finish(); set before
  /// Execute. The materialized ranked() vector is filled either way.
  void set_on_result(std::function<void(const CountedPair&)> fn) {
    on_result_ = std::move(fn);
  }

  ResultOrder order() const { return order_; }
  uint64_t limit() const { return limit_; }
  /// The ranked output (counted; plain pairs carry count 1), best first.
  const std::vector<CountedPair>& ranked() const { return ranked_; }

 private:
  struct OrderedShard;
  const ResultOrder order_;
  const uint64_t limit_;
  std::function<void(const CountedPair&)> on_result_;
  std::vector<std::unique_ptr<OrderedShard>> shards_;
  std::vector<CountedPair> ranked_;
};

/// Fans one execution's result stream out to N independent client sinks —
/// the delivery half of QueryService's multi-query batching: a batch leader
/// runs the single product pass into a FanoutSink and every coalesced
/// client's sink receives the same stream with its own done()/limit/page
/// semantics intact.
///
///   - Targets vote: each On* call forwards to every target whose done() is
///     still false (one relaxed load per target, checked per call — the
///     same granularity the executors poll at), so a LimitSink target stops
///     receiving after its k results while the others keep streaming.
///   - done() is the conjunction over targets: the shared execution
///     early-exits only when EVERY client is satisfied — a single follower
///     finishing early never cancels the leader's pass.
///   - Taps are non-voting observers (the result-cache RecordingSink):
///     they receive every result unconditionally and are ignored by done().
///
/// Add targets/taps before Open(); the pointers must outlive the execution
/// (the batcher guarantees this by holding followers until delivery ends).
class FanoutSink : public ResultSink {
 public:
  FanoutSink();
  ~FanoutSink() override;

  /// A voting client sink (one per coalesced request).
  void AddTarget(ResultSink* sink);
  /// A non-voting observer; receives everything, never blocks early exit.
  void AddTap(ResultSink* sink);

  void Open(int num_shards) override;
  Shard& shard(int w) override;
  /// True iff ALL targets report done() (vacuously false with no targets).
  bool done() const override;
  /// The shared pass may finish early only if every target allows it.
  bool may_finish_early() const override;
  /// Tuples are deliverable only if every target AND tap consumes them.
  bool supports_tuples() const override;
  void Finish() override;

  size_t num_targets() const { return targets_.size(); }
  /// Total results delivered across all targets (bulk spans count each
  /// element once per receiving target). Feeds jpmm_batch_fanout_*.
  uint64_t results_forwarded() const {
    return forwarded_.load(std::memory_order_relaxed);
  }

 private:
  struct FanShard;
  std::vector<ResultSink*> targets_;
  std::vector<ResultSink*> taps_;
  std::vector<std::unique_ptr<FanShard>> shards_;
  std::atomic<uint64_t> forwarded_{0};
};

/// Bounded materializer used as a FanoutSink tap: captures the complete
/// result stream of one execution so QueryService can insert it into the
/// versioned result cache. A shared byte budget (one relaxed fetch_add per
/// result) stops capture at `max_bytes` and latches overflowed() — an
/// oversized result is simply not cached, it never fails the query.
class RecordingSink : public ResultSink {
 public:
  explicit RecordingSink(uint64_t max_bytes);
  ~RecordingSink() override;

  void Open(int num_shards) override;
  Shard& shard(int w) override;
  void Finish() override;

  /// True once the stream exceeded max_bytes; the capture is incomplete
  /// and must not be cached.
  bool overflowed() const {
    return overflowed_.load(std::memory_order_relaxed);
  }
  uint64_t bytes() const { return bytes_.load(std::memory_order_relaxed); }

  /// Captured payload, merged in shard order. Valid after Finish();
  /// movable out by the cache-insert path.
  std::vector<OutPair>& pairs() { return pairs_; }
  std::vector<CountedPair>& counted() { return counted_; }
  std::vector<Value>& tuple_data() { return tuple_data_; }
  uint32_t tuple_arity() const { return tuple_arity_; }

 private:
  struct RecordShard;
  const uint64_t max_bytes_;
  std::atomic<uint64_t> bytes_{0};
  std::atomic<bool> overflowed_{false};
  std::vector<std::unique_ptr<RecordShard>> shards_;
  std::vector<OutPair> pairs_;
  std::vector<CountedPair> counted_;
  std::vector<Value> tuple_data_;
  uint32_t tuple_arity_ = 0;
};

}  // namespace jpmm

#endif  // JPMM_CORE_RESULT_SINK_H_
