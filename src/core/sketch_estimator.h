// Sketch-based output-size estimation — §9's proposed improvement over the
// §5 bounds ("modifying estimators for set union and set intersection such
// as KMV and HyperLogLog").
//
// |OUT| = sum over x of |union over b in R[x] of S_y[b]|: a sum of
// set-union cardinalities, which HyperLogLog unions estimate directly.
// High-degree y values get precomputed sketches (merged in O(2^p) per
// occurrence); low-degree adjacency is hashed element-wise. Total cost is
// near-linear in |D| — cheap enough to run inside the optimizer.

#ifndef JPMM_CORE_SKETCH_ESTIMATOR_H_
#define JPMM_CORE_SKETCH_ESTIMATOR_H_

#include <cstdint>

#include "storage/index.h"

namespace jpmm {

struct SketchEstimatorOptions {
  /// HyperLogLog precision (2^p registers per sketch).
  int precision = 9;
  /// y values with deg_S above this get a precomputed sketch.
  uint32_t presketch_degree = 64;
};

/// Estimates |pi_{x,z}(R JOIN S)| with HyperLogLog unions.
uint64_t EstimateTwoPathOutputSketch(
    const IndexedRelation& r, const IndexedRelation& s,
    const SketchEstimatorOptions& options = {});

}  // namespace jpmm

#endif  // JPMM_CORE_SKETCH_ESTIMATOR_H_
