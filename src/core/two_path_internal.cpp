#include "core/two_path_internal.h"

namespace jpmm::internal {

TwoPathContext::TwoPathContext(const IndexedRelation& r_in,
                               const IndexedRelation& s_in, Thresholds t)
    : r(r_in), s(s_in), part(r_in, s_in, t) {
  const Value ny = std::max(r.num_y(), s.num_y());
  lightz_offsets.assign(static_cast<size_t>(ny) + 1, 0);
  for (Value b = 0; b < ny; ++b) {
    if (s.DegY(b) > t.delta1 && r.DegY(b) > 0) {
      uint64_t n_light = 0;
      for (Value c : s.XsOf(b)) {
        if (part.ZLight(c)) ++n_light;
      }
      lightz_offsets[b + 1] = n_light;
    }
  }
  for (Value b = 0; b < ny; ++b) lightz_offsets[b + 1] += lightz_offsets[b];
  lightz_values.resize(lightz_offsets[ny]);
  for (Value b = 0; b < ny; ++b) {
    if (s.DegY(b) > t.delta1 && r.DegY(b) > 0) {
      uint64_t pos = lightz_offsets[b];
      for (Value c : s.XsOf(b)) {
        if (part.ZLight(c)) lightz_values[pos++] = c;
      }
    }
  }
}

void TwoPathContext::AccumulateLight(Value a, StampCounter* counter,
                                     std::vector<Value>* touched) const {
  auto add = [&](Value c) {
    if (counter->Add(c, 1) == 0) touched->push_back(c);
  };
  if (part.XLight(a)) {
    // Class L1 via light a: every witness of a is covered here.
    for (Value b : r.YsOf(a)) {
      for (Value c : s.XsOf(b)) add(c);
    }
    return;
  }
  for (Value b : r.YsOf(a)) {
    if (part.YLight(b)) {
      // Class L1 via light b.
      for (Value c : s.XsOf(b)) add(c);
    } else {
      // Class L2: heavy b, light c.
      for (Value c : LightZOf(b)) add(c);
    }
  }
}

void TwoPathContext::AccumulateLightToVector(Value a,
                                             std::vector<Value>* out) const {
  if (part.XLight(a)) {
    for (Value b : r.YsOf(a)) {
      const auto cs = s.XsOf(b);
      out->insert(out->end(), cs.begin(), cs.end());
    }
    return;
  }
  for (Value b : r.YsOf(a)) {
    if (part.YLight(b)) {
      const auto cs = s.XsOf(b);
      out->insert(out->end(), cs.begin(), cs.end());
    } else {
      const auto cs = LightZOf(b);
      out->insert(out->end(), cs.begin(), cs.end());
    }
  }
}

uint64_t TwoPathContext::LightWitnessCount(Value a) const {
  uint64_t n = 0;
  if (part.XLight(a)) {
    for (Value b : r.YsOf(a)) n += s.DegY(b);
    return n;
  }
  for (Value b : r.YsOf(a)) {
    if (part.YLight(b)) {
      n += s.DegY(b);
    } else {
      n += lightz_offsets[b + 1] - lightz_offsets[b];
    }
  }
  return n;
}

}  // namespace jpmm::internal
