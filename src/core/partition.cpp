#include "core/partition.h"

namespace jpmm {

TwoPathPartition::TwoPathPartition(const IndexedRelation& r,
                                   const IndexedRelation& s, Thresholds t)
    : r_(&r), s_(&s), t_(t) {
  // Candidate heavy y: deg_S(b) > Delta1 and b present in R (otherwise no
  // R+ tuple references it).
  const Value ny = std::max(r.num_y(), s.num_y());
  std::vector<uint8_t> y_candidate(ny, 0);
  for (Value b = 0; b < ny; ++b) {
    y_candidate[b] = (s.DegY(b) > t.delta1 && r.DegY(b) > 0) ? 1 : 0;
  }

  // Heavy x = heavy-degree x values adjacent to >= 1 candidate heavy y.
  heavy_x_id_.assign(r.num_x(), kInvalidValue);
  for (Value a = 0; a < r.num_x(); ++a) {
    if (r.DegX(a) <= t.delta2) continue;
    for (Value b : r.YsOf(a)) {
      if (y_candidate[b]) {
        heavy_x_id_[a] = static_cast<Value>(heavy_x_.size());
        heavy_x_.push_back(a);
        break;
      }
    }
  }

  // Heavy z = heavy-degree z values adjacent to >= 1 candidate heavy y.
  heavy_z_id_.assign(s.num_x(), kInvalidValue);
  for (Value c = 0; c < s.num_x(); ++c) {
    if (s.DegX(c) <= t.delta2) continue;
    for (Value b : s.YsOf(c)) {
      if (b < ny && y_candidate[b]) {
        heavy_z_id_[c] = static_cast<Value>(heavy_z_.size());
        heavy_z_.push_back(c);
        break;
      }
    }
  }

  // Keep a candidate y only if it touches >= 1 heavy x in R and >= 1 heavy z
  // in S; all-zero matrix columns/rows would otherwise inflate the product.
  heavy_y_id_.assign(ny, kInvalidValue);
  for (Value b = 0; b < ny; ++b) {
    if (!y_candidate[b]) continue;
    bool has_heavy_x = false;
    for (Value a : r.XsOf(b)) {
      if (heavy_x_id_[a] != kInvalidValue) {
        has_heavy_x = true;
        break;
      }
    }
    if (!has_heavy_x) continue;
    bool has_heavy_z = false;
    for (Value c : s.XsOf(b)) {
      if (heavy_z_id_[c] != kInvalidValue) {
        has_heavy_z = true;
        break;
      }
    }
    if (!has_heavy_z) continue;
    heavy_y_id_[b] = static_cast<Value>(heavy_y_.size());
    heavy_y_.push_back(b);
  }
}

BinaryRelation TwoPathPartition::RMinus() const {
  BinaryRelation out;
  for (Value a = 0; a < r_->num_x(); ++a) {
    for (Value b : r_->YsOf(a)) {
      if (XLight(a) || YLight(b)) out.Add(a, b);
    }
  }
  out.Finalize();
  return out;
}

BinaryRelation TwoPathPartition::RPlus() const {
  BinaryRelation out;
  for (Value a = 0; a < r_->num_x(); ++a) {
    for (Value b : r_->YsOf(a)) {
      if (!XLight(a) && !YLight(b)) out.Add(a, b);
    }
  }
  out.Finalize();
  return out;
}

BinaryRelation TwoPathPartition::SMinus() const {
  BinaryRelation out;
  for (Value c = 0; c < s_->num_x(); ++c) {
    for (Value b : s_->YsOf(c)) {
      if (ZLight(c) || YLight(b)) out.Add(c, b);
    }
  }
  out.Finalize();
  return out;
}

BinaryRelation TwoPathPartition::SPlus() const {
  BinaryRelation out;
  for (Value c = 0; c < s_->num_x(); ++c) {
    for (Value b : s_->YsOf(c)) {
      if (!ZLight(c) && !YLight(b)) out.Add(c, b);
    }
  }
  out.Finalize();
  return out;
}

}  // namespace jpmm
