#include "core/join_project.h"

#include <algorithm>
#include <atomic>

#include "common/check.h"
#include "common/stamp_set.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/cancel_token.h"
#include "core/trace.h"
#include "storage/stats.h"

namespace jpmm {

std::string ValidateJoinProjectOptions(const JoinProjectOptions& opts) {
  if (opts.threads <= 0) {
    return "threads must be >= 1 (got " + std::to_string(opts.threads) + ")";
  }
  if (opts.min_count < 1) {
    return "min_count must be >= 1";
  }
  if (opts.min_count > 1 && !opts.count_witnesses) {
    return "min_count > 1 requires count_witnesses (witness counts are what "
           "the threshold filters on)";
  }
  if (opts.sink != nullptr && opts.sorted) {
    return "sorted is incompatible with a sink (push delivery has no global "
           "order; sort the materialized output instead)";
  }
  return "";
}

const char* StrategyName(Strategy s) {
  switch (s) {
    case Strategy::kAuto:
      return "auto";
    case Strategy::kMmJoin:
      return "mmjoin";
    case Strategy::kNonMmJoin:
      return "nonmm";
    case Strategy::kWcojFull:
      return "wcoj-full";
  }
  return "?";
}

JoinProjectOutput WcojFullJoinProject(const IndexedRelation& r,
                                      const IndexedRelation& s,
                                      bool count_witnesses, uint32_t min_count,
                                      int threads, ResultSink* caller_sink,
                                      const CancelToken* cancel) {
  JoinProjectOutput out;
  out.executed = Strategy::kWcojFull;
  threads = std::max(1, threads);
  const size_t num_z = s.num_x();

  struct Worker {
    StampCounter counter;
    std::vector<Value> touched;
    ResultSink::Shard* shard = nullptr;
  };
  std::vector<Worker> workers(static_cast<size_t>(threads));

  VectorSink fallback;
  ResultSink* sink = caller_sink != nullptr ? caller_sink : &fallback;
  sink->Open(threads);
  std::atomic<uint64_t> executed{0};
  std::atomic<uint64_t> skipped{0};
  std::atomic<bool> interrupted{false};
  auto cancel_fired = [&]() -> bool {
    if (cancel != nullptr && cancel->Fired()) {
      interrupted.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  };

  // Dynamic chunking over the (possibly zipf-skewed) x domain: a hub-heavy
  // contiguous chunk no longer pins one worker (see mm_join.cpp).
  ParallelForDynamic(threads, r.num_x(), /*grain=*/256,
                     [&](size_t a0, size_t a1, int w) {
    Worker& ws = workers[static_cast<size_t>(w)];
    if (sink->done() || cancel_fired()) {
      skipped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    executed.fetch_add(1, std::memory_order_relaxed);
    if (ws.shard == nullptr) ws.shard = &sink->shard(w);
    if (ws.counter.universe() < num_z) ws.counter.ResizeUniverse(num_z);
    for (size_t a = a0; a < a1; ++a) {
      const auto av = static_cast<Value>(a);
      if (r.DegX(av) == 0) continue;
      ws.counter.NewEpoch();
      ws.touched.clear();
      for (Value b : r.YsOf(av)) {
        for (Value c : s.XsOf(b)) {
          if (ws.counter.Add(c, 1) == 0) ws.touched.push_back(c);
        }
      }
      for (Value c : ws.touched) {
        const uint32_t cnt = ws.counter.Get(c);
        if (cnt < min_count) continue;
        if (count_witnesses) {
          ws.shard->OnCountedPair(CountedPair{av, c, cnt});
        } else {
          ws.shard->OnPair(OutPair{av, c});
        }
      }
    }
  });
  sink->Finish();
  if (caller_sink == nullptr) {
    out.pairs = std::move(fallback.pairs());
    out.counted = std::move(fallback.counted());
  }
  out.light_chunks_total =
      r.num_x() == 0 ? 0 : (r.num_x() + 255) / 256;
  out.light_chunks_executed = executed.load();
  out.light_chunks_skipped = skipped.load();
  out.interrupted = interrupted.load();
  return out;
}

JoinProjectOutput JoinProject::TwoPathWithPlan(const IndexedRelation& r,
                                               const IndexedRelation& s,
                                               const PlanChoice& plan,
                                               const JoinProjectOptions& opts) {
  JPMM_CHECK(opts.min_count >= 1);
  JPMM_CHECK_MSG(opts.min_count == 1 || opts.count_witnesses,
                 "min_count > 1 requires count_witnesses");
  WallTimer timer;

  Strategy strategy = opts.strategy;
  if (strategy == Strategy::kAuto) {
    strategy = plan.use_full_wcoj ? Strategy::kWcojFull : Strategy::kMmJoin;
  }

  Thresholds t = opts.thresholds;
  const bool explicit_thresholds = t.delta1 != 0 || t.delta2 != 0;

  JoinProjectOutput out;
  switch (strategy) {
    case Strategy::kWcojFull: {
      TraceRecorder::Scope wcoj_scope(opts.trace, "wcoj-full",
                                      opts.trace_parent);
      out = WcojFullJoinProject(r, s, opts.count_witnesses, opts.min_count,
                                opts.threads, opts.sink, opts.cancel);
      break;
    }
    case Strategy::kMmJoin: {
      MmJoinOptions mo;
      mo.thresholds = explicit_thresholds ? t : plan.thresholds;
      mo.threads = opts.threads;
      mo.count_witnesses = opts.count_witnesses;
      mo.min_count = opts.min_count;
      mo.heavy_path = opts.heavy_path;
      mo.partition = opts.partition;
      mo.grid_cache = opts.grid_cache;
      mo.max_matrix_bytes = opts.max_matrix_bytes;
      mo.sink = opts.sink;
      mo.cancel = opts.cancel;
      mo.trace = opts.trace;
      mo.trace_parent = opts.trace_parent;
      MmJoinResult res = MmJoinTwoPath(r, s, mo);
      out.pairs = std::move(res.pairs);
      out.counted = std::move(res.counted);
      out.m1_nnz = res.m1_nnz;
      out.m2_nnz = res.m2_nnz;
      out.heavy_density = res.heavy_density;
      out.kernel_counts = res.kernel_counts;
      out.block_choices = std::move(res.block_choices);
      out.partition_used = res.partition_used;
      out.partition_row_bands = res.partition_row_bands;
      out.partition_col_bands = res.partition_col_bands;
      out.partition_blocks_scheduled = res.partition_blocks_scheduled;
      out.partition_blocks_pruned = res.partition_blocks_pruned;
      out.partition_signature = std::move(res.partition_signature);
      out.partition_cache_hit = res.partition_cache_hit;
      out.heavy_blocks_total = res.heavy_blocks_total;
      out.heavy_blocks_executed = res.heavy_blocks_executed;
      out.heavy_blocks_skipped = res.heavy_blocks_skipped;
      out.light_chunks_total = res.light_chunks_total;
      out.light_chunks_executed = res.light_chunks_executed;
      out.light_chunks_skipped = res.light_chunks_skipped;
      out.interrupted = res.interrupted;
      out.executed = Strategy::kMmJoin;
      break;
    }
    case Strategy::kNonMmJoin: {
      NonMmJoinOptions no;
      // A cached plan carries MMJoin thresholds; the combinatorial join
      // re-balances unless the caller pinned thresholds explicitly.
      if (explicit_thresholds) {
        no.thresholds = t;
      } else {
        TwoPathStats stats(r, s);
        no.thresholds = ChooseNonMmThresholds(r, s, stats);
      }
      no.threads = opts.threads;
      no.count_witnesses = opts.count_witnesses;
      no.min_count = opts.min_count;
      no.sink = opts.sink;
      no.cancel = opts.cancel;
      no.trace = opts.trace;
      no.trace_parent = opts.trace_parent;
      MmJoinResult res = NonMmJoinTwoPath(r, s, no);
      out.pairs = std::move(res.pairs);
      out.counted = std::move(res.counted);
      out.heavy_blocks_total = res.heavy_blocks_total;
      out.heavy_blocks_executed = res.heavy_blocks_executed;
      out.heavy_blocks_skipped = res.heavy_blocks_skipped;
      out.light_chunks_total = res.light_chunks_total;
      out.light_chunks_executed = res.light_chunks_executed;
      out.light_chunks_skipped = res.light_chunks_skipped;
      out.interrupted = res.interrupted;
      out.executed = Strategy::kNonMmJoin;
      break;
    }
    case Strategy::kAuto:
      JPMM_CHECK_MSG(false, "unreachable");
  }

  if (opts.sorted && opts.sink == nullptr) {
    std::sort(out.pairs.begin(), out.pairs.end());
    std::sort(out.counted.begin(), out.counted.end());
  }
  out.plan = plan;
  out.seconds = timer.Seconds();
  return out;
}

JoinProjectOutput JoinProject::TwoPath(const IndexedRelation& r,
                                       const IndexedRelation& s,
                                       const JoinProjectOptions& opts) {
  JPMM_CHECK(opts.min_count >= 1);
  JPMM_CHECK_MSG(opts.min_count == 1 || opts.count_witnesses,
                 "min_count > 1 requires count_witnesses");
  WallTimer timer;

  TwoPathStats stats(r, s);
  OptimizerOptions oo = opts.optimizer;
  oo.threads = opts.threads;
  PlanChoice plan = ChooseTwoPathPlan(r, s, stats, oo);

  // The NonMM threshold choice needs the stats we already have; pin it so
  // TwoPathWithPlan does not rebuild them.
  JoinProjectOptions inner = opts;
  if (opts.strategy == Strategy::kNonMmJoin && opts.thresholds.delta1 == 0 &&
      opts.thresholds.delta2 == 0) {
    inner.thresholds = ChooseNonMmThresholds(r, s, stats);
  }
  JoinProjectOutput out = TwoPathWithPlan(r, s, plan, inner);
  out.seconds = timer.Seconds();
  return out;
}

JoinProjectOutput JoinProject::TwoPath(const BinaryRelation& r,
                                       const BinaryRelation& s,
                                       const JoinProjectOptions& opts) {
  JPMM_CHECK_MSG(r.finalized() && s.finalized(),
                 "call Finalize() before querying");
  IndexedRelation ri(r);
  if (&r == &s) return TwoPath(ri, ri, opts);
  IndexedRelation si(s);
  return TwoPath(ri, si, opts);
}

StarJoinResult JoinProject::Star(
    const std::vector<const IndexedRelation*>& rels,
    const JoinProjectOptions& opts) {
  JPMM_CHECK(rels.size() >= 2);
  StarJoinOptions so;
  so.threads = opts.threads;
  so.heavy_path = opts.heavy_path;
  so.partition = opts.partition;
  so.grid_cache = opts.grid_cache;
  so.max_matrix_bytes = opts.max_matrix_bytes;
  so.sink = opts.sink;
  so.cancel = opts.cancel;
  so.trace = opts.trace;
  so.trace_parent = opts.trace_parent;
  if (opts.thresholds.delta1 != 0 || opts.thresholds.delta2 != 0) {
    so.thresholds = opts.thresholds;
  } else {
    so.thresholds = ChooseStarThresholds(rels);
  }

  switch (opts.strategy) {
    case Strategy::kNonMmJoin:
      return NonMmStarJoin(rels, so);
    case Strategy::kWcojFull: {
      StarJoinResult res;
      WallTimer timer;
      {
        TraceRecorder::Scope wcoj_scope(opts.trace, "wcoj-full",
                                        opts.trace_parent);
        res.tuples = WcojStarJoin(rels, opts.threads);
      }
      res.light_seconds = timer.Seconds();
      // The reference baseline materializes first; sinks get one
      // post-evaluation stream (no early production exit on this path).
      if (opts.sink != nullptr) {
        opts.sink->Open(1);
        ResultSink::Shard& shard = opts.sink->shard(0);
        for (size_t i = 0; i < res.tuples.size(); ++i) {
          if (opts.sink->done()) break;
          if (opts.cancel != nullptr && opts.cancel->Fired()) {
            res.interrupted = true;
            break;
          }
          shard.OnTuple(res.tuples.Get(i));
        }
        opts.sink->Finish();
      }
      return res;
    }
    case Strategy::kAuto:
    case Strategy::kMmJoin:
      return MmStarJoin(rels, so);
  }
  return MmStarJoin(rels, so);
}

}  // namespace jpmm
