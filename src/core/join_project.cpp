#include "core/join_project.h"

#include <algorithm>

#include "common/check.h"
#include "common/stamp_set.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "storage/stats.h"

namespace jpmm {

const char* StrategyName(Strategy s) {
  switch (s) {
    case Strategy::kAuto:
      return "auto";
    case Strategy::kMmJoin:
      return "mmjoin";
    case Strategy::kNonMmJoin:
      return "nonmm";
    case Strategy::kWcojFull:
      return "wcoj-full";
  }
  return "?";
}

JoinProjectOutput WcojFullJoinProject(const IndexedRelation& r,
                                      const IndexedRelation& s,
                                      bool count_witnesses, uint32_t min_count,
                                      int threads) {
  JoinProjectOutput out;
  out.executed = Strategy::kWcojFull;
  threads = std::max(1, threads);
  const size_t num_z = s.num_x();

  struct Worker {
    StampCounter counter;
    std::vector<Value> touched;
    std::vector<OutPair> pairs;
    std::vector<CountedPair> counted;
  };
  std::vector<Worker> workers(static_cast<size_t>(threads));

  // Dynamic chunking over the (possibly zipf-skewed) x domain: a hub-heavy
  // contiguous chunk no longer pins one worker (see mm_join.cpp).
  ParallelForDynamic(threads, r.num_x(), /*grain=*/256,
                     [&](size_t a0, size_t a1, int w) {
    Worker& ws = workers[static_cast<size_t>(w)];
    if (ws.counter.universe() < num_z) ws.counter.ResizeUniverse(num_z);
    for (size_t a = a0; a < a1; ++a) {
      const auto av = static_cast<Value>(a);
      if (r.DegX(av) == 0) continue;
      ws.counter.NewEpoch();
      ws.touched.clear();
      for (Value b : r.YsOf(av)) {
        for (Value c : s.XsOf(b)) {
          if (ws.counter.Add(c, 1) == 0) ws.touched.push_back(c);
        }
      }
      for (Value c : ws.touched) {
        const uint32_t cnt = ws.counter.Get(c);
        if (cnt < min_count) continue;
        if (count_witnesses) {
          ws.counted.push_back(CountedPair{av, c, cnt});
        } else {
          ws.pairs.push_back(OutPair{av, c});
        }
      }
    }
  });
  for (auto& ws : workers) {
    out.pairs.insert(out.pairs.end(), ws.pairs.begin(), ws.pairs.end());
    out.counted.insert(out.counted.end(), ws.counted.begin(),
                       ws.counted.end());
  }
  return out;
}

JoinProjectOutput JoinProject::TwoPath(const IndexedRelation& r,
                                       const IndexedRelation& s,
                                       const JoinProjectOptions& opts) {
  JPMM_CHECK(opts.min_count >= 1);
  JPMM_CHECK_MSG(opts.min_count == 1 || opts.count_witnesses,
                 "min_count > 1 requires count_witnesses");
  WallTimer timer;

  TwoPathStats stats(r, s);
  OptimizerOptions oo = opts.optimizer;
  oo.threads = opts.threads;
  PlanChoice plan = ChooseTwoPathPlan(r, s, stats, oo);

  Strategy strategy = opts.strategy;
  if (strategy == Strategy::kAuto) {
    strategy = plan.use_full_wcoj ? Strategy::kWcojFull : Strategy::kMmJoin;
  }

  Thresholds t = opts.thresholds;
  const bool explicit_thresholds = t.delta1 != 0 || t.delta2 != 0;

  JoinProjectOutput out;
  switch (strategy) {
    case Strategy::kWcojFull: {
      out = WcojFullJoinProject(r, s, opts.count_witnesses, opts.min_count,
                                opts.threads);
      break;
    }
    case Strategy::kMmJoin: {
      MmJoinOptions mo;
      mo.thresholds = explicit_thresholds ? t : plan.thresholds;
      mo.threads = opts.threads;
      mo.count_witnesses = opts.count_witnesses;
      mo.min_count = opts.min_count;
      mo.heavy_path = opts.heavy_path;
      MmJoinResult res = MmJoinTwoPath(r, s, mo);
      out.pairs = std::move(res.pairs);
      out.counted = std::move(res.counted);
      out.m1_nnz = res.m1_nnz;
      out.m2_nnz = res.m2_nnz;
      out.heavy_density = res.heavy_density;
      out.kernel_counts = res.kernel_counts;
      out.block_choices = std::move(res.block_choices);
      out.executed = Strategy::kMmJoin;
      break;
    }
    case Strategy::kNonMmJoin: {
      NonMmJoinOptions no;
      no.thresholds =
          explicit_thresholds ? t : ChooseNonMmThresholds(r, s, stats);
      no.threads = opts.threads;
      no.count_witnesses = opts.count_witnesses;
      no.min_count = opts.min_count;
      MmJoinResult res = NonMmJoinTwoPath(r, s, no);
      out.pairs = std::move(res.pairs);
      out.counted = std::move(res.counted);
      out.executed = Strategy::kNonMmJoin;
      break;
    }
    case Strategy::kAuto:
      JPMM_CHECK_MSG(false, "unreachable");
  }

  if (opts.sorted) {
    std::sort(out.pairs.begin(), out.pairs.end());
    std::sort(out.counted.begin(), out.counted.end());
  }
  out.plan = plan;
  out.seconds = timer.Seconds();
  return out;
}

JoinProjectOutput JoinProject::TwoPath(const BinaryRelation& r,
                                       const BinaryRelation& s,
                                       const JoinProjectOptions& opts) {
  JPMM_CHECK_MSG(r.finalized() && s.finalized(),
                 "call Finalize() before querying");
  IndexedRelation ri(r);
  if (&r == &s) return TwoPath(ri, ri, opts);
  IndexedRelation si(s);
  return TwoPath(ri, si, opts);
}

StarJoinResult JoinProject::Star(
    const std::vector<const IndexedRelation*>& rels,
    const JoinProjectOptions& opts) {
  JPMM_CHECK(rels.size() >= 2);
  StarJoinOptions so;
  so.threads = opts.threads;
  so.heavy_path = opts.heavy_path;
  if (opts.thresholds.delta1 != 0 || opts.thresholds.delta2 != 0) {
    so.thresholds = opts.thresholds;
  } else {
    so.thresholds = ChooseStarThresholds(rels);
  }

  switch (opts.strategy) {
    case Strategy::kNonMmJoin:
      return NonMmStarJoin(rels, so);
    case Strategy::kWcojFull: {
      StarJoinResult res;
      WallTimer timer;
      res.tuples = WcojStarJoin(rels, opts.threads);
      res.light_seconds = timer.Seconds();
      return res;
    }
    case Strategy::kAuto:
    case Strategy::kMmJoin:
      return MmStarJoin(rels, so);
  }
  return MmStarJoin(rels, so);
}

}  // namespace jpmm
