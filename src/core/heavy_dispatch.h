// Per-product-block dense/sparse kernel dispatch for the heavy paths.
//
// Every MM-based plan streams its heavy product in row blocks. The dense
// blocked GEMM does O(rows * V * W) work per block regardless of how many
// cells are set; the CSR kernels (matrix/sparse_matrix.h) do O(nnz * W)
// (CSR x dense saxpy) or O(expansion) (CSR x CSR stamp) work. Which wins
// is a function of the block's measured density and the machine's measured
// rates (SparseKernelRates), so the choice is made per block, from the
// exact block nnz the CSR representation provides for free:
//
//   dense GEMM      2 * rows * V * W / dense_flops   + emit scan
//   CSR x dense     SparseProductOps(nnz, rows, W) / rate(d) + emit scan
//   CSR x CSR       CsrCsrExpandOps / rate(d)        (sparse emit, no scan)
//
// mm_join, star_join, and triangle all plan their blocks through
// PlanProductBlocks; the memory-cap loops gate which representations may
// be materialized (allow_dense / allow_csr_dense) so a capped run degrades
// to the cheaper-memory kernel instead of doubling thresholds.

#ifndef JPMM_CORE_HEAVY_DISPATCH_H_
#define JPMM_CORE_HEAVY_DISPATCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "matrix/calibration.h"
#include "matrix/sparse_matrix.h"

namespace jpmm {

/// Execution-path override for the heavy part (options structs; tests force
/// each path and diff sorted outputs).
enum class HeavyPathMode {
  kAuto,          // per-block cost-based choice (the default)
  kForceDense,    // dense blocked GEMM everywhere
  kForceCsrDense, // CSR x dense saxpy everywhere
  kForceCsrCsr,   // CSR x CSR stamp kernel everywhere
};

/// The kernel a product block runs.
enum class ProductKernel {
  kDenseGemm,
  kCsrDense,
  kCsrCsr,
};

const char* ProductKernelName(ProductKernel k);

/// Trace span name for a product block running kernel `k` ("block:dense",
/// "block:csr-dense", "block:csr-csr") — static literals, so TraceSpan can
/// hold them without allocation. Span counts per name are what `--trace`
/// cross-checks against the per-kernel block counts in `--explain`.
const char* BlockSpanName(ProductKernel k);
const char* HeavyPathModeName(HeavyPathMode m);

/// One product block's dispatch decision (surfaced through the result
/// structs and jpmm_cli --explain). Uniform row-block plans span the full
/// output column range; density-adaptive grids (core/density_partition.h)
/// emit one choice per scheduled row-band x column-band cell, with ranges
/// in remapped coordinates.
struct BlockKernelChoice {
  uint32_t row_begin = 0;
  uint32_t row_end = 0;
  uint32_t col_begin = 0;
  uint32_t col_end = 0;
  uint64_t nnz = 0;      // A-operand nnz inside the block
  double density = 0.0;  // nnz / (rows * inner dim)
  ProductKernel kernel = ProductKernel::kDenseGemm;
};

/// Per-kernel block tallies.
struct HeavyKernelCounts {
  uint64_t dense = 0;
  uint64_t csr_dense = 0;
  uint64_t csr_csr = 0;
  uint64_t total() const { return dense + csr_dense + csr_csr; }
};

/// Cheapest kernel for one rows x v by v x w block with the given exact
/// operation counts, under the representation gates (a disallowed dense /
/// csr-dense falls through to the next cheapest allowed kernel; CSR x CSR
/// is always allowed — it is the memory floor).
ProductKernel ChooseProductKernel(uint64_t rows, uint64_t v, uint64_t w,
                                  uint64_t block_nnz, double expand_ops,
                                  const SparseKernelRates& rates,
                                  bool allow_dense, bool allow_csr_dense);

/// Plans the A * B product (A in CSR; B given in CSR for exact expansion
/// counts) as row blocks of row_block rows each, choosing a kernel per
/// block. mode != kAuto forces that kernel on every block (the caller's
/// memory-cap loop must have sized for it), in which case rates are never
/// consulted. rates == nullptr under kAuto resolves to
/// SparseKernelRates::Default() (measured once per process). counts, when
/// non-null, tallies the choices.
std::vector<BlockKernelChoice> PlanProductBlocks(
    const CsrMatrix& a, const CsrMatrix& b, size_t row_block,
    HeavyPathMode mode, const SparseKernelRates* rates, bool allow_dense,
    bool allow_csr_dense, HeavyKernelCounts* counts);

}  // namespace jpmm

#endif  // JPMM_CORE_HEAVY_DISPATCH_H_
