#include "core/result_sink.h"

#include <algorithm>

namespace jpmm {

void ResultSink::Shard::OnPairs(std::span<const OutPair> ps) {
  for (const OutPair& p : ps) OnPair(p);
}

void ResultSink::Shard::OnCountedPairs(std::span<const CountedPair> ps) {
  for (const CountedPair& p : ps) OnCountedPair(p);
}

// ---- VectorSink ----------------------------------------------------------

VectorSink::VectorSink() = default;
VectorSink::~VectorSink() = default;

struct VectorSink::VectorShard : ResultSink::Shard {
  std::vector<OutPair> pairs;
  std::vector<CountedPair> counted;
  std::vector<Value> tuple_data;
  uint32_t tuple_arity = 0;

  void OnPair(const OutPair& p) override { pairs.push_back(p); }
  void OnCountedPair(const CountedPair& p) override { counted.push_back(p); }
  void OnTuple(std::span<const Value> tuple) override {
    tuple_arity = static_cast<uint32_t>(tuple.size());
    tuple_data.insert(tuple_data.end(), tuple.begin(), tuple.end());
  }
  void OnPairs(std::span<const OutPair> ps) override {
    pairs.insert(pairs.end(), ps.begin(), ps.end());
  }
  void OnCountedPairs(std::span<const CountedPair> ps) override {
    counted.insert(counted.end(), ps.begin(), ps.end());
  }
};

void VectorSink::Open(int num_shards) {
  shards_.clear();
  pairs_.clear();
  counted_.clear();
  tuple_data_.clear();
  tuple_arity_ = 0;
  for (int i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<VectorShard>());
  }
}

ResultSink::Shard& VectorSink::shard(int w) {
  return *shards_[static_cast<size_t>(w)];
}

void VectorSink::Finish() {
  size_t np = 0, nc = 0, nt = 0;
  for (const auto& s : shards_) {
    np += s->pairs.size();
    nc += s->counted.size();
    nt += s->tuple_data.size();
    if (s->tuple_arity != 0) tuple_arity_ = s->tuple_arity;
  }
  pairs_.reserve(pairs_.size() + np);
  counted_.reserve(counted_.size() + nc);
  tuple_data_.reserve(tuple_data_.size() + nt);
  for (auto& s : shards_) {
    pairs_.insert(pairs_.end(), s->pairs.begin(), s->pairs.end());
    counted_.insert(counted_.end(), s->counted.begin(), s->counted.end());
    tuple_data_.insert(tuple_data_.end(), s->tuple_data.begin(),
                       s->tuple_data.end());
  }
  shards_.clear();
}

// ---- CountOnlySink -------------------------------------------------------

CountOnlySink::CountOnlySink() = default;
CountOnlySink::~CountOnlySink() = default;

struct CountOnlySink::CountShard : ResultSink::Shard {
  explicit CountShard(std::atomic<uint64_t>* total) : total_(total) {}
  void OnPair(const OutPair&) override {
    total_->fetch_add(1, std::memory_order_relaxed);
  }
  void OnCountedPair(const CountedPair&) override {
    total_->fetch_add(1, std::memory_order_relaxed);
  }
  void OnTuple(std::span<const Value>) override {
    total_->fetch_add(1, std::memory_order_relaxed);
  }
  void OnPairs(std::span<const OutPair> ps) override {
    total_->fetch_add(ps.size(), std::memory_order_relaxed);
  }
  void OnCountedPairs(std::span<const CountedPair> ps) override {
    total_->fetch_add(ps.size(), std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t>* total_;
};

void CountOnlySink::Open(int num_shards) {
  shards_.clear();
  count_.store(0, std::memory_order_relaxed);
  for (int i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<CountShard>(&count_));
  }
}

ResultSink::Shard& CountOnlySink::shard(int w) {
  return *shards_[static_cast<size_t>(w)];
}

// ---- LimitSink -----------------------------------------------------------

LimitSink::LimitSink(uint64_t limit) : limit_(limit) {}
LimitSink::~LimitSink() = default;

struct LimitSink::LimitShard : ResultSink::Shard {
  LimitShard(std::atomic<uint64_t>* accepted, uint64_t limit)
      : accepted_(accepted), limit_(limit) {}

  std::vector<OutPair> pairs;
  std::vector<CountedPair> counted;
  std::vector<Value> tuple_data;
  uint32_t tuple_arity = 0;

  bool Reserve() {
    return accepted_->fetch_add(1, std::memory_order_relaxed) < limit_;
  }
  void OnPair(const OutPair& p) override {
    if (Reserve()) pairs.push_back(p);
  }
  void OnCountedPair(const CountedPair& p) override {
    if (Reserve()) counted.push_back(p);
  }
  void OnTuple(std::span<const Value> tuple) override {
    if (Reserve()) {
      tuple_arity = static_cast<uint32_t>(tuple.size());
      tuple_data.insert(tuple_data.end(), tuple.begin(), tuple.end());
    }
  }

 private:
  std::atomic<uint64_t>* accepted_;
  const uint64_t limit_;
};

void LimitSink::Open(int num_shards) {
  shards_.clear();
  pairs_.clear();
  counted_.clear();
  tuple_data_.clear();
  tuple_arity_ = 0;
  accepted_.store(0, std::memory_order_relaxed);
  for (int i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<LimitShard>(&accepted_, limit_));
  }
}

ResultSink::Shard& LimitSink::shard(int w) {
  return *shards_[static_cast<size_t>(w)];
}

void LimitSink::Finish() {
  for (auto& s : shards_) {
    pairs_.insert(pairs_.end(), s->pairs.begin(), s->pairs.end());
    counted_.insert(counted_.end(), s->counted.begin(), s->counted.end());
    tuple_data_.insert(tuple_data_.end(), s->tuple_data.begin(),
                       s->tuple_data.end());
    if (s->tuple_arity != 0) tuple_arity_ = s->tuple_arity;
  }
  shards_.clear();
}

// ---- TopKByCountSink -----------------------------------------------------

namespace {

// Heap/order comparator: "a ranks above b" in the final output. Count
// descending, ties (x, z) ascending — a strict total order, so the top-k
// set is unique and the result deterministic at every thread count.
bool RanksAbove(const CountedPair& a, const CountedPair& b) {
  if (a.count != b.count) return a.count > b.count;
  if (a.x != b.x) return a.x < b.x;
  return a.z < b.z;
}

}  // namespace

TopKByCountSink::TopKByCountSink(size_t k) : k_(k) {}
TopKByCountSink::~TopKByCountSink() = default;

struct TopKByCountSink::TopKShard : ResultSink::Shard {
  explicit TopKShard(size_t k) : k_(k) {}

  // Min-heap on the ranking: heap[0] is the weakest kept pair.
  std::vector<CountedPair> heap;

  void OnPair(const OutPair& p) override {
    // A non-counted query gives every pair implicit weight 1; the ranking
    // degenerates to the k smallest (x, z) pairs — still deterministic,
    // and a service passing the wrong spec keeps running instead of
    // aborting (ask for count_witnesses to get a meaningful top-k).
    OnCountedPair(CountedPair{p.x, p.z, 1});
  }
  void OnCountedPair(const CountedPair& p) override {
    auto weaker = [](const CountedPair& a, const CountedPair& b) {
      return RanksAbove(a, b);  // std heap: "less" = further from the top
    };
    if (heap.size() < k_) {
      heap.push_back(p);
      std::push_heap(heap.begin(), heap.end(), weaker);
    } else if (!heap.empty() && RanksAbove(p, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), weaker);
      heap.back() = p;
      std::push_heap(heap.begin(), heap.end(), weaker);
    }
  }

 private:
  const size_t k_;
};

void TopKByCountSink::Open(int num_shards) {
  shards_.clear();
  top_.clear();
  for (int i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<TopKShard>(k_));
  }
}

ResultSink::Shard& TopKByCountSink::shard(int w) {
  return *shards_[static_cast<size_t>(w)];
}

void TopKByCountSink::Finish() {
  std::vector<CountedPair> all;
  for (auto& s : shards_) {
    all.insert(all.end(), s->heap.begin(), s->heap.end());
  }
  std::sort(all.begin(), all.end(), RanksAbove);
  if (all.size() > k_) all.resize(k_);
  top_ = std::move(all);
  shards_.clear();
}

}  // namespace jpmm
