#include "core/result_sink.h"

#include <algorithm>

namespace jpmm {

void ResultSink::Shard::OnPairs(std::span<const OutPair> ps) {
  for (const OutPair& p : ps) OnPair(p);
}

void ResultSink::Shard::OnCountedPairs(std::span<const CountedPair> ps) {
  for (const CountedPair& p : ps) OnCountedPair(p);
}

// ---- VectorSink ----------------------------------------------------------

VectorSink::VectorSink() = default;
VectorSink::~VectorSink() = default;

struct VectorSink::VectorShard : ResultSink::Shard {
  std::vector<OutPair> pairs;
  std::vector<CountedPair> counted;
  std::vector<Value> tuple_data;
  uint32_t tuple_arity = 0;

  void OnPair(const OutPair& p) override { pairs.push_back(p); }
  void OnCountedPair(const CountedPair& p) override { counted.push_back(p); }
  void OnTuple(std::span<const Value> tuple) override {
    tuple_arity = static_cast<uint32_t>(tuple.size());
    tuple_data.insert(tuple_data.end(), tuple.begin(), tuple.end());
  }
  void OnPairs(std::span<const OutPair> ps) override {
    pairs.insert(pairs.end(), ps.begin(), ps.end());
  }
  void OnCountedPairs(std::span<const CountedPair> ps) override {
    counted.insert(counted.end(), ps.begin(), ps.end());
  }
};

void VectorSink::Open(int num_shards) {
  shards_.clear();
  pairs_.clear();
  counted_.clear();
  tuple_data_.clear();
  tuple_arity_ = 0;
  for (int i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<VectorShard>());
  }
}

ResultSink::Shard& VectorSink::shard(int w) {
  return *shards_[static_cast<size_t>(w)];
}

void VectorSink::Finish() {
  size_t np = 0, nc = 0, nt = 0;
  for (const auto& s : shards_) {
    np += s->pairs.size();
    nc += s->counted.size();
    nt += s->tuple_data.size();
    if (s->tuple_arity != 0) tuple_arity_ = s->tuple_arity;
  }
  pairs_.reserve(pairs_.size() + np);
  counted_.reserve(counted_.size() + nc);
  tuple_data_.reserve(tuple_data_.size() + nt);
  for (auto& s : shards_) {
    pairs_.insert(pairs_.end(), s->pairs.begin(), s->pairs.end());
    counted_.insert(counted_.end(), s->counted.begin(), s->counted.end());
    tuple_data_.insert(tuple_data_.end(), s->tuple_data.begin(),
                       s->tuple_data.end());
  }
  shards_.clear();
}

// ---- CountOnlySink -------------------------------------------------------

CountOnlySink::CountOnlySink() = default;
CountOnlySink::~CountOnlySink() = default;

struct CountOnlySink::CountShard : ResultSink::Shard {
  explicit CountShard(std::atomic<uint64_t>* total) : total_(total) {}
  void OnPair(const OutPair&) override {
    total_->fetch_add(1, std::memory_order_relaxed);
  }
  void OnCountedPair(const CountedPair&) override {
    total_->fetch_add(1, std::memory_order_relaxed);
  }
  void OnTuple(std::span<const Value>) override {
    total_->fetch_add(1, std::memory_order_relaxed);
  }
  void OnPairs(std::span<const OutPair> ps) override {
    total_->fetch_add(ps.size(), std::memory_order_relaxed);
  }
  void OnCountedPairs(std::span<const CountedPair> ps) override {
    total_->fetch_add(ps.size(), std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t>* total_;
};

void CountOnlySink::Open(int num_shards) {
  shards_.clear();
  count_.store(0, std::memory_order_relaxed);
  for (int i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<CountShard>(&count_));
  }
}

ResultSink::Shard& CountOnlySink::shard(int w) {
  return *shards_[static_cast<size_t>(w)];
}

// ---- LimitSink -----------------------------------------------------------

LimitSink::LimitSink(uint64_t limit) : limit_(limit) {}
LimitSink::~LimitSink() = default;

struct LimitSink::LimitShard : ResultSink::Shard {
  LimitShard(std::atomic<uint64_t>* accepted, uint64_t limit)
      : accepted_(accepted), limit_(limit) {}

  std::vector<OutPair> pairs;
  std::vector<CountedPair> counted;
  std::vector<Value> tuple_data;
  uint32_t tuple_arity = 0;

  bool Reserve() {
    return accepted_->fetch_add(1, std::memory_order_relaxed) < limit_;
  }
  void OnPair(const OutPair& p) override {
    if (Reserve()) pairs.push_back(p);
  }
  void OnCountedPair(const CountedPair& p) override {
    if (Reserve()) counted.push_back(p);
  }
  void OnTuple(std::span<const Value> tuple) override {
    if (Reserve()) {
      tuple_arity = static_cast<uint32_t>(tuple.size());
      tuple_data.insert(tuple_data.end(), tuple.begin(), tuple.end());
    }
  }

 private:
  std::atomic<uint64_t>* accepted_;
  const uint64_t limit_;
};

void LimitSink::Open(int num_shards) {
  shards_.clear();
  pairs_.clear();
  counted_.clear();
  tuple_data_.clear();
  tuple_arity_ = 0;
  accepted_.store(0, std::memory_order_relaxed);
  for (int i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<LimitShard>(&accepted_, limit_));
  }
}

ResultSink::Shard& LimitSink::shard(int w) {
  return *shards_[static_cast<size_t>(w)];
}

void LimitSink::Finish() {
  for (auto& s : shards_) {
    pairs_.insert(pairs_.end(), s->pairs.begin(), s->pairs.end());
    counted_.insert(counted_.end(), s->counted.begin(), s->counted.end());
    tuple_data_.insert(tuple_data_.end(), s->tuple_data.begin(),
                       s->tuple_data.end());
    if (s->tuple_arity != 0) tuple_arity_ = s->tuple_arity;
  }
  shards_.clear();
}

// ---- PageSink ------------------------------------------------------------

namespace {

uint64_t SaturatingAdd(uint64_t a, uint64_t b) {
  return a > ~uint64_t{0} - b ? ~uint64_t{0} : a + b;
}

}  // namespace

PageSink::PageSink(uint64_t offset, uint64_t limit)
    : offset_(offset), end_(SaturatingAdd(offset, limit)) {}
PageSink::~PageSink() = default;

struct PageSink::PageShard : ResultSink::Shard {
  PageShard(std::atomic<uint64_t>* accepted, uint64_t offset, uint64_t end)
      : accepted_(accepted), offset_(offset), end_(end) {}

  std::vector<OutPair> pairs;
  std::vector<CountedPair> counted;
  std::vector<Value> tuple_data;
  uint32_t tuple_arity = 0;

  // One fetch_add per result makes the page boundary exact across shards:
  // result slots [0, offset) are skipped, [offset, end) land in the page.
  bool Reserve() {
    const uint64_t idx = accepted_->fetch_add(1, std::memory_order_relaxed);
    return idx >= offset_ && idx < end_;
  }
  void OnPair(const OutPair& p) override {
    if (Reserve()) pairs.push_back(p);
  }
  void OnCountedPair(const CountedPair& p) override {
    if (Reserve()) counted.push_back(p);
  }
  void OnTuple(std::span<const Value> tuple) override {
    if (Reserve()) {
      tuple_arity = static_cast<uint32_t>(tuple.size());
      tuple_data.insert(tuple_data.end(), tuple.begin(), tuple.end());
    }
  }

 private:
  std::atomic<uint64_t>* accepted_;
  const uint64_t offset_;
  const uint64_t end_;
};

void PageSink::Open(int num_shards) {
  shards_.clear();
  pairs_.clear();
  counted_.clear();
  tuple_data_.clear();
  tuple_arity_ = 0;
  accepted_.store(0, std::memory_order_relaxed);
  for (int i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<PageShard>(&accepted_, offset_, end_));
  }
}

ResultSink::Shard& PageSink::shard(int w) {
  return *shards_[static_cast<size_t>(w)];
}

void PageSink::Finish() {
  for (auto& s : shards_) {
    pairs_.insert(pairs_.end(), s->pairs.begin(), s->pairs.end());
    counted_.insert(counted_.end(), s->counted.begin(), s->counted.end());
    tuple_data_.insert(tuple_data_.end(), s->tuple_data.begin(),
                       s->tuple_data.end());
    if (s->tuple_arity != 0) tuple_arity_ = s->tuple_arity;
  }
  shards_.clear();
}

// ---- TopKByCountSink -----------------------------------------------------

namespace {

// Heap/order comparator: "a ranks above b" in the final output. Count
// descending, ties (x, z) ascending — a strict total order, so the top-k
// set is unique and the result deterministic at every thread count.
bool RanksAbove(const CountedPair& a, const CountedPair& b) {
  if (a.count != b.count) return a.count > b.count;
  if (a.x != b.x) return a.x < b.x;
  return a.z < b.z;
}

}  // namespace

TopKByCountSink::TopKByCountSink(size_t k) : k_(k) {}
TopKByCountSink::~TopKByCountSink() = default;

struct TopKByCountSink::TopKShard : ResultSink::Shard {
  explicit TopKShard(size_t k) : k_(k) {}

  // Min-heap on the ranking: heap[0] is the weakest kept pair.
  std::vector<CountedPair> heap;

  void OnPair(const OutPair& p) override {
    // A non-counted query gives every pair implicit weight 1; the ranking
    // degenerates to the k smallest (x, z) pairs — still deterministic,
    // and a service passing the wrong spec keeps running instead of
    // aborting (ask for count_witnesses to get a meaningful top-k).
    OnCountedPair(CountedPair{p.x, p.z, 1});
  }
  void OnCountedPair(const CountedPair& p) override {
    auto weaker = [](const CountedPair& a, const CountedPair& b) {
      return RanksAbove(a, b);  // std heap: "less" = further from the top
    };
    if (heap.size() < k_) {
      heap.push_back(p);
      std::push_heap(heap.begin(), heap.end(), weaker);
    } else if (!heap.empty() && RanksAbove(p, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), weaker);
      heap.back() = p;
      std::push_heap(heap.begin(), heap.end(), weaker);
    }
  }

 private:
  const size_t k_;
};

void TopKByCountSink::Open(int num_shards) {
  shards_.clear();
  top_.clear();
  for (int i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<TopKShard>(k_));
  }
}

ResultSink::Shard& TopKByCountSink::shard(int w) {
  return *shards_[static_cast<size_t>(w)];
}

void TopKByCountSink::Finish() {
  std::vector<CountedPair> all;
  for (auto& s : shards_) {
    all.insert(all.end(), s->heap.begin(), s->heap.end());
  }
  std::sort(all.begin(), all.end(), RanksAbove);
  if (all.size() > k_) all.resize(k_);
  top_ = std::move(all);
  shards_.clear();
}

// ---- OrderedBySink -------------------------------------------------------

namespace {

// "a ranks above b" under the chosen order. Both orders are strict total
// orders over distinct (x, z) pairs, so ranked output is deterministic.
bool OrderedRanksAbove(ResultOrder order, const CountedPair& a,
                       const CountedPair& b) {
  if (order == ResultOrder::kCountDescending) return RanksAbove(a, b);
  if (a.x != b.x) return a.x < b.x;
  return a.z < b.z;
}

}  // namespace

const char* ResultOrderName(ResultOrder o) {
  switch (o) {
    case ResultOrder::kXzAscending:
      return "xz-ascending";
    case ResultOrder::kCountDescending:
      return "count-descending";
  }
  return "?";
}

OrderedBySink::OrderedBySink(ResultOrder order, uint64_t limit)
    : order_(order), limit_(limit) {}
OrderedBySink::~OrderedBySink() = default;

struct OrderedBySink::OrderedShard : ResultSink::Shard {
  OrderedShard(ResultOrder order, uint64_t limit)
      : order_(order), limit_(limit) {}

  // Unbounded: a plain run, sorted once at Finish(). Bounded: a min-heap
  // on the ranking (run[0] = weakest kept), so the shard never holds more
  // than `limit` results.
  std::vector<CountedPair> run;

  void OnPair(const OutPair& p) override {
    OnCountedPair(CountedPair{p.x, p.z, 1});
  }
  void OnCountedPair(const CountedPair& p) override {
    if (limit_ == kNoLimit) {
      run.push_back(p);
      return;
    }
    auto weaker = [this](const CountedPair& a, const CountedPair& b) {
      return OrderedRanksAbove(order_, a, b);
    };
    if (run.size() < limit_) {
      run.push_back(p);
      std::push_heap(run.begin(), run.end(), weaker);
    } else if (!run.empty() && OrderedRanksAbove(order_, p, run.front())) {
      std::pop_heap(run.begin(), run.end(), weaker);
      run.back() = p;
      std::push_heap(run.begin(), run.end(), weaker);
    }
  }

 private:
  const ResultOrder order_;
  const uint64_t limit_;
};

void OrderedBySink::Open(int num_shards) {
  shards_.clear();
  ranked_.clear();
  for (int i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<OrderedShard>(order_, limit_));
  }
}

ResultSink::Shard& OrderedBySink::shard(int w) {
  return *shards_[static_cast<size_t>(w)];
}

void OrderedBySink::Finish() {
  auto above = [this](const CountedPair& a, const CountedPair& b) {
    return OrderedRanksAbove(order_, a, b);
  };
  // Sort each shard run, then merge with one cursor per shard: the buffer
  // beyond the sorted runs themselves is O(shards), and delivery streams
  // in rank order as the merge advances.
  size_t total = 0;
  for (auto& s : shards_) {
    std::sort(s->run.begin(), s->run.end(), above);
    total += s->run.size();
  }
  std::vector<size_t> cursor(shards_.size(), 0);
  const uint64_t want = std::min<uint64_t>(total, limit_);
  ranked_.reserve(static_cast<size_t>(want));
  while (ranked_.size() < want) {
    size_t best = shards_.size();
    for (size_t i = 0; i < shards_.size(); ++i) {
      if (cursor[i] >= shards_[i]->run.size()) continue;
      if (best == shards_.size() ||
          above(shards_[i]->run[cursor[i]], shards_[best]->run[cursor[best]])) {
        best = i;
      }
    }
    if (best == shards_.size()) break;
    const CountedPair& next = shards_[best]->run[cursor[best]++];
    ranked_.push_back(next);
    if (on_result_) on_result_(next);
  }
  shards_.clear();
}

// ---- FanoutSink ----------------------------------------------------------

FanoutSink::FanoutSink() = default;
FanoutSink::~FanoutSink() = default;

struct FanoutSink::FanShard : ResultSink::Shard {
  // (owning sink, its shard): the sink pointer is polled for done() before
  // every forward so a satisfied target (limit/page reached) stops paying
  // for delivery while the shared pass keeps running for the others.
  std::vector<std::pair<ResultSink*, ResultSink::Shard*>> targets;
  std::vector<ResultSink::Shard*> taps;
  std::atomic<uint64_t>* forwarded = nullptr;

  // Scalar emissions are buffered and forwarded as spans. Without this,
  // a strategy that emits pair-by-pair (the mm-join emit loops do) would
  // pay one virtual dispatch per pair PER TARGET — O(targets x results),
  // which erases exactly the work-sharing the fan-out exists for. The
  // done() vote consequently moves to flush granularity, the same chunk
  // granularity at which the engine itself polls the sink.
  static constexpr size_t kFlushAt = 1024;
  std::vector<OutPair> pair_buf;
  std::vector<CountedPair> counted_buf;

  void ForwardPairs(std::span<const OutPair> ps) {
    uint64_t n = 0;
    for (const auto& [sink, sh] : targets) {
      if (!sink->done()) {
        sh->OnPairs(ps);
        n += ps.size();
      }
    }
    for (Shard* sh : taps) sh->OnPairs(ps);
    forwarded->fetch_add(n, std::memory_order_relaxed);
  }
  void ForwardCounted(std::span<const CountedPair> ps) {
    uint64_t n = 0;
    for (const auto& [sink, sh] : targets) {
      if (!sink->done()) {
        sh->OnCountedPairs(ps);
        n += ps.size();
      }
    }
    for (Shard* sh : taps) sh->OnCountedPairs(ps);
    forwarded->fetch_add(n, std::memory_order_relaxed);
  }
  void Flush() {
    if (!pair_buf.empty()) {
      ForwardPairs(pair_buf);
      pair_buf.clear();
    }
    if (!counted_buf.empty()) {
      ForwardCounted(counted_buf);
      counted_buf.clear();
    }
  }

  void OnPair(const OutPair& p) override {
    if (!counted_buf.empty()) Flush();  // preserve cross-kind order
    pair_buf.push_back(p);
    if (pair_buf.size() >= kFlushAt) Flush();
  }
  void OnCountedPair(const CountedPair& p) override {
    if (!pair_buf.empty()) Flush();
    counted_buf.push_back(p);
    if (counted_buf.size() >= kFlushAt) Flush();
  }
  void OnTuple(std::span<const Value> tuple) override {
    Flush();
    uint64_t n = 0;
    for (const auto& [sink, sh] : targets) {
      if (!sink->done()) {
        sh->OnTuple(tuple);
        ++n;
      }
    }
    for (Shard* sh : taps) sh->OnTuple(tuple);
    forwarded->fetch_add(n, std::memory_order_relaxed);
  }
  void OnPairs(std::span<const OutPair> ps) override {
    Flush();
    ForwardPairs(ps);
  }
  void OnCountedPairs(std::span<const CountedPair> ps) override {
    Flush();
    ForwardCounted(ps);
  }
};

void FanoutSink::AddTarget(ResultSink* sink) { targets_.push_back(sink); }
void FanoutSink::AddTap(ResultSink* sink) { taps_.push_back(sink); }

void FanoutSink::Open(int num_shards) {
  forwarded_.store(0, std::memory_order_relaxed);
  for (ResultSink* t : targets_) t->Open(num_shards);
  for (ResultSink* t : taps_) t->Open(num_shards);
  shards_.clear();
  for (int w = 0; w < num_shards; ++w) {
    auto sh = std::make_unique<FanShard>();
    sh->forwarded = &forwarded_;
    for (ResultSink* t : targets_) sh->targets.emplace_back(t, &t->shard(w));
    for (ResultSink* t : taps_) sh->taps.push_back(&t->shard(w));
    shards_.push_back(std::move(sh));
  }
}

ResultSink::Shard& FanoutSink::shard(int w) {
  return *shards_[static_cast<size_t>(w)];
}

bool FanoutSink::done() const {
  if (targets_.empty()) return false;
  for (const ResultSink* t : targets_) {
    if (!t->done()) return false;
  }
  return true;
}

bool FanoutSink::may_finish_early() const {
  for (const ResultSink* t : targets_) {
    if (!t->may_finish_early()) return false;
  }
  return !targets_.empty();
}

bool FanoutSink::supports_tuples() const {
  for (const ResultSink* t : targets_) {
    if (!t->supports_tuples()) return false;
  }
  for (const ResultSink* t : taps_) {
    if (!t->supports_tuples()) return false;
  }
  return true;
}

void FanoutSink::Finish() {
  for (auto& sh : shards_) sh->Flush();  // drain the scalar buffers first
  for (ResultSink* t : targets_) t->Finish();
  for (ResultSink* t : taps_) t->Finish();
  shards_.clear();
}

// ---- RecordingSink -------------------------------------------------------

RecordingSink::RecordingSink(uint64_t max_bytes) : max_bytes_(max_bytes) {}
RecordingSink::~RecordingSink() = default;

struct RecordingSink::RecordShard : ResultSink::Shard {
  std::vector<OutPair> pairs;
  std::vector<CountedPair> counted;
  std::vector<Value> tuple_data;
  uint32_t tuple_arity = 0;
  uint64_t max_bytes = 0;
  std::atomic<uint64_t>* bytes = nullptr;
  std::atomic<bool>* overflowed = nullptr;

  // One shared budget across shards: charge first, store only if the
  // whole charge fit. Once over, the sink is permanently overflowed and
  // further results are dropped (the capture is discarded anyway).
  bool Charge(uint64_t sz) {
    if (overflowed->load(std::memory_order_relaxed)) return false;
    if (bytes->fetch_add(sz, std::memory_order_relaxed) + sz > max_bytes) {
      overflowed->store(true, std::memory_order_relaxed);
      return false;
    }
    return true;
  }

  void OnPair(const OutPair& p) override {
    if (Charge(sizeof(OutPair))) pairs.push_back(p);
  }
  void OnCountedPair(const CountedPair& p) override {
    if (Charge(sizeof(CountedPair))) counted.push_back(p);
  }
  void OnTuple(std::span<const Value> tuple) override {
    if (Charge(tuple.size() * sizeof(Value))) {
      tuple_arity = static_cast<uint32_t>(tuple.size());
      tuple_data.insert(tuple_data.end(), tuple.begin(), tuple.end());
    }
  }
  void OnPairs(std::span<const OutPair> ps) override {
    if (Charge(ps.size() * sizeof(OutPair))) {
      pairs.insert(pairs.end(), ps.begin(), ps.end());
    }
  }
  void OnCountedPairs(std::span<const CountedPair> ps) override {
    if (Charge(ps.size() * sizeof(CountedPair))) {
      counted.insert(counted.end(), ps.begin(), ps.end());
    }
  }
};

void RecordingSink::Open(int num_shards) {
  shards_.clear();
  pairs_.clear();
  counted_.clear();
  tuple_data_.clear();
  tuple_arity_ = 0;
  bytes_.store(0, std::memory_order_relaxed);
  overflowed_.store(false, std::memory_order_relaxed);
  for (int i = 0; i < num_shards; ++i) {
    auto sh = std::make_unique<RecordShard>();
    sh->max_bytes = max_bytes_;
    sh->bytes = &bytes_;
    sh->overflowed = &overflowed_;
    shards_.push_back(std::move(sh));
  }
}

ResultSink::Shard& RecordingSink::shard(int w) {
  return *shards_[static_cast<size_t>(w)];
}

void RecordingSink::Finish() {
  for (auto& s : shards_) {
    pairs_.insert(pairs_.end(), s->pairs.begin(), s->pairs.end());
    counted_.insert(counted_.end(), s->counted.begin(), s->counted.end());
    tuple_data_.insert(tuple_data_.end(), s->tuple_data.begin(),
                       s->tuple_data.end());
    if (s->tuple_arity != 0) tuple_arity_ = s->tuple_arity;
  }
  shards_.clear();
}

}  // namespace jpmm
