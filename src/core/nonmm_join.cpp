#include "core/nonmm_join.h"

#include <algorithm>
#include <atomic>

#include "common/check.h"
#include "common/metrics.h"
#include "common/stamp_set.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/cancel_token.h"
#include "core/result_sink.h"
#include "core/trace.h"
#include "core/two_path_internal.h"
#include "join/intersection.h"

namespace jpmm {

MmJoinResult NonMmJoinTwoPath(const IndexedRelation& r,
                              const IndexedRelation& s,
                              const NonMmJoinOptions& options) {
  NonMmJoinOptions opts = options;
  JPMM_CHECK(opts.min_count >= 1);
  JPMM_CHECK_MSG(opts.min_count == 1 || opts.count_witnesses,
                 "min_count > 1 requires count_witnesses");
  Thresholds t = opts.thresholds;
  t.delta1 = std::max<uint64_t>(1, t.delta1);
  t.delta2 = std::max<uint64_t>(1, t.delta2);

  const internal::TwoPathContext ctx(r, s, t);
  const TwoPathPartition& part = ctx.part;
  const auto& hxs = part.heavy_x();
  const auto& hys = part.heavy_y();
  const auto& hzs = part.heavy_z();

  MmJoinResult result;
  result.adjusted_thresholds = t;
  result.heavy_rows = hxs.size();
  result.heavy_inner = hys.size();
  result.heavy_cols = hzs.size();
  const bool use_heavy = !hxs.empty() && !hys.empty() && !hzs.empty();

  // Heavy-y adjacency lists by heavy id: ascending because heavy-y ids are
  // assigned in ascending b order and CSR neighbour lists are b-sorted.
  std::vector<std::vector<Value>> r_heavy(hxs.size());
  std::vector<std::vector<Value>> s_heavy(hzs.size());
  if (use_heavy) {
    for (size_t i = 0; i < hxs.size(); ++i) {
      for (Value b : r.YsOf(hxs[i])) {
        const Value id = part.HeavyYId(b);
        if (id != kInvalidValue) r_heavy[i].push_back(id);
      }
    }
    for (size_t j = 0; j < hzs.size(); ++j) {
      for (Value b : s.YsOf(hzs[j])) {
        const Value id = part.HeavyYId(b);
        if (id != kInvalidValue) s_heavy[j].push_back(id);
      }
    }
  }

  const int threads = std::max(1, opts.threads);
  const size_t num_z = s.num_x();

  struct Worker {
    StampCounter counter;
    std::vector<Value> touched;
    ResultSink::Shard* shard = nullptr;
  };
  std::vector<Worker> workers(static_cast<size_t>(threads));

  VectorSink fallback;
  ResultSink* sink = opts.sink != nullptr ? opts.sink : &fallback;
  sink->Open(threads);
  std::atomic<uint64_t> light_executed{0};
  std::atomic<uint64_t> light_skipped{0};
  std::atomic<uint64_t> heavy_executed{0};
  std::atomic<uint64_t> heavy_skipped{0};
  std::atomic<bool> interrupted{false};
  const CancelToken* cancel = opts.cancel;
  auto cancel_fired = [&]() -> bool {
    if (cancel != nullptr && cancel->Fired()) {
      interrupted.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  };

  auto emit_head = [&](Value a, bool with_heavy, Worker* ws) {
    ws->counter.NewEpoch();
    ws->touched.clear();
    ctx.AccumulateLight(a, &ws->counter, &ws->touched);
    if (with_heavy) {
      const auto& ha = r_heavy[part.HeavyXId(a)];
      if (!ha.empty()) {
        for (size_t j = 0; j < hzs.size(); ++j) {
          const auto& hc = s_heavy[j];
          if (hc.empty()) continue;
          if (opts.count_witnesses) {
            const auto cnt =
                static_cast<uint32_t>(IntersectCount(ha, hc));
            if (cnt > 0 && ws->counter.Add(hzs[j], cnt) == 0) {
              ws->touched.push_back(hzs[j]);
            }
          } else if (ws->counter.Get(hzs[j]) == 0 &&
                     IntersectsSorted(ha, hc)) {
            ws->counter.Add(hzs[j], 1);
            ws->touched.push_back(hzs[j]);
          }
        }
      }
    }
    for (Value c : ws->touched) {
      const uint32_t cnt = ws->counter.Get(c);
      if (cnt < opts.min_count) continue;
      if (opts.count_witnesses) {
        ws->shard->OnCountedPair(CountedPair{a, c, cnt});
      } else {
        ws->shard->OnPair(OutPair{a, c});
      }
    }
  };

  TraceRecorder* const trace = opts.trace;
  const TraceRecorder::SpanId tparent = opts.trace_parent;

  // Dynamic chunking over the (zipf-skewed) x domain — see mm_join.cpp.
  WallTimer light_timer;
  const TraceRecorder::SpanId light_span =
      TraceBegin(trace, "light-pass", tparent);
  ParallelForDynamic(threads, r.num_x(), /*grain=*/256,
                     [&](size_t a0, size_t a1, int w) {
    Worker& ws = workers[static_cast<size_t>(w)];
    if (sink->done() || cancel_fired()) {
      light_skipped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    light_executed.fetch_add(1, std::memory_order_relaxed);
    if (ws.shard == nullptr) ws.shard = &sink->shard(w);
    if (ws.counter.universe() < num_z) ws.counter.ResizeUniverse(num_z);
    for (size_t a = a0; a < a1; ++a) {
      const auto av = static_cast<Value>(a);
      if (r.DegX(av) == 0) continue;
      if (use_heavy && part.HeavyXId(av) != kInvalidValue) continue;
      emit_head(av, false, &ws);
    }
  });
  TraceEnd(trace, light_span);
  result.light_seconds = light_timer.Seconds();

  // The heavy "block" here is one dynamic chunk of kHeavyGrain rows: every
  // ParallelForDynamic invocation below increments exactly one of
  // executed/skipped, and heavy_blocks_total is derived from the same
  // grain, so executed + skipped == total at every thread count (the
  // chunk-claim + done() audit invariant).
  constexpr size_t kHeavyGrain = 4;
  if (use_heavy) {
    WallTimer heavy_timer;
    TraceRecorder::Scope heavy_scope(trace, "heavy", tparent);
    ParallelForDynamic(threads, hxs.size(), kHeavyGrain,
                       [&](size_t i0, size_t i1, int w) {
      Worker& ws = workers[static_cast<size_t>(w)];
      if (sink->done() || cancel_fired()) {
        heavy_skipped.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      heavy_executed.fetch_add(1, std::memory_order_relaxed);
      if (ws.shard == nullptr) ws.shard = &sink->shard(w);
      if (ws.counter.universe() < num_z) ws.counter.ResizeUniverse(num_z);
      for (size_t i = i0; i < i1; ++i) emit_head(hxs[i], true, &ws);
    });
    result.heavy_seconds = heavy_timer.Seconds();
  }

  {
    TraceRecorder::Scope finish_scope(trace, "sink-finish", tparent);
    sink->Finish();
  }
  if (opts.sink == nullptr) {
    result.pairs = std::move(fallback.pairs());
    result.counted = std::move(fallback.counted());
  }
  result.heavy_blocks_total =
      use_heavy ? (hxs.size() + kHeavyGrain - 1) / kHeavyGrain : 0;
  result.heavy_blocks_executed = heavy_executed.load();
  result.heavy_blocks_skipped = heavy_skipped.load();
  result.light_chunks_total =
      r.num_x() == 0 ? 0 : (r.num_x() + 255) / 256;
  result.light_chunks_executed = light_executed.load();
  result.light_chunks_skipped = light_skipped.load();
  result.interrupted = interrupted.load();
  if (MetricsEnabled()) {
    static Counter& lc_exec = MetricsRegistry::Global().GetCounter(
        "jpmm_join_light_chunks_executed_total");
    static Counter& lc_skip = MetricsRegistry::Global().GetCounter(
        "jpmm_join_light_chunks_skipped_total");
    static Counter& hb_exec = MetricsRegistry::Global().GetCounter(
        "jpmm_join_heavy_blocks_executed_total");
    static Counter& hb_skip = MetricsRegistry::Global().GetCounter(
        "jpmm_join_heavy_blocks_skipped_total");
    static Histogram& light_ms = MetricsRegistry::Global().GetHistogram(
        "jpmm_join_light_pass_ms", DefaultLatencyBoundsMs());
    static Histogram& heavy_ms = MetricsRegistry::Global().GetHistogram(
        "jpmm_join_heavy_pass_ms", DefaultLatencyBoundsMs());
    lc_exec.Add(result.light_chunks_executed);
    lc_skip.Add(result.light_chunks_skipped);
    hb_exec.Add(result.heavy_blocks_executed);
    hb_skip.Add(result.heavy_blocks_skipped);
    light_ms.Record(result.light_seconds * 1e3);
    if (use_heavy) heavy_ms.Record(result.heavy_seconds * 1e3);
  }
  return result;
}

}  // namespace jpmm
