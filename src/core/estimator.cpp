#include "core/estimator.h"

#include <algorithm>
#include <cmath>

namespace jpmm {

OutputEstimate EstimateTwoPathOutput(const IndexedRelation& r,
                                     const IndexedRelation& s,
                                     const TwoPathStats& stats) {
  OutputEstimate e;
  e.full_join_size = stats.full_join_size();

  const double n = static_cast<double>(std::max(r.num_tuples(), s.num_tuples()));
  const double j = static_cast<double>(e.full_join_size);
  const double dom_x = static_cast<double>(stats.distinct_x());
  const double dom_z = static_cast<double>(stats.distinct_z());

  // Every x with a join partner produces >= 1 output pair; and
  // |OUT| >= (J / N)^2 from J <= N * sqrt(|OUT|).
  double lower = dom_x;
  if (n > 0) lower = std::max(lower, (j / n) * (j / n));
  // At most every (x, z) combination, and at most one output per join tuple.
  double upper = std::min(dom_x * dom_z, j);
  if (upper < lower) upper = lower;  // degenerate inputs

  e.lower = static_cast<uint64_t>(lower);
  e.upper = static_cast<uint64_t>(upper);
  const double est = std::sqrt(std::max(1.0, lower) * std::max(1.0, upper));
  e.estimate = static_cast<uint64_t>(
      std::clamp(est, std::max(1.0, lower), std::max(1.0, upper)));
  return e;
}

}  // namespace jpmm
