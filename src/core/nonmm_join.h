// Non-MMJoin: the combinatorial output-sensitive comparator (Lemma 2, [11]).
//
// Identical light-part processing to Algorithm 1, but the all-heavy witness
// class is verified pairwise: for every (heavy x, heavy z) pair, a galloping
// intersection of their heavy-y adjacency lists. This is the
// O(|D| * |OUT|^{1/2}) algorithm the paper benchmarks as "Non-MMJoin"; the
// only difference from MMJoin is the heavy strategy, so benchmark deltas
// isolate exactly the matrix-multiplication contribution.

#ifndef JPMM_CORE_NONMM_JOIN_H_
#define JPMM_CORE_NONMM_JOIN_H_

#include "core/mm_join.h"
#include "storage/index.h"

namespace jpmm {

struct NonMmJoinOptions {
  Thresholds thresholds;
  int threads = 1;
  bool count_witnesses = false;
  uint32_t min_count = 1;
  /// Push-based delivery + cooperative early exit, as in MmJoinOptions.
  /// The "heavy blocks" counted for early-exit instrumentation are the
  /// dynamic chunks of heavy x values.
  ResultSink* sink = nullptr;
  /// Cancellation token polled like the sink's done(); see MmJoinOptions.
  const CancelToken* cancel = nullptr;
  /// Optional per-query stage tracing under `trace_parent`; null = zero
  /// cost. See MmJoinOptions::trace.
  TraceRecorder* trace = nullptr;
  int32_t trace_parent = -1;  // TraceRecorder::kNoParent
};

/// Runs the combinatorial join. Result fields mirror MmJoinTwoPath
/// (heavy_seconds covers the pairwise-intersection phase).
MmJoinResult NonMmJoinTwoPath(const IndexedRelation& r,
                              const IndexedRelation& s,
                              const NonMmJoinOptions& options);

}  // namespace jpmm

#endif  // JPMM_CORE_NONMM_JOIN_H_
