// Degree-based partitioning for the join-project strategies.
//
// Two partitioning concepts live here, one per generation:
//
// 1. TwoPathPartition — the paper's single global threshold (Algorithm 1,
//    steps 1-2):
//
//      R- = { (a,b) in R : deg_R(a) <= Delta2  or  deg_S(b) <= Delta1 }
//      S- = { (c,b) in S : deg_S(c) <= Delta2  or  deg_S(b) <= Delta1 }
//      R+ = R \ R-,  S+ = S \ S-
//
//    Note the y-lightness test is against S in both relations, exactly as
//    in §3.1 (for the paper's self-join experiments the test is symmetric).
//    Heavy values get dense ids: rows (heavy x), inner dimension (heavy y)
//    and columns (heavy z) of the rectangular matrices M1, M2. Heavy ids
//    are only assigned to values that can actually produce a heavy output
//    (e.g. a heavy x with no heavy y neighbour gets no row), keeping the
//    matrices tight.
//
// 2. DensityGrid — DIM³-style density-adaptive decomposition of the heavy
//    product (Huang & Chen, arXiv:2206.04995). One global Delta leaves the
//    heavy operands internally skewed: a few hub rows carry most of the
//    nnz, so any single per-row-block kernel choice is wrong for part of
//    the matrix. BuildDensityGrid sorts the heavy rows (and the output
//    columns) by degree so nnz concentrates into corner blocks, splits the
//    product into a small grid of density-homogeneous row x column bands
//    (band count chosen by pricing each candidate shape with the measured
//    SparseKernelRates / GEMM anchors — not a fixed block count), prunes
//    blocks whose exact witness bound is zero, and assigns each surviving
//    block the kernel its density actually wants. Row bands are snapped to
//    row_block multiples so the executing join's work units stay the same
//    ceil(rows / row_block) chunks as the uniform plan — early-exit
//    accounting (executed + skipped == total) is remap-invariant. The
//    permutations are pure execution-order devices: emit paths apply the
//    inverse remap, so outputs are byte-identical to the uniform plan.

#ifndef JPMM_CORE_DENSITY_PARTITION_H_
#define JPMM_CORE_DENSITY_PARTITION_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.h"
#include "core/heavy_dispatch.h"
#include "core/thresholds.h"
#include "matrix/sparse_matrix.h"
#include "storage/index.h"
#include "storage/relation.h"

namespace jpmm {

/// Lightness oracles + heavy-value id maps for one (R, S, Thresholds) triple.
class TwoPathPartition {
 public:
  TwoPathPartition(const IndexedRelation& r, const IndexedRelation& s,
                   Thresholds t);

  const Thresholds& thresholds() const { return t_; }

  /// deg_R(a) <= Delta2.
  bool XLight(Value a) const { return r_->DegX(a) <= t_.delta2; }
  /// deg_S(c) <= Delta2.
  bool ZLight(Value c) const { return s_->DegX(c) <= t_.delta2; }
  /// deg_S(b) <= Delta1 — Algorithm 1's join-variable lightness test.
  bool YLight(Value b) const { return s_->DegY(b) <= t_.delta1; }

  /// Heavy x values that own a matrix row (ascending).
  const std::vector<Value>& heavy_x() const { return heavy_x_; }
  /// Heavy y values that own a matrix inner index (ascending).
  const std::vector<Value>& heavy_y() const { return heavy_y_; }
  /// Heavy z values that own a matrix column (ascending).
  const std::vector<Value>& heavy_z() const { return heavy_z_; }

  /// Row id of a, or kInvalidValue when a has no row.
  Value HeavyXId(Value a) const {
    return a < heavy_x_id_.size() ? heavy_x_id_[a] : kInvalidValue;
  }
  Value HeavyYId(Value b) const {
    return b < heavy_y_id_.size() ? heavy_y_id_[b] : kInvalidValue;
  }
  Value HeavyZId(Value c) const {
    return c < heavy_z_id_.size() ? heavy_z_id_[c] : kInvalidValue;
  }

  /// Materialized subrelations (diagnostics / partition-invariant tests; the
  /// join itself never materializes them).
  BinaryRelation RMinus() const;
  BinaryRelation RPlus() const;
  BinaryRelation SMinus() const;
  BinaryRelation SPlus() const;

 private:
  const IndexedRelation* r_;
  const IndexedRelation* s_;
  Thresholds t_;
  std::vector<Value> heavy_x_, heavy_y_, heavy_z_;
  std::vector<Value> heavy_x_id_, heavy_y_id_, heavy_z_id_;
};

/// Whether a heavy product may be executed on a density-adaptive grid.
/// kAuto engages the grid only when its priced cost (including the remap
/// and band-slice build overhead) beats the uniform row-block plan; kForce
/// engages it whenever a non-trivial heavy part exists (equivalence tests
/// and the differential fuzzer pin it on); kOff always runs the uniform
/// plan.
enum class PartitionMode {
  kAuto,
  kOff,
  kForce,
};

const char* PartitionModeName(PartitionMode m);

struct DensityGridOptions {
  /// Work-unit granularity of the executing join. Row-band boundaries are
  /// snapped to multiples of this so a chunk never straddles two bands.
  size_t row_block = 256;
  /// Grid shape search space: candidate band counts are the powers of two
  /// up to these bounds (an 8x8 grid is already far past the point of
  /// diminishing homogeneity returns on real degree distributions).
  size_t max_row_bands = 8;
  size_t max_col_bands = 8;
  /// Forced kernel modes pin every block's kernel, as in PlanProductBlocks.
  HeavyPathMode mode = HeavyPathMode::kAuto;
  /// nullptr resolves to SparseKernelRates::Default().
  const SparseKernelRates* rates = nullptr;
  /// Representation gates from the caller's memory-cap accounting.
  bool allow_dense = true;
  bool allow_csr_dense = true;
};

/// A density-adaptive decomposition of one A (rows x v) * B (v x cols)
/// counting product. Permutations map remapped indices to original ones;
/// the inner dimension is never remapped (both operands see it in original
/// order). blocks holds only the scheduled (non-pruned) grid cells, in
/// row-band-major order, with row/col ranges in *remapped* coordinates.
struct DensityGrid {
  std::vector<uint32_t> row_perm;  // remapped row -> original row
  std::vector<uint32_t> col_perm;  // remapped col -> original col
  /// Band offsets, sizes num_row_bands()+1 / num_col_bands()+1. Interior
  /// row-band offsets are multiples of row_block.
  std::vector<uint32_t> row_bands;
  std::vector<uint32_t> col_bands;
  /// Scheduled blocks with per-block kernel choice. nnz / density describe
  /// the A row band feeding the block (the inner dimension is unsplit).
  std::vector<BlockKernelChoice> blocks;
  uint64_t grid_blocks = 0;   // num_row_bands * num_col_bands
  uint64_t pruned_blocks = 0; // cells whose exact witness bound was zero
  double est_seconds = 0.0;          // priced grid cost incl. remap overhead
  double est_uniform_seconds = 0.0;  // priced uniform row-block plan cost
  /// True iff the grid is priced strictly cheaper than the uniform plan
  /// (with margin) — what PartitionMode::kAuto keys off.
  bool beneficial = false;

  size_t num_row_bands() const {
    return row_bands.empty() ? 0 : row_bands.size() - 1;
  }
  size_t num_col_bands() const {
    return col_bands.empty() ? 0 : col_bands.size() - 1;
  }

  /// Stable plan fingerprint, e.g. "4x2/s7/p1" (row bands x col bands,
  /// scheduled, pruned). Depends only on the operands, the rates, and the
  /// gates — never on thread count — so repeated executions of one
  /// PreparedQuery against an unchanged catalog report the same signature.
  std::string Signature() const;
};

/// Builds the density-adaptive grid for A * B: degree-sorted row/column
/// permutations, cost-priced band-count selection over candidate shapes,
/// exact per-block witness bounds (a zero bound prunes the block), and a
/// per-block kernel choice under the given mode/gates. Deterministic for
/// fixed operands + options.
DensityGrid BuildDensityGrid(const CsrMatrix& a, const CsrMatrix& b,
                             const DensityGridOptions& opts);

/// Cross-execution memo for one heavy product's grid, owned by a
/// PreparedQuery's PlanState and threaded down by pointer through
/// JoinProjectOptions → MmJoinOptions / StarJoinOptions. Sound because a
/// PreparedQuery's operand snapshots are immutable (copy-on-write catalog)
/// and BuildDensityGrid is deterministic for fixed operands + options: the
/// grid only depends on the key fields below, so a key match means the
/// rebuild would produce the identical grid (row_perm/col_perm included).
/// Re-Prepare after a catalog Put/Drop creates a fresh PlanState, which is
/// the version-change invalidation. The mutex hold is two pointer-size
/// copies per execution — off every inner loop.
struct DensityGridCache {
  std::mutex mu;
  bool valid = false;
  /// Key: the ADJUSTED thresholds the partition ran under (memory-cap
  /// doubling changes the heavy operands), plus every DensityGridOptions
  /// field the build reads.
  Thresholds thresholds{0, 0};
  size_t row_block = 0;
  HeavyPathMode mode = HeavyPathMode::kAuto;
  bool allow_dense = true;
  bool allow_csr_dense = true;
  const SparseKernelRates* rates = nullptr;
  std::shared_ptr<const DensityGrid> grid;

  /// Returns the memoized grid on a key match, else nullptr.
  std::shared_ptr<const DensityGrid> Lookup(Thresholds t, size_t rb,
                                            HeavyPathMode m, bool dense,
                                            bool csr_dense,
                                            const SparseKernelRates* r) {
    std::lock_guard<std::mutex> lock(mu);
    if (valid && thresholds.delta1 == t.delta1 &&
        thresholds.delta2 == t.delta2 && row_block == rb && mode == m &&
        allow_dense == dense && allow_csr_dense == csr_dense && rates == r) {
      return grid;
    }
    return nullptr;
  }

  void Store(Thresholds t, size_t rb, HeavyPathMode m, bool dense,
             bool csr_dense, const SparseKernelRates* r,
             std::shared_ptr<const DensityGrid> g) {
    std::lock_guard<std::mutex> lock(mu);
    valid = true;
    thresholds = t;
    row_block = rb;
    mode = m;
    allow_dense = dense;
    allow_csr_dense = csr_dense;
    rates = r;
    grid = std::move(g);
  }
};

}  // namespace jpmm

#endif  // JPMM_CORE_DENSITY_PARTITION_H_
