// QueryService — the overload-safe serving layer over QueryEngine.
//
// The engine executes one query as fast as it can; the service decides
// WHETHER and HOW a query runs when many clients hit the process at once:
//
//   - Admission control: at most max_inflight executions run concurrently;
//     excess requests wait in a bounded FIFO queue (with a per-class cap so
//     batch traffic cannot starve interactive traffic out of the queue).
//     When the queue is full the request is shed immediately with
//     StatusCode::kOverloaded, carrying the observed queue depth and a
//     retry-after hint — clients back off instead of piling on.
//   - Deadlines & cancellation: a request's CancelToken (or the
//     deadline_ms convenience) is honoured while QUEUED (a request whose
//     deadline fires before admission returns kDeadlineExceeded without
//     executing) and while RUNNING (every strategy polls the token at
//     light-chunk / product-block granularity; a truncated run returns
//     kDeadlineExceeded / kCancelled with exact partial results and
//     executed + skipped == total accounting in ExecStats).
//   - Graceful degradation: instead of letting an MM-strategy query blow
//     the shared memory budget under load, the service re-plans it onto
//     the combinatorial strategy (kNonMmJoin; triangle degrades its heavy
//     path to the CSR x CSR trace) and marks ExecStats::degraded with the
//     reason. Results stay exact — degradation trades speed, never
//     correctness.
//   - Fault containment: an exception escaping execution (e.g. an injected
//     FailPoint) is caught, the admission slot is released, and the caller
//     sees StatusCode::kInternal — one poisoned query never wedges the
//     service.
//
//   QueryService service(&engine, {.max_inflight = 4, .queue_depth = 16});
//   ServiceRequest req;
//   req.deadline_ms = 50;
//   QueryStatus st = service.Run(spec, sink, req, &stats);
//   if (st.code() == StatusCode::kOverloaded) { /* back off, retry */ }
//
// RetryWithBackoff() is the matching client-side helper: it retries ONLY
// kOverloaded outcomes, sleeping a jittered exponential backoff that
// respects the service's retry-after hint.
//
// Thread-safety: all methods may be called from any number of threads.
// The admission state is a mutex + condition variable (waiters sleep, the
// release path notifies); counters are atomics read via stats().

#ifndef JPMM_CORE_QUERY_SERVICE_H_
#define JPMM_CORE_QUERY_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "common/metrics.h"
#include "core/query_batcher.h"
#include "core/query_engine.h"

namespace jpmm {

/// Scheduling class of a request. The admission queue is FIFO across
/// classes, but each class has its own occupancy cap inside the queue so
/// one class cannot consume every waiting slot.
enum class QueryClass : uint8_t {
  kInteractive = 0,  // latency-sensitive (default)
  kBatch = 1,        // throughput traffic; first to be capped under load
};

const char* QueryClassName(QueryClass c);

struct QueryServiceOptions {
  /// Max concurrently executing queries (the semaphore width).
  int max_inflight = 4;
  /// Bounded FIFO admission queue: total waiters across classes. A request
  /// arriving when the queue is full is shed with kOverloaded.
  size_t queue_depth = 16;
  /// Per-class occupancy cap within the queue (<= queue_depth).
  size_t max_queued_per_class = 12;
  /// Shared heavy-part memory budget, divided evenly among in-flight
  /// queries; each execution's max_matrix_bytes is capped to its share.
  uint64_t memory_budget_bytes = uint64_t{3} << 30;
  /// Waiting-queue length at admission time at or above which MM-strategy
  /// queries are degraded to the combinatorial strategy
  /// (DegradeReason::kAdmissionPressure). 0 disables.
  size_t degrade_queue_threshold = 8;
  /// Minimum per-query memory share for which the MM strategies are still
  /// worth running; below it they degrade (DegradeReason::kMemoryCap).
  uint64_t min_mm_bytes = 64ull << 20;

  /// Multi-query batching (core/query_batcher.h): coalesce concurrent
  /// identical requests — same (catalog version at Prepare, spec
  /// fingerprint) — onto one execution whose results fan out to every
  /// coalesced sink. Off by default: batching holds each request for up to
  /// batch_window_ms and shares one admission slot per group, which
  /// changes per-request scheduling; opt in for many-identical-client
  /// workloads (dashboards, replicated pollers).
  bool enable_batching = false;
  /// How long the first arrival of a group waits for coalescing joiners.
  int64_t batch_window_ms = 2;

  /// Versioned result cache: replay complete results of repeat requests
  /// (same coalescing key) without executing. Staleness-proof by
  /// construction — probes only match entries created at the probing
  /// query's prepared catalog version, and Put/Drop bumps the version.
  /// Off by default (memory for results; opt in like batching).
  bool enable_result_cache = false;
  /// Byte budget across cached result payloads (LRU-evicted).
  uint64_t result_cache_bytes = 64ull << 20;
  /// Results larger than this are never cached.
  uint64_t result_cache_max_entry_bytes = 8ull << 20;
};

/// Cumulative service counters (one snapshot; see QueryService::stats()).
///
/// Consistency guarantee: outcome counters are published with release
/// ordering and stats() reads them in one acquire pass BEFORE `admitted`,
/// so every snapshot satisfies
///
///   admitted >= completed + deadline_exceeded + cancelled + internal_errors
///
/// (a request's outcome is never visible in a snapshot that has not yet
/// counted its admission). The snapshot is still not a global atomic cut —
/// concurrent requests may be admitted-but-unresolved, which is exactly the
/// slack the inequality expresses.
struct ServiceStats {
  uint64_t admitted = 0;           // passed admission (fast path or queue)
  uint64_t completed = 0;          // executed to completion, status Ok
  uint64_t shed = 0;               // rejected kOverloaded (queue full)
  uint64_t queue_timeouts = 0;     // token fired while waiting in queue
  uint64_t deadline_exceeded = 0;  // deadline truncated a running query
  uint64_t cancelled = 0;          // explicit cancel truncated a running query
  uint64_t degraded = 0;           // re-planned onto a cheaper strategy
  uint64_t internal_errors = 0;    // exceptions contained as kInternal
  uint64_t max_queue_depth = 0;    // high-water mark of waiting requests
  uint64_t batch_leaders = 0;      // ran a shared pass for a group of >= 2
  uint64_t batch_followers = 0;    // served by another request's execution
  uint64_t cache_hits = 0;         // replayed from the result cache

  /// One-line debug rendering, "admitted=5 completed=3 ..." — the
  /// StatusCodeName-style human form for logs and test failure messages.
  std::string ToString() const;
};

/// Per-request serving knobs, wrapping the engine's ExecOptions.
struct ServiceRequest {
  QueryClass query_class = QueryClass::kInteractive;
  /// Convenience deadline: > 0 arms a token `deadline_ms` from the moment
  /// Run/Execute is entered (queue wait included), chained with exec.cancel
  /// if both are set.
  int64_t deadline_ms = 0;
  /// Engine knobs. exec.cancel is honoured queued and running;
  /// exec.strategy_override is overwritten when the service degrades.
  ExecOptions exec;
};

class QueryService {
 public:
  explicit QueryService(QueryEngine* engine, QueryServiceOptions options = {});
  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Prepare + Execute under admission control. Statuses:
  ///   Ok                -- ran to completion; results are exact.
  ///   kOverloaded       -- shed before queueing (queue full); retry later.
  ///   kDeadlineExceeded -- deadline fired queued (nothing executed) or
  ///                        running (partial results delivered are exact;
  ///                        *stats has the executed/skipped split).
  ///   kCancelled        -- same, for an explicit cancel.
  ///   kInternal         -- execution threw; the service kept serving.
  ///   others            -- Prepare-time validation errors.
  QueryStatus Run(const QuerySpec& spec, ResultSink& sink,
                  const ServiceRequest& req, ExecStats* stats = nullptr);

  /// Execute a prepared query under admission control (same statuses).
  QueryStatus Execute(PreparedQuery& query, ResultSink& sink,
                      const ServiceRequest& req, ExecStats* stats = nullptr);

  QueryEngine& engine() { return *engine_; }
  const QueryServiceOptions& options() const { return options_; }

  /// Snapshot of the cumulative counters.
  ServiceStats stats() const;
  /// Snapshot of the process-wide metrics registry (counters, gauges,
  /// histograms) — the embedder-facing export, equivalent to
  /// MetricsRegistry::Global().Snapshot(). Process-wide by design: one
  /// registry serves every service/engine in the process.
  struct MetricsSnapshot MetricsSnapshot() const;
  /// Currently executing queries (<= options().max_inflight).
  int inflight() const;
  /// Currently queued (admitted-pending) requests.
  size_t queued() const;

 private:
  QueryStatus Admit(const ServiceRequest& req, const CancelToken* token,
                    size_t* waiters_at_admit);
  void ReleaseSlot();
  /// The admitted-execution path (queue wait → admission → degradation →
  /// engine → outcome counters), shared by the unbatched fast path and the
  /// batch leader (whose `sink` is then a FanoutSink over the group).
  QueryStatus RunAdmitted(PreparedQuery& query, ResultSink& sink,
                          const ServiceRequest& req, const CancelToken* token,
                          int32_t request_id, ExecStats* out);
  /// Mirrors the per-request counters for a request served by another
  /// request's execution (batch follower), preserving the stats()
  /// invariant: admitted is incremented (relaxed) before the outcome
  /// (release), except kOverloaded which counts only shed.
  void CountFollowerOutcome(const QueryStatus& st);
  /// Inserts a leader/solo run's recorded payload into the result cache.
  void MaybeCacheResult(const BatchKey& key, QueryKind kind,
                        RecordingSink* tap, const QueryStatus& st,
                        const ExecStats& stats);

  QueryEngine* const engine_;
  const QueryServiceOptions options_;
  std::unique_ptr<QueryBatcher> batcher_;  // null unless enable_batching
  std::unique_ptr<ResultCache> cache_;     // null unless enable_result_cache

  mutable std::mutex mu_;
  std::condition_variable cv_;
  int inflight_ = 0;                // guarded by mu_
  std::deque<uint64_t> queue_;      // FIFO of waiter tickets
  uint64_t next_ticket_ = 0;        // guarded by mu_
  size_t queued_per_class_[2] = {0, 0};

  // Counters are atomics so stats() never contends with serving.
  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> queue_timeouts_{0};
  std::atomic<uint64_t> deadline_exceeded_{0};
  std::atomic<uint64_t> cancelled_{0};
  std::atomic<uint64_t> degraded_{0};
  std::atomic<uint64_t> internal_errors_{0};
  std::atomic<uint64_t> max_queue_depth_{0};
  std::atomic<uint64_t> batch_leaders_{0};
  std::atomic<uint64_t> batch_followers_{0};
  std::atomic<uint64_t> cache_hits_{0};
};

/// Client-side retry helper for kOverloaded. Calls `attempt` up to
/// max_attempts times; any status other than kOverloaded returns
/// immediately. Between attempts it sleeps a jittered exponential backoff:
/// uniform in [b/2, b] where b = min(max_ms, max(retry-after hint,
/// base_ms * multiplier^attempt)). The optional token is polled during the
/// sleep so a deadline/cancel aborts the retry loop promptly.
struct RetryOptions {
  int max_attempts = 4;
  int64_t base_ms = 5;
  int64_t max_ms = 200;
  double multiplier = 2.0;
  uint64_t seed = 1;  // jitter RNG seed (deterministic tests)
};

QueryStatus RetryWithBackoff(const std::function<QueryStatus()>& attempt,
                             const RetryOptions& options = {},
                             const CancelToken* cancel = nullptr);

}  // namespace jpmm

#endif  // JPMM_CORE_QUERY_SERVICE_H_
