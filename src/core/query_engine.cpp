#include "core/query_engine.h"

#include <algorithm>
#include <functional>
#include <mutex>

#include "common/hash.h"
#include "common/metrics.h"
#include "common/timer.h"
#include "core/optimizer.h"

namespace jpmm {
namespace {

// Process-wide engine metrics (see docs/observability.md). Resolved once;
// the registry returns stable references.
struct EngineMetrics {
  Counter& prepares = MetricsRegistry::Global().GetCounter(
      "jpmm_engine_prepare_total");
  Counter& executes = MetricsRegistry::Global().GetCounter(
      "jpmm_engine_execute_total");
  Counter& plan_hits = MetricsRegistry::Global().GetCounter(
      "jpmm_engine_plan_cache_hits_total");
  Counter& plan_misses = MetricsRegistry::Global().GetCounter(
      "jpmm_engine_plan_cache_misses_total");
  Histogram& execute_ms = MetricsRegistry::Global().GetHistogram(
      "jpmm_engine_execute_ms", DefaultLatencyBoundsMs());
  static EngineMetrics& Get() {
    static EngineMetrics m;
    return m;
  }
};

// ---- SCJ / SSJ adapter sink ---------------------------------------------
//
// Both set joins are filters over the counted two-path self join (§4), so
// the engine runs them as exactly that: the inner pipeline streams counted
// pairs into an adapter, a per-query transform forwards the qualifying
// ones to the user sink, and done() flows back through the adapter — a
// satisfied limit stops the underlying join mid-block.

class FilteredAdapterSink : public ResultSink {
 public:
  /// transform receives every counted pair of the inner join together
  /// with the user shard to (maybe) deliver into. Shared across shards,
  /// so it must be stateless or internally synchronized.
  using Transform = std::function<void(const CountedPair&, Shard*)>;

  FilteredAdapterSink(Transform transform, ResultSink* user)
      : transform_(std::move(transform)), user_(user) {}

  class AdapterShard : public Shard {
   public:
    AdapterShard(const Transform* transform, Shard* out)
        : transform_(transform), out_(out) {}
    void OnPair(const OutPair&) override {}  // inner join always counts
    void OnCountedPair(const CountedPair& p) override {
      (*transform_)(p, out_);
    }

   private:
    const Transform* transform_;
    Shard* out_;
  };

  void Open(int num_shards) override {
    user_->Open(num_shards);
    shards_.clear();
    for (int i = 0; i < num_shards; ++i) {
      shards_.push_back(
          std::make_unique<AdapterShard>(&transform_, &user_->shard(i)));
    }
  }
  Shard& shard(int w) override { return *shards_[static_cast<size_t>(w)]; }
  bool done() const override { return user_->done(); }
  bool may_finish_early() const override { return user_->may_finish_early(); }
  void Finish() override {
    shards_.clear();
    user_->Finish();
  }

 private:
  const Transform transform_;
  ResultSink* user_;
  std::vector<std::unique_ptr<AdapterShard>> shards_;
};

// Containment: count == |set(x)| means set x is contained in set z.
FilteredAdapterSink::Transform ScjTransform(const SetFamily* fam) {
  return [fam](const CountedPair& p, ResultSink::Shard* out) {
    if (p.x != p.z && p.count == fam->SetSize(p.x)) {
      out->OnPair(OutPair{p.x, p.z});
    }
  };
}

// Similarity: the inner join already applied min_count = c; keep each
// unordered pair once (x < z) and drop self pairs.
FilteredAdapterSink::Transform SsjTransform(bool ordered) {
  return [ordered](const CountedPair& p, ResultSink::Shard* out) {
    if (p.x >= p.z) return;
    if (ordered) {
      out->OnCountedPair(p);
    } else {
      out->OnPair(OutPair{p.x, p.z});
    }
  };
}

void FillTwoPathStats(JoinProjectOutput* out, ExecStats* stats) {
  if (stats == nullptr) return;
  stats->executed = out->executed;
  stats->m1_nnz = out->m1_nnz;
  stats->m2_nnz = out->m2_nnz;
  stats->heavy_density = out->heavy_density;
  stats->kernel_counts = out->kernel_counts;
  stats->block_choices = std::move(out->block_choices);
  stats->partition_used = out->partition_used;
  stats->partition_row_bands = out->partition_row_bands;
  stats->partition_col_bands = out->partition_col_bands;
  stats->partition_blocks_scheduled = out->partition_blocks_scheduled;
  stats->partition_blocks_pruned = out->partition_blocks_pruned;
  stats->partition_signature = std::move(out->partition_signature);
  stats->heavy_blocks_total = out->heavy_blocks_total;
  stats->heavy_blocks_executed = out->heavy_blocks_executed;
  stats->heavy_blocks_skipped = out->heavy_blocks_skipped;
  stats->light_chunks_total = out->light_chunks_total;
  stats->light_chunks_executed = out->light_chunks_executed;
  stats->light_chunks_skipped = out->light_chunks_skipped;
  stats->interrupted = out->interrupted;
  stats->partition_cache_hit = out->partition_cache_hit;
}

// Stable per-process hash of the spec's WHAT-fields — the coalescing /
// result-cache key component (see PreparedQuery::spec_fingerprint). HOW
// knobs (threads, kernels, thresholds) are excluded on purpose: the result
// set is invariant across them.
uint64_t SpecFingerprint(const QuerySpec& spec) {
  size_t h = 0x9e3779b97f4a7c15ull;  // arbitrary non-zero seed
  HashCombine(&h, static_cast<uint64_t>(spec.kind));
  HashCombine(&h, spec.relations.size());
  for (const std::string& name : spec.relations) {
    HashCombine(&h, std::hash<std::string>{}(name));
  }
  HashCombine(&h, static_cast<uint64_t>(spec.strategy));
  HashCombine(&h, spec.count_witnesses ? 1 : 0);
  HashCombine(&h, spec.min_count);
  HashCombine(&h, spec.ssj_c);
  HashCombine(&h, spec.ssj_ordered ? 1 : 0);
  return Mix64(h);
}

InterruptReason MapInterruptReason(CancelToken::Reason r) {
  switch (r) {
    case CancelToken::Reason::kDeadline:
      return InterruptReason::kDeadline;
    case CancelToken::Reason::kCancelled:
      return InterruptReason::kCancelled;
    case CancelToken::Reason::kNone:
      break;
  }
  return InterruptReason::kNone;
}

// Sets interrupt_reason from the token that truncated the run; only
// meaningful once stats->interrupted is set.
void FillInterruptReason(const CancelToken* token, ExecStats* stats) {
  if (stats == nullptr || !stats->interrupted) return;
  stats->interrupt_reason = token != nullptr
                                ? MapInterruptReason(token->reason())
                                : InterruptReason::kCancelled;
  if (stats->interrupt_reason == InterruptReason::kNone) {
    // The token un-latched is impossible once a poll observed it fired;
    // defensive default.
    stats->interrupt_reason = InterruptReason::kCancelled;
  }
}

}  // namespace

const char* StatusCodeName(StatusCode c) {
  switch (c) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid-argument";
    case StatusCode::kNotFound:
      return "not-found";
    case StatusCode::kOverloaded:
      return "overloaded";
    case StatusCode::kDeadlineExceeded:
      return "deadline-exceeded";
    case StatusCode::kCancelled:
      return "cancelled";
    case StatusCode::kInternal:
      return "internal";
  }
  return "?";
}

const char* InterruptReasonName(InterruptReason r) {
  switch (r) {
    case InterruptReason::kNone:
      return "none";
    case InterruptReason::kCancelled:
      return "cancelled";
    case InterruptReason::kDeadline:
      return "deadline";
  }
  return "?";
}

const char* DegradeReasonName(DegradeReason r) {
  switch (r) {
    case DegradeReason::kNone:
      return "none";
    case DegradeReason::kMemoryCap:
      return "memory-cap";
    case DegradeReason::kAdmissionPressure:
      return "admission-pressure";
  }
  return "?";
}

const char* QueryKindName(QueryKind k) {
  switch (k) {
    case QueryKind::kTwoPath:
      return "twopath";
    case QueryKind::kStar:
      return "star";
    case QueryKind::kTriangle:
      return "triangle";
    case QueryKind::kScj:
      return "scj";
    case QueryKind::kSsj:
      return "ssj";
  }
  return "?";
}

PreparedQuery::PreparedQuery() = default;
PreparedQuery::~PreparedQuery() = default;
PreparedQuery::PreparedQuery(PreparedQuery&&) noexcept = default;
PreparedQuery& PreparedQuery::operator=(PreparedQuery&&) noexcept = default;

bool PreparedQuery::has_plan() const {
  if (state_ == nullptr) return false;
  std::shared_lock<std::shared_mutex> lock(state_->mu);
  return state_->plan_valid;
}

PlanChoice PreparedQuery::plan() const {
  if (state_ == nullptr) return PlanChoice{};
  std::shared_lock<std::shared_mutex> lock(state_->mu);
  return state_->plan;
}

uint64_t PreparedQuery::executions() const {
  return state_ == nullptr
             ? 0
             : state_->executions.load(std::memory_order_relaxed);
}

QueryStatus QueryEngine::AddRelation(const std::string& name,
                                     BinaryRelation rel) {
  catalog_.Put(name, std::move(rel));
  return QueryStatus::Ok();
}

QueryStatus QueryEngine::DropRelation(const std::string& name) {
  if (!catalog_.Drop(name)) {
    return QueryStatus::NotFound("unknown relation '" + name +
                                 "' (not in the catalog)");
  }
  return QueryStatus::Ok();
}

QueryStatus QueryEngine::Prepare(const QuerySpec& spec, PreparedQuery* out) {
  if (out == nullptr) return QueryStatus::Error("null PreparedQuery output");

  // ---- Structural validation: everything here is a returned error, not
  // an abort.
  size_t want_min = 1, want_max = 1;
  switch (spec.kind) {
    case QueryKind::kTwoPath:
      want_min = 1;
      want_max = 2;
      break;
    case QueryKind::kStar:
      want_min = 2;
      want_max = 8;
      break;
    default:
      break;
  }
  if (spec.relations.size() < want_min || spec.relations.size() > want_max) {
    return QueryStatus::Error(
        std::string(QueryKindName(spec.kind)) + " query takes " +
        std::to_string(want_min) +
        (want_max == want_min ? "" : ".." + std::to_string(want_max)) +
        " relation name(s), got " + std::to_string(spec.relations.size()));
  }
  {
    // Same rule set as the low-level facade, via the shared validator.
    JoinProjectOptions check;
    check.count_witnesses = spec.count_witnesses;
    check.min_count = spec.min_count;
    std::string problem = ValidateJoinProjectOptions(check);
    if (!problem.empty()) return QueryStatus::Error(problem);
  }
  if (spec.kind == QueryKind::kSsj && spec.ssj_c < 1) {
    return QueryStatus::Error("ssj_c must be >= 1");
  }
  if (spec.kind == QueryKind::kStar &&
      (spec.count_witnesses || spec.min_count > 1)) {
    return QueryStatus::Error(
        "count_witnesses / min_count are not supported for star queries");
  }

  // ---- Resolve + snapshot: indexes (built once, memoized per catalog
  // entry) and operand statistics (the expensive part of planning). ALL
  // names are pinned under one catalog lock hold (Catalog::SnapshotAll),
  // so a multi-relation query sees a consistent cut — a concurrent Put
  // landing between two names can no longer produce a mixed-version view,
  // and the recorded version identifies the cut for the service layer's
  // batching / result-cache coalescing key.
  PreparedQuery q;
  q.spec_ = spec;
  {
    std::string missing;
    if (!catalog_.SnapshotAll(spec.relations, &q.rels_, &q.prepared_version_,
                              &missing)) {
      return QueryStatus::NotFound("unknown relation '" + missing +
                                   "' (not in the catalog)");
    }
  }
  q.fingerprint_ = SpecFingerprint(spec);
  switch (spec.kind) {
    case QueryKind::kTwoPath: {
      const IndexedRelation* r = q.rels_[0].get();
      const IndexedRelation* s =
          q.rels_.size() > 1 ? q.rels_[1].get() : q.rels_[0].get();
      q.stats_ = std::make_unique<TwoPathStats>(*r, *s);
      break;
    }
    case QueryKind::kScj:
    case QueryKind::kSsj: {
      q.family_ = std::make_unique<SetFamily>(*q.rels_[0]);
      q.stats_ = std::make_unique<TwoPathStats>(*q.rels_[0], *q.rels_[0]);
      break;
    }
    default:
      break;
  }
  q.state_ = std::make_unique<PreparedQuery::PlanState>();
  *out = std::move(q);
  if (MetricsEnabled()) EngineMetrics::Get().prepares.Add();
  return QueryStatus::Ok();
}

QueryStatus QueryEngine::Execute(PreparedQuery& query, ResultSink& sink,
                                 const ExecOptions& opts, ExecStats* stats) {
  if (query.rels_.empty() || query.state_ == nullptr) {
    return QueryStatus::Error("PreparedQuery is empty (Prepare it first)");
  }
  if (stats != nullptr) *stats = ExecStats{};  // no cross-execution leakage
  WallTimer timer;
  const QuerySpec& spec = query.spec_;
  PreparedQuery::PlanState& ps = *query.state_;

  // Every execution path funnels its option combination through the
  // shared validator — one place grows new rules for facade and engine
  // alike.
  {
    JoinProjectOptions check;
    check.threads = opts.threads;
    check.count_witnesses =
        spec.kind != QueryKind::kTwoPath || spec.count_witnesses;
    check.min_count = spec.min_count;
    std::string problem = ValidateJoinProjectOptions(check);
    if (!problem.empty()) return QueryStatus::Error(problem);
  }
  // Repeat-execution flag for the paths with no cached plan to win or
  // lose (triangle, star with explicit thresholds). Loaded before the
  // increment; paths that DO plan derive their hit/miss from the plan
  // lock instead, so racing first executions report exactly one miss.
  const bool executed_before =
      ps.executions.load(std::memory_order_relaxed) > 0;

  // Root span of this execution's stage tree: everything downstream hangs
  // under it (the recorder belongs to this call, like the sink).
  TraceRecorder::Scope exec_scope(opts.trace, "execute", opts.trace_parent);
  const TraceRecorder::SpanId exec_id = exec_scope.id();
  bool plan_hit = false;

  switch (spec.kind) {
    case QueryKind::kTwoPath:
    case QueryKind::kScj:
    case QueryKind::kSsj: {
      const IndexedRelation* r = query.rels_[0].get();
      const IndexedRelation* s =
          query.rels_.size() > 1 ? query.rels_[1].get() : query.rels_[0].get();

      // Plan cache: the optimizer's choice depends on the worker count
      // (parallel efficiency is part of the cost model), so a thread-count
      // change re-plans; anything else is a cache hit. Concurrent first
      // executions are single-flight: the optimizer runs under the write
      // lock, racers block on it and then reuse the winner's plan (their
      // stats report a cache hit — only the winner planned).
      PlanChoice plan;
      bool cache_hit = false;
      {
        TraceRecorder::Scope plan_scope(opts.trace, "plan", exec_id);
        {
          std::shared_lock<std::shared_mutex> rl(ps.mu);
          if (ps.plan_valid && ps.plan_threads == opts.threads) {
            plan = ps.plan;
            cache_hit = true;
          }
        }
        if (!cache_hit) {
          std::unique_lock<std::shared_mutex> wl(ps.mu);
          if (ps.plan_valid && ps.plan_threads == opts.threads) {
            plan = ps.plan;  // lost the planning race; reuse the winner
            cache_hit = true;
          } else {
            OptimizerOptions oo;
            oo.threads = opts.threads;
            plan = ChooseTwoPathPlan(*r, *s, *query.stats_, oo);
            ps.plan = plan;
            ps.plan_valid = true;
            ps.plan_threads = opts.threads;
          }
        }
        plan_scope.Close(cache_hit ? "cache-hit" : "cache-miss");
      }
      plan_hit = cache_hit;

      JoinProjectOptions jo;
      jo.strategy = opts.strategy_override.value_or(spec.strategy);
      jo.threads = opts.threads;
      jo.thresholds = opts.thresholds;
      jo.heavy_path = opts.heavy_path;
      jo.partition = opts.partition;
      jo.grid_cache = &ps.two_path_grid;
      jo.max_matrix_bytes = opts.max_matrix_bytes;
      jo.cancel = opts.cancel;
      jo.trace = opts.trace;
      jo.trace_parent = exec_id;
      if (spec.kind == QueryKind::kTwoPath) {
        jo.count_witnesses = spec.count_witnesses;
        jo.min_count = spec.min_count;
      } else {
        jo.count_witnesses = true;  // both set joins filter on counts
        jo.min_count = spec.kind == QueryKind::kSsj ? spec.ssj_c : 1;
      }
      // The combinatorial strategy balances its own thresholds; derive
      // them once from the cached stats instead of rebuilding stats
      // (single-flight under the same plan lock).
      if (jo.strategy == Strategy::kNonMmJoin && jo.thresholds.delta1 == 0 &&
          jo.thresholds.delta2 == 0) {
        bool have = false;
        {
          std::shared_lock<std::shared_mutex> rl(ps.mu);
          if (ps.nonmm_thresholds_valid) {
            jo.thresholds = ps.nonmm_thresholds;
            have = true;
          }
        }
        if (!have) {
          std::unique_lock<std::shared_mutex> wl(ps.mu);
          if (!ps.nonmm_thresholds_valid) {
            ps.nonmm_thresholds = ChooseNonMmThresholds(*r, *s, *query.stats_);
            ps.nonmm_thresholds_valid = true;
          }
          jo.thresholds = ps.nonmm_thresholds;
        }
      }

      std::unique_ptr<FilteredAdapterSink> adapter;
      if (spec.kind == QueryKind::kScj) {
        adapter = std::make_unique<FilteredAdapterSink>(
            ScjTransform(query.family_.get()), &sink);
        jo.sink = adapter.get();
      } else if (spec.kind == QueryKind::kSsj) {
        adapter = std::make_unique<FilteredAdapterSink>(
            SsjTransform(spec.ssj_ordered), &sink);
        jo.sink = adapter.get();
      } else {
        jo.sink = &sink;
      }

      JoinProjectOutput out = JoinProject::TwoPathWithPlan(*r, *s, plan, jo);
      FillTwoPathStats(&out, stats);
      if (stats != nullptr) {
        stats->plan = plan;
        stats->plan_cache_hit = cache_hit;
        FillInterruptReason(opts.cancel, stats);
      }
      break;
    }
    case QueryKind::kStar: {
      if (!sink.supports_tuples()) {
        return QueryStatus::Error(
            "this sink does not consume star tuples (supports_tuples() is "
            "false) — use VectorSink / LimitSink / PageSink / CountOnlySink "
            "or a custom sink overriding OnTuple");
      }
      std::vector<const IndexedRelation*> rels;
      rels.reserve(query.rels_.size());
      for (const auto& sp : query.rels_) rels.push_back(sp.get());

      // The thresholds sweep is the star query's "plan"; cache it
      // (single-flight, like the two-path plan) so repeated executions go
      // straight to evaluation.
      const bool explicit_thresholds =
          opts.thresholds.delta1 != 0 || opts.thresholds.delta2 != 0;
      Thresholds star_thresholds{0, 0};
      // Like the two-path plan cache: hit/miss is decided under the plan
      // lock, so exactly the thread that ran the sweep reports a miss —
      // racers that block on the write lock find it valid and report hits.
      bool star_cache_hit = explicit_thresholds ? executed_before : false;
      if (!explicit_thresholds) {
        TraceRecorder::Scope plan_scope(opts.trace, "plan", exec_id);
        {
          std::shared_lock<std::shared_mutex> rl(ps.mu);
          if (ps.star_thresholds_valid) {
            star_thresholds = ps.star_thresholds;
            star_cache_hit = true;
          }
        }
        if (!star_cache_hit) {
          std::unique_lock<std::shared_mutex> wl(ps.mu);
          if (ps.star_thresholds_valid) {
            star_cache_hit = true;  // lost the race; reuse the winner
          } else {
            ps.star_thresholds = ChooseStarThresholds(rels);
            ps.star_thresholds_valid = true;
          }
          star_thresholds = ps.star_thresholds;
        }
        plan_scope.Close(star_cache_hit ? "cache-hit" : "cache-miss");
      }
      plan_hit = star_cache_hit;
      const Strategy star_strategy =
          opts.strategy_override.value_or(spec.strategy);
      JoinProjectOptions jo;
      jo.strategy = star_strategy;
      jo.threads = opts.threads;
      jo.heavy_path = opts.heavy_path;
      jo.partition = opts.partition;
      jo.grid_cache = &ps.star_grid;
      jo.max_matrix_bytes = opts.max_matrix_bytes;
      jo.sink = &sink;
      jo.cancel = opts.cancel;
      jo.trace = opts.trace;
      jo.trace_parent = exec_id;
      jo.thresholds = explicit_thresholds ? opts.thresholds : star_thresholds;

      StarJoinResult res = JoinProject::Star(rels, jo);
      if (stats != nullptr) {
        stats->executed = star_strategy == Strategy::kAuto
                              ? Strategy::kMmJoin
                              : star_strategy;
        stats->plan_cache_hit = star_cache_hit;
        stats->kernel_counts = res.kernel_counts;
        stats->heavy_density = res.heavy_density;
        stats->partition_used = res.partition_used;
        stats->partition_row_bands = res.partition_row_bands;
        stats->partition_col_bands = res.partition_col_bands;
        stats->partition_blocks_scheduled = res.partition_blocks_scheduled;
        stats->partition_blocks_pruned = res.partition_blocks_pruned;
        stats->partition_signature = res.partition_signature;
        stats->partition_cache_hit = res.partition_cache_hit;
        stats->heavy_blocks_total = res.heavy_blocks_total;
        stats->heavy_blocks_executed = res.heavy_blocks_executed;
        stats->heavy_blocks_skipped = res.heavy_blocks_skipped;
        // Star light work is step-granular; the chunk counters carry the
        // step accounting so executed + skipped == total reads uniformly.
        stats->light_chunks_total = res.light_steps_total;
        stats->light_chunks_executed = res.light_steps_executed;
        stats->light_chunks_skipped = res.light_steps_skipped;
        stats->light_steps_skipped = res.light_steps_skipped;
        stats->interrupted = res.interrupted;
        FillInterruptReason(opts.cancel, stats);
      }
      break;
    }
    case QueryKind::kTriangle: {
      // A count query: the result is ExecStats::triangle_count, not a pair
      // stream. The sink still cancels the count when its done() flips (the
      // historical contract), via a local token that also chains the
      // caller's deadline/cancel token without mutating it.
      CancelToken tri_cancel;
      tri_cancel.WatchSink(&sink);
      if (opts.cancel != nullptr) tri_cancel.Chain(opts.cancel);
      TriangleCountOptions to;
      to.threads = opts.threads;
      to.heavy_path = opts.heavy_path;
      to.max_matrix_bytes = opts.max_matrix_bytes;
      to.cancel = &tri_cancel;
      to.trace = opts.trace;
      to.trace_parent = exec_id;
      plan_hit = executed_before;
      TriangleCountResult res = CountTrianglesMm(*query.rels_[0], to);
      if (stats != nullptr) {
        stats->triangle_count = res.triangles;
        stats->interrupted = res.cancelled;
        stats->heavy_blocks_skipped = res.blocks_skipped;
        stats->light_chunks_total = res.light_chunks_total;
        stats->light_chunks_executed = res.light_chunks_executed;
        stats->light_chunks_skipped = res.light_chunks_skipped;
        stats->kernel_counts = res.kernel_counts;
        stats->heavy_density = res.heavy_density;
        stats->plan_cache_hit = executed_before;
        FillInterruptReason(&tri_cancel, stats);
      }
      break;
    }
  }

  ps.executions.fetch_add(1, std::memory_order_relaxed);
  // Close the root before copying so the returned tree is fully closed
  // (the AllClosed invariant holds on the copy too).
  exec_scope.Close();
  if (opts.trace != nullptr && stats != nullptr) {
    stats->trace_spans = opts.trace->spans();
  }
  const double seconds = timer.Seconds();
  if (stats != nullptr) stats->seconds = seconds;
  if (MetricsEnabled()) {
    EngineMetrics& em = EngineMetrics::Get();
    em.executes.Add();
    (plan_hit ? em.plan_hits : em.plan_misses).Add();
    em.execute_ms.Record(seconds * 1e3);
  }
  return QueryStatus::Ok();
}

QueryStatus QueryEngine::Run(const QuerySpec& spec, ResultSink& sink,
                             const ExecOptions& opts, ExecStats* stats) {
  PreparedQuery q;
  QueryStatus st = Prepare(spec, &q);
  if (!st.ok()) return st;
  return Execute(q, sink, opts, stats);
}

}  // namespace jpmm
