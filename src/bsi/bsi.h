// Boolean set intersection evaluation strategies (§3.3).
//
// A batch of C queries (a, b) becomes the relation T(x, z) and the batched
// query Qbatch(x, z) = R(x,y), S(z,y), T(x,z). Evaluation (per §7.5 /
// the end of §3.3):
//   per-query : one sorted-list intersection per request (the Example 5
//               baseline, O(N) worst case each)
//   batch+MM  : filter R, S to the constants of the batch, run Algorithm 1,
//               intersect the projected output with T
//   batch+WCOJ: same filter, combinatorial Non-MM join instead
// Answers are returned as one byte per query (1 = sets intersect).

#ifndef JPMM_BSI_BSI_H_
#define JPMM_BSI_BSI_H_

#include <cstdint>
#include <span>
#include <vector>

#include "bsi/workload.h"
#include "storage/set_family.h"

namespace jpmm {

struct BsiOptions {
  int threads = 1;
};

/// Per-query baseline: independent galloping intersections.
std::vector<uint8_t> BsiAnswerPerQuery(const SetFamily& r, const SetFamily& s,
                                       std::span<const BsiQuery> batch,
                                       const BsiOptions& options = {});

/// Batched evaluation through Algorithm 1 (MMJoin).
std::vector<uint8_t> BsiAnswerBatchMm(const SetFamily& r, const SetFamily& s,
                                      std::span<const BsiQuery> batch,
                                      const BsiOptions& options = {});

/// Batched evaluation through the combinatorial join (Non-MM).
std::vector<uint8_t> BsiAnswerBatchNonMm(const SetFamily& r,
                                         const SetFamily& s,
                                         std::span<const BsiQuery> batch,
                                         const BsiOptions& options = {});

}  // namespace jpmm

#endif  // JPMM_BSI_BSI_H_
