#include "bsi/latency_sim.h"

#include <cmath>

#include "common/check.h"

namespace jpmm {

BsiLatencyEstimate EstimateBsiLatency(double arrival_rate_per_sec,
                                      size_t batch_size,
                                      double measured_batch_seconds) {
  JPMM_CHECK(arrival_rate_per_sec > 0.0);
  JPMM_CHECK(batch_size > 0);
  JPMM_CHECK(measured_batch_seconds >= 0.0);
  BsiLatencyEstimate e;
  e.batch_seconds = measured_batch_seconds;
  e.fill_seconds = static_cast<double>(batch_size) / arrival_rate_per_sec;
  e.avg_delay_seconds = e.fill_seconds / 2.0 + measured_batch_seconds;
  e.machines = std::max(
      1.0, std::ceil(measured_batch_seconds * arrival_rate_per_sec /
                     static_cast<double>(batch_size)));
  return e;
}

}  // namespace jpmm
