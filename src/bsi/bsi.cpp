#include "bsi/bsi.h"

#include <algorithm>
#include <unordered_set>

#include "common/hash.h"
#include "common/thread_pool.h"
#include "core/join_project.h"
#include "join/intersection.h"
#include "storage/index.h"

namespace jpmm {
namespace {

// Filters R down to the x values appearing in the batch (the §3.3 strategy:
// "we use the requests in the batch to filter the relations R and S").
BinaryRelation FilterToConstants(const SetFamily& fam,
                                 const std::vector<uint8_t>& wanted) {
  BinaryRelation rel;
  for (Value s = 0; s < fam.num_set_ids(); ++s) {
    if (s >= wanted.size() || wanted[s] == 0) continue;
    for (Value e : fam.Elements(s)) rel.Add(s, e);
  }
  rel.Finalize();
  return rel;
}

std::vector<uint8_t> AnswerViaJoin(const SetFamily& r, const SetFamily& s,
                                   std::span<const BsiQuery> batch,
                                   Strategy strategy, int threads) {
  std::vector<uint8_t> wanted_a(r.num_set_ids(), 0);
  std::vector<uint8_t> wanted_b(s.num_set_ids(), 0);
  for (const BsiQuery& q : batch) {
    wanted_a[q.a] = 1;
    wanted_b[q.b] = 1;
  }
  BinaryRelation rf = FilterToConstants(r, wanted_a);
  BinaryRelation sf = FilterToConstants(s, wanted_b);

  JoinProjectOptions jo;
  jo.strategy = strategy;
  jo.threads = threads;
  auto res = JoinProject::TwoPath(rf, sf, jo);

  // Intersect the projected output with T.
  std::unordered_set<uint64_t, PairKeyHash> intersecting;
  intersecting.reserve(res.pairs.size() * 2);
  for (const OutPair& p : res.pairs) intersecting.insert(PackPair(p.x, p.z));

  std::vector<uint8_t> answers(batch.size(), 0);
  for (size_t i = 0; i < batch.size(); ++i) {
    answers[i] =
        intersecting.count(PackPair(batch[i].a, batch[i].b)) > 0 ? 1 : 0;
  }
  return answers;
}

}  // namespace

std::vector<uint8_t> BsiAnswerPerQuery(const SetFamily& r, const SetFamily& s,
                                       std::span<const BsiQuery> batch,
                                       const BsiOptions& options) {
  std::vector<uint8_t> answers(batch.size(), 0);
  ParallelFor(std::max(1, options.threads), batch.size(),
              [&](size_t i0, size_t i1, int) {
                for (size_t i = i0; i < i1; ++i) {
                  answers[i] = IntersectsSorted(r.Elements(batch[i].a),
                                                s.Elements(batch[i].b))
                                   ? 1
                                   : 0;
                }
              });
  return answers;
}

std::vector<uint8_t> BsiAnswerBatchMm(const SetFamily& r, const SetFamily& s,
                                      std::span<const BsiQuery> batch,
                                      const BsiOptions& options) {
  return AnswerViaJoin(r, s, batch, Strategy::kAuto, options.threads);
}

std::vector<uint8_t> BsiAnswerBatchNonMm(const SetFamily& r,
                                         const SetFamily& s,
                                         std::span<const BsiQuery> batch,
                                         const BsiOptions& options) {
  return AnswerViaJoin(r, s, batch, Strategy::kNonMmJoin, options.threads);
}

}  // namespace jpmm
