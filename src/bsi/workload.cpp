#include "bsi/workload.h"

#include "common/check.h"
#include "common/rng.h"

namespace jpmm {

std::vector<BsiQuery> SampleBsiWorkload(const SetFamily& r, const SetFamily& s,
                                        size_t n, uint64_t seed) {
  const std::vector<Value> ra = r.NonEmptySets();
  const std::vector<Value> sb = s.NonEmptySets();
  JPMM_CHECK_MSG(!ra.empty() && !sb.empty(), "empty set family");
  Rng rng(seed);
  std::vector<BsiQuery> queries;
  queries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    queries.push_back(BsiQuery{ra[rng.NextBounded(ra.size())],
                               sb[rng.NextBounded(sb.size())]});
  }
  return queries;
}

}  // namespace jpmm
