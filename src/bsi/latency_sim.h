// Average-delay model for the online BSI service (§3.3, Fig 6b-d).
//
// Queries arrive at B per second; the service batches C of them, so a query
// waits on average C / (2B) for its batch to fill and then t(C) for the
// batch to be processed. Keeping up with the arrival stream needs
// ceil(t(C) * B / C) parallel processing units (Prop. 2's machine count).
// t(C) is measured, not modelled — callers time one batch evaluation and
// feed the seconds in.

#ifndef JPMM_BSI_LATENCY_SIM_H_
#define JPMM_BSI_LATENCY_SIM_H_

#include <cstddef>

namespace jpmm {

struct BsiLatencyEstimate {
  double avg_delay_seconds = 0.0;  // C/(2B) + t(C)
  double machines = 0.0;           // ceil(t(C) * B / C)
  double batch_seconds = 0.0;      // t(C), echoed back
  double fill_seconds = 0.0;       // C / B
};

/// Computes the §3.3 service metrics from a measured batch time.
BsiLatencyEstimate EstimateBsiLatency(double arrival_rate_per_sec,
                                      size_t batch_size,
                                      double measured_batch_seconds);

}  // namespace jpmm

#endif  // JPMM_BSI_LATENCY_SIM_H_
