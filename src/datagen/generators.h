// Synthetic relation generators.
//
// The paper evaluates on six public datasets (Table 2). Offline, we generate
// bipartite set-element relations whose *shape* — set count, domain size,
// set-size distribution, element skew, and hence duplication factor
// |OUT_join| / |OUT| — matches each dataset's regime at laptop scale
// (presets.h). These generators are the building blocks.

#ifndef JPMM_DATAGEN_GENERATORS_H_
#define JPMM_DATAGEN_GENERATORS_H_

#include <cstdint>

#include "storage/relation.h"

namespace jpmm {

/// Parameters for a bipartite "family of sets" relation R(set, element).
struct BipartiteSpec {
  uint32_t num_sets = 1000;
  uint32_t dom_size = 1000;   // element universe
  uint32_t min_set_size = 1;
  uint32_t max_set_size = 16;
  /// Skew of the set-size distribution: 0 = uniform over
  /// [min_set_size, max_set_size]; larger favours small sets (Zipf on the
  /// size rank).
  double size_skew = 1.0;
  /// Skew of element popularity: 0 = uniform; ~1 = word-frequency-like
  /// hubs. Hot elements appear in many sets, creating heavy y values.
  double element_skew = 0.5;
  /// Fraction of sets generated as random subsets of an earlier set. Real
  /// dense families (jokes, protein neighbourhoods, image features) contain
  /// many near-duplicates and containments; this knob reproduces that
  /// structure, which SCJ workloads depend on.
  double subset_fraction = 0.0;
  uint64_t seed = 42;
};

/// Generates R(set, element) under the given spec. Finalized, duplicate-free.
BinaryRelation MakeBipartite(const BipartiteSpec& spec);

/// Example 1's community graph: `communities` cliques of `community_size`
/// users each; every intra-community edge is kept with probability p_in.
/// The 2-path self join over it has |OUT_join| = Theta(N^{3/2}) but
/// |OUT| = Theta(N).
BinaryRelation CommunityGraph(uint32_t communities, uint32_t community_size,
                              double p_in, uint64_t seed);

/// Uniform random bipartite relation with (up to) `num_tuples` distinct
/// tuples.
BinaryRelation UniformBipartite(uint32_t num_x, uint32_t num_y,
                                uint64_t num_tuples, uint64_t seed);

}  // namespace jpmm

#endif  // JPMM_DATAGEN_GENERATORS_H_
