#include "datagen/generators.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "common/stamp_set.h"

namespace jpmm {

BinaryRelation MakeBipartite(const BipartiteSpec& spec) {
  JPMM_CHECK(spec.num_sets > 0 && spec.dom_size > 0);
  JPMM_CHECK(spec.min_set_size >= 1);
  JPMM_CHECK(spec.max_set_size >= spec.min_set_size);
  JPMM_CHECK(spec.max_set_size <= spec.dom_size);

  const uint32_t size_ranks = spec.max_set_size - spec.min_set_size + 1;
  ZipfSampler size_sampler(size_ranks, spec.size_skew, spec.seed ^ 0x5151);
  ZipfSampler elem_sampler(spec.dom_size, spec.element_skew,
                           spec.seed ^ 0xabcd);
  Rng rng(spec.seed);

  BinaryRelation rel;
  StampSet in_set(spec.dom_size);
  std::vector<Value> perm;  // lazily built for the dense path
  // Materialized sets, kept only when subset structure is requested.
  std::vector<std::vector<Value>> generated;
  if (spec.subset_fraction > 0.0) generated.reserve(spec.num_sets);

  for (uint32_t s = 0; s < spec.num_sets; ++s) {
    if (spec.subset_fraction > 0.0 && s > 0 &&
        rng.NextBool(spec.subset_fraction)) {
      // Random subset of an earlier set (partial Fisher-Yates over a copy).
      std::vector<Value> parent =
          generated[rng.NextBounded(generated.size())];
      const uint64_t take = 1 + rng.NextBounded(parent.size());
      for (uint64_t t = 0; t < take; ++t) {
        const uint64_t pick = t + rng.NextBounded(parent.size() - t);
        std::swap(parent[t], parent[pick]);
        rel.Add(s, parent[t]);
      }
      parent.resize(take);
      generated.push_back(std::move(parent));
      continue;
    }
    const uint32_t size = spec.min_set_size + size_sampler.Sample();
    in_set.NewEpoch();
    std::vector<Value> current;
    current.reserve(size);
    if (size > spec.dom_size / 3) {
      // Dense set: rejection sampling would stall; take a partial
      // Fisher-Yates shuffle instead (uniform elements — dense presets have
      // low element skew anyway).
      if (perm.empty()) {
        perm.resize(spec.dom_size);
        std::iota(perm.begin(), perm.end(), 0);
      }
      for (uint32_t i = 0; i < size; ++i) {
        const uint64_t j =
            i + rng.NextBounded(static_cast<uint64_t>(spec.dom_size) - i);
        std::swap(perm[i], perm[j]);
        current.push_back(perm[i]);
      }
    } else {
      uint32_t attempts = 0;
      const uint32_t max_attempts = 40 * size + 64;
      while (current.size() < size && attempts < max_attempts) {
        ++attempts;
        const Value e = elem_sampler.Sample();
        if (in_set.Insert(e)) current.push_back(e);
      }
      // Fallback: fill the remainder with the first unused elements (only
      // reachable under extreme skew).
      for (Value e = 0; current.size() < size && e < spec.dom_size; ++e) {
        if (in_set.Insert(e)) current.push_back(e);
      }
    }
    for (Value e : current) rel.Add(s, e);
    if (spec.subset_fraction > 0.0) generated.push_back(std::move(current));
  }
  rel.Finalize();
  return rel;
}

BinaryRelation CommunityGraph(uint32_t communities, uint32_t community_size,
                              double p_in, uint64_t seed) {
  JPMM_CHECK(communities > 0 && community_size > 0);
  JPMM_CHECK(p_in >= 0.0 && p_in <= 1.0);
  Rng rng(seed);
  BinaryRelation rel;
  for (uint32_t c = 0; c < communities; ++c) {
    const Value base = c * community_size;
    for (uint32_t i = 0; i < community_size; ++i) {
      for (uint32_t j = 0; j < community_size; ++j) {
        if (i == j) continue;
        if (rng.NextBool(p_in)) rel.Add(base + i, base + j);
      }
    }
  }
  rel.Finalize();
  return rel;
}

BinaryRelation UniformBipartite(uint32_t num_x, uint32_t num_y,
                                uint64_t num_tuples, uint64_t seed) {
  JPMM_CHECK(num_x > 0 && num_y > 0);
  Rng rng(seed);
  BinaryRelation rel;
  for (uint64_t i = 0; i < num_tuples; ++i) {
    rel.Add(static_cast<Value>(rng.NextBounded(num_x)),
            static_cast<Value>(rng.NextBounded(num_y)));
  }
  rel.Finalize();  // removes collisions, so size may be < num_tuples
  return rel;
}

}  // namespace jpmm
