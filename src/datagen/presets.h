// Laptop-scale stand-ins for the paper's six datasets (Table 2).
//
// Each preset reproduces the dataset's *regime* — sparse vs dense, set-size
// distribution, element skew, duplication factor — scaled so the full
// benchmark suite runs in minutes on one core. EXPERIMENTS.md prints the
// generated characteristics (bench/table2_datasets) next to the paper's.
//
//   preset        paper dataset    regime
//   kDblp         DBLP             sparse bipartite, small skewed sets
//   kRoadNet      RoadNet-PA       very sparse, near-uniform tiny degrees
//   kJokes        Jokes            dense, large sets (~11% of dom each)
//   kWords        Words            mid-density, strong element skew
//   kProtein      Protein          very dense (~25% of dom per set)
//   kImage        Image            dense and near-clique (uniform large sets)

#ifndef JPMM_DATAGEN_PRESETS_H_
#define JPMM_DATAGEN_PRESETS_H_

#include <string>
#include <vector>

#include "datagen/generators.h"
#include "storage/relation.h"

namespace jpmm {

enum class DatasetPreset {
  kDblp,
  kRoadNet,
  kJokes,
  kWords,
  kProtein,
  kImage,
};

/// All six presets in Table-2 order.
const std::vector<DatasetPreset>& AllPresets();

/// Paper dataset the preset models ("DBLP", "RoadNet", ...).
const char* PresetName(DatasetPreset p);

/// The generator spec behind a preset at the given scale (scale multiplies
/// set count and domain; set sizes stay fixed, so tuple count scales
/// linearly and density regimes are preserved).
BipartiteSpec PresetSpec(DatasetPreset p, double scale);

/// Generates the preset. scale = 1 is the default benchmark size; the
/// JPMM_SCALE environment variable (read by the benches) rescales all runs.
BinaryRelation MakePreset(DatasetPreset p, double scale = 1.0,
                          uint64_t seed = 42);

/// Reads JPMM_SCALE from the environment (default 1.0, clamped to
/// [0.05, 100]).
double ScaleFromEnv();

}  // namespace jpmm

#endif  // JPMM_DATAGEN_PRESETS_H_
