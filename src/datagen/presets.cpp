#include "datagen/presets.h"

#include <algorithm>
#include <cstdlib>

#include "common/check.h"

namespace jpmm {

const std::vector<DatasetPreset>& AllPresets() {
  static const std::vector<DatasetPreset> kAll = {
      DatasetPreset::kDblp,   DatasetPreset::kRoadNet, DatasetPreset::kJokes,
      DatasetPreset::kWords,  DatasetPreset::kProtein, DatasetPreset::kImage,
  };
  return kAll;
}

const char* PresetName(DatasetPreset p) {
  switch (p) {
    case DatasetPreset::kDblp:
      return "DBLP";
    case DatasetPreset::kRoadNet:
      return "RoadNet";
    case DatasetPreset::kJokes:
      return "Jokes";
    case DatasetPreset::kWords:
      return "Words";
    case DatasetPreset::kProtein:
      return "Protein";
    case DatasetPreset::kImage:
      return "Image";
  }
  return "?";
}

BipartiteSpec PresetSpec(DatasetPreset p, double scale) {
  JPMM_CHECK(scale > 0);
  auto scaled = [scale](uint32_t base) {
    return std::max<uint32_t>(
        8, static_cast<uint32_t>(static_cast<double>(base) * scale));
  };
  BipartiteSpec s;
  switch (p) {
    case DatasetPreset::kDblp:
      // Sparse bibliography: many small author sets, mild hub skew.
      s.num_sets = scaled(60000);
      s.dom_size = scaled(120000);
      s.min_set_size = 1;
      s.max_set_size = 200;
      s.size_skew = 1.4;       // avg ~ 6-7 per Table 2
      s.element_skew = 0.3;    // papers have few authors each
      s.subset_fraction = 0.05;
      s.seed = 1001;
      break;
    case DatasetPreset::kRoadNet:
      // Road network: tiny near-uniform degrees.
      s.num_sets = scaled(100000);
      s.dom_size = scaled(100000);
      s.min_set_size = 1;
      s.max_set_size = 6;
      s.size_skew = 1.8;       // avg ~ 1.5
      s.element_skew = 0.2;
      s.seed = 1002;
      break;
    case DatasetPreset::kJokes:
      // Dense: each joke shares many words; avg set ~ 11% of dom.
      s.num_sets = scaled(1000);
      s.dom_size = scaled(800);
      s.min_set_size = 20;
      s.max_set_size = 240;
      s.size_skew = 0.4;       // avg ~ 95
      s.element_skew = 0.75;
      s.subset_fraction = 0.3;  // many near-duplicate jokes
      s.seed = 1003;
      break;
    case DatasetPreset::kWords:
      // Mid-density with strong word-frequency skew; most sets small.
      s.num_sets = scaled(6000);
      s.dom_size = scaled(3000);
      s.min_set_size = 1;
      s.max_set_size = 300;
      s.size_skew = 0.9;       // avg ~ 30
      s.element_skew = 0.8;
      s.subset_fraction = 0.15;
      s.seed = 1004;
      break;
    case DatasetPreset::kProtein:
      // Very dense interaction neighbourhoods: ~25% of dom per set.
      s.num_sets = scaled(800);
      s.dom_size = scaled(800);
      s.min_set_size = 60;
      s.max_set_size = 360;
      s.size_skew = 0.2;       // avg ~ 200
      s.element_skew = 0.45;
      s.subset_fraction = 0.25;  // nested interaction neighbourhoods
      s.seed = 1005;
      break;
    case DatasetPreset::kImage:
      // Near-clique: uniform large feature sets, negligible skew.
      s.num_sets = scaled(900);
      s.dom_size = scaled(700);
      s.min_set_size = 130;
      s.max_set_size = 190;
      s.size_skew = 0.0;       // avg ~ 160 (23% of dom)
      s.element_skew = 0.15;
      s.subset_fraction = 0.25;  // shared feature templates
      s.seed = 1006;
      break;
  }
  // At very small scales the (fixed) set sizes can exceed the scaled domain;
  // shrink them proportionally so the density regime survives.
  if (s.max_set_size > s.dom_size) {
    const double shrink =
        static_cast<double>(s.dom_size) / static_cast<double>(s.max_set_size);
    s.max_set_size = s.dom_size;
    s.min_set_size = std::max<uint32_t>(
        1, static_cast<uint32_t>(s.min_set_size * shrink));
  }
  return s;
}

BinaryRelation MakePreset(DatasetPreset p, double scale, uint64_t seed) {
  BipartiteSpec spec = PresetSpec(p, scale);
  if (seed != 42) spec.seed ^= seed;
  return MakeBipartite(spec);
}

double ScaleFromEnv() {
  const char* env = std::getenv("JPMM_SCALE");
  if (env == nullptr) return 1.0;
  const double v = std::atof(env);
  if (v <= 0.0) return 1.0;
  return std::clamp(v, 0.05, 100.0);
}

}  // namespace jpmm
