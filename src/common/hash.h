// Hashing utilities: a strong 64-bit mixer and hashers for pair keys.

#ifndef JPMM_COMMON_HASH_H_
#define JPMM_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>

#include "common/types.h"

namespace jpmm {

/// Finalizer from splitmix64; good avalanche for sequential ids.
inline uint64_t Mix64(uint64_t v) {
  v += 0x9e3779b97f4a7c15ULL;
  v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ULL;
  v = (v ^ (v >> 27)) * 0x94d049bb133111ebULL;
  return v ^ (v >> 31);
}

/// Hash functor for packed (x, z) output pairs.
struct PairKeyHash {
  size_t operator()(uint64_t key) const {
    return static_cast<size_t>(Mix64(key));
  }
};

/// Hash functor for OutPair.
struct OutPairHash {
  size_t operator()(const OutPair& p) const {
    return static_cast<size_t>(Mix64(PackPair(p.x, p.z)));
  }
};

/// Combines a hash into a running seed (boost-style).
inline void HashCombine(size_t* seed, uint64_t v) {
  *seed ^= static_cast<size_t>(Mix64(v)) + 0x9e3779b97f4a7c15ULL +
           (*seed << 6) + (*seed >> 2);
}

}  // namespace jpmm

#endif  // JPMM_COMMON_HASH_H_
