#include "common/thread_pool.h"

#include <algorithm>

#include "common/check.h"

namespace jpmm {

ThreadPool::ThreadPool(int threads) {
  JPMM_CHECK(threads >= 1);
  workers_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_cv_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

void ParallelFor(int threads, size_t n,
                 const std::function<void(size_t, size_t, int)>& fn) {
  if (n == 0) return;
  threads = std::max(1, threads);
  const size_t workers = std::min<size_t>(static_cast<size_t>(threads), n);
  if (workers == 1) {
    fn(0, n, 0);
    return;
  }
  // Contiguous chunks: coordination-free, matches the row-partitioned
  // parallelism the paper relies on. One std::thread per chunk; chunk counts
  // here are small (= thread count), so spawn cost is negligible next to the
  // work inside.
  std::vector<std::thread> pool;
  pool.reserve(workers);
  const size_t chunk = (n + workers - 1) / workers;
  for (size_t w = 0; w < workers; ++w) {
    const size_t begin = w * chunk;
    const size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    pool.emplace_back([&fn, begin, end, w] {
      fn(begin, end, static_cast<int>(w));
    });
  }
  for (auto& t : pool) t.join();
}

int HardwareThreads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

}  // namespace jpmm
