#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "common/check.h"
#include "common/failpoint.h"
#include "common/metrics.h"

namespace jpmm {
namespace {

std::atomic<size_t> g_threads_spawned{0};

// Registry handles cached once: Get* takes a shared_mutex, so it must stay
// off the per-task path.
struct PoolMetrics {
  Counter& tasks = MetricsRegistry::Global().GetCounter("jpmm_pool_tasks_total");
  Gauge& busy = MetricsRegistry::Global().GetGauge("jpmm_pool_workers_busy");
  Histogram& dispatch_us = MetricsRegistry::Global().GetHistogram(
      "jpmm_pool_dispatch_us", ExponentialBounds(1.0, 2.0, 16));
  static PoolMetrics& Get() {
    static PoolMetrics m;
    return m;
  }
};

// Set for the lifetime of one task execution; nested ParallelFor calls use
// it to fall back to inline execution instead of re-entering the pool.
thread_local bool t_on_pool_thread = false;

// Shared completion state for one ParallelFor / ParallelForDynamic call.
// Tasks from concurrent calls interleave freely in the global pool; each
// call only waits for (and observes exceptions from) its own group.
struct TaskGroup {
  std::mutex mu;
  std::condition_variable done_cv;
  std::exception_ptr error;
  size_t pending = 0;

  // Runs one chunk, recording the first exception. Decrementing `pending`
  // is unconditional so a throwing chunk can never strand the waiter.
  void RunChunk(const std::function<void()>& body) {
    try {
      JPMM_FAIL_POINT("pool.dispatch");
      body();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu);
      if (!error) error = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(mu);
    if (--pending == 0) done_cv.notify_all();
  }

  void WaitAndRethrow() {
    std::unique_lock<std::mutex> lock(mu);
    done_cv.wait(lock, [this] { return pending == 0; });
    if (error) std::rethrow_exception(error);
  }
};

}  // namespace

ThreadPool::ThreadPool(int threads) {
  JPMM_CHECK(threads >= 0);
  EnsureWorkers(threads);
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::EnsureWorkers(int threads) {
  std::unique_lock<std::mutex> lock(mu_);
  while (static_cast<int>(workers_.size()) < threads) {
    workers_.emplace_back([this] { WorkerLoop(); });
    g_threads_spawned.fetch_add(1, std::memory_order_relaxed);
  }
}

int ThreadPool::num_threads() const {
  std::unique_lock<std::mutex> lock(mu_);
  return static_cast<int>(workers_.size());
}

void ThreadPool::Submit(std::function<void()> task) {
  // Dispatch latency = submit-to-start queue time. The timestamp capture is
  // skipped entirely when metrics are off, so the disabled hot path is the
  // pre-instrumentation code.
  if (MetricsEnabled()) {
    PoolMetrics& m = PoolMetrics::Get();
    m.tasks.Add();
    const auto t0 = std::chrono::steady_clock::now();
    task = [t0, inner = std::move(task), &m] {
      m.dispatch_us.Record(std::chrono::duration<double, std::micro>(
                               std::chrono::steady_clock::now() - t0)
                               .count());
      inner();
    };
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_cv_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
    error = first_error_;
    first_error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::WorkerLoop() {
  t_on_pool_thread = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    // The decrement must happen whether or not task() throws — a leaked
    // count would deadlock WaitIdle() forever — so it lives after the
    // catch, on every path out of the try. The occupancy gauge follows the
    // same rule: Sub sits after the catch so a throwing task can't leave a
    // phantom busy worker.
    Gauge& busy = PoolMetrics::Get().busy;
    busy.Add(1);
    try {
      task();
    } catch (...) {
      std::unique_lock<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    busy.Sub(1);
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool(0);
  return pool;
}

size_t ThreadPool::TotalThreadsSpawned() {
  return g_threads_spawned.load(std::memory_order_relaxed);
}

bool ThreadPool::OnPoolThread() { return t_on_pool_thread; }

void ParallelFor(int threads, size_t n,
                 const std::function<void(size_t, size_t, int)>& fn) {
  if (n == 0) return;
  threads = std::max(1, threads);
  const size_t workers = std::min<size_t>(static_cast<size_t>(threads), n);
  if (workers == 1 || ThreadPool::OnPoolThread()) {
    fn(0, n, 0);
    return;
  }
  // Contiguous chunks: coordination-free, matches the row-partitioned
  // parallelism the paper relies on. Chunks 1..k-1 go to the persistent
  // pool; the caller runs chunk 0 itself, so k-way execution needs only
  // k-1 pool workers and no thread is ever spawned per call.
  ThreadPool& pool = ThreadPool::Global();
  pool.EnsureWorkers(static_cast<int>(workers) - 1);
  const size_t chunk = (n + workers - 1) / workers;
  TaskGroup group;
  group.pending = workers;
  for (size_t w = 1; w < workers; ++w) {
    const size_t begin = w * chunk;
    const size_t end = std::min(n, begin + chunk);
    if (begin >= end) {
      // Rounding left this chunk empty; retire it without a pool trip.
      std::lock_guard<std::mutex> lock(group.mu);
      --group.pending;
      continue;
    }
    pool.Submit([&group, &fn, begin, end, w] {
      group.RunChunk([&] { fn(begin, end, static_cast<int>(w)); });
    });
  }
  group.RunChunk([&] { fn(0, std::min(n, chunk), 0); });
  group.WaitAndRethrow();
}

void ParallelForDynamic(int threads, size_t n, size_t grain,
                        const std::function<void(size_t, size_t, int)>& fn) {
  if (n == 0) return;
  threads = std::max(1, threads);
  grain = std::max<size_t>(1, grain);
  const size_t chunks = (n + grain - 1) / grain;
  const size_t workers = std::min<size_t>(static_cast<size_t>(threads), chunks);
  if (workers == 1 || ThreadPool::OnPoolThread()) {
    // Same grain-sized claims as the pooled path (just in order), so
    // chunk-boundary behavior — a ResultSink's done() poll skipping the
    // rest of the range — is identical at every thread count.
    for (size_t b = 0; b < n; b += grain) {
      fn(b, std::min(n, b + grain), 0);
    }
    return;
  }
  ThreadPool& pool = ThreadPool::Global();
  pool.EnsureWorkers(static_cast<int>(workers) - 1);
  // One atomic fetch_add per grain-sized chunk: a worker stuck on expensive
  // indices claims fewer chunks, so zipf-skewed loops balance without any
  // cross-worker coordination beyond the counter. Stack-local is safe: the
  // caller blocks in WaitAndRethrow until every task is done.
  std::atomic<size_t> next{0};
  auto drain = [&next, &fn, n, grain](int w) {
    for (;;) {
      const size_t begin = next.fetch_add(grain, std::memory_order_relaxed);
      if (begin >= n) break;
      fn(begin, std::min(n, begin + grain), w);
    }
  };
  TaskGroup group;
  group.pending = workers;
  for (size_t w = 1; w < workers; ++w) {
    pool.Submit([&group, &drain, w] {
      group.RunChunk([&] { drain(static_cast<int>(w)); });
    });
  }
  group.RunChunk([&] { drain(0); });
  group.WaitAndRethrow();
}

int HardwareThreads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

}  // namespace jpmm
