#include "common/hyperloglog.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/check.h"

namespace jpmm {

HyperLogLog::HyperLogLog(int precision) : precision_(precision) {
  JPMM_CHECK(precision >= 4 && precision <= 16);
  registers_.assign(size_t{1} << precision, 0);
}

void HyperLogLog::Add(uint64_t hash) {
  const size_t idx = hash >> (64 - precision_);
  // Rank of the first set bit in the remaining 64 - p bits (1-based).
  const uint64_t rest = (hash << precision_) | (uint64_t{1} << (precision_ - 1));
  const auto rank = static_cast<uint8_t>(std::countl_zero(rest) + 1);
  registers_[idx] = std::max(registers_[idx], rank);
}

void HyperLogLog::Merge(const HyperLogLog& other) {
  JPMM_CHECK(precision_ == other.precision_);
  for (size_t i = 0; i < registers_.size(); ++i) {
    registers_[i] = std::max(registers_[i], other.registers_[i]);
  }
}

void HyperLogLog::Reset() {
  std::fill(registers_.begin(), registers_.end(), 0);
}

double HyperLogLog::Estimate() const {
  const double m = static_cast<double>(registers_.size());
  double sum = 0.0;
  size_t zeros = 0;
  for (uint8_t r : registers_) {
    sum += std::ldexp(1.0, -static_cast<int>(r));
    if (r == 0) ++zeros;
  }
  const double alpha =
      m == 16 ? 0.673 : m == 32 ? 0.697 : m == 64 ? 0.709
                                        : 0.7213 / (1.0 + 1.079 / m);
  double estimate = alpha * m * m / sum;
  // Small-range correction: linear counting.
  if (estimate <= 2.5 * m && zeros > 0) {
    estimate = m * std::log(m / static_cast<double>(zeros));
  }
  return estimate;
}

}  // namespace jpmm
