// Epoch-stamped membership set — the deduplication idiom of Section 6.
//
// The paper replaces hash-map deduplication (which rehashes as it grows and
// needs |OUT| reserved memory) with a dense vector indexed by the candidate
// value, reused across x-values. We add the classic epoch trick so clearing
// between x-values is O(1) instead of O(domain).

#ifndef JPMM_COMMON_STAMP_SET_H_
#define JPMM_COMMON_STAMP_SET_H_

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace jpmm {

/// Set over a dense universe [0, n) with O(1) insert/lookup and O(1) clear.
class StampSet {
 public:
  StampSet() = default;
  explicit StampSet(size_t n) : stamps_(n, 0) {}

  /// Resizes the universe (clears the set).
  void ResizeUniverse(size_t n) {
    stamps_.assign(n, 0);
    epoch_ = 1;
  }

  /// Empties the set in O(1).
  void NewEpoch() {
    if (++epoch_ == 0) {  // stamp wrap-around: one O(n) flush every 2^32 epochs
      std::fill(stamps_.begin(), stamps_.end(), 0);
      epoch_ = 1;
    }
  }

  /// Inserts v; returns true iff v was not present.
  bool Insert(uint32_t v) {
    JPMM_DCHECK(v < stamps_.size());
    if (stamps_[v] == epoch_) return false;
    stamps_[v] = epoch_;
    return true;
  }

  bool Contains(uint32_t v) const {
    JPMM_DCHECK(v < stamps_.size());
    return stamps_[v] == epoch_;
  }

  size_t universe() const { return stamps_.size(); }

 private:
  std::vector<uint32_t> stamps_;
  uint32_t epoch_ = 1;
};

/// Counter array over a dense universe with O(1) clear; used by the counting
/// variant of the light-part join (witness counts per z for a fixed x).
class StampCounter {
 public:
  StampCounter() = default;
  explicit StampCounter(size_t n) : stamps_(n, 0), counts_(n, 0) {}

  void ResizeUniverse(size_t n) {
    stamps_.assign(n, 0);
    counts_.assign(n, 0);
    epoch_ = 1;
  }

  void NewEpoch() {
    if (++epoch_ == 0) {
      std::fill(stamps_.begin(), stamps_.end(), 0);
      epoch_ = 1;
    }
  }

  /// Adds delta to v's count; returns the count before the addition
  /// (0 means v is fresh this epoch).
  uint32_t Add(uint32_t v, uint32_t delta) {
    JPMM_DCHECK(v < stamps_.size());
    if (stamps_[v] != epoch_) {
      stamps_[v] = epoch_;
      counts_[v] = delta;
      return 0;
    }
    const uint32_t before = counts_[v];
    counts_[v] += delta;
    return before;
  }

  uint32_t Get(uint32_t v) const {
    JPMM_DCHECK(v < stamps_.size());
    return stamps_[v] == epoch_ ? counts_[v] : 0;
  }

  size_t universe() const { return stamps_.size(); }

  /// Raw storage for the SIMD stamp-expansion kernels
  /// (matrix/sparse_kernels.h), which gather/scatter stamps and counts
  /// directly. Invariant they must preserve: stamps_[v] == epoch() iff v is
  /// live this epoch, and then counts_[v] is its count.
  uint32_t* raw_stamps() { return stamps_.data(); }
  uint32_t* raw_counts() { return counts_.data(); }
  uint32_t epoch() const { return epoch_; }

 private:
  std::vector<uint32_t> stamps_;
  std::vector<uint32_t> counts_;
  uint32_t epoch_ = 1;
};

}  // namespace jpmm

#endif  // JPMM_COMMON_STAMP_SET_H_
