// Process-wide metrics registry: named counters, gauges, and per-thread
// sharded fixed-boundary histograms.
//
// The paper's premise is output-sensitive cost, so the system needs to
// answer "which stage — pack, light pass, heavy block, sink merge, queue
// wait — ate the budget" without perturbing the stages it measures. Design
// rules:
//
//   - Hot path is relaxed atomics only. A Counter::Add is one relaxed
//     fetch_add; a Histogram::Record is two (bucket + count) plus a CAS-add
//     on the shard-local sum. No locks, no allocation, no syscalls.
//   - Histograms are sharded kShards ways by a thread-local shard index, so
//     concurrent recorders from the pool don't bounce one cache line.
//     Shards are merged only at Snapshot() time; merged bucket counts are
//     order-independent sums, so snapshots are deterministic for a given
//     multiset of recorded values regardless of thread count.
//   - Instrumentation can be disabled process-wide (JPMM_METRICS=off, or
//     SetMetricsEnabled(false)): registry-owned instruments become no-ops
//     behind a single relaxed bool load, which is what the kernel
//     microbench overhead row measures against.
//
// Registry lookups (GetCounter etc.) take a shared_mutex and are NOT for
// hot paths: call sites cache the returned reference in a function-local
// static. Returned references stay valid for the life of the process;
// instruments are never removed (ResetForTest zeroes values in place).
//
// Naming convention (docs/observability.md): jpmm_<subsystem>_<name> with
// snake_case, unit-suffixed (_total for counters, _ms/_us/_bytes where the
// unit is not obvious), matching Prometheus exposition rules.

#ifndef JPMM_COMMON_METRICS_H_
#define JPMM_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

namespace jpmm {

/// Process-wide instrumentation switch. Initialized once from the
/// JPMM_METRICS environment variable ("off"/"0"/"false" disable, anything
/// else — including unset — enables). Only registry-owned instruments are
/// gated; standalone Histogram/Counter instances (bench tallies) always
/// record.
bool MetricsEnabled();

/// Overrides the JPMM_METRICS setting at runtime. Test/bench hook — the
/// overhead microbench flips this to measure on-vs-off in one process.
void SetMetricsEnabled(bool enabled);

/// Monotonic counter. Relaxed fetch_add on Add; relaxed load on value().
class Counter {
 public:
  explicit Counter(bool gated = false) : gated_(gated) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t n = 1) {
    if (gated_ && !MetricsEnabled()) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
  const bool gated_;
};

/// Up/down gauge (e.g. workers currently busy, requests in flight).
class Gauge {
 public:
  explicit Gauge(bool gated = false) : gated_(gated) {}
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Add(int64_t n = 1) {
    if (gated_ && !MetricsEnabled()) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  void Sub(int64_t n = 1) { Add(-n); }
  void Set(int64_t v) {
    if (gated_ && !MetricsEnabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
  const bool gated_;
};

/// Point-in-time merged view of one Histogram. counts has bounds.size()+1
/// entries; the last is the overflow (+Inf) bucket.
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<uint64_t> counts;
  double sum = 0.0;
  uint64_t count = 0;

  /// Percentile estimate (p in [0, 100]) by linear interpolation inside the
  /// containing bucket. Values in the overflow bucket report the largest
  /// finite bound. Returns 0 for an empty histogram.
  double Percentile(double p) const;
};

/// Fixed-boundary histogram, sharded kShards ways to keep concurrent
/// Record() calls off each other's cache lines. Bounds are strictly
/// increasing upper bucket bounds (Prometheus `le` semantics): a value v
/// lands in the first bucket with v <= bounds[i], else overflow.
class Histogram {
 public:
  static constexpr int kShards = 16;

  explicit Histogram(std::vector<double> bounds, bool gated = false);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(double value);

  /// Merges all shards. Deterministic for a given multiset of recorded
  /// values regardless of which threads recorded them (sums commute).
  HistogramSnapshot Snapshot() const;

  const std::vector<double>& bounds() const { return bounds_; }
  void Reset();

 private:
  struct alignas(64) ShardSum {
    std::atomic<double> sum{0.0};
  };

  std::vector<double> bounds_;
  size_t stride_;  // bounds_.size()+1 rounded up to a cache line of u64s
  std::vector<std::atomic<uint64_t>> buckets_;  // kShards * stride_
  std::vector<ShardSum> sums_;                  // kShards
  const bool gated_;
};

/// `count` exponentially spaced bounds: first, first*factor, ... Useful for
/// latency histograms spanning several orders of magnitude.
std::vector<double> ExponentialBounds(double first, double factor, int count);

/// Default latency bounds in milliseconds: 0.01ms .. ~84s, factor 2.
/// Shared by every *_ms histogram so cross-metric bucket rows line up.
const std::vector<double>& DefaultLatencyBoundsMs();

/// Everything in the registry at one point in time.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

/// Process-wide named-instrument registry. Get* registers on first use and
/// returns a stable reference; repeat calls with the same name return the
/// same instrument (a histogram's bounds are fixed by the first caller).
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name,
                          const std::vector<double>& bounds);

  MetricsSnapshot Snapshot() const;

  /// Prometheus text exposition format: counter/gauge/histogram TYPE lines,
  /// cumulative `le` buckets, _sum and _count series.
  std::string PrometheusText() const;

  /// JSON object {"counters": {...}, "gauges": {...}, "histograms":
  /// {name: {bounds, counts, sum, count}}}.
  std::string JsonText() const;

  /// Zeroes every registered instrument in place (references stay valid).
  /// Tests only — production counters are cumulative by contract.
  void ResetForTest();

 private:
  MetricsRegistry() = default;

  mutable std::shared_mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace jpmm

#endif  // JPMM_COMMON_METRICS_H_
