// Deterministic random number generation for data generators and tests.
//
// Xorshift128+ engine (fast, reproducible across platforms) plus the Zipf
// sampler the synthetic Table-2 presets use for skewed degree distributions.

#ifndef JPMM_COMMON_RNG_H_
#define JPMM_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace jpmm {

/// Xorshift128+ PRNG. Not cryptographic; deterministic given the seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli draw with probability p.
  bool NextBool(double p);

 private:
  uint64_t s0_;
  uint64_t s1_;
};

/// Samples ranks 1..n with P(rank = k) proportional to k^{-theta}.
///
/// theta = 0 gives the uniform distribution; theta around 1 gives the heavy
/// skew typical of word-frequency / co-authorship data. Uses an inverted-CDF
/// table, so construction is O(n) and each sample is O(log n).
class ZipfSampler {
 public:
  ZipfSampler(uint32_t n, double theta, uint64_t seed);

  /// Returns a rank in [0, n).
  uint32_t Sample();

  uint32_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint32_t n_;
  double theta_;
  Rng rng_;
  std::vector<double> cdf_;  // cdf_[k] = P(rank <= k), size n.
};

}  // namespace jpmm

#endif  // JPMM_COMMON_RNG_H_
