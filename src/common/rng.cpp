#include "common/rng.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/hash.h"

namespace jpmm {

Rng::Rng(uint64_t seed) {
  // Seed both lanes through the splitmix64 mixer so that nearby seeds give
  // unrelated streams.
  s0_ = Mix64(seed);
  s1_ = Mix64(seed + 0x9e3779b97f4a7c15ULL);
  if (s0_ == 0 && s1_ == 0) s0_ = 1;
}

uint64_t Rng::Next() {
  uint64_t x = s0_;
  const uint64_t y = s1_;
  s0_ = y;
  x ^= x << 23;
  s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
  return s1_ + y;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  JPMM_CHECK(bound > 0);
  // Rejection-free multiply-shift; bias is < 2^-64 * bound, negligible here.
  return static_cast<uint64_t>(
      (static_cast<unsigned __int128>(Next()) * bound) >> 64);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

ZipfSampler::ZipfSampler(uint32_t n, double theta, uint64_t seed)
    : n_(n), theta_(theta), rng_(seed) {
  JPMM_CHECK(n > 0);
  JPMM_CHECK(theta >= 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (uint32_t k = 0; k < n; ++k) {
    total += std::pow(static_cast<double>(k + 1), -theta);
    cdf_[k] = total;
  }
  for (uint32_t k = 0; k < n; ++k) cdf_[k] /= total;
  cdf_.back() = 1.0;  // guard against floating-point shortfall
}

uint32_t ZipfSampler::Sample() {
  const double u = rng_.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<uint32_t>(it - cdf_.begin());
}

}  // namespace jpmm
