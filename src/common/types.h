// Core value types shared by every jpmm module.
//
// Relations store dictionary-encoded 32-bit values; a binary relation R(x, y)
// is a multiset of (Value, Value) pairs. All algorithms in the library work
// over these dense ids; string attributes are mapped through
// storage::Dictionary before they enter a relation.

#ifndef JPMM_COMMON_TYPES_H_
#define JPMM_COMMON_TYPES_H_

#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

namespace jpmm {

/// Dictionary-encoded attribute value. Dense ids in [0, domain_size).
using Value = uint32_t;

/// Sentinel for "no value" (never a legal dictionary code).
inline constexpr Value kInvalidValue = std::numeric_limits<Value>::max();

/// One tuple of a binary relation R(x, y).
struct Tuple {
  Value x = 0;
  Value y = 0;

  friend bool operator==(const Tuple& a, const Tuple& b) {
    return a.x == b.x && a.y == b.y;
  }
  friend bool operator<(const Tuple& a, const Tuple& b) {
    return a.x != b.x ? a.x < b.x : a.y < b.y;
  }
};

/// Output pair of a join-project query Q(x, z).
struct OutPair {
  Value x = 0;
  Value z = 0;

  friend bool operator==(const OutPair& a, const OutPair& b) {
    return a.x == b.x && a.z == b.z;
  }
  friend bool operator<(const OutPair& a, const OutPair& b) {
    return a.x != b.x ? a.x < b.x : a.z < b.z;
  }
};

/// Output pair annotated with its witness count |{b : (x,b) in R, (z,b) in S}|.
/// The count is what ordered SSJ sorts by and what SCJ compares to |set|.
struct CountedPair {
  Value x = 0;
  Value z = 0;
  uint32_t count = 0;

  friend bool operator==(const CountedPair& a, const CountedPair& b) {
    return a.x == b.x && a.z == b.z && a.count == b.count;
  }
  friend bool operator<(const CountedPair& a, const CountedPair& b) {
    if (a.x != b.x) return a.x < b.x;
    if (a.z != b.z) return a.z < b.z;
    return a.count < b.count;
  }
};

/// Packs an output pair into one 64-bit key (for hash sets / sorting).
inline uint64_t PackPair(Value x, Value z) {
  return (static_cast<uint64_t>(x) << 32) | z;
}
inline OutPair UnpackPair(uint64_t key) {
  return OutPair{static_cast<Value>(key >> 32),
                 static_cast<Value>(key & 0xffffffffu)};
}

}  // namespace jpmm

#endif  // JPMM_COMMON_TYPES_H_
