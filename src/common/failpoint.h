// FailPoint — deterministic fault injection for robustness tests.
//
// A fail point is a named site in production code (e.g. "csr.build") that
// tests can arm to throw or sleep with a given probability. Sites are
// zero-cost when nothing is armed: the JPMM_FAIL_POINT macro guards the
// registry lookup behind one relaxed atomic load.
//
// Activation:
//   - programmatic: FailPoints::Activate("csr.build", Action::kThrow, 0.01);
//   - environment:  JPMM_FAILPOINTS="csr.build=throw:0.01;pool.dispatch=sleep:1.0:5"
//     parsed once at startup (format site=action:probability[:sleep_ms]).
//
// Randomness is reproducible: each (site, thread) pair draws from a
// deterministic stream seeded by JPMM_FAILPOINT_SEED (default 1), so a
// failing run can be replayed by exporting the same seed.
//
// Armed sites count their triggers (FailPoints::TriggerCount) so tests can
// assert a fault actually fired. Thrown faults are FailPointError, a
// std::runtime_error subclass, and propagate through the thread pool's
// per-group exception capture like any task exception.

#ifndef JPMM_COMMON_FAILPOINT_H_
#define JPMM_COMMON_FAILPOINT_H_

#include <cstdint>
#include <stdexcept>
#include <string>

namespace jpmm {

/// The exception thrown by an armed kThrow fail point.
class FailPointError : public std::runtime_error {
 public:
  explicit FailPointError(const std::string& site)
      : std::runtime_error("failpoint fired: " + site), site_(site) {}
  const std::string& site() const { return site_; }

 private:
  std::string site_;
};

class FailPoints {
 public:
  enum class Action : uint8_t {
    kThrow,  // throw FailPointError(site)
    kSleep,  // sleep sleep_ms, then continue
  };

  /// Arms `site` to perform `action` with the given probability (clamped
  /// to [0, 1]). Replaces any previous activation of the site.
  static void Activate(const std::string& site, Action action,
                       double probability, int sleep_ms = 1);

  /// Disarms `site`. No-op if it was not armed.
  static void Deactivate(const std::string& site);

  /// Disarms every site and resets all trigger counts.
  static void DeactivateAll();

  /// How many times the armed site actually fired (threw or slept).
  static uint64_t TriggerCount(const std::string& site);

  /// True when at least one site is armed (the macro fast-path guard).
  static bool AnyActive();

  /// Evaluates the site: throws / sleeps when armed and the draw hits.
  /// Called via JPMM_FAIL_POINT, not directly.
  static void Evaluate(const char* site);
};

}  // namespace jpmm

/// Drop-in site marker. Zero-cost (one relaxed atomic load) unless some
/// fail point is armed.
#define JPMM_FAIL_POINT(site)                                    \
  do {                                                           \
    if (::jpmm::FailPoints::AnyActive()) {                       \
      ::jpmm::FailPoints::Evaluate(site);                        \
    }                                                            \
  } while (0)

#endif  // JPMM_COMMON_FAILPOINT_H_
