#include "common/cpu_features.h"

#include <atomic>
#include <cstdlib>
#include <mutex>

#include "common/metrics.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <cpuid.h>
#include <immintrin.h>
#define JPMM_X86_64 1
#endif

namespace jpmm {
namespace {

// Override encoding in one atomic int: -1 = no override, else the
// KernelIsa value. Lets ScopedIsaOverride snapshot/restore the full state.
constexpr int kNoOverride = -1;
std::atomic<int> g_override{kNoOverride};

struct Detected {
  KernelIsa best = KernelIsa::kPortable;
  bool vpopcntdq = false;
};

#ifdef JPMM_X86_64
// The _xgetbv intrinsic requires compiling the TU with -mxsave, but this
// file must build under the baseline (JPMM_NATIVE=OFF) flags — detection
// runs before we know anything about the host. The instruction itself is
// safe to execute whenever CPUID reports OSXSAVE, so issue it directly.
unsigned long long ReadXcr0() {
#if defined(_MSC_VER)
  return _xgetbv(0);
#else
  unsigned int lo = 0, hi = 0;
  __asm__ volatile("xgetbv" : "=a"(lo), "=d"(hi) : "c"(0u));
  return (static_cast<unsigned long long>(hi) << 32) | lo;
#endif
}
#endif  // JPMM_X86_64

Detected DetectOnce() {
  Detected d;
#ifdef JPMM_X86_64
  unsigned int eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return d;
  const bool osxsave = (ecx >> 27) & 1;
  const bool avx = (ecx >> 28) & 1;
  const bool fma = (ecx >> 12) & 1;
  if (!osxsave || !avx) return d;
  // xgetbv: the OS must have enabled xmm+ymm state saving (bits 1|2), and
  // for AVX-512 additionally the opmask + zmm state (bits 5|6|7).
  const unsigned long long xcr0 = ReadXcr0();
  const bool ymm_enabled = (xcr0 & 0x6) == 0x6;
  const bool zmm_enabled = (xcr0 & 0xE6) == 0xE6;
  if (!ymm_enabled) return d;

  unsigned int eax7 = 0, ebx7 = 0, ecx7 = 0, edx7 = 0;
  if (!__get_cpuid_count(7, 0, &eax7, &ebx7, &ecx7, &edx7)) return d;
  const bool avx2 = (ebx7 >> 5) & 1;
  if (avx2 && fma) d.best = KernelIsa::kAvx2;

  const bool avx512f = (ebx7 >> 16) & 1;
  const bool avx512dq = (ebx7 >> 17) & 1;
  const bool avx512cd = (ebx7 >> 28) & 1;
  const bool avx512bw = (ebx7 >> 30) & 1;
  const bool avx512vl = (ebx7 >> 31) & 1;
  if (zmm_enabled && avx512f && avx512dq && avx512cd && avx512bw &&
      avx512vl && d.best == KernelIsa::kAvx2) {
    d.best = KernelIsa::kAvx512;
    d.vpopcntdq = (ecx7 >> 14) & 1;
  }
#endif
  return d;
}

const Detected& Detection() {
  static const Detected d = DetectOnce();
  return d;
}

KernelIsa ClampToHost(KernelIsa isa) {
  const KernelIsa best = Detection().best;
  return static_cast<int>(isa) <= static_cast<int>(best) ? isa : best;
}

void PublishIsaGauge(KernelIsa isa) {
  static Gauge& gauge = MetricsRegistry::Global().GetGauge("jpmm_isa");
  gauge.Set(static_cast<int64_t>(isa));
}

// Reads JPMM_ISA exactly once, installing it as the initial override if it
// parses. An unparseable value is ignored (the CLI rejects bad --isa values
// loudly; env typos fall back to detection rather than aborting a server).
void InitFromEnvOnce() {
  static std::once_flag flag;
  std::call_once(flag, [] {
    const char* v = std::getenv("JPMM_ISA");
    if (v == nullptr || *v == '\0') return;
    KernelIsa isa;
    if (ParseKernelIsa(v, &isa)) {
      g_override.store(static_cast<int>(isa), std::memory_order_relaxed);
    }
  });
}

}  // namespace

const char* KernelIsaName(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kPortable:
      return "portable";
    case KernelIsa::kAvx2:
      return "avx2";
    case KernelIsa::kAvx512:
      return "avx512";
  }
  return "portable";
}

bool ParseKernelIsa(const std::string& s, KernelIsa* out) {
  if (s == "portable") {
    *out = KernelIsa::kPortable;
    return true;
  }
  if (s == "avx2") {
    *out = KernelIsa::kAvx2;
    return true;
  }
  if (s == "avx512") {
    *out = KernelIsa::kAvx512;
    return true;
  }
  return false;
}

KernelIsa DetectBestIsa() { return Detection().best; }

bool IsaSupported(KernelIsa isa) {
  return static_cast<int>(isa) <= static_cast<int>(Detection().best);
}

bool HasAvx512Vpopcntdq() { return Detection().vpopcntdq; }

KernelIsa ActiveIsa() {
  InitFromEnvOnce();
  const int ov = g_override.load(std::memory_order_relaxed);
  const KernelIsa isa =
      ov == kNoOverride ? Detection().best
                        : ClampToHost(static_cast<KernelIsa>(ov));
  PublishIsaGauge(isa);
  return isa;
}

void SetKernelIsaOverride(KernelIsa isa) {
  InitFromEnvOnce();
  g_override.store(static_cast<int>(isa), std::memory_order_relaxed);
  PublishIsaGauge(ClampToHost(isa));
}

void ClearKernelIsaOverride() {
  InitFromEnvOnce();
  g_override.store(kNoOverride, std::memory_order_relaxed);
  PublishIsaGauge(Detection().best);
}

ScopedIsaOverride::ScopedIsaOverride(KernelIsa isa) {
  InitFromEnvOnce();
  prev_ = g_override.load(std::memory_order_relaxed);
  SetKernelIsaOverride(isa);
}

ScopedIsaOverride::~ScopedIsaOverride() {
  if (prev_ == kNoOverride) {
    ClearKernelIsaOverride();
  } else {
    SetKernelIsaOverride(static_cast<KernelIsa>(prev_));
  }
}

}  // namespace jpmm
