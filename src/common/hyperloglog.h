// HyperLogLog distinct-count sketch.
//
// §9 of the paper proposes replacing the coarse |OUT| bounds of §5 with
// set-union sketches "such as KMV and HyperLogLog"; core/sketch_estimator.h
// builds that estimator on this sketch. Standard HLL with the alpha_m bias
// constant and linear-counting small-range correction.

#ifndef JPMM_COMMON_HYPERLOGLOG_H_
#define JPMM_COMMON_HYPERLOGLOG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace jpmm {

/// HyperLogLog with 2^precision registers (precision in [4, 16]).
class HyperLogLog {
 public:
  explicit HyperLogLog(int precision = 9);

  /// Inserts a pre-hashed 64-bit value (use Mix64 for raw ids).
  void Add(uint64_t hash);

  /// Union with another sketch of equal precision.
  void Merge(const HyperLogLog& other);

  /// Estimated number of distinct insertions.
  double Estimate() const;

  /// Zeroes all registers.
  void Reset();

  int precision() const { return precision_; }
  size_t num_registers() const { return registers_.size(); }

 private:
  int precision_;
  std::vector<uint8_t> registers_;
};

}  // namespace jpmm

#endif  // JPMM_COMMON_HYPERLOGLOG_H_
