// Wall-clock timer used by benchmarks and the cost-model calibration.

#ifndef JPMM_COMMON_TIMER_H_
#define JPMM_COMMON_TIMER_H_

#include <chrono>

namespace jpmm {

/// Monotonic wall-clock stopwatch. Starts running on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace jpmm

#endif  // JPMM_COMMON_TIMER_H_
