#include "common/failpoint.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <unordered_map>

#include "common/metrics.h"
#include "common/rng.h"

namespace jpmm {
namespace {

// Fault-injection observability: how many sites are currently armed, and
// how many times any site actually fired. Cached refs — registry lookup is
// a lock.
Gauge& ArmedGauge() {
  static Gauge& g = MetricsRegistry::Global().GetGauge("jpmm_failpoint_armed");
  return g;
}
Counter& TripsCounter() {
  static Counter& c =
      MetricsRegistry::Global().GetCounter("jpmm_failpoint_trips_total");
  return c;
}

struct Site {
  FailPoints::Action action = FailPoints::Action::kThrow;
  double probability = 0.0;
  int sleep_ms = 1;
  std::atomic<uint64_t> triggers{0};
};

// Registry: name -> armed site. Guarded by a reader-writer lock; the macro
// only reaches Evaluate when active_count_ > 0, so unarmed runs never take
// the lock.
class Registry {
 public:
  static Registry& Instance() {
    static Registry* r = new Registry();  // leaked: usable during shutdown
    return *r;
  }

  void Activate(const std::string& site, FailPoints::Action action,
                double probability, int sleep_ms) {
    if (probability < 0.0) probability = 0.0;
    if (probability > 1.0) probability = 1.0;
    std::unique_lock lock(mu_);
    auto& slot = sites_[site];
    if (slot == nullptr) slot = std::make_unique<Site>();
    slot->action = action;
    slot->probability = probability;
    slot->sleep_ms = sleep_ms;
    slot->triggers.store(0, std::memory_order_relaxed);
    active_.store(sites_.size(), std::memory_order_release);
    ArmedGauge().Set(static_cast<int64_t>(sites_.size()));
  }

  void Deactivate(const std::string& site) {
    std::unique_lock lock(mu_);
    sites_.erase(site);
    active_.store(sites_.size(), std::memory_order_release);
    ArmedGauge().Set(static_cast<int64_t>(sites_.size()));
  }

  void DeactivateAll() {
    std::unique_lock lock(mu_);
    sites_.clear();
    active_.store(0, std::memory_order_release);
    ArmedGauge().Set(0);
  }

  uint64_t TriggerCount(const std::string& site) {
    std::shared_lock lock(mu_);
    auto it = sites_.find(site);
    return it == sites_.end()
               ? 0
               : it->second->triggers.load(std::memory_order_relaxed);
  }

  bool AnyActive() const {
    return active_.load(std::memory_order_acquire) > 0;
  }

  void Evaluate(const char* site_name) {
    FailPoints::Action action;
    double probability;
    int sleep_ms;
    Site* site;
    {
      std::shared_lock lock(mu_);
      auto it = sites_.find(site_name);
      if (it == sites_.end()) return;
      site = it->second.get();
      action = site->action;
      probability = site->probability;
      sleep_ms = site->sleep_ms;
    }
    // NOTE: `site` stays valid after unlock only because Deactivate erases
    // under the unique lock — a concurrent Deactivate during Evaluate is a
    // test-harness bug (tests disarm only between runs).
    if (probability < 1.0 && !ThreadRng().NextBool(probability)) return;
    site->triggers.fetch_add(1, std::memory_order_relaxed);
    TripsCounter().Add();
    if (action == FailPoints::Action::kSleep) {
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
      return;
    }
    throw FailPointError(site_name);
  }

 private:
  Registry() { ParseEnv(); }

  // Per-thread deterministic stream: seed ^ thread ordinal. Reproducible
  // under JPMM_FAILPOINT_SEED as long as the thread structure is stable.
  Rng& ThreadRng() {
    thread_local Rng rng(seed_ ^
                         (0x9e3779b97f4a7c15ULL *
                          (next_thread_.fetch_add(1, std::memory_order_relaxed) +
                           1)));
    return rng;
  }

  // JPMM_FAILPOINTS="site=throw:0.01;other=sleep:1.0:5"
  void ParseEnv() {
    if (const char* s = std::getenv("JPMM_FAILPOINT_SEED")) {
      seed_ = std::strtoull(s, nullptr, 10);
      if (seed_ == 0) seed_ = 1;
    }
    const char* spec = std::getenv("JPMM_FAILPOINTS");
    if (spec == nullptr) return;
    std::string all(spec);
    size_t pos = 0;
    while (pos < all.size()) {
      size_t end = all.find(';', pos);
      if (end == std::string::npos) end = all.size();
      std::string item = all.substr(pos, end - pos);
      pos = end + 1;
      size_t eq = item.find('=');
      if (eq == std::string::npos) continue;
      std::string site = item.substr(0, eq);
      std::string rest = item.substr(eq + 1);
      size_t c1 = rest.find(':');
      if (c1 == std::string::npos) continue;
      std::string action_s = rest.substr(0, c1);
      std::string prob_s = rest.substr(c1 + 1);
      int sleep_ms = 1;
      size_t c2 = prob_s.find(':');
      if (c2 != std::string::npos) {
        sleep_ms = std::atoi(prob_s.substr(c2 + 1).c_str());
        prob_s = prob_s.substr(0, c2);
      }
      FailPoints::Action action = action_s == "sleep"
                                      ? FailPoints::Action::kSleep
                                      : FailPoints::Action::kThrow;
      Activate(site, action, std::atof(prob_s.c_str()), sleep_ms);
    }
  }

  mutable std::shared_mutex mu_;
  std::unordered_map<std::string, std::unique_ptr<Site>> sites_;
  std::atomic<size_t> active_{0};
  uint64_t seed_ = 1;
  std::atomic<uint64_t> next_thread_{0};
};

}  // namespace

void FailPoints::Activate(const std::string& site, Action action,
                          double probability, int sleep_ms) {
  Registry::Instance().Activate(site, action, probability, sleep_ms);
}

void FailPoints::Deactivate(const std::string& site) {
  Registry::Instance().Deactivate(site);
}

void FailPoints::DeactivateAll() { Registry::Instance().DeactivateAll(); }

uint64_t FailPoints::TriggerCount(const std::string& site) {
  return Registry::Instance().TriggerCount(site);
}

bool FailPoints::AnyActive() { return Registry::Instance().AnyActive(); }

void FailPoints::Evaluate(const char* site) {
  Registry::Instance().Evaluate(site);
}

}  // namespace jpmm
