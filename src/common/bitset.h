// Dynamic bitset tuned for adjacency-row operations.
//
// Used by the boolean-matrix substrate (matrix/bool_matrix.h) and by the
// combinatorial heavy-part verifier: intersection tests between heavy
// adjacency rows reduce to word-wise AND with early exit.

#ifndef JPMM_COMMON_BITSET_H_
#define JPMM_COMMON_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace jpmm {

/// Fixed-width bitset sized at construction.
class DynamicBitset {
 public:
  DynamicBitset() = default;

  /// All bits cleared.
  explicit DynamicBitset(size_t bits);

  size_t size() const { return bits_; }
  size_t num_words() const { return words_.size(); }

  void Set(size_t i);
  void Clear(size_t i);
  bool Test(size_t i) const;

  /// Sets every bit to zero.
  void Reset();

  /// Number of set bits.
  size_t Count() const;

  /// True iff this and other share at least one set bit (early exit).
  bool Intersects(const DynamicBitset& other) const;

  /// |this AND other|.
  size_t AndCount(const DynamicBitset& other) const;

  /// this |= other.
  void OrWith(const DynamicBitset& other);

  /// Appends the indexes of all set bits to out.
  void AppendSetBits(std::vector<uint32_t>* out) const;

  const uint64_t* words() const { return words_.data(); }
  uint64_t* mutable_words() { return words_.data(); }

 private:
  size_t bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace jpmm

#endif  // JPMM_COMMON_BITSET_H_
