#include "common/bitset.h"

#include <algorithm>
#include <bit>

#include "common/check.h"

namespace jpmm {

DynamicBitset::DynamicBitset(size_t bits)
    : bits_(bits), words_((bits + 63) / 64, 0) {}

void DynamicBitset::Set(size_t i) {
  JPMM_DCHECK(i < bits_);
  words_[i >> 6] |= (uint64_t{1} << (i & 63));
}

void DynamicBitset::Clear(size_t i) {
  JPMM_DCHECK(i < bits_);
  words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
}

bool DynamicBitset::Test(size_t i) const {
  JPMM_DCHECK(i < bits_);
  return (words_[i >> 6] >> (i & 63)) & 1;
}

void DynamicBitset::Reset() { std::fill(words_.begin(), words_.end(), 0); }

size_t DynamicBitset::Count() const {
  size_t c = 0;
  for (uint64_t w : words_) c += static_cast<size_t>(std::popcount(w));
  return c;
}

bool DynamicBitset::Intersects(const DynamicBitset& other) const {
  const size_t n = std::min(words_.size(), other.words_.size());
  for (size_t i = 0; i < n; ++i) {
    if (words_[i] & other.words_[i]) return true;
  }
  return false;
}

size_t DynamicBitset::AndCount(const DynamicBitset& other) const {
  const size_t n = std::min(words_.size(), other.words_.size());
  size_t c = 0;
  for (size_t i = 0; i < n; ++i) {
    c += static_cast<size_t>(std::popcount(words_[i] & other.words_[i]));
  }
  return c;
}

void DynamicBitset::OrWith(const DynamicBitset& other) {
  JPMM_CHECK(bits_ == other.bits_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
}

void DynamicBitset::AppendSetBits(std::vector<uint32_t>* out) const {
  for (size_t wi = 0; wi < words_.size(); ++wi) {
    uint64_t w = words_[wi];
    while (w != 0) {
      const int bit = std::countr_zero(w);
      out->push_back(static_cast<uint32_t>((wi << 6) + bit));
      w &= w - 1;
    }
  }
}

}  // namespace jpmm
