// Lightweight runtime assertion macros.
//
// JPMM_CHECK is always on (cheap invariants on public API boundaries);
// JPMM_DCHECK compiles away in release builds (hot-loop invariants).

#ifndef JPMM_COMMON_CHECK_H_
#define JPMM_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define JPMM_CHECK(cond)                                                   \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "JPMM_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, #cond);                                       \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define JPMM_CHECK_MSG(cond, msg)                                          \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "JPMM_CHECK failed at %s:%d: %s (%s)\n",        \
                   __FILE__, __LINE__, #cond, msg);                        \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#ifdef NDEBUG
#define JPMM_DCHECK(cond) ((void)0)
#else
#define JPMM_DCHECK(cond) JPMM_CHECK(cond)
#endif

#endif  // JPMM_COMMON_CHECK_H_
