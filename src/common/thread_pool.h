// Persistent worker pool with blocking ParallelFor / ParallelForDynamic.
//
// The paper's framework obtains "coordination-free" parallelism by
// partitioning matrix rows / x-values across workers (Section 6). Every
// parallel algorithm in jpmm takes an explicit thread count and routes its
// partitioned work through ParallelFor, so single-threaded runs execute the
// exact same code path inline.
//
// ParallelFor used to spawn fresh std::threads per call; a single
// MmJoinTwoPath query makes four ParallelFor rounds, so the spawn/join cost
// was paid four times per query. Both entry points now run on one
// lazily-initialized process-wide ThreadPool that grows to the largest
// thread count ever requested and is reused for the life of the process.
// The calling thread always executes chunk 0 itself, so a request for T
// threads needs only T-1 pool workers and the caller is never idle.

#ifndef JPMM_COMMON_THREAD_POOL_H_
#define JPMM_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace jpmm {

/// Worker pool. Submit() enqueues a task; WaitIdle() blocks until every
/// submitted task has finished and rethrows the first exception any task
/// threw since the last WaitIdle(). The pool can grow (EnsureWorkers) but
/// never shrinks; workers exit only at destruction.
class ThreadPool {
 public:
  /// Spawns `threads` workers (>= 0; a zero-size pool is legal and grows on
  /// demand).
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution. A task that throws does NOT
  /// leak the in-flight count (the decrement is scope-guarded): the first
  /// exception is captured and rethrown by the next WaitIdle(), and the pool
  /// stays usable.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is drained and all workers are idle, then
  /// rethrows the first captured task exception, if any.
  void WaitIdle();

  /// Grows the pool to at least `threads` workers.
  void EnsureWorkers(int threads);

  int num_threads() const;

  /// The process-wide pool ParallelFor runs on. Lazily constructed empty;
  /// grown on demand.
  static ThreadPool& Global();

  /// Total std::threads ever spawned by all ThreadPool instances in this
  /// process. A reuse test asserts this stays flat across repeated
  /// ParallelFor calls — the regression guard against per-call spawning.
  static size_t TotalThreadsSpawned();

  /// True on a thread currently executing a pool task. Nested ParallelFor
  /// calls detect this and run inline instead of re-entering the pool.
  static bool OnPoolThread();

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::condition_variable work_cv_;   // signals workers
  std::condition_variable idle_cv_;   // signals WaitIdle
  std::exception_ptr first_error_;    // first uncaught task exception
  size_t in_flight_ = 0;              // queued + running tasks
  bool stop_ = false;
};

/// Splits [0, n) into contiguous chunks and runs
/// `fn(begin, end, worker_index)` on each, using `threads` workers.
///
/// threads <= 1 runs inline on the calling thread (no pool, no locks), so
/// the sequential path is identical modulo partitioning. Calls from inside a
/// pool task also run inline (single chunk, worker 0) — nesting cannot
/// deadlock. Blocks until done; the first exception thrown by `fn` is
/// rethrown on the calling thread.
///
/// Worker indices are chunk indices in [0, min(threads, n)): each index is
/// passed to exactly one fn invocation, so per-worker state arrays sized by
/// `threads` need no synchronization.
void ParallelFor(int threads, size_t n,
                 const std::function<void(size_t, size_t, int)>& fn);

/// Skew-tolerant variant: workers claim `grain`-sized chunks of [0, n) from
/// a shared atomic counter until the range is exhausted, so a worker that
/// lands on expensive indices (zipf-heavy x values, early-exit-resistant
/// rows) simply claims fewer chunks. fn(begin, end, worker_index) may be
/// invoked MANY times per worker index with disjoint ranges — accumulate,
/// don't assign, into per-worker slots. Chunk-to-worker assignment is
/// nondeterministic; aggregate results are not.
///
/// The inline path (threads <= 1, nested calls) claims the same
/// grain-sized chunks in order, so per-chunk checks — e.g. polling a
/// ResultSink's done() to skip the remaining range — behave identically
/// at every thread count. Exception behavior matches ParallelFor.
void ParallelForDynamic(int threads, size_t n, size_t grain,
                        const std::function<void(size_t, size_t, int)>& fn);

/// Hardware concurrency, at least 1.
int HardwareThreads();

}  // namespace jpmm

#endif  // JPMM_COMMON_THREAD_POOL_H_
