// Minimal thread pool with a blocking ParallelFor.
//
// The paper's framework obtains "coordination-free" parallelism by
// partitioning matrix rows / x-values across workers (Section 6). Every
// parallel algorithm in jpmm takes an explicit thread count and routes its
// partitioned work through ParallelFor, so single-threaded runs execute the
// exact same code path inline.

#ifndef JPMM_COMMON_THREAD_POOL_H_
#define JPMM_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace jpmm {

/// Fixed-size worker pool. Submit() enqueues a task; WaitIdle() blocks until
/// every submitted task has finished.
class ThreadPool {
 public:
  /// Spawns `threads` workers (>= 1).
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is drained and all workers are idle.
  void WaitIdle();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;   // signals workers
  std::condition_variable idle_cv_;   // signals WaitIdle
  size_t in_flight_ = 0;              // queued + running tasks
  bool stop_ = false;
};

/// Splits [0, n) into contiguous chunks and runs
/// `fn(begin, end, worker_index)` on each, using `threads` workers.
///
/// threads <= 1 runs inline on the calling thread (no pool, no locks), so the
/// sequential path is identical modulo partitioning. Blocks until done.
void ParallelFor(int threads, size_t n,
                 const std::function<void(size_t, size_t, int)>& fn);

/// Hardware concurrency, at least 1.
int HardwareThreads();

}  // namespace jpmm

#endif  // JPMM_COMMON_THREAD_POOL_H_
