#include "common/metrics.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <sstream>

#include "common/check.h"

namespace jpmm {
namespace {

bool EnabledFromEnv() {
  const char* v = std::getenv("JPMM_METRICS");
  if (v == nullptr) return true;
  return !(std::strcmp(v, "off") == 0 || std::strcmp(v, "0") == 0 ||
           std::strcmp(v, "false") == 0);
}

std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> enabled{EnabledFromEnv()};
  return enabled;
}

// Stable per-thread shard index. One global assignment counter is enough:
// all that matters is that concurrent recorders usually land on different
// shards, and that one thread always lands on the same shard.
int ShardIndex() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t idx = next.fetch_add(1, std::memory_order_relaxed);
  return static_cast<int>(idx % Histogram::kShards);
}

void AtomicAddDouble(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

// Compact decimal formatting for bucket bounds and JSON values: no
// trailing zeros, no locale dependence.
std::string FormatDouble(double v) {
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

}  // namespace

bool MetricsEnabled() {
  return EnabledFlag().load(std::memory_order_relaxed);
}

void SetMetricsEnabled(bool enabled) {
  EnabledFlag().store(enabled, std::memory_order_relaxed);
}

double HistogramSnapshot::Percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::min(100.0, std::max(0.0, p));
  // Rank of the target observation, 1-based; interpolate within the bucket
  // that contains it, assuming uniform spread between the bucket's bounds.
  const double rank = p / 100.0 * static_cast<double>(count);
  uint64_t cum = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    const uint64_t prev = cum;
    cum += counts[i];
    if (static_cast<double>(cum) >= rank && counts[i] > 0) {
      if (i >= bounds.size()) return bounds.empty() ? 0.0 : bounds.back();
      const double lo = i == 0 ? 0.0 : bounds[i - 1];
      const double hi = bounds[i];
      const double frac =
          (rank - static_cast<double>(prev)) / static_cast<double>(counts[i]);
      return lo + (hi - lo) * std::min(1.0, std::max(0.0, frac));
    }
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

Histogram::Histogram(std::vector<double> bounds, bool gated)
    : bounds_(std::move(bounds)), gated_(gated) {
  JPMM_CHECK(!bounds_.empty());
  for (size_t i = 1; i < bounds_.size(); ++i) {
    JPMM_CHECK(bounds_[i] > bounds_[i - 1]);
  }
  // Round the per-shard row up to a whole cache line of u64s so shards
  // never share a line.
  const size_t row = bounds_.size() + 1;
  stride_ = (row + 7) / 8 * 8;
  buckets_ = std::vector<std::atomic<uint64_t>>(kShards * stride_);
  sums_ = std::vector<ShardSum>(kShards);
}

void Histogram::Record(double value) {
  if (gated_ && !MetricsEnabled()) return;
  const size_t shard = static_cast<size_t>(ShardIndex());
  const size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) - bounds_.begin();
  buckets_[shard * stride_ + bucket].fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(sums_[shard].sum, value);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts.assign(bounds_.size() + 1, 0);
  for (int s = 0; s < kShards; ++s) {
    for (size_t b = 0; b < snap.counts.size(); ++b) {
      snap.counts[b] += buckets_[s * stride_ + b].load(std::memory_order_relaxed);
    }
    snap.sum += sums_[s].sum.load(std::memory_order_relaxed);
  }
  for (uint64_t c : snap.counts) snap.count += c;
  return snap;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  for (auto& s : sums_) s.sum.store(0.0, std::memory_order_relaxed);
}

std::vector<double> ExponentialBounds(double first, double factor, int count) {
  JPMM_CHECK(first > 0 && factor > 1 && count > 0);
  std::vector<double> bounds;
  bounds.reserve(count);
  double v = first;
  for (int i = 0; i < count; ++i, v *= factor) bounds.push_back(v);
  return bounds;
}

const std::vector<double>& DefaultLatencyBoundsMs() {
  static const std::vector<double> bounds = ExponentialBounds(0.01, 2.0, 24);
  return bounds;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = counters_.find(name);
    if (it != counters_.end()) return *it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>(/*gated=*/true);
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = gauges_.find(name);
    if (it != gauges_.end()) return *it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>(/*gated=*/true);
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::vector<double>& bounds) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = histograms_.find(name);
    if (it != histograms_.end()) return *it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(bounds, /*gated=*/true);
  return *slot;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::shared_lock<std::shared_mutex> lock(mu_);
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) snap.histograms[name] = h->Snapshot();
  return snap;
}

std::string MetricsRegistry::PrometheusText() const {
  const MetricsSnapshot snap = Snapshot();
  std::ostringstream os;
  for (const auto& [name, v] : snap.counters) {
    os << "# TYPE " << name << " counter\n" << name << " " << v << "\n";
  }
  for (const auto& [name, v] : snap.gauges) {
    os << "# TYPE " << name << " gauge\n" << name << " " << v << "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    os << "# TYPE " << name << " histogram\n";
    uint64_t cum = 0;
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      cum += h.counts[i];
      os << name << "_bucket{le=\"" << FormatDouble(h.bounds[i]) << "\"} "
         << cum << "\n";
    }
    cum += h.counts.back();
    os << name << "_bucket{le=\"+Inf\"} " << cum << "\n";
    os << name << "_sum " << FormatDouble(h.sum) << "\n";
    os << name << "_count " << h.count << "\n";
  }
  return os.str();
}

std::string MetricsRegistry::JsonText() const {
  const MetricsSnapshot snap = Snapshot();
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : snap.counters) {
    os << (first ? "" : ",") << "\n    \"" << name << "\": " << v;
    first = false;
  }
  os << "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : snap.gauges) {
    os << (first ? "" : ",") << "\n    \"" << name << "\": " << v;
    first = false;
  }
  os << "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    os << (first ? "" : ",") << "\n    \"" << name << "\": {\"bounds\": [";
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      os << (i ? ", " : "") << FormatDouble(h.bounds[i]);
    }
    os << "], \"counts\": [";
    for (size_t i = 0; i < h.counts.size(); ++i) {
      os << (i ? ", " : "") << h.counts[i];
    }
    os << "], \"sum\": " << FormatDouble(h.sum) << ", \"count\": " << h.count
       << "}";
    first = false;
  }
  os << "\n  }\n}\n";
  return os.str();
}

void MetricsRegistry::ResetForTest() {
  std::shared_lock<std::shared_mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace jpmm
