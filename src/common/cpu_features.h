// Runtime ISA detection and kernel-dispatch selection.
//
// The hot kernels (matrix/matmul, bool_matrix, sparse_matrix) each carry
// explicit SIMD variants compiled into per-ISA translation units with
// per-file -m flags, so ONE binary holds every path regardless of
// -march flags (JPMM_NATIVE on or off). Which variant runs is decided at
// runtime from CPUID — never from compile-time macros — through this
// module:
//
//   DetectBestIsa()   what the hardware + OS actually support (cached;
//                     AVX-512 requires the OS to have enabled zmm state,
//                     checked via xgetbv, not just the CPUID feature bits)
//   ActiveIsa()       the level kernels dispatch on: the JPMM_ISA override
//                     (env or SetKernelIsaOverride) clamped to what the
//                     host supports, else DetectBestIsa()
//
// Selection order: SetKernelIsaOverride (CLI --isa / tests) > JPMM_ISA
// env > CPUID. Overrides above the host's capability clamp DOWN to the
// detected level — forcing avx512 on an SSE-only box must degrade safely,
// not fault. Calibration (matrix/calibration.h) keys its measured kernel
// rates by ActiveIsa(), so an override re-measures instead of reusing
// anchors measured under a different instruction set.
//
// The selected level is exported as the `jpmm_isa` gauge (0 portable,
// 1 avx2, 2 avx512) and surfaced by jpmm_cli --explain.

#ifndef JPMM_COMMON_CPU_FEATURES_H_
#define JPMM_COMMON_CPU_FEATURES_H_

#include <string>

namespace jpmm {

/// Kernel dispatch levels, ordered: a level implies every lower one.
enum class KernelIsa {
  kPortable = 0,  // the auto-vectorized C++ kernels (always available)
  kAvx2 = 1,      // AVX2 + FMA
  kAvx512 = 2,    // AVX-512 F/BW/DQ/VL/CD (+ VPOPCNTDQ when present)
};

/// "portable" / "avx2" / "avx512".
const char* KernelIsaName(KernelIsa isa);

/// Parses a KernelIsaName string (case-sensitive). Returns false on
/// anything else; *out is untouched.
bool ParseKernelIsa(const std::string& s, KernelIsa* out);

/// Best level the hardware AND the OS support, detected once via CPUID +
/// xgetbv and cached. kPortable on non-x86 builds.
KernelIsa DetectBestIsa();

/// True iff `isa` can run on this host (portable always can).
bool IsaSupported(KernelIsa isa);

/// True iff the host supports AVX-512 VPOPCNTDQ (the CountProduct word
/// path). Detected alongside DetectBestIsa; only meaningful when
/// DetectBestIsa() >= kAvx512.
bool HasAvx512Vpopcntdq();

/// The level every kernel dispatches on: override (clamped to the host's
/// capability) if one is set, else DetectBestIsa(). The JPMM_ISA
/// environment variable is read once, on first call. Cheap (one relaxed
/// atomic load after initialization) — kernels call it once per
/// row-range / product invocation.
KernelIsa ActiveIsa();

/// Sets (or with has_value=false clears) the process-wide override.
/// Unsupported levels are accepted but clamp to DetectBestIsa() at
/// ActiveIsa() time. Updates the jpmm_isa gauge.
void SetKernelIsaOverride(KernelIsa isa);
void ClearKernelIsaOverride();

/// RAII override for tests: forces `isa` for the scope, restores the
/// previous override (or no-override) on destruction.
class ScopedIsaOverride {
 public:
  explicit ScopedIsaOverride(KernelIsa isa);
  ~ScopedIsaOverride();
  ScopedIsaOverride(const ScopedIsaOverride&) = delete;
  ScopedIsaOverride& operator=(const ScopedIsaOverride&) = delete;

 private:
  int prev_;  // encoded override state at construction
};

}  // namespace jpmm

#endif  // JPMM_COMMON_CPU_FEATURES_H_
