// Aligned allocation for the big kernel slabs.
//
// The explicit SIMD kernels want their packed operands on vector-register
// and cache-line boundaries: a 64-byte base lets the AVX-512 micro-kernel
// use aligned 512-bit loads on packed B panels (panel offsets are kNR-float
// multiples, so every panel inherits the base alignment), and keeps the CSR
// index arrays and bit-matrix row words from straddling lines. std::vector's
// default allocator only guarantees alignof(std::max_align_t) (16 on glibc),
// so the slabs route through:
//
//   AlignedAllocator<T, Align>  - std-compatible allocator; AlignedVector
//       is the drop-in vector type the slab owners (PackedB, CsrMatrix,
//       BoolMatrix, pack scratch) use — full vector API, aligned base.
//   vmalloc<T, Align>(n, pattern) - RAII buffer for fixed-size scratch,
//       modeled on the SPP2377 vmalloc<T, align>(n, AccessPattern) idiom:
//       the access-pattern hint is advisory (LINEAR slabs above the
//       huge-page threshold request MADV_HUGEPAGE on Linux).
//
// Alignment must be a power of two and at least alignof(T). Allocation
// failures throw std::bad_alloc like the default allocator.

#ifndef JPMM_COMMON_ALIGNED_BUFFER_H_
#define JPMM_COMMON_ALIGNED_BUFFER_H_

#include <cstddef>
#include <new>
#include <utility>
#include <vector>

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace jpmm {

inline constexpr size_t kDefaultSlabAlign = 64;

/// Minimal std-allocator with a compile-time alignment guarantee.
template <typename T, size_t Align = kDefaultSlabAlign>
class AlignedAllocator {
 public:
  static_assert((Align & (Align - 1)) == 0, "alignment must be a power of 2");
  static_assert(Align >= alignof(T), "alignment below the type's own");

  using value_type = T;
  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) {}  // NOLINT

  T* allocate(size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Align}));
  }
  void deallocate(T* p, size_t n) {
    ::operator delete(p, n * sizeof(T), std::align_val_t{Align});
  }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
};

/// std::vector whose data() is Align-byte aligned.
template <typename T, size_t Align = kDefaultSlabAlign>
using AlignedVector = std::vector<T, AlignedAllocator<T, Align>>;

/// Advisory hint for how a slab will be walked.
enum class AccessPattern {
  kLinear,  // streamed: worth huge pages when big
  kRandom,  // pointer-chased / gathered: no paging hint
};

/// Fixed-size RAII slab: Align-byte base, value-initialized elements.
/// Movable, not copyable. For scratch that outlives no one (per-thread
/// packing buffers); growable slabs use AlignedVector instead.
template <typename T, size_t Align = kDefaultSlabAlign>
class AlignedBuf {
 public:
  AlignedBuf() = default;
  explicit AlignedBuf(size_t n, AccessPattern pattern = AccessPattern::kLinear)
      : size_(n) {
    if (n == 0) return;
    data_ = static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Align}));
    for (size_t i = 0; i < n; ++i) new (data_ + i) T();
#if defined(__linux__) && defined(MADV_HUGEPAGE)
    // Streamed slabs of 2 MiB+ benefit from fewer TLB walks; the kernel is
    // free to ignore the hint (and does on unaligned interior ranges).
    if (pattern == AccessPattern::kLinear && n * sizeof(T) >= (1u << 21)) {
      madvise(data_, n * sizeof(T), MADV_HUGEPAGE);
    }
#else
    (void)pattern;
#endif
  }
  ~AlignedBuf() { Reset(); }

  AlignedBuf(AlignedBuf&& o) noexcept : data_(o.data_), size_(o.size_) {
    o.data_ = nullptr;
    o.size_ = 0;
  }
  AlignedBuf& operator=(AlignedBuf&& o) noexcept {
    if (this != &o) {
      Reset();
      data_ = o.data_;
      size_ = o.size_;
      o.data_ = nullptr;
      o.size_ = 0;
    }
    return *this;
  }
  AlignedBuf(const AlignedBuf&) = delete;
  AlignedBuf& operator=(const AlignedBuf&) = delete;

  T* data() { return data_; }
  const T* data() const { return data_; }
  size_t size() const { return size_; }
  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }

 private:
  void Reset() {
    if (data_ == nullptr) return;
    for (size_t i = size_; i > 0; --i) data_[i - 1].~T();
    ::operator delete(data_, size_ * sizeof(T), std::align_val_t{Align});
    data_ = nullptr;
    size_ = 0;
  }

  T* data_ = nullptr;
  size_t size_ = 0;
};

/// The SPP2377-style spelling: vmalloc<float, 64>(n, AccessPattern::kLinear).
template <typename T, size_t Align = kDefaultSlabAlign>
AlignedBuf<T, Align> vmalloc(size_t n,
                             AccessPattern pattern = AccessPattern::kLinear) {
  return AlignedBuf<T, Align>(n, pattern);
}

}  // namespace jpmm

#endif  // JPMM_COMMON_ALIGNED_BUFFER_H_
