// SetFamily: the "family of sets" view used by SSJ, SCJ and BSI.
//
// A binary relation R(x, y) read as "set x contains element y" (§2.1). The
// family exposes per-set sorted element lists, per-element inverted lists,
// and the summary characteristics reported in Table 2.

#ifndef JPMM_STORAGE_SET_FAMILY_H_
#define JPMM_STORAGE_SET_FAMILY_H_

#include <span>
#include <string>
#include <vector>

#include "common/types.h"
#include "storage/index.h"

namespace jpmm {

/// Table-2 style summary of a set family.
struct SetFamilyStats {
  uint64_t num_tuples = 0;   // |R|
  uint64_t num_sets = 0;     // sets with >= 1 element
  uint64_t dom_size = 0;     // distinct elements
  double avg_set_size = 0.0;
  uint32_t min_set_size = 0;
  uint32_t max_set_size = 0;

  std::string ToString() const;
};

/// Read-only set-family view over an IndexedRelation.
///
/// Set ids are the x values of the underlying relation; element ids are the
/// y values. Sets not present in the relation have size 0.
class SetFamily {
 public:
  /// The view keeps a reference; `rel` must outlive the family.
  explicit SetFamily(const IndexedRelation& rel) : rel_(&rel) {}

  /// Number of set ids (including possibly-empty ones below num_x).
  Value num_set_ids() const { return rel_->num_x(); }

  /// Number of element ids.
  Value num_element_ids() const { return rel_->num_y(); }

  /// Sorted elements of set s.
  std::span<const Value> Elements(Value s) const { return rel_->YsOf(s); }

  /// Sorted inverted list of element e (ids of sets containing e).
  std::span<const Value> InvertedList(Value e) const { return rel_->XsOf(e); }

  uint32_t SetSize(Value s) const { return rel_->DegX(s); }
  uint32_t ListSize(Value e) const { return rel_->DegY(e); }

  /// True iff set s contains element e.
  bool Contains(Value s, Value e) const { return rel_->Contains(s, e); }

  /// Ids of non-empty sets.
  std::vector<Value> NonEmptySets() const;

  /// Summary characteristics (Table 2 columns).
  SetFamilyStats Stats() const;

  const IndexedRelation& relation() const { return *rel_; }

 private:
  const IndexedRelation* rel_;
};

}  // namespace jpmm

#endif  // JPMM_STORAGE_SET_FAMILY_H_
