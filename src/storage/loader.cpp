#include "storage/loader.h"

#include <cctype>
#include <charconv>
#include <fstream>
#include <sstream>

namespace jpmm {
namespace {

// Parses one line into (x, y). Returns false on malformed content.
bool ParseLine(std::string_view line, Value* x, Value* y) {
  size_t i = 0;
  auto skip_ws = [&] {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  };
  auto parse_value = [&](Value* out) {
    skip_ws();
    const char* begin = line.data() + i;
    const char* end = line.data() + line.size();
    auto [ptr, ec] = std::from_chars(begin, end, *out);
    if (ec != std::errc() || ptr == begin) return false;
    i = static_cast<size_t>(ptr - line.data());
    return true;
  };
  if (!parse_value(x)) return false;
  if (!parse_value(y)) return false;
  skip_ws();
  return i == line.size() || line[i] == '\r';
}

std::optional<BinaryRelation> ParseStream(std::istream& in,
                                          std::string* error) {
  BinaryRelation rel;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    // Treat whitespace-only lines as blank.
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    Value x = 0, y = 0;
    if (!ParseLine(line, &x, &y)) {
      if (error != nullptr) {
        *error = "malformed edge at line " + std::to_string(line_no) + ": '" +
                 line + "'";
      }
      return std::nullopt;
    }
    rel.Add(x, y);
  }
  rel.Finalize();
  return rel;
}

}  // namespace

std::optional<BinaryRelation> LoadEdgeList(const std::string& path,
                                           std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open '" + path + "'";
    return std::nullopt;
  }
  return ParseStream(in, error);
}

std::optional<BinaryRelation> ParseEdgeList(const std::string& text,
                                            std::string* error) {
  std::istringstream in(text);
  return ParseStream(in, error);
}

bool SaveEdgeList(const BinaryRelation& rel, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  for (const Tuple& t : rel.tuples()) out << t.x << ' ' << t.y << '\n';
  return static_cast<bool>(out);
}

}  // namespace jpmm
