#include "storage/index.h"

#include <algorithm>

#include "common/check.h"

namespace jpmm {

IndexedRelation::IndexedRelation(const BinaryRelation& rel) {
  JPMM_CHECK_MSG(rel.finalized(), "IndexedRelation requires Finalize()");
  num_tuples_ = rel.size();
  num_x_ = rel.num_x();
  num_y_ = rel.num_y();

  x_offsets_.assign(static_cast<size_t>(num_x_) + 1, 0);
  y_offsets_.assign(static_cast<size_t>(num_y_) + 1, 0);
  for (const Tuple& t : rel.tuples()) {
    ++x_offsets_[t.x + 1];
    ++y_offsets_[t.y + 1];
  }
  for (size_t i = 1; i < x_offsets_.size(); ++i) x_offsets_[i] += x_offsets_[i - 1];
  for (size_t i = 1; i < y_offsets_.size(); ++i) y_offsets_[i] += y_offsets_[i - 1];

  x_neighbors_.resize(num_tuples_);
  y_neighbors_.resize(num_tuples_);
  std::vector<uint32_t> x_fill(x_offsets_.begin(), x_offsets_.end() - 1);
  std::vector<uint32_t> y_fill(y_offsets_.begin(), y_offsets_.end() - 1);
  // Tuples are sorted by (x, y): the x-direction fills in sorted order, and
  // the y-direction receives x values in increasing order per y bucket.
  for (const Tuple& t : rel.tuples()) {
    x_neighbors_[x_fill[t.x]++] = t.y;
    y_neighbors_[y_fill[t.y]++] = t.x;
  }
}

bool IndexedRelation::Contains(Value a, Value b) const {
  const auto ys = YsOf(a);
  return std::binary_search(ys.begin(), ys.end(), b);
}

std::vector<Tuple> IndexedRelation::ToTuples() const {
  std::vector<Tuple> out;
  out.reserve(num_tuples_);
  for (Value a = 0; a < num_x_; ++a) {
    for (Value b : YsOf(a)) out.push_back(Tuple{a, b});
  }
  return out;
}

void SemijoinReduce(BinaryRelation* r, BinaryRelation* s) {
  JPMM_CHECK(r->finalized() && s->finalized());
  const Value ny = std::max(r->num_y(), s->num_y());
  std::vector<uint8_t> in_r(ny, 0), in_s(ny, 0);
  for (const Tuple& t : r->tuples()) in_r[t.y] = 1;
  for (const Tuple& t : s->tuples()) in_s[t.y] = 1;

  auto filter = [](const BinaryRelation& rel, const std::vector<uint8_t>& keep) {
    std::vector<Tuple> kept;
    kept.reserve(rel.size());
    for (const Tuple& t : rel.tuples()) {
      if (keep[t.y]) kept.push_back(t);
    }
    BinaryRelation out(std::move(kept));
    out.Finalize();
    return out;
  };
  BinaryRelation new_r = filter(*r, in_s);
  BinaryRelation new_s = filter(*s, in_r);
  *r = std::move(new_r);
  *s = std::move(new_s);
}

}  // namespace jpmm
