// Text edge-list I/O.
//
// Format: one "x y" pair of non-negative integers per line; blank lines and
// lines starting with '#' or '%' are ignored (SNAP / KONECT conventions).

#ifndef JPMM_STORAGE_LOADER_H_
#define JPMM_STORAGE_LOADER_H_

#include <optional>
#include <string>

#include "storage/relation.h"

namespace jpmm {

/// Parses an edge list from a file. Returns std::nullopt (and fills *error if
/// given) on missing file or malformed line. The result is finalized.
std::optional<BinaryRelation> LoadEdgeList(const std::string& path,
                                           std::string* error = nullptr);

/// Parses an edge list from an in-memory string (same format).
std::optional<BinaryRelation> ParseEdgeList(const std::string& text,
                                            std::string* error = nullptr);

/// Writes a relation as an edge list. Returns false on I/O failure.
bool SaveEdgeList(const BinaryRelation& rel, const std::string& path);

}  // namespace jpmm

#endif  // JPMM_STORAGE_LOADER_H_
