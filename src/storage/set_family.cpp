#include "storage/set_family.h"

#include <algorithm>
#include <limits>
#include <sstream>

namespace jpmm {

std::string SetFamilyStats::ToString() const {
  std::ostringstream os;
  os << "|R|=" << num_tuples << " sets=" << num_sets << " |dom|=" << dom_size
     << " avg=" << avg_set_size << " min=" << min_set_size
     << " max=" << max_set_size;
  return os.str();
}

std::vector<Value> SetFamily::NonEmptySets() const {
  std::vector<Value> out;
  for (Value s = 0; s < rel_->num_x(); ++s) {
    if (rel_->DegX(s) > 0) out.push_back(s);
  }
  return out;
}

SetFamilyStats SetFamily::Stats() const {
  SetFamilyStats st;
  st.num_tuples = rel_->num_tuples();
  st.min_set_size = std::numeric_limits<uint32_t>::max();
  for (Value s = 0; s < rel_->num_x(); ++s) {
    const uint32_t sz = rel_->DegX(s);
    if (sz == 0) continue;
    ++st.num_sets;
    st.min_set_size = std::min(st.min_set_size, sz);
    st.max_set_size = std::max(st.max_set_size, sz);
  }
  for (Value e = 0; e < rel_->num_y(); ++e) {
    if (rel_->DegY(e) > 0) ++st.dom_size;
  }
  st.avg_set_size =
      st.num_sets == 0
          ? 0.0
          : static_cast<double>(st.num_tuples) / static_cast<double>(st.num_sets);
  if (st.num_sets == 0) st.min_set_size = 0;
  return st;
}

}  // namespace jpmm
