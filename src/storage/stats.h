// Degree statistics and the Section-5 optimizer indexes.
//
// Algorithm 3 probes, for candidate thresholds delta:
//   count(w, delta)  - number of w-values with degree <= delta
//   sum(x, delta)    - light-x deduplication effort:
//                      sum over {a : deg_R(a) <= delta} of
//                      sum over {b in R[a]} of |L_S[b]|
//   sum(y, delta)    - light-y expansion effort:
//                      sum over {b : deg_S(b) <= delta} of deg_R(b)*deg_S(b)
//   cdfx(y, delta)   - number of R-tuples whose y value has deg_S <= delta
// All are answered in O(log N) from degree-sorted prefix-sum tables built in
// linear time ("storing the sorted vector containing the true distribution of
// values present in the relation", §5).

#ifndef JPMM_STORAGE_STATS_H_
#define JPMM_STORAGE_STATS_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "storage/index.h"

namespace jpmm {

/// Generic degree-CDF: pairs (degree, weight) sorted by degree with prefix
/// sums, queried by threshold.
class DegreeCdf {
 public:
  DegreeCdf() = default;

  /// Builds from parallel arrays: entry i has degree degrees[i] and weight
  /// weights[i]. Zero-degree entries are skipped (values absent from the
  /// relation).
  DegreeCdf(const std::vector<uint32_t>& degrees,
            const std::vector<double>& weights);

  /// Number of entries with degree <= delta.
  uint64_t CountAtMost(uint64_t delta) const;

  /// Sum of weights over entries with degree <= delta.
  double WeightAtMost(uint64_t delta) const;

  /// Per-band weight sums of the heavy entries (degree > delta) under the
  /// degree-descending remap the density-adaptive partitioner applies
  /// (core/density_partition.h): entries are ordered by descending degree
  /// and split into `bands` equal-count bands; band 0 holds the highest
  /// degrees. Within one distinct degree the weight is apportioned
  /// uniformly (entries of equal degree are interchangeable under the
  /// remap). Always returns exactly `bands` entries; trailing bands are
  /// zero when fewer heavy entries exist.
  std::vector<double> HeavyBandWeights(uint64_t delta, size_t bands) const;

  /// Total number of (non-zero-degree) entries.
  uint64_t total_count() const {
    return degrees_.empty() ? 0 : counts_.back();
  }

  /// Sum of all weights.
  double total_weight() const {
    return degrees_.empty() ? 0.0 : weights_.back();
  }

 private:
  std::vector<uint32_t> degrees_;  // distinct degrees, ascending
  std::vector<uint64_t> counts_;   // prefix count per distinct degree
  std::vector<double> weights_;    // prefix weight per distinct degree
};

/// All Section-5 indexes for a 2-path query pi_{x,z}(R(x,y) JOIN S(z,y)).
///
/// For a self join pass the same IndexedRelation twice.
class TwoPathStats {
 public:
  TwoPathStats(const IndexedRelation& r, const IndexedRelation& s);

  /// |OUT_join|: full join size before projection, sum_b deg_R(b)*deg_S(b).
  uint64_t full_join_size() const { return full_join_size_; }

  /// count(x, delta): #x-values of R with degree <= delta.
  uint64_t CountXAtMost(uint64_t delta) const { return x_cdf_.CountAtMost(delta); }
  /// count(z, delta): #z-values of S with degree <= delta.
  uint64_t CountZAtMost(uint64_t delta) const { return z_cdf_.CountAtMost(delta); }
  /// count(y, delta): #y-values with deg_S <= delta (the heavy-y complement).
  uint64_t CountYAtMost(uint64_t delta) const { return y_cdf_.CountAtMost(delta); }

  /// sum(x, delta): expansion effort for light x (see header comment).
  double SumXAtMost(uint64_t delta) const { return x_cdf_.WeightAtMost(delta); }
  /// sum(z, delta): symmetric effort for light z:
  /// sum over {c : deg_S(c) <= delta} of sum over {b in S[c]} of deg_R(b).
  double SumZAtMost(uint64_t delta) const { return z_cdf_.WeightAtMost(delta); }
  /// sum(y, delta): join work through light y: sum deg_R(b) * deg_S(b).
  double SumYAtMost(uint64_t delta) const { return y_cdf_.WeightAtMost(delta); }
  /// cdfx(y, delta): #R-tuples whose y has deg_S <= delta.
  double CdfXAtMost(uint64_t delta) const { return ycdfx_.WeightAtMost(delta); }

  /// #R-tuples whose x value has degree <= delta. num_tuples(R) minus this
  /// bounds the heavy-x adjacency nnz — the optimizer's density estimate
  /// for the sparse heavy-part kernels.
  double SumDegXAtMost(uint64_t delta) const {
    return xdeg_cdf_.WeightAtMost(delta);
  }
  /// #S-tuples whose z value has degree <= delta (symmetric bound for M2).
  double SumDegZAtMost(uint64_t delta) const {
    return zdeg_cdf_.WeightAtMost(delta);
  }

  /// Per-band nnz bounds of the heavy-x adjacency M1 under the degree
  /// remap: heavy x values (deg > delta2) sorted by descending degree,
  /// split into `bands` equal-count row bands, returning each band's
  /// summed degree (= its matrix nnz bound). Feeds the optimizer's
  /// density-adaptive costing without touching the tuples.
  std::vector<double> HeavyXBandNnz(uint64_t delta2, size_t bands) const {
    return xdeg_cdf_.HeavyBandWeights(delta2, bands);
  }
  /// Symmetric per-band nnz bounds of M2 by heavy-z column bands.
  std::vector<double> HeavyZBandNnz(uint64_t delta2, size_t bands) const {
    return zdeg_cdf_.HeavyBandWeights(delta2, bands);
  }

  uint64_t num_tuples_r() const { return num_tuples_r_; }
  uint64_t num_tuples_s() const { return num_tuples_s_; }

  uint64_t distinct_x() const { return x_cdf_.total_count(); }
  uint64_t distinct_z() const { return z_cdf_.total_count(); }
  uint64_t distinct_y() const { return y_cdf_.total_count(); }

 private:
  uint64_t full_join_size_ = 0;
  uint64_t num_tuples_r_ = 0;
  uint64_t num_tuples_s_ = 0;
  DegreeCdf x_cdf_;    // degrees of x in R, weight = sum_{b in R[a]} deg_S(b)
  DegreeCdf z_cdf_;    // degrees of z in S, weight = sum_{b in S[c]} deg_R(b)
  DegreeCdf y_cdf_;    // degrees of y in S, weight = deg_R(b) * deg_S(b)
  DegreeCdf ycdfx_;    // degrees of y in S, weight = deg_R(b)
  DegreeCdf xdeg_cdf_; // degrees of x in R, weight = deg_R(a)
  DegreeCdf zdeg_cdf_; // degrees of z in S, weight = deg_S(c)
};

}  // namespace jpmm

#endif  // JPMM_STORAGE_STATS_H_
