// IndexedRelation: dual-direction CSR adjacency over a BinaryRelation.
//
// Section 5 ("Indexing relations"): worst-case optimal processing needs the
// relation indexed on every variable — by x (key x, sorted y-list) and by y
// (key y, sorted x-list). Building both is O(|D| log |D|); all join
// algorithms in jpmm consume this form.

#ifndef JPMM_STORAGE_INDEX_H_
#define JPMM_STORAGE_INDEX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"
#include "storage/relation.h"

namespace jpmm {

/// Immutable CSR index of a binary relation in both directions.
class IndexedRelation {
 public:
  IndexedRelation() = default;

  /// Builds both CSR directions. The relation must be finalized.
  explicit IndexedRelation(const BinaryRelation& rel);

  size_t num_tuples() const { return num_tuples_; }
  Value num_x() const { return num_x_; }
  Value num_y() const { return num_y_; }

  /// Sorted y-neighbours of x-value a (empty span if out of range).
  std::span<const Value> YsOf(Value a) const {
    if (a >= num_x_) return {};
    return {x_neighbors_.data() + x_offsets_[a],
            x_offsets_[a + 1] - x_offsets_[a]};
  }

  /// Sorted x-neighbours of y-value b (empty span if out of range).
  std::span<const Value> XsOf(Value b) const {
    if (b >= num_y_) return {};
    return {y_neighbors_.data() + y_offsets_[b],
            y_offsets_[b + 1] - y_offsets_[b]};
  }

  /// Degree of x-value a: |sigma_{x=a} R|.
  uint32_t DegX(Value a) const {
    return a >= num_x_ ? 0 : x_offsets_[a + 1] - x_offsets_[a];
  }

  /// Degree of y-value b: |sigma_{y=b} R|.
  uint32_t DegY(Value b) const {
    return b >= num_y_ ? 0 : y_offsets_[b + 1] - y_offsets_[b];
  }

  /// True iff tuple (a, b) is present (binary search on the y-list of a).
  bool Contains(Value a, Value b) const;

  /// All tuples in (x, y) sorted order.
  std::vector<Tuple> ToTuples() const;

 private:
  size_t num_tuples_ = 0;
  Value num_x_ = 0;
  Value num_y_ = 0;
  std::vector<uint32_t> x_offsets_;  // size num_x + 1
  std::vector<Value> x_neighbors_;   // y values, sorted per x
  std::vector<uint32_t> y_offsets_;  // size num_y + 1
  std::vector<Value> y_neighbors_;   // x values, sorted per y
};

/// Removes tuples that cannot contribute to the 2-path join
/// pi_{x,z}(R(x,y) JOIN S(z,y)): keeps R-tuples whose y appears in S and
/// S-tuples whose y appears in R. The linear preprocessing step of §3.1.
void SemijoinReduce(BinaryRelation* r, BinaryRelation* s);

}  // namespace jpmm

#endif  // JPMM_STORAGE_INDEX_H_
