#include "storage/catalog.h"

#include <algorithm>

#include "common/check.h"

namespace jpmm {

void Catalog::Put(const std::string& name, BinaryRelation rel) {
  if (!rel.finalized()) rel.Finalize();
  Entry e;
  e.rel = std::move(rel);
  entries_[name] = std::move(e);
}

bool Catalog::Has(const std::string& name) const {
  return entries_.count(name) > 0;
}

const BinaryRelation& Catalog::Get(const std::string& name) const {
  auto it = entries_.find(name);
  JPMM_CHECK_MSG(it != entries_.end(), name.c_str());
  return it->second.rel;
}

const IndexedRelation& Catalog::Index(const std::string& name) {
  auto it = entries_.find(name);
  JPMM_CHECK_MSG(it != entries_.end(), name.c_str());
  if (it->second.index == nullptr) {
    it->second.index = std::make_unique<IndexedRelation>(it->second.rel);
  }
  return *it->second.index;
}

std::vector<std::string> Catalog::Names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, _] : entries_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace jpmm
