#include "storage/catalog.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/failpoint.h"
#include "common/metrics.h"

namespace jpmm {
namespace {

// Catalog mutation + snapshot-pin metrics (see docs/observability.md).
Counter& PutsCounter() {
  static Counter& c =
      MetricsRegistry::Global().GetCounter("jpmm_catalog_puts_total");
  return c;
}
Counter& DropsCounter() {
  static Counter& c =
      MetricsRegistry::Global().GetCounter("jpmm_catalog_drops_total");
  return c;
}
Counter& PinsCounter() {
  static Counter& c = MetricsRegistry::Global().GetCounter(
      "jpmm_catalog_snapshot_pins_total");
  return c;
}

}  // namespace

const IndexedRelation& Catalog::Entry::BuildIndex() const {
  std::call_once(index_once,
                 [this] { index = std::make_unique<IndexedRelation>(rel); });
  return *index;
}

Catalog::Catalog(Catalog&& other) noexcept {
  std::unique_lock<std::shared_mutex> lock(other.mu_);
  entries_ = std::move(other.entries_);
  other.entries_.clear();
  version_.store(other.version_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
}

Catalog& Catalog::operator=(Catalog&& other) noexcept {
  if (this == &other) return *this;
  // Consistent two-lock order by address avoids a cross-assign deadlock.
  std::shared_mutex* first = this < &other ? &mu_ : &other.mu_;
  std::shared_mutex* second = this < &other ? &other.mu_ : &mu_;
  std::unique_lock<std::shared_mutex> l1(*first);
  std::unique_lock<std::shared_mutex> l2(*second);
  entries_ = std::move(other.entries_);
  other.entries_.clear();
  version_.store(other.version_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  return *this;
}

void Catalog::Put(const std::string& name, BinaryRelation rel) {
  // Before any mutation: an injected fault leaves the catalog unchanged
  // (strong exception safety).
  JPMM_FAIL_POINT("catalog.put");
  // Finalize outside the lock: sorting a big relation must not stall
  // readers.
  if (!rel.finalized()) rel.Finalize();
  auto entry = std::make_shared<Entry>();
  entry->rel = std::move(rel);
  std::shared_ptr<const Entry> replaced;  // destroyed outside the lock:
  {                                       // freeing a big relation must not
    std::unique_lock<std::shared_mutex> lock(mu_);  // stall readers
    std::shared_ptr<const Entry>& slot = entries_[name];
    replaced = std::move(slot);
    slot = std::move(entry);
    // Bumped inside the lock: readers that observe the new version are
    // guaranteed to see the new table (and vice versa).
    version_.fetch_add(1, std::memory_order_acq_rel);
  }
  PutsCounter().Add();
}

bool Catalog::Drop(const std::string& name) {
  std::shared_ptr<const Entry> doomed;  // destroyed outside the lock
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    auto it = entries_.find(name);
    if (it == entries_.end()) return false;
    doomed = std::move(it->second);
    entries_.erase(it);
    version_.fetch_add(1, std::memory_order_acq_rel);
  }
  DropsCounter().Add();
  return true;
}

std::shared_ptr<const Catalog::Entry> Catalog::Find(
    const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : it->second;
}

bool Catalog::Has(const std::string& name) const {
  return Find(name) != nullptr;
}

const BinaryRelation& Catalog::Get(const std::string& name) const {
  std::shared_ptr<const Entry> e = Find(name);
  JPMM_CHECK_MSG(e != nullptr, name.c_str());
  return e->rel;
}

const IndexedRelation& Catalog::Index(const std::string& name) const {
  std::shared_ptr<const Entry> e = Find(name);
  JPMM_CHECK_MSG(e != nullptr, name.c_str());
  // The index build runs outside the lock (it can be expensive); the entry
  // shared_ptr keeps it alive even if the name is replaced meanwhile.
  return e->BuildIndex();
}

std::shared_ptr<const IndexedRelation> Catalog::IndexSnapshot(
    const std::string& name) const {
  std::shared_ptr<const Entry> e = Find(name);
  if (e == nullptr) return nullptr;
  const IndexedRelation& idx = e->BuildIndex();
  PinsCounter().Add();
  // Aliasing constructor: the snapshot pins the whole entry (relation +
  // index) while exposing just the index.
  return std::shared_ptr<const IndexedRelation>(std::move(e), &idx);
}

bool Catalog::SnapshotAll(
    const std::vector<std::string>& names,
    std::vector<std::shared_ptr<const IndexedRelation>>* out,
    uint64_t* version_at_snapshot, std::string* missing) const {
  // Phase 1 — one shared lock hold pins every entry and reads the version.
  // Writers bump version_ inside their exclusive lock, so the (entries,
  // version) pair read here is a consistent cut.
  std::vector<std::shared_ptr<const Entry>> pinned;
  pinned.reserve(names.size());
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    for (const std::string& name : names) {
      auto it = entries_.find(name);
      if (it == entries_.end()) {
        if (missing != nullptr) *missing = name;
        return false;
      }
      pinned.push_back(it->second);
    }
    if (version_at_snapshot != nullptr) {
      *version_at_snapshot = version_.load(std::memory_order_acquire);
    }
  }
  // Phase 2 — index builds outside the lock (expensive; call_once dedups
  // duplicate names, which share an entry).
  for (std::shared_ptr<const Entry>& e : pinned) {
    const IndexedRelation& idx = e->BuildIndex();
    PinsCounter().Add();
    out->push_back(std::shared_ptr<const IndexedRelation>(std::move(e), &idx));
  }
  return true;
}

std::vector<std::string> Catalog::Names() const {
  std::vector<std::string> names;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    names.reserve(entries_.size());
    for (const auto& [name, _] : entries_) names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace jpmm
