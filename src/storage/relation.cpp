#include "storage/relation.h"

#include <algorithm>

#include "common/check.h"
#include "common/stamp_set.h"

namespace jpmm {

void BinaryRelation::Finalize() {
  std::sort(tuples_.begin(), tuples_.end());
  tuples_.erase(std::unique(tuples_.begin(), tuples_.end()), tuples_.end());

  num_x_ = 0;
  num_y_ = 0;
  distinct_x_ = 0;
  distinct_y_ = 0;
  for (size_t i = 0; i < tuples_.size(); ++i) {
    const Tuple& t = tuples_[i];
    num_x_ = std::max(num_x_, t.x + 1);
    num_y_ = std::max(num_y_, t.y + 1);
    if (i == 0 || tuples_[i - 1].x != t.x) ++distinct_x_;
  }
  if (!tuples_.empty()) {
    StampSet seen(num_y_);
    for (const Tuple& t : tuples_) {
      if (seen.Insert(t.y)) ++distinct_y_;
    }
  }
  finalized_ = true;
}

BinaryRelation BinaryRelation::Reversed() const {
  std::vector<Tuple> rev;
  rev.reserve(tuples_.size());
  for (const Tuple& t : tuples_) rev.push_back(Tuple{t.y, t.x});
  BinaryRelation out(std::move(rev));
  out.Finalize();
  return out;
}

}  // namespace jpmm
