// BinaryRelation: the input format of every query in the library.
//
// A relation R(x, y) is a set of dictionary-encoded pairs. Builders append
// freely (duplicates allowed); Finalize() sorts and deduplicates, giving the
// set semantics the paper's queries assume.

#ifndef JPMM_STORAGE_RELATION_H_
#define JPMM_STORAGE_RELATION_H_

#include <cstddef>
#include <vector>

#include "common/types.h"

namespace jpmm {

/// A binary relation R(x, y) stored as a tuple vector.
class BinaryRelation {
 public:
  BinaryRelation() = default;

  /// Takes ownership of pre-built tuples (call Finalize() before querying).
  explicit BinaryRelation(std::vector<Tuple> tuples)
      : tuples_(std::move(tuples)) {}

  /// Appends one tuple. Duplicates are removed by Finalize().
  void Add(Value x, Value y) { tuples_.push_back(Tuple{x, y}); }

  /// Sorts tuples and removes duplicates. Idempotent.
  void Finalize();

  /// True once Finalize() has run and no tuple was added since.
  bool finalized() const { return finalized_; }

  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  const std::vector<Tuple>& tuples() const { return tuples_; }

  /// Domain bound for x: 1 + max x (0 when empty).
  Value num_x() const { return num_x_; }
  /// Domain bound for y: 1 + max y (0 when empty).
  Value num_y() const { return num_y_; }

  /// Returns the relation with columns swapped: R'(y, x). Finalized.
  BinaryRelation Reversed() const;

  /// Number of distinct x values (valid after Finalize()).
  Value distinct_x() const { return distinct_x_; }
  /// Number of distinct y values (valid after Finalize()).
  Value distinct_y() const { return distinct_y_; }

 private:
  std::vector<Tuple> tuples_;
  Value num_x_ = 0;
  Value num_y_ = 0;
  Value distinct_x_ = 0;
  Value distinct_y_ = 0;
  bool finalized_ = false;
};

}  // namespace jpmm

#endif  // JPMM_STORAGE_RELATION_H_
