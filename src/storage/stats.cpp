#include "storage/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace jpmm {

DegreeCdf::DegreeCdf(const std::vector<uint32_t>& degrees,
                     const std::vector<double>& weights) {
  JPMM_CHECK(degrees.size() == weights.size());
  std::vector<size_t> order;
  order.reserve(degrees.size());
  for (size_t i = 0; i < degrees.size(); ++i) {
    if (degrees[i] > 0) order.push_back(i);
  }
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return degrees[a] < degrees[b];
  });

  uint64_t count = 0;
  double weight = 0.0;
  for (size_t idx : order) {
    const uint32_t d = degrees[idx];
    ++count;
    weight += weights[idx];
    if (!degrees_.empty() && degrees_.back() == d) {
      counts_.back() = count;
      weights_.back() = weight;
    } else {
      degrees_.push_back(d);
      counts_.push_back(count);
      weights_.push_back(weight);
    }
  }
}

uint64_t DegreeCdf::CountAtMost(uint64_t delta) const {
  auto it = std::upper_bound(degrees_.begin(), degrees_.end(), delta);
  if (it == degrees_.begin()) return 0;
  return counts_[static_cast<size_t>(it - degrees_.begin()) - 1];
}

double DegreeCdf::WeightAtMost(uint64_t delta) const {
  auto it = std::upper_bound(degrees_.begin(), degrees_.end(), delta);
  if (it == degrees_.begin()) return 0.0;
  return weights_[static_cast<size_t>(it - degrees_.begin()) - 1];
}

std::vector<double> DegreeCdf::HeavyBandWeights(uint64_t delta,
                                                size_t bands) const {
  bands = std::max<size_t>(1, bands);
  std::vector<double> out(bands, 0.0);
  const uint64_t heavy_cnt = total_count() - CountAtMost(delta);
  if (heavy_cnt == 0) return out;
  const double per_band = static_cast<double>(heavy_cnt) / bands;
  const size_t first = static_cast<size_t>(
      std::upper_bound(degrees_.begin(), degrees_.end(), delta) -
      degrees_.begin());
  // Walk distinct degrees from the highest down, filling bands in order and
  // splitting a degree group across a band boundary pro rata.
  uint64_t taken = 0;
  for (size_t g = degrees_.size(); g-- > first;) {
    const uint64_t g_cnt = counts_[g] - (g > 0 ? counts_[g - 1] : 0);
    const double g_w = weights_[g] - (g > 0 ? weights_[g - 1] : 0.0);
    const double w_per_entry = g_w / static_cast<double>(g_cnt);
    uint64_t left = g_cnt;
    while (left > 0) {
      const size_t band = std::min(
          bands - 1, static_cast<size_t>(static_cast<double>(taken) / per_band));
      const double boundary = per_band * static_cast<double>(band + 1);
      uint64_t take = static_cast<uint64_t>(
          std::ceil(boundary - static_cast<double>(taken)));
      take = std::max<uint64_t>(1, std::min(take, left));
      out[band] += w_per_entry * static_cast<double>(take);
      taken += take;
      left -= take;
    }
  }
  return out;
}

TwoPathStats::TwoPathStats(const IndexedRelation& r, const IndexedRelation& s) {
  const Value ny = std::max(r.num_y(), s.num_y());
  for (Value b = 0; b < ny; ++b) {
    full_join_size_ +=
        static_cast<uint64_t>(r.DegY(b)) * static_cast<uint64_t>(s.DegY(b));
  }

  num_tuples_r_ = r.num_tuples();
  num_tuples_s_ = s.num_tuples();

  // x side: weight = expansion effort sum_{b in R[a]} deg_S(b), plus the
  // tuple-count CDF (weight = own degree) the sparse cost model uses.
  {
    std::vector<uint32_t> deg(r.num_x());
    std::vector<double> w(r.num_x());
    std::vector<double> degw(r.num_x());
    for (Value a = 0; a < r.num_x(); ++a) {
      deg[a] = r.DegX(a);
      degw[a] = static_cast<double>(deg[a]);
      double effort = 0.0;
      for (Value b : r.YsOf(a)) effort += s.DegY(b);
      w[a] = effort;
    }
    x_cdf_ = DegreeCdf(deg, w);
    xdeg_cdf_ = DegreeCdf(deg, degw);
  }

  // z side: weight = expansion effort sum_{b in S[c]} deg_R(b).
  {
    std::vector<uint32_t> deg(s.num_x());
    std::vector<double> w(s.num_x());
    std::vector<double> degw(s.num_x());
    for (Value c = 0; c < s.num_x(); ++c) {
      deg[c] = s.DegX(c);
      degw[c] = static_cast<double>(deg[c]);
      double effort = 0.0;
      for (Value b : s.YsOf(c)) effort += r.DegY(b);
      w[c] = effort;
    }
    z_cdf_ = DegreeCdf(deg, w);
    zdeg_cdf_ = DegreeCdf(deg, degw);
  }

  // y side, keyed by deg_S(b) (the lightness test of Algorithm 1).
  {
    std::vector<uint32_t> deg(ny);
    std::vector<double> join_w(ny), tuple_w(ny);
    for (Value b = 0; b < ny; ++b) {
      deg[b] = s.DegY(b);
      join_w[b] = static_cast<double>(r.DegY(b)) * s.DegY(b);
      tuple_w[b] = static_cast<double>(r.DegY(b));
    }
    y_cdf_ = DegreeCdf(deg, join_w);
    ycdfx_ = DegreeCdf(deg, tuple_w);
  }
}

}  // namespace jpmm
