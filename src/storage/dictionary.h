// String-to-id dictionary encoding for external data.

#ifndef JPMM_STORAGE_DICTIONARY_H_
#define JPMM_STORAGE_DICTIONARY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace jpmm {

/// Bidirectional mapping between external string keys and dense Value ids.
class Dictionary {
 public:
  /// Returns the id of key, inserting it if new. Ids are assigned densely in
  /// insertion order.
  Value Encode(std::string_view key);

  /// Returns the id of key or kInvalidValue if absent.
  Value Lookup(std::string_view key) const;

  /// Returns the key of id. id must be < size().
  const std::string& Decode(Value id) const;

  size_t size() const { return keys_.size(); }

 private:
  std::unordered_map<std::string, Value> ids_;
  std::vector<std::string> keys_;
};

}  // namespace jpmm

#endif  // JPMM_STORAGE_DICTIONARY_H_
