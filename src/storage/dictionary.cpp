#include "storage/dictionary.h"

#include "common/check.h"

namespace jpmm {

Value Dictionary::Encode(std::string_view key) {
  auto it = ids_.find(std::string(key));
  if (it != ids_.end()) return it->second;
  const Value id = static_cast<Value>(keys_.size());
  keys_.emplace_back(key);
  ids_.emplace(keys_.back(), id);
  return id;
}

Value Dictionary::Lookup(std::string_view key) const {
  auto it = ids_.find(std::string(key));
  return it == ids_.end() ? kInvalidValue : it->second;
}

const std::string& Dictionary::Decode(Value id) const {
  JPMM_CHECK(id < keys_.size());
  return keys_[id];
}

}  // namespace jpmm
