// Catalog: a small named-relation registry.
//
// Keeps finalized relations together with their (lazily built) indexes, so
// examples and benchmarks can share one loaded dataset across queries.

#ifndef JPMM_STORAGE_CATALOG_H_
#define JPMM_STORAGE_CATALOG_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/index.h"
#include "storage/relation.h"

namespace jpmm {

/// Owns named relations and memoizes their IndexedRelation.
class Catalog {
 public:
  /// Registers (or replaces) a relation under `name`. Finalizes it if needed.
  void Put(const std::string& name, BinaryRelation rel);

  /// True iff `name` is registered.
  bool Has(const std::string& name) const;

  /// The relation registered under `name`. Aborts if absent.
  const BinaryRelation& Get(const std::string& name) const;

  /// The CSR index for `name`, built on first use. Aborts if absent.
  const IndexedRelation& Index(const std::string& name);

  /// Registered names, sorted.
  std::vector<std::string> Names() const;

 private:
  struct Entry {
    BinaryRelation rel;
    std::unique_ptr<IndexedRelation> index;
  };
  std::unordered_map<std::string, Entry> entries_;
};

}  // namespace jpmm

#endif  // JPMM_STORAGE_CATALOG_H_
