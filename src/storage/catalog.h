// Catalog: a concurrent named-relation registry.
//
// Keeps finalized relations together with their (lazily built) indexes, so
// examples, benchmarks, and a served QueryEngine can share one loaded
// dataset across queries.
//
// Thread-safety contract (the engine's multi-client foundation):
//   - Readers (Has / Get / Index / IndexSnapshot / Names / version) and
//     writers (Put / Drop) may run concurrently from any threads; a
//     reader-writer lock guards the name table.
//   - Entries are copy-on-write snapshots: Put(name, ...) installs a NEW
//     entry and releases the old one, it never mutates a published entry in
//     place. A query holding an IndexSnapshot keeps its relation alive and
//     unchanged — an in-flight Execute never sees a torn catalog, no matter
//     how many Put/Drop calls land mid-query.
//   - Index memoization is per-entry and race-free (std::call_once): the
//     first reader builds, concurrent readers wait and share the result.
//
// Reference-returning accessors (Get / Index) remain for single-threaded
// callers and tests: the reference stays valid only while the name keeps
// its current entry (until the next Put/Drop of that name). Concurrent
// writers must use IndexSnapshot, which pins the entry.

#ifndef JPMM_STORAGE_CATALOG_H_
#define JPMM_STORAGE_CATALOG_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/index.h"
#include "storage/relation.h"

namespace jpmm {

/// Owns named relations and memoizes their IndexedRelation. Safe for
/// concurrent readers + writers; see the file header for the contract.
class Catalog {
 public:
  Catalog() = default;
  // Moves transfer the name table; the source must not be in concurrent
  // use (moving a catalog other threads are querying is a caller bug).
  Catalog(Catalog&& other) noexcept;
  Catalog& operator=(Catalog&& other) noexcept;

  /// Registers (or replaces) a relation under `name`. Finalizes it if
  /// needed. Replacement is copy-on-write: snapshots taken before the call
  /// keep the old relation.
  void Put(const std::string& name, BinaryRelation rel);

  /// Unregisters `name`. Returns false if it was not registered.
  /// Snapshots taken before the call keep the dropped relation alive.
  bool Drop(const std::string& name);

  /// True iff `name` is registered.
  bool Has(const std::string& name) const;

  /// The relation registered under `name`. Aborts if absent. The reference
  /// is valid until the next Put/Drop of this name.
  const BinaryRelation& Get(const std::string& name) const;

  /// The CSR index for `name`, built on first use. Aborts if absent. The
  /// reference is valid until the next Put/Drop of this name.
  const IndexedRelation& Index(const std::string& name) const;

  /// Snapshot variant: pins the entry so the index survives any later
  /// Put/Drop of the name. Returns nullptr when `name` is absent —
  /// the race-free form of Has + Index for concurrent callers.
  std::shared_ptr<const IndexedRelation> IndexSnapshot(
      const std::string& name) const;

  /// MVCC-style multi-relation snapshot: pins EVERY name under one shared
  /// lock hold, so the returned set is a consistent cut — a concurrent Put
  /// between two names can never yield a mixed-version view (the skew that
  /// per-name IndexSnapshot calls allow). Writers bump version_ inside
  /// their exclusive lock, so `*version_at_snapshot` identifies the cut.
  /// Duplicate names pin the same entry (self-joins). On a missing name,
  /// returns false with the name in *missing and leaves *out empty; on
  /// success appends one snapshot per input name, in order. Index builds
  /// happen outside the lock (per-entry call_once), as in IndexSnapshot.
  bool SnapshotAll(const std::vector<std::string>& names,
                   std::vector<std::shared_ptr<const IndexedRelation>>* out,
                   uint64_t* version_at_snapshot, std::string* missing) const;

  /// Registered names, sorted.
  std::vector<std::string> Names() const;

  /// Bumped by every Put/Drop; lets callers cheaply detect writer activity.
  uint64_t version() const { return version_.load(std::memory_order_acquire); }

 private:
  // Immutable once published; the index is logically part of that immutable
  // state and is materialized lazily under a call_once.
  struct Entry {
    BinaryRelation rel;
    mutable std::once_flag index_once;
    mutable std::unique_ptr<IndexedRelation> index;

    const IndexedRelation& BuildIndex() const;
  };

  std::shared_ptr<const Entry> Find(const std::string& name) const;

  mutable std::shared_mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<const Entry>> entries_;
  std::atomic<uint64_t> version_{0};
};

}  // namespace jpmm

#endif  // JPMM_STORAGE_CATALOG_H_
