#include "ssj/size_aware.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/check.h"
#include "common/hash.h"
#include "common/stamp_set.h"
#include "common/thread_pool.h"
#include "join/intersection.h"
#include "ssj/size_boundary.h"

namespace jpmm {

void CanonicalizeSsj(SsjResult* result, bool ordered) {
  if (ordered) {
    std::sort(result->begin(), result->end(),
              [](const SimilarPair& x, const SimilarPair& y) {
                if (x.overlap != y.overlap) return x.overlap > y.overlap;
                if (x.a != y.a) return x.a < y.a;
                return x.b < y.b;
              });
  } else {
    std::sort(result->begin(), result->end());
  }
}

SsjResult SizeAwareHeavyPhase(const SetFamily& fam, uint32_t c,
                              uint32_t boundary, int threads) {
  // Heavy sets joined against all sets: R JOIN Rh of Algorithm 2 line 3.
  std::vector<Value> heavy;
  for (Value s = 0; s < fam.num_set_ids(); ++s) {
    if (fam.SetSize(s) >= boundary) heavy.push_back(s);
  }
  threads = std::max(1, threads);

  std::vector<SsjResult> partial(static_cast<size_t>(threads));
  ParallelFor(threads, heavy.size(), [&](size_t i0, size_t i1, int w) {
    StampCounter counter(fam.num_set_ids());
    std::vector<Value> touched;
    SsjResult& out = partial[static_cast<size_t>(w)];
    for (size_t i = i0; i < i1; ++i) {
      const Value h = heavy[i];
      counter.NewEpoch();
      touched.clear();
      for (Value e : fam.Elements(h)) {
        for (Value r : fam.InvertedList(e)) {
          if (counter.Add(r, 1) == 0) touched.push_back(r);
        }
      }
      for (Value r : touched) {
        if (r == h) continue;
        const uint32_t overlap = counter.Get(r);
        if (overlap < c) continue;
        // Emit each unordered pair once: heavy-heavy pairs when r < h,
        // light partners always (they never run a heavy scan themselves).
        if (fam.SetSize(r) >= boundary && r > h) continue;
        out.push_back(SimilarPair{std::min(r, h), std::max(r, h), overlap});
      }
    }
  });

  SsjResult out;
  for (auto& p : partial) out.insert(out.end(), p.begin(), p.end());
  return out;
}

SsjResult SizeAwareLightPhase(const SetFamily& fam, uint32_t c,
                              uint32_t boundary, bool compute_overlap) {
  // Buckets keyed by c-subset; two light sets sharing a bucket overlap in
  // >= c elements (Algorithm 2 lines 4-8).
  struct VecHash {
    size_t operator()(const std::vector<Value>& v) const {
      size_t seed = v.size();
      for (Value x : v) HashCombine(&seed, x);
      return seed;
    }
  };
  std::unordered_map<std::vector<Value>, std::vector<Value>, VecHash> buckets;

  std::vector<Value> subset(c);
  for (Value s = 0; s < fam.num_set_ids(); ++s) {
    const uint32_t size = fam.SetSize(s);
    if (size < c || size >= boundary) continue;
    const auto elems = fam.Elements(s);
    // Odometer over index combinations (ascending), generating all
    // C(size, c) subsets.
    std::vector<uint32_t> idx(c);
    for (uint32_t i = 0; i < c; ++i) idx[i] = i;
    for (;;) {
      for (uint32_t i = 0; i < c; ++i) subset[i] = elems[idx[i]];
      buckets[subset].push_back(s);
      // Advance combination.
      int pos = static_cast<int>(c) - 1;
      while (pos >= 0 &&
             idx[pos] == size - c + static_cast<uint32_t>(pos)) {
        --pos;
      }
      if (pos < 0) break;
      ++idx[pos];
      for (uint32_t i = static_cast<uint32_t>(pos) + 1; i < c; ++i) {
        idx[i] = idx[i - 1] + 1;
      }
    }
  }

  // A pair may share many c-subsets: dedup globally (line 8's "if not
  // output already").
  std::unordered_set<uint64_t, PairKeyHash> seen;
  SsjResult out;
  for (const auto& [key, sets] : buckets) {
    for (size_t i = 0; i < sets.size(); ++i) {
      for (size_t j = i + 1; j < sets.size(); ++j) {
        const Value a = std::min(sets[i], sets[j]);
        const Value b = std::max(sets[i], sets[j]);
        if (a == b) continue;
        if (seen.insert(PackPair(a, b)).second) {
          uint32_t overlap = 0;
          if (compute_overlap) {
            overlap = static_cast<uint32_t>(
                IntersectCount(fam.Elements(a), fam.Elements(b)));
          }
          out.push_back(SimilarPair{a, b, overlap});
        }
      }
    }
  }
  return out;
}

SsjResult SizeAwareJoin(const SetFamily& fam, const SsjOptions& options) {
  JPMM_CHECK(options.c >= 1);
  const uint32_t boundary = options.boundary_override != 0
                                ? options.boundary_override
                                : GetSizeBoundary(fam, options.c);
  SsjResult out =
      SizeAwareHeavyPhase(fam, options.c, boundary, options.threads);
  SsjResult light =
      SizeAwareLightPhase(fam, options.c, boundary, options.ordered);
  out.insert(out.end(), light.begin(), light.end());
  if (!options.ordered) {
    // Heavy phase filled overlaps as a by-product; zero them for a
    // deterministic unordered contract.
    for (auto& p : out) p.overlap = 0;
  }
  CanonicalizeSsj(&out, options.ordered);
  return out;
}

}  // namespace jpmm
