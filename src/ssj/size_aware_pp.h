// SizeAware++ — the paper's three-way-optimized SizeAware (Section 4).
//
// Modifications over the baseline (each independently switchable; Fig 8):
//   1. use_mm_heavy : the heavy join R JOIN Rh runs through Algorithm 1
//      (output-sensitive, strictly better whenever |JH| < N^2 / x).
//   2. use_mm_light : light-light processing through the two-path join with
//      witness counting instead of c-subset enumeration (wins when the
//      c-subset index |JL| exceeds the projected output).
//   3. use_prefix   : the light expansion reuses shared-prefix merge state
//      (Example 6; implies list-merge processing of the light part).

#ifndef JPMM_SSJ_SIZE_AWARE_PP_H_
#define JPMM_SSJ_SIZE_AWARE_PP_H_

#include "ssj/ssj.h"

namespace jpmm {

/// Runs SizeAware++ with the toggles in options (all on = the configuration
/// benchmarked as "SizeAware++" in Figures 5-6).
SsjResult SizeAwarePlusPlus(const SetFamily& fam, const SsjOptions& options);

}  // namespace jpmm

#endif  // JPMM_SSJ_SIZE_AWARE_PP_H_
