// GetSizeBoundary — the size threshold of the SizeAware algorithm [20].
//
// Sets of size >= boundary are "heavy" and joined through inverted-list
// scanning (cost ~ sum over heavy h of sum over e in h of |L[e]|); sets
// below it are "light" and joined through c-subset enumeration (cost ~
// sum over light r of C(|r|, c)). The boundary balances the two costs.

#ifndef JPMM_SSJ_SIZE_BOUNDARY_H_
#define JPMM_SSJ_SIZE_BOUNDARY_H_

#include <cstdint>

#include "storage/set_family.h"

namespace jpmm {

/// Estimated cost of c-subset enumeration for one set of size m (clamped
/// so degenerate parameters do not overflow).
double CSubsetCost(uint32_t m, uint32_t c);

/// Returns the size boundary x minimizing estimated(heavy) + estimated(light)
/// over candidate boundaries (the distinct set sizes). Sets with size >= x
/// are heavy. Returns at least c + 1 (a set smaller than c can never reach
/// overlap c, but may still pair with larger sets; c-subsets need >= c
/// elements).
uint32_t GetSizeBoundary(const SetFamily& fam, uint32_t c);

}  // namespace jpmm

#endif  // JPMM_SSJ_SIZE_BOUNDARY_H_
