#include "ssj/prefix_tree.h"

#include <algorithm>
#include <vector>

#include "common/check.h"

namespace jpmm {
namespace {

// Candidate-count state: sorted by candidate id.
using CountState = std::vector<std::pair<Value, uint32_t>>;

// new_state = state + 1 for every candidate in list (sorted merge).
void MergeList(const CountState& state, std::span<const Value> list,
               CountState* out) {
  out->clear();
  out->reserve(state.size() + list.size());
  size_t i = 0, j = 0;
  while (i < state.size() || j < list.size()) {
    if (j >= list.size() ||
        (i < state.size() && state[i].first < list[j])) {
      out->push_back(state[i]);
      ++i;
    } else if (i >= state.size() || list[j] < state[i].first) {
      out->push_back({list[j], 1});
      ++j;
    } else {
      out->push_back({state[i].first, state[i].second + 1});
      ++i;
      ++j;
    }
  }
}

}  // namespace

SsjResult PrefixMergeLightPhase(const SetFamily& fam, uint32_t c,
                                uint32_t boundary, uint32_t memo_depth,
                                PrefixMergeStats* stats) {
  JPMM_CHECK(c >= 1);
  // Global element order: inverted-list length descending (ties by id).
  std::vector<uint32_t> rank(fam.num_element_ids());
  {
    std::vector<Value> order(fam.num_element_ids());
    for (Value e = 0; e < fam.num_element_ids(); ++e) order[e] = e;
    std::sort(order.begin(), order.end(), [&](Value a, Value b) {
      const uint32_t la = fam.ListSize(a), lb = fam.ListSize(b);
      return la != lb ? la > lb : a < b;
    });
    for (uint32_t i = 0; i < order.size(); ++i) rank[order[i]] = i;
  }

  // Light sets as rank sequences, sorted lexicographically.
  struct SeqSet {
    std::vector<uint32_t> seq;  // element ranks, ascending
    std::vector<Value> elems;   // elements in rank order
    Value id;
  };
  std::vector<SeqSet> sets;
  for (Value s = 0; s < fam.num_set_ids(); ++s) {
    const uint32_t size = fam.SetSize(s);
    if (size < c || size >= boundary) continue;
    SeqSet e;
    e.id = s;
    for (Value el : fam.Elements(s)) e.seq.push_back(rank[el]);
    std::sort(e.seq.begin(), e.seq.end());
    e.elems.reserve(e.seq.size());
    sets.push_back(std::move(e));
  }
  std::sort(sets.begin(), sets.end(),
            [](const SeqSet& a, const SeqSet& b) { return a.seq < b.seq; });
  // Rank order back to element ids (rank -> element).
  std::vector<Value> rank_to_elem(fam.num_element_ids());
  for (Value e = 0; e < fam.num_element_ids(); ++e) rank_to_elem[rank[e]] = e;
  for (auto& st : sets) {
    for (uint32_t r : st.seq) st.elems.push_back(rank_to_elem[r]);
  }

  // memo[d] = count state after merging elements 0..d of the current prefix.
  std::vector<CountState> memo;
  std::vector<uint32_t> memo_seq;  // ranks the memo corresponds to
  CountState scratch_a;
  SsjResult out;

  auto is_light = [&](Value s) {
    const uint32_t size = fam.SetSize(s);
    return size >= c && size < boundary;
  };

  for (const SeqSet& st : sets) {
    // Longest shared prefix with the memoized path, capped by memo_depth.
    uint32_t lcp = 0;
    while (lcp < memo_seq.size() && lcp < st.seq.size() &&
           memo_seq[lcp] == st.seq[lcp]) {
      ++lcp;
    }
    memo.resize(lcp);
    memo_seq.resize(lcp);
    if (stats != nullptr) stats->merges_reused += lcp;

    // Current state = memo at lcp (or empty). Copied into a local so that
    // memo reallocations cannot invalidate it.
    CountState current = lcp == 0 ? CountState{} : memo[lcp - 1];

    for (uint32_t d = lcp; d < st.seq.size(); ++d) {
      MergeList(current, fam.InvertedList(st.elems[d]), &scratch_a);
      current.swap(scratch_a);
      if (stats != nullptr) ++stats->merges_done;
      if (d < memo_depth) {
        memo.push_back(current);
        memo_seq.push_back(st.seq[d]);
      }
    }

    for (const auto& [cand, count] : current) {
      if (count < c) continue;
      if (cand >= st.id) continue;  // each unordered pair once
      if (!is_light(cand)) continue;
      out.push_back(SimilarPair{cand, st.id, count});
    }
  }
  return out;
}

}  // namespace jpmm
