// SizeAware — the state-of-the-art SSJ baseline of Deng, Tao & Li [20]
// (Algorithm 2 in the paper).
//
// Sets are split at GetSizeBoundary into heavy (large) and light (small).
// Heavy sets join against everything by scanning their elements' inverted
// lists and counting occurrences per candidate; light sets enumerate their
// c-subsets and bucket them — two light sets sharing a c-subset overlap in
// >= c elements.

#ifndef JPMM_SSJ_SIZE_AWARE_H_
#define JPMM_SSJ_SIZE_AWARE_H_

#include "ssj/ssj.h"

namespace jpmm {

/// Runs SizeAware. options.c is the overlap threshold; ordered mode computes
/// overlaps (an extra merge per output pair, as §7.3 notes) and sorts.
/// The use_mm_* flags are ignored — this is the pure baseline.
SsjResult SizeAwareJoin(const SetFamily& fam, const SsjOptions& options);

/// Internal phases, exposed for SizeAware++ composition and tests. ----------

/// Heavy phase: pairs {a,b} with overlap >= c where max-size side is heavy
/// (size >= boundary). Deduplicated; overlaps always filled.
SsjResult SizeAwareHeavyPhase(const SetFamily& fam, uint32_t c,
                              uint32_t boundary, int threads);

/// Light phase: light-light pairs via c-subset enumeration. Overlaps filled
/// only when compute_overlap (costs one merge per pair).
SsjResult SizeAwareLightPhase(const SetFamily& fam, uint32_t c,
                              uint32_t boundary, bool compute_overlap);

}  // namespace jpmm

#endif  // JPMM_SSJ_SIZE_AWARE_H_
