// MMJoin-based set similarity join.
//
// SSJ with overlap threshold c is exactly the counted two-path self join
// filtered to count >= c (§2.1), so the whole problem reduces to Algorithm 1
// plus the cost-based optimizer. The witness counts come for free, which is
// why the ordered variant costs only a sort here while SizeAware has to
// re-intersect every output pair (§7.3, "Ordered SSJ").

#ifndef JPMM_SSJ_MM_SSJ_H_
#define JPMM_SSJ_MM_SSJ_H_

#include "core/join_project.h"
#include "ssj/ssj.h"

namespace jpmm {

/// Runs SSJ through the join-project facade. `strategy` defaults to the
/// cost-based optimizer's choice; pass Strategy::kNonMmJoin to get the
/// combinatorial comparator.
SsjResult MmSsj(const SetFamily& fam, const SsjOptions& options,
                Strategy strategy = Strategy::kAuto);

}  // namespace jpmm

#endif  // JPMM_SSJ_MM_SSJ_H_
