#include "ssj/size_boundary.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/check.h"

namespace jpmm {

double CSubsetCost(uint32_t m, uint32_t c) {
  if (m < c) return 0.0;
  // C(m, c) computed multiplicatively in doubles; capped to avoid inf.
  double result = 1.0;
  for (uint32_t i = 0; i < c; ++i) {
    result *= static_cast<double>(m - i) / static_cast<double>(i + 1);
    if (result > 1e18) return 1e18;
  }
  return result;
}

uint32_t GetSizeBoundary(const SetFamily& fam, uint32_t c) {
  JPMM_CHECK(c >= 1);
  struct Entry {
    uint32_t size;
    double light_cost;  // C(size, c)
    double heavy_cost;  // sum over elements of |L[e]|
  };
  std::vector<Entry> entries;
  for (Value s = 0; s < fam.num_set_ids(); ++s) {
    const uint32_t size = fam.SetSize(s);
    if (size < c) continue;  // cannot reach overlap c with any partner
    double heavy = 0.0;
    for (Value e : fam.Elements(s)) heavy += fam.ListSize(e);
    entries.push_back(Entry{size, CSubsetCost(size, c), heavy});
  }
  if (entries.empty()) return c + 1;

  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.size < b.size; });

  // Prefix light cost / suffix heavy cost; candidate boundaries are each
  // distinct size (boundary = size means that size is heavy) plus "beyond
  // max" (everything light).
  const size_t n = entries.size();
  std::vector<double> light_prefix(n + 1, 0.0), heavy_suffix(n + 1, 0.0);
  for (size_t i = 0; i < n; ++i) {
    light_prefix[i + 1] = light_prefix[i] + entries[i].light_cost;
  }
  for (size_t i = n; i > 0; --i) {
    heavy_suffix[i - 1] = heavy_suffix[i] + entries[i - 1].heavy_cost;
  }

  double best_cost = std::numeric_limits<double>::infinity();
  uint32_t best_boundary = entries.back().size + 1;
  size_t i = 0;
  for (;;) {
    // Boundary at entries[i].size: sizes >= it are heavy. i == n means
    // everything light.
    const uint32_t boundary =
        i == n ? entries.back().size + 1 : entries[i].size;
    const double cost = light_prefix[i] + heavy_suffix[i];
    if (cost < best_cost) {
      best_cost = cost;
      best_boundary = boundary;
    }
    if (i == n) break;
    const uint32_t cur = entries[i].size;
    while (i < n && entries[i].size == cur) ++i;  // next distinct size
  }
  return std::max(best_boundary, c + 1);
}

}  // namespace jpmm
