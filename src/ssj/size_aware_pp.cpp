#include "ssj/size_aware_pp.h"

#include <algorithm>

#include "common/check.h"
#include "core/join_project.h"
#include "ssj/prefix_tree.h"
#include "ssj/size_aware.h"
#include "ssj/size_boundary.h"
#include "storage/index.h"

namespace jpmm {
namespace {

// Builds the subrelation of sets selected by pred (set, size) -> bool.
BinaryRelation SubFamilyRelation(const SetFamily& fam,
                                 bool (*pred)(uint32_t, uint32_t),
                                 uint32_t boundary, uint32_t c) {
  BinaryRelation rel;
  for (Value s = 0; s < fam.num_set_ids(); ++s) {
    const uint32_t size = fam.SetSize(s);
    if (size == 0 || !pred(size, boundary) || size < c) continue;
    for (Value e : fam.Elements(s)) rel.Add(s, e);
  }
  rel.Finalize();
  return rel;
}

bool IsHeavySize(uint32_t size, uint32_t boundary) { return size >= boundary; }
bool IsLightSize(uint32_t size, uint32_t boundary) { return size < boundary; }

// Heavy phase through Algorithm 1: R JOIN Rh with witness counting.
SsjResult MmHeavyPhase(const SetFamily& fam, uint32_t c, uint32_t boundary,
                       int threads) {
  BinaryRelation heavy_rel =
      SubFamilyRelation(fam, IsHeavySize, boundary, /*c=*/1);
  if (heavy_rel.empty()) return {};
  IndexedRelation heavy_idx(heavy_rel);

  JoinProjectOptions jo;
  jo.strategy = Strategy::kAuto;
  jo.threads = threads;
  jo.count_witnesses = true;
  jo.min_count = c;
  auto res = JoinProject::TwoPath(fam.relation(), heavy_idx, jo);

  SsjResult out;
  out.reserve(res.counted.size());
  for (const CountedPair& p : res.counted) {
    if (p.x == p.z) continue;
    // p.z is heavy. Keep heavy-heavy pairs once; light partners always.
    if (fam.SetSize(p.x) >= boundary && p.x > p.z) continue;
    out.push_back(SimilarPair{std::min(p.x, p.z), std::max(p.x, p.z),
                              p.count});
  }
  return out;
}

// Light phase through the two-path join with counting.
SsjResult MmLightPhase(const SetFamily& fam, uint32_t c, uint32_t boundary,
                       int threads) {
  BinaryRelation light_rel = SubFamilyRelation(fam, IsLightSize, boundary, c);
  if (light_rel.empty()) return {};
  IndexedRelation light_idx(light_rel);

  JoinProjectOptions jo;
  jo.strategy = Strategy::kAuto;
  jo.threads = threads;
  jo.count_witnesses = true;
  jo.min_count = c;
  auto res = JoinProject::TwoPath(light_idx, light_idx, jo);

  SsjResult out;
  for (const CountedPair& p : res.counted) {
    if (p.x >= p.z) continue;  // each unordered pair once, drop self pairs
    out.push_back(SimilarPair{p.x, p.z, p.count});
  }
  return out;
}

}  // namespace

SsjResult SizeAwarePlusPlus(const SetFamily& fam, const SsjOptions& options) {
  JPMM_CHECK(options.c >= 1);
  const uint32_t boundary = options.boundary_override != 0
                                ? options.boundary_override
                                : GetSizeBoundary(fam, options.c);

  SsjResult out;
  if (options.use_mm_heavy) {
    out = MmHeavyPhase(fam, options.c, boundary, options.threads);
  } else {
    out = SizeAwareHeavyPhase(fam, options.c, boundary, options.threads);
  }

  SsjResult light;
  if (options.use_prefix) {
    light = PrefixMergeLightPhase(fam, options.c, boundary,
                                  options.memo_depth);
  } else if (options.use_mm_light) {
    light = MmLightPhase(fam, options.c, boundary, options.threads);
  } else {
    light = SizeAwareLightPhase(fam, options.c, boundary, options.ordered);
  }
  out.insert(out.end(), light.begin(), light.end());

  if (!options.ordered) {
    for (auto& p : out) p.overlap = 0;
  }
  CanonicalizeSsj(&out, options.ordered);
  return out;
}

}  // namespace jpmm
