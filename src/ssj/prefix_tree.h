// Prefix-tree computation reuse for the light-set expansion (Example 6).
//
// Light sets are rewritten into a global element order (descending
// inverted-list length, so the most expensive merges sit in shared
// prefixes), sorted lexicographically, and processed in order while a stack
// memoizes, per prefix depth, the merged candidate-count state
// (candidate -> number of shared elements so far). Consecutive sets sharing
// a prefix of length d resume from the stored state at depth d instead of
// re-merging those inverted lists — Example 6's 18-ops -> 9-ops saving.
//
// The paper stores (output set O, residual union U) per node, which suffices
// for overlap c = 2; storing the full count state generalizes the same
// memoization to any c. `memo_depth` caps how many levels materialize
// state (the space/reuse trade-off discussed in §4).

#ifndef JPMM_SSJ_PREFIX_TREE_H_
#define JPMM_SSJ_PREFIX_TREE_H_

#include <cstdint>

#include "ssj/ssj.h"

namespace jpmm {

/// Statistics of one prefix-merge run (for tests and the ablation bench).
struct PrefixMergeStats {
  uint64_t merges_done = 0;    // inverted-list merges actually executed
  uint64_t merges_reused = 0;  // merges skipped thanks to a shared prefix
};

/// Light-light SSJ pairs (both sizes in [c, boundary)) with exact overlaps,
/// via prefix-reused inverted-list merging. memo_depth = 0 disables reuse
/// (every set re-merges from scratch) — the ablation baseline.
SsjResult PrefixMergeLightPhase(const SetFamily& fam, uint32_t c,
                                uint32_t boundary, uint32_t memo_depth,
                                PrefixMergeStats* stats = nullptr);

}  // namespace jpmm

#endif  // JPMM_SSJ_PREFIX_TREE_H_
