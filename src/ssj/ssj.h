// Set similarity join (SSJ) — common definitions (Section 4).
//
// Input: one family of sets R (self join, as in the paper's experiments).
// Output: all unordered pairs {a, b}, a < b, with |a INTERSECT b| >= c.
// The ordered variant additionally reports the overlap and sorts by it
// (descending), "so users see the most similar pairs first".

#ifndef JPMM_SSJ_SSJ_H_
#define JPMM_SSJ_SSJ_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "storage/set_family.h"

namespace jpmm {

/// One similar pair; a < b always. overlap is 0 when the algorithm ran in
/// unordered mode and did not compute it.
struct SimilarPair {
  Value a = 0;
  Value b = 0;
  uint32_t overlap = 0;

  friend bool operator==(const SimilarPair& x, const SimilarPair& y) {
    return x.a == y.a && x.b == y.b && x.overlap == y.overlap;
  }
  friend bool operator<(const SimilarPair& x, const SimilarPair& y) {
    if (x.a != y.a) return x.a < y.a;
    if (x.b != y.b) return x.b < y.b;
    return x.overlap < y.overlap;
  }
};

using SsjResult = std::vector<SimilarPair>;

struct SsjOptions {
  /// Overlap threshold c >= 1.
  uint32_t c = 2;
  int threads = 1;
  /// Compute overlaps and sort the result by overlap descending
  /// (ties by pair id).
  bool ordered = false;

  // ---- SizeAware++ optimization toggles (Fig 8 ablation) ----
  /// Heavy phase through Algorithm 1 instead of the inverted-list scan.
  bool use_mm_heavy = true;
  /// Light phase through the two-path join instead of c-subset enumeration.
  bool use_mm_light = true;
  /// Light phase with prefix-tree computation reuse (Example 6); implies
  /// the light phase runs through list merging rather than c-subsets.
  bool use_prefix = true;

  /// Size boundary override for SizeAware / SizeAware++ (0 = use
  /// GetSizeBoundary).
  uint32_t boundary_override = 0;
  /// Maximum prefix-tree depth that materializes merge state.
  uint32_t memo_depth = 64;
};

/// Sorts a result canonically: ordered mode => overlap desc then pair asc;
/// unordered => pair asc.
void CanonicalizeSsj(SsjResult* result, bool ordered);

}  // namespace jpmm

#endif  // JPMM_SSJ_SSJ_H_
