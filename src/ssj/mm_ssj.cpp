#include "ssj/mm_ssj.h"

#include "common/check.h"

namespace jpmm {

SsjResult MmSsj(const SetFamily& fam, const SsjOptions& options,
                Strategy strategy) {
  JPMM_CHECK(options.c >= 1);
  JoinProjectOptions jo;
  jo.strategy = strategy;
  jo.threads = options.threads;
  jo.count_witnesses = true;
  jo.min_count = options.c;
  auto res = JoinProject::TwoPath(fam.relation(), fam.relation(), jo);

  SsjResult out;
  out.reserve(res.counted.size() / 2);
  for (const CountedPair& p : res.counted) {
    if (p.x >= p.z) continue;  // drop self pairs, keep each pair once
    out.push_back(SimilarPair{p.x, p.z, p.count});
  }
  if (!options.ordered) {
    for (auto& p : out) p.overlap = 0;
  }
  CanonicalizeSsj(&out, options.ordered);
  return out;
}

}  // namespace jpmm
