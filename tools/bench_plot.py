#!/usr/bin/env python3
"""Render the per-benchmark trajectory across a directory of BENCH_*.json
artifacts (google-benchmark JSON, the files CI uploads on every run).

    python3 tools/bench_plot.py <artifact-dir> [--out trajectory.svg]
        [--metric real_time] [--filter REGEX]

Runs are ordered by file name (fall back to mtime with --order mtime), so
date- or run-number-stamped artifact names plot chronologically. Output is
a self-contained SVG (no plotting library needed) with one log-scale line
per benchmark, plus a first-vs-last delta table on stdout — the companion
to tools/bench_compare.py, which diffs exactly two artifacts.
"""

import argparse
import json
import math
import re
import sys
from pathlib import Path

# google-benchmark time_unit values, normalized to nanoseconds.
_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

# Repeating categorical palette for the polylines.
_COLORS = [
    "#4269d0", "#efb118", "#ff725c", "#6cc5b0", "#3ca951",
    "#ff8ab7", "#a463f2", "#97bbf5", "#9c6b4e", "#9498a0",
]


def load_rows(path, metric):
    """benchmark name -> metric in ns, plain iteration rows only."""
    with open(path) as f:
        data = json.load(f)
    rows = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue
        if metric not in b:
            continue
        scale = _UNIT_NS.get(b.get("time_unit", "ns"), 1.0)
        rows[b["name"]] = float(b[metric]) * scale
    return rows


def fmt_ns(ns):
    for unit, div in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= div:
            return f"{ns / div:.3g} {unit}"
    return f"{ns:.3g} ns"


def svg_escape(s):
    return s.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def render_svg(labels, series, out_path):
    """labels: run names (x axis); series: {bench: [ns or None per run]}."""
    width, height = 960, 540
    ml, mr, mt, mb = 70, 260, 30, 60  # margins; right holds the legend
    pw, ph = width - ml - mr, height - mt - mb

    values = [v for pts in series.values() for v in pts if v is not None]
    lo, hi = min(values), max(values)
    if lo <= 0:
        lo = min(v for v in values if v > 0)
    llo, lhi = math.log10(lo), math.log10(hi)
    if lhi - llo < 1e-9:
        llo, lhi = llo - 0.5, lhi + 0.5
    # Pad a little so the extremes don't touch the frame.
    pad = 0.05 * (lhi - llo)
    llo, lhi = llo - pad, lhi + pad

    n = len(labels)
    xs = [ml + (pw * i / max(1, n - 1)) for i in range(n)]

    def y_of(v):
        return mt + ph * (1.0 - (math.log10(v) - llo) / (lhi - llo))

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="sans-serif" font-size="12">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<text x="{ml}" y="18" font-size="14" font-weight="bold">'
        f'Benchmark trajectory ({n} runs, log time)</text>',
    ]

    # Horizontal gridlines at decade boundaries.
    for d in range(math.floor(llo), math.ceil(lhi) + 1):
        v = 10.0 ** d
        if not (llo <= d <= lhi):
            continue
        y = y_of(v)
        parts.append(f'<line x1="{ml}" y1="{y:.1f}" x2="{ml + pw}" '
                     f'y2="{y:.1f}" stroke="#ddd"/>')
        parts.append(f'<text x="{ml - 6}" y="{y + 4:.1f}" '
                     f'text-anchor="end">{svg_escape(fmt_ns(v))}</text>')

    # X labels (thinned to at most ~12).
    step = max(1, n // 12)
    for i in range(0, n, step):
        parts.append(
            f'<text x="{xs[i]:.1f}" y="{mt + ph + 16}" text-anchor="middle" '
            f'font-size="10">{svg_escape(labels[i][:24])}</text>')

    # Polylines + legend.
    for si, (name, pts) in enumerate(sorted(series.items())):
        color = _COLORS[si % len(_COLORS)]
        coords = [(xs[i], y_of(v)) for i, v in enumerate(pts)
                  if v is not None]
        if len(coords) >= 2:
            path = " ".join(f"{x:.1f},{y:.1f}" for x, y in coords)
            parts.append(f'<polyline points="{path}" fill="none" '
                         f'stroke="{color}" stroke-width="1.8"/>')
        for x, y in coords:
            parts.append(f'<circle cx="{x:.1f}" cy="{y:.1f}" r="2.4" '
                         f'fill="{color}"/>')
        ly = mt + 14 * si
        parts.append(f'<rect x="{ml + pw + 12}" y="{ly - 8}" width="10" '
                     f'height="10" fill="{color}"/>')
        parts.append(f'<text x="{ml + pw + 27}" y="{ly + 1}" '
                     f'font-size="10">{svg_escape(name[:40])}</text>')

    parts.append(f'<rect x="{ml}" y="{mt}" width="{pw}" height="{ph}" '
                 f'fill="none" stroke="#999"/>')
    parts.append("</svg>")
    Path(out_path).write_text("\n".join(parts))


def main():
    ap = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("directory", help="directory holding BENCH_*.json files")
    ap.add_argument("--out", default="trajectory.svg", help="output SVG path")
    ap.add_argument("--metric", default="real_time",
                    help="benchmark field to plot (default real_time)")
    ap.add_argument("--filter", default=None,
                    help="regex; only matching benchmark names are plotted")
    ap.add_argument("--glob", default="BENCH_*.json",
                    help="artifact file pattern (default BENCH_*.json)")
    ap.add_argument("--order", choices=["name", "mtime"], default="name",
                    help="run ordering (default: file name)")
    args = ap.parse_args()

    files = sorted(Path(args.directory).glob(args.glob))
    if args.order == "mtime":
        files.sort(key=lambda p: p.stat().st_mtime)
    if not files:
        print(f"no {args.glob} files in {args.directory}", file=sys.stderr)
        return 1

    labels = []
    runs = []
    for f in files:
        try:
            rows = load_rows(f, args.metric)
        except (json.JSONDecodeError, OSError) as e:
            print(f"skipping {f}: {e}", file=sys.stderr)
            continue
        labels.append(f.stem.removeprefix("BENCH_"))
        runs.append(rows)
    if not runs:
        print("no readable artifacts", file=sys.stderr)
        return 1

    names = sorted({n for rows in runs for n in rows})
    if args.filter:
        rx = re.compile(args.filter)
        names = [n for n in names if rx.search(n)]
    if not names:
        print("no benchmarks match", file=sys.stderr)
        return 1

    series = {n: [rows.get(n) for rows in runs] for n in names}
    render_svg(labels, series, args.out)

    # First-vs-last summary: the trajectory's headline per benchmark.
    print(f"{'benchmark':<48} {'first':>10} {'last':>10} {'delta':>8}")
    for n in names:
        pts = [v for v in series[n] if v is not None]
        first, last = pts[0], pts[-1]
        delta = (last - first) / first * 100.0 if first > 0 else 0.0
        print(f"{n:<48} {fmt_ns(first):>10} {fmt_ns(last):>10} "
              f"{delta:>+7.1f}%")
    print(f"\nwrote {args.out} ({len(names)} benchmarks, {len(runs)} runs)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
