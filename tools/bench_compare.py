#!/usr/bin/env python3
"""Compare two google-benchmark JSON artifacts (BENCH_*.json).

Prints per-benchmark deltas between a baseline and a candidate run and
exits nonzero when any shared benchmark regressed by more than the
threshold (default 15%). This is the comparator over the BENCH_*.json
trajectory artifacts CI uploads on every run:

    python3 tools/bench_compare.py old.json new.json [--threshold 15]

Benchmarks present in only one file are reported but never fail the
comparison (new rows appear whenever a kernel family is added). Aggregate
rows (mean/median/stddev) are skipped — only plain iteration rows compare.

Rows that carry latency-histogram bucket counters (the `*_lat_le_<bound>`
keys emitted by bench_util.h's ReportLatency) additionally get a latency-
distribution section: p50/p99 are reconstructed from the buckets on each
side and diffed. Informational by default; --latency-threshold N makes a
p99 slowdown above N% fail the comparison too.
"""

import argparse
import json
import re
import sys

# google-benchmark time_unit values, normalized to nanoseconds.
_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_rows(path, metric):
    with open(path) as f:
        data = json.load(f)
    rows = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue  # skip mean/median/stddev aggregates
        if metric not in b:
            continue
        scale = _UNIT_NS.get(b.get("time_unit", "ns"), 1.0)
        rows[b["name"]] = float(b[metric]) * scale
    return rows


_LAT_KEY = re.compile(r"^(?P<prefix>.+)_lat_le_(?P<bound>inf|[0-9.eE+-]+)$")


def load_latency(path):
    """Returns {benchmark_name: {prefix: [(bound, count), ...]}} from the
    *_lat_le_* bucket counters (bound is float('inf') for the overflow
    bucket). Buckets absent from the JSON recorded zero samples."""
    with open(path) as f:
        data = json.load(f)
    out = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue
        hists = {}
        for key, value in b.items():
            m = _LAT_KEY.match(key)
            if not m:
                continue
            bound = (float("inf") if m.group("bound") == "inf"
                     else float(m.group("bound")))
            hists.setdefault(m.group("prefix"), []).append(
                (bound, float(value)))
        for prefix, buckets in hists.items():
            buckets.sort()
            out.setdefault(b["name"], {})[prefix] = buckets
    return out


def hist_percentile(buckets, p):
    """Percentile from [(upper_bound, count)] buckets — same linear
    interpolation as HistogramSnapshot::Percentile in common/metrics.h."""
    total = sum(c for _, c in buckets)
    if total <= 0:
        return 0.0
    rank = p / 100.0 * total
    cum = 0.0
    finite = [b for b, _ in buckets if b != float("inf")]
    for i, (bound, count) in enumerate(buckets):
        prev = cum
        cum += count
        if cum >= rank and count > 0:
            if bound == float("inf"):
                return finite[-1] if finite else 0.0
            lo = 0.0 if i == 0 else buckets[i - 1][0]
            frac = min(1.0, max(0.0, (rank - prev) / count))
            return lo + (bound - lo) * frac
    return finite[-1] if finite else 0.0


def compare_latency(old_lat, new_lat, threshold):
    """Prints the latency-distribution section; returns the list of
    (row, p99_delta) pairs exceeding the threshold (empty if threshold
    is 0 = informational)."""
    shared = sorted(set(old_lat) & set(new_lat))
    rows = []
    for name in shared:
        for prefix in sorted(set(old_lat[name]) & set(new_lat[name])):
            rows.append((f"{name} [{prefix}]",
                         old_lat[name][prefix], new_lat[name][prefix]))
    if not rows:
        return []
    width = max(len(r[0]) for r in rows)
    print(f"\nlatency distributions (reconstructed from _lat_le_* buckets):")
    print(f"{'row':<{width}}  {'p50 old':>9}  {'p50 new':>9}  "
          f"{'p99 old':>9}  {'p99 new':>9}  {'p99 delta':>9}")
    offenders = []
    for label, ob, nb in rows:
        op50, np50 = hist_percentile(ob, 50), hist_percentile(nb, 50)
        op99, np99 = hist_percentile(ob, 99), hist_percentile(nb, 99)
        delta = (np99 - op99) / op99 * 100.0 if op99 > 0 else 0.0
        flag = ""
        if threshold > 0 and delta > threshold:
            offenders.append((label, delta))
            flag = "  << REGRESSION"
        print(f"{label:<{width}}  {op50:>7.2f}ms  {np50:>7.2f}ms  "
              f"{op99:>7.2f}ms  {np99:>7.2f}ms  {delta:>+8.1f}%{flag}")
    return offenders


def fmt_ns(ns):
    for unit, div in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= div:
            return f"{ns / div:.3g} {unit}"
    return f"{ns:.3g} ns"


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", help="baseline BENCH_*.json")
    ap.add_argument("candidate", help="candidate BENCH_*.json")
    ap.add_argument("--threshold", type=float, default=15.0,
                    help="fail when a benchmark slows down by more than "
                         "this percentage (default 15)")
    ap.add_argument("--metric", default="real_time",
                    choices=["real_time", "cpu_time"])
    ap.add_argument("--latency-threshold", type=float, default=0.0,
                    help="fail when a reconstructed p99 slows down by more "
                         "than this percentage (0 = report only, default)")
    args = ap.parse_args()

    old = load_rows(args.baseline, args.metric)
    new = load_rows(args.candidate, args.metric)
    if not old or not new:
        print("bench_compare: no iteration rows in one of the inputs; "
              "nothing to compare")
        return 0

    shared = sorted(set(old) & set(new))
    regressions = []
    width = max((len(n) for n in shared), default=10)
    print(f"{'benchmark':<{width}}  {'baseline':>10}  {'candidate':>10}  "
          f"{'delta':>8}")
    for name in shared:
        delta = (new[name] - old[name]) / old[name] * 100.0
        flag = ""
        if delta > args.threshold:
            regressions.append((name, delta))
            flag = "  << REGRESSION"
        print(f"{name:<{width}}  {fmt_ns(old[name]):>10}  "
              f"{fmt_ns(new[name]):>10}  {delta:>+7.1f}%{flag}")
    for name in sorted(set(new) - set(old)):
        print(f"{name:<{width}}  {'-':>10}  {fmt_ns(new[name]):>10}  "
              f"    new")
    for name in sorted(set(old) - set(new)):
        print(f"{name:<{width}}  {fmt_ns(old[name]):>10}  {'-':>10}  "
              f"removed")

    lat_offenders = compare_latency(load_latency(args.baseline),
                                    load_latency(args.candidate),
                                    args.latency_threshold)
    if lat_offenders:
        print(f"\n{len(lat_offenders)} latency distribution(s) regressed "
              f"p99 more than {args.latency_threshold:.0f}%:")
        for label, delta in lat_offenders:
            print(f"  {label}: {delta:+.1f}%")
        return 1

    if regressions:
        print(f"\n{len(regressions)} benchmark(s) regressed more than "
              f"{args.threshold:.0f}%:")
        for name, delta in regressions:
            print(f"  {name}: {delta:+.1f}%")
        return 1
    print(f"\nno regression above {args.threshold:.0f}% across "
          f"{len(shared)} shared benchmark(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
