#!/usr/bin/env python3
"""Compare two google-benchmark JSON artifacts (BENCH_*.json).

Prints per-benchmark deltas between a baseline and a candidate run and
exits nonzero when any shared benchmark regressed by more than the
threshold (default 15%). This is the comparator over the BENCH_*.json
trajectory artifacts CI uploads on every run:

    python3 tools/bench_compare.py old.json new.json [--threshold 15]

Benchmarks present in only one file are reported but never fail the
comparison (new rows appear whenever a kernel family is added). Aggregate
rows (mean/median/stddev) are skipped — only plain iteration rows compare.
"""

import argparse
import json
import sys

# google-benchmark time_unit values, normalized to nanoseconds.
_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_rows(path, metric):
    with open(path) as f:
        data = json.load(f)
    rows = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue  # skip mean/median/stddev aggregates
        if metric not in b:
            continue
        scale = _UNIT_NS.get(b.get("time_unit", "ns"), 1.0)
        rows[b["name"]] = float(b[metric]) * scale
    return rows


def fmt_ns(ns):
    for unit, div in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= div:
            return f"{ns / div:.3g} {unit}"
    return f"{ns:.3g} ns"


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", help="baseline BENCH_*.json")
    ap.add_argument("candidate", help="candidate BENCH_*.json")
    ap.add_argument("--threshold", type=float, default=15.0,
                    help="fail when a benchmark slows down by more than "
                         "this percentage (default 15)")
    ap.add_argument("--metric", default="real_time",
                    choices=["real_time", "cpu_time"])
    args = ap.parse_args()

    old = load_rows(args.baseline, args.metric)
    new = load_rows(args.candidate, args.metric)
    if not old or not new:
        print("bench_compare: no iteration rows in one of the inputs; "
              "nothing to compare")
        return 0

    shared = sorted(set(old) & set(new))
    regressions = []
    width = max((len(n) for n in shared), default=10)
    print(f"{'benchmark':<{width}}  {'baseline':>10}  {'candidate':>10}  "
          f"{'delta':>8}")
    for name in shared:
        delta = (new[name] - old[name]) / old[name] * 100.0
        flag = ""
        if delta > args.threshold:
            regressions.append((name, delta))
            flag = "  << REGRESSION"
        print(f"{name:<{width}}  {fmt_ns(old[name]):>10}  "
              f"{fmt_ns(new[name]):>10}  {delta:>+7.1f}%{flag}")
    for name in sorted(set(new) - set(old)):
        print(f"{name:<{width}}  {'-':>10}  {fmt_ns(new[name]):>10}  "
              f"    new")
    for name in sorted(set(old) - set(new)):
        print(f"{name:<{width}}  {fmt_ns(old[name]):>10}  {'-':>10}  "
              f"removed")

    if regressions:
        print(f"\n{len(regressions)} benchmark(s) regressed more than "
              f"{args.threshold:.0f}%:")
        for name, delta in regressions:
            print(f"  {name}: {delta:+.1f}%")
        return 1
    print(f"\nno regression above {args.threshold:.0f}% across "
          f"{len(shared)} shared benchmark(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
