// jpmm_cli — command-line front end for the library.
//
// Usage:
//   jpmm_cli <command> [options]
//
// Commands:
//   stats      print Table-2 style characteristics of a dataset
//   twopath    evaluate pi_{x,z}(R JOIN R)
//   star       evaluate the k-relation star self join
//   ssj        set similarity join
//   scj        set containment join
//   bsi        batched boolean set intersection
//   triangles  triangle counting (extension)
//
// Dataset options (every command):
//   --preset NAME     dblp|roadnet|jokes|words|protein|image
//   --scale S         preset scale factor (default 1.0)
//   --input FILE      edge list file instead of a preset
//   --seed N          generator seed (default 42)
//
// Command options:
//   --strategy S      auto|mm|nonmm|wcoj      (twopath, star)
//   --counts          produce witness counts  (twopath)
//   --min-count C     keep pairs with >= C witnesses (twopath)
//   --limit N         stop after N results (LimitSink early exit) (twopath)
//   --offset N        with --limit: return page [N, N+limit) (PageSink —
//                     done() fires once the page is full) (twopath)
//   --order-by O      xz|count: ranked delivery (OrderedBySink; `count`
//                     implies --counts; --limit bounds the merge buffer)
//                     (twopath)
//   --count-only      count results without materializing (twopath)
//   --top-k N         N highest-witness-count pairs (implies counts)
//                     (twopath)
//   --repeat N        execute the prepared query N times (plan-cache
//                     demo; --explain reports hit/miss per run) (twopath)
//   --clients N       concurrent driver: N client threads hammer the one
//                     shared engine + prepared query, each running
//                     --repeat executions with its own sink; prints
//                     aggregate throughput (twopath)
//   --deadline-ms D   per-query deadline: the run is truncated (exact
//                     partial results) once D ms elapse, queue wait
//                     included; routes through QueryService (twopath)
//   --max-inflight N  QueryService admission width: at most N concurrent
//                     executions (requires --clients > 1) (twopath)
//   --queue-depth N   QueryService admission queue bound; arrivals beyond
//                     it are shed with `overloaded` (requires
//                     --clients > 1) (twopath)
//   --retry           retry shed (`overloaded`) executions with jittered
//                     exponential backoff honouring the service's
//                     retry-after hint (requires --clients > 1) (twopath)
//   --batch-window-ms W
//                     enable multi-query batching: concurrent identical
//                     requests coalescing within W ms share one execution
//                     whose results fan out to every client (routes through
//                     QueryService; the --clients drill reports the batch
//                     rate) (twopath)
//   --result-cache-mb M
//                     enable the versioned result cache with an M MB
//                     budget: repeat requests replay a cached complete
//                     result without executing; 0 disables (twopath)
//   --no-batching     route through QueryService with batching and the
//                     result cache explicitly off — the A/B baseline for
//                     the flags above, with which it conflicts (twopath)
//   --k K             star arity (default 3)  (star)
//   --algo A          mm|sizeaware|sizeaware++ (ssj)
//                     mm|pretti|limit|pie      (scj)
//   --c C             SSJ overlap threshold (default 2)
//   --ordered         ordered SSJ
//   --batch N         BSI batch size (default 1000)
//   --rate B          BSI arrival rate per second (default 1000)
//   --threads N       worker threads (default 1)
//   --explain         print per-product-block kernel choices (dense / CSR),
//                     measured heavy-part density, plan-cache hit/miss,
//                     and blocks skipped by early exit (twopath, star)
//   --heavy-path P    auto|dense|csr-dense|csr-csr kernel override
//                     (twopath, star, triangles)
//   --partition P     auto|off|force: density-adaptive heavy-product
//                     decomposition (degree-remapped block grid); auto
//                     engages it when it prices cheaper, force whenever a
//                     heavy product exists. --explain prints the block
//                     grid + its signature (twopath, star)
//   --trace           record + print the per-query stage span tree
//                     (core/trace.h): queue wait, plan, light chunks,
//                     per-heavy-block kernels, sink finish, with ms and
//                     %-of-wall per stage (twopath, star, triangles)
//   --metrics[=FILE]  after the command, dump the process-wide metrics
//                     registry in Prometheus text format to stdout (or
//                     FILE) (every command)
//   --isa I           portable|avx2|avx512: force the SIMD kernel dispatch
//                     level (common/cpu_features.h). Rejected when the host
//                     does not support I; without the flag the JPMM_ISA env
//                     var, then CPUID detection, decide. --explain reports
//                     the active level (every command)

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bsi/bsi.h"
#include "bsi/latency_sim.h"
#include "bsi/workload.h"
#include "common/cpu_features.h"
#include "common/metrics.h"
#include "common/timer.h"
#include "core/trace.h"
#include "core/join_project.h"
#include "core/query_engine.h"
#include "core/query_service.h"
#include "core/result_sink.h"
#include "core/triangle.h"
#include "datagen/generators.h"
#include "datagen/presets.h"
#include "scj/limit_plus.h"
#include "scj/mm_scj.h"
#include "scj/piejoin.h"
#include "scj/pretti.h"
#include "ssj/mm_ssj.h"
#include "ssj/size_aware.h"
#include "ssj/size_aware_pp.h"
#include "storage/loader.h"
#include "storage/set_family.h"
#include "storage/stats.h"

using namespace jpmm;

namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> options;
  bool Has(const std::string& key) const { return options.count(key) > 0; }
  std::string Get(const std::string& key, const std::string& def = "") const {
    auto it = options.find(key);
    return it == options.end() ? def : it->second;
  }
  double GetD(const std::string& key, double def) const {
    return Has(key) ? std::atof(Get(key).c_str()) : def;
  }
  long GetI(const std::string& key, long def) const {
    return Has(key) ? std::atol(Get(key).c_str()) : def;
  }
};

std::optional<Args> Parse(int argc, char** argv) {
  if (argc < 2) return std::nullopt;
  Args args;
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected argument '%s'\n", key.c_str());
      return std::nullopt;
    }
    key = key.substr(2);
    // --key=value form (e.g. --metrics=FILE).
    const size_t eq = key.find('=');
    if (eq != std::string::npos) {
      args.options[key.substr(0, eq)] = key.substr(eq + 1);
      continue;
    }
    // Flags without values.
    if (key == "counts" || key == "ordered" || key == "explain" ||
        key == "count-only" || key == "retry" || key == "metrics" ||
        key == "trace" || key == "no-batching") {
      args.options[key] = "1";
      continue;
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for --%s\n", key.c_str());
      return std::nullopt;
    }
    args.options[key] = argv[++i];
  }
  return args;
}

std::optional<BinaryRelation> LoadDataset(const Args& args) {
  if (args.Has("input")) {
    std::string error;
    auto rel = LoadEdgeList(args.Get("input"), &error);
    if (!rel.has_value()) {
      std::fprintf(stderr, "load failed: %s\n", error.c_str());
      return std::nullopt;
    }
    return rel;
  }
  const std::string preset = args.Get("preset", "jokes");
  const double scale = args.GetD("scale", 1.0);
  const auto seed = static_cast<uint64_t>(args.GetI("seed", 42));
  for (DatasetPreset p : AllPresets()) {
    std::string name = PresetName(p);
    for (auto& ch : name) ch = static_cast<char>(std::tolower(ch));
    if (name == preset) return MakePreset(p, scale, seed);
  }
  std::fprintf(stderr, "unknown preset '%s'\n", preset.c_str());
  return std::nullopt;
}

Strategy ParseStrategy(const std::string& s) {
  if (s == "mm") return Strategy::kMmJoin;
  if (s == "nonmm") return Strategy::kNonMmJoin;
  if (s == "wcoj") return Strategy::kWcojFull;
  return Strategy::kAuto;
}

HeavyPathMode ParseHeavyPath(const std::string& s) {
  if (s == "dense") return HeavyPathMode::kForceDense;
  if (s == "csr-dense") return HeavyPathMode::kForceCsrDense;
  if (s == "csr-csr") return HeavyPathMode::kForceCsrCsr;
  return HeavyPathMode::kAuto;
}

PartitionMode ParsePartitionMode(const std::string& s) {
  if (s == "off") return PartitionMode::kOff;
  if (s == "force") return PartitionMode::kForce;
  return PartitionMode::kAuto;
}

// --isa: install the kernel-dispatch override before any kernel (or
// calibration) runs. Unlike the JPMM_ISA env var — which clamps silently so
// a fleet-wide setting degrades safely — a bad CLI value is loud.
int ApplyIsaFlag(const Args& args) {
  if (!args.Has("isa")) return 0;
  const std::string v = args.Get("isa");
  KernelIsa isa;
  if (!ParseKernelIsa(v, &isa)) {
    std::fprintf(stderr,
                 "unknown --isa '%s' (expected portable|avx2|avx512)\n",
                 v.c_str());
    return 2;
  }
  if (!IsaSupported(isa)) {
    std::fprintf(stderr, "error: --isa %s unsupported on this host (best: %s)\n",
                 v.c_str(), KernelIsaName(DetectBestIsa()));
    return 2;
  }
  SetKernelIsaOverride(isa);
  return 0;
}

// --explain: the dispatch level every SIMD kernel call selects on.
void PrintIsaLine() {
  std::printf("jpmm_isa: %s (detected %s)\n", KernelIsaName(ActiveIsa()),
              KernelIsaName(DetectBestIsa()));
}

// --explain: the density-adaptive partitioning decision for the heavy
// product. The signature ("RxC/sK/pJ", or "off"/"uniform") is stable
// across re-executions of the same query + options.
void PrintPartitionRecord(bool used, uint64_t row_bands, uint64_t col_bands,
                          uint64_t scheduled, uint64_t pruned,
                          const std::string& signature) {
  if (used) {
    std::printf("partition: density grid %llu x %llu bands, blocks "
                "scheduled=%llu pruned=%llu (signature %s)\n",
                static_cast<unsigned long long>(row_bands),
                static_cast<unsigned long long>(col_bands),
                static_cast<unsigned long long>(scheduled),
                static_cast<unsigned long long>(pruned), signature.c_str());
  } else {
    std::printf("partition: %s\n", signature.c_str());
  }
}

// --explain: the per-block dispatch record of the heavy product.
void PrintBlockChoices(const HeavyKernelCounts& counts,
                       const std::vector<BlockKernelChoice>& choices,
                       uint64_t nnz, double density) {
  std::printf("heavy part: nnz=%llu density=%.3g blocks: dense=%llu "
              "csr-dense=%llu csr-csr=%llu\n",
              static_cast<unsigned long long>(nnz), density,
              static_cast<unsigned long long>(counts.dense),
              static_cast<unsigned long long>(counts.csr_dense),
              static_cast<unsigned long long>(counts.csr_csr));
  constexpr size_t kMaxLines = 32;
  for (size_t i = 0; i < choices.size(); ++i) {
    if (i == kMaxLines) {
      std::printf("  ... (%zu more blocks)\n", choices.size() - kMaxLines);
      break;
    }
    const BlockKernelChoice& c = choices[i];
    std::printf("  block %zu rows [%u, %u) cols [%u, %u): nnz=%llu "
                "density=%.3g kernel=%s\n",
                i, c.row_begin, c.row_end, c.col_begin, c.col_end,
                static_cast<unsigned long long>(c.nnz), c.density,
                ProductKernelName(c.kernel));
  }
}

// --trace: the recorded span tree plus its attribution summary. Coverage
// is the fraction of the first root span's wall time covered by its direct
// children — the acceptance bar is >= 95% on a two-path query.
void PrintTrace(const TraceRecorder& trace) {
  std::printf("%s", trace.Render().c_str());
  std::printf("trace: %zu spans, %.1f%% of wall attributed to stages%s\n",
              trace.size(), trace.ChildCoverage() * 100.0,
              trace.AllClosed() ? "" : " (UNBALANCED: open spans leaked)");
}

// --metrics[=FILE]: Prometheus-text dump of the process-wide registry.
int DumpMetrics(const std::string& target) {
  const std::string text = MetricsRegistry::Global().PrometheusText();
  if (target.empty() || target == "1") {
    std::printf("%s", text.c_str());
    return 0;
  }
  std::FILE* f = std::fopen(target.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write metrics to '%s'\n",
                 target.c_str());
    return 1;
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  std::printf("metrics written to %s\n", target.c_str());
  return 0;
}

int RunStats(const Args& args, const BinaryRelation& rel) {
  (void)args;
  IndexedRelation idx(rel);
  SetFamily fam(idx);
  TwoPathStats tp(idx, idx);
  std::printf("%s\n", fam.Stats().ToString().c_str());
  std::printf("full 2-path join size: %llu (%.1fx the input)\n",
              static_cast<unsigned long long>(tp.full_join_size()),
              static_cast<double>(tp.full_join_size()) /
                  static_cast<double>(std::max<size_t>(1, rel.size())));
  return 0;
}

// One client's sink for a twopath run, chosen from the flags. Every
// client thread of --clients builds its own instance — sinks are per-call
// state, the engine and PreparedQuery are the shared part.
struct TwoPathSink {
  enum class Kind { kAll, kCountOnly, kLimit, kPage, kTopK, kOrdered };

  Kind kind = Kind::kAll;
  std::unique_ptr<ResultSink> sink;

  static TwoPathSink Make(const Args& args) {
    TwoPathSink s;
    if (args.Has("order-by")) {
      const ResultOrder order = args.Get("order-by") == "count"
                                    ? ResultOrder::kCountDescending
                                    : ResultOrder::kXzAscending;
      const uint64_t lim = args.Has("limit")
                               ? static_cast<uint64_t>(args.GetI("limit", 10))
                               : OrderedBySink::kNoLimit;
      s.kind = Kind::kOrdered;
      s.sink = std::make_unique<OrderedBySink>(order, lim);
    } else if (args.Has("top-k")) {
      s.kind = Kind::kTopK;
      s.sink = std::make_unique<TopKByCountSink>(
          static_cast<size_t>(args.GetI("top-k", 10)));
    } else if (args.Has("count-only")) {
      s.kind = Kind::kCountOnly;
      s.sink = std::make_unique<CountOnlySink>();
    } else if (args.Has("offset")) {
      s.kind = Kind::kPage;
      s.sink = std::make_unique<PageSink>(
          static_cast<uint64_t>(args.GetI("offset", 0)),
          static_cast<uint64_t>(args.GetI("limit", 10)));
    } else if (args.Has("limit")) {
      s.kind = Kind::kLimit;
      s.sink = std::make_unique<LimitSink>(
          static_cast<uint64_t>(args.GetI("limit", 10)));
    } else {
      s.kind = Kind::kAll;
      s.sink = std::make_unique<VectorSink>();
    }
    return s;
  }

  size_t Count() const {
    switch (kind) {
      case Kind::kAll:
        return static_cast<VectorSink*>(sink.get())->size();
      case Kind::kCountOnly:
        return static_cast<CountOnlySink*>(sink.get())->count();
      case Kind::kLimit:
        return static_cast<LimitSink*>(sink.get())->size();
      case Kind::kPage:
        return static_cast<PageSink*>(sink.get())->size();
      case Kind::kTopK:
        return static_cast<TopKByCountSink*>(sink.get())->top().size();
      case Kind::kOrdered:
        return static_cast<OrderedBySink*>(sink.get())->ranked().size();
    }
    return 0;
  }

  const char* Label() const {
    switch (kind) {
      case Kind::kAll:
        return "pairs";
      case Kind::kCountOnly:
        return "pairs (counted only)";
      case Kind::kLimit:
        return "pairs (limited)";
      case Kind::kPage:
        return "pairs (page)";
      case Kind::kTopK:
        return "top-k pairs";
      case Kind::kOrdered:
        return "pairs (ranked)";
    }
    return "pairs";
  }
};

// The overload-safe driver: any of --deadline-ms / --max-inflight /
// --queue-depth / --retry routes execution through QueryService. With
// --clients > 1 the drill reports per-status outcomes and the latency
// distribution; a single client demonstrates the deadline alone.
int RunTwoPathService(const Args& args, QueryEngine& engine,
                      PreparedQuery& query, const ExecOptions& exec) {
  QueryServiceOptions so;
  so.max_inflight = static_cast<int>(args.GetI("max-inflight", 4));
  so.queue_depth = static_cast<size_t>(args.GetI("queue-depth", 16));
  // Batching + result cache stay opt-in, mirroring the library defaults:
  // --batch-window-ms turns coalescing on, --result-cache-mb > 0 turns the
  // cache on, and --no-batching routes through the service with both off —
  // the A/B baseline whose output is directly comparable to a batched run.
  so.enable_batching = args.Has("batch-window-ms");
  so.batch_window_ms = args.GetI("batch-window-ms", 2);
  const long cache_mb = args.GetI("result-cache-mb", 0);
  so.enable_result_cache = cache_mb > 0;
  so.result_cache_bytes = static_cast<uint64_t>(cache_mb) << 20;
  QueryService service(&engine, so);

  ServiceRequest base_req;
  base_req.deadline_ms = args.GetI("deadline-ms", 0);
  base_req.exec = exec;

  const long repeat = std::max<long>(1, args.GetI("repeat", 1));
  const long clients = std::max<long>(1, args.GetI("clients", 1));

  if (clients == 1) {
    TwoPathSink out = TwoPathSink::Make(args);
    ExecStats stats;
    for (long run = 0; run < repeat; ++run) {
      TraceRecorder trace;
      ServiceRequest run_req = base_req;
      if (args.Has("trace")) run_req.exec.trace = &trace;
      QueryStatus st = service.Execute(query, *out.sink, run_req, &stats);
      const bool truncated = st.code() == StatusCode::kDeadlineExceeded ||
                             st.code() == StatusCode::kCancelled;
      if (!st.ok() && !truncated) {
        std::fprintf(stderr, "error: %s\n", st.message().c_str());
        return 1;
      }
      std::printf("status: %s%s — %zu %s in %.3f s\n",
                  StatusCodeName(st.code()),
                  stats.degraded ? " (degraded)" : "", out.Count(),
                  out.Label(), stats.seconds);
      if (truncated) {
        std::printf("truncated exactly: light chunks %llu/%llu, heavy blocks "
                    "%llu/%llu (skipped work is accounted, delivered results "
                    "are exact)\n",
                    static_cast<unsigned long long>(
                        stats.light_chunks_executed),
                    static_cast<unsigned long long>(stats.light_chunks_total),
                    static_cast<unsigned long long>(
                        stats.heavy_blocks_executed),
                    static_cast<unsigned long long>(stats.heavy_blocks_total));
      }
      if (args.Has("trace")) PrintTrace(trace);
    }
    return 0;
  }

  struct Tally {
    uint64_t ok = 0, shed = 0, deadline = 0, cancelled = 0, degraded = 0;
    std::string fatal;
  };
  std::vector<Tally> tallies(static_cast<size_t>(clients));
  // Shared sharded histogram (common/metrics.h): every finished attempt
  // chain records its latency concurrently; p50/p99 come from the merged
  // snapshot — the same type the service exports process-wide.
  Histogram latency_ms(DefaultLatencyBoundsMs());
  std::vector<size_t> ok_counts;  // result counts of un-truncated runs
  std::mutex agg_mu;

  std::vector<std::thread> threads;
  WallTimer drill;
  for (long c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Tally& tally = tallies[static_cast<size_t>(c)];
      for (long run = 0; run < repeat; ++run) {
        TwoPathSink client_sink = TwoPathSink::Make(args);
        ExecStats stats;
        WallTimer t;
        QueryStatus st;
        if (args.Has("retry")) {
          RetryOptions ro;
          ro.seed = 0x9e3779b9u + static_cast<uint64_t>(c) * 131 +
                    static_cast<uint64_t>(run);
          st = RetryWithBackoff(
              [&] {
                return service.Execute(query, *client_sink.sink, base_req,
                                       &stats);
              },
              ro);
        } else {
          st = service.Execute(query, *client_sink.sink, base_req, &stats);
        }
        const double sec = t.Seconds();
        switch (st.code()) {
          case StatusCode::kOk:
            ++tally.ok;
            break;
          case StatusCode::kOverloaded:
            ++tally.shed;
            break;
          case StatusCode::kDeadlineExceeded:
            ++tally.deadline;
            break;
          case StatusCode::kCancelled:
            ++tally.cancelled;
            break;
          default:
            tally.fatal = st.message();
            return;
        }
        if (stats.degraded) ++tally.degraded;
        latency_ms.Record(sec * 1e3);
        if (st.ok()) {
          std::lock_guard<std::mutex> lk(agg_mu);
          ok_counts.push_back(client_sink.Count());
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const double sec = drill.Seconds();

  for (long c = 0; c < clients; ++c) {
    if (!tallies[static_cast<size_t>(c)].fatal.empty()) {
      std::fprintf(stderr, "client %ld error: %s\n", c,
                   tallies[static_cast<size_t>(c)].fatal.c_str());
      return 1;
    }
  }
  Tally total;
  for (const Tally& t : tallies) {
    total.ok += t.ok;
    total.shed += t.shed;
    total.deadline += t.deadline;
    total.cancelled += t.cancelled;
    total.degraded += t.degraded;
  }
  // Correctness cross-check: every un-truncated execution saw the same
  // result count, loaded or not.
  for (size_t n : ok_counts) {
    if (n != ok_counts[0]) {
      std::fprintf(stderr, "result divergence: %zu vs %zu\n", n,
                   ok_counts[0]);
      return 1;
    }
  }
  const HistogramSnapshot lat = latency_ms.Snapshot();
  std::printf("clients=%ld repeat=%ld max-inflight=%d queue-depth=%zu%s%s: "
              "%.3f s\n",
              clients, repeat, so.max_inflight, so.queue_depth,
              base_req.deadline_ms > 0 ? " deadline" : "",
              args.Has("retry") ? " retry" : "", sec);
  std::printf("outcomes: ok=%llu shed=%llu deadline=%llu cancelled=%llu "
              "degraded=%llu\n",
              static_cast<unsigned long long>(total.ok),
              static_cast<unsigned long long>(total.shed),
              static_cast<unsigned long long>(total.deadline),
              static_cast<unsigned long long>(total.cancelled),
              static_cast<unsigned long long>(total.degraded));
  const ServiceStats ss = service.stats();
  std::printf("service: %s\n", ss.ToString().c_str());
  if (so.enable_batching || so.enable_result_cache) {
    // Hit rates over the requests that finished Ok: a follower shared a
    // leader's execution, a cache hit skipped execution entirely.
    const double done = std::max<double>(1.0, static_cast<double>(total.ok));
    std::printf("batching: window=%lld ms leaders=%llu followers=%llu "
                "cache-hits=%llu (batch rate %.1f%%, cache hit rate %.1f%%)\n",
                static_cast<long long>(so.batch_window_ms),
                static_cast<unsigned long long>(ss.batch_leaders),
                static_cast<unsigned long long>(ss.batch_followers),
                static_cast<unsigned long long>(ss.cache_hits),
                100.0 * static_cast<double>(ss.batch_followers) / done,
                100.0 * static_cast<double>(ss.cache_hits) / done);
  }
  std::printf("latency: p50=%.2f ms p99=%.2f ms (%llu samples)\n",
              lat.Percentile(50.0), lat.Percentile(99.0),
              static_cast<unsigned long long>(lat.count));
  if (!ok_counts.empty()) {
    std::printf("every completed execution: %zu results\n", ok_counts[0]);
  }
  return 0;
}

int RunTwoPath(const Args& args, BinaryRelation rel) {
  QueryEngine engine;
  engine.AddRelation("R", std::move(rel));

  QuerySpec spec;
  spec.kind = QueryKind::kTwoPath;
  spec.relations = {"R"};
  spec.strategy = ParseStrategy(args.Get("strategy", "auto"));
  spec.count_witnesses = args.Has("counts") || args.Has("min-count") ||
                         args.Has("top-k") ||
                         args.Get("order-by") == "count";
  spec.min_count = static_cast<uint32_t>(args.GetI("min-count", 1));

  ExecOptions exec;
  exec.threads = static_cast<int>(args.GetI("threads", 1));
  exec.heavy_path = ParseHeavyPath(args.Get("heavy-path", "auto"));
  exec.partition = ParsePartitionMode(args.Get("partition", "auto"));

  if (args.Has("offset") && !args.Has("limit")) {
    std::fprintf(stderr, "error: --offset requires --limit (a page needs "
                         "both bounds)\n");
    return 1;
  }
  if (args.Has("offset") && (args.Has("top-k") || args.Has("count-only") ||
                             args.Has("order-by"))) {
    std::fprintf(stderr, "error: --offset only pages the plain result "
                         "stream; it cannot combine with --top-k, "
                         "--count-only, or --order-by\n");
    return 1;
  }
  if (args.Has("order-by")) {
    const std::string order = args.Get("order-by");
    if (order != "xz" && order != "count") {
      std::fprintf(stderr, "error: --order-by takes xz or count, got '%s'\n",
                   order.c_str());
      return 1;
    }
    if (args.Has("top-k") || args.Has("count-only")) {
      std::fprintf(stderr, "error: --order-by already defines the consumer; "
                           "it cannot combine with --top-k or "
                           "--count-only\n");
      return 1;
    }
  }

  const long repeat = std::max<long>(1, args.GetI("repeat", 1));
  const long clients = std::max<long>(1, args.GetI("clients", 1));
  const bool use_service =
      args.Has("deadline-ms") || args.Has("max-inflight") ||
      args.Has("queue-depth") || args.Has("retry") ||
      args.Has("batch-window-ms") || args.Has("result-cache-mb") ||
      args.Has("no-batching");
  if (args.Has("no-batching") &&
      (args.Has("batch-window-ms") || args.Has("result-cache-mb"))) {
    std::fprintf(stderr, "error: --no-batching disables the subsystem that "
                         "--batch-window-ms / --result-cache-mb tune; pick "
                         "one side\n");
    return 1;
  }
  if (args.Has("batch-window-ms") && args.GetI("batch-window-ms", 0) < 0) {
    std::fprintf(stderr, "error: --batch-window-ms must be >= 0 (0 coalesces "
                         "only requests already waiting)\n");
    return 1;
  }
  if (args.Has("result-cache-mb") && args.GetI("result-cache-mb", 0) < 0) {
    std::fprintf(stderr, "error: --result-cache-mb must be >= 0 (0 disables "
                         "the cache)\n");
    return 1;
  }
  if (args.Has("deadline-ms") && args.GetI("deadline-ms", 0) <= 0) {
    std::fprintf(stderr, "error: --deadline-ms takes a positive number of "
                         "milliseconds\n");
    return 1;
  }
  if (args.Has("max-inflight") && args.GetI("max-inflight", 0) < 1) {
    std::fprintf(stderr, "error: --max-inflight must be >= 1 (the service "
                         "needs at least one execution slot)\n");
    return 1;
  }
  if (args.Has("queue-depth") && args.GetI("queue-depth", 0) < 0) {
    std::fprintf(stderr, "error: --queue-depth must be >= 0\n");
    return 1;
  }
  if ((args.Has("max-inflight") || args.Has("queue-depth")) && clients <= 1) {
    std::fprintf(stderr, "error: --max-inflight / --queue-depth shape the "
                         "admission of concurrent clients; combine with "
                         "--clients > 1\n");
    return 1;
  }
  if (args.Has("retry") && clients <= 1) {
    std::fprintf(stderr, "error: --retry only retries overloaded rejections, "
                         "which need contention; combine with --clients > 1\n");
    return 1;
  }

  PreparedQuery query;
  QueryStatus st = engine.Prepare(spec, &query);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.message().c_str());
    return 1;
  }

  if (use_service) return RunTwoPathService(args, engine, query, exec);

  if (clients > 1) {
    // Concurrent driver: every client shares the engine AND the prepared
    // query (the first executions race through the single-flight planner),
    // each with a private sink per execution.
    std::vector<std::thread> threads;
    std::vector<size_t> counts(static_cast<size_t>(clients), 0);
    std::vector<std::string> errors(static_cast<size_t>(clients));
    WallTimer timer;
    for (long c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        for (long run = 0; run < repeat; ++run) {
          TwoPathSink client_sink = TwoPathSink::Make(args);
          QueryStatus cst =
              engine.Execute(query, *client_sink.sink, exec, nullptr);
          if (!cst.ok()) {
            errors[static_cast<size_t>(c)] = cst.message();
            return;
          }
          counts[static_cast<size_t>(c)] = client_sink.Count();
        }
      });
    }
    for (auto& t : threads) t.join();
    const double sec = timer.Seconds();
    for (long c = 0; c < clients; ++c) {
      if (!errors[static_cast<size_t>(c)].empty()) {
        std::fprintf(stderr, "client %ld error: %s\n", c,
                     errors[static_cast<size_t>(c)].c_str());
        return 1;
      }
    }
    const double total = static_cast<double>(clients * repeat);
    std::printf("clients=%ld repeat=%ld: %.0f executions in %.3f s "
                "(%.1f q/s aggregate)\n",
                clients, repeat, total, sec, total / sec);
    for (long c = 0; c < clients; ++c) {
      if (counts[static_cast<size_t>(c)] != counts[0]) {
        std::fprintf(stderr,
                     "client %ld saw %zu results, client 0 saw %zu\n", c,
                     counts[static_cast<size_t>(c)], counts[0]);
        return 1;
      }
    }
    std::printf("every client: %zu results\n", counts[0]);
    return 0;
  }

  TwoPathSink out = TwoPathSink::Make(args);
  ExecStats stats;
  for (long run = 0; run < repeat; ++run) {
    TraceRecorder trace;
    ExecOptions run_exec = exec;
    if (args.Has("trace")) run_exec.trace = &trace;
    st = engine.Execute(query, *out.sink, run_exec, &stats);
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.message().c_str());
      return 1;
    }
    if (run == 0) {
      std::printf("plan: %s\n", stats.plan.ToString().c_str());
      std::printf("executed: %s\n", StrategyName(stats.executed));
    }
    std::printf("output: %zu %s in %.3f s\n", out.Count(), out.Label(),
                stats.seconds);
    if (args.Has("explain")) {
      std::printf("plan cache: %s\n", stats.plan_cache_hit ? "hit" : "miss");
      std::printf("early exit: light chunks skipped=%llu, heavy blocks "
                  "executed=%llu/%llu skipped=%llu\n",
                  static_cast<unsigned long long>(stats.light_chunks_skipped),
                  static_cast<unsigned long long>(stats.heavy_blocks_executed),
                  static_cast<unsigned long long>(stats.heavy_blocks_total),
                  static_cast<unsigned long long>(stats.heavy_blocks_skipped));
    }
    if (args.Has("trace")) PrintTrace(trace);
  }
  if (out.kind == TwoPathSink::Kind::kTopK) {
    for (const CountedPair& p :
         static_cast<TopKByCountSink*>(out.sink.get())->top()) {
      std::printf("  (%u, %u) witnesses %u\n", p.x, p.z, p.count);
    }
  } else if (out.kind == TwoPathSink::Kind::kPage) {
    auto* page = static_cast<PageSink*>(out.sink.get());
    std::printf("page [%llu, %llu): %zu results, %llu skipped exactly\n",
                static_cast<unsigned long long>(page->offset()),
                static_cast<unsigned long long>(page->offset() +
                                                page->limit()),
                page->size(),
                static_cast<unsigned long long>(page->skipped()));
  } else if (out.kind == TwoPathSink::Kind::kOrdered) {
    auto* ordered = static_cast<OrderedBySink*>(out.sink.get());
    const size_t show = std::min<size_t>(5, ordered->ranked().size());
    std::printf("order: %s (showing %zu of %zu)\n",
                ResultOrderName(ordered->order()), show,
                ordered->ranked().size());
    for (size_t i = 0; i < show; ++i) {
      const CountedPair& p = ordered->ranked()[i];
      std::printf("  (%u, %u) witnesses %u\n", p.x, p.z, p.count);
    }
  }
  if (args.Has("explain")) {
    PrintIsaLine();
    PrintPartitionRecord(stats.partition_used, stats.partition_row_bands,
                         stats.partition_col_bands,
                         stats.partition_blocks_scheduled,
                         stats.partition_blocks_pruned,
                         stats.partition_signature);
    PrintBlockChoices(stats.kernel_counts, stats.block_choices, stats.m1_nnz,
                      stats.heavy_density);
  }
  return 0;
}

int RunStar(const Args& args, const BinaryRelation& rel) {
  const long k = args.GetI("k", 3);
  if (k < 2 || k > 8) {
    std::fprintf(stderr, "--k must be in [2, 8]\n");
    return 1;
  }
  IndexedRelation idx(rel);
  std::vector<const IndexedRelation*> rels(static_cast<size_t>(k), &idx);
  JoinProjectOptions opts;
  opts.strategy = ParseStrategy(args.Get("strategy", "auto"));
  opts.threads = static_cast<int>(args.GetI("threads", 1));
  opts.heavy_path = ParseHeavyPath(args.Get("heavy-path", "auto"));
  opts.partition = ParsePartitionMode(args.Get("partition", "auto"));
  TraceRecorder trace;
  std::optional<TraceRecorder::Scope> root;
  if (args.Has("trace")) {
    opts.trace = &trace;
    root.emplace(&trace, "star");
    opts.trace_parent = root->id();
  }
  WallTimer timer;
  auto res = JoinProject::Star(rels, opts);
  if (root.has_value()) root->Close();
  std::printf("star k=%ld: %zu tuples in %.3f s (light %.3f s, heavy %.3f s, "
              "V %llu x %llu x W %llu)\n",
              k, res.tuples.size(), timer.Seconds(), res.light_seconds,
              res.heavy_seconds,
              static_cast<unsigned long long>(res.v_rows),
              static_cast<unsigned long long>(res.heavy_y),
              static_cast<unsigned long long>(res.w_rows));
  if (args.Has("explain")) {
    PrintIsaLine();
    std::printf("heavy part: V nnz=%llu density=%.3g blocks: dense=%llu "
                "csr-dense=%llu csr-csr=%llu\n",
                static_cast<unsigned long long>(res.v_nnz),
                res.heavy_density,
                static_cast<unsigned long long>(res.kernel_counts.dense),
                static_cast<unsigned long long>(res.kernel_counts.csr_dense),
                static_cast<unsigned long long>(res.kernel_counts.csr_csr));
    PrintPartitionRecord(res.partition_used, res.partition_row_bands,
                         res.partition_col_bands,
                         res.partition_blocks_scheduled,
                         res.partition_blocks_pruned,
                         res.partition_signature);
  }
  if (args.Has("trace")) PrintTrace(trace);
  return 0;
}

int RunSsj(const Args& args, const BinaryRelation& rel) {
  IndexedRelation idx(rel);
  SetFamily fam(idx);
  SsjOptions opts;
  opts.c = static_cast<uint32_t>(args.GetI("c", 2));
  opts.threads = static_cast<int>(args.GetI("threads", 1));
  opts.ordered = args.Has("ordered");
  const std::string algo = args.Get("algo", "mm");
  WallTimer timer;
  SsjResult res;
  if (algo == "sizeaware") {
    res = SizeAwareJoin(fam, opts);
  } else if (algo == "sizeaware++") {
    res = SizeAwarePlusPlus(fam, opts);
  } else {
    res = MmSsj(fam, opts);
  }
  std::printf("ssj c=%u algo=%s: %zu pairs in %.3f s\n", opts.c, algo.c_str(),
              res.size(), timer.Seconds());
  if (opts.ordered && !res.empty()) {
    std::printf("top pair: (%u, %u) overlap %u\n", res[0].a, res[0].b,
                res[0].overlap);
  }
  return 0;
}

int RunScj(const Args& args, const BinaryRelation& rel) {
  IndexedRelation idx(rel);
  SetFamily fam(idx);
  ScjOptions opts;
  opts.threads = static_cast<int>(args.GetI("threads", 1));
  const std::string algo = args.Get("algo", "mm");
  WallTimer timer;
  ScjResult res;
  if (algo == "pretti") {
    res = PrettiJoin(fam, opts);
  } else if (algo == "limit") {
    res = LimitPlusJoin(fam, opts);
  } else if (algo == "pie") {
    res = PieJoin(fam, opts);
  } else {
    res = MmScj(fam, opts);
  }
  std::printf("scj algo=%s: %zu containments in %.3f s\n", algo.c_str(),
              res.size(), timer.Seconds());
  return 0;
}

int RunBsi(const Args& args, const BinaryRelation& rel) {
  IndexedRelation idx(rel);
  SetFamily fam(idx);
  const auto batch_size = static_cast<size_t>(args.GetI("batch", 1000));
  const double rate = args.GetD("rate", 1000.0);
  BsiOptions opts;
  opts.threads = static_cast<int>(args.GetI("threads", 1));
  auto batch = SampleBsiWorkload(fam, fam, batch_size, 7);
  WallTimer timer;
  auto answers = BsiAnswerBatchMm(fam, fam, batch, opts);
  const double sec = timer.Seconds();
  size_t positive = 0;
  for (uint8_t a : answers) positive += a;
  const auto est = EstimateBsiLatency(rate, batch_size, sec);
  std::printf("bsi batch=%zu: %zu/%zu intersecting, batch time %.3f s\n",
              batch_size, positive, answers.size(), sec);
  std::printf("avg delay %.3f s, machines %.0f (B = %.0f q/s)\n",
              est.avg_delay_seconds, est.machines, rate);
  return 0;
}

int RunTriangles(const Args& args, const BinaryRelation& rel) {
  // Bipartite set-element relations are triangle-free; with --input we
  // symmetrize the given graph, otherwise we generate an Example-1 style
  // community graph (--communities, --community-size, --p).
  BinaryRelation sym;
  if (args.Has("input")) {
    for (const Tuple& t : rel.tuples()) {
      sym.Add(t.x, t.y);
      sym.Add(t.y, t.x);
    }
    sym.Finalize();
  } else {
    sym = CommunityGraph(
        static_cast<uint32_t>(args.GetI("communities", 4)),
        static_cast<uint32_t>(args.GetI("community-size", 200)),
        args.GetD("p", 0.5), static_cast<uint64_t>(args.GetI("seed", 42)));
  }
  IndexedRelation idx(sym);
  TriangleCountOptions opts;
  opts.threads = static_cast<int>(args.GetI("threads", 1));
  opts.heavy_path = ParseHeavyPath(args.Get("heavy-path", "auto"));
  TraceRecorder trace;
  std::optional<TraceRecorder::Scope> root;
  if (args.Has("trace")) {
    opts.trace = &trace;
    root.emplace(&trace, "triangles");
    opts.trace_parent = root->id();
  }
  WallTimer timer;
  auto res = CountTrianglesMm(idx, opts);
  if (root.has_value()) root->Close();
  std::printf("triangles: %llu (light %llu, heavy %llu; delta %llu) in "
              "%.3f s\n",
              static_cast<unsigned long long>(res.triangles),
              static_cast<unsigned long long>(res.light_triangles),
              static_cast<unsigned long long>(res.heavy_triangles),
              static_cast<unsigned long long>(res.delta_used),
              timer.Seconds());
  if (args.Has("trace")) PrintTrace(trace);
  return 0;
}

void PrintUsage() {
  std::fprintf(stderr,
               "usage: jpmm_cli "
               "<stats|twopath|star|ssj|scj|bsi|triangles> [options]\n"
               "see the header of tools/jpmm_cli.cpp for the option list\n");
}

}  // namespace

int main(int argc, char** argv) {
  auto args = Parse(argc, argv);
  if (!args.has_value()) {
    PrintUsage();
    return 2;
  }
  // Execution failures — including FailPoints armed via JPMM_FAILPOINTS —
  // come back as a structured error line, not an abort.
  try {
    if (const int irc = ApplyIsaFlag(*args); irc != 0) return irc;
    auto rel = LoadDataset(*args);
    if (!rel.has_value()) return 1;

    int rc = -1;
    if (args->command == "stats") rc = RunStats(*args, *rel);
    else if (args->command == "twopath")
      rc = RunTwoPath(*args, std::move(*rel));
    else if (args->command == "star") rc = RunStar(*args, *rel);
    else if (args->command == "ssj") rc = RunSsj(*args, *rel);
    else if (args->command == "scj") rc = RunScj(*args, *rel);
    else if (args->command == "bsi") rc = RunBsi(*args, *rel);
    else if (args->command == "triangles") rc = RunTriangles(*args, *rel);
    if (rc >= 0) {
      // Dump after the command so the registry holds this run's counters.
      if (args->Has("metrics") && rc == 0) {
        const int mrc = DumpMetrics(args->Get("metrics"));
        if (mrc != 0) return mrc;
      }
      return rc;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  PrintUsage();
  return 2;
}
