// Quickstart: evaluate a join-project query with jpmm.
//
//   SELECT DISTINCT R1.x, R2.x FROM R AS R1, R AS R2 WHERE R1.y = R2.y
//
// i.e. Q(x, z) = R(x,y), S(z,y) with y projected out — the paper's 2-path
// query. Build a relation, let the cost-based optimizer pick a strategy,
// and inspect the result.

#include <cstdio>

#include "core/join_project.h"
#include "datagen/generators.h"

using namespace jpmm;

int main() {
  // A small "friendship" graph shaped like the paper's Example 1: a few
  // dense communities. The full join is much larger than the projected
  // result, which is where matrix multiplication pays off.
  BinaryRelation friends = CommunityGraph(/*communities=*/4,
                                          /*community_size=*/64,
                                          /*p_in=*/0.6, /*seed=*/7);
  std::printf("input: %zu edges\n", friends.size());

  // 1. Default evaluation: the optimizer picks the plan.
  JoinProjectOptions opts;
  opts.strategy = Strategy::kAuto;
  auto result = JoinProject::TwoPath(friends, friends, opts);
  std::printf("auto plan      : %s\n", result.plan.ToString().c_str());
  std::printf("executed       : %s\n", StrategyName(result.executed));
  std::printf("|OUT|          : %zu pairs (%.1fx duplication in the join)\n",
              result.size(),
              static_cast<double>(result.plan.full_join_size) /
                  static_cast<double>(result.size()));
  std::printf("wall time      : %.3f s\n\n", result.seconds);

  // 2. Force Algorithm 1 (MMJoin) and count witnesses: how many common
  //    friends does each user pair have?
  opts.strategy = Strategy::kMmJoin;
  opts.count_witnesses = true;
  opts.min_count = 2;  // at least 2 common friends
  auto counted = JoinProject::TwoPath(friends, friends, opts);
  std::printf("pairs with >= 2 common friends: %zu\n", counted.counted.size());

  uint32_t best = 0;
  OutPair best_pair{0, 0};
  for (const CountedPair& p : counted.counted) {
    if (p.x < p.z && p.count > best) {
      best = p.count;
      best_pair = OutPair{p.x, p.z};
    }
  }
  std::printf("most-connected pair: (%u, %u) with %u common friends\n",
              best_pair.x, best_pair.z, best);

  // 3. Compare against the combinatorial evaluation.
  JoinProjectOptions nonmm;
  nonmm.strategy = Strategy::kNonMmJoin;
  auto baseline = JoinProject::TwoPath(friends, friends, nonmm);
  std::printf("\nNon-MM result agrees: %s (%zu pairs)\n",
              baseline.size() == result.size() ? "yes" : "NO",
              baseline.size());
  return 0;
}
