// Quickstart: evaluate a join-project query with jpmm.
//
//   SELECT DISTINCT R1.x, R2.x FROM R AS R1, R AS R2 WHERE R1.y = R2.y
//
// i.e. Q(x, z) = R(x,y), S(z,y) with y projected out — the paper's 2-path
// query. Register the relation with a QueryEngine, prepare the query once,
// and execute it against different ResultSinks: materialize everything,
// count only, stop at a limit, or keep the top-k by witness count —
// output-sensitive consumers never pay for full materialization.

#include <cstdio>

#include "core/query_engine.h"
#include "core/result_sink.h"
#include "datagen/generators.h"

using namespace jpmm;

int main() {
  // A small "friendship" graph shaped like the paper's Example 1: a few
  // dense communities. The full join is much larger than the projected
  // result, which is where matrix multiplication pays off.
  BinaryRelation friends = CommunityGraph(/*communities=*/4,
                                          /*community_size=*/64,
                                          /*p_in=*/0.6, /*seed=*/7);
  std::printf("input: %zu edges\n", friends.size());

  QueryEngine engine;
  engine.catalog().Put("friends", std::move(friends));

  // 1. Default evaluation: prepare once (indexes + operand stats), let the
  //    optimizer pick the plan on the first execution.
  QuerySpec spec;
  spec.kind = QueryKind::kTwoPath;
  spec.relations = {"friends"};

  PreparedQuery query;
  QueryStatus st = engine.Prepare(spec, &query);
  if (!st.ok()) {
    std::fprintf(stderr, "prepare failed: %s\n", st.message().c_str());
    return 1;
  }

  VectorSink all;
  ExecStats stats;
  st = engine.Execute(query, all, {}, &stats);
  if (!st.ok()) {
    std::fprintf(stderr, "execute failed: %s\n", st.message().c_str());
    return 1;
  }
  std::printf("auto plan      : %s\n", stats.plan.ToString().c_str());
  std::printf("executed       : %s\n", StrategyName(stats.executed));
  std::printf("|OUT|          : %zu pairs (%.1fx duplication in the join)\n",
              all.size(),
              static_cast<double>(stats.plan.full_join_size) /
                  static_cast<double>(all.size()));
  std::printf("wall time      : %.3f s\n\n", stats.seconds);

  // 2. Re-execute the SAME prepared query with different sinks: the plan
  //    is cached, so these skip optimization entirely.
  CountOnlySink counter;
  engine.Execute(query, counter, {}, &stats);
  std::printf("count-only     : %llu pairs (plan cache %s)\n",
              static_cast<unsigned long long>(counter.count()),
              stats.plan_cache_hit ? "hit" : "miss");

  LimitSink first10(10);
  engine.Execute(query, first10, {}, &stats);
  std::printf("limit 10       : %zu pairs, heavy blocks skipped %llu/%llu\n",
              first10.size(),
              static_cast<unsigned long long>(stats.heavy_blocks_skipped),
              static_cast<unsigned long long>(stats.heavy_blocks_total));

  // 3. Top-k by witness count: "which user pairs share the most friends?"
  //    Counting needs its own spec (witness counts change the plan's work).
  QuerySpec counted_spec = spec;
  counted_spec.count_witnesses = true;
  counted_spec.min_count = 2;  // at least 2 common friends

  PreparedQuery counted_query;
  engine.Prepare(counted_spec, &counted_query);
  CountOnlySink pair_count;
  engine.Execute(counted_query, pair_count, {});
  std::printf("pairs with >= 2 common friends: %llu\n",
              static_cast<unsigned long long>(pair_count.count()));

  // Self pairs (x == z, a user with their own friend list) top every count
  // ranking, so ask for enough entries to reach the first real pair.
  TopKByCountSink ranked(512);
  engine.Execute(counted_query, ranked, {});
  for (const CountedPair& p : ranked.top()) {
    if (p.x < p.z) {
      std::printf("most-connected pair: (%u, %u) with %u common friends\n",
                  p.x, p.z, p.count);
      break;
    }
  }

  // 4. Cross-check the combinatorial strategy against the default — the
  //    pair sets must agree exactly.
  QuerySpec nonmm_spec = spec;
  nonmm_spec.strategy = Strategy::kNonMmJoin;
  VectorSink baseline;
  engine.Run(nonmm_spec, baseline, {});
  std::printf("\nNon-MM result agrees: %s (%zu pairs)\n",
              baseline.size() == all.size() ? "yes" : "NO", baseline.size());
  return 0;
}
