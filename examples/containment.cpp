// Set containment join across the four engines (§4, Fig 4c).
//
// MMJoin computes the counted join-project and reads containment off the
// witness counts (|r INTERSECT s| = |r|); the trie-based algorithms
// (PRETTI, PIEJoin) and LIMIT+ verify candidates pair by pair.

#include <cstdio>

#include "common/timer.h"
#include "datagen/presets.h"
#include "scj/limit_plus.h"
#include "scj/mm_scj.h"
#include "scj/piejoin.h"
#include "scj/pretti.h"
#include "storage/set_family.h"

using namespace jpmm;

int main() {
  // Protein-shaped family: large dense sets, where merge-based
  // verification is the trie algorithms' bottleneck.
  BinaryRelation rel = MakePreset(DatasetPreset::kProtein, /*scale=*/0.4);
  IndexedRelation idx(rel);
  SetFamily fam(idx);
  std::printf("sets: %s\n\n", fam.Stats().ToString().c_str());

  struct Engine {
    const char* name;
    ScjResult (*run)(const SetFamily&, const ScjOptions&);
  };
  const Engine engines[] = {
      {"PRETTI", [](const SetFamily& f, const ScjOptions& o) {
         return PrettiJoin(f, o);
       }},
      {"LIMIT+", [](const SetFamily& f, const ScjOptions& o) {
         return LimitPlusJoin(f, o);
       }},
      {"PIEJoin", [](const SetFamily& f, const ScjOptions& o) {
         return PieJoin(f, o);
       }},
      {"MM-SCJ", [](const SetFamily& f, const ScjOptions& o) {
         return MmScj(f, o);
       }},
  };

  ScjResult reference;
  for (const Engine& e : engines) {
    WallTimer timer;
    ScjResult res = e.run(fam, ScjOptions{});
    const double sec = timer.Seconds();
    if (reference.empty() && res.empty()) {
      // fine — keep looking for a non-empty reference
    } else if (reference.empty()) {
      reference = res;
    }
    const bool agrees = reference.empty() || res == reference;
    std::printf("%-8s: %6zu containments in %8.3f s%s\n", e.name, res.size(),
                sec, agrees ? "" : "  <-- MISMATCH");
  }

  if (!reference.empty()) {
    std::printf("\nexample containment: set %u is a subset of set %u\n",
                reference[0].sub, reference[0].super);
  }
  return 0;
}
