// Entity matching via set similarity join (§1, first application).
//
// Records are sets of tokens; two records match when they share at least c
// tokens. Compares the three SSJ engines (SizeAware, SizeAware++, MMJoin)
// and shows ordered enumeration — most similar pairs first.

#include <algorithm>
#include <cstdio>

#include "common/timer.h"
#include "datagen/presets.h"
#include "ssj/mm_ssj.h"
#include "ssj/size_aware.h"
#include "ssj/size_aware_pp.h"
#include "storage/set_family.h"

using namespace jpmm;

int main() {
  // Jokes-shaped token sets: dense, many shared tokens => many duplicates
  // in the underlying join, the regime where MMJoin shines.
  BinaryRelation records = MakePreset(DatasetPreset::kJokes, /*scale=*/0.5);
  IndexedRelation idx(records);
  SetFamily fam(idx);
  std::printf("records: %s\n\n", fam.Stats().ToString().c_str());

  SsjOptions opts;
  opts.c = 3;

  WallTimer t1;
  SsjResult size_aware = SizeAwareJoin(fam, opts);
  const double t_sa = t1.Seconds();

  WallTimer t2;
  SsjResult size_aware_pp = SizeAwarePlusPlus(fam, opts);
  const double t_sapp = t2.Seconds();

  WallTimer t3;
  SsjResult mm = MmSsj(fam, opts);
  const double t_mm = t3.Seconds();

  std::printf("matches with >= %u shared tokens: %zu pairs\n", opts.c,
              mm.size());
  std::printf("  SizeAware   : %8.3f s\n", t_sa);
  std::printf("  SizeAware++ : %8.3f s\n", t_sapp);
  std::printf("  MMJoin      : %8.3f s\n", t_mm);
  std::printf("results agree : %s\n\n",
              (size_aware == size_aware_pp && size_aware == mm) ? "yes"
                                                                : "NO");

  // Ordered enumeration: the matrix product yields overlap counts for
  // free, so "most similar first" is just a sort.
  opts.ordered = true;
  SsjResult ordered = MmSsj(fam, opts);
  std::printf("top 5 most similar record pairs:\n");
  for (size_t i = 0; i < std::min<size_t>(5, ordered.size()); ++i) {
    std::printf("  records (%u, %u): %u shared tokens\n", ordered[i].a,
                ordered[i].b, ordered[i].overlap);
  }
  return 0;
}
