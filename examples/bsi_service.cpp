// Boolean set intersection as an online API (§3.3).
//
// Thousands of "do sets a and b intersect?" requests per second are
// batched into the conjunctive query Qbatch(x,z) = R(x,y), S(z,y), T(x,z)
// and answered together. The demo sweeps batch sizes and reports the §3.3
// service metrics: average delay and machines needed to keep up.

#include <cstdio>

#include "bsi/bsi.h"
#include "bsi/latency_sim.h"
#include "bsi/workload.h"
#include "common/timer.h"
#include "datagen/presets.h"
#include "storage/set_family.h"

using namespace jpmm;

int main() {
  BinaryRelation rel = MakePreset(DatasetPreset::kImage, /*scale=*/0.5);
  IndexedRelation idx(rel);
  SetFamily fam(idx);
  std::printf("sets: %s\n", fam.Stats().ToString().c_str());

  const double arrival_rate = 1000.0;  // B = 1000 queries/second (Fig 6)
  std::printf("arrival rate: %.0f queries/s\n\n", arrival_rate);
  std::printf("%8s  %12s  %12s  %10s  %10s\n", "batch", "mm delay(s)",
              "wcoj delay(s)", "mm mach", "wcoj mach");

  for (size_t batch_size : {200, 500, 1000, 2000}) {
    auto batch = SampleBsiWorkload(fam, fam, batch_size, 42 + batch_size);

    WallTimer tm;
    auto mm_answers = BsiAnswerBatchMm(fam, fam, batch);
    const double mm_sec = tm.Seconds();

    WallTimer tn;
    auto nonmm_answers = BsiAnswerBatchNonMm(fam, fam, batch);
    const double nonmm_sec = tn.Seconds();

    if (mm_answers != nonmm_answers) {
      std::printf("strategies disagree — bug!\n");
      return 1;
    }

    const auto mm = EstimateBsiLatency(arrival_rate, batch_size, mm_sec);
    const auto nm = EstimateBsiLatency(arrival_rate, batch_size, nonmm_sec);
    std::printf("%8zu  %12.3f  %12.3f  %10.0f  %10.0f\n", batch_size,
                mm.avg_delay_seconds, nm.avg_delay_seconds, mm.machines,
                nm.machines);
  }

  std::printf(
      "\nLarger batches amortize the join: fewer machines at a small\n"
      "latency cost — the Prop. 2 trade-off.\n");
  return 0;
}
