// query_service: the overload-safe serving layer over one shared engine.
//
// QueryService wraps QueryEngine with everything a real endpoint needs to
// survive more load than it was provisioned for. This example walks the
// whole lifecycle a request can take, in order:
//
//   1. admit    — a free execution slot: runs immediately
//   2. queue    — slots busy, bounded FIFO queue has room: waits its turn
//   3. degrade  — admitted, but the per-query share of the memory budget
//                 is below the MM floor: re-plans onto the combinatorial
//                 strategy (degraded=true in ExecStats, answer unchanged)
//   4. shed     — queue full: structured kOverloaded with the queue depth
//                 and a retry-after hint, nothing executed
//   5. retry    — RetryWithBackoff turns sheds into eventual completions
//                 with jittered exponential backoff
//
// plus the deadline path: a request whose deadline fires mid-run stops at
// the next chunk boundary and reports exactly what it executed/skipped —
// and the observability exports an embedder wires to its dashboards: a
// per-request stage trace (TraceRecorder) and the process-wide metrics
// registry (QueryService::MetricsSnapshot / PrometheusText).

#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "core/query_engine.h"
#include "core/query_service.h"
#include "core/result_sink.h"
#include "core/trace.h"
#include "datagen/presets.h"

using namespace jpmm;

namespace {

const char* StatusName(const QueryStatus& st) {
  return StatusCodeName(st.code());
}

// Counts like CountOnlySink but holds its execution slot for a fixed time
// first, so the example's contention window is deterministic: while a slow
// request occupies the one slot, later arrivals queue and then shed.
class SlowStartCountSink : public CountOnlySink {
 public:
  explicit SlowStartCountSink(int hold_ms) : hold_ms_(hold_ms) {}
  void Open(int num_shards) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(hold_ms_));
    CountOnlySink::Open(num_shards);
  }

 private:
  const int hold_ms_;
};

}  // namespace

int main() {
  QueryEngine engine;
  engine.catalog().Put("ratings", MakePreset(DatasetPreset::kJokes,
                                             /*scale=*/0.4, /*seed=*/42));

  QuerySpec spec;
  spec.kind = QueryKind::kTwoPath;
  spec.relations = {"ratings"};

  PreparedQuery query;
  QueryStatus st = engine.Prepare(spec, &query);
  if (!st.ok()) {
    std::fprintf(stderr, "prepare failed: %s\n", st.message().c_str());
    return 1;
  }

  // The unloaded answer — every completed execution below must match it.
  CountOnlySink oracle_sink;
  engine.Execute(query, oracle_sink, {});
  const uint64_t oracle = oracle_sink.count();
  std::printf("oracle: %llu results\n\n",
              static_cast<unsigned long long>(oracle));

  // A deliberately tiny service: one execution slot, one queue slot. Three
  // concurrent clients therefore exercise admit, queue, and shed at once.
  QueryServiceOptions opt;
  opt.max_inflight = 1;
  opt.queue_depth = 1;
  QueryService service(&engine, opt);

  // --- 1+2+4: admit / queue / shed under 3 clients -----------------------
  std::printf("three clients, capacity 1 running + 1 queued:\n");
  std::vector<std::thread> clients;
  std::mutex print_mu;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      // Stagger starts so the outcome order is deterministic: client 0
      // admits (and holds its slot for 250 ms), client 1 queues, client 2
      // finds the queue full and sheds.
      std::this_thread::sleep_for(std::chrono::milliseconds(40 * c));
      SlowStartCountSink sink(c == 0 ? 250 : 0);
      ExecStats stats;
      ServiceRequest req;
      QueryStatus cst = service.Execute(query, sink, req, &stats);
      std::lock_guard<std::mutex> lk(print_mu);
      if (cst.ok()) {
        std::printf("  client %d: %-10s %llu results%s\n", c, StatusName(cst),
                    static_cast<unsigned long long>(sink.count()),
                    sink.count() == oracle ? " (== oracle)" : " (MISMATCH!)");
      } else {
        std::printf("  client %d: %-10s %s\n", c, StatusName(cst),
                    cst.message().c_str());
        if (cst.code() == StatusCode::kOverloaded) {
          std::printf("            queue depth %llu, retry after %lld ms\n",
                      static_cast<unsigned long long>(cst.queue_depth()),
                      static_cast<long long>(cst.retry_after_ms()));
        }
      }
    });
  }
  for (auto& t : clients) t.join();

  // --- 5: the shed client's recovery path --------------------------------
  // RetryWithBackoff re-submits on kOverloaded with jittered exponential
  // backoff, floored at the service's retry-after hint. Re-create the
  // burst — one slow request holding the slot, one queued — so the first
  // attempt sheds, then watch the backoff convert the shed into a result.
  std::printf("\nshed client retries with backoff:\n");
  std::thread holder([&] {
    SlowStartCountSink slow(120);
    service.Execute(query, slow, {});
  });
  std::thread waiter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    CountOnlySink sink;
    service.Execute(query, sink, {});
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  uint64_t retried_count = 0;
  int attempts = 0;
  RetryOptions retry;
  retry.max_attempts = 6;
  retry.base_ms = 20;
  retry.max_ms = 200;
  st = RetryWithBackoff(
      [&] {
        ++attempts;
        CountOnlySink sink;
        QueryStatus s = service.Execute(query, sink, {});
        if (s.ok()) retried_count = sink.count();
        return s;
      },
      retry);
  holder.join();
  waiter.join();
  std::printf("  final status %s after %d attempt%s, %llu results%s\n",
              StatusName(st), attempts, attempts == 1 ? "" : "s",
              static_cast<unsigned long long>(retried_count),
              st.ok() && retried_count == oracle ? " (== oracle)" : "");

  // --- 3: graceful degradation under a tight memory budget ---------------
  // A service whose per-query share of the budget is below the MM floor
  // re-plans MM-family queries onto the combinatorial strategy instead of
  // thrashing. Same answer, different plan, flagged in ExecStats.
  QueryServiceOptions tight;
  tight.memory_budget_bytes = 1ull << 20;  // 1 MiB share
  tight.min_mm_bytes = 1ull << 30;         // MM wants 1 GiB
  QueryService tight_service(&engine, tight);
  CountOnlySink degraded_sink;
  ExecStats degraded_stats;
  st = tight_service.Execute(query, degraded_sink, {}, &degraded_stats);
  std::printf("\ntight memory budget: %s, degraded=%s (%s), %llu results%s\n",
              StatusName(st), degraded_stats.degraded ? "yes" : "no",
              DegradeReasonName(degraded_stats.degrade_reason),
              static_cast<unsigned long long>(degraded_sink.count()),
              degraded_sink.count() == oracle ? " (== oracle)"
                                              : " (MISMATCH!)");

  // --- deadlines: stop at the next chunk boundary, account exactly -------
  VectorSink page;
  ExecStats dl_stats;
  ServiceRequest dl_req;
  dl_req.deadline_ms = 1;  // almost certainly fires mid-run
  st = service.Execute(query, page, dl_req, &dl_stats);
  std::printf("\n1 ms deadline: %s\n", StatusName(st));
  std::printf(
      "  light chunks %llu executed + %llu skipped = %llu total; heavy "
      "blocks %llu executed + %llu skipped = %llu total\n  the %zu "
      "delivered results are an exact prefix of the full answer\n",
      static_cast<unsigned long long>(dl_stats.light_chunks_executed),
      static_cast<unsigned long long>(dl_stats.light_chunks_skipped),
      static_cast<unsigned long long>(dl_stats.light_chunks_total),
      static_cast<unsigned long long>(dl_stats.heavy_blocks_executed),
      static_cast<unsigned long long>(dl_stats.heavy_blocks_skipped),
      static_cast<unsigned long long>(dl_stats.heavy_blocks_executed +
                                      dl_stats.heavy_blocks_skipped),
      page.size());

  ServiceStats totals = service.stats();
  std::printf(
      "\nservice counters: admitted=%llu completed=%llu shed=%llu "
      "deadline=%llu degraded=%llu max-queue-depth=%llu\n",
      static_cast<unsigned long long>(totals.admitted),
      static_cast<unsigned long long>(totals.completed),
      static_cast<unsigned long long>(totals.shed),
      static_cast<unsigned long long>(totals.deadline_exceeded),
      static_cast<unsigned long long>(totals.degraded),
      static_cast<unsigned long long>(totals.max_queue_depth));

  // --- observability: per-query trace + process-wide metrics -------------
  // Attaching a TraceRecorder to one request yields its stage tree: queue
  // wait next to plan, light pass, per-block heavy kernels, sink finish.
  TraceRecorder trace;
  ServiceRequest traced_req;
  traced_req.exec.trace = &trace;
  CountOnlySink traced_sink;
  st = service.Execute(query, traced_sink, traced_req);
  std::printf("\none traced request (%s):\n%s", StatusName(st),
              trace.Render().c_str());

  // MetricsSnapshot() is the embedder-facing registry view — cumulative
  // counters/gauges/histograms from every subsystem in the process (pool,
  // kernels, engine, service). A /metrics scrape endpoint would serve
  // MetricsRegistry::Global().PrometheusText() instead.
  const MetricsSnapshot snap = service.MetricsSnapshot();
  std::printf(
      "\nmetrics registry: %zu counters, %zu gauges, %zu histograms\n",
      snap.counters.size(), snap.gauges.size(), snap.histograms.size());
  const HistogramSnapshot& wait =
      snap.histograms.at("jpmm_service_queue_wait_ms");
  std::printf(
      "  jpmm_service_admitted_total = %llu\n"
      "  jpmm_service_queue_wait_ms: p50=%.2f ms p99=%.2f ms over %llu "
      "requests\n",
      static_cast<unsigned long long>(
          snap.counters.at("jpmm_service_admitted_total")),
      wait.Percentile(50.0), wait.Percentile(99.0),
      static_cast<unsigned long long>(wait.count));
  return 0;
}
