// query_service: a service-style loop over one shared QueryEngine.
//
// Models the ROADMAP's "serve heavy traffic" target at example scale: one
// engine owns the dataset, queries are prepared once at startup, and a
// simulated request stream executes them over and over with per-request
// sinks. Three request shapes a real endpoint would expose:
//
//   GET /similar?limit=10       -> LimitSink       (early exit, bounded work)
//   GET /similar/count          -> CountOnlySink   (no materialization)
//   GET /similar/top?k=5        -> TopKByCountSink (ranked, no full sort)
//
// The point to take away: request latency after the first execution is
// plan-cache-hit latency — the optimizer, operand stats, and indexes are
// all reused — and limit requests additionally skip most of the heavy
// product blocks (watch the skipped column).

#include <cstdio>

#include "core/query_engine.h"
#include "core/result_sink.h"
#include "datagen/presets.h"

using namespace jpmm;

int main() {
  // Startup: load the dataset once. The "jokes" preset is dense (real
  // heavy part), the shape under which matrix multiplication wins.
  QueryEngine engine;
  engine.catalog().Put("ratings", MakePreset(DatasetPreset::kJokes,
                                             /*scale=*/0.4, /*seed=*/42));

  QuerySpec spec;
  spec.kind = QueryKind::kTwoPath;
  spec.relations = {"ratings"};
  spec.count_witnesses = true;  // witness counts power top-k requests

  PreparedQuery query;
  QueryStatus st = engine.Prepare(spec, &query);
  if (!st.ok()) {
    std::fprintf(stderr, "prepare failed: %s\n", st.message().c_str());
    return 1;
  }

  std::printf("%-22s %10s %12s %10s %s\n", "request", "results", "latency",
              "plan", "heavy blocks run/skipped");

  auto report = [](const char* label, size_t results,
                   const ExecStats& stats) {
    std::printf("%-22s %10zu %9.3f ms %10s %llu/%llu\n", label, results,
                stats.seconds * 1e3, stats.plan_cache_hit ? "hit" : "miss",
                static_cast<unsigned long long>(stats.heavy_blocks_executed),
                static_cast<unsigned long long>(stats.heavy_blocks_skipped));
  };

  // Simulated request stream: 3 rounds of the three endpoint shapes.
  ExecStats stats;
  for (int round = 0; round < 3; ++round) {
    LimitSink limit10(10);
    st = engine.Execute(query, limit10, {}, &stats);
    if (!st.ok()) break;
    report("/similar?limit=10", limit10.size(), stats);

    CountOnlySink counter;
    st = engine.Execute(query, counter, {}, &stats);
    if (!st.ok()) break;
    report("/similar/count", static_cast<size_t>(counter.count()), stats);

    TopKByCountSink top5(5);
    st = engine.Execute(query, top5, {}, &stats);
    if (!st.ok()) break;
    report("/similar/top?k=5", top5.top().size(), stats);
  }
  if (!st.ok()) {
    std::fprintf(stderr, "execute failed: %s\n", st.message().c_str());
    return 1;
  }

  // A malformed request comes back as a structured error, not an abort —
  // the service keeps running.
  QuerySpec bad;
  bad.kind = QueryKind::kTwoPath;
  bad.relations = {"no_such_table"};
  PreparedQuery bad_query;
  st = engine.Prepare(bad, &bad_query);
  std::printf("\nbad request rejected: %s\n",
              st.ok() ? "UNEXPECTEDLY ACCEPTED" : st.message().c_str());
  return st.ok() ? 1 : 0;
}
