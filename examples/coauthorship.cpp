// Graph analytics: extracting a co-author graph from a bibliography view.
//
// §1's third application: the DBLP table R(author, paper) defines the
// implicit co-author view V(x, y) = R(x, p), R(y, p). Materializing V is a
// join-project; jpmm evaluates it output-sensitively instead of computing
// the (author, author, paper) join first.

#include <algorithm>
#include <cstdio>

#include "common/timer.h"
#include "core/join_project.h"
#include "datagen/presets.h"
#include "storage/set_family.h"

using namespace jpmm;

int main() {
  // DBLP-shaped bibliography (Table 2 regime, laptop scale).
  BinaryRelation author_paper =
      MakePreset(DatasetPreset::kDblp, /*scale=*/0.4);
  IndexedRelation idx(author_paper);
  SetFamily authors(idx);
  std::printf("bibliography: %s\n", authors.Stats().ToString().c_str());

  // Materialize the co-author view with witness counts: count = number of
  // joint papers.
  JoinProjectOptions opts;
  opts.strategy = Strategy::kAuto;
  opts.count_witnesses = true;
  WallTimer timer;
  auto view = JoinProject::TwoPath(idx, idx, opts);
  std::printf("co-author view: %zu directed pairs in %.3f s (plan: %s)\n",
              view.counted.size(), timer.Seconds(),
              view.plan.ToString().c_str());

  // Top collaborations.
  std::vector<CountedPair> top;
  for (const CountedPair& p : view.counted) {
    if (p.x < p.z) top.push_back(p);
  }
  std::partial_sort(top.begin(), top.begin() + std::min<size_t>(5, top.size()),
                    top.end(), [](const CountedPair& a, const CountedPair& b) {
                      return a.count > b.count;
                    });
  std::printf("top collaborations:\n");
  for (size_t i = 0; i < std::min<size_t>(5, top.size()); ++i) {
    std::printf("  authors (%u, %u): %u joint papers\n", top[i].x, top[i].z,
                top[i].count);
  }

  // The boolean-API scenario: "have a1 and a2 ever co-authored?" is a
  // membership probe into the materialized view.
  if (!top.empty()) {
    const CountedPair q = top[0];
    const bool coauthored =
        std::any_of(view.counted.begin(), view.counted.end(),
                    [&](const CountedPair& p) {
                      return p.x == q.x && p.z == q.z;
                    });
    std::printf("API probe: authors (%u, %u) co-authored? %s\n", q.x, q.z,
                coauthored ? "yes" : "no");
  }
  return 0;
}
