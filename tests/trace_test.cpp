// TraceRecorder + end-to-end span-tree tests.
//
// The balance invariant is the contract everything downstream (the CLI
// renderer, the coverage number, embedder dashboards) relies on: every
// opened span is closed on EVERY exit path — normal completion, limit
// early-exit, explicit cancel, and deadline truncation — and the per-kernel
// block spans agree exactly with ExecStats block accounting
// (executed + skipped == total).

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "core/cancel_token.h"
#include "core/query_engine.h"
#include "core/query_service.h"
#include "core/result_sink.h"
#include "core/trace.h"
#include "datagen/generators.h"

namespace jpmm {
namespace {

// ---- Recorder unit tests -------------------------------------------------

TEST(TraceRecorder, NestedSpansAndBalance) {
  TraceRecorder rec;
  const auto root = rec.Begin("root");
  const auto child = rec.Begin("child", root);
  EXPECT_FALSE(rec.AllClosed());
  rec.End(child, "detail");
  rec.End(root);
  EXPECT_TRUE(rec.AllClosed());
  ASSERT_EQ(rec.size(), 2u);
  const std::vector<TraceSpan> spans = rec.spans();
  EXPECT_EQ(spans[0].parent, TraceRecorder::kNoParent);
  EXPECT_EQ(spans[1].parent, root);
  EXPECT_EQ(spans[1].detail, "detail");
  EXPECT_GE(spans[0].end_s, spans[0].begin_s);
}

TEST(TraceRecorder, ScopeRaiiIsIdempotentAndNullSafe) {
  TraceRecorder rec;
  {
    TraceRecorder::Scope s(&rec, "a");
    s.Close("done");
    s.Close();  // second close is a no-op
  }
  EXPECT_TRUE(rec.AllClosed());
  EXPECT_EQ(rec.spans()[0].detail, "done");

  {
    TraceRecorder::Scope null_scope(nullptr, "ghost");
    EXPECT_EQ(null_scope.id(), TraceRecorder::kNoParent);
  }  // must not crash
  EXPECT_EQ(TraceBegin(nullptr, "ghost"), TraceRecorder::kNoParent);
  TraceEnd(nullptr, TraceRecorder::kNoParent);

  {
    TraceRecorder::Scope a(&rec, "moved");
    TraceRecorder::Scope b(std::move(a));
  }  // exactly one close despite two destructors
  EXPECT_TRUE(rec.AllClosed());
  EXPECT_EQ(rec.CountNamed("moved"), 1u);
}

TEST(TraceRecorder, LeakedSpanDetected) {
  TraceRecorder rec;
  rec.Begin("leaked");
  EXPECT_FALSE(rec.AllClosed());
}

TEST(TraceRecorder, CountNamedAndRender) {
  TraceRecorder rec;
  const auto root = rec.Begin("root");
  for (int i = 0; i < 3; ++i) rec.End(rec.Begin("block:dense", root));
  rec.End(rec.Begin("block:csr-csr", root));
  rec.End(root);
  EXPECT_EQ(rec.CountNamed("block:dense"), 3u);
  EXPECT_EQ(rec.CountNamed("block:csr-csr"), 1u);
  EXPECT_EQ(rec.CountNamed("missing"), 0u);
  const std::string tree = rec.Render();
  EXPECT_NE(tree.find("root"), std::string::npos);
  EXPECT_NE(tree.find("block:dense x3"), std::string::npos);
}

TEST(TraceRecorder, ChildCoverageFullyAttributedTree) {
  TraceRecorder rec;
  const auto root = rec.Begin("root");
  const auto child = rec.Begin("stage", root);
  // Busy-wait a hair so durations are nonzero even on coarse clocks.
  const auto until = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(2);
  while (std::chrono::steady_clock::now() < until) {
  }
  rec.End(child);
  rec.End(root);
  EXPECT_GT(rec.ChildCoverage(), 0.5);
  EXPECT_LE(rec.ChildCoverage(), 1.0 + 1e-9);
}

// ---- End-to-end: engine span trees ---------------------------------------

BinaryRelation SkewedGraph() {
  return CommunityGraph(/*communities=*/4, /*community_size=*/60,
                        /*p_in=*/0.5, /*seed=*/11);
}

QuerySpec TwoPathSpec(Strategy strategy) {
  QuerySpec spec;
  spec.kind = QueryKind::kTwoPath;
  spec.relations = {"R"};
  spec.strategy = strategy;
  return spec;
}

// Every span in an ExecStats::trace_spans copy must be closed.
void ExpectAllSpansClosed(const std::vector<TraceSpan>& spans) {
  ASSERT_FALSE(spans.empty());
  for (const TraceSpan& s : spans) {
    EXPECT_GE(s.end_s, 0.0) << "open span leaked: " << s.name;
    EXPECT_GE(s.end_s, s.begin_s) << s.name;
  }
}

uint64_t BlockSpanCount(const TraceRecorder& rec) {
  return static_cast<uint64_t>(rec.CountNamed("block:dense") +
                               rec.CountNamed("block:csr-dense") +
                               rec.CountNamed("block:csr-csr"));
}

TEST(TraceEndToEnd, MmJoinSpanTreeBalancedWithBlockAttribution) {
  QueryEngine engine;
  engine.catalog().Put("R", SkewedGraph());
  PreparedQuery q;
  ASSERT_TRUE(engine.Prepare(TwoPathSpec(Strategy::kMmJoin), &q).ok());

  TraceRecorder trace;
  ExecOptions exec;
  exec.trace = &trace;
  exec.thresholds = {8, 8};  // force a real heavy part
  CountOnlySink sink;
  ExecStats stats;
  ASSERT_TRUE(engine.Execute(q, sink, exec, &stats).ok());

  EXPECT_TRUE(trace.AllClosed());
  ExpectAllSpansClosed(stats.trace_spans);
  EXPECT_EQ(trace.CountNamed("execute"), 1u);
  EXPECT_EQ(trace.CountNamed("plan"), 1u);
  // Per-kernel block spans match the stats accounting exactly.
  EXPECT_GT(stats.heavy_blocks_total, 0u);
  EXPECT_EQ(BlockSpanCount(trace), stats.heavy_blocks_executed);
  EXPECT_EQ(stats.heavy_blocks_executed + stats.heavy_blocks_skipped,
            stats.heavy_blocks_total);
  EXPECT_EQ(trace.CountNamed("light-chunk"), stats.light_chunks_executed);
}

TEST(TraceEndToEnd, SpanTreeBalancedOnEveryStrategy) {
  QueryEngine engine;
  engine.catalog().Put("R", SkewedGraph());
  for (Strategy s : {Strategy::kMmJoin, Strategy::kNonMmJoin,
                     Strategy::kWcojFull}) {
    PreparedQuery q;
    ASSERT_TRUE(engine.Prepare(TwoPathSpec(s), &q).ok());
    TraceRecorder trace;
    ExecOptions exec;
    exec.trace = &trace;
    CountOnlySink sink;
    ExecStats stats;
    ASSERT_TRUE(engine.Execute(q, sink, exec, &stats).ok())
        << StrategyName(s);
    EXPECT_TRUE(trace.AllClosed()) << StrategyName(s);
    ExpectAllSpansClosed(stats.trace_spans);
  }
}

TEST(TraceEndToEnd, BalancedOnLimitEarlyExit) {
  QueryEngine engine;
  engine.catalog().Put("R", SkewedGraph());
  for (Strategy s : {Strategy::kMmJoin, Strategy::kNonMmJoin}) {
    PreparedQuery q;
    ASSERT_TRUE(engine.Prepare(TwoPathSpec(s), &q).ok());
    TraceRecorder trace;
    ExecOptions exec;
    exec.trace = &trace;
    exec.thresholds = {8, 8};
    LimitSink sink(1);  // done after the first delivered pair
    ExecStats stats;
    ASSERT_TRUE(engine.Execute(q, sink, exec, &stats).ok())
        << StrategyName(s);
    EXPECT_TRUE(trace.AllClosed()) << StrategyName(s);
    // Skipped work still accounts: spans only cover executed blocks.
    EXPECT_EQ(stats.heavy_blocks_executed + stats.heavy_blocks_skipped,
              stats.heavy_blocks_total)
        << StrategyName(s);
    // Per-kernel block spans exist only on the MM path; the combinatorial
    // heavy part runs no product kernels.
    if (s == Strategy::kMmJoin) {
      EXPECT_EQ(BlockSpanCount(trace), stats.heavy_blocks_executed);
    }
  }
}

TEST(TraceEndToEnd, BalancedOnPreFiredCancel) {
  QueryEngine engine;
  engine.catalog().Put("R", SkewedGraph());
  PreparedQuery q;
  ASSERT_TRUE(engine.Prepare(TwoPathSpec(Strategy::kMmJoin), &q).ok());
  CancelToken token;
  token.RequestCancel();  // fires before the first poll
  TraceRecorder trace;
  ExecOptions exec;
  exec.trace = &trace;
  exec.cancel = &token;
  exec.thresholds = {8, 8};
  CountOnlySink sink;
  ExecStats stats;
  ASSERT_TRUE(engine.Execute(q, sink, exec, &stats).ok());
  EXPECT_TRUE(stats.interrupted);
  EXPECT_TRUE(trace.AllClosed());
  ExpectAllSpansClosed(stats.trace_spans);
  EXPECT_EQ(stats.heavy_blocks_executed + stats.heavy_blocks_skipped,
            stats.heavy_blocks_total);
  EXPECT_EQ(BlockSpanCount(trace), stats.heavy_blocks_executed);
}

// ---- End-to-end: service span trees --------------------------------------

TEST(TraceEndToEnd, ServiceNestsEngineTreeUnderRequest) {
  QueryEngine engine;
  engine.catalog().Put("R", SkewedGraph());
  QueryService service(&engine);

  TraceRecorder trace;
  ServiceRequest req;
  req.exec.trace = &trace;
  CountOnlySink sink;
  ExecStats stats;
  QueryStatus st = service.Run(TwoPathSpec(Strategy::kAuto), sink, req,
                               &stats);
  ASSERT_TRUE(st.ok()) << st.message();

  EXPECT_TRUE(trace.AllClosed());
  ExpectAllSpansClosed(stats.trace_spans);
  EXPECT_EQ(trace.CountNamed("request"), 1u);
  EXPECT_EQ(trace.CountNamed("queue-wait"), 1u);
  EXPECT_EQ(trace.CountNamed("execute"), 1u);
  // "execute" is a child of "request".
  const std::vector<TraceSpan> spans = trace.spans();
  int32_t request_id = -1, execute_parent = -2;
  for (size_t i = 0; i < spans.size(); ++i) {
    if (std::string(spans[i].name) == "request") {
      request_id = static_cast<int32_t>(i);
    }
    if (std::string(spans[i].name) == "execute") {
      execute_parent = spans[i].parent;
    }
  }
  EXPECT_EQ(execute_parent, request_id);
}

TEST(TraceEndToEnd, ServiceDeadlineExitBalanced) {
  QueryEngine engine;
  engine.catalog().Put("R", SkewedGraph());
  QueryService service(&engine);

  TraceRecorder trace;
  ServiceRequest req;
  req.exec.trace = &trace;
  req.exec.thresholds = {8, 8};
  CancelToken token;
  token.SetDeadline(std::chrono::steady_clock::now());  // already expired
  req.exec.cancel = &token;
  CountOnlySink sink;
  ExecStats stats;
  QueryStatus st = service.Run(TwoPathSpec(Strategy::kMmJoin), sink, req,
                               &stats);
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded) << st.message();
  EXPECT_TRUE(trace.AllClosed());
  ExpectAllSpansClosed(stats.trace_spans);
  EXPECT_EQ(stats.heavy_blocks_executed + stats.heavy_blocks_skipped,
            stats.heavy_blocks_total);
}

// ---- ServiceStats debug rendering (StatusCodeName-style) ------------------

TEST(ServiceStatsToString, RendersEveryCounter) {
  QueryEngine engine;
  engine.catalog().Put("R", SkewedGraph());
  QueryService service(&engine);
  CountOnlySink sink;
  ASSERT_TRUE(service.Run(TwoPathSpec(Strategy::kAuto), sink, {}).ok());
  const std::string s = service.stats().ToString();
  EXPECT_NE(s.find("admitted=1"), std::string::npos) << s;
  EXPECT_NE(s.find("completed=1"), std::string::npos) << s;
  EXPECT_NE(s.find("shed=0"), std::string::npos) << s;
  EXPECT_NE(s.find("internal_errors=0"), std::string::npos) << s;
}

}  // namespace
}  // namespace jpmm
