// Randomized property suite: many seeds, every engine against the oracle,
// plus structural invariants (dedup-free output, witness-count consistency,
// Lemma-bound sanity).

#include <gtest/gtest.h>

#include <set>

#include "core/join_project.h"
#include "core/mm_join.h"
#include "core/nonmm_join.h"
#include "datagen/generators.h"
#include "join/star_wcoj.h"
#include "tests/test_util.h"

namespace jpmm {
namespace {

using testutil::OracleTwoPath;
using testutil::OracleTwoPathCounted;
using testutil::RandomRelation;
using testutil::Sorted;

class SeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeedSweep, AllTwoPathStrategiesMatchOracle) {
  const uint64_t seed = GetParam();
  // Vary shape with the seed: size, skew and density all change.
  const uint32_t nx = 20 + static_cast<uint32_t>(seed % 7) * 13;
  const uint32_t ny = 15 + static_cast<uint32_t>(seed % 5) * 11;
  const uint32_t tuples = nx * (3 + static_cast<uint32_t>(seed % 4) * 4);
  const double skew = 0.3 * static_cast<double>(seed % 5);
  BinaryRelation r = RandomRelation(nx, ny, tuples, skew, seed);
  BinaryRelation s = RandomRelation(nx + 3, ny, tuples, skew, seed ^ 0xff);
  const auto oracle = OracleTwoPath(r, s);

  IndexedRelation ri(r), si(s);
  for (Strategy strat :
       {Strategy::kMmJoin, Strategy::kNonMmJoin, Strategy::kWcojFull}) {
    JoinProjectOptions opts;
    opts.strategy = strat;
    opts.sorted = true;
    EXPECT_EQ(JoinProject::TwoPath(ri, si, opts).pairs, oracle)
        << "seed=" << seed << " strategy=" << StrategyName(strat);
  }
}

TEST_P(SeedSweep, CountsAreConsistentAcrossStrategies) {
  const uint64_t seed = GetParam();
  BinaryRelation r = RandomRelation(40, 25, 300, 0.9, seed * 31 + 7);
  IndexedRelation ri(r);
  const auto oracle = OracleTwoPathCounted(r, r);
  for (Strategy strat :
       {Strategy::kMmJoin, Strategy::kNonMmJoin, Strategy::kWcojFull}) {
    JoinProjectOptions opts;
    opts.strategy = strat;
    opts.count_witnesses = true;
    opts.sorted = true;
    EXPECT_EQ(JoinProject::TwoPath(ri, ri, opts).counted, oracle)
        << "seed=" << seed << " strategy=" << StrategyName(strat);
  }
}

TEST_P(SeedSweep, SumOfCountsEqualsFullJoinSize) {
  // Invariant: the witness counts of all output pairs sum to |OUT_join|.
  const uint64_t seed = GetParam();
  BinaryRelation r = RandomRelation(35, 20, 250, 1.1, seed * 17 + 3);
  IndexedRelation ri(r);
  JoinProjectOptions opts;
  opts.count_witnesses = true;
  auto out = JoinProject::TwoPath(ri, ri, opts);
  uint64_t total = 0;
  for (const CountedPair& p : out.counted) total += p.count;
  EXPECT_EQ(total, out.plan.full_join_size) << "seed=" << seed;
}

TEST_P(SeedSweep, OutputIsDuplicateFree) {
  const uint64_t seed = GetParam();
  BinaryRelation r = RandomRelation(50, 30, 400, 1.3, seed * 13 + 1);
  IndexedRelation ri(r);
  MmJoinOptions opts;
  opts.thresholds = {2 + seed % 5, 2 + seed % 7};
  auto res = MmJoinTwoPath(ri, ri, opts);
  std::set<std::pair<Value, Value>> seen;
  for (const OutPair& p : res.pairs) {
    EXPECT_TRUE(seen.insert({p.x, p.z}).second)
        << "duplicate (" << p.x << "," << p.z << ") seed=" << seed;
  }
}

TEST_P(SeedSweep, StarMatchesWcojAtRandomThresholds) {
  const uint64_t seed = GetParam();
  BinaryRelation r = RandomRelation(16, 12, 64, 0.8, seed * 7 + 5);
  IndexedRelation ri(r);
  std::vector<const IndexedRelation*> rels = {&ri, &ri, &ri};
  StarJoinOptions opts;
  opts.thresholds = {1 + seed % 4, 1 + seed % 6};
  auto mm = MmStarJoin(rels, opts);
  auto nonmm = NonMmStarJoin(rels, opts);
  auto wcoj = WcojStarJoin(rels);
  EXPECT_EQ(mm.tuples.flat(), wcoj.flat()) << "seed=" << seed;
  EXPECT_EQ(nonmm.tuples.flat(), wcoj.flat()) << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12, 13, 14, 15, 16, 17, 18, 19,
                                           20));

TEST(Property, ThresholdExtremesMatchEachOther) {
  // Delta = 1 (everything heavy) and Delta = N (everything light) are both
  // correct and equal.
  BinaryRelation r = RandomRelation(60, 35, 600, 1.0, 777);
  IndexedRelation ri(r);
  MmJoinOptions all_heavy;
  all_heavy.thresholds = {1, 1};
  MmJoinOptions all_light;
  all_light.thresholds = {100000, 100000};
  EXPECT_EQ(Sorted(MmJoinTwoPath(ri, ri, all_heavy).pairs),
            Sorted(MmJoinTwoPath(ri, ri, all_light).pairs));
}

TEST(Property, AsymmetricRelationsOfVeryDifferentSizes) {
  BinaryRelation small = RandomRelation(5, 40, 30, 0.5, 801);
  BinaryRelation large = RandomRelation(300, 40, 3000, 1.2, 802);
  IndexedRelation si(small), li(large);
  JoinProjectOptions opts;
  opts.sorted = true;
  opts.strategy = Strategy::kMmJoin;
  EXPECT_EQ(JoinProject::TwoPath(si, li, opts).pairs,
            testutil::OracleTwoPath(small, large));
  EXPECT_EQ(JoinProject::TwoPath(li, si, opts).pairs,
            testutil::OracleTwoPath(large, small));
}

TEST(Property, SingleHubRelation) {
  // One y value connected to everything: maximal heavy skew.
  BinaryRelation r;
  for (Value a = 0; a < 50; ++a) r.Add(a, 0);
  r.Add(0, 1);  // plus one light edge
  r.Finalize();
  IndexedRelation ri(r);
  MmJoinOptions opts;
  opts.thresholds = {2, 2};
  auto res = MmJoinTwoPath(ri, ri, opts);
  EXPECT_EQ(res.pairs.size(), 50u * 50u);  // complete bipartite pairs
}

TEST(Property, ChainRelationHasNoHeavyPart) {
  // Path graph: every degree is 1 or 2; with thresholds 2,2 there is no
  // heavy part at all.
  BinaryRelation r;
  for (Value i = 0; i < 100; ++i) r.Add(i, i);
  r.Finalize();
  IndexedRelation ri(r);
  MmJoinOptions opts;
  opts.thresholds = {2, 2};
  auto res = MmJoinTwoPath(ri, ri, opts);
  EXPECT_EQ(res.heavy_rows, 0u);
  EXPECT_EQ(res.pairs.size(), 100u);  // only reflexive pairs
}

}  // namespace
}  // namespace jpmm
