// Tests for the output estimator (§5) and the cost-based optimizer
// (Algorithm 3), plus the JoinProject facade.

#include <gtest/gtest.h>

#include "core/estimator.h"
#include "core/join_project.h"
#include "core/optimizer.h"
#include "datagen/generators.h"
#include "tests/test_util.h"

namespace jpmm {
namespace {

using testutil::OracleTwoPath;
using testutil::OracleTwoPathCounted;
using testutil::RandomRelation;
using testutil::Sorted;

TEST(Estimator, BoundsBracketTrueOutput) {
  for (uint64_t seed : {51ull, 52ull, 53ull, 54ull}) {
    BinaryRelation r = RandomRelation(60, 40, 600, 1.2, seed);
    IndexedRelation ri(r);
    TwoPathStats stats(ri, ri);
    const OutputEstimate est = EstimateTwoPathOutput(ri, ri, stats);
    const uint64_t truth = OracleTwoPath(r, r).size();
    EXPECT_LE(est.lower, truth) << "seed=" << seed;
    EXPECT_GE(est.upper, truth) << "seed=" << seed;
    EXPECT_GE(est.estimate, est.lower);
    EXPECT_LE(est.estimate, est.upper);
  }
}

TEST(Estimator, FullJoinSizeIsExact) {
  BinaryRelation r = RandomRelation(30, 25, 250, 1.0, 55);
  BinaryRelation s = RandomRelation(28, 25, 230, 1.0, 56);
  IndexedRelation ri(r), si(s);
  TwoPathStats stats(ri, si);
  const OutputEstimate est = EstimateTwoPathOutput(ri, si, stats);
  uint64_t expected = 0;
  for (const Tuple& rt : r.tuples()) {
    for (const Tuple& st : s.tuples()) {
      if (rt.y == st.y) ++expected;
    }
  }
  EXPECT_EQ(est.full_join_size, expected);
}

TEST(Estimator, DenseGraphHasHighDuplication) {
  // Community graph: J / OUT should be large, and lower bound respects it.
  BinaryRelation r = CommunityGraph(3, 30, 0.95, 11);
  IndexedRelation ri(r);
  TwoPathStats stats(ri, ri);
  const OutputEstimate est = EstimateTwoPathOutput(ri, ri, stats);
  const uint64_t truth = OracleTwoPath(r, r).size();
  EXPECT_GE(est.full_join_size, 4 * truth);  // heavy duplication regime
  EXPECT_LE(est.lower, truth);
  EXPECT_GE(est.upper, truth);
}

TEST(Optimizer, SmallJoinChoosesFullWcoj) {
  // Near-uniform sparse relation: join barely bigger than input.
  BinaryRelation r = RandomRelation(500, 500, 800, 0.1, 57);
  IndexedRelation ri(r);
  TwoPathStats stats(ri, ri);
  OptimizerOptions oo;
  oo.calibration = nullptr;  // default
  static const MatMulCalibration cal =
      MatMulCalibration::FromFlopsRate(1e9, {1});
  static const SystemConstants consts;  // defaults
  oo.calibration = &cal;
  oo.constants = &consts;
  const PlanChoice plan = ChooseTwoPathPlan(ri, ri, stats, oo);
  EXPECT_TRUE(plan.use_full_wcoj);
  EXPECT_FALSE(plan.ToString().empty());
}

TEST(Optimizer, DenseGraphChoosesMmJoinWithFeasibleThresholds) {
  BinaryRelation r = CommunityGraph(4, 40, 0.95, 13);
  IndexedRelation ri(r);
  TwoPathStats stats(ri, ri);
  static const MatMulCalibration cal =
      MatMulCalibration::FromFlopsRate(1e9, {1});
  static const SystemConstants consts;
  OptimizerOptions oo;
  oo.calibration = &cal;
  oo.constants = &consts;
  const PlanChoice plan = ChooseTwoPathPlan(ri, ri, stats, oo);
  EXPECT_FALSE(plan.use_full_wcoj);
  EXPECT_GE(plan.thresholds.delta1, 1u);
  EXPECT_LE(plan.thresholds.delta1, r.size());
  EXPECT_GE(plan.thresholds.delta2, 1u);
  EXPECT_LE(plan.thresholds.delta2, r.size());
}

TEST(Optimizer, StopAtFirstIncreaseStillFeasible) {
  BinaryRelation r = CommunityGraph(4, 32, 0.9, 17);
  IndexedRelation ri(r);
  TwoPathStats stats(ri, ri);
  static const MatMulCalibration cal =
      MatMulCalibration::FromFlopsRate(1e9, {1});
  static const SystemConstants consts;
  OptimizerOptions oo;
  oo.calibration = &cal;
  oo.constants = &consts;
  oo.stop_at_first_increase = true;
  const PlanChoice plan = ChooseTwoPathPlan(ri, ri, stats, oo);
  if (!plan.use_full_wcoj) {
    EXPECT_GE(plan.thresholds.delta1, 1u);
    EXPECT_GE(plan.thresholds.delta2, 1u);
  }
}

TEST(Optimizer, NonMmThresholdsBalanced) {
  BinaryRelation r = CommunityGraph(4, 30, 0.9, 19);
  IndexedRelation ri(r);
  TwoPathStats stats(ri, ri);
  const Thresholds t = ChooseNonMmThresholds(ri, ri, stats);
  EXPECT_EQ(t.delta1, t.delta2);
  EXPECT_GE(t.delta1, 1u);
  EXPECT_LE(t.delta1, r.size());
}

// ---------------------------------------------------------------------------
// Facade tests.

class FacadeStrategyTest : public ::testing::TestWithParam<Strategy> {};

TEST_P(FacadeStrategyTest, MatchesOracle) {
  BinaryRelation r = RandomRelation(50, 35, 450, 1.2, 61);
  JoinProjectOptions opts;
  opts.strategy = GetParam();
  opts.sorted = true;
  auto out = JoinProject::TwoPath(r, r, opts);
  EXPECT_EQ(out.pairs, OracleTwoPath(r, r));
  EXPECT_GE(out.seconds, 0.0);
}

TEST_P(FacadeStrategyTest, CountedMatchesOracle) {
  BinaryRelation r = RandomRelation(40, 30, 350, 1.0, 62);
  JoinProjectOptions opts;
  opts.strategy = GetParam();
  opts.count_witnesses = true;
  opts.sorted = true;
  auto out = JoinProject::TwoPath(r, r, opts);
  EXPECT_EQ(out.counted, OracleTwoPathCounted(r, r));
}

INSTANTIATE_TEST_SUITE_P(Strategies, FacadeStrategyTest,
                         ::testing::Values(Strategy::kAuto, Strategy::kMmJoin,
                                           Strategy::kNonMmJoin,
                                           Strategy::kWcojFull));

TEST(Facade, ExplicitThresholdsAreHonoured) {
  BinaryRelation r = CommunityGraph(3, 20, 1.0, 23);
  JoinProjectOptions opts;
  opts.strategy = Strategy::kMmJoin;
  opts.thresholds = {4, 4};
  opts.sorted = true;
  auto out = JoinProject::TwoPath(r, r, opts);
  EXPECT_EQ(out.pairs, OracleTwoPath(r, r));
}

TEST(Facade, MinCountThreshold) {
  BinaryRelation r = RandomRelation(30, 20, 300, 1.0, 63);
  JoinProjectOptions opts;
  opts.strategy = Strategy::kMmJoin;
  opts.count_witnesses = true;
  opts.min_count = 3;
  opts.sorted = true;
  auto out = JoinProject::TwoPath(r, r, opts);
  EXPECT_EQ(out.counted, OracleTwoPathCounted(r, r, 3));
}

TEST(Facade, ThreadsDoNotChangeResult) {
  BinaryRelation r = RandomRelation(60, 40, 600, 1.2, 64);
  JoinProjectOptions opts;
  opts.strategy = Strategy::kMmJoin;
  opts.sorted = true;
  auto ref = JoinProject::TwoPath(r, r, opts);
  opts.threads = 4;
  auto par = JoinProject::TwoPath(r, r, opts);
  EXPECT_EQ(ref.pairs, par.pairs);
}

TEST(Facade, StarDispatch) {
  BinaryRelation r = RandomRelation(15, 12, 60, 0.8, 65);
  IndexedRelation ri(r);
  std::vector<const IndexedRelation*> rels = {&ri, &ri, &ri};
  for (Strategy s : {Strategy::kAuto, Strategy::kMmJoin, Strategy::kNonMmJoin,
                     Strategy::kWcojFull}) {
    JoinProjectOptions opts;
    opts.strategy = s;
    auto res = JoinProject::Star(rels, opts);
    EXPECT_EQ(testutil::ToVectors(res.tuples),
              testutil::OracleStar({&r, &r, &r}))
        << StrategyName(s);
  }
}

TEST(Facade, StrategyNames) {
  EXPECT_STREQ(StrategyName(Strategy::kAuto), "auto");
  EXPECT_STREQ(StrategyName(Strategy::kMmJoin), "mmjoin");
  EXPECT_STREQ(StrategyName(Strategy::kNonMmJoin), "nonmm");
  EXPECT_STREQ(StrategyName(Strategy::kWcojFull), "wcoj-full");
}

}  // namespace
}  // namespace jpmm
