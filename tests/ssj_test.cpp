// SSJ correctness tests: SizeAware, SizeAware++ (all flag combinations),
// MM-SSJ and the prefix-merge light phase, against a brute-force oracle.

#include <gtest/gtest.h>

#include <algorithm>

#include "datagen/generators.h"
#include "join/intersection.h"
#include "ssj/mm_ssj.h"
#include "ssj/prefix_tree.h"
#include "ssj/size_aware.h"
#include "ssj/size_aware_pp.h"
#include "ssj/size_boundary.h"
#include "tests/test_util.h"

namespace jpmm {
namespace {

SsjResult OracleSsj(const SetFamily& fam, uint32_t c, bool with_overlap) {
  SsjResult out;
  for (Value a = 0; a < fam.num_set_ids(); ++a) {
    if (fam.SetSize(a) == 0) continue;
    for (Value b = a + 1; b < fam.num_set_ids(); ++b) {
      if (fam.SetSize(b) == 0) continue;
      const auto overlap = static_cast<uint32_t>(
          IntersectCount(fam.Elements(a), fam.Elements(b)));
      if (overlap >= c) {
        out.push_back(SimilarPair{a, b, with_overlap ? overlap : 0});
      }
    }
  }
  return out;
}

struct Instance {
  BinaryRelation rel;
  IndexedRelation idx;
  SetFamily fam;

  explicit Instance(BinaryRelation r)
      : rel(std::move(r)), idx(rel), fam(idx) {}
};

Instance MakeInstance(uint32_t sets, uint32_t dom, uint32_t max_size,
                      double skew, uint64_t seed) {
  BipartiteSpec spec;
  spec.num_sets = sets;
  spec.dom_size = dom;
  spec.min_set_size = 1;
  spec.max_set_size = max_size;
  spec.size_skew = 0.8;
  spec.element_skew = skew;
  spec.seed = seed;
  return Instance(MakeBipartite(spec));
}

TEST(SizeBoundary, CSubsetCostBasics) {
  EXPECT_DOUBLE_EQ(CSubsetCost(5, 2), 10.0);
  EXPECT_DOUBLE_EQ(CSubsetCost(6, 3), 20.0);
  EXPECT_DOUBLE_EQ(CSubsetCost(3, 4), 0.0);  // m < c
  EXPECT_DOUBLE_EQ(CSubsetCost(4, 1), 4.0);
}

TEST(SizeBoundary, ReturnsSaneValue) {
  Instance inst = MakeInstance(120, 80, 12, 0.7, 71);
  for (uint32_t c : {1u, 2u, 3u}) {
    const uint32_t boundary = GetSizeBoundary(inst.fam, c);
    EXPECT_GE(boundary, c + 1);
    EXPECT_LE(boundary, 14u);  // never beyond max size + 1
  }
}

TEST(SizeBoundary, AllHeavyAndAllLightAreConsistent) {
  Instance inst = MakeInstance(60, 50, 8, 0.5, 72);
  // Phases partition the work regardless of boundary choice:
  for (uint32_t boundary : {2u, 5u, 100u}) {
    SsjResult heavy = SizeAwareHeavyPhase(inst.fam, 2, boundary, 1);
    SsjResult light = SizeAwareLightPhase(inst.fam, 2, boundary, true);
    heavy.insert(heavy.end(), light.begin(), light.end());
    CanonicalizeSsj(&heavy, false);
    EXPECT_EQ(heavy, OracleSsj(inst.fam, 2, true)) << "boundary=" << boundary;
  }
}

// --------------------------------------------------------------------------
struct SsjParam {
  uint32_t sets, dom, max_size;
  double skew;
  uint32_t c;
  uint64_t seed;
};

class SsjSweep : public ::testing::TestWithParam<SsjParam> {};

TEST_P(SsjSweep, SizeAwareMatchesOracle) {
  const SsjParam p = GetParam();
  Instance inst = MakeInstance(p.sets, p.dom, p.max_size, p.skew, p.seed);
  SsjOptions opts;
  opts.c = p.c;
  EXPECT_EQ(SizeAwareJoin(inst.fam, opts), OracleSsj(inst.fam, p.c, false));
}

TEST_P(SsjSweep, SizeAwarePlusPlusMatchesOracle) {
  const SsjParam p = GetParam();
  Instance inst = MakeInstance(p.sets, p.dom, p.max_size, p.skew, p.seed + 1);
  SsjOptions opts;
  opts.c = p.c;
  EXPECT_EQ(SizeAwarePlusPlus(inst.fam, opts),
            OracleSsj(inst.fam, p.c, false));
}

TEST_P(SsjSweep, MmSsjMatchesOracle) {
  const SsjParam p = GetParam();
  Instance inst = MakeInstance(p.sets, p.dom, p.max_size, p.skew, p.seed + 2);
  SsjOptions opts;
  opts.c = p.c;
  EXPECT_EQ(MmSsj(inst.fam, opts), OracleSsj(inst.fam, p.c, false));
}

TEST_P(SsjSweep, AllThreeAlgorithmsAgree) {
  const SsjParam p = GetParam();
  Instance inst = MakeInstance(p.sets, p.dom, p.max_size, p.skew, p.seed + 3);
  SsjOptions opts;
  opts.c = p.c;
  const SsjResult a = SizeAwareJoin(inst.fam, opts);
  const SsjResult b = SizeAwarePlusPlus(inst.fam, opts);
  const SsjResult m = MmSsj(inst.fam, opts);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, m);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SsjSweep,
    ::testing::Values(SsjParam{60, 40, 8, 0.5, 1, 81},
                      SsjParam{60, 40, 8, 0.5, 2, 82},
                      SsjParam{60, 40, 8, 0.5, 3, 83},
                      SsjParam{80, 30, 10, 1.2, 2, 84},   // skewed elements
                      SsjParam{50, 25, 12, 0.2, 4, 85},   // larger overlap
                      SsjParam{100, 60, 6, 0.9, 2, 86},   // many small sets
                      SsjParam{30, 20, 15, 0.3, 5, 87})); // dense-ish

// --------------------------------------------------------------------------

TEST(SizeAwarePP, FlagCombinationsAllCorrect) {
  Instance inst = MakeInstance(70, 40, 10, 0.8, 91);
  const SsjResult oracle = OracleSsj(inst.fam, 2, false);
  for (int mask = 0; mask < 8; ++mask) {
    SsjOptions opts;
    opts.c = 2;
    opts.use_mm_heavy = mask & 1;
    opts.use_mm_light = mask & 2;
    opts.use_prefix = mask & 4;
    EXPECT_EQ(SizeAwarePlusPlus(inst.fam, opts), oracle) << "mask=" << mask;
  }
}

TEST(SizeAwarePP, ThreadsDoNotChangeResult) {
  Instance inst = MakeInstance(80, 50, 10, 0.9, 92);
  SsjOptions opts;
  opts.c = 2;
  const SsjResult ref = SizeAwarePlusPlus(inst.fam, opts);
  opts.threads = 4;
  EXPECT_EQ(SizeAwarePlusPlus(inst.fam, opts), ref);
}

// Wrapper so the ordered test can iterate function pointers of one
// signature.
SsjResult MmSsjRefWrapper(const SetFamily& fam, const SsjOptions& opts) {
  return MmSsj(fam, opts);
}

TEST(OrderedSsj, SortedByOverlapWithExactCounts) {
  Instance inst = MakeInstance(60, 30, 10, 0.7, 93);
  SsjOptions opts;
  opts.c = 2;
  opts.ordered = true;
  for (auto algo : {&MmSsjRefWrapper, &SizeAwareJoin, &SizeAwarePlusPlus}) {
    const SsjResult res = (*algo)(inst.fam, opts);
    // Non-increasing overlaps.
    for (size_t i = 1; i < res.size(); ++i) {
      EXPECT_GE(res[i - 1].overlap, res[i].overlap);
    }
    // Same multiset of (pair, overlap) as the oracle.
    SsjResult sorted = res;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, OracleSsj(inst.fam, 2, true));
  }
}

TEST(PrefixMerge, MatchesClassicLightPhase) {
  Instance inst = MakeInstance(90, 50, 9, 1.0, 94);
  for (uint32_t c : {2u, 3u}) {
    const uint32_t boundary = GetSizeBoundary(inst.fam, c);
    SsjResult classic =
        SizeAwareLightPhase(inst.fam, c, boundary, /*compute_overlap=*/true);
    SsjResult prefix = PrefixMergeLightPhase(inst.fam, c, boundary, 64);
    CanonicalizeSsj(&classic, false);
    CanonicalizeSsj(&prefix, false);
    EXPECT_EQ(classic, prefix) << "c=" << c;
  }
}

TEST(PrefixMerge, MemoDepthZeroDisablesReuseButStaysCorrect) {
  Instance inst = MakeInstance(70, 35, 8, 0.9, 95);
  const uint32_t boundary = 100;  // everything light
  PrefixMergeStats with_memo, without_memo;
  SsjResult a =
      PrefixMergeLightPhase(inst.fam, 2, boundary, 64, &with_memo);
  SsjResult b =
      PrefixMergeLightPhase(inst.fam, 2, boundary, 0, &without_memo);
  CanonicalizeSsj(&a, false);
  CanonicalizeSsj(&b, false);
  EXPECT_EQ(a, b);
  EXPECT_GT(with_memo.merges_reused, 0u);
  EXPECT_EQ(without_memo.merges_reused, 0u);
  EXPECT_LT(with_memo.merges_done, without_memo.merges_done);
}

TEST(MmSsj, NonMmStrategyAgrees) {
  Instance inst = MakeInstance(60, 30, 10, 0.8, 96);
  SsjOptions opts;
  opts.c = 2;
  EXPECT_EQ(MmSsj(inst.fam, opts, Strategy::kAuto),
            MmSsj(inst.fam, opts, Strategy::kNonMmJoin));
}

TEST(Ssj, C1EqualsPlainJoinProjectPairs) {
  Instance inst = MakeInstance(40, 25, 8, 0.6, 97);
  SsjOptions opts;
  opts.c = 1;
  EXPECT_EQ(MmSsj(inst.fam, opts), OracleSsj(inst.fam, 1, false));
}

TEST(Ssj, NoPairsWhenThresholdExceedsSetSizes) {
  Instance inst = MakeInstance(40, 40, 4, 0.5, 98);
  SsjOptions opts;
  opts.c = 10;
  EXPECT_TRUE(SizeAwareJoin(inst.fam, opts).empty());
  EXPECT_TRUE(SizeAwarePlusPlus(inst.fam, opts).empty());
  EXPECT_TRUE(MmSsj(inst.fam, opts).empty());
}

TEST(Ssj, DuplicateSetsPairWithFullOverlap) {
  BinaryRelation rel;
  for (Value e : {0u, 1u, 2u}) {
    rel.Add(0, e);
    rel.Add(1, e);
  }
  rel.Finalize();
  IndexedRelation idx(rel);
  SetFamily fam(idx);
  SsjOptions opts;
  opts.c = 3;
  opts.ordered = true;
  const SsjResult res = MmSsj(fam, opts);
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0], (SimilarPair{0, 1, 3}));
}

}  // namespace
}  // namespace jpmm
