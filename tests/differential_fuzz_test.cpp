// Cross-strategy differential fuzzer — the repo's first randomized
// property harness.
//
// Every iteration generates a dataset from a seeded recipe (skewed zipf /
// uniform bipartite / community graph; self join or two distinct
// relations; plain or counted with min_count; auto or pinned thresholds)
// and checks that every evaluation strategy produces BYTE-IDENTICAL sorted
// output:
//
//   two-path: WCOJ (threads=1) is the reference; MM (auto + forced dense /
//             csr-dense / csr-csr heavy paths + forced density-partitioned
//             grid) and Non-MM must match at threads {1, 3, hw}.
//   star:     WCOJ reference vs MM (uniform + forced density grid) and
//             Non-MM star joins (every 4th iteration; k in {2, 3}).
//   isa:      the same recipes re-run under every host-supported kernel
//             dispatch level (ScopedIsaOverride; common/cpu_features.h) —
//             the explicit AVX2/AVX-512 kernels must stay byte-identical
//             to the scalar oracle, end-to-end and at the kernel level.
//
// Knobs (see docs/testing.md for the seed policy):
//   JPMM_FUZZ_ITERS     iterations (default 50 — the fixed tier-1 budget;
//                       nightly CI runs 500)
//   JPMM_FUZZ_SEED      base seed (default fixed so tier-1 is reproducible;
//                       iteration i uses base + i)
//   JPMM_FUZZ_ARTIFACT  failing-seed repro file (default
//                       differential_fuzz_failures.txt; one line per
//                       mismatch, enough to rerun that exact iteration)

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/cpu_features.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/cancel_token.h"
#include "matrix/bool_matrix.h"
#include "matrix/matmul.h"
#include "matrix/random.h"
#include "matrix/sparse_matrix.h"
#include "core/join_project.h"
#include "core/query_engine.h"
#include "core/query_service.h"
#include "core/result_sink.h"
#include "datagen/generators.h"
#include "tests/test_util.h"

namespace jpmm {
namespace {

using testutil::RandomRelation;
using testutil::ToVectors;

int EnvInt(const char* name, int def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  return std::atoi(v);
}

uint64_t EnvU64(const char* name, uint64_t def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  return static_cast<uint64_t>(std::strtoull(v, nullptr, 10));
}

std::string ArtifactPath() {
  const char* v = std::getenv("JPMM_FUZZ_ARTIFACT");
  return (v == nullptr || *v == '\0') ? "differential_fuzz_failures.txt" : v;
}

// One iteration's full recipe — everything needed to rerun it.
struct FuzzConfig {
  uint64_t seed = 0;
  int shape = 0;  // 0 zipf-skewed, 1 uniform bipartite, 2 community graph
  bool self_join = true;
  bool counted = false;
  uint32_t min_count = 1;
  Thresholds thresholds{0, 0};  // {0,0} = optimizer-chosen

  std::string ToString() const {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "seed=%llu shape=%d self=%d counted=%d min_count=%u "
                  "thresholds={%llu,%llu}",
                  static_cast<unsigned long long>(seed), shape,
                  self_join ? 1 : 0, counted ? 1 : 0, min_count,
                  static_cast<unsigned long long>(thresholds.delta1),
                  static_cast<unsigned long long>(thresholds.delta2));
    return buf;
  }
};

FuzzConfig MakeConfig(uint64_t seed) {
  Rng rng(seed);
  FuzzConfig cfg;
  cfg.seed = seed;
  cfg.shape = static_cast<int>(rng.Next() % 3);
  cfg.self_join = rng.Next() % 2 == 0;
  cfg.counted = rng.Next() % 2 == 0;
  cfg.min_count = cfg.counted ? 1 + static_cast<uint32_t>(rng.Next() % 3) : 1;
  // A third of the runs pin tiny thresholds so the heavy part (and the
  // forced dense/sparse kernels) really execute on small data.
  switch (rng.Next() % 3) {
    case 0:
      cfg.thresholds = Thresholds{1, 1};
      break;
    case 1:
      cfg.thresholds = Thresholds{2, 4};
      break;
    default:
      cfg.thresholds = Thresholds{0, 0};
      break;
  }
  return cfg;
}

BinaryRelation MakeRelation(const FuzzConfig& cfg, uint64_t salt) {
  Rng rng(cfg.seed ^ (salt * 0x9E3779B97F4A7C15ull));
  switch (cfg.shape) {
    case 0: {
      const uint32_t nx = 30 + static_cast<uint32_t>(rng.Next() % 120);
      const uint32_t ny = 30 + static_cast<uint32_t>(rng.Next() % 120);
      const uint32_t nt = 60 + static_cast<uint32_t>(rng.Next() % 800);
      const double skew = 0.7 + 0.1 * static_cast<double>(rng.Next() % 6);
      return RandomRelation(nx, ny, nt, skew, rng.Next());
    }
    case 1: {
      const uint32_t nx = 40 + static_cast<uint32_t>(rng.Next() % 100);
      const uint32_t ny = 20 + static_cast<uint32_t>(rng.Next() % 60);
      const uint32_t nt = 80 + static_cast<uint32_t>(rng.Next() % 700);
      return UniformBipartite(nx, ny, nt, rng.Next());
    }
    default: {
      const uint32_t comms = 2 + static_cast<uint32_t>(rng.Next() % 3);
      const uint32_t size = 20 + static_cast<uint32_t>(rng.Next() % 30);
      const double p = 0.2 + 0.1 * static_cast<double>(rng.Next() % 4);
      return CommunityGraph(comms, size, p, rng.Next());
    }
  }
}

// Every two-path strategy/heavy-path variant the harness crosses. Adding a
// strategy = adding a row here (docs/testing.md documents the recipe).
struct Variant {
  const char* name;
  Strategy strategy;
  HeavyPathMode heavy_path;
  PartitionMode partition = PartitionMode::kOff;
};

const Variant kTwoPathVariants[] = {
    {"wcoj", Strategy::kWcojFull, HeavyPathMode::kAuto},
    {"nonmm", Strategy::kNonMmJoin, HeavyPathMode::kAuto},
    {"mm-auto", Strategy::kMmJoin, HeavyPathMode::kAuto},
    {"mm-dense", Strategy::kMmJoin, HeavyPathMode::kForceDense},
    {"mm-csr-dense", Strategy::kMmJoin, HeavyPathMode::kForceCsrDense},
    {"mm-csr-csr", Strategy::kMmJoin, HeavyPathMode::kForceCsrCsr},
    // Density-adaptive decomposition forced on: the degree-remapped block
    // grid must stay byte-identical to every uniform-plan variant.
    {"mm-density", Strategy::kMmJoin, HeavyPathMode::kAuto,
     PartitionMode::kForce},
};

void RecordFailure(const std::string& line) {
  std::FILE* f = std::fopen(ArtifactPath().c_str(), "a");
  if (f != nullptr) {
    std::fprintf(f, "%s\n", line.c_str());
    std::fclose(f);
  }
}

std::vector<int> ThreadCounts() {
  std::vector<int> threads{1, 3};
  const int hw = HardwareThreads();
  if (hw != 1 && hw != 3) threads.push_back(hw);
  return threads;
}

TEST(DifferentialFuzz, TwoPathCrossStrategyAgreement) {
  const int iters = EnvInt("JPMM_FUZZ_ITERS", 50);
  const uint64_t base = EnvU64("JPMM_FUZZ_SEED", 20260726);
  const std::vector<int> threads = ThreadCounts();

  for (int i = 0; i < iters; ++i) {
    const FuzzConfig cfg = MakeConfig(base + static_cast<uint64_t>(i));
    const BinaryRelation r = MakeRelation(cfg, 1);
    const BinaryRelation s = cfg.self_join ? r : MakeRelation(cfg, 2);

    // Reference: sequential WCOJ full join + dedup, sorted.
    JoinProjectOptions ref_opts;
    ref_opts.strategy = Strategy::kWcojFull;
    ref_opts.threads = 1;
    ref_opts.sorted = true;
    ref_opts.count_witnesses = cfg.counted;
    ref_opts.min_count = cfg.min_count;
    const JoinProjectOutput ref = JoinProject::TwoPath(r, s, ref_opts);

    for (const Variant& v : kTwoPathVariants) {
      for (int t : threads) {
        JoinProjectOptions opts = ref_opts;
        opts.strategy = v.strategy;
        opts.heavy_path = v.heavy_path;
        opts.partition = v.partition;
        opts.threads = t;
        opts.thresholds = cfg.thresholds;
        const JoinProjectOutput got = JoinProject::TwoPath(r, s, opts);

        const bool match = cfg.counted ? got.counted == ref.counted
                                       : got.pairs == ref.pairs;
        if (!match) {
          const std::string line = cfg.ToString() + " variant=" + v.name +
                                   " threads=" + std::to_string(t) +
                                   " got=" + std::to_string(got.size()) +
                                   " want=" + std::to_string(ref.size());
          RecordFailure(line);
          ADD_FAILURE() << "cross-strategy mismatch: " << line
                        << "\nrepro: JPMM_FUZZ_SEED="
                        << (base + static_cast<uint64_t>(i))
                        << " JPMM_FUZZ_ITERS=1 ./differential_fuzz_test";
          return;  // one repro line per run is enough to bisect
        }
      }
    }
  }
}

// ---- Random-deadline recipe ---------------------------------------------
//
// Truncation must never corrupt: under a randomly placed deadline (from
// pre-expired to generous) every delivered pair is a REAL output pair with
// its EXACT witness count, delivered at most once; an un-interrupted run
// is byte-identical to the oracle; a paginated consumer sees a truncated
// page, never a wrong one. Triangle is excluded (it delivers a count, not
// pairs — its partial-count exactness is covered by query_deadline_test).

TEST(DifferentialFuzz, RandomDeadlineTruncationIsNeverWrong) {
  const int iters = EnvInt("JPMM_FUZZ_ITERS", 50);
  const uint64_t base = EnvU64("JPMM_FUZZ_SEED", 20260726) ^ 0xDEADull;
  const std::vector<int> threads = ThreadCounts();

  for (int i = 0; i < iters; ++i) {
    const FuzzConfig cfg = MakeConfig(base + static_cast<uint64_t>(i));
    const BinaryRelation r = MakeRelation(cfg, 1);
    const BinaryRelation s = cfg.self_join ? r : MakeRelation(cfg, 2);
    Rng rng(cfg.seed ^ 0xD1A5ull);

    // Oracle: reference run, no token.
    JoinProjectOptions ref_opts;
    ref_opts.strategy = Strategy::kWcojFull;
    ref_opts.threads = 1;
    ref_opts.sorted = true;
    ref_opts.count_witnesses = cfg.counted;
    ref_opts.min_count = cfg.min_count;
    const JoinProjectOutput ref = JoinProject::TwoPath(r, s, ref_opts);
    std::map<std::pair<Value, Value>, uint32_t> oracle;
    if (cfg.counted) {
      for (const CountedPair& p : ref.counted) oracle[{p.x, p.z}] = p.count;
    } else {
      for (const OutPair& p : ref.pairs) oracle[{p.x, p.z}] = 1;
    }

    for (const Variant& v : kTwoPathVariants) {
      for (int t : threads) {
        // Deadline placement: a third pre-expired, a third microscopic
        // (fires mid-run on most machines), a third generous.
        CancelToken token;
        switch (rng.Next() % 3) {
          case 0:
            token.SetDeadlineAfter(0);
            break;
          case 1:
            token.SetDeadline(std::chrono::steady_clock::now() +
                              std::chrono::microseconds(rng.Next() % 500));
            break;
          default:
            token.SetDeadlineAfter(60 * 1000);
            break;
        }
        JoinProjectOptions opts = ref_opts;
        opts.strategy = v.strategy;
        opts.heavy_path = v.heavy_path;
        opts.partition = v.partition;
        opts.threads = t;
        opts.thresholds = cfg.thresholds;
        opts.sorted = false;
        opts.cancel = &token;
        const JoinProjectOutput got = JoinProject::TwoPath(r, s, opts);

        std::string problem;
        std::set<std::pair<Value, Value>> seen;
        const size_t n = cfg.counted ? got.counted.size() : got.pairs.size();
        for (size_t j = 0; j < n && problem.empty(); ++j) {
          const Value x = cfg.counted ? got.counted[j].x : got.pairs[j].x;
          const Value z = cfg.counted ? got.counted[j].z : got.pairs[j].z;
          if (!seen.insert({x, z}).second) problem = "duplicate pair";
          auto it = oracle.find({x, z});
          if (it == oracle.end()) {
            problem = "phantom pair";
          } else if (cfg.counted && got.counted[j].count != it->second) {
            problem = "wrong witness count";  // truncated != approximated
          }
        }
        if (problem.empty() && !got.interrupted && n != oracle.size()) {
          problem = "un-interrupted run incomplete";
        }
        if (problem.empty() &&
            got.light_chunks_executed + got.light_chunks_skipped !=
                got.light_chunks_total) {
          problem = "light accounting broken";
        }
        if (!problem.empty()) {
          const std::string line = cfg.ToString() + " variant=" + v.name +
                                   " threads=" + std::to_string(t) +
                                   " deadline-recipe " + problem;
          RecordFailure(line);
          ADD_FAILURE() << "random-deadline violation: " << line;
          return;
        }
      }
    }

    // Paginated consumer through the engine: a deadline may SHORTEN the
    // page, never corrupt it.
    {
      QueryEngine engine;
      engine.catalog().Put("R", r);
      if (!cfg.self_join) engine.catalog().Put("S", s);
      QuerySpec spec;
      spec.kind = QueryKind::kTwoPath;
      spec.relations = cfg.self_join ? std::vector<std::string>{"R"}
                                     : std::vector<std::string>{"R", "S"};
      spec.count_witnesses = cfg.counted;
      spec.min_count = cfg.min_count;
      const uint64_t offset = rng.Next() % 20;
      const uint64_t limit = 1 + rng.Next() % 30;
      CancelToken token;
      if (rng.Next() % 2 == 0) {
        token.SetDeadline(std::chrono::steady_clock::now() +
                          std::chrono::microseconds(rng.Next() % 300));
      } else {
        token.SetDeadlineAfter(60 * 1000);
      }
      PageSink sink(offset, limit);
      ExecStats stats;
      ExecOptions exec;
      exec.threads = threads.back();
      exec.cancel = &token;
      const QueryStatus st = engine.Run(spec, sink, exec, &stats);
      ASSERT_TRUE(st.ok()) << st.message();
      const uint64_t total = oracle.size();
      const uint64_t want_page =
          std::min<uint64_t>(limit, total > offset ? total - offset : 0);
      std::string problem;
      if (stats.interrupted) {
        if (sink.size() > want_page) problem = "page too long";
      } else if (sink.size() != want_page) {
        problem = "wrong page size";
      }
      std::set<std::pair<Value, Value>> seen;
      for (const OutPair& p : sink.pairs()) {
        if (!oracle.count({p.x, p.z})) problem = "phantom page entry";
        if (!seen.insert({p.x, p.z}).second) problem = "duplicate page entry";
      }
      if (!problem.empty()) {
        const std::string line = cfg.ToString() + " page offset=" +
                                 std::to_string(offset) + " limit=" +
                                 std::to_string(limit) + " " + problem;
        RecordFailure(line);
        ADD_FAILURE() << "random-deadline page violation: " << line;
        return;
      }
    }
  }
}

// ---- Batched / cached service recipe ------------------------------------
//
// The batching subsystem must be invisible in the results: running every
// recipe through a QueryService with batching + the versioned result cache
// enabled must stay byte-identical to the solo reference at every thread
// count. The first service run executes (and populates the cache); every
// later run with the same spec replays from the cache — the fingerprint
// excludes thread count by design — so this recipe covers the leader path,
// the cache insert gate, and cache replay in one sweep. A paginated
// consumer is then served FROM the cache and must see an exact page.

TEST(DifferentialFuzz, BatchedAndCachedServiceMatchesSolo) {
  const int iters = std::max(1, EnvInt("JPMM_FUZZ_ITERS", 50) / 2);
  const uint64_t base = EnvU64("JPMM_FUZZ_SEED", 20260726) ^ 0xBA7Cull;
  const std::vector<int> threads = ThreadCounts();

  for (int i = 0; i < iters; ++i) {
    const FuzzConfig cfg = MakeConfig(base + static_cast<uint64_t>(i));
    const BinaryRelation r = MakeRelation(cfg, 1);
    const BinaryRelation s = cfg.self_join ? r : MakeRelation(cfg, 2);

    JoinProjectOptions ref_opts;
    ref_opts.strategy = Strategy::kWcojFull;
    ref_opts.threads = 1;
    ref_opts.sorted = true;
    ref_opts.count_witnesses = cfg.counted;
    ref_opts.min_count = cfg.min_count;
    const JoinProjectOutput ref = JoinProject::TwoPath(r, s, ref_opts);

    QueryEngine engine;
    engine.catalog().Put("R", r);
    if (!cfg.self_join) engine.catalog().Put("S", s);
    QueryServiceOptions so;
    so.enable_batching = true;
    so.batch_window_ms = 0;  // sequential requests: no coalescing partner,
                             // but the whole leader/fan-out path still runs
    so.enable_result_cache = true;
    QueryService service(&engine, so);

    QuerySpec spec;
    spec.kind = QueryKind::kTwoPath;
    spec.relations = cfg.self_join ? std::vector<std::string>{"R"}
                                   : std::vector<std::string>{"R", "S"};
    spec.count_witnesses = cfg.counted;
    spec.min_count = cfg.min_count;
    PreparedQuery q;
    ASSERT_TRUE(engine.Prepare(spec, &q).ok());

    uint64_t runs = 0;
    for (int t : threads) {
      ServiceRequest req;
      req.exec.threads = t;
      req.exec.thresholds = cfg.thresholds;
      VectorSink sink;
      ExecStats stats;
      const QueryStatus st = service.Execute(q, sink, req, &stats);
      ++runs;
      std::string problem;
      if (!st.ok()) {
        problem = "status: " + st.message();
      } else if (cfg.counted
                     ? testutil::Sorted(sink.counted()) != ref.counted
                     : testutil::Sorted(sink.pairs()) != ref.pairs) {
        problem = "result mismatch";
      } else if (runs > 1 && !stats.result_cache_hit) {
        problem = "expected a cache hit on a repeat request";
      }
      if (!problem.empty()) {
        const std::string line = cfg.ToString() + " service threads=" +
                                 std::to_string(t) + " " + problem;
        RecordFailure(line);
        ADD_FAILURE() << "batched-service mismatch: " << line;
        return;
      }
    }
    ASSERT_EQ(service.stats().cache_hits, runs - 1);
    ASSERT_EQ(service.stats().completed, runs);

    // Paginated consumer served from the warm cache: replay must honour
    // the sink's done() and deliver an exact page of real results.
    {
      Rng rng(cfg.seed ^ 0xCA9Eull);
      const uint64_t offset = rng.Next() % 20;
      const uint64_t limit = 1 + rng.Next() % 30;
      PageSink sink(offset, limit);
      ExecStats stats;
      ServiceRequest req;
      const QueryStatus st = service.Execute(q, sink, req, &stats);
      ASSERT_TRUE(st.ok()) << st.message();
      ASSERT_TRUE(stats.result_cache_hit);
      const uint64_t total = ref.size();
      const uint64_t want_page =
          std::min<uint64_t>(limit, total > offset ? total - offset : 0);
      std::set<std::pair<Value, Value>> oracle_set;
      for (const OutPair& p : ref.pairs) oracle_set.insert({p.x, p.z});
      for (const CountedPair& p : ref.counted) oracle_set.insert({p.x, p.z});
      std::string problem;
      if (sink.size() != want_page) problem = "wrong cached page size";
      for (const OutPair& p : sink.pairs()) {
        if (oracle_set.count({p.x, p.z}) == 0) problem = "phantom page entry";
      }
      for (const CountedPair& p : sink.counted()) {
        if (oracle_set.count({p.x, p.z}) == 0) problem = "phantom page entry";
      }
      if (!problem.empty()) {
        const std::string line = cfg.ToString() + " cached-page offset=" +
                                 std::to_string(offset) + " limit=" +
                                 std::to_string(limit) + " " + problem;
        RecordFailure(line);
        ADD_FAILURE() << "cached page violation: " << line;
        return;
      }
    }
  }
}

// ---- Forced-ISA recipes ---------------------------------------------------
//
// The two-path sweep above runs under the ambient dispatch level. These
// recipes force each level the host supports and require byte-identical
// output: first end-to-end (every MM heavy-path variant vs the WCOJ
// reference, which never dispatches), then at the kernel level (blocked
// GEMM / bool / count / CSR products vs their scalar naive oracles on
// randomized shapes). A failing seed reruns under one level with
// JPMM_ISA=<level> JPMM_FUZZ_SEED=<seed>.

std::vector<KernelIsa> HostIsas() {
  std::vector<KernelIsa> v{KernelIsa::kPortable};
  if (IsaSupported(KernelIsa::kAvx2)) v.push_back(KernelIsa::kAvx2);
  if (IsaSupported(KernelIsa::kAvx512)) v.push_back(KernelIsa::kAvx512);
  return v;
}

TEST(DifferentialFuzz, TwoPathForcedIsaAgreement) {
  // Half the two-path budget per level: the variant surface is the four MM
  // rows (the kernels under dispatch), not the full strategy cross.
  const int iters = std::max(1, EnvInt("JPMM_FUZZ_ITERS", 50) / 2);
  const uint64_t base = EnvU64("JPMM_FUZZ_SEED", 20260726) ^ 0x15Aull;
  const std::vector<int> threads = ThreadCounts();
  const Variant kMmVariants[] = {
      {"mm-auto", Strategy::kMmJoin, HeavyPathMode::kAuto},
      {"mm-dense", Strategy::kMmJoin, HeavyPathMode::kForceDense},
      {"mm-csr-dense", Strategy::kMmJoin, HeavyPathMode::kForceCsrDense},
      {"mm-csr-csr", Strategy::kMmJoin, HeavyPathMode::kForceCsrCsr},
  };

  for (int i = 0; i < iters; ++i) {
    FuzzConfig cfg = MakeConfig(base + static_cast<uint64_t>(i));
    // Pin tiny thresholds: the heavy part (where the SIMD kernels run) must
    // exist on these small instances for the sweep to test anything.
    cfg.thresholds = Thresholds{1, 1};
    const BinaryRelation r = MakeRelation(cfg, 1);
    const BinaryRelation s = cfg.self_join ? r : MakeRelation(cfg, 2);

    JoinProjectOptions ref_opts;
    ref_opts.strategy = Strategy::kWcojFull;
    ref_opts.threads = 1;
    ref_opts.sorted = true;
    ref_opts.count_witnesses = cfg.counted;
    ref_opts.min_count = cfg.min_count;
    const JoinProjectOutput ref = JoinProject::TwoPath(r, s, ref_opts);

    for (KernelIsa isa : HostIsas()) {
      ScopedIsaOverride force(isa);
      for (const Variant& v : kMmVariants) {
        for (int t : threads) {
          JoinProjectOptions opts = ref_opts;
          opts.strategy = v.strategy;
          opts.heavy_path = v.heavy_path;
          opts.threads = t;
          opts.thresholds = cfg.thresholds;
          const JoinProjectOutput got = JoinProject::TwoPath(r, s, opts);
          const bool match = cfg.counted ? got.counted == ref.counted
                                         : got.pairs == ref.pairs;
          if (!match) {
            const std::string line = cfg.ToString() +
                                     " isa=" + KernelIsaName(isa) +
                                     " variant=" + v.name +
                                     " threads=" + std::to_string(t) +
                                     " got=" + std::to_string(got.size()) +
                                     " want=" + std::to_string(ref.size());
            RecordFailure(line);
            ADD_FAILURE() << "forced-ISA mismatch: " << line
                          << "\nrepro: JPMM_ISA=" << KernelIsaName(isa)
                          << " JPMM_FUZZ_SEED="
                          << (base + static_cast<uint64_t>(i))
                          << " JPMM_FUZZ_ITERS=1 ./differential_fuzz_test";
            return;
          }
        }
      }
    }
  }
}

TEST(DifferentialFuzz, KernelLevelForcedIsaAgreement) {
  const int iters = EnvInt("JPMM_FUZZ_ITERS", 50);
  const uint64_t base = EnvU64("JPMM_FUZZ_SEED", 20260726) ^ 0x51Dull;
  const std::vector<int> threads = ThreadCounts();

  for (int i = 0; i < iters; ++i) {
    const uint64_t seed = base + static_cast<uint64_t>(i);
    Rng rng(seed);
    // Random shapes deliberately NOT tile-aligned; small enough that the
    // naive oracles stay cheap across 50 (tier-1) / 500 (nightly) iters.
    const size_t u = 1 + rng.NextBounded(96);
    const size_t v = 1 + rng.NextBounded(160);
    const size_t w = 1 + rng.NextBounded(96);
    const double density = 0.02 + 0.3 * (static_cast<double>(rng.Next() % 100) / 100.0);

    const Matrix a = RandomDenseMatrix(u, v, density, seed ^ 0xA);
    const Matrix b = RandomDenseMatrix(v, w, density, seed ^ 0xB);
    const Matrix dense_want = MultiplyNaive(a, b);
    const BoolMatrix ba = RandomBoolMatrix(u, v, density, seed ^ 0xC);
    const BoolMatrix bbt = RandomBoolMatrix(w, v, density, seed ^ 0xD);
    const BoolMatrix bool_want = BoolProductNaive(ba, bbt);
    const std::vector<uint32_t> count_want = CountProductNaive(ba, bbt);
    // CSR oracles need 0/1 operands: fresh random dense pair, thresholded.
    const CsrMatrix sa = CsrMatrix::FromDense(
        RandomDenseMatrix(u, v, density, seed ^ 0xE));
    const Matrix sbd = RandomDenseMatrix(v, w, density, seed ^ 0xF);
    const CsrMatrix sb = CsrMatrix::FromDense(sbd);
    const Matrix csr_want = CsrProductReference(sa, sbd);

    for (KernelIsa isa : HostIsas()) {
      ScopedIsaOverride force(isa);
      for (int t : threads) {
        std::string problem;
        if (Multiply(a, b, t) != dense_want) problem = "dense gemm";
        if (problem.empty() &&
            CountProduct(ba, bbt, t) != count_want) {
          problem = "count product";
        }
        if (problem.empty()) {
          const BoolMatrix got = BoolProduct(ba, bbt, t);
          for (size_t row = 0; row < got.rows() && problem.empty(); ++row) {
            if (std::memcmp(got.RowWords(row), bool_want.RowWords(row),
                            got.words_per_row() * sizeof(uint64_t)) != 0) {
              problem = "bool product";
            }
          }
        }
        if (problem.empty() && CsrDenseProduct(sa, sbd, t) != csr_want) {
          problem = "csr-dense product";
        }
        if (problem.empty() && CsrCsrProduct(sa, sb, t) != csr_want) {
          problem = "csr-csr product";
        }
        if (!problem.empty()) {
          const std::string line =
              "seed=" + std::to_string(seed) + " isa=" + KernelIsaName(isa) +
              " threads=" + std::to_string(t) + " u=" + std::to_string(u) +
              " v=" + std::to_string(v) + " w=" + std::to_string(w) +
              " kernel=" + problem;
          RecordFailure(line);
          ADD_FAILURE() << "kernel-level forced-ISA mismatch: " << line
                        << "\nrepro: JPMM_ISA=" << KernelIsaName(isa)
                        << " JPMM_FUZZ_SEED=" << seed
                        << " JPMM_FUZZ_ITERS=1 ./differential_fuzz_test";
          return;
        }
      }
    }
  }
}

TEST(DifferentialFuzz, StarCrossStrategyAgreement) {
  // A quarter of the two-path budget: star instances are pricier and the
  // strategy surface is smaller.
  const int iters = std::max(1, EnvInt("JPMM_FUZZ_ITERS", 50) / 4);
  const uint64_t base = EnvU64("JPMM_FUZZ_SEED", 20260726) ^ 0x57A2ull;

  for (int i = 0; i < iters; ++i) {
    FuzzConfig cfg = MakeConfig(base + static_cast<uint64_t>(i));
    cfg.counted = false;  // stars have no counted mode
    cfg.min_count = 1;
    const size_t k = 2 + static_cast<size_t>(cfg.seed % 2);
    const BinaryRelation rel = MakeRelation(cfg, 3);
    IndexedRelation idx(rel);
    std::vector<const IndexedRelation*> rels(k, &idx);

    JoinProjectOptions ref_opts;
    ref_opts.strategy = Strategy::kWcojFull;
    ref_opts.threads = 1;
    const auto ref = ToVectors(JoinProject::Star(rels, ref_opts).tuples);

    struct StarVariant {
      const char* name;
      Strategy strategy;
      PartitionMode partition;
    };
    const StarVariant star_variants[] = {
        {"star-mmjoin", Strategy::kMmJoin, PartitionMode::kOff},
        {"star-mm-density", Strategy::kMmJoin, PartitionMode::kForce},
        {"star-nonmm", Strategy::kNonMmJoin, PartitionMode::kOff},
    };
    for (const StarVariant& sv : star_variants) {
      for (int t : ThreadCounts()) {
        JoinProjectOptions opts;
        opts.strategy = sv.strategy;
        opts.partition = sv.partition;
        opts.threads = t;
        opts.thresholds = cfg.thresholds;
        const auto got = ToVectors(JoinProject::Star(rels, opts).tuples);
        if (got != ref) {
          const std::string line =
              cfg.ToString() + " variant=" + sv.name +
              " k=" + std::to_string(k) + " threads=" + std::to_string(t) +
              " got=" + std::to_string(got.size()) +
              " want=" + std::to_string(ref.size());
          RecordFailure(line);
          ADD_FAILURE() << "star cross-strategy mismatch: " << line;
          return;
        }
      }
    }
  }
}

}  // namespace
}  // namespace jpmm
