// Failure-injection tests: misuse of the public API must fail loudly
// (JPMM_CHECK aborts), and recoverable failures must return errors.

#include <gtest/gtest.h>

#include "core/join_project.h"
#include "core/mm_join.h"
#include "matrix/dense_matrix.h"
#include "matrix/matmul.h"
#include "ssj/mm_ssj.h"
#include "storage/index.h"
#include "storage/loader.h"
#include "storage/relation.h"
#include "tests/test_util.h"

namespace jpmm {
namespace {

using testutil::RandomRelation;

TEST(FailureDeath, IndexRequiresFinalizedRelation) {
  BinaryRelation r;
  r.Add(0, 0);  // not finalized
  EXPECT_DEATH({ IndexedRelation idx(r); }, "Finalize");
}

TEST(FailureDeath, MatmulRejectsDimensionMismatch) {
  Matrix a(3, 4), b(5, 2);
  Matrix c;
  EXPECT_DEATH(Multiply(a, b, &c, 1), "dimension mismatch");
}

TEST(FailureDeath, MinCountWithoutCountingIsRejected) {
  BinaryRelation r = RandomRelation(10, 10, 30, 0.5, 1);
  IndexedRelation ri(r);
  MmJoinOptions opts;
  opts.min_count = 2;  // but count_witnesses is false
  EXPECT_DEATH(MmJoinTwoPath(ri, ri, opts), "min_count");
}

TEST(FailureDeath, FacadeRejectsUnfinalizedRelations) {
  BinaryRelation r;
  r.Add(1, 1);
  BinaryRelation s;
  s.Add(1, 1);
  s.Finalize();
  EXPECT_DEATH(JoinProject::TwoPath(r, s), "Finalize");
}

TEST(FailureDeath, StarRejectsSingleRelation) {
  BinaryRelation r = RandomRelation(5, 5, 10, 0.5, 2);
  IndexedRelation ri(r);
  std::vector<const IndexedRelation*> rels = {&ri};
  EXPECT_DEATH(JoinProject::Star(rels), "");
}

TEST(FailureDeath, SsjRejectsZeroThreshold) {
  BinaryRelation r = RandomRelation(10, 10, 30, 0.5, 3);
  IndexedRelation ri(r);
  SetFamily fam(ri);
  SsjOptions opts;
  opts.c = 0;
  EXPECT_DEATH(MmSsj(fam, opts), "");
}

TEST(FailureRecoverable, LoaderReportsBadInputWithoutAborting) {
  std::string error;
  EXPECT_FALSE(ParseEdgeList("garbage line\n", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(LoadEdgeList("/no/such/file", &error).has_value());
}

TEST(FailureRecoverable, SaveToUnwritablePathFails) {
  BinaryRelation r = RandomRelation(5, 5, 10, 0.5, 4);
  EXPECT_FALSE(SaveEdgeList(r, "/no/such/dir/out.txt"));
}

TEST(FailureRecoverable, TinyMatrixBudgetStillProducesCorrectResult) {
  // The memory cap is a degradation path, not a failure path.
  BinaryRelation r = RandomRelation(60, 30, 600, 1.2, 5);
  IndexedRelation ri(r);
  MmJoinOptions opts;
  opts.thresholds = {1, 1};
  opts.max_matrix_bytes = 1;  // nothing fits
  auto res = MmJoinTwoPath(ri, ri, opts);
  EXPECT_EQ(testutil::Sorted(res.pairs), testutil::OracleTwoPath(r, r));
}

}  // namespace
}  // namespace jpmm
