// Deadline / cancellation exactness on every strategy.
//
// The contract under test (core/cancel_token.h + the per-strategy polls):
//
//   - a pre-expired deadline executes NOTHING: zero results, every light
//     chunk and heavy block accounted skipped, executed + skipped == total;
//   - a token fired mid-run truncates exactly: everything delivered before
//     the poll noticed is a duplicate-free subset of the full answer;
//   - a run that completes before its (generous) deadline is bit-identical
//     to the no-token oracle, with interrupted NOT set — a token that fires
//     after the last chunk must not relabel a complete run as partial;
//   - the accounting invariant holds at every thread count.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <set>
#include <vector>

#include "common/thread_pool.h"
#include "core/cancel_token.h"
#include "core/query_engine.h"
#include "core/result_sink.h"
#include "core/triangle.h"
#include "datagen/generators.h"
#include "tests/test_util.h"

namespace jpmm {
namespace {

using testutil::OracleTwoPath;
using testutil::Sorted;

std::vector<int> ThreadCounts() {
  std::vector<int> threads{1, 3};
  const int hw = HardwareThreads();
  if (hw != 1 && hw != 3) threads.push_back(hw);
  return threads;
}

// Big enough that every executor splits the light part into several
// grain-256 chunks (800 x values), so mid-run cancellation has work left
// to skip.
BinaryRelation BigGraph() {
  return CommunityGraph(/*communities=*/8, /*community_size=*/100,
                        /*p_in=*/0.3, /*seed=*/77);
}

QueryEngine MakeEngine(const BinaryRelation& rel) {
  QueryEngine engine;
  engine.catalog().Put("R", rel);
  return engine;
}

QuerySpec TwoPathSpec(Strategy strategy) {
  QuerySpec spec;
  spec.kind = QueryKind::kTwoPath;
  spec.relations = {"R"};
  spec.strategy = strategy;
  return spec;
}

constexpr Strategy kTwoPathStrategies[] = {
    Strategy::kMmJoin, Strategy::kNonMmJoin, Strategy::kWcojFull};

void ExpectAccounting(const ExecStats& stats, const char* where) {
  EXPECT_EQ(stats.light_chunks_executed + stats.light_chunks_skipped,
            stats.light_chunks_total)
      << where;
  EXPECT_EQ(stats.heavy_blocks_executed + stats.heavy_blocks_skipped,
            stats.heavy_blocks_total)
      << where;
}

// Fires the token (explicit cancel) once `after` results have been
// delivered, from whichever worker crosses the line; its own done() stays
// false, so the truncation is attributable to the token alone.
class CancelAfterSink : public ResultSink {
 public:
  CancelAfterSink(uint64_t after, CancelToken* token)
      : after_(after), token_(token) {}

  class Sh : public Shard {
   public:
    Sh(CancelAfterSink* parent, Shard* out) : parent_(parent), out_(out) {}
    void OnPair(const OutPair& p) override {
      out_->OnPair(p);
      parent_->Delivered();
    }
    void OnCountedPair(const CountedPair& p) override {
      out_->OnCountedPair(p);
      parent_->Delivered();
    }
    void OnTuple(std::span<const Value> t) override {
      out_->OnTuple(t);
      parent_->Delivered();
    }

   private:
    CancelAfterSink* parent_;
    Shard* out_;
  };

  void Open(int num_shards) override {
    inner_.Open(num_shards);
    shards_.clear();
    for (int i = 0; i < num_shards; ++i) {
      shards_.push_back(std::make_unique<Sh>(this, &inner_.shard(i)));
    }
  }
  Shard& shard(int w) override { return *shards_[static_cast<size_t>(w)]; }
  void Finish() override {
    shards_.clear();
    inner_.Finish();
  }

  VectorSink& inner() { return inner_; }
  void Delivered() {
    if (delivered_.fetch_add(1, std::memory_order_relaxed) + 1 >= after_) {
      token_->RequestCancel();
    }
  }

 private:
  const uint64_t after_;
  CancelToken* const token_;
  VectorSink inner_;
  std::atomic<uint64_t> delivered_{0};
  std::vector<std::unique_ptr<Sh>> shards_;
};

// ---- Two-path ------------------------------------------------------------

TEST(QueryDeadline, PreExpiredDeadlineExecutesNothing) {
  const BinaryRelation rel = BigGraph();
  QueryEngine engine = MakeEngine(rel);
  for (Strategy s : kTwoPathStrategies) {
    for (int threads : ThreadCounts()) {
      CancelToken token;
      token.SetDeadlineAfter(0);  // already expired on the first poll
      VectorSink sink;
      ExecStats stats;
      ExecOptions exec;
      exec.threads = threads;
      exec.cancel = &token;
      auto st = engine.Run(TwoPathSpec(s), sink, exec, &stats);
      ASSERT_TRUE(st.ok()) << st.message();
      EXPECT_TRUE(sink.pairs().empty())
          << StrategyName(s) << " threads=" << threads;
      EXPECT_TRUE(stats.interrupted) << StrategyName(s);
      EXPECT_EQ(stats.interrupt_reason, InterruptReason::kDeadline)
          << StrategyName(s);
      EXPECT_GT(stats.light_chunks_total, 0u) << StrategyName(s);
      EXPECT_EQ(stats.light_chunks_executed, 0u)
          << StrategyName(s) << " threads=" << threads;
      EXPECT_EQ(stats.heavy_blocks_executed, 0u) << StrategyName(s);
      ExpectAccounting(stats, StrategyName(s));
    }
  }
}

TEST(QueryDeadline, MidRunCancelDeliversExactSubset) {
  const BinaryRelation rel = BigGraph();
  QueryEngine engine = MakeEngine(rel);
  const auto oracle = OracleTwoPath(rel, rel);
  std::set<std::pair<Value, Value>> full;
  for (const OutPair& p : oracle) full.insert({p.x, p.z});

  for (Strategy s : kTwoPathStrategies) {
    for (int threads : ThreadCounts()) {
      CancelToken token;
      CancelAfterSink sink(/*after=*/20, &token);
      ExecStats stats;
      ExecOptions exec;
      exec.threads = threads;
      exec.cancel = &token;
      auto st = engine.Run(TwoPathSpec(s), sink, exec, &stats);
      ASSERT_TRUE(st.ok()) << st.message();
      ExpectAccounting(stats, StrategyName(s));

      // Exact-subset invariant: every delivered pair is a real output
      // pair, delivered at most once.
      const auto got = Sorted(sink.inner().pairs());
      for (size_t i = 0; i + 1 < got.size(); ++i) {
        EXPECT_FALSE(got[i].x == got[i + 1].x && got[i].z == got[i + 1].z)
            << "duplicate pair under cancellation, " << StrategyName(s);
      }
      for (const OutPair& p : got) {
        EXPECT_TRUE(full.count({p.x, p.z}))
            << "phantom pair (" << p.x << "," << p.z << "), "
            << StrategyName(s);
      }
      if (stats.interrupted) {
        EXPECT_EQ(stats.interrupt_reason, InterruptReason::kCancelled)
            << StrategyName(s);
        EXPECT_LE(got.size(), oracle.size());
      } else {
        // The token fired after the last chunk had already been claimed —
        // then the run must be COMPLETE, not quietly truncated.
        EXPECT_EQ(got, oracle) << StrategyName(s) << " threads=" << threads;
      }
      // Sequentially the cancel always lands with chunks still unclaimed.
      if (threads == 1) {
        EXPECT_TRUE(stats.interrupted)
            << StrategyName(s) << ": single-threaded mid-run cancel must "
            << "leave later chunks skipped";
      }
    }
  }
}

TEST(QueryDeadline, GenerousDeadlineIsBitIdenticalToOracle) {
  const BinaryRelation rel = BigGraph();
  QueryEngine engine = MakeEngine(rel);
  const auto oracle = OracleTwoPath(rel, rel);
  for (Strategy s : kTwoPathStrategies) {
    for (int threads : ThreadCounts()) {
      CancelToken token;
      token.SetDeadlineAfter(10 * 60 * 1000);
      VectorSink sink;
      ExecStats stats;
      ExecOptions exec;
      exec.threads = threads;
      exec.cancel = &token;
      auto st = engine.Run(TwoPathSpec(s), sink, exec, &stats);
      ASSERT_TRUE(st.ok()) << st.message();
      EXPECT_FALSE(stats.interrupted) << StrategyName(s);
      EXPECT_EQ(stats.interrupt_reason, InterruptReason::kNone);
      EXPECT_EQ(stats.light_chunks_executed, stats.light_chunks_total);
      EXPECT_EQ(stats.light_chunks_skipped, 0u);
      EXPECT_EQ(Sorted(sink.pairs()), oracle)
          << StrategyName(s) << " threads=" << threads;
    }
  }
}

// A token that fires AFTER every chunk completed must not mark the run
// interrupted — deterministic single-threaded check via RequestCancel on
// the very last delivery... delivery order makes "last" racy in parallel,
// so this pins the complement instead: a never-fired token leaves no
// trace at any thread count (covered above), and a post-completion fire
// is exercised by firing the token after Run returns.
TEST(QueryDeadline, TokenFiringAfterCompletionLeavesRunUntouched) {
  const BinaryRelation rel = BigGraph();
  QueryEngine engine = MakeEngine(rel);
  CancelToken token;
  VectorSink sink;
  ExecStats stats;
  ExecOptions exec;
  exec.cancel = &token;
  ASSERT_TRUE(engine.Run(TwoPathSpec(Strategy::kMmJoin), sink, exec, &stats)
                  .ok());
  token.RequestCancel();  // too late — the stats must already be final
  EXPECT_FALSE(stats.interrupted);
  EXPECT_EQ(Sorted(sink.pairs()), OracleTwoPath(rel, rel));
}

// ---- Star ----------------------------------------------------------------

std::vector<std::vector<Value>> SortedTuples(const VectorSink& sink) {
  std::vector<std::vector<Value>> out;
  const uint32_t k = sink.tuple_arity();
  if (k == 0) return out;
  const auto& data = sink.tuple_data();
  for (size_t i = 0; i + k <= data.size(); i += k) {
    out.emplace_back(data.begin() + static_cast<long>(i),
                     data.begin() + static_cast<long>(i + k));
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(QueryDeadline, StarDeadlineAndMidRunCancel) {
  const BinaryRelation rel = BigGraph();
  QueryEngine engine = MakeEngine(rel);
  QuerySpec spec;
  spec.kind = QueryKind::kStar;
  spec.relations = {"R", "R", "R"};

  // Oracle: un-tokened run.
  std::vector<std::vector<Value>> oracle;
  {
    VectorSink sink;
    ASSERT_TRUE(engine.Run(spec, sink, {}, nullptr).ok());
    oracle = SortedTuples(sink);
  }
  std::set<std::vector<Value>> full(oracle.begin(), oracle.end());

  for (Strategy s : {Strategy::kMmJoin, Strategy::kNonMmJoin}) {
    spec.strategy = s;
    for (int threads : ThreadCounts()) {
      {  // pre-expired: nothing delivered, steps fully accounted
        CancelToken token;
        token.SetDeadlineAfter(0);
        VectorSink sink;
        ExecStats stats;
        ExecOptions exec;
        exec.threads = threads;
        exec.cancel = &token;
        ASSERT_TRUE(engine.Run(spec, sink, exec, &stats).ok());
        EXPECT_EQ(SortedTuples(sink).size(), 0u) << StrategyName(s);
        EXPECT_TRUE(stats.interrupted) << StrategyName(s);
        EXPECT_EQ(stats.interrupt_reason, InterruptReason::kDeadline);
        EXPECT_GT(stats.light_chunks_total, 0u);
        EXPECT_EQ(stats.light_chunks_executed, 0u) << StrategyName(s);
        ExpectAccounting(stats, StrategyName(s));
      }
      {  // mid-run cancel: exact subset, step accounting holds
        CancelToken token;
        CancelAfterSink sink(/*after=*/10, &token);
        ExecStats stats;
        ExecOptions exec;
        exec.threads = threads;
        exec.cancel = &token;
        ASSERT_TRUE(engine.Run(spec, sink, exec, &stats).ok());
        ExpectAccounting(stats, StrategyName(s));
        const auto got = SortedTuples(sink.inner());
        for (size_t i = 0; i + 1 < got.size(); ++i) {
          EXPECT_NE(got[i], got[i + 1]) << "duplicate star tuple";
        }
        for (const auto& t : got) {
          EXPECT_TRUE(full.count(t)) << "phantom star tuple";
        }
        if (!stats.interrupted) EXPECT_EQ(got, oracle) << StrategyName(s);
      }
    }
  }
}

// ---- Triangle ------------------------------------------------------------

TEST(QueryDeadline, TriangleDeadlineExactness) {
  const BinaryRelation sym = CommunityGraph(4, 80, 0.4, 9);
  QueryEngine engine;
  engine.catalog().Put("G", sym);
  QuerySpec spec;
  spec.kind = QueryKind::kTriangle;
  spec.relations = {"G"};
  const uint64_t want = CountTrianglesMm(IndexedRelation(sym), {}).triangles;

  for (int threads : ThreadCounts()) {
    {  // pre-expired deadline: zero work, zero count
      CancelToken token;
      token.SetDeadlineAfter(0);
      CountOnlySink sink;
      ExecStats stats;
      ExecOptions exec;
      exec.threads = threads;
      exec.cancel = &token;
      ASSERT_TRUE(engine.Run(spec, sink, exec, &stats).ok());
      EXPECT_TRUE(stats.interrupted);
      EXPECT_EQ(stats.interrupt_reason, InterruptReason::kDeadline);
      EXPECT_EQ(stats.triangle_count, 0u);
      EXPECT_EQ(stats.light_chunks_executed, 0u);
      EXPECT_EQ(stats.light_chunks_executed + stats.light_chunks_skipped,
                stats.light_chunks_total);
    }
    {  // generous deadline: full exact count, not interrupted
      CancelToken token;
      token.SetDeadlineAfter(10 * 60 * 1000);
      CountOnlySink sink;
      ExecStats stats;
      ExecOptions exec;
      exec.threads = threads;
      exec.cancel = &token;
      ASSERT_TRUE(engine.Run(spec, sink, exec, &stats).ok());
      EXPECT_FALSE(stats.interrupted);
      EXPECT_EQ(stats.triangle_count, want);
      EXPECT_EQ(stats.light_chunks_executed, stats.light_chunks_total);
    }
  }
}

}  // namespace
}  // namespace jpmm
