// Shared test helpers: brute-force oracles and random-instance generators.

#ifndef JPMM_TESTS_TEST_UTIL_H_
#define JPMM_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "join/star_wcoj.h"
#include "storage/index.h"
#include "storage/relation.h"

namespace jpmm::testutil {

/// Brute-force pi_{x,z}(R JOIN S), sorted.
inline std::vector<OutPair> OracleTwoPath(const BinaryRelation& r,
                                          const BinaryRelation& s) {
  std::set<std::pair<Value, Value>> seen;
  for (const Tuple& rt : r.tuples()) {
    for (const Tuple& st : s.tuples()) {
      if (rt.y == st.y) seen.insert({rt.x, st.x});
    }
  }
  std::vector<OutPair> out;
  out.reserve(seen.size());
  for (const auto& [x, z] : seen) out.push_back(OutPair{x, z});
  return out;
}

/// Brute-force witness counts, sorted by (x, z).
inline std::vector<CountedPair> OracleTwoPathCounted(const BinaryRelation& r,
                                                     const BinaryRelation& s,
                                                     uint32_t min_count = 1) {
  std::map<std::pair<Value, Value>, uint32_t> counts;
  for (const Tuple& rt : r.tuples()) {
    for (const Tuple& st : s.tuples()) {
      if (rt.y == st.y) ++counts[{rt.x, st.x}];
    }
  }
  std::vector<CountedPair> out;
  for (const auto& [key, cnt] : counts) {
    if (cnt >= min_count) out.push_back(CountedPair{key.first, key.second, cnt});
  }
  return out;
}

/// Brute-force star join-project, sorted tuples (flat, stride k).
inline std::vector<std::vector<Value>> OracleStar(
    const std::vector<const BinaryRelation*>& rels) {
  std::set<std::vector<Value>> seen;
  const size_t k = rels.size();
  // Index tuples of each relation by y.
  std::map<Value, std::vector<std::vector<Value>>> by_y;  // y -> per-rel lists
  std::set<Value> ys;
  for (const auto* rel : rels) {
    for (const Tuple& t : rel->tuples()) ys.insert(t.y);
  }
  for (Value b : ys) {
    std::vector<std::vector<Value>> lists(k);
    bool ok = true;
    for (size_t i = 0; i < k && ok; ++i) {
      for (const Tuple& t : rels[i]->tuples()) {
        if (t.y == b) lists[i].push_back(t.x);
      }
      ok = !lists[i].empty();
    }
    if (!ok) continue;
    std::vector<size_t> pos(k, 0);
    for (;;) {
      std::vector<Value> tuple(k);
      for (size_t i = 0; i < k; ++i) tuple[i] = lists[i][pos[i]];
      seen.insert(tuple);
      size_t dim = k;
      bool done = false;
      while (dim > 0) {
        --dim;
        if (++pos[dim] < lists[dim].size()) break;
        pos[dim] = 0;
        if (dim == 0) {
          done = true;
          break;
        }
      }
      if (done) break;
    }
  }
  return {seen.begin(), seen.end()};
}

/// Converts a TupleBuffer to a sorted vector-of-vectors for comparison.
inline std::vector<std::vector<Value>> ToVectors(const TupleBuffer& buf) {
  std::vector<std::vector<Value>> out;
  out.reserve(buf.size());
  for (size_t i = 0; i < buf.size(); ++i) {
    const auto t = buf.Get(i);
    out.emplace_back(t.begin(), t.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Random relation with skewed degrees (useful heavy/light mixes).
inline BinaryRelation RandomRelation(uint32_t num_x, uint32_t num_y,
                                     uint32_t num_tuples, double skew,
                                     uint64_t seed) {
  Rng rng(seed);
  ZipfSampler xz(num_x, skew, seed ^ 1);
  ZipfSampler yz(num_y, skew, seed ^ 2);
  BinaryRelation rel;
  for (uint32_t i = 0; i < num_tuples; ++i) rel.Add(xz.Sample(), yz.Sample());
  rel.Finalize();
  return rel;
}

inline std::vector<OutPair> Sorted(std::vector<OutPair> v) {
  std::sort(v.begin(), v.end());
  return v;
}

inline std::vector<CountedPair> Sorted(std::vector<CountedPair> v) {
  std::sort(v.begin(), v.end());
  return v;
}

}  // namespace jpmm::testutil

#endif  // JPMM_TESTS_TEST_UTIL_H_
