// Unit tests for src/matrix: dense matmul, boolean matrices, cost model,
// calibration.

#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <tuple>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "matrix/bool_matrix.h"
#include "matrix/calibration.h"
#include "matrix/cost_model.h"
#include "matrix/dense_matrix.h"
#include "matrix/matmul.h"
#include "matrix/random.h"

namespace jpmm {
namespace {

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed, double density) {
  return RandomDenseMatrix(rows, cols, density, seed);
}

TEST(DenseMatrix, SetAtRow) {
  Matrix m(2, 3);
  m.Set(1, 2, 5.0f);
  EXPECT_FLOAT_EQ(m.At(1, 2), 5.0f);
  EXPECT_FLOAT_EQ(m.At(0, 0), 0.0f);
  EXPECT_EQ(m.Row(1).size(), 3u);
  EXPECT_FLOAT_EQ(m.Row(1)[2], 5.0f);
}

TEST(DenseMatrix, TransposedRoundTrip) {
  Matrix m = RandomMatrix(37, 53, 1, 0.3);
  Matrix t = m.Transposed();
  ASSERT_EQ(t.rows(), 53u);
  ASSERT_EQ(t.cols(), 37u);
  EXPECT_EQ(t.Transposed(), m);
}

TEST(Matmul, MatchesNaiveSquare) {
  Matrix a = RandomMatrix(33, 33, 2, 0.4);
  Matrix b = RandomMatrix(33, 33, 3, 0.4);
  EXPECT_EQ(Multiply(a, b, 1), MultiplyNaive(a, b));
}

TEST(Matmul, ScalarReferenceMatchesNaive) {
  Matrix a = RandomMatrix(45, 70, 20, 0.4);
  Matrix b = RandomMatrix(70, 31, 21, 0.4);
  EXPECT_EQ(MultiplyScalarReference(a, b), MultiplyNaive(a, b));
}

TEST(Matmul, MatchesNaiveRectangular) {
  Matrix a = RandomMatrix(17, 301, 4, 0.2);
  Matrix b = RandomMatrix(301, 9, 5, 0.2);
  EXPECT_EQ(Multiply(a, b, 1), MultiplyNaive(a, b));
}

TEST(Matmul, ThreadCountDoesNotChangeResult) {
  Matrix a = RandomMatrix(64, 128, 6, 0.3);
  Matrix b = RandomMatrix(128, 48, 7, 0.3);
  const Matrix ref = Multiply(a, b, 1);
  for (int threads : {2, 3, 8}) {
    EXPECT_EQ(Multiply(a, b, threads), ref) << threads << " threads";
  }
}

TEST(Matmul, ParallelSharedSlabMatchesNaive) {
  // Odd shapes exercise every panel edge of the packed layout.
  const std::vector<std::tuple<size_t, size_t, size_t>> shapes = {
      {33, 77, 19}, {130, 515, 41}, {7, 2049, 65}, {257, 100, 2050}};
  for (auto [u, v, w] : shapes) {
    Matrix a = RandomMatrix(u, v, 31 + u, 0.3);
    Matrix b = RandomMatrix(v, w, 37 + w, 0.3);
    const Matrix want = MultiplyNaive(a, b);
    for (int threads : {1, 2, 5}) {
      Matrix c;
      MultiplyParallel(a, b, &c, threads);
      EXPECT_EQ(c, want) << u << "x" << v << "x" << w << " @" << threads;
    }
  }
}

TEST(Matmul, ReplicatedPackingMatchesSharedSlab) {
  Matrix a = RandomMatrix(90, 300, 40, 0.3);
  Matrix b = RandomMatrix(300, 70, 41, 0.3);
  Matrix shared_c, replicated_c;
  MultiplyParallel(a, b, &shared_c, 3);
  MultiplyReplicatedPacking(a, b, &replicated_c, 3);
  EXPECT_EQ(shared_c, replicated_c);
}

TEST(Matmul, PackedBRowRangeMatchesUnpacked) {
  Matrix a = RandomMatrix(67, 530, 50, 0.3);
  Matrix b = RandomMatrix(530, 91, 51, 0.3);
  const PackedB packed(b, 2);
  EXPECT_EQ(packed.rows(), b.rows());
  EXPECT_EQ(packed.cols(), b.cols());
  std::vector<float> got(20 * b.cols());
  std::vector<float> want(20 * b.cols());
  // Several row windows, including ragged edges.
  const std::vector<std::pair<size_t, size_t>> windows = {
      {0, 20}, {13, 29}, {60, 67}};
  for (auto [r0, r1] : windows) {
    MultiplyRowRange(a, packed, r0, r1, got);
    MultiplyRowRange(a, b, r0, r1, want);
    for (size_t i = 0; i < (r1 - r0) * b.cols(); ++i) {
      ASSERT_EQ(got[i], want[i]) << "row window [" << r0 << "," << r1 << ")";
    }
  }
}

TEST(Matmul, PackedBSharedAcrossConcurrentWorkers) {
  // The slab is read-only after construction: many workers streaming
  // disjoint row ranges concurrently must agree with the sequential result.
  Matrix a = RandomMatrix(96, 200, 60, 0.4);
  Matrix b = RandomMatrix(200, 150, 61, 0.4);
  const PackedB packed(b, 2);
  const Matrix want = MultiplyNaive(a, b);
  std::vector<float> out(a.rows() * b.cols());
  ParallelFor(4, a.rows(), [&](size_t r0, size_t r1, int) {
    MultiplyRowRange(a, packed, r0, r1,
                     std::span<float>(out.data() + r0 * b.cols(),
                                      (r1 - r0) * b.cols()));
  });
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < b.cols(); ++j) {
      ASSERT_EQ(out[i * b.cols() + j], want.At(i, j));
    }
  }
}

TEST(Matmul, PackedBBytesMatchesActualFootprint) {
  const std::vector<std::pair<size_t, size_t>> dims = {
      {530, 91}, {512, 2048}, {100, 2049}, {1, 1}};
  for (auto [v, w] : dims) {
    Matrix b = RandomMatrix(v, w, 70 + v, 0.2);
    const PackedB packed(b, 1);
    EXPECT_EQ(packed.size_bytes(), PackedBBytes(v, w)) << v << "x" << w;
  }
}

TEST(Matmul, EmptyDimensions) {
  Matrix a(0, 5), b(5, 3);
  Matrix c = Multiply(a, b, 1);
  EXPECT_EQ(c.rows(), 0u);
  EXPECT_EQ(c.cols(), 3u);
}

TEST(Matmul, IdentityIsNeutral) {
  const size_t n = 25;
  Matrix id(n, n);
  for (size_t i = 0; i < n; ++i) id.Set(i, i, 1.0f);
  Matrix a = RandomMatrix(n, n, 8, 0.5);
  EXPECT_EQ(Multiply(a, id, 1), a);
  EXPECT_EQ(Multiply(id, a, 1), a);
}

TEST(Matmul, RowRangeMatchesFullProduct) {
  Matrix a = RandomMatrix(40, 60, 9, 0.3);
  Matrix b = RandomMatrix(60, 22, 10, 0.3);
  const Matrix full = Multiply(a, b, 1);
  std::vector<float> buf(8 * b.cols());
  for (size_t r0 = 0; r0 < a.rows(); r0 += 8) {
    const size_t r1 = std::min(a.rows(), r0 + 8);
    MultiplyRowRange(a, b, r0, r1, buf);
    for (size_t i = r0; i < r1; ++i) {
      for (size_t j = 0; j < b.cols(); ++j) {
        EXPECT_FLOAT_EQ(buf[(i - r0) * b.cols() + j], full.At(i, j));
      }
    }
  }
}

TEST(Matmul, CountsWitnessesExactly) {
  // 0/1 adjacency product = path counts.
  Matrix a(2, 3), b(3, 2);
  a.Set(0, 0, 1);
  a.Set(0, 1, 1);
  a.Set(0, 2, 1);
  a.Set(1, 1, 1);
  b.Set(0, 0, 1);
  b.Set(1, 0, 1);
  b.Set(2, 1, 1);
  Matrix c = Multiply(a, b, 1);
  EXPECT_FLOAT_EQ(c.At(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(c.At(0, 1), 1.0f);
  EXPECT_FLOAT_EQ(c.At(1, 0), 1.0f);
  EXPECT_FLOAT_EQ(c.At(1, 1), 0.0f);
}

TEST(BoolMatrix, SetTestTranspose) {
  BoolMatrix m(3, 130);
  m.Set(0, 0);
  m.Set(1, 64);
  m.Set(2, 129);
  EXPECT_TRUE(m.Test(0, 0));
  EXPECT_TRUE(m.Test(1, 64));
  EXPECT_FALSE(m.Test(1, 63));
  BoolMatrix t = m.Transposed();
  EXPECT_TRUE(t.Test(0, 0));
  EXPECT_TRUE(t.Test(64, 1));
  EXPECT_TRUE(t.Test(129, 2));
  EXPECT_FALSE(t.Test(129, 1));
}

TEST(BoolMatrix, ProductMatchesFloatProduct) {
  Rng rng(11);
  const size_t u = 23, v = 71, w = 19;
  Matrix fa(u, v), fb(v, w);
  BoolMatrix ba(u, v), bbt(w, v);  // bbt = b transposed
  for (size_t i = 0; i < u; ++i) {
    for (size_t k = 0; k < v; ++k) {
      if (rng.NextBool(0.2)) {
        fa.Set(i, k, 1.0f);
        ba.Set(i, k);
      }
    }
  }
  for (size_t k = 0; k < v; ++k) {
    for (size_t j = 0; j < w; ++j) {
      if (rng.NextBool(0.2)) {
        fb.Set(k, j, 1.0f);
        bbt.Set(j, k);
      }
    }
  }
  const Matrix fc = Multiply(fa, fb, 1);
  const BoolMatrix bc = BoolProduct(ba, bbt, 2);
  const std::vector<uint32_t> counts = CountProduct(ba, bbt, 2);
  for (size_t i = 0; i < u; ++i) {
    for (size_t j = 0; j < w; ++j) {
      EXPECT_EQ(bc.Test(i, j), fc.At(i, j) > 0.5f);
      EXPECT_EQ(counts[i * w + j], static_cast<uint32_t>(fc.At(i, j)));
    }
  }
}

TEST(BoolMatrix, RowsIntersectEarlyExit) {
  BoolMatrix a(1, 256), b(1, 256);
  a.Set(0, 0);
  b.Set(0, 255);
  EXPECT_FALSE(a.RowsIntersect(0, b, 0));
  b.Set(0, 0);
  EXPECT_TRUE(a.RowsIntersect(0, b, 0));
  EXPECT_EQ(a.RowAndCount(0, b, 0), 1u);
}

TEST(CostModel, ClassicalOmegaIsCubic) {
  EXPECT_DOUBLE_EQ(RectangularMmOps(10, 20, 30, 3.0), 10.0 * 20 * 30);
}

TEST(CostModel, FastOmegaDiscountsByBeta) {
  // beta = 10; omega = 2 gives uvw / beta.
  EXPECT_DOUBLE_EQ(RectangularMmOps(10, 20, 30, 2.0), 10.0 * 20 * 30 / 10.0);
}

TEST(CostModel, ZeroDimensionIsFree) {
  EXPECT_DOUBLE_EQ(RectangularMmOps(0, 5, 5), 0.0);
}

TEST(CostModel, Lemma3BeatsLemma2Shape) {
  // Lemma 3 (omega = 2) strictly below Lemma 2 for k = 2 on a wide range.
  for (double n : {1e4, 1e6}) {
    for (double out : {1e2, 1e4, 1e6, 1e8}) {
      EXPECT_LT(Lemma3Runtime(n, out), Lemma2Runtime(n, out, 2) + n)
          << "n=" << n << " out=" << out;
    }
  }
}

TEST(CostModel, BuildCostIsMaxOfOperands) {
  EXPECT_DOUBLE_EQ(MatrixBuildOps(10, 20, 5), 200.0);
  EXPECT_DOUBLE_EQ(MatrixBuildOps(5, 20, 10), 200.0);
}

TEST(CostModel, BoolProductWordOpsRoundsInnerDimToWords) {
  EXPECT_DOUBLE_EQ(BoolProductWordOps(10, 64, 20), 10.0 * 20);
  EXPECT_DOUBLE_EQ(BoolProductWordOps(10, 65, 20), 10.0 * 20 * 2);
  EXPECT_DOUBLE_EQ(BoolProductWordOps(0, 64, 20), 0.0);
}

TEST(CostModel, BoolProductSecondsScalesWithRate) {
  const double t1 = BoolProductSeconds(128, 128, 128, 1e9);
  const double t2 = BoolProductSeconds(128, 128, 128, 2e9);
  EXPECT_DOUBLE_EQ(t1, 2.0 * t2);
  EXPECT_GT(t1, 0.0);
}

TEST(Calibration, BoolKernelRatesArePositive) {
  const BoolKernelRates rates = BoolKernelRates::Measure(128);
  EXPECT_GT(rates.bool_words_per_sec, 0.0);
  EXPECT_GT(rates.count_words_per_sec, 0.0);
}

TEST(Calibration, SyntheticTableInterpolates) {
  auto cal = MatMulCalibration::FromFlopsRate(1e9, {1, 2});
  // 512^3 * 2 flops at 1 GF/s = 0.268 s on 1 core.
  const double t1 = cal.EstimateSeconds(512, 512, 512, 1);
  EXPECT_NEAR(t1, 2.0 * 512.0 * 512 * 512 / 1e9, t1 * 0.05);
  // Two cores halve it (synthetic table).
  const double t2 = cal.EstimateSeconds(512, 512, 512, 2);
  EXPECT_NEAR(t2, t1 / 2, t1 * 0.05);
}

TEST(Calibration, RectangularUsesEffectiveDim) {
  auto cal = MatMulCalibration::FromFlopsRate(1e9, {1});
  // (u, v, w) with same product as p^3 estimates the same time.
  const double ta = cal.EstimateSeconds(1024, 256, 1024, 1);
  const double tb = cal.EstimateSeconds(512, 512, 1024, 1);
  EXPECT_NEAR(ta, tb, ta * 0.05);
}

TEST(Calibration, ExtrapolatesCubically) {
  auto cal = MatMulCalibration::FromFlopsRate(1e9, {1});
  const double t2048 = cal.EstimateSeconds(2048, 2048, 2048, 1);
  const double t4096 = cal.EstimateSeconds(4096, 4096, 4096, 1);
  EXPECT_NEAR(t4096 / t2048, 8.0, 0.4);
}

TEST(Calibration, ZeroDimensionIsFree) {
  auto cal = MatMulCalibration::FromFlopsRate(1e9, {1});
  EXPECT_DOUBLE_EQ(cal.EstimateSeconds(0, 10, 10, 1), 0.0);
}

TEST(Calibration, MeasureProducesPositiveTimes) {
  auto cal = MatMulCalibration::Measure({32, 64}, {1});
  EXPECT_GT(cal.EstimateSeconds(48, 48, 48, 1), 0.0);
  EXPECT_GT(cal.single_core_flops(), 0.0);
}

TEST(SystemConstants, MeasuredValuesArePlausible) {
  const SystemConstants c = SystemConstants::Measure();
  EXPECT_GT(c.ts, 0.0);
  EXPECT_GT(c.ti, 0.0);
  EXPECT_GT(c.tm, 0.0);
  EXPECT_LT(c.ts, 1e-5);  // < 10us per sequential element access
  EXPECT_LT(c.ti, 1e-4);
  EXPECT_LT(c.tm, 1e-3);
}

}  // namespace
}  // namespace jpmm
